// F14 — Bank scaling and the TLB case study: capacity scaling through
// parallel sub-arrays + priority encoding, and a superpage-aware
// fully-associative TLB priced on the proposed design.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F14", "bank-level capacity scaling + TLB case study",
                  "bank energy grows linearly with capacity (parallel sub-arrays), delay "
                  "only logarithmically (encoder depth); a 64-entry superpage TLB on the "
                  "proposed design costs ~fJ-scale per translation");

    const auto tech = device::TechCard::cmos45();

    // --- capacity scaling ---
    core::Table t({"capacity", "sub-arrays", "E/search", "delay", "area [MF^2]"});
    array::ArrayConfig sub;
    sub.cell = tcam::CellKind::FeFet2;
    sub.sense = array::SenseScheme::LowSwing;
    sub.wordBits = 32;
    sub.rows = 128;
    for (const int entries : {128, 512, 2048, 8192}) {
        const auto b = evaluateBank(tech, sub, entries);
        t.addRow({std::to_string(entries), std::to_string(b.subArrays),
                  core::engFormat(b.totalPerSearch(), "J"),
                  core::engFormat(b.searchDelay, "s"),
                  core::numFormat(b.areaF2 / 1e6, 2)});
    }
    std::printf("%s\n", t.toAligned().c_str());

    // --- TLB functional study: mixed page sizes, localized address stream ---
    apps::Tlb tlb(64);
    numeric::Rng rng(17);
    // Hot 1G region, a few 2M heaps, a spread of 4K pages.
    tlb.insert(0, apps::PageSize::Page1G, 0);
    for (int i = 0; i < 8; ++i)
        tlb.insert((1ULL << 18) + (static_cast<std::uint64_t>(i) << 9),
                   apps::PageSize::Page2M, 1000 + i);
    for (int i = 0; i < 40; ++i)
        tlb.insert((1ULL << 20) + i, apps::PageSize::Page4K, 2000 + i);

    int translations = 0;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t vaddr;
        const double u = rng.uniform();
        if (u < 0.5) {  // hot gigapage
            vaddr = rng.nextU64() & ((1ULL << 30) - 1);
        } else if (u < 0.8) {  // 2M heaps
            vaddr = ((1ULL << 18) << 12) + (rng.nextU64() & ((8ULL << 21) - 1));
        } else {  // 4K pages, some missing
            vaddr = ((1ULL << 20) + static_cast<std::uint64_t>(rng.uniformInt(0, 59)))
                    << 12;
        }
        translations += tlb.translate(vaddr).has_value();
    }
    std::printf("TLB: %zu entries, 10000 translations, hit rate %.1f%%\n", tlb.size(),
                100.0 * tlb.hitRate());

    // --- hardware price of one translation on a 64x36 CAM ---
    core::Table t2({"design", "E/translation", "latency"});
    for (const auto& d : {core::standardDesigns(apps::Tlb::kVpnBits, 64)[0],
                          core::standardDesigns(apps::Tlb::kVpnBits, 64)[2],
                          core::proposedDesign(apps::Tlb::kVpnBits, 64)}) {
        array::WorkloadProfile wl;
        wl.matchRowFraction = tlb.hitRate() / 64.0;
        const auto m = evaluateArray(tech, d.config, wl);
        t2.addRow({d.name, core::engFormat(m.perSearch.total(), "J"),
                   core::engFormat(m.searchDelay, "s")});
    }
    std::printf("\n%s", t2.toAligned().c_str());
    return 0;
}
