// F17 — Sense-path small-signal characterization: gain and bandwidth of the
// full-swing skewed-inverter sense amp and the low-swing ratioed PMOS
// amplifier, biased at their respective matchline sense levels.
#include "bench_util.hpp"

using namespace fetcam;

namespace {

struct SenseAcNums {
    double gainDb;
    double corner;
    double biasOut;
};

/// Build one sense stage with the ML replaced by a biased AC source.
SenseAcNums characterize(bool lowSwing, double mlBias) {
    const auto tech = device::TechCard::cmos45();
    spice::Circuit c;
    const auto nvdd = c.node("vdd");
    const auto ml = c.node("ml");
    const auto saMid = c.node("sa_mid");
    c.add<device::VoltageSource>("Vdd", c, nvdd, spice::kGround,
                                 device::SourceWave::dc(tech.vdd));
    auto& vml = c.add<device::VoltageSource>("Vml", c, ml, spice::kGround,
                                             device::SourceWave::dc(mlBias));
    vml.setAcMagnitude(1.0);
    if (lowSwing) {
        c.add<device::Mosfet>("Mp", ml, saMid, nvdd, tech.sizedPmos(1.0));
        c.add<device::Mosfet>("Mload", nvdd, saMid, spice::kGround, tech.sizedNmos(0.25));
    } else {
        c.add<device::Mosfet>("Mp", ml, saMid, nvdd, tech.sizedPmos(1.0));
        c.add<device::Mosfet>("Mn", ml, saMid, spice::kGround, tech.sizedNmos(4.0));
    }
    // Restoring-inverter input load.
    c.add<device::Mosfet>("M2p", saMid, c.node("out"), nvdd, tech.sizedPmos(2.0));
    c.add<device::Mosfet>("M2n", saMid, c.node("out"), spice::kGround, tech.sizedNmos(1.0));
    c.add<device::Capacitor>("Cl", c.node("out"), spice::kGround, 0.5e-15);

    const auto op = solveDcOp(c);
    if (!op.converged) return {0.0, 0.0, -1.0};
    const auto res = runAc(c, op, spice::AcSpec::logSweep(1e6, 1e12, 8));
    return {res.magnitudeDb(0, saMid), res.cornerFrequency(saMid).value_or(0.0),
            op.v(saMid)};
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F17", "sense-amplifier small-signal gain/bandwidth (AC analysis)",
                  "the full-swing skewed inverter has high gain near its trip point and "
                  "GHz-class bandwidth; the low-swing ratioed PMOS amp trades gain for a "
                  "trip point near the reduced precharge level; gain collapses away from "
                  "the trip region (the margin mechanism)");

    core::Table t({"sense stage", "ML bias [V]", "bias out [V]", "gain [dB]",
                   "-3dB corner"});
    for (const double bias : {0.20, 0.30, 0.40, 0.50, 0.70, 1.00}) {
        const auto fs = characterize(false, bias);
        t.addRow({"full-swing inverter", core::numFormat(bias, 2),
                  core::numFormat(fs.biasOut, 3), core::numFormat(fs.gainDb, 1),
                  fs.corner > 0 ? core::engFormat(fs.corner, "Hz") : "-"});
    }
    for (const double bias : {0.05, 0.15, 0.25, 0.40}) {
        const auto ls = characterize(true, bias);
        t.addRow({"low-swing PMOS amp", core::numFormat(bias, 2),
                  core::numFormat(ls.biasOut, 3), core::numFormat(ls.gainDb, 1),
                  ls.corner > 0 ? core::engFormat(ls.corner, "Hz") : "-"});
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
