// F13 — Matchline keeper ablation: the keeper removes match-state leakage
// sag (rescuing wide ReRAM words) at the cost of mismatch-detection delay
// and contention energy.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F13", "ML keeper ablation (full-swing sensing)",
                  "without the keeper the ReRAM match-state ML sags with width until the "
                  "sense margin collapses; the keeper pins matching MLs at the rail for "
                  "every width, paying a delay penalty on mismatch detection");

    core::Table t({"cell", "width", "keeper", "ML(match) [V]", "margin [V]",
                   "detect delay [ps]", "E mism word [fJ]", "ok"});
    for (const auto cell : {tcam::CellKind::ReRam2T2R, tcam::CellKind::FeFet2}) {
        for (const int bits : {16, 32, 64, 128}) {
            for (const bool keeper : {false, true}) {
                array::WordSimOptions o;
                o.config.cell = cell;
                o.config.wordBits = bits;
                o.config.mlKeeper = keeper;
                o.stored = array::calibrationWord(bits);
                o.key = o.stored;
                const auto match = simulateWordSearch(o);
                o.key = array::keyWithMismatches(o.stored, 1);
                const auto mism = simulateWordSearch(o);
                const bool ok = match.correct() && mism.correct();
                t.addRow({cellKindName(cell), std::to_string(bits), keeper ? "on" : "off",
                          core::numFormat(match.mlAtSense, 3),
                          core::numFormat(match.mlAtSense - mism.mlAtSense, 3),
                          mism.detectDelay
                              ? core::numFormat(*mism.detectDelay * 1e12, 0)
                              : "-",
                          core::numFormat(mism.energyTotal * 1e15, 1),
                          ok ? "yes" : "NO"});
            }
        }
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
