// F3 — Array search energy vs word width for all designs (64 rows).
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F3", "search energy per bit vs word width (64 rows)",
                  "energy/bit roughly flat-to-rising with width for all designs; FeFET "
                  "below ReRAM below CMOS at every width; energy-aware variants a further "
                  "2-4x down; gap widens slightly at large widths (ML capacitance)");

    const auto tech = device::TechCard::cmos45();
    const std::vector<double> widths{8, 16, 32, 64, 128};
    const auto catalog = core::standardDesigns(8, 64);

    std::vector<std::pair<std::string, std::vector<double>>> fjPerBit;
    std::vector<std::pair<std::string, std::vector<double>>> pjPerSearch;
    for (const auto& d : catalog) {
        std::vector<double> perBit, perSearch;
        for (const double w : widths) {
            auto cfg = d.config;
            cfg.wordBits = static_cast<int>(w);
            const auto m = evaluateArray(tech, cfg);
            perBit.push_back(m.energyPerBitFj);
            perSearch.push_back(m.perSearch.total() * 1e12);
        }
        fjPerBit.push_back({d.name, perBit});
        pjPerSearch.push_back({d.name, perSearch});
    }

    bench::printSeries("width[bits]", widths, fjPerBit, "fJ/bit/search");
    bench::printSeries("width[bits]", widths, pjPerSearch, "pJ/search");
    return 0;
}
