// F11 — Temperature sweep (-40C .. 125C): search energy, delay, margin and
// leakage for the FeFET designs and the CMOS baseline.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F11", "operating-temperature sweep, 32-bit words x 64 rows",
                  "hot silicon is slower (mobility loss beats VT drop at logic overdrive) "
                  "and leakier; margins shrink monotonically. The FeFET designs hold to "
                  "85 C but FAIL at 125 C: the low-VT stored state (VT ~ 0.05 V when hot) "
                  "leaks subthreshold current at Vgs=0 and discharges matching MLs — the "
                  "known high-temperature hazard of wide-memory-window FeFET TCAMs "
                  "(mitigations: higher mid-VT, negative SL idle bias, or an ML keeper)");

    const double tempsC[] = {-40.0, 0.0, 27.0, 85.0, 125.0};
    const auto base = device::TechCard::cmos45();

    core::Table t({"T [C]", "design", "E/search [fJ]", "delay [ps]", "margin [V]",
                   "ML(match) sag [mV]", "ok"});
    for (const double tc : tempsC) {
        const auto tech = base.atTemperature(tc + 273.15);
        struct Dut {
            const char* name;
            tcam::CellKind cell;
            array::SenseScheme sense;
        };
        const Dut duts[] = {
            {"CMOS-16T", tcam::CellKind::Cmos16T, array::SenseScheme::FullSwing},
            {"FeFET-2T", tcam::CellKind::FeFet2, array::SenseScheme::FullSwing},
            {"EA-FeFET", tcam::CellKind::FeFet2, array::SenseScheme::LowSwing},
        };
        for (const auto& d : duts) {
            array::ArrayConfig cfg;
            cfg.cell = d.cell;
            cfg.sense = d.sense;
            cfg.wordBits = 32;
            cfg.rows = 64;
            const auto m = evaluateArray(tech, cfg);
            const double sag =
                (m.matchWord.vPrecharge - m.matchWord.mlAtSense) * 1e3;
            t.addRow({core::numFormat(tc, 0), d.name,
                      core::numFormat(m.perSearch.total() * 1e15, 1),
                      core::numFormat(m.searchDelay * 1e12, 0),
                      core::numFormat(m.senseMarginV, 3), core::numFormat(sag, 1),
                      m.functional ? "yes" : "NO"});
        }
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
