// T2 — Headline array-level comparison at 128 x 64: all baselines and all
// cumulative energy-aware variants.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("T2", "array-level comparison, 128 rows x 64 bits",
                  "FeFET-2T beats both baselines on search energy and area; stacking the "
                  "energy-aware techniques (+LS, +VS, +SP) buys a further ~2-4x for a "
                  "latency penalty; total advantage vs 16T CMOS roughly 4-6x");

    const auto tech = device::TechCard::cmos45();
    core::Table t({"design", "E/search [pJ]", "fJ/bit", "delay [ps]", "cycle [ns]",
                   "Msearch/s", "area [MF^2]", "margin [V]", "ok"});
    double cmosEnergy = 0.0;
    std::vector<std::string> ratios;
    for (const auto& d : core::standardDesigns(64, 128)) {
        const auto m = evaluateArray(tech, d.config);
        const double e = m.perSearch.total();
        if (cmosEnergy == 0.0) cmosEnergy = e;
        ratios.push_back(core::numFormat(cmosEnergy / e, 2) + "x");
        t.addRow({d.name, core::numFormat(e * 1e12, 2),
                  core::numFormat(m.energyPerBitFj, 2),
                  core::numFormat(m.searchDelay * 1e12, 0),
                  core::numFormat(m.cycleTime * 1e9, 2),
                  core::numFormat(m.throughput / 1e6, 0),
                  core::numFormat(m.areaF2 / 1e6, 2), core::numFormat(m.senseMarginV, 3),
                  m.functional ? "yes" : "NO"});
    }
    std::printf("%s\n", t.toAligned().c_str());
    std::printf("energy advantage vs CMOS-16T:");
    for (const auto& r : ratios) std::printf("  %s", r.c_str());
    std::printf("\n");

    // Iso-area note: FeFET's 11x cell-area advantage means an iso-area FeFET
    // macro stores ~11x more entries than the 16T CMOS one.
    const double areaRatio = tech.areaCell16T / tech.areaCell2FeFet;
    std::printf("iso-area capacity advantage of FeFET vs CMOS-16T: %.1fx\n", areaRatio);
    return 0;
}
