// F8 — Ablation of the array-level energy-aware techniques: matchline
// segmentation (early termination) and selective precharge, across workload
// bit-match statistics.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F8", "ML segmentation & selective precharge ablation (64-bit, 128 rows)",
                  "energy drops steeply with segmentation/prefiltering when data is random "
                  "(later stages rarely activate) and the benefit shrinks as the workload "
                  "gets more correlated (bit-match probability -> 1); latency rises with "
                  "stage count");

    const auto tech = device::TechCard::cmos45();
    const double bitMatchProbs[] = {0.5, 0.75, 0.9};

    core::Table t({"config", "q(bit match)", "E/search [fJ]", "ML [fJ]", "delay [ps]",
                   "E vs baseline"});
    for (const double q : bitMatchProbs) {
        array::WorkloadProfile wl;
        wl.bitMatchProbability = q;
        wl.matchRowFraction = 1.0 / 128.0;

        double baseline = 0.0;
        struct Cfg {
            const char* name;
            int segments;
            bool selective;
            int prefilter;
        };
        const Cfg cfgs[] = {
            {"flat ML", 1, false, 0},      {"2 segments", 2, false, 0},
            {"4 segments", 4, false, 0},   {"8 segments", 8, false, 0},
            {"selective pre (2b)", 1, true, 2}, {"selective pre (4b)", 1, true, 4},
        };
        for (const auto& cc : cfgs) {
            array::ArrayConfig cfg;
            cfg.cell = tcam::CellKind::FeFet2;
            cfg.wordBits = 64;
            cfg.rows = 128;
            cfg.mlSegments = cc.segments;
            cfg.selectivePrecharge = cc.selective;
            cfg.prefilterBits = cc.prefilter;
            const auto m = evaluateArray(tech, cfg, wl);
            const double e = m.perSearch.total() * 1e15;
            if (baseline == 0.0) baseline = e;
            t.addRow({cc.name, core::numFormat(q, 2), core::numFormat(e, 1),
                      core::numFormat(m.perSearch.ml * 1e15, 1),
                      core::numFormat(m.searchDelay * 1e12, 0),
                      core::numFormat(100.0 * e / baseline, 1) + "%"});
        }
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
