// F12 — Retention: FeFET polarization decay over storage time and its effect
// on VT window and search margin (simulated with depolarized stored states).
#include <cmath>

#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F12", "FeFET retention: stored-state decay over time",
                  "polarization decays exponentially at zero field (~10% loss at the "
                  "10-year spec point): the VT window closes symmetrically and the search "
                  "margin follows; the 10-year point retains a comfortable margin, the "
                  "failure wall sits decades out");

    const auto tech = device::TechCard::cmos45();
    const double tauR = tech.fefet.ferro.tauRetention;
    std::printf("tauRetention = %s (~%.1f years)\n\n", core::engFormat(tauR, "s").c_str(),
                tauR / 3.15e7);

    core::Table t({"storage time", "pnorm", "VT_low [V]", "VT_high [V]", "window [V]",
                   "margin [V]", "ok"});
    const double times[] = {0.0,    3600.0,  86400.0, 3.15e7,
                            3.15e8, 9.46e8,  3.15e9};  // 0, 1h, 1d, 1y, 10y, 30y, 100y
    for (const double secs : times) {
        const double p = std::exp(-secs / tauR);

        // Degrade every stored cell's polarization magnitude by the decay.
        array::WordSimOptions o;
        o.tech = tech;
        o.config.cell = tcam::CellKind::FeFet2;
        o.config.wordBits = 16;
        o.stored = array::calibrationWord(16);
        o.variations.resize(16);
        // Encode aged states: enabled branch +p, disabled branch -p.
        for (std::size_t i = 0; i < o.stored.size(); ++i) {
            const auto enc = tcam::encodeTrit(o.stored[i]);
            o.variations[i].stateA = enc.aEnabled ? p : -p;
            o.variations[i].stateB = enc.bEnabled ? p : -p;
        }
        o.key = o.stored;
        const auto match = simulateWordSearch(o);
        o.key = array::keyWithMismatches(o.stored, 1);
        const auto mism = simulateWordSearch(o);

        const double vtLow = tech.fefet.mos.vt0 - tech.fefet.deltaVt * p;
        const double vtHigh = tech.fefet.mos.vt0 + tech.fefet.deltaVt * p;
        const bool ok = match.correct() && mism.correct();
        t.addRow({secs == 0.0 ? "fresh" : core::engFormat(secs, "s"),
                  core::numFormat(p, 3), core::numFormat(vtLow, 3),
                  core::numFormat(vtHigh, 3), core::numFormat(vtHigh - vtLow, 3),
                  core::numFormat(match.mlAtSense - mism.mlAtSense, 3),
                  ok ? "yes" : "NO"});
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
