// F10 — Write-path study: FeFET program/erase energy vs pulse voltage and
// width (the energy/endurance/write-latency trade-off), with ReRAM and SRAM
// reference points.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F10", "write energy vs pulse voltage/width",
                  "FeFET writes complete only above the coercive tail (Merz dynamics: "
                  "higher voltage switches exponentially faster); energy grows with both "
                  "voltage and width, so the cheapest *reliable* write sits just above "
                  "the switching boundary; ReRAM writes cost ~100x more (current-driven), "
                  "SRAM the least but is volatile and 16T-large");

    const auto tech = device::TechCard::cmos45();

    core::Table t({"V write [V]", "10 ns", "25 ns", "50 ns", "100 ns"});
    const double widths[] = {10e-9, 25e-9, 50e-9, 100e-9};
    for (const double v : {1.8, 2.0, 2.3, 2.6, 2.9, 3.2}) {
        std::vector<std::string> row{core::numFormat(v, 1)};
        for (const double w : widths) {
            const auto r = tcam::measureFeFetWrite(tech, v, w);
            row.push_back(core::engFormat(r.energyPerBit, "J") +
                          (r.verified ? "" : " (FAIL)"));
        }
        t.addRow(row);
    }
    std::printf("FeFET erase+program energy per bit (FAIL = polarization did not fully "
                "switch):\n%s\n", t.toAligned().c_str());

    const auto reram = tcam::measureReramWrite(tech, tech.vWriteReram, tech.tWriteReram);
    const auto sram = tcam::measureSramWrite(tech);
    std::printf("references: ReRAM RESET+SET %s (%s, verified=%s), SRAM 6T flip %s "
                "(%s, verified=%s)\n",
                core::engFormat(reram.energyPerBit, "J").c_str(),
                core::engFormat(reram.writeLatency, "s").c_str(),
                reram.verified ? "yes" : "no",
                core::engFormat(sram.energyPerBit, "J").c_str(),
                core::engFormat(sram.writeLatency, "s").c_str(),
                sram.verified ? "yes" : "no");

    // Endurance proxy: field across the 8 nm film per write voltage.
    std::printf("\nendurance proxy (field across 8 nm HZO film):\n");
    for (const double v : {2.3, 2.6, 2.9, 3.2})
        std::printf("  %.1f V -> %.2f MV/cm\n", v,
                    v / tech.fefet.ferro.thickness / 1e8);
    return 0;
}
