// F21 — Write-disturb study: the polarization drift of unselected (high-VT)
// FeFET cells that see a fraction of the write voltage during row writes,
// across bias schemes and disturb counts. The array designer's constraint:
// the scheme must keep unselected gates below the coercive tail.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F21", "FeFET half-select write disturb vs bias scheme",
                  "the naive V/2 scheme (1.6 V on unselected gates, above the 1.06 V "
                  "coercive tail) partially flips neighbours almost immediately; the "
                  "V/3 scheme (1.07 V) sits just at the tail edge and survives; V/4 and "
                  "grounded-unselected are safe indefinitely — why FeFET arrays use "
                  "Vw/3-or-better bias schemes");

    const auto tech = device::TechCard::cmos45();
    const double vw = tech.vWriteFe;

    const struct {
        const char* scheme;
        double vDisturb;
    } schemes[] = {
        {"V/2 (naive)", vw / 2.0},
        {"V/3", vw / 3.0},
        {"V/4", vw / 4.0},
        {"grounded", 0.0},
    };

    core::Table t({"bias scheme", "V on unselected [V]", "after 1e2", "after 1e4",
                   "after 1e6", "state ok after 1e6"});
    for (const auto& s : schemes) {
        // For a DC disturb level the hysteron relaxation composes: n pulses
        // of width w equal one pulse of width n*w, so the decade points are
        // evaluated directly instead of looping a million advances.
        const double p2 = tcam::measureWriteDisturb(tech, s.vDisturb, 1, 1e2 * tech.tWriteFe);
        const double p4 = tcam::measureWriteDisturb(tech, s.vDisturb, 1, 1e4 * tech.tWriteFe);
        const double p6 = tcam::measureWriteDisturb(tech, s.vDisturb, 1, 1e6 * tech.tWriteFe);
        t.addRow({s.scheme, core::numFormat(s.vDisturb, 2), core::numFormat(p2, 3),
                  core::numFormat(p4, 3), core::numFormat(p6, 3),
                  p6 < -0.9 ? "yes" : "CORRUPTED"});
    }
    std::printf("%s\n", t.toAligned().c_str());
    std::printf("(stored state starts at -1.0 = high-VT; drift toward +1 flips the cell "
                "to low-VT and corrupts the stored bit)\n");
    return 0;
}
