// F16 — NOR vs NAND FeFET TCAM organizations: energy, delay and margin vs
// word length (the density/energy vs speed/length trade).
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F16", "NOR vs NAND FeFET TCAM organization (64 rows)",
                  "NAND spends far less matchline energy (only the matching chain "
                  "discharges; mismatching rows stay precharged) and is ~1/3 smaller, but "
                  "the series chain makes match detection slow — delay grows steeply with "
                  "word length, which is why NAND CAM words stay short (<= ~16 bits) or "
                  "get segmented");

    const auto tech = device::TechCard::cmos45();
    core::Table t({"org", "bits", "E/search/row [fJ]", "array E/search [fJ]",
                   "event delay [ps]", "margin [V]", "area/cell [F^2]", "ok"});
    for (const int bits : {4, 8, 12, 16}) {
        for (const auto cell : {tcam::CellKind::FeFet2, tcam::CellKind::FeFet2Nand}) {
            array::ArrayConfig cfg;
            cfg.cell = cell;
            cfg.wordBits = bits;
            cfg.rows = 64;
            const auto m = evaluateArray(tech, cfg);
            t.addRow({cellKindName(cell), std::to_string(bits),
                      core::numFormat(m.mismatchWord.energyTotal * 1e15, 2),
                      core::numFormat(m.perSearch.total() * 1e15, 1),
                      core::numFormat(m.searchDelay * 1e12, 0),
                      core::numFormat(m.senseMarginV, 3),
                      core::numFormat(cellAreaF2(cell, tech), 0),
                      m.functional ? "yes" : "NO"});
        }
    }
    std::printf("%s\n", t.toAligned().c_str());
    std::printf("note: for NAND the reported event delay is MATCH detection (the chain "
                "discharging), for NOR it is mismatch detection.\n");
    return 0;
}
