// F9 — Application case studies: IP longest-prefix match, packet
// classification, and Hamming-nearest associative search, priced per query
// on the CMOS baseline vs the plain and energy-aware FeFET designs.
#include "bench_util.hpp"

using namespace fetcam;

namespace {

struct AppSpec {
    const char* name;
    int wordBits;
    int rows;
    array::WorkloadProfile workload;
};

void priceApp(const AppSpec& app, core::Table& t) {
    const auto tech = device::TechCard::cmos45();
    const core::DesignPoint designs[] = {
        core::standardDesigns(app.wordBits, app.rows)[0],  // CMOS-16T
        core::standardDesigns(app.wordBits, app.rows)[2],  // FeFET-2T
        core::proposedDesign(app.wordBits, app.rows),      // EA-FeFET full stack
    };
    double cmos = 0.0;
    for (const auto& d : designs) {
        auto cfg = d.config;
        // Approximate search needs full-word evaluation on every row.
        if (app.workload.matchRowFraction == 0.0) cfg.selectivePrecharge = false;
        const auto m = evaluateArray(tech, cfg, app.workload);
        const double e = m.perSearch.total();
        if (cmos == 0.0) cmos = e;
        t.addRow({app.name, d.name, core::engFormat(e, "J"),
                  core::engFormat(m.searchDelay, "s"),
                  core::engFormat(m.throughput, "q/s"),
                  core::numFormat(cmos / e, 2) + "x"});
    }
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F9", "application-level energy/throughput",
                  "per-query savings carry through at the application level: the proposed "
                  "design cuts lookup energy ~4x vs CMOS across routing, classification "
                  "and associative search");

    // Functional sanity for each application before pricing it.
    const auto table = apps::syntheticRoutingTable(128, 1);
    const auto queries = apps::syntheticQueryStream(table, 400, 0.8, 2);
    std::size_t hits = 0;
    for (const auto q : queries) {
        if (table.lookup(q) != table.lookupLinear(q)) {
            std::printf("LPM functional mismatch!\n");
            return 1;
        }
        hits += table.lookup(q).has_value();
    }

    const auto cls = apps::syntheticClassifier(128, 3);
    const auto pkts = apps::syntheticPackets(cls, 400, 0.7, 4);
    std::size_t clsHits = 0;
    for (const auto& p : pkts) clsHits += cls.classify(p).has_value();

    const auto rows = apps::randomHypervectors(128, 64, 5);
    apps::AssociativeMemory mem(64);
    for (const auto& r : rows) mem.add(r);
    numeric::Rng rng(6);
    int recalled = 0;
    for (int i = 0; i < 100; ++i) {
        const auto target = static_cast<std::size_t>(rng.uniformInt(0, 127));
        const auto noisy = apps::perturbWord(rows[target], 5, rng);
        recalled += mem.nearestViaDischarge(noisy).index == target;
    }
    std::printf("functional: LPM hit rate %.1f%%, classifier hit rate %.1f%%, "
                "associative recall %d%%\n\n",
                100.0 * hits / queries.size(), 100.0 * clsHits / pkts.size(), recalled);

    core::Table t({"application", "design", "E/query", "latency", "throughput",
                   "vs CMOS"});
    priceApp({"IP LPM (128x32)", 32, 128,
              {.matchRowFraction = 0.85 / 128.0, .bitMatchProbability = 0.5}}, t);
    priceApp({"classifier (128x104)", 104, 128,
              {.matchRowFraction = 0.7 / 128.0, .bitMatchProbability = 0.6}}, t);
    priceApp({"assoc. search (128x64)", 64, 128,
              {.matchRowFraction = 0.0, .bitMatchProbability = 0.5}}, t);
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
