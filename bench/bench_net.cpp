// NET — serving front-end micro-benchmarks: wire-protocol codec throughput
// (encode + incremental decode of CRC-framed QueryBatch messages, with a
// round-trip identity check) and the deadline-shed fast path (expired
// queries must be answered orders of magnitude faster than live ones,
// because they are refused before any entry is scanned and charged no
// search energy).
//
// Flags (beyond the shared --trace/--jobs): --frames N (default 200k),
// --batch N keys per frame (default 16), --queries N for the shed study
// (default 50k), --seed S.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/protocol.hpp"
#include "numeric/stats.hpp"
#include "obs/obs.hpp"
#include "serve/query_engine.hpp"

using namespace fetcam;

namespace {

double now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t randomBits(numeric::Rng& rng, std::uint32_t wordBits) {
    std::uint64_t v = 0;
    for (std::uint32_t got = 0; got < wordBits; got += 16)
        v = (v << 16) | static_cast<std::uint64_t>(rng.uniformInt(0, 0xFFFF));
    return wordBits >= 64 ? v : v & ((std::uint64_t{1} << wordBits) - 1);
}

net::QueryBatchBody makeBatch(std::uint64_t id, int keys, std::uint32_t wordBits,
                              numeric::Rng& rng) {
    net::QueryBatchBody b;
    b.requestId = id;
    b.deadlineMicros = 250;
    for (int k = 0; k < keys; ++k)
        b.keys.push_back(tcam::TernaryWord::fromBits(randomBits(rng, wordBits), wordBits));
    return b;
}

struct CodecResult {
    std::int64_t frames = 0;
    std::int64_t bytes = 0;
    double encodePerSec = 0.0;
    double decodePerSec = 0.0;
    double decodeMBps = 0.0;
    bool identical = false;
};

/// Encode N QueryBatch frames, then decode them back through the same
/// incremental decodeFrame() path the server's read loop uses (frames
/// concatenated into one stream, consumed frame by frame).
CodecResult runCodec(std::int64_t frames, int keysPerFrame, std::uint64_t seed) {
    constexpr std::uint32_t kWordBits = 32;
    numeric::Rng rng = numeric::Rng::forStream(seed, 0xBE5C);

    std::vector<net::QueryBatchBody> bodies;
    bodies.reserve(static_cast<std::size_t>(frames));
    for (std::int64_t i = 0; i < frames; ++i)
        bodies.push_back(makeBatch(static_cast<std::uint64_t>(i) + 1, keysPerFrame,
                                   kWordBits, rng));

    CodecResult r;
    r.frames = frames;

    double t0 = now();
    std::string stream;
    for (const auto& b : bodies)
        stream += net::encodeFrame(net::MsgType::QueryBatch, net::encodeQueryBatch(b));
    const double encodeSeconds = now() - t0;
    r.bytes = static_cast<std::int64_t>(stream.size());
    r.encodePerSec = static_cast<double>(frames) / encodeSeconds;

    bool identical = true;
    std::int64_t decoded = 0;
    t0 = now();
    std::string_view rest = stream;
    while (!rest.empty()) {
        const auto d = net::decodeFrame(rest, net::kDefaultMaxFrameBytes);
        if (d.status != net::DecodeResult::Status::Ok) {
            identical = false;
            break;
        }
        std::string err;
        const auto body = net::decodeQueryBatch(
            d.frame.body, kWordBits, static_cast<std::uint32_t>(keysPerFrame), &err);
        if (!body || body->requestId != static_cast<std::uint64_t>(decoded) + 1 ||
            body->keys != bodies[static_cast<std::size_t>(decoded)].keys)
            identical = false;
        ++decoded;
        rest.remove_prefix(d.consumed);
    }
    const double decodeSeconds = now() - t0;
    r.decodePerSec = static_cast<double>(decoded) / decodeSeconds;
    r.decodeMBps = static_cast<double>(r.bytes) / decodeSeconds / 1e6;
    r.identical = identical && decoded == frames;
    return r;
}

struct ShedResult {
    std::int64_t queries = 0;
    double liveQps = 0.0;
    double expiredQps = 0.0;
    double speedup = 0.0;
    double liveEnergy = 0.0;
    double expiredEnergy = 0.0;
    bool accounted = false;
};

/// Live queries pay a full masked scan; expired ones must be refused at
/// admission without touching a single entry or joule.
ShedResult runDeadlineShed(std::int64_t queries, std::uint64_t seed) {
    serve::EngineOptions o;
    o.shard.cell = tcam::CellKind::FeFet2;
    o.shard.sense = array::SenseScheme::LowSwing;
    o.shard.wordBits = 16;
    o.shard.rows = 64;
    o.capacity = 256;
    serve::QueryEngine engine(o);
    numeric::Rng rng = numeric::Rng::forStream(seed, 0x5EED);
    for (std::int64_t i = 0; i < engine.capacity(); ++i)
        engine.insert(tcam::TernaryWord::fromBits(randomBits(rng, 16), 16));

    constexpr int kBatch = 64;
    std::vector<tcam::TernaryWord> keys;
    keys.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i)
        keys.push_back(tcam::TernaryWord::fromBits(randomBits(rng, 16), 16));
    const std::int64_t batches = (queries + kBatch - 1) / kBatch;

    ShedResult r;
    r.queries = batches * kBatch;

    // Deadlines are absolute obs::monotonicSeconds() values; 0 means "no
    // deadline", so the already-expired one must stay strictly positive.
    const std::vector<double> live(kBatch, obs::monotonicSeconds() + 3600.0);
    const std::vector<double> expired(kBatch, 1e-9);
    serve::SubmitOptions liveOpts;
    liveOpts.deadlines = &live;
    serve::SubmitOptions expiredOpts;
    expiredOpts.deadlines = &expired;

    const double e0 = engine.stats().searchEnergy;
    double t0 = now();
    for (std::int64_t b = 0; b < batches; ++b) engine.submitBatch(keys, liveOpts, 1);
    r.liveQps = static_cast<double>(r.queries) / (now() - t0);
    r.liveEnergy = engine.stats().searchEnergy - e0;

    const double e1 = engine.stats().searchEnergy;
    t0 = now();
    for (std::int64_t b = 0; b < batches; ++b)
        engine.submitBatch(keys, expiredOpts, 1);
    r.expiredQps = static_cast<double>(r.queries) / (now() - t0);
    r.expiredEnergy = engine.stats().searchEnergy - e1;

    r.speedup = r.expiredQps / r.liveQps;
    r.accounted = engine.stats().deadlineExpired == r.queries &&
                  r.expiredEnergy == 0.0 && r.liveEnergy > 0.0;
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);

    std::int64_t frames = 200'000;
    int batch = 16;
    std::int64_t queries = 50'000;
    std::uint64_t seed = 42;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--frames" && i + 1 < argc) {
            frames = std::atoll(argv[++i]);
        } else if (arg == "--batch" && i + 1 < argc) {
            batch = std::atoi(argv[++i]);
        } else if (arg == "--queries" && i + 1 < argc) {
            queries = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: bench_net [--frames N] [--batch K] [--queries N] "
                         "[--seed S]\n");
            return 2;
        }
    }
    if (frames < 1 || batch < 1 || queries < 1) {
        std::fprintf(stderr, "error: --frames/--batch/--queries must be >= 1\n");
        return 2;
    }

    bench::banner("NET", "serving front-end: codec + deadline shed",
                  "codec round-trips bit-identically at >=100k frames/s; expired "
                  "queries shed far faster than live scans and charge zero energy");

    const CodecResult c = runCodec(frames, batch, seed);
    core::Table ct({"codec path", "frames", "keys/frame", "rate", "identical"});
    ct.addRow({"encode", std::to_string(c.frames), std::to_string(batch),
               core::engFormat(c.encodePerSec, "fr/s"), ""});
    ct.addRow({"decode+validate", std::to_string(c.frames), std::to_string(batch),
               core::engFormat(c.decodePerSec, "fr/s") + " (" +
                   core::numFormat(c.decodeMBps, 1) + " MB/s)",
               c.identical ? "yes" : "NO"});
    std::printf("%s\n", ct.toAligned().c_str());

    const ShedResult s = runDeadlineShed(queries, seed);
    core::Table st({"admission path", "queries", "rate", "energy", "accounted"});
    st.addRow({"live scan", std::to_string(s.queries),
               core::engFormat(s.liveQps, "q/s"), core::engFormat(s.liveEnergy, "J"),
               ""});
    st.addRow({"expired shed", std::to_string(s.queries),
               core::engFormat(s.expiredQps, "q/s"),
               core::engFormat(s.expiredEnergy, "J"), s.accounted ? "yes" : "NO"});
    std::printf("shed speedup over live scan: %sx\n\n",
                core::numFormat(s.speedup, 1).c_str());

    std::printf("%s\n", st.toAligned().c_str());

    if (!c.identical) {
        std::fprintf(stderr, "FAIL: codec round trip diverged\n");
        return 1;
    }
    if (!s.accounted) {
        std::fprintf(stderr,
                     "FAIL: deadline shed accounting (expired energy must be zero)\n");
        return 1;
    }
    return 0;
}
