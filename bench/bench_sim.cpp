// SIM — similarity-search study: throughput of nearestK / thresholdMatch
// across the match backends, bit-identity against the naive oracle, and the
// MLC (multi-level-cell) energy / sense-margin tradeoff vs bits-per-cell.
//
// Three parts:
//   * oracle gate — every engine backend (scalar row scan, bit-plane,
//     checked) answers every query bit-identically to sim::naiveSimilarity
//     over the same entry table, for both query kinds; any divergence makes
//     the bench exit non-zero (this is the committed contract, not a perf
//     number),
//   * throughput — keys/s through QueryEngine::similarityBatch per backend
//     and kind, on a pre-generated deterministic query stream,
//   * MLC table — characterizeMlc at 1..4 bits per cell on the same array
//     geometry: states per cell, sense margin (shrinks as 1/(N-1)), search
//     delay (grows as N-1), and energy per stored bit (drops with the line
//     ratio) — the density/robustness tradeoff the DESIGN doc describes.
//
// Flags (beyond the shared --trace/--jobs): --rows N (default 4096), --bits B
// (default 64), --queries Q (default 512), --k K (default 8), --threshold D
// (default 4), --seed S, --json FILE.
#include <chrono>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/query_engine.hpp"
#include "sim/mlc_model.hpp"
#include "sim/similarity.hpp"

using namespace fetcam;

namespace {

double now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct SimSpec {
    std::int64_t rows = 4096;
    int bits = 64;
    std::int64_t queries = 512;
    int k = 8;
    int threshold = 4;
    std::uint64_t seed = 42;
    int jobs = 0;
};

/// Deterministic entry table: mostly-definite words with a sprinkle of
/// wildcards, and every 7th row left empty (exercises kNoEntry skipping).
std::vector<std::optional<tcam::TernaryWord>> makeEntries(const SimSpec& s) {
    numeric::Rng rng = numeric::Rng::forStream(s.seed, 0x51AAu);
    std::vector<std::optional<tcam::TernaryWord>> entries(
        static_cast<std::size_t>(s.rows));
    for (std::int64_t row = 0; row < s.rows; ++row) {
        if (row % 7 == 3) continue;  // hole in the table
        tcam::TernaryWord w(static_cast<std::size_t>(s.bits));
        for (int b = 0; b < s.bits; ++b)
            w[static_cast<std::size_t>(b)] = rng.uniform() < 0.1 ? tcam::Trit::X
                                             : rng.bernoulli(0.5) ? tcam::Trit::One
                                                                  : tcam::Trit::Zero;
        entries[static_cast<std::size_t>(row)] = std::move(w);
    }
    return entries;
}

/// Query stream: 70% near-duplicates of a stored row (a few definite-bit
/// flips, wildcards resolved) so small distances actually occur, 30% random.
std::vector<tcam::TernaryWord> makeKeys(const SimSpec& s,
                                        const std::vector<std::optional<tcam::TernaryWord>>& entries) {
    numeric::Rng rng = numeric::Rng::forStream(s.seed, 0x5EEDu);
    std::vector<tcam::TernaryWord> keys;
    keys.reserve(static_cast<std::size_t>(s.queries));
    for (std::int64_t q = 0; q < s.queries; ++q) {
        tcam::TernaryWord key(static_cast<std::size_t>(s.bits));
        const auto& base = entries[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(s.rows) - 1))];
        if (base && rng.uniform() < 0.7) {
            for (int b = 0; b < s.bits; ++b) {
                const tcam::Trit t = (*base)[static_cast<std::size_t>(b)];
                key[static_cast<std::size_t>(b)] =
                    t == tcam::Trit::X ? (rng.bernoulli(0.5) ? tcam::Trit::One
                                                             : tcam::Trit::Zero)
                                       : t;
            }
            const int flips = rng.uniformInt(0, 8);
            for (int f = 0; f < flips; ++f) {
                const auto b = static_cast<std::size_t>(rng.uniformInt(0, s.bits - 1));
                key[b] = key[b] == tcam::Trit::One ? tcam::Trit::Zero : tcam::Trit::One;
            }
        } else {
            for (int b = 0; b < s.bits; ++b)
                key[static_cast<std::size_t>(b)] =
                    rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
        }
        keys.push_back(std::move(key));
    }
    return keys;
}

serve::EngineOptions engineOptions(const SimSpec& s, serve::MatchBackendKind backend) {
    serve::EngineOptions base;
    base.shard.cell = tcam::CellKind::FeFet2;
    base.shard.sense = array::SenseScheme::LowSwing;
    base.shard.rows = 64;
    base.shard.wordBits = s.bits;
    base.capacity = s.rows;
    base.backend = backend;
    return base;
}

struct BackendRun {
    std::string backend;
    std::string kind;
    double seconds = 0.0;
    double keysPerSec = 0.0;
    std::int64_t rowsReturned = 0;
    bool identical = false;
};

struct MlcRow {
    int bitsPerCell = 0;
    int statesPerCell = 0;
    int cellsPerWord = 0;
    double senseMarginV = 0.0;
    double searchDelay = 0.0;
    double energyPerBitFj = 0.0;
    bool functional = false;
};

void writeJson(const std::string& path, const SimSpec& s, bool identical,
               const std::vector<BackendRun>& runs, const std::vector<MlcRow>& mlc) {
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    os.precision(17);
    os << "{\n  \"bench\": \"bench_sim\",\n";
    os << "  \"deterministic\": {\n";
    os << "    \"rows\": " << s.rows << ",\n    \"bits\": " << s.bits
       << ",\n    \"queries\": " << s.queries << ",\n    \"k\": " << s.k
       << ",\n    \"threshold\": " << s.threshold << ",\n";
    os << "    \"identical\": " << (identical ? "true" : "false") << ",\n";
    os << "    \"rowsReturned\": {";
    bool first = true;
    for (const auto& r : runs) {
        if (r.backend != "bitplane") continue;  // one canonical copy per kind
        if (!first) os << ", ";
        first = false;
        os << "\"" << r.kind << "\": " << r.rowsReturned;
    }
    os << "},\n    \"mlc\": [\n";
    for (std::size_t i = 0; i < mlc.size(); ++i) {
        const auto& m = mlc[i];
        os << "      {\"bitsPerCell\": " << m.bitsPerCell
           << ", \"statesPerCell\": " << m.statesPerCell
           << ", \"cellsPerWord\": " << m.cellsPerWord
           << ", \"senseMarginV\": " << m.senseMarginV
           << ", \"searchDelayS\": " << m.searchDelay
           << ", \"energyPerBitFj\": " << m.energyPerBitFj
           << ", \"functional\": " << (m.functional ? "true" : "false") << "}"
           << (i + 1 < mlc.size() ? "," : "") << "\n";
    }
    os << "    ]\n  },\n";
    os << "  \"volatile\": {\n    \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto& r = runs[i];
        os << "      {\"backend\": \"" << r.backend << "\", \"kind\": \"" << r.kind
           << "\", \"seconds\": " << r.seconds << ", \"keysPerSec\": " << r.keysPerSec
           << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);

    SimSpec s;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--rows" && i + 1 < argc) {
            s.rows = std::atoll(argv[++i]);
        } else if (arg == "--bits" && i + 1 < argc) {
            s.bits = std::atoi(argv[++i]);
        } else if (arg == "--queries" && i + 1 < argc) {
            s.queries = std::atoll(argv[++i]);
        } else if (arg == "--k" && i + 1 < argc) {
            s.k = std::atoi(argv[++i]);
        } else if (arg == "--threshold" && i + 1 < argc) {
            s.threshold = std::atoi(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            s.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            s.jobs = std::atoi(argv[++i]);
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_sim [--rows N] [--bits B] [--queries Q] [--k K] "
                         "[--threshold D] [--seed S] [--jobs J] [--json FILE]\n");
            return 2;
        }
    }
    if (s.rows < 1 || s.bits < 1 || s.queries < 1 || s.k < 1 || s.threshold < 0) {
        std::fprintf(stderr, "error: flag out of range\n");
        return 2;
    }

    bench::banner("SIM", "similarity search: nearest-k / threshold",
                  "every backend bit-identical to the naive oracle; MLC model "
                  "prices the density/margin tradeoff");

    const auto entries = makeEntries(s);
    const auto keys = makeKeys(s, entries);

    // Oracle answers, once per kind — the reference every backend must hit.
    sim::SimilarityOptions nearestOpts;
    nearestOpts.kind = sim::SimilarityKind::NearestK;
    nearestOpts.k = s.k;
    nearestOpts.maxResults = std::max(s.k, 64);
    sim::SimilarityOptions thresholdOpts;
    thresholdOpts.kind = sim::SimilarityKind::Threshold;
    thresholdOpts.maxDistance = static_cast<std::size_t>(s.threshold);
    std::vector<sim::SimilarityHits> oracleNearest, oracleThreshold;
    oracleNearest.reserve(keys.size());
    oracleThreshold.reserve(keys.size());
    for (const auto& key : keys) {
        oracleNearest.push_back(sim::naiveSimilarity(entries, key, nearestOpts));
        oracleThreshold.push_back(sim::naiveSimilarity(entries, key, thresholdOpts));
    }

    const std::pair<serve::MatchBackendKind, const char*> backends[] = {
        {serve::MatchBackendKind::Scalar, "scalar"},
        {serve::MatchBackendKind::BitPlane, "bitplane"},
        {serve::MatchBackendKind::Checked, "checked"},
    };
    std::vector<BackendRun> runs;
    bool identical = true;
    for (const auto& [kind, name] : backends) {
        serve::QueryEngine engine(engineOptions(s, kind));
        for (std::int64_t row = 0; row < s.rows; ++row)
            if (entries[static_cast<std::size_t>(row)])
                engine.insertAt(row, *entries[static_cast<std::size_t>(row)]);

        for (const bool nearest : {true, false}) {
            const auto& opts = nearest ? nearestOpts : thresholdOpts;
            const auto& oracle = nearest ? oracleNearest : oracleThreshold;
            const double t0 = now();
            const auto out = engine.similarityBatch(keys, opts, s.jobs);
            const double dt = now() - t0;
            BackendRun r;
            r.backend = name;
            r.kind = nearest ? "nearest" : "threshold";
            r.seconds = dt;
            r.keysPerSec = static_cast<double>(keys.size()) / dt;
            r.rowsReturned = out.rowsReturned;
            r.identical = out.hits == oracle;
            identical = identical && r.identical;
            runs.push_back(std::move(r));
        }
    }

    core::Table t({"backend", "kind", "keys/s", "rows returned", "identical"});
    for (const auto& r : runs)
        t.addRow({r.backend, r.kind, core::engFormat(r.keysPerSec, "k/s"),
                  std::to_string(r.rowsReturned), r.identical ? "yes" : "NO"});
    std::printf("%s\n", t.toAligned().c_str());

    // MLC density/margin tradeoff on the same geometry.
    const serve::EngineOptions base = engineOptions(s, serve::MatchBackendKind::BitPlane);
    std::vector<MlcRow> mlc;
    for (int bpc = 1; bpc <= device::kMaxMlcBitsPerCell; ++bpc) {
        sim::MlcOptions mo;
        mo.bitsPerCell = bpc;
        mo.workload = base.workload;
        const auto c = sim::characterizeMlc(base.tech, base.shard, mo);
        MlcRow row;
        row.bitsPerCell = c.bitsPerCell;
        row.statesPerCell = c.statesPerCell;
        row.cellsPerWord = c.cellsPerWord;
        row.senseMarginV = c.senseMarginV;
        row.searchDelay = c.searchDelay;
        row.energyPerBitFj = c.energyPerBitFj;
        row.functional = c.functional;
        mlc.push_back(row);
    }
    core::Table m({"bits/cell", "states", "cells/word", "sense margin", "search delay",
                   "energy/bit", "functional"});
    for (const auto& row : mlc)
        m.addRow({std::to_string(row.bitsPerCell), std::to_string(row.statesPerCell),
                  std::to_string(row.cellsPerWord), core::engFormat(row.senseMarginV, "V"),
                  core::engFormat(row.searchDelay, "s"),
                  core::numFormat(row.energyPerBitFj, 3) + " fJ",
                  row.functional ? "yes" : "NO"});
    std::printf("%s\n", m.toAligned().c_str());

    if (!jsonPath.empty()) writeJson(jsonPath, s, identical, runs, mlc);

    if (!identical) {
        std::fprintf(stderr, "FAIL: a backend diverged from the naive oracle\n");
        return 1;
    }
    return 0;
}
