// F18 — FeFET endurance: available polarization, VT window and simulated
// search margin vs accumulated program/erase cycles (wake-up then fatigue).
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F18", "FeFET endurance: wake-up, plateau, fatigue",
                  "polarization rises slightly over the first ~1e4 cycles (wake-up), "
                  "holds to ~1e5, then fatigues ~6%/decade; the search margin tracks the "
                  "closing VT window and the functional endurance limit lands around "
                  "1e10-1e12 cycles — comfortably above TCAM update rates");

    const auto tech = device::TechCard::cmos45();
    const device::PreisachBank refBank(tech.fefet.ferro);

    core::Table t({"cycles", "endurance factor", "VT window [V]", "margin [V]", "ok"});
    for (const double cycles : {0.0, 1e2, 1e4, 1e5, 1e7, 1e9, 1e11, 1e13}) {
        const double f = refBank.enduranceFactor(cycles);

        array::WordSimOptions o;
        o.tech = tech;
        o.config.cell = tcam::CellKind::FeFet2;
        o.config.wordBits = 16;
        o.stored = array::calibrationWord(16);
        o.variations.resize(16);
        for (std::size_t i = 0; i < o.stored.size(); ++i) {
            const auto enc = tcam::encodeTrit(o.stored[i]);
            o.variations[i].stateA = enc.aEnabled ? f : -f;
            o.variations[i].stateB = enc.bEnabled ? f : -f;
        }
        o.key = o.stored;
        const auto match = simulateWordSearch(o);
        o.key = array::keyWithMismatches(o.stored, 1);
        const auto mism = simulateWordSearch(o);
        const bool ok = match.correct() && mism.correct();
        t.addRow({cycles == 0.0 ? "pristine" : core::engFormat(cycles, ""),
                  core::numFormat(f, 3),
                  core::numFormat(2.0 * tech.fefet.deltaVt * f, 3),
                  core::numFormat(match.mlAtSense - mism.mlAtSense, 3),
                  ok ? "yes" : "NO"});
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
