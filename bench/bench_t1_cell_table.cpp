// T1 — Cell-level comparison table: device counts, area, search energy and
// delay (16-bit word), write energy and latency, match-state standby cost.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("T1", "cell comparison across technologies",
                  "FeFET wins device count, area, search energy and write energy vs 16T "
                  "CMOS; ReRAM is compact but pays HRS leakage on matches and high write "
                  "energy; CMOS has the fastest, lowest-voltage writes");

    const auto tech = device::TechCard::cmos45();
    constexpr int kBits = 16;

    core::Table t({"metric", "CMOS-16T", "ReRAM-2T2R", "FeFET-2T"});
    const tcam::CellKind kinds[] = {tcam::CellKind::Cmos16T, tcam::CellKind::ReRam2T2R,
                                    tcam::CellKind::FeFet2};

    auto rowOf = [&](const char* name, auto fn) {
        std::vector<std::string> cells{name};
        for (const auto k : kinds) cells.push_back(fn(k));
        t.addRow(cells);
    };

    rowOf("devices / cell", [&](tcam::CellKind k) {
        const auto c = cellDeviceCount(k);
        std::string s;
        if (c.transistors) s += std::to_string(c.transistors) + "T";
        if (c.fefets) s += std::to_string(c.fefets) + "FeFET";
        if (c.rerams) s += (s.empty() ? "" : "+") + std::to_string(c.rerams) + "R";
        return s;
    });
    rowOf("cell area [F^2]", [&](tcam::CellKind k) {
        return core::numFormat(cellAreaF2(k, tech), 0);
    });

    struct SearchNums {
        array::WordSimResult match, mism;
    };
    std::vector<SearchNums> search;
    for (const auto k : kinds) {
        array::WordSimOptions o;
        o.config.cell = k;
        o.config.wordBits = kBits;
        o.stored = array::calibrationWord(kBits);
        o.key = o.stored;
        SearchNums n;
        n.match = simulateWordSearch(o);
        o.key = array::keyWithMismatches(o.stored, 1);
        n.mism = simulateWordSearch(o);
        search.push_back(n);
    }
    std::size_t idx = 0;
    auto searchRow = [&](const char* name, auto fn) {
        std::vector<std::string> cells{name};
        for (idx = 0; idx < search.size(); ++idx) cells.push_back(fn(search[idx]));
        t.addRow(cells);
    };
    searchRow("search E, mismatch word [fJ/bit]", [&](const SearchNums& n) {
        return core::numFormat(n.mism.energyTotal / kBits * 1e15, 2);
    });
    searchRow("search E, match word [fJ/bit]", [&](const SearchNums& n) {
        return core::numFormat(n.match.energyTotal / kBits * 1e15, 2);
    });
    searchRow("mismatch detect delay", [&](const SearchNums& n) {
        return n.mism.detectDelay ? core::engFormat(*n.mism.detectDelay, "s") : "-";
    });
    searchRow("ML sense margin [V]", [&](const SearchNums& n) {
        return core::numFormat(n.match.mlAtSense - n.mism.mlAtSense, 3);
    });

    std::vector<tcam::WriteEnergyResult> writes;
    for (const auto k : kinds) writes.push_back(measureWriteEnergy(k, tech));
    idx = 0;
    auto writeRow = [&](const char* name, auto fn) {
        std::vector<std::string> cells{name};
        for (idx = 0; idx < writes.size(); ++idx) cells.push_back(fn(writes[idx]));
        t.addRow(cells);
    };
    writeRow("write energy / bit", [&](const tcam::WriteEnergyResult& w) {
        return core::engFormat(w.energyPerBit, "J");
    });
    writeRow("write latency", [&](const tcam::WriteEnergyResult& w) {
        return core::engFormat(w.writeLatency, "s");
    });
    writeRow("write verified", [&](const tcam::WriteEnergyResult& w) {
        return std::string(w.verified ? "yes" : "NO");
    });

    std::printf("%s", t.toAligned().c_str());
    return 0;
}
