// F5 — Per-search energy breakdown (ML / SL / SA / static rail) per design,
// 64 x 64 array.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F5", "array energy breakdown by component (64x64)",
                  "conventional designs are matchline-dominated; low-swing moves the "
                  "bottleneck to the sense amps; selective precharge shrinks the ML slice "
                  "to the prefilter stage");

    const auto tech = device::TechCard::cmos45();
    core::Table t({"design", "ML [fJ]", "SL [fJ]", "SA [fJ]", "static [fJ]", "total [fJ]",
                   "ML share"});
    for (const auto& d : core::standardDesigns(64, 64)) {
        const auto m = evaluateArray(tech, d.config);
        const auto& e = m.perSearch;
        t.addRow({d.name, core::numFormat(e.ml * 1e15, 1), core::numFormat(e.sl * 1e15, 1),
                  core::numFormat(e.sa * 1e15, 1), core::numFormat(e.staticRail * 1e15, 1),
                  core::numFormat(e.total() * 1e15, 1),
                  core::numFormat(100.0 * e.ml / e.total(), 1) + "%"});
    }
    std::printf("%s", t.toAligned().c_str());
    std::printf("\nnote: SL can read slightly negative for the SRAM cell — floating cell "
                "mid-nodes charge from the ML and bootstrap charge back into idle "
                "searchlines; the ML column pays for it.\n");
    return 0;
}
