// CHURN — route-churn replay: mutation-under-load study for the query
// engine's snapshot-isolated table. A steady search stream runs twice —
// first against a frozen table (baseline), then with a mutator thread
// erasing / re-installing entries at a paced update rate (apps::ChurnWorkload
// flap sequence) — and the bench reports the search-latency impact of the
// churn, the achieved update rate, and the write-energy share (program/erase
// joules as a fraction of total table energy, priced by tcam::planWordWrite
// through the engine's write accounting).
//
// Correctness gates (the bench fails on any):
//   * after the mutator joins, every row's entryAt matches the workload's
//     membership bitmap — the engine landed on exactly the expected table,
//   * a final query batch is bit-identical to a naive oracle scan over that
//     expected table,
//   * every mutation was charged: stats().inserts + erases equals the ops
//     applied, and writeEnergy equals ops * writeCost().energy.
//
// Flags (beyond the shared --trace/--jobs): --rows N (default 2048), --bits B
// (default 64), --duration S per phase (default 1.0), --updates-per-sec U
// (default 2000), --batch Q (default 512), --seed S, --json FILE.
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>
#include <vector>

#include "apps/churn.hpp"
#include "bench_util.hpp"
#include "serve/query_engine.hpp"

using namespace fetcam;

namespace {

double now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct PhaseResult {
    std::int64_t queries = 0;
    std::int64_t batches = 0;
    double seconds = 0.0;
    double qps = 0.0;
    double batchP50 = 0.0;  ///< [s]
    double batchP99 = 0.0;  ///< [s]
};

struct ChurnResult {
    std::int64_t rows = 0;
    int bits = 0;
    double updatesPerSecTarget = 0.0;
    PhaseResult baseline;
    PhaseResult churn;
    std::int64_t updatesApplied = 0;
    double achievedUpdatesPerSec = 0.0;
    double latencyImpactP99 = 0.0;  ///< churn p99 / baseline p99
    std::int64_t inserts = 0;
    std::int64_t erases = 0;
    double writeEnergyJ = 0.0;
    double searchEnergyJ = 0.0;
    double writeEnergyShare = 0.0;  ///< write / (write + search)
    double wordWriteEnergyJ = 0.0;  ///< per-mutation price (planWordWrite)
    double wordWriteLatencyS = 0.0;
    int wordWritePhases = 0;
    bool identical = false;
};

/// Run `duration` seconds of back-to-back search batches, cycling through a
/// pre-generated query stream.
PhaseResult runSearchPhase(serve::QueryEngine& engine,
                           const std::vector<std::vector<tcam::TernaryWord>>& batches,
                           double duration, int jobs) {
    PhaseResult r;
    std::vector<double> samples;
    const double t0 = now();
    std::size_t b = 0;
    while (true) {
        const double tb = now();
        if (tb - t0 >= duration) break;
        const auto& keys = batches[b % batches.size()];
        ++b;
        (void)engine.searchBatch(keys, jobs);
        samples.push_back(now() - tb);
        r.queries += static_cast<std::int64_t>(keys.size());
    }
    r.seconds = now() - t0;
    r.batches = static_cast<std::int64_t>(samples.size());
    r.qps = static_cast<double>(r.queries) / r.seconds;
    if (!samples.empty()) {
        r.batchP50 = numeric::percentile(samples, 50.0);
        r.batchP99 = numeric::percentile(samples, 99.0);
    }
    return r;
}

ChurnResult runChurn(std::int64_t rows, int bits, double duration, double updatesPerSec,
                     std::size_t batchQueries, std::uint64_t seed, int jobs) {
    ChurnResult r;
    r.rows = rows;
    r.bits = bits;
    r.updatesPerSecTarget = updatesPerSec;

    apps::ChurnSpec spec;
    spec.rows = rows;
    spec.wordBits = bits;
    spec.seed = seed;
    apps::ChurnWorkload workload(spec);

    serve::EngineOptions base;
    base.shard.cell = tcam::CellKind::FeFet2;
    base.shard.sense = array::SenseScheme::LowSwing;
    base.shard.rows = 64;  // shard spans one whole bit-plane block
    base.shard.wordBits = bits;
    base.capacity = rows;
    serve::QueryEngine engine(base);
    for (std::int64_t row = 0; row < rows; ++row)
        engine.insertAt(row, workload.words()[static_cast<std::size_t>(row)]);
    const auto statsAfterLoad = engine.stats();

    // Pre-generate the query batches so the serving loop measures the
    // engine, not the generator.
    std::vector<std::vector<tcam::TernaryWord>> batches;
    for (int i = 0; i < 8; ++i)
        batches.push_back(workload.queryStream(batchQueries, 0.7, seed + 100 +
                                                                  static_cast<std::uint64_t>(i)));

    r.baseline = runSearchPhase(engine, batches, duration, jobs);

    // Churn phase: a paced mutator thread flaps entries (open-loop schedule,
    // like the load generator: op i fires at t0 + i/rate, late ops catch up)
    // while this thread keeps searching.
    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> applied{0};
    std::thread mutator([&] {
        const double t0 = now();
        std::int64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const double target = t0 + static_cast<double>(i) / updatesPerSec;
            while (!stop.load(std::memory_order_relaxed) && now() < target)
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            if (stop.load(std::memory_order_relaxed)) break;
            const apps::ChurnOp op = workload.next();
            if (op.insert)
                engine.insertAt(op.row, op.word);
            else
                engine.erase(op.row);
            ++i;
            applied.store(i, std::memory_order_relaxed);
        }
    });
    r.churn = runSearchPhase(engine, batches, duration, jobs);
    stop.store(true, std::memory_order_relaxed);
    mutator.join();
    r.updatesApplied = applied.load();
    r.achievedUpdatesPerSec = static_cast<double>(r.updatesApplied) / r.churn.seconds;
    r.latencyImpactP99 =
        r.baseline.batchP99 > 0.0 ? r.churn.batchP99 / r.baseline.batchP99 : 0.0;

    // --- verification against the workload oracle ---
    bool ok = engine.occupancy() == workload.installed();
    for (std::int64_t row = 0; row < rows && ok; ++row) {
        const auto entry = engine.entryAt(row);
        if (workload.present()[static_cast<std::size_t>(row)])
            ok = entry.has_value() && *entry == workload.words()[static_cast<std::size_t>(row)];
        else
            ok = !entry.has_value();
    }
    if (ok) {
        const auto keys = workload.queryStream(batchQueries, 0.7, seed + 999);
        const auto served = engine.searchBatch(keys, jobs);
        for (std::size_t q = 0; q < keys.size() && ok; ++q) {
            std::int64_t expect = -1;
            for (std::int64_t row = 0; row < rows; ++row) {
                if (workload.present()[static_cast<std::size_t>(row)] &&
                    workload.words()[static_cast<std::size_t>(row)].matchesUnchecked(
                        keys[q])) {
                    expect = row;
                    break;
                }
            }
            ok = served.rows[q] == expect;
        }
    }

    // --- write accounting: every mutation charged exactly one word write ---
    const auto stats = engine.stats();
    const auto cost = engine.writeCost();
    r.inserts = stats.inserts;
    r.erases = stats.erases;
    r.writeEnergyJ = stats.writeEnergy;
    r.searchEnergyJ = stats.searchEnergy;
    r.writeEnergyShare = stats.writeEnergy / (stats.writeEnergy + stats.searchEnergy);
    r.wordWriteEnergyJ = cost.energy;
    r.wordWriteLatencyS = cost.latency;
    r.wordWritePhases = cost.pulsePhases;
    const std::int64_t mutations = stats.inserts + stats.erases;
    ok = ok && mutations == rows + r.updatesApplied;  // initial load + churn ops
    ok = ok && std::abs(stats.writeEnergy -
                        static_cast<double>(mutations) * cost.energy) <=
                   1e-9 * stats.writeEnergy;
    ok = ok && statsAfterLoad.inserts == rows && statsAfterLoad.erases == 0;
    r.identical = ok;
    return r;
}

void writeJson(const std::string& path, const ChurnResult& r) {
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    os << "{\n  \"bench\": \"bench_churn\",\n";
    os << "  \"deterministic\": {\n";
    os << "    \"rows\": " << r.rows << ",\n";
    os << "    \"bits\": " << r.bits << ",\n";
    os << "    \"wordWriteEnergyJ\": " << r.wordWriteEnergyJ << ",\n";
    os << "    \"wordWriteLatencyS\": " << r.wordWriteLatencyS << ",\n";
    os << "    \"wordWritePhases\": " << r.wordWritePhases << ",\n";
    os << "    \"identical\": " << (r.identical ? "true" : "false") << "\n";
    os << "  },\n";
    os << "  \"volatile\": {\n";
    os << "    \"updatesPerSecTarget\": " << r.updatesPerSecTarget << ",\n";
    os << "    \"updatesApplied\": " << r.updatesApplied << ",\n";
    os << "    \"achievedUpdatesPerSec\": " << r.achievedUpdatesPerSec << ",\n";
    os << "    \"baselineQps\": " << r.baseline.qps << ",\n";
    os << "    \"churnQps\": " << r.churn.qps << ",\n";
    os << "    \"baselineBatchP50\": " << r.baseline.batchP50 << ",\n";
    os << "    \"baselineBatchP99\": " << r.baseline.batchP99 << ",\n";
    os << "    \"churnBatchP50\": " << r.churn.batchP50 << ",\n";
    os << "    \"churnBatchP99\": " << r.churn.batchP99 << ",\n";
    os << "    \"latencyImpactP99\": " << r.latencyImpactP99 << ",\n";
    os << "    \"inserts\": " << r.inserts << ",\n";
    os << "    \"erases\": " << r.erases << ",\n";
    os << "    \"writeEnergyJ\": " << r.writeEnergyJ << ",\n";
    os << "    \"searchEnergyJ\": " << r.searchEnergyJ << ",\n";
    os << "    \"writeEnergyShare\": " << r.writeEnergyShare << "\n";
    os << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);

    std::int64_t rows = 2048;
    int bits = 64;
    double duration = 1.0;
    double updatesPerSec = 2000.0;
    std::int64_t batchQueries = 512;
    std::uint64_t seed = 42;
    int jobs = 0;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--rows" && i + 1 < argc) {
            rows = std::atoll(argv[++i]);
        } else if (arg == "--bits" && i + 1 < argc) {
            bits = std::atoi(argv[++i]);
        } else if (arg == "--duration" && i + 1 < argc) {
            duration = std::atof(argv[++i]);
        } else if (arg == "--updates-per-sec" && i + 1 < argc) {
            updatesPerSec = std::atof(argv[++i]);
        } else if (arg == "--batch" && i + 1 < argc) {
            batchQueries = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_churn [--rows N] [--bits B] [--duration S] "
                         "[--updates-per-sec U] [--batch Q] [--seed S] [--jobs J] "
                         "[--json FILE]\n");
            return 2;
        }
    }
    if (rows < 1 || bits < 1 || duration <= 0.0 || updatesPerSec <= 0.0 ||
        batchQueries < 1) {
        std::fprintf(stderr, "error: flag out of range\n");
        return 2;
    }

    bench::banner("CHURN", "mutation-under-load replay",
                  "searches stay bit-identical to the oracle while a paced mutator "
                  "flaps entries; every mutation charged its planWordWrite cost");

    const ChurnResult r = runChurn(rows, bits, duration, updatesPerSec,
                                   static_cast<std::size_t>(batchQueries), seed, jobs);

    core::Table t({"phase", "qps", "batch p50", "batch p99", "updates/s"});
    t.addRow({"baseline", core::engFormat(r.baseline.qps, "q/s"),
              core::engFormat(r.baseline.batchP50, "s"),
              core::engFormat(r.baseline.batchP99, "s"), "-"});
    t.addRow({"churn", core::engFormat(r.churn.qps, "q/s"),
              core::engFormat(r.churn.batchP50, "s"),
              core::engFormat(r.churn.batchP99, "s"),
              core::engFormat(r.achievedUpdatesPerSec, "u/s")});
    std::printf("%s\n", t.toAligned().c_str());

    core::Table w({"mutations", "write energy", "search energy", "write share",
                   "p99 impact", "identical"});
    w.addRow({std::to_string(r.inserts + r.erases), core::engFormat(r.writeEnergyJ, "J"),
              core::engFormat(r.searchEnergyJ, "J"),
              core::numFormat(100.0 * r.writeEnergyShare, 2) + "%",
              core::numFormat(r.latencyImpactP99, 2) + "x", r.identical ? "yes" : "NO"});
    std::printf("%s\n", w.toAligned().c_str());

    if (!jsonPath.empty()) writeJson(jsonPath, r);

    if (!r.identical) {
        std::fprintf(stderr, "FAIL: churned table or accounting diverged from oracle\n");
        return 1;
    }
    return 0;
}
