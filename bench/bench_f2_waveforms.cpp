// F2 — Matchline discharge waveforms: match vs 1-bit mismatch for each cell
// technology (full-swing) and for the low-swing energy-aware scheme.
#include "bench_util.hpp"

using namespace fetcam;

namespace {

void traceDesign(const char* name, tcam::CellKind cell, array::SenseScheme sense) {
    array::WordSimOptions o;
    o.config.cell = cell;
    o.config.sense = sense;
    o.config.wordBits = 16;
    o.stored = array::calibrationWord(16);
    o.recordWaveforms = true;

    o.key = o.stored;
    const auto match = simulateWordSearch(o);
    o.key = array::keyWithMismatches(o.stored, 1);
    const auto mism = simulateWordSearch(o);

    std::printf("--- %s (%s) ---\n", name, senseSchemeName(sense));
    std::printf("%8s  %12s  %12s  %12s\n", "t [ps]", "ML match", "ML mism", "SAout mism");
    const double tEnd = o.config.timing.cycle();
    for (double t = 0.0; t <= tEnd + 1e-15; t += 50e-12) {
        std::printf("%8.0f  %12.4f  %12.4f  %12.4f\n", t * 1e12,
                    match.waveforms.nodeAt(match.mlNode, t),
                    mism.waveforms.nodeAt(mism.mlNode, t),
                    mism.waveforms.nodeAt(mism.saOutNode, t));
    }
    std::printf("decision: match=%s mismatch=%s; mismatch detect delay=%s\n\n",
                match.matchDetected ? "MATCH" : "MISS",
                mism.matchDetected ? "MATCH" : "MISS",
                mism.detectDelay ? core::engFormat(*mism.detectDelay, "s").c_str() : "n/a");
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F2", "matchline waveforms, match vs 1-bit mismatch",
                  "matching ML holds near the precharge level (small sag), mismatching ML "
                  "collapses within a few hundred ps; FeFET match sag smallest (gate-input "
                  "search, no resistive storage path); low-swing ML swings only 0.4 V");

    traceDesign("CMOS-16T", tcam::CellKind::Cmos16T, array::SenseScheme::FullSwing);
    traceDesign("ReRAM-2T2R", tcam::CellKind::ReRam2T2R, array::SenseScheme::FullSwing);
    traceDesign("FeFET-2T", tcam::CellKind::FeFet2, array::SenseScheme::FullSwing);
    traceDesign("EA-FeFET", tcam::CellKind::FeFet2, array::SenseScheme::LowSwing);
    return 0;
}
