// F20 — Modelling-accuracy ablation: lumped vs distributed matchline RC.
// Quantifies when the cheap lumped model that the main benches use is good
// enough, and what the wire adds at large word widths.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F20", "lumped vs distributed matchline model (far-end mismatch)",
                  "at today's per-cell wire parasitics the lumped model tracks the "
                  "distributed one within a few percent up to 64 bits; at 128 bits the "
                  "wire RC adds measurable worst-case (far-end) detection delay — the "
                  "point where the lumped shortcut starts flattering the design");

    core::Table t({"width", "model", "detect delay [ps]", "E(ML) [fJ]", "ML@sense [V]",
                   "delay err"});
    for (const int bits : {16, 32, 64, 128}) {
        double lumpedDelay = 0.0;
        for (const bool dist : {false, true}) {
            array::WordSimOptions o;
            o.config.cell = tcam::CellKind::FeFet2;
            o.config.wordBits = bits;
            o.config.distributedMl = dist;
            o.stored = array::calibrationWord(bits);
            // Far-end single mismatch: worst case for the distributed line.
            o.key = o.stored;
            for (std::size_t i = o.stored.size(); i-- > 0;) {
                o.key[i] = o.stored[i] == tcam::Trit::One ? tcam::Trit::Zero
                                                          : tcam::Trit::One;
                break;
            }
            const auto r = simulateWordSearch(o);
            const double d = r.detectDelay.value_or(0.0) * 1e12;
            if (!dist) lumpedDelay = d;
            t.addRow({std::to_string(bits), dist ? "distributed" : "lumped",
                      core::numFormat(d, 1), core::numFormat(r.energyMl * 1e15, 2),
                      core::numFormat(r.mlAtSense, 3),
                      dist ? core::numFormat(100.0 * (d - lumpedDelay) /
                                                 std::max(1.0, lumpedDelay), 1) + "%"
                           : "-"});
        }
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
