// F1 — Ferroelectric model validation: P-V major/minor hysteresis loops and
// the FeFET Id-Vg butterfly (memory window).
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F1", "FeFET P-V hysteresis and Id-Vg memory window",
                  "square-ish P-V loop saturating at +/-Ps with Vc ~ 1.45 V; minor loop "
                  "nested inside; Id-Vg curves separated by ~1.1 V memory window");

    const auto tech = device::TechCard::cmos45();
    const auto& fp = tech.fefet.ferro;
    std::printf("model: Ps=%.2f C/m^2, Vc=%.2f+/-%.2f V, %d hysterons\n\n", fp.ps, fp.vcMean,
                fp.vcSigma, fp.numHysterons);

    // --- major loop: -4 -> +4 -> -4 V quasi-static ---
    device::PreisachBank bank(fp);
    bank.settle(-5.0);
    std::vector<double> vs, ps;
    auto sweep = [&](double from, double to) {
        const double step = to > from ? 0.1 : -0.1;
        for (double v = from; (step > 0) ? v <= to + 1e-9 : v >= to - 1e-9; v += step) {
            bank.settle(v);
            vs.push_back(v);
            ps.push_back(bank.pnorm() * fp.ps * 100.0);  // uC/cm^2
        }
    };
    sweep(-4.0, 4.0);
    sweep(4.0, -4.0);
    std::printf("major loop (V, P[uC/cm^2]): %zu points\n", vs.size());
    for (std::size_t i = 0; i < vs.size(); i += 4)
        std::printf("  %+5.2f  %+7.2f\n", vs[i], ps[i]);

    // --- minor loop: +/-1.6 V from negative remanence ---
    bank.settle(-5.0);
    bank.settle(0.0);
    std::printf("\nminor loop +/-1.6 V (V, P):\n");
    for (double v : {1.6, 0.0, -1.6, 0.0, 1.6}) {
        bank.settle(v);
        std::printf("  %+5.2f  %+7.2f\n", v, bank.pnorm() * fp.ps * 100.0);
    }

    // --- Id-Vg butterfly at Vds = 50 mV for both stored states ---
    std::printf("\nId-Vg (Vds=50mV):   Vg      Id(low-VT)      Id(high-VT)\n");
    const auto& fep = tech.fefet;
    for (double vg = 0.0; vg <= 1.4001; vg += 0.1) {
        const double iLow = ekvChannel(fep.mos, vg, 0.05, fep.vtLow()).id;
        const double iHigh = ekvChannel(fep.mos, vg, 0.05, fep.vtHigh()).id;
        std::printf("                  %5.2f  %14.4e  %14.4e\n", vg, iLow, iHigh);
    }
    std::printf("\nmemory window: VT_low=%.2f V, VT_high=%.2f V (MW=%.2f V)\n", fep.vtLow(),
                fep.vtHigh(), fep.vtHigh() - fep.vtLow());

    // --- transient loop through the full circuit engine (FerroCap) ---
    spice::Circuit c;
    const auto nin = c.node("in");
    c.add<device::VoltageSource>(
        "V1", c, nin, spice::kGround,
        device::SourceWave::pwl({0.0, 50e-9, 150e-9, 250e-9}, {0.0, 4.0, -4.0, 4.0}));
    auto& fe = c.add<device::FerroCap>("F1", nin, spice::kGround, fp, 120e-9 * 45e-9);
    fe.setPolarization(-1.0);
    spice::TransientSpec spec;
    spec.tstop = 250e-9;
    spec.dtMax = 0.2e-9;
    runTransient(c, spec);
    std::printf("transient FerroCap cycle: final pnorm=%.3f, hysteresis loss=%s\n",
                fe.pnorm(), core::engFormat(fe.energy(), "J").c_str());
    return 0;
}
