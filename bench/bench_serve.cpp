// SERVE — characterize-then-serve throughput study: LPM and TLB workloads
// streamed through serve::QueryEngine, comparing warm-cache serving against
// the uncached pay-per-query solver cost, with bit-identity checks between
// the cached and uncached paths and across worker counts. Each workload also
// serves the identical query stream through the scalar match-backend oracle,
// so the committed baseline records both backends' throughput and the
// bit-plane path's answers are re-checked against the row-at-a-time scan
// (see bench_match for the isolated kernel numbers). Also benchmarks
// the persistent characterization store (append / load / compact throughput
// with a round-trip bit-identity check) so BENCH tracking covers the
// warm-restart path.
//
// Flags (beyond the shared --trace/--jobs): --queries N (default 1M),
// --store-records N (default 20000), --seed S, --json FILE
// (machine-readable results for CI).
#include <chrono>
#include <filesystem>
#include <fstream>

#include "bench_util.hpp"
#include "serve/adapters.hpp"
#include "store/char_store.hpp"

using namespace fetcam;

namespace {

double now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct WorkloadResult {
    std::string name;
    std::int64_t queries = 0;
    std::int64_t hits = 0;
    double coldBuildSeconds = 0.0;  ///< engine build paying real transients
    double warmBuildSeconds = 0.0;  ///< engine build on the warm cache
    double serveSeconds = 0.0;      ///< 1M-query serving time (warm engine)
    double warmQps = 0.0;           ///< bit-plane backend (the default)
    double scalarQps = 0.0;         ///< same queries on the scalar oracle
    double backendSpeedup = 0.0;    ///< warmQps / scalarQps
    double uncachedQps = 0.0;  ///< solver-transient-per-query rate
    double speedup = 0.0;
    std::int64_t cacheMisses = 0;  ///< real transients paid, total
    bool identical = false;  ///< cached==uncached hardware, jobs/cold/warm
                             ///< AND scalar/bit-plane backends agree
};

/// Cached and uncached paths must price the hardware identically, bit for
/// bit — they share every line of scaling arithmetic by construction.
bool sameHardware(const array::BankMetrics& a, const array::BankMetrics& b) {
    return a.subArrays == b.subArrays && a.rowsPerArray == b.rowsPerArray &&
           a.totalEntries == b.totalEntries && a.perSearch.ml == b.perSearch.ml &&
           a.perSearch.sl == b.perSearch.sl && a.perSearch.sa == b.perSearch.sa &&
           a.perSearch.staticRail == b.perSearch.staticRail &&
           a.encoderEnergy == b.encoderEnergy && a.searchDelay == b.searchDelay &&
           a.cycleTime == b.cycleTime && a.throughput == b.throughput &&
           a.areaF2 == b.areaF2 && a.functional == b.functional;
}

serve::EngineOptions baseOptions() {
    serve::EngineOptions base;
    base.shard.cell = tcam::CellKind::FeFet2;
    base.shard.sense = array::SenseScheme::LowSwing;
    base.shard.rows = 16;
    return base;
}

struct StoreBenchResult {
    std::int64_t uniqueRecords = 0;
    std::int64_t appendedRecords = 0;  ///< includes deliberate duplicates
    double appendSeconds = 0.0;        ///< append + flush (durable)
    double loadSeconds = 0.0;
    double compactSeconds = 0.0;
    double appendPerSec = 0.0;
    double loadPerSec = 0.0;
    std::int64_t logBytes = 0;        ///< before compaction (with duplicates)
    std::int64_t compactedBytes = 0;  ///< deduplicated snapshot
    bool roundTripIdentical = false;
};

/// Store micro-benchmark: realistic packed keys/payloads streamed through
/// the actual CharStore append / load / compact paths on a throwaway
/// directory. Every key is written twice so compaction has duplicates to
/// fold away, like a long-lived append log would.
StoreBenchResult runStoreBench(std::int64_t records, std::uint64_t seed) {
    namespace fs = std::filesystem;
    StoreBenchResult r;
    r.uniqueRecords = records;

    const fs::path dir = fs::temp_directory_path() / "fetcam_bench_serve_store";
    fs::remove_all(dir);

    store::StoreConfig cfg;
    cfg.dir = dir.string();
    cfg.schemaVersion = serve::kCharSchemaVersion;

    // Realistic record shapes: real keyOf() packings over varying 32-bit
    // ternary words, real packResult() payloads.
    numeric::Rng rng(seed);
    array::WordSimOptions opts;
    opts.config.cell = tcam::CellKind::FeFet2;
    opts.config.sense = array::SenseScheme::LowSwing;
    opts.config.wordBits = 32;
    std::vector<store::Record> written;
    written.reserve(static_cast<std::size_t>(records));
    for (std::int64_t i = 0; i < records; ++i) {
        tcam::TernaryWord w(32);
        for (std::size_t b = 0; b < 32; ++b)
            w[b] = rng.uniform() < 0.25 ? tcam::Trit::X
                                        : (rng.bernoulli(0.5) ? tcam::Trit::One
                                                              : tcam::Trit::Zero);
        opts.stored = w;
        opts.key = w;
        array::WordSimResult res;
        res.expectedMatch = true;
        res.matchDetected = true;
        res.mlAtSense = rng.uniform();
        res.mlMin = rng.uniform();
        res.vPrecharge = 0.8;
        res.energyMl = rng.uniform() * 1e-15;
        res.energySl = rng.uniform() * 1e-15;
        res.energySa = rng.uniform() * 1e-16;
        res.energyTotal = res.energyMl + res.energySl + res.energySa;
        written.push_back({serve::CharacterizationCache::keyOf(opts),
                           serve::packResult(res)});
    }

    {
        store::CharStore writer(cfg);
        (void)writer.load();
        const double t0 = now();
        for (const auto& rec : written) writer.append(rec.key, rec.payload);
        for (const auto& rec : written) writer.append(rec.key, rec.payload);  // dups
        writer.flush();
        r.appendSeconds = now() - t0;
        r.appendedRecords = writer.appendedRecords();
        r.logBytes = writer.logBytes();
    }
    r.appendPerSec = static_cast<double>(r.appendedRecords) / r.appendSeconds;

    {
        store::StoreConfig ro = cfg;
        ro.readOnly = true;
        store::CharStore reader(ro);
        const double t0 = now();
        const auto loaded = reader.load();
        r.loadSeconds = now() - t0;
        r.loadPerSec = static_cast<double>(loaded.size()) / r.loadSeconds;
        bool ok = loaded.size() == written.size() * 2;
        for (std::size_t i = 0; i < written.size() && ok; ++i)
            ok = loaded[i] == written[i] && loaded[i + written.size()] == written[i];
        r.roundTripIdentical = ok;
    }

    {
        store::CharStore writer(cfg);
        (void)writer.load();
        const double t0 = now();
        writer.compact(written);  // deduplicated snapshot
        r.compactSeconds = now() - t0;
        r.compactedBytes = writer.logBytes();
        store::StoreConfig ro = cfg;
        ro.readOnly = true;
        store::CharStore reader(ro);
        const auto loaded = reader.load();
        r.roundTripIdentical = r.roundTripIdentical && loaded == written;
    }

    fs::remove_all(dir);
    return r;
}

void writeJson(const std::string& path, const std::vector<WorkloadResult>& results,
               const StoreBenchResult& sb) {
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    os << "{\n  \"bench\": \"bench_serve\",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        os << "    {\n";
        os << "      \"name\": \"" << r.name << "\",\n";
        os << "      \"queries\": " << r.queries << ",\n";
        os << "      \"hits\": " << r.hits << ",\n";
        os << "      \"coldBuildSeconds\": " << r.coldBuildSeconds << ",\n";
        os << "      \"warmBuildSeconds\": " << r.warmBuildSeconds << ",\n";
        os << "      \"serveSeconds\": " << r.serveSeconds << ",\n";
        os << "      \"warmQps\": " << r.warmQps << ",\n";
        os << "      \"scalarQps\": " << r.scalarQps << ",\n";
        os << "      \"backendSpeedup\": " << r.backendSpeedup << ",\n";
        os << "      \"uncachedQps\": " << r.uncachedQps << ",\n";
        os << "      \"speedup\": " << r.speedup << ",\n";
        os << "      \"cacheMisses\": " << r.cacheMisses << ",\n";
        os << "      \"identical\": " << (r.identical ? "true" : "false") << "\n";
        os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"store\": {\n";
    os << "    \"uniqueRecords\": " << sb.uniqueRecords << ",\n";
    os << "    \"appendedRecords\": " << sb.appendedRecords << ",\n";
    os << "    \"appendSeconds\": " << sb.appendSeconds << ",\n";
    os << "    \"loadSeconds\": " << sb.loadSeconds << ",\n";
    os << "    \"compactSeconds\": " << sb.compactSeconds << ",\n";
    os << "    \"appendPerSec\": " << sb.appendPerSec << ",\n";
    os << "    \"loadPerSec\": " << sb.loadPerSec << ",\n";
    os << "    \"logBytes\": " << sb.logBytes << ",\n";
    os << "    \"compactedBytes\": " << sb.compactedBytes << ",\n";
    os << "    \"roundTripIdentical\": " << (sb.roundTripIdentical ? "true" : "false")
       << "\n";
    os << "  }\n}\n";
}

WorkloadResult runLpm(std::int64_t queries, std::uint64_t seed) {
    WorkloadResult r;
    r.name = "lpm";
    r.queries = queries;

    // A small core-router-style table: default route, a handful of /8
    // aggregates, and more-specific /16 and /24 holes inside them.
    apps::RoutingTable table;
    numeric::Rng rng(seed);
    table.addRoute(0, 0, 1);  // default route
    for (int i = 0; i < 8; ++i)
        table.addRoute(static_cast<std::uint32_t>(10 + i) << 24, 8, 100 + i);
    for (int i = 0; i < 24; ++i) {
        const auto base = static_cast<std::uint32_t>(10 + (i % 8)) << 24;
        table.addRoute(base | (static_cast<std::uint32_t>(i) << 16), 16, 200 + i);
    }
    for (int i = 0; i < 24; ++i) {
        const auto base = static_cast<std::uint32_t>(10 + (i % 8)) << 24;
        table.addRoute(base | (static_cast<std::uint32_t>(i % 4) << 16) |
                           (static_cast<std::uint32_t>(i) << 8),
                       24, 300 + i);
    }

    std::vector<std::uint32_t> addresses(static_cast<std::size_t>(queries));
    for (auto& a : addresses) {
        // Mostly traffic inside the 10.x aggregates, some background misses
        // caught by the default route.
        const auto raw = static_cast<std::uint32_t>(rng.nextU64());
        a = rng.uniform() < 0.85
                ? ((static_cast<std::uint32_t>(10 + (raw % 8)) << 24) | (raw & 0xFFFFFFu))
                : raw;
    }

    auto cache = std::make_shared<serve::CharacterizationCache>();
    const auto base = baseOptions();

    double t0 = now();
    serve::LpmService cold(table, base, cache);
    r.coldBuildSeconds = now() - t0;
    r.cacheMisses = cache->stats().misses;

    t0 = now();
    serve::LpmService warm(table, base, cache);
    r.warmBuildSeconds = now() - t0;

    t0 = now();
    auto served = warm.lookupBatch(addresses);
    r.serveSeconds = now() - t0;
    r.warmQps = static_cast<double>(queries) / r.serveSeconds;
    for (const auto& h : served) r.hits += h.has_value();

    // Same queries on the scalar oracle backend (warm cache, so only the
    // functional scan differs): the answers must be bit-identical and the
    // bit-plane path must not be slower.
    auto scalarBase = base;
    scalarBase.backend = serve::MatchBackendKind::Scalar;
    serve::LpmService scalar(table, scalarBase, cache);
    t0 = now();
    const auto scalarServed = scalar.lookupBatch(addresses);
    r.scalarQps = static_cast<double>(queries) / (now() - t0);
    r.backendSpeedup = r.warmQps / r.scalarQps;
    const bool backendsAgree = scalarServed == served;

    // Uncached: every query pays one real word transient before it can be
    // priced. Rate = transients per second the solver actually delivered
    // during cold characterization.
    const double perSim = r.coldBuildSeconds / static_cast<double>(r.cacheMisses);
    r.uncachedQps = 1.0 / perSim;
    r.speedup = r.warmQps / r.uncachedQps;

    // Bit-identity: cached hardware vs a fresh uncached evaluation, cold vs
    // warm engines, jobs=1 vs default-jobs serving, and the app reference.
    auto shard = base.shard;
    shard.wordBits = apps::RoutingTable::kWordBits;
    const auto uncached = evaluateBank(base.tech, shard,
                                       static_cast<std::int64_t>(table.size()),
                                       base.workload, base.encoder);
    bool ok = sameHardware(warm.engine().hardware(), uncached);
    ok = ok && sameHardware(cold.engine().hardware(), warm.engine().hardware());
    ok = ok && backendsAgree;
    const auto serial = cold.lookupBatch(addresses, 1);
    ok = ok && serial == served;
    for (std::size_t i = 0; i < addresses.size() && ok; i += 997)
        ok = served[i] == table.lookupLinear(addresses[i]);
    r.identical = ok;
    return r;
}

WorkloadResult runTlb(std::int64_t queries, std::uint64_t seed) {
    WorkloadResult r;
    r.name = "tlb";
    r.queries = queries;

    // Same population as the F14 case study: hot gigapage, 2M heaps, 4K pages.
    apps::Tlb tlb(64);
    tlb.insert(0, apps::PageSize::Page1G, 0);
    for (int i = 0; i < 8; ++i)
        tlb.insert((1ULL << 18) + (static_cast<std::uint64_t>(i) << 9),
                   apps::PageSize::Page2M, 1000 + i);
    for (int i = 0; i < 40; ++i)
        tlb.insert((1ULL << 20) + static_cast<std::uint64_t>(i), apps::PageSize::Page4K,
                   2000 + i);

    numeric::Rng rng(seed);
    std::vector<std::uint64_t> vaddrs(static_cast<std::size_t>(queries));
    for (auto& vaddr : vaddrs) {
        const double u = rng.uniform();
        if (u < 0.5) {
            vaddr = rng.nextU64() & ((1ULL << 30) - 1);
        } else if (u < 0.8) {
            vaddr = ((1ULL << 18) << 12) + (rng.nextU64() & ((8ULL << 21) - 1));
        } else {
            vaddr = ((1ULL << 20) + static_cast<std::uint64_t>(rng.uniformInt(0, 59)))
                    << 12;
        }
    }

    auto cache = std::make_shared<serve::CharacterizationCache>();
    const auto base = baseOptions();

    double t0 = now();
    serve::TlbService cold(tlb, base, cache);
    r.coldBuildSeconds = now() - t0;
    r.cacheMisses = cache->stats().misses;

    t0 = now();
    serve::TlbService warm(tlb, base, cache);
    r.warmBuildSeconds = now() - t0;

    t0 = now();
    auto served = warm.translateBatch(vaddrs);
    r.serveSeconds = now() - t0;
    r.warmQps = static_cast<double>(queries) / r.serveSeconds;
    for (const auto& h : served) r.hits += h.has_value();

    auto scalarBase = base;
    scalarBase.backend = serve::MatchBackendKind::Scalar;
    serve::TlbService scalar(tlb, scalarBase, cache);
    t0 = now();
    const auto scalarServed = scalar.translateBatch(vaddrs);
    r.scalarQps = static_cast<double>(queries) / (now() - t0);
    r.backendSpeedup = r.warmQps / r.scalarQps;

    const double perSim = r.coldBuildSeconds / static_cast<double>(r.cacheMisses);
    r.uncachedQps = 1.0 / perSim;
    r.speedup = r.warmQps / r.uncachedQps;

    bool ok = sameHardware(cold.engine().hardware(), warm.engine().hardware());
    ok = ok && scalarServed == served;
    const auto serial = cold.translateBatch(vaddrs, 1);
    ok = ok && serial == served;
    for (std::size_t i = 0; i < vaddrs.size() && ok; i += 997)
        ok = served[i] == tlb.translate(vaddrs[i]);
    r.identical = ok;
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);

    std::int64_t queries = 1'000'000;
    std::int64_t storeRecords = 20'000;
    std::uint64_t seed = 42;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--queries" && i + 1 < argc) {
            queries = std::atoll(argv[++i]);
        } else if (arg == "--store-records" && i + 1 < argc) {
            storeRecords = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_serve [--queries N] [--store-records N] "
                         "[--seed S] [--json FILE]\n");
            return 2;
        }
    }
    if (queries < 1 || storeRecords < 1) {
        std::fprintf(stderr, "error: --queries/--store-records must be >= 1\n");
        return 2;
    }

    bench::banner("SERVE", "characterize-then-serve query engine",
                  "warm-cache serving beats uncached pay-per-query simulation by >=10x "
                  "with bit-identical results (cached vs uncached, cold vs warm, any "
                  "worker count)");

    const std::vector<WorkloadResult> results = {runLpm(queries, seed),
                                                 runTlb(queries, seed)};

    core::Table t({"workload", "queries", "hit rate", "warm qps", "scalar qps",
                   "backend", "uncached qps", "speedup", "identical"});
    bool allIdentical = true;
    bool allFast = true;
    for (const auto& r : results) {
        t.addRow({r.name, std::to_string(r.queries),
                  core::numFormat(100.0 * static_cast<double>(r.hits) /
                                      static_cast<double>(r.queries),
                                  1) + "%",
                  core::engFormat(r.warmQps, "q/s"), core::engFormat(r.scalarQps, "q/s"),
                  core::numFormat(r.backendSpeedup, 1) + "x",
                  core::engFormat(r.uncachedQps, "q/s"),
                  core::numFormat(r.speedup, 1) + "x", r.identical ? "yes" : "NO"});
        allIdentical = allIdentical && r.identical;
        allFast = allFast && r.speedup >= 10.0;
    }
    std::printf("%s\n", t.toAligned().c_str());

    const StoreBenchResult sb = runStoreBench(storeRecords, seed);
    core::Table st({"store path", "records", "rate", "bytes", "round trip"});
    st.addRow({"append+flush", std::to_string(sb.appendedRecords),
               core::engFormat(sb.appendPerSec, "rec/s"), std::to_string(sb.logBytes),
               sb.roundTripIdentical ? "yes" : "NO"});
    st.addRow({"load", std::to_string(sb.appendedRecords),
               core::engFormat(sb.loadPerSec, "rec/s"), std::to_string(sb.logBytes),
               ""});
    st.addRow({"compact", std::to_string(sb.uniqueRecords),
               core::engFormat(static_cast<double>(sb.uniqueRecords) /
                                   sb.compactSeconds,
                               "rec/s"),
               std::to_string(sb.compactedBytes), ""});
    std::printf("%s\n", st.toAligned().c_str());

    if (!jsonPath.empty()) writeJson(jsonPath, results, sb);

    if (!sb.roundTripIdentical) {
        std::fprintf(stderr, "FAIL: store round trip diverged from written records\n");
        return 1;
    }
    if (!allIdentical) {
        std::fprintf(stderr, "FAIL: served results diverged from the reference path\n");
        return 1;
    }
    if (!allFast) {
        std::fprintf(stderr, "FAIL: warm-cache speedup below 10x\n");
        return 1;
    }
    return 0;
}
