// F15 — Auto-tuning: let the simulator pick the minimum-EDP supply voltage
// and the energy-optimal segmentation under a latency budget, closing the
// energy-aware design loop.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F15", "auto-tuned operating points (golden-section over circuit sims)",
                  "the tuner lands near the F6 sweep's EDP minimum without a grid sweep; "
                  "segmentation tuning picks deeper segmentation as the latency budget "
                  "relaxes");

    const auto tech = device::TechCard::cmos45();

    core::Table t({"design", "tuned VDD [V]", "EDP [fJ*ns]", "E/search [fJ]",
                   "delay [ps]", "sim evals"});
    for (const bool lowSwing : {false, true}) {
        array::ArrayConfig cfg;
        cfg.cell = tcam::CellKind::FeFet2;
        cfg.sense = lowSwing ? array::SenseScheme::LowSwing : array::SenseScheme::FullSwing;
        cfg.wordBits = 16;
        cfg.rows = 64;
        const auto r = core::tuneVddForMinEdp(tech, cfg, 0.7, 1.2);
        t.addRow({lowSwing ? "EA low-swing" : "full-swing", core::numFormat(r.vdd, 3),
                  core::numFormat(r.edp * 1e24, 1),
                  core::numFormat(r.metrics.perSearch.total() * 1e15, 1),
                  core::numFormat(r.metrics.searchDelay * 1e12, 0),
                  std::to_string(r.evaluations)});
    }
    std::printf("%s\n", t.toAligned().c_str());

    core::Table t2({"latency budget", "chosen segments", "E/search [fJ]", "delay [ps]"});
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 32;
    cfg.rows = 128;
    for (const double budget : {0.3e-9, 0.6e-9, 1.2e-9, 0.0}) {
        const auto r = core::tuneSegments(tech, cfg, budget);
        t2.addRow({budget == 0.0 ? "none" : core::engFormat(budget, "s"),
                   std::to_string(r.segments),
                   core::numFormat(r.energy * 1e15, 1),
                   core::numFormat(r.metrics.searchDelay * 1e12, 0)});
    }
    std::printf("%s", t2.toAligned().c_str());
    return 0;
}
