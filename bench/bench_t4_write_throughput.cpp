// T4 — Write scheduling: word-update latency/energy and full-table load cost
// per technology (update-rate side of the TCAM story).
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("T4", "write scheduling: word updates and full-table loads (64b x 256)",
                  "CMOS writes in a ns (volatile); FeFET pays ~200 ns two-phase pulses "
                  "but is width-independent; ReRAM serializes groups under the write-"
                  "current budget so wide words get slow; energies follow T1's per-bit "
                  "costs");

    const auto tech = device::TechCard::cmos45();
    constexpr int kBits = 64;
    constexpr int kRows = 256;

    core::Table t({"cell", "word latency", "word energy", "pulse phases",
                   "updates/s", "table load", "table energy"});
    for (const auto kind :
         {tcam::CellKind::Cmos16T, tcam::CellKind::ReRam2T2R, tcam::CellKind::FeFet2}) {
        const auto r = planArrayWrite(kind, tech, kBits, kRows);
        t.addRow({cellKindName(kind), core::engFormat(r.perWord.latency, "s"),
                  core::engFormat(r.perWord.energy, "J"),
                  std::to_string(r.perWord.pulsePhases),
                  core::engFormat(r.wordsPerSecond, ""),
                  core::engFormat(r.fullArrayLatency, "s"),
                  core::engFormat(r.fullArrayEnergy, "J")});
    }
    std::printf("%s\n", t.toAligned().c_str());

    // ReRAM current-budget sensitivity.
    std::printf("ReRAM word latency vs parallel-write budget (64-bit word):\n");
    const auto perBit = measureWriteEnergy(tcam::CellKind::ReRam2T2R, tech);
    for (const int par : {2, 4, 8, 16, 32}) {
        tcam::WriteScheduleParams p;
        p.reramParallelBits = par;
        const auto w = planWordWrite(tcam::CellKind::ReRam2T2R, perBit, kBits, p);
        std::printf("  %2d bits/group -> %s\n", par,
                    core::engFormat(w.latency, "s").c_str());
    }
    return 0;
}
