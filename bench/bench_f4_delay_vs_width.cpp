// F4 — Search (mismatch-detect) delay vs word width for all designs.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F4", "search delay vs word width",
                  "full-swing delays grow with width (one pulldown fights a growing ML "
                  "capacitance); FeFET fastest per width; low-swing delay is strobe-bound "
                  "(flat) and selective precharge serializes two stages");

    const auto tech = device::TechCard::cmos45();
    const std::vector<double> widths{8, 16, 32, 64, 128};
    const auto catalog = core::standardDesigns(8, 64);

    std::vector<std::pair<std::string, std::vector<double>>> delays;
    std::vector<std::pair<std::string, std::vector<double>>> margins;
    for (const auto& d : catalog) {
        std::vector<double> ds, ms;
        for (const double w : widths) {
            auto cfg = d.config;
            cfg.wordBits = static_cast<int>(w);
            const auto m = evaluateArray(tech, cfg);
            ds.push_back(m.searchDelay * 1e12);
            ms.push_back(m.senseMarginV);
        }
        delays.push_back({d.name, ds});
        margins.push_back({d.name, ms});
    }

    bench::printSeries("width[bits]", widths, delays, "ps");
    std::printf("sense margin falls with width for ReRAM (HRS leakage) — the 2T2R word-"
                "width wall:\n\n");
    bench::printSeries("width[bits]", widths, margins, "V");
    return 0;
}
