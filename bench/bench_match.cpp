// MATCH — bit-parallel functional-match microbenchmarks: the serve hot path
// isolated from characterization, batching and threading. One shard's worth
// of ternary entries is scanned by the scalar row-at-a-time oracle and by
// the bit-plane backend (value/care planes, 64 entries per machine word),
// single-threaded, and the bench fails hard if the two ever disagree on a
// priority row or a mismatch count, or if the bit-plane path is slower than
// the scalar baseline.
//
// Scenarios:
//   * find/miss — fully-random definite keys over a wildcard-rich table:
//     almost every query scans the whole shard (the worst case the ROADMAP's
//     >1e8 entry-matches/s/core target is about).
//   * find/hit  — keys derived from stored rows, so priority hits are
//     common and the ascending-shard early-out matters.
//   * mismatch  — per-row Hamming mismatch counts (the similarity-search
//     path hamming.cpp rides), all rows counted per query.
//
// Throughput metric: entry-matches/s = rows x queries / seconds — every
// query consults every row of the shard (find scenarios) or counts every
// row (mismatch), which is exactly what the hardware match phase does.
//
// Flags (beyond the shared --trace/--jobs, which are accepted and ignored
// for timing — the kernel is deliberately single-threaded here):
//   --rows N (default 4096), --bits N (default 64), --queries N (default
//   20000), --seed S, --json FILE.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "numeric/stats.hpp"
#include "serve/match_backend.hpp"

using namespace fetcam;

namespace {

double now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

tcam::TernaryWord randomEntry(numeric::Rng& rng, int bits, double xDensity) {
    tcam::TernaryWord w(static_cast<std::size_t>(bits));
    for (int b = 0; b < bits; ++b)
        w[static_cast<std::size_t>(b)] =
            rng.uniform() < xDensity
                ? tcam::Trit::X
                : (rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero);
    return w;
}

struct Scenario {
    std::string name;
    std::vector<tcam::TernaryWord> keys;
    bool mismatch = false;  ///< time mismatchCounts instead of findFirst
};

struct ScenarioResult {
    std::string name;
    std::int64_t rows = 0;
    std::int64_t queries = 0;
    double scalarSeconds = 0.0;
    double bitplaneSeconds = 0.0;
    double scalarEps = 0.0;    ///< entry-matches (or counts) per second
    double bitplaneEps = 0.0;
    double speedup = 0.0;
    std::int64_t hits = 0;  ///< find scenarios: queries with a matching row
    bool identical = false;
};

/// Run one scenario on one backend, returning elapsed seconds and the full
/// result vector (rows for find, flattened counts for mismatch) so the two
/// backends can be compared bit for bit.
double runFind(const serve::MatchBackend& backend, const std::vector<tcam::TernaryWord>& keys,
               std::vector<std::int64_t>& out) {
    out.clear();
    out.reserve(keys.size());
    const std::int64_t rows = backend.rows();
    const double t0 = now();
    for (const auto& key : keys) {
        const auto prepared = backend.prepare(key);
        out.push_back(backend.findFirst(0, rows, prepared));
    }
    return now() - t0;
}

double runMismatch(const serve::MatchBackend& backend,
                   const std::vector<tcam::TernaryWord>& keys,
                   std::vector<std::size_t>& out) {
    const auto rows = static_cast<std::size_t>(backend.rows());
    out.assign(rows * keys.size(), 0);
    const double t0 = now();
    std::size_t at = 0;
    for (const auto& key : keys) {
        const auto prepared = backend.prepare(key);
        backend.mismatchCounts(prepared, out.data() + at);
        at += rows;
    }
    return now() - t0;
}

ScenarioResult runScenario(const Scenario& sc, const serve::MatchBackend& scalar,
                           const serve::MatchBackend& bitplane) {
    ScenarioResult r;
    r.name = sc.name;
    r.rows = scalar.rows();
    r.queries = static_cast<std::int64_t>(sc.keys.size());
    const double work = static_cast<double>(r.rows) * static_cast<double>(r.queries);
    if (sc.mismatch) {
        std::vector<std::size_t> scalarOut, bitplaneOut;
        r.scalarSeconds = runMismatch(scalar, sc.keys, scalarOut);
        r.bitplaneSeconds = runMismatch(bitplane, sc.keys, bitplaneOut);
        r.identical = scalarOut == bitplaneOut;
    } else {
        std::vector<std::int64_t> scalarOut, bitplaneOut;
        r.scalarSeconds = runFind(scalar, sc.keys, scalarOut);
        r.bitplaneSeconds = runFind(bitplane, sc.keys, bitplaneOut);
        r.identical = scalarOut == bitplaneOut;
        for (const auto row : bitplaneOut) r.hits += row >= 0;
    }
    r.scalarEps = work / r.scalarSeconds;
    r.bitplaneEps = work / r.bitplaneSeconds;
    r.speedup = r.bitplaneEps / r.scalarEps;
    return r;
}

void writeJson(const std::string& path, std::int64_t rows, int bits, std::uint64_t seed,
               const std::vector<ScenarioResult>& results) {
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    os << "{\n  \"bench\": \"bench_match\",\n";
    os << "  \"rows\": " << rows << ",\n  \"bits\": " << bits << ",\n  \"seed\": " << seed
       << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        os << "    {\n";
        os << "      \"name\": \"" << r.name << "\",\n";
        os << "      \"rows\": " << r.rows << ",\n";
        os << "      \"queries\": " << r.queries << ",\n";
        os << "      \"hits\": " << r.hits << ",\n";
        os << "      \"scalarSeconds\": " << r.scalarSeconds << ",\n";
        os << "      \"bitplaneSeconds\": " << r.bitplaneSeconds << ",\n";
        os << "      \"scalarEntryMatchesPerSec\": " << r.scalarEps << ",\n";
        os << "      \"bitplaneEntryMatchesPerSec\": " << r.bitplaneEps << ",\n";
        os << "      \"speedup\": " << r.speedup << ",\n";
        os << "      \"identical\": " << (r.identical ? "true" : "false") << "\n";
        os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    bench::initObs(argc, argv);

    std::int64_t rows = 4096;
    int bits = 64;
    std::int64_t queries = 20'000;
    std::uint64_t seed = 42;
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--rows" && i + 1 < argc) {
            rows = std::atoll(argv[++i]);
        } else if (arg == "--bits" && i + 1 < argc) {
            bits = std::atoi(argv[++i]);
        } else if (arg == "--queries" && i + 1 < argc) {
            queries = std::atoll(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_match [--rows N] [--bits N] [--queries N] "
                         "[--seed S] [--json FILE]\n");
            return 2;
        }
    }
    if (rows < 1 || bits < 1 || bits > tcam::TernaryPlanes::kMaxBits || queries < 1) {
        std::fprintf(stderr, "error: --rows/--bits/--queries out of range\n");
        return 2;
    }

    bench::banner("MATCH", "bit-parallel ternary match kernel",
                  "bit-plane backend sustains >=1e8 entry-matches/s/core and is never "
                  "slower than the scalar oracle, with bit-identical priority rows and "
                  "mismatch counts");

    // One shard's entry set: wildcard-rich rows (LPM-style) with ~6% empty
    // slots. The all-X catch-all rows sit in the *last* block — priority
    // tables put defaults last, and it keeps the miss scenario honest: a
    // random key matches nothing until the full shard has been scanned.
    numeric::Rng rng(seed);
    auto scalar = serve::makeMatchBackend(serve::MatchBackendKind::Scalar, rows, bits);
    auto bitplane = serve::makeMatchBackend(serve::MatchBackendKind::BitPlane, rows, bits);
    std::vector<std::int64_t> occupiedRows;
    const std::int64_t catchAllFrom = std::max<std::int64_t>(0, rows - 4);
    for (std::int64_t r = 0; r < rows; ++r) {
        if (r < catchAllFrom && rng.uniform() < 0.06) continue;  // empty slot
        tcam::TernaryWord w = r >= catchAllFrom
                                  ? tcam::TernaryWord(static_cast<std::size_t>(bits))
                                  : randomEntry(rng, bits, 0.25);
        scalar->set(r, w);
        bitplane->set(r, w);
        if (r < catchAllFrom) occupiedRows.push_back(r);
    }

    std::vector<Scenario> scenarios(3);
    scenarios[0].name = "find/miss";
    scenarios[1].name = "find/hit";
    scenarios[2].name = "mismatch";
    scenarios[2].mismatch = true;
    for (std::int64_t q = 0; q < queries; ++q) {
        // Miss-heavy: fully random definite keys (the all-X rows still match,
        // but only after the whole shard has been consulted bit-parallel).
        scenarios[0].keys.push_back(randomEntry(rng, bits, 0.0));
        // Hit-heavy: a stored row with its wildcards forced definite.
        const auto& base = *scalar->at(occupiedRows[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(occupiedRows.size()) - 1))]);
        tcam::TernaryWord key(static_cast<std::size_t>(bits));
        for (int b = 0; b < bits; ++b) {
            const auto t = base[static_cast<std::size_t>(b)];
            key[static_cast<std::size_t>(b)] =
                t == tcam::Trit::X
                    ? (rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero)
                    : t;
        }
        scenarios[1].keys.push_back(key);
    }
    // Mismatch counting is O(rows) per query on both backends with no early
    // out; fewer queries keep the scalar baseline affordable.
    const std::int64_t mismatchQueries = std::max<std::int64_t>(1, queries / 10);
    for (std::int64_t q = 0; q < mismatchQueries; ++q)
        scenarios[2].keys.push_back(randomEntry(rng, bits, 0.1));

    std::vector<ScenarioResult> results;
    for (const auto& sc : scenarios) results.push_back(runScenario(sc, *scalar, *bitplane));

    core::Table t({"scenario", "rows", "queries", "scalar e/s", "bitplane e/s",
                   "speedup", "identical"});
    bool allIdentical = true;
    bool allFaster = true;
    for (const auto& r : results) {
        t.addRow({r.name, std::to_string(r.rows), std::to_string(r.queries),
                  core::engFormat(r.scalarEps, "e/s"),
                  core::engFormat(r.bitplaneEps, "e/s"),
                  core::numFormat(r.speedup, 1) + "x", r.identical ? "yes" : "NO"});
        allIdentical = allIdentical && r.identical;
        allFaster = allFaster && r.speedup >= 1.0;
    }
    std::printf("%s\n", t.toAligned().c_str());

    if (!jsonPath.empty()) writeJson(jsonPath, rows, bits, seed, results);

    if (!allIdentical) {
        std::fprintf(stderr,
                     "FAIL: bit-plane backend diverged from the scalar oracle\n");
        return 1;
    }
    if (!allFaster) {
        std::fprintf(stderr,
                     "FAIL: bit-plane throughput below the scalar baseline\n");
        return 1;
    }
    return 0;
}
