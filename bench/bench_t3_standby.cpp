// T3 — Standby (idle-cycle) power: clock the array through a cycle with no
// searchline asserted (masked search of all-X) and measure what the supplies
// still deliver — leakage top-up, precharge clocking and sense-amp strobes.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("T3", "standby power per word (CLOCKED idle: precharged, SLs masked)",
                  "in clocked idle the FeFET designs actually pay the most: the low-VT "
                  "stored state (VT ~ 0.15 V) leaks subthreshold current at Vgs = 0, so "
                  "every cycle tops the ML back up; CMOS and ReRAM block with ~0.4 V "
                  "devices. The FeFET's real standby win is POWER GATING: its data is "
                  "non-volatile, so the array can be switched off entirely (true zero "
                  "standby), which volatile SRAM cannot do");

    core::Table t({"design", "idle E/cycle [fJ]", "standby power/word [uW]",
                   "vs active mismatch cycle"});
    const struct {
        const char* name;
        tcam::CellKind cell;
        array::SenseScheme sense;
    } duts[] = {
        {"CMOS-16T", tcam::CellKind::Cmos16T, array::SenseScheme::FullSwing},
        {"ReRAM-2T2R", tcam::CellKind::ReRam2T2R, array::SenseScheme::FullSwing},
        {"FeFET-2T", tcam::CellKind::FeFet2, array::SenseScheme::FullSwing},
        {"EA-FeFET", tcam::CellKind::FeFet2, array::SenseScheme::LowSwing},
    };
    for (const auto& d : duts) {
        array::WordSimOptions o;
        o.config.cell = d.cell;
        o.config.sense = d.sense;
        o.config.wordBits = 32;
        o.stored = array::calibrationWord(32);
        o.key = tcam::TernaryWord(32, tcam::Trit::X);  // masked: no SL asserted
        const auto idle = simulateWordSearch(o);
        o.key = array::keyWithMismatches(o.stored, 1);
        const auto active = simulateWordSearch(o);
        const double cycle = o.config.timing.cycle();
        t.addRow({d.name, core::numFormat(idle.energyTotal * 1e15, 2),
                  core::numFormat(idle.energyTotal / cycle * 1e6, 2),
                  core::numFormat(100.0 * idle.energyTotal / active.energyTotal, 1) + "%"});
    }
    std::printf("%s", t.toAligned().c_str());
    std::printf("\npower-gated standby (array switched off): CMOS-16T loses its data; "
                "FeFET and ReRAM retain it at zero power — the non-volatility "
                "advantage that clocked-idle numbers don't show.\n");
    return 0;
}
