// Engine microbenchmarks (google-benchmark): how fast the substrate itself
// runs — sparse LU factorization and numeric refactorization on MNA-like
// matrices, triplet vs stamp-map assembly, RC transient stepping, complete
// TCAM word-search simulations, and Monte Carlo scaling vs --jobs.
//
// `--json <path>` writes the results as google-benchmark JSON (shorthand for
// --benchmark_out=<path> --benchmark_out_format=json); the repo's committed
// BENCH_engine.json tracks these numbers across PRs (see DESIGN.md).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "array/montecarlo.hpp"
#include "bench_util.hpp"
#include "core/fetcam.hpp"
#include "numeric/parallel.hpp"
#include "spice/workspace.hpp"

// Allocation counter for the steady-state allocation benchmarks: every
// operator new in the binary bumps a relaxed atomic. Counting is always on
// (the overhead is one fetch_add per allocation, irrelevant next to malloc).
namespace {
std::atomic<unsigned long long> gAllocCount{0};
}  // namespace

void* operator new(std::size_t size) {
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}
// free() is correct here — the matching operator new above allocates with
// malloc — but GCC can't see the pairing and warns at every delete site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

using namespace fetcam;

namespace {

// Circuit-shaped test matrix: node i couples to a handful of nearby nodes
// (netlists are ladders/arrays, so MNA matrices are locality-structured with
// modest bandwidth) plus an occasional long-range rail connection. Random
// all-to-all coupling would be a dense-fill-in stress test, not an MNA one.
numeric::SparseMatrixCsc mnaLikeMatrix(int n, std::uint64_t seed) {
    numeric::Rng rng(seed);
    numeric::TripletList t(n, n);
    for (int i = 0; i < n; ++i) {
        double off = 0.0;
        for (int k = 0; k < 3; ++k) {
            int j = i + rng.uniformInt(-6, 6);
            if (rng.uniform() < 0.02) j = rng.uniformInt(0, n - 1);  // rail
            if (j == i || j < 0 || j >= n) continue;
            const double v = rng.uniform(-1e-3, 1e-3);
            t.add(i, j, v);
            t.add(j, i, v);  // near-symmetric, like nodal conductance stamps
            off += std::abs(v);
        }
        t.add(i, i, off + rng.uniform(1e-4, 1e-2));
    }
    return numeric::SparseMatrixCsc::fromTriplets(t);
}

void BM_SparseLuFactorize(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto m = mnaLikeMatrix(n, 42);
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    for (auto _ : state) {
        numeric::SparseLu lu(m);
        benchmark::DoNotOptimize(lu.solve(b));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLuFactorize)->Arg(64)->Arg(256)->Arg(1024);

// Numeric-only refactorization following the cached pattern + pivot order —
// compare against BM_SparseLuFactorize at the same size for the KLU-style
// reuse win (acceptance target: >= 2x at n=1024).
void BM_SparseLuRefactor(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto m = mnaLikeMatrix(n, 42);
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    numeric::SparseLu lu(m);
    std::vector<double> x;
    for (auto _ : state) {
        if (!lu.refactor(m)) {
            state.SkipWithError("refactor reported pivot degradation");
            break;
        }
        lu.solveInto(b, x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLuRefactor)->Arg(64)->Arg(256)->Arg(1024);

void stampLadder(spice::Mna& mna, int nodes) {
    for (spice::NodeId a = 1; a < nodes; ++a) {
        mna.stampConductance(a, a - 1, 1e-3);
        mna.stampConductance(a, spice::kGround, 1e-6);
    }
    mna.stampGminAllNodes(1e-12);
}

// First-assembly path: triplet accumulation + sort + duplicate merge.
void BM_MnaAssemblyTriplet(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    spice::Mna mna(nodes, 0);
    for (auto _ : state) {
        mna.beginAssembly(/*allowMapped=*/false);
        stampLadder(mna, nodes);
        mna.endAssembly();
        const auto& m = mna.compile();
        benchmark::DoNotOptimize(m.values().data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MnaAssemblyTriplet)->Arg(256)->Arg(1024);

// Steady-state path: stamps replay through the frozen stamp map straight
// into the CSC values.
void BM_MnaAssemblyMapped(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    spice::Mna mna(nodes, 0);
    mna.beginAssembly(/*allowMapped=*/false);  // freeze the pattern once
    stampLadder(mna, nodes);
    mna.endAssembly();
    mna.compile();
    for (auto _ : state) {
        mna.beginAssembly(/*allowMapped=*/true);
        stampLadder(mna, nodes);
        if (!mna.endAssembly()) {
            state.SkipWithError("mapped assembly diverged");
            break;
        }
        const auto& m = mna.compile();
        benchmark::DoNotOptimize(m.values().data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MnaAssemblyMapped)->Arg(256)->Arg(1024);

void BM_RcTransient(benchmark::State& state) {
    for (auto _ : state) {
        spice::Circuit c;
        const auto vin = c.node("in");
        const auto out = c.node("out");
        c.add<device::VoltageSource>(
            "V1", c, vin, spice::kGround,
            device::SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
        c.add<device::Resistor>("R1", vin, out, 10e3);
        c.add<device::Capacitor>("C1", out, spice::kGround, 100e-15);
        spice::TransientSpec spec;
        spec.tstop = 8e-9;
        spec.dtMax = 20e-12;
        const auto r = runTransient(c, spec);
        benchmark::DoNotOptimize(r.acceptedSteps);
    }
}
BENCHMARK(BM_RcTransient);

// Steady-state Newton solves through a persistent workspace. The
// allocs_per_solve counter is the workspace-hoisting check: once the pattern
// is frozen and the LU reused, a converged re-solve should allocate nothing
// (0 on the happy path; any regression shows up as a jump here).
void BM_NewtonSteadyState(benchmark::State& state) {
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    c.add<device::VoltageSource>(
        "V1", c, vin, spice::kGround,
        device::SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    c.add<device::Resistor>("R1", vin, out, 10e3);
    c.add<device::Capacitor>("C1", out, spice::kGround, 100e-15);

    std::vector<double> x(static_cast<std::size_t>(c.numUnknowns()), 0.0);
    spice::SimContext ctx;
    ctx.mode = spice::AnalysisMode::Transient;
    ctx.method = spice::IntegrationMethod::BackwardEuler;
    ctx.x = &x;
    ctx.time = 1e-12;
    ctx.dt = 1e-12;
    ctx.gmin = 1e-12;
    ctx.numNodes = c.numNodes();
    for (const auto& dev : c.devices()) dev->beginTransient(ctx);

    spice::SolverWorkspace ws;
    const spice::NewtonOptions opts;
    solveNewton(c, ctx, x, opts, ws);  // pay first assembly + symbolic factor

    unsigned long long allocs = 0;
    long long solves = 0;
    long long refactors = 0;
    for (auto _ : state) {
        const unsigned long long before = gAllocCount.load(std::memory_order_relaxed);
        const auto nr = solveNewton(c, ctx, x, opts, ws);
        benchmark::DoNotOptimize(nr.iterations);
        allocs += gAllocCount.load(std::memory_order_relaxed) - before;
        ++solves;
        refactors += nr.refactorizations;
    }
    state.counters["allocs_per_solve"] =
        benchmark::Counter(static_cast<double>(allocs) / static_cast<double>(solves));
    state.counters["refactors_per_solve"] =
        benchmark::Counter(static_cast<double>(refactors) / static_cast<double>(solves));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NewtonSteadyState);

void BM_WordSearch(benchmark::State& state) {
    const int bits = static_cast<int>(state.range(0));
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::FeFet2;
    o.config.wordBits = bits;
    o.stored = array::calibrationWord(bits);
    o.key = array::keyWithMismatches(o.stored, 1);
    for (auto _ : state) {
        const auto r = simulateWordSearch(o);
        benchmark::DoNotOptimize(r.energyTotal);
    }
    state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_WordSearch)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Monte Carlo scaling vs worker count (bit-identical results per spec.seed
// regardless of jobs; see parallel_test for the equivalence assertions).
void BM_MonteCarloJobs(benchmark::State& state) {
    array::MonteCarloSpec spec;
    spec.config.cell = tcam::CellKind::FeFet2;
    spec.config.wordBits = 4;
    spec.trials = 8;
    spec.seed = 7;
    spec.jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto r = array::runMonteCarlo(spec);
        benchmark::DoNotOptimize(r.completedTrials);
    }
    state.SetItemsProcessed(state.iterations() * spec.trials);
}
BENCHMARK(BM_MonteCarloJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PreisachAdvance(benchmark::State& state) {
    device::PreisachBank bank(device::TechCard::cmos45().fefet.ferro);
    double v = 0.0;
    for (auto _ : state) {
        v = v > 0.0 ? -3.0 : 3.0;
        bank.advance(v, 1e-9);
        benchmark::DoNotOptimize(bank.pnorm());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreisachAdvance);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared --trace/--jobs flags (and the
// --json shorthand) are stripped before google-benchmark parses the rest.
int main(int argc, char** argv) {
    fetcam::bench::initObs(argc, argv);

    std::vector<std::string> extra;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            extra.push_back(std::string("--benchmark_out=") + argv[i + 1]);
            extra.push_back("--benchmark_out_format=json");
            for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
            argc -= 2;
            --i;
        }
    }
    std::vector<char*> args(argv, argv + argc);
    for (auto& s : extra) args.push_back(s.data());
    int argCount = static_cast<int>(args.size());
    args.push_back(nullptr);

    benchmark::Initialize(&argCount, args.data());
    if (benchmark::ReportUnrecognizedArguments(argCount, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
