// Engine microbenchmarks (google-benchmark): how fast the substrate itself
// runs — sparse LU factorization on MNA-like matrices, RC transient stepping,
// and complete TCAM word-search simulations.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/fetcam.hpp"

using namespace fetcam;

namespace {

numeric::SparseMatrixCsc mnaLikeMatrix(int n, std::uint64_t seed) {
    numeric::Rng rng(seed);
    numeric::TripletList t(n, n);
    for (int i = 0; i < n; ++i) {
        double off = 0.0;
        for (int k = 0; k < 3; ++k) {
            const int j = rng.uniformInt(0, n - 1);
            if (j == i) continue;
            const double v = rng.uniform(-1e-3, 1e-3);
            t.add(i, j, v);
            t.add(j, i, v);  // near-symmetric, like nodal conductance stamps
            off += std::abs(v);
        }
        t.add(i, i, off + rng.uniform(1e-4, 1e-2));
    }
    return numeric::SparseMatrixCsc::fromTriplets(t);
}

void BM_SparseLuFactorize(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto m = mnaLikeMatrix(n, 42);
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    for (auto _ : state) {
        numeric::SparseLu lu(m);
        benchmark::DoNotOptimize(lu.solve(b));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseLuFactorize)->Arg(64)->Arg(256)->Arg(1024);

void BM_RcTransient(benchmark::State& state) {
    for (auto _ : state) {
        spice::Circuit c;
        const auto vin = c.node("in");
        const auto out = c.node("out");
        c.add<device::VoltageSource>(
            "V1", c, vin, spice::kGround,
            device::SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
        c.add<device::Resistor>("R1", vin, out, 10e3);
        c.add<device::Capacitor>("C1", out, spice::kGround, 100e-15);
        spice::TransientSpec spec;
        spec.tstop = 8e-9;
        spec.dtMax = 20e-12;
        const auto r = runTransient(c, spec);
        benchmark::DoNotOptimize(r.acceptedSteps);
    }
}
BENCHMARK(BM_RcTransient);

void BM_WordSearch(benchmark::State& state) {
    const int bits = static_cast<int>(state.range(0));
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::FeFet2;
    o.config.wordBits = bits;
    o.stored = array::calibrationWord(bits);
    o.key = array::keyWithMismatches(o.stored, 1);
    for (auto _ : state) {
        const auto r = simulateWordSearch(o);
        benchmark::DoNotOptimize(r.energyTotal);
    }
    state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_WordSearch)->Arg(8)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PreisachAdvance(benchmark::State& state) {
    device::PreisachBank bank(device::TechCard::cmos45().fefet.ferro);
    double v = 0.0;
    for (auto _ : state) {
        v = v > 0.0 ? -3.0 : 3.0;
        bank.advance(v, 1e-9);
        benchmark::DoNotOptimize(bank.pnorm());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreisachAdvance);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared --trace flag is stripped before
// google-benchmark parses the remaining arguments.
int main(int argc, char** argv) {
    fetcam::bench::initObs(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
