// F6 — Supply-voltage scaling: energy, delay and EDP vs VDD for the plain
// FeFET design and the energy-aware variant; locates the minimum-EDP point
// and the functional floor.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F6", "VDD scaling (FeFET full-swing vs energy-aware low-swing)",
                  "search energy scales ~VDD^2, delay grows as VDD approaches VT "
                  "(overdrive shrinks), EDP has a minimum below nominal VDD; the "
                  "functional floor is set by the sense margin collapsing");

    const std::vector<double> vdds{0.7, 0.8, 0.9, 1.0, 1.1, 1.2};

    core::Table t({"VDD [V]", "design", "E/search [fJ]", "delay [ps]", "EDP [fJ*ns]",
                   "margin [V]", "functional"});
    struct Best {
        double vdd = 0.0;
        double edp = 1e30;
    };
    Best bestFull, bestLow;

    for (const double vdd : vdds) {
        auto tech = device::TechCard::cmos45();
        tech.vdd = vdd;
        for (const bool lowSwing : {false, true}) {
            array::ArrayConfig cfg;
            cfg.cell = tcam::CellKind::FeFet2;
            cfg.sense = lowSwing ? array::SenseScheme::LowSwing
                                 : array::SenseScheme::FullSwing;
            cfg.wordBits = 32;
            cfg.rows = 64;
            const auto m = evaluateArray(tech, cfg);
            const double e = m.perSearch.total() * 1e15;
            const double d = m.searchDelay * 1e12;
            const double edp = e * d / 1e3;  // fJ*ns
            t.addRow({core::numFormat(vdd, 1), lowSwing ? "EA low-swing" : "full-swing",
                      core::numFormat(e, 1), core::numFormat(d, 0),
                      core::numFormat(edp, 1), core::numFormat(m.senseMarginV, 3),
                      m.functional ? "yes" : "NO"});
            Best& b = lowSwing ? bestLow : bestFull;
            if (m.functional && edp < b.edp) b = {vdd, edp};
        }
    }
    std::printf("%s\n", t.toAligned().c_str());
    std::printf("minimum-EDP points: full-swing at VDD=%.1f V (%.1f fJ*ns), "
                "EA low-swing at VDD=%.1f V (%.1f fJ*ns)\n",
                bestFull.vdd, bestFull.edp, bestLow.vdd, bestLow.edp);
    return 0;
}
