// F19 — Process corners: search energy, delay and margin across TT/FF/SS/
// FS/SF for the FeFET designs and the CMOS baseline.
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F19", "process-corner sweep (32-bit words, 64 rows)",
                  "FF is fast and slightly more energetic (higher on-current, more "
                  "leakage sag), SS the opposite; the FeFET search path tracks the NMOS "
                  "skew; every corner stays functional — margin, not speed, is the "
                  "binding constraint");

    const auto base = device::TechCard::cmos45();
    core::Table t({"corner", "design", "E/search [fJ]", "delay [ps]", "margin [V]", "ok"});
    for (const auto corner : {device::Corner::TT, device::Corner::FF, device::Corner::SS,
                              device::Corner::FS, device::Corner::SF}) {
        const auto tech = base.atCorner(corner);
        struct Dut {
            const char* name;
            tcam::CellKind cell;
            array::SenseScheme sense;
        };
        const Dut duts[] = {
            {"CMOS-16T", tcam::CellKind::Cmos16T, array::SenseScheme::FullSwing},
            {"FeFET-2T", tcam::CellKind::FeFet2, array::SenseScheme::FullSwing},
            {"EA-FeFET", tcam::CellKind::FeFet2, array::SenseScheme::LowSwing},
        };
        for (const auto& d : duts) {
            array::ArrayConfig cfg;
            cfg.cell = d.cell;
            cfg.sense = d.sense;
            cfg.wordBits = 32;
            cfg.rows = 64;
            const auto m = evaluateArray(tech, cfg);
            t.addRow({cornerName(corner), d.name,
                      core::numFormat(m.perSearch.total() * 1e15, 1),
                      core::numFormat(m.searchDelay * 1e12, 0),
                      core::numFormat(m.senseMarginV, 3), m.functional ? "yes" : "NO"});
        }
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
