// F7 — Device-variation Monte Carlo: sense-margin distributions and search
// error rates vs local VT sigma (plus storage-state degradation).
#include "bench_util.hpp"

using namespace fetcam;

int main(int argc, char** argv) {
    bench::initObs(argc, argv);
    bench::banner("F7", "Monte Carlo variation analysis (16-bit words, 40 trials/point)",
                  "margins shrink and error rates onset as sigma grows; the FeFET designs "
                  "hold larger margins than CMOS at matched sigma (bigger nominal ML "
                  "separation), while the low-swing scheme trades margin for energy and "
                  "degrades first");

    struct DesignUnderTest {
        const char* name;
        tcam::CellKind cell;
        array::SenseScheme sense;
    };
    const DesignUnderTest duts[] = {
        {"CMOS-16T", tcam::CellKind::Cmos16T, array::SenseScheme::FullSwing},
        {"FeFET-2T", tcam::CellKind::FeFet2, array::SenseScheme::FullSwing},
        {"EA-FeFET", tcam::CellKind::FeFet2, array::SenseScheme::LowSwing},
    };
    const double sigmas[] = {0.01, 0.03, 0.05, 0.07};

    core::Table t({"design", "sigmaVT [mV]", "margin mean [V]", "margin worst [V]",
                   "ML(match) sd [mV]", "errors", "error rate", "failed trials"});
    for (const auto& dut : duts) {
        for (const double sigma : sigmas) {
            array::MonteCarloSpec spec;
            spec.config.cell = dut.cell;
            spec.config.sense = dut.sense;
            spec.config.wordBits = 16;
            spec.trials = 40;
            spec.sigmaVt = sigma;
            spec.sigmaState = 0.05;
            spec.seed = 1234;
            const auto r = runMonteCarlo(spec);
            t.addRow({dut.name, core::numFormat(sigma * 1e3, 0),
                      core::numFormat(r.senseMarginMean(), 3),
                      core::numFormat(r.senseMarginWorst(), 3),
                      core::numFormat(r.mlMatch.stddev() * 1e3, 1),
                      std::to_string(r.matchErrors + r.mismatchErrors),
                      core::numFormat(100.0 * r.errorRate(), 1) + "%",
                      std::to_string(r.failedTrials)});
        }
    }
    std::printf("%s", t.toAligned().c_str());
    return 0;
}
