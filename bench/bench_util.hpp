// Shared helpers for the experiment benches (one binary per reconstructed
// table/figure; see DESIGN.md for the experiment index).
#pragma once

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <cstdlib>

#include "core/fetcam.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"

namespace fetcam::bench {

/// Shared bench flag handling, stripped from argv so benches that parse
/// their own arguments — or google-benchmark — never see them:
///   --trace <file>  open a JSONL trace sink and enable observability
///                   (without the flag, FETCAM_TRACE is honoured)
///   --jobs <n>      worker threads for parallel sweeps (0 or negative =
///                   all hardware threads, non-integers rejected; shared
///                   numeric::parseJobs semantics); sets setDefaultJobs
inline void initObs(int& argc, char** argv) {
    bool traced = false;
    int i = 1;
    while (i < argc) {
        const auto strip = [&](int count) {
            for (int j = i; j + count < argc; ++j) argv[j] = argv[j + count];
            argc -= count;
        };
        if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "warning: --trace requires a file argument; tracing off\n");
                strip(1);
                continue;
            }
            const char* path = argv[i + 1];
            if (!obs::TraceSink::global().open(path))
                std::fprintf(stderr, "warning: cannot open trace file %s\n", path);
            obs::setEnabled(true);
            traced = true;
            strip(2);
            continue;
        }
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "warning: --jobs requires a count argument\n");
                strip(1);
                continue;
            }
            try {
                numeric::setDefaultJobs(numeric::parseJobs(argv[i + 1]));
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(2);
            }
            strip(2);
            continue;
        }
        ++i;
    }
    if (!traced) obs::initFromEnv();
}

/// Standard experiment banner: what this bench reproduces and which shape
/// from the paper it should exhibit.
inline void banner(const char* id, const char* title, const char* expectedShape) {
    std::printf("=== %s: %s ===\n", id, title);
    std::printf("expected shape: %s\n\n", expectedShape);
}

/// Print a labelled series block (figure data as columns).
inline void printSeries(const std::string& xLabel, const std::vector<double>& xs,
                        const std::vector<std::pair<std::string, std::vector<double>>>& ys,
                        const char* yUnit) {
    std::printf("%-12s", xLabel.c_str());
    for (const auto& [name, _] : ys) std::printf("  %-22s", name.c_str());
    std::printf("   [%s]\n", yUnit);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%-12g", xs[i]);
        for (const auto& [_, v] : ys) std::printf("  %-22.6g", v[i]);
        std::printf("\n");
    }
    std::printf("\n");
}

}  // namespace fetcam::bench
