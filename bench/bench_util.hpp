// Shared helpers for the experiment benches (one binary per reconstructed
// table/figure; see DESIGN.md for the experiment index).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fetcam.hpp"
#include "obs/obs.hpp"

namespace fetcam::bench {

/// Shared bench flag handling: `--trace <file>` opens a JSONL trace sink and
/// enables observability; without the flag, FETCAM_TRACE is honoured. The
/// flag (and its argument) are stripped from argv so benches that parse
/// their own arguments — or google-benchmark — never see it.
inline void initObs(int& argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") != 0) continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "warning: --trace requires a file argument; tracing off\n");
            argc -= 1;
            return;
        }
        const char* path = argv[i + 1];
        if (!obs::TraceSink::global().open(path))
            std::fprintf(stderr, "warning: cannot open trace file %s\n", path);
        obs::setEnabled(true);
        for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
        argc -= 2;
        return;
    }
    obs::initFromEnv();
}

/// Standard experiment banner: what this bench reproduces and which shape
/// from the paper it should exhibit.
inline void banner(const char* id, const char* title, const char* expectedShape) {
    std::printf("=== %s: %s ===\n", id, title);
    std::printf("expected shape: %s\n\n", expectedShape);
}

/// Print a labelled series block (figure data as columns).
inline void printSeries(const std::string& xLabel, const std::vector<double>& xs,
                        const std::vector<std::pair<std::string, std::vector<double>>>& ys,
                        const char* yUnit) {
    std::printf("%-12s", xLabel.c_str());
    for (const auto& [name, _] : ys) std::printf("  %-22s", name.c_str());
    std::printf("   [%s]\n", yUnit);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%-12g", xs[i]);
        for (const auto& [_, v] : ys) std::printf("  %-22.6g", v[i]);
        std::printf("\n");
    }
    std::printf("\n");
}

}  // namespace fetcam::bench
