// Shared helpers for the experiment benches (one binary per reconstructed
// table/figure; see DESIGN.md for the experiment index).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/fetcam.hpp"

namespace fetcam::bench {

/// Standard experiment banner: what this bench reproduces and which shape
/// from the paper it should exhibit.
inline void banner(const char* id, const char* title, const char* expectedShape) {
    std::printf("=== %s: %s ===\n", id, title);
    std::printf("expected shape: %s\n\n", expectedShape);
}

/// Print a labelled series block (figure data as columns).
inline void printSeries(const std::string& xLabel, const std::vector<double>& xs,
                        const std::vector<std::pair<std::string, std::vector<double>>>& ys,
                        const char* yUnit) {
    std::printf("%-12s", xLabel.c_str());
    for (const auto& [name, _] : ys) std::printf("  %-22s", name.c_str());
    std::printf("   [%s]\n", yUnit);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::printf("%-12g", xs[i]);
        for (const auto& [_, v] : ys) std::printf("  %-22.6g", v[i]);
        std::printf("\n");
    }
    std::printf("\n");
}

}  // namespace fetcam::bench
