// Robustness layer: structured SimError taxonomy, the convergence rescue
// ladder, graceful sweep degradation, and the fault-injection harness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "array/montecarlo.hpp"
#include "device/fefet.hpp"
#include "device/passives.hpp"
#include "device/sources.hpp"
#include "device/tech.hpp"
#include "obs/obs.hpp"
#include "recover/fault_injection.hpp"
#include "recover/io_guard.hpp"
#include "recover/rescue.hpp"
#include "recover/sim_error.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"

using namespace fetcam;
using device::Capacitor;
using device::FeFet;
using device::Resistor;
using device::SourceWave;
using device::VoltageSource;
using recover::FaultKind;
using recover::FaultPlan;
using recover::FaultSpec;
using recover::RescueRung;
using recover::ScopedFaultPlan;
using recover::SimError;
using recover::SimErrorReason;

namespace {

const device::TechCard kTech = device::TechCard::cmos45();

/// Driven RC: V source -> R -> node "out" -> C -> ground. Well-conditioned,
/// converges in a couple of iterations per step.
spice::Circuit makeRcCircuit() {
    spice::Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.add<VoltageSource>("V1", c, in, spice::kGround,
                         SourceWave::pulse(0.0, 1.0, 1e-9, 0.2e-9, 0.2e-9, 4e-9));
    c.add<Resistor>("R1", in, out, 1e3);
    c.add<Capacitor>("C1", out, spice::kGround, 1e-12);
    return c;
}

spice::TransientSpec makeRcSpec() {
    spice::TransientSpec spec;
    spec.tstop = 2e-9;
    spec.dtMax = 0.2e-9;
    return spec;
}

}  // namespace

// --- naming / formatting --------------------------------------------------

TEST(Recover, StableNames) {
    EXPECT_STREQ(recover::reasonName(SimErrorReason::InvalidSpec), "invalid_spec");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::StepUnderflow), "step_underflow");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::SingularMatrix), "singular_matrix");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::NanResidual), "nan_residual");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::NonConvergence), "non_convergence");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::IoError), "io_error");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::CorruptData), "corrupt_data");
    EXPECT_STREQ(recover::reasonName(SimErrorReason::DeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_EQ(recover::exitCodeFor(SimErrorReason::CorruptData), 9);
    EXPECT_EQ(recover::exitCodeFor(SimErrorReason::DeadlineExceeded), 10);

    EXPECT_STREQ(recover::rungName(RescueRung::TightenDamping), "damping");
    EXPECT_STREQ(recover::rungName(RescueRung::GminRamp), "gmin");
    EXPECT_STREQ(recover::rungName(RescueRung::SourceStepping), "source");
    EXPECT_STREQ(recover::rungName(RescueRung::ForceBackwardEuler), "backward_euler");

    EXPECT_STREQ(recover::faultKindName(FaultKind::NanCurrent), "nan_current");
    EXPECT_STREQ(recover::faultKindName(FaultKind::SingularStamp), "singular_stamp");
    EXPECT_STREQ(recover::faultKindName(FaultKind::StuckPolarization), "stuck_polarization");
    EXPECT_STREQ(recover::faultKindName(FaultKind::TornFrame), "torn_frame");
    EXPECT_STREQ(recover::faultKindName(FaultKind::GarbageBytes), "garbage_bytes");
    EXPECT_STREQ(recover::faultKindName(FaultKind::Disconnect), "disconnect");
    EXPECT_STREQ(recover::faultKindName(FaultKind::StalledRead), "stalled_read");

    EXPECT_STREQ(spice::newtonFailureName(spice::NewtonFailure::None), "none");
    EXPECT_STREQ(spice::newtonFailureName(spice::NewtonFailure::SingularMatrix),
                 "singular_matrix");
}

TEST(Recover, NetFrameFaultsUseTheirOwnOrdinalStream) {
    recover::FaultPlan plan;
    recover::FaultSpec torn;
    torn.kind = FaultKind::TornFrame;
    torn.fromSolve = 1;
    torn.toSolve = 2;
    plan.add(torn);
    recover::FaultSpec nan;
    nan.kind = FaultKind::NanCurrent;
    nan.fromSolve = 0;
    nan.toSolve = 1;
    plan.add(nan);

    // Solver ordinals do not advance the frame stream or trip net faults.
    EXPECT_TRUE(plan.beginSolve().nanCurrent);
    EXPECT_FALSE(plan.beginSolve().any());
    EXPECT_EQ(plan.framesSeen(), 0);

    EXPECT_FALSE(plan.beginNetFrame().any());  // frame 0: outside [1, 2)
    const auto f1 = plan.beginNetFrame();      // frame 1: torn
    EXPECT_TRUE(f1.tornFrame);
    EXPECT_FALSE(f1.garbageBytes);
    EXPECT_FALSE(plan.beginNetFrame().any());  // frame 2: window closed
    EXPECT_EQ(plan.framesSeen(), 3);
    EXPECT_EQ(plan.solvesSeen(), 2);
    EXPECT_EQ(plan.injectionCount(), 2);  // one solve fault + one frame fault
}

TEST(Recover, SimErrorCarriesContext) {
    SimError::Info info;
    info.reason = SimErrorReason::SingularMatrix;
    info.where = "runTransient";
    info.time = 1.5e-9;
    info.attempted = {{RescueRung::GminRamp, 1e-3, true, 4},
                      {RescueRung::GminRamp, 1e-12, false, 100}};
    const SimError e(info, "singular MNA matrix");
    EXPECT_EQ(e.reason(), SimErrorReason::SingularMatrix);
    EXPECT_EQ(e.where(), "runTransient");
    EXPECT_DOUBLE_EQ(e.time(), 1.5e-9);
    ASSERT_EQ(e.attemptedRescues().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("runTransient"), std::string::npos);
    EXPECT_NE(what.find("singular_matrix"), std::string::npos);
    EXPECT_NE(what.find("gmin"), std::string::npos);

    const SimError simple(SimErrorReason::InvalidSpec, "validate", "bad dt");
    EXPECT_EQ(simple.reason(), SimErrorReason::InvalidSpec);
    EXPECT_LT(simple.time(), 0.0);
    EXPECT_TRUE(simple.attemptedRescues().empty());
}

TEST(Recover, FormatRescueTrail) {
    const std::string s = recover::formatRescueTrail(
        {{RescueRung::TightenDamping, 0.25, false, 100},
         {RescueRung::GminRamp, 1e-6, true, 7}});
    EXPECT_NE(s.find("damping"), std::string::npos);
    EXPECT_NE(s.find("fail"), std::string::npos);
    EXPECT_NE(s.find("ok"), std::string::npos);
}

// --- spec validation ------------------------------------------------------

TEST(Recover, TransientSpecValidation) {
    auto expectInvalid = [](const spice::TransientSpec& spec) {
        try {
            validateTransientSpec(spec);
            FAIL() << "expected SimError(InvalidSpec)";
        } catch (const SimError& e) {
            EXPECT_EQ(e.reason(), SimErrorReason::InvalidSpec);
            EXPECT_EQ(e.where(), "runTransient");
        }
    };

    spice::TransientSpec good = makeRcSpec();
    EXPECT_NO_THROW(validateTransientSpec(good));

    auto s = good;
    s.dtMin = 0.0;
    expectInvalid(s);
    s = good;
    s.dtMin = -1e-15;
    expectInvalid(s);
    s = good;
    s.dtMin = s.dtMax;  // dtMin must be strictly below dtMax
    expectInvalid(s);
    s = good;
    s.dtInitial = 2.0 * s.dtMax;
    expectInvalid(s);
    s = good;
    s.tstop = std::numeric_limits<double>::quiet_NaN();
    expectInvalid(s);
    s = good;
    s.dtMax = std::numeric_limits<double>::infinity();
    expectInvalid(s);
    s = good;
    s.gmin = -1.0;
    expectInvalid(s);
    s = good;
    s.initialConditions.push_back({1, std::numeric_limits<double>::quiet_NaN()});
    expectInvalid(s);
}

// --- fault plan mechanics -------------------------------------------------

TEST(Recover, FaultPlanWindowsAndScoping) {
    EXPECT_EQ(FaultPlan::active(), nullptr);
    FaultPlan plan;
    plan.add({FaultKind::NanCurrent, /*fromSolve=*/1, /*toSolve=*/3, /*node=*/2});
    {
        ScopedFaultPlan guard(plan);
        EXPECT_EQ(FaultPlan::active(), &plan);

        auto f0 = plan.beginSolve();  // solve 0: before the window
        EXPECT_FALSE(f0.any());
        auto f1 = plan.beginSolve();  // solve 1: inside
        EXPECT_TRUE(f1.nanCurrent);
        EXPECT_EQ(f1.node, 2);
        auto f2 = plan.beginSolve();  // solve 2: inside
        EXPECT_TRUE(f2.nanCurrent);
        auto f3 = plan.beginSolve();  // solve 3: past the window
        EXPECT_FALSE(f3.any());

        EXPECT_EQ(plan.solvesSeen(), 4);
        EXPECT_EQ(plan.injectionCount(), 2);

        // Nested plans restore the outer plan on scope exit.
        FaultPlan inner;
        {
            ScopedFaultPlan g2(inner);
            EXPECT_EQ(FaultPlan::active(), &inner);
        }
        EXPECT_EQ(FaultPlan::active(), &plan);
    }
    EXPECT_EQ(FaultPlan::active(), nullptr);
}

// --- solver-level fault behavior -----------------------------------------

TEST(Recover, NewtonReportsNanResidualUnderInjection) {
    auto c = makeRcCircuit();
    std::vector<double> x(static_cast<std::size_t>(c.numUnknowns()), 0.0);
    spice::SimContext ctx;
    ctx.mode = spice::AnalysisMode::Dc;
    ctx.x = &x;
    ctx.numNodes = c.numNodes();

    FaultPlan plan;
    plan.add({FaultKind::NanCurrent, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);
    const auto nr = solveNewton(c, ctx, x, {});
    EXPECT_FALSE(nr.converged);
    EXPECT_EQ(nr.failure, spice::NewtonFailure::NanResidual);
    EXPECT_GT(plan.injectionCount(), 0);
}

TEST(Recover, NewtonReportsSingularMatrixUnderInjection) {
    auto c = makeRcCircuit();
    std::vector<double> x(static_cast<std::size_t>(c.numUnknowns()), 0.0);
    spice::SimContext ctx;
    ctx.mode = spice::AnalysisMode::Dc;
    ctx.x = &x;
    ctx.numNodes = c.numNodes();

    FaultPlan plan;
    plan.add({FaultKind::SingularStamp, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);
    const auto nr = solveNewton(c, ctx, x, {});
    EXPECT_FALSE(nr.converged);
    EXPECT_EQ(nr.failure, spice::NewtonFailure::SingularMatrix);
}

TEST(Recover, TransientRecoversFromTransientNanWindow) {
    auto c = makeRcCircuit();
    FaultPlan plan;
    plan.add({FaultKind::NanCurrent, /*fromSolve=*/3, /*toSolve=*/4, /*node=*/2});
    ScopedFaultPlan guard(plan);
    const auto r = runTransient(c, makeRcSpec());
    EXPECT_TRUE(r.finished);
    EXPECT_GE(r.rejectedSteps, 1);  // the poisoned solve cost one rejection
    EXPECT_EQ(plan.injectionCount(), 1);
}

TEST(Recover, TransientThrowsTypedErrorWhenLadderExhausted) {
    auto c = makeRcCircuit();
    FaultPlan plan;  // singular at every solve: nothing can rescue this
    plan.add({FaultKind::SingularStamp, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);
    try {
        runTransient(c, makeRcSpec());
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::SingularMatrix);
        EXPECT_EQ(e.where(), "runTransient");
        EXPECT_GE(e.time(), 0.0);
        // The ladder ran before giving up. (The BE rung is skipped here: the
        // failure hits the very first step, which already integrates with BE.)
        EXPECT_FALSE(e.attemptedRescues().empty());
        bool sawDamping = false, sawGmin = false, sawSource = false;
        for (const auto& a : e.attemptedRescues()) {
            sawDamping |= a.rung == RescueRung::TightenDamping;
            sawGmin |= a.rung == RescueRung::GminRamp;
            sawSource |= a.rung == RescueRung::SourceStepping;
            EXPECT_FALSE(a.converged);
        }
        EXPECT_TRUE(sawDamping);
        EXPECT_TRUE(sawGmin);
        EXPECT_TRUE(sawSource);
    }
}

TEST(Recover, LadderDisabledFailsOutright) {
    auto c = makeRcCircuit();
    FaultPlan plan;
    plan.add({FaultKind::SingularStamp, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);
    auto spec = makeRcSpec();
    spec.rescue.enabled = false;
    try {
        runTransient(c, spec);
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::SingularMatrix);
        EXPECT_TRUE(e.attemptedRescues().empty());  // ladder never climbed
    }
}

// --- the acceptance scenario: gmin ramp rescues a singular netlist --------

namespace {

/// A circuit the seed engine could not solve: a floating resistor pair (no DC
/// path to ground) alongside a normal driven RC branch, simulated with
/// spec.gmin = 0 so nothing regularizes the floating subcircuit.
spice::Circuit makeFloatingCircuit() {
    spice::Circuit c = makeRcCircuit();
    const auto fa = c.node("float_a");
    const auto fb = c.node("float_b");
    c.add<Resistor>("Rfloat", fa, fb, 1e6);
    return c;
}

}  // namespace

TEST(Recover, GminLadderRescuesFloatingNetlist) {
    auto spec = makeRcSpec();
    spec.gmin = 0.0;  // structurally singular at every step without rescue

    {  // Seed behavior: with the ladder disabled the run dies immediately.
        auto c = makeFloatingCircuit();
        auto noRescue = spec;
        noRescue.rescue.enabled = false;
        EXPECT_THROW(runTransient(c, noRescue), SimError);
    }

    auto c = makeFloatingCircuit();
    const auto r = runTransient(c, spec);
    EXPECT_TRUE(r.finished);
    EXPECT_GT(r.stats.rescuedSteps, 0);
    EXPECT_GT(r.stats.rescueAttempts, 0);
    EXPECT_GT(r.stats.degradedGminSteps, 0);  // accepted at gmin <= 1e-9
    // The driven branch still resolved: "out" charges toward 1 V.
    const auto out = c.findNode("out");
    EXPECT_GT(r.waveforms.nodeAt(out, 2e-9), 0.3);
}

// --- stuck polarization ---------------------------------------------------

namespace {

double pulseFeFet(double startP, double vPulse, double width, bool stuck) {
    spice::Circuit c;
    const auto g = c.node("g");
    c.add<VoltageSource>("Vg", c, g, spice::kGround,
                         SourceWave::pulse(0.0, vPulse, 1e-9, 1e-9, 1e-9, width));
    auto& fet = c.add<FeFet>("X1", g, spice::kGround, spice::kGround, kTech.fefet);
    fet.setPolarization(startP);
    spice::TransientSpec spec;
    spec.tstop = width + 5e-9;
    spec.dtMax = 0.5e-9;
    if (stuck) {
        FaultPlan plan;
        plan.add({FaultKind::StuckPolarization, 0,
                  std::numeric_limits<long long>::max(), 0});
        ScopedFaultPlan guard(plan);
        runTransient(c, spec);
    } else {
        runTransient(c, spec);
    }
    return fet.pnorm();
}

}  // namespace

TEST(Recover, StuckPolarizationFaultFreezesState) {
    // Healthy device: a full write pulse flips the polarization.
    EXPECT_GT(pulseFeFet(-1.0, kTech.vWriteFe, kTech.tWriteFe, /*stuck=*/false), 0.95);
    // Faulted device: the same pulse leaves the stored state unchanged.
    EXPECT_NEAR(pulseFeFet(-1.0, kTech.vWriteFe, kTech.tWriteFe, /*stuck=*/true), -1.0,
                1e-9);
}

// --- DC source stepping ---------------------------------------------------

TEST(Recover, DcOpFallsBackToSourceStepping) {
    spice::Circuit c;
    const auto a = c.node("a");
    const auto b = c.node("b");
    c.add<VoltageSource>("V1", c, a, spice::kGround, SourceWave::dc(1.0));
    c.add<Resistor>("R1", a, b, 1e3);
    c.add<Resistor>("R2", b, spice::kGround, 1e3);

    // Poison the direct solve (ordinal 0) and the first gmin-continuation
    // solve (ordinal 1); the continuation aborts and source stepping — whose
    // solves fall outside the window — must finish the job.
    FaultPlan plan;
    plan.add({FaultKind::NanCurrent, 0, 2, 1});
    ScopedFaultPlan guard(plan);
    const auto op = solveDcOp(c);
    EXPECT_TRUE(op.converged);
    EXPECT_EQ(op.failure, spice::NewtonFailure::None);
    EXPECT_NEAR(op.v(b), 0.5, 1e-6);
    bool sawSource = false;
    for (const auto& r : op.rescues) sawSource |= r.rung == RescueRung::SourceStepping;
    EXPECT_TRUE(sawSource);
}

TEST(Recover, DcOpReportsFailureKindWhenUnrescuable) {
    spice::Circuit c;
    const auto a = c.node("a");
    c.add<VoltageSource>("V1", c, a, spice::kGround, SourceWave::dc(1.0));
    c.add<Resistor>("R1", a, spice::kGround, 1e3);
    FaultPlan plan;  // NaN at every solve, including source stepping
    plan.add({FaultKind::NanCurrent, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);
    const auto op = solveDcOp(c);
    EXPECT_FALSE(op.converged);
    EXPECT_EQ(op.failure, spice::NewtonFailure::NanResidual);
    EXPECT_FALSE(op.rescues.empty());
}

// --- Monte Carlo degradation ---------------------------------------------

namespace {

array::MonteCarloSpec makeMcSpec() {
    array::MonteCarloSpec spec;
    spec.config.cell = tcam::CellKind::FeFet2;
    spec.config.wordBits = 4;
    spec.trials = 3;
    spec.sigmaVt = 0.02;
    spec.seed = 7;
    return spec;
}

}  // namespace

TEST(Recover, MonteCarloLenientRecordsInjectedFailures) {
    auto& failCounter = obs::counter("array.mc.failed_trials");
    const long long failsBefore = failCounter.value();
    obs::setEnabled(true);

    FaultPlan plan;  // persistent singular stamp: every trial dies
    plan.add({FaultKind::SingularStamp, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);

    auto spec = makeMcSpec();
    spec.onFailure = recover::FailurePolicy::Lenient;
    const auto r = runMonteCarlo(spec);
    obs::setEnabled(false);

    EXPECT_EQ(r.failedTrials, spec.trials);
    EXPECT_EQ(r.completedTrials, 0);
    EXPECT_EQ(r.failureReasons[static_cast<std::size_t>(SimErrorReason::SingularMatrix)],
              spec.trials);
    EXPECT_DOUBLE_EQ(r.errorRate(), 0.0);  // no completed trials, no division
    EXPECT_EQ(failCounter.value(), failsBefore + spec.trials);
}

TEST(Recover, MonteCarloStrictThrowsWithRescueTrail) {
    FaultPlan plan;
    plan.add({FaultKind::SingularStamp, 0, std::numeric_limits<long long>::max(), 1});
    ScopedFaultPlan guard(plan);

    auto spec = makeMcSpec();
    spec.onFailure = recover::FailurePolicy::Strict;
    try {
        runMonteCarlo(spec);
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::SingularMatrix);
        EXPECT_FALSE(e.attemptedRescues().empty());
    }
}

TEST(Recover, MonteCarloCleanRunHasNoFailures) {
    auto spec = makeMcSpec();
    const auto r = runMonteCarlo(spec);
    EXPECT_EQ(r.failedTrials, 0);
    EXPECT_EQ(r.completedTrials, spec.trials);
    for (const int n : r.failureReasons) EXPECT_EQ(n, 0);
}

TEST(IoGuard, CleanStdoutPassesAndSigpipeIgnored) {
    recover::ignoreSigpipe();  // idempotent; must not throw
    recover::ignoreSigpipe();
    EXPECT_NO_THROW(recover::checkStdout("recover_test"));
}
