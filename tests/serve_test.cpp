// fetcam::serve contract tests.
//
// The two guarantees everything else leans on:
//   1. Bit-identity — the characterization cache must be invisible: cached
//      and uncached evaluations agree to the last bit, and so do cold vs
//      warm engines and jobs=1 vs jobs=N serving.
//   2. Priority — the sharded engine reports the globally lowest matching
//      row, exactly like the two-level hardware priority encoder, and the
//      app services reproduce their reference implementations exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/tcam_macro.hpp"
#include "numeric/stats.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"
#include "serve/adapters.hpp"
#include "serve/char_cache.hpp"
#include "serve/query_engine.hpp"

using namespace fetcam;

namespace {

array::ArrayConfig smallConfig(int wordBits = 8, int rows = 4) {
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.sense = array::SenseScheme::LowSwing;
    cfg.wordBits = wordBits;
    cfg.rows = rows;
    return cfg;
}

serve::EngineOptions smallOptions(int wordBits = 8, int rows = 4, std::int64_t capacity = 12) {
    serve::EngineOptions o;
    o.shard = smallConfig(wordBits, rows);
    o.capacity = capacity;
    return o;
}

void expectSameBank(const array::BankMetrics& a, const array::BankMetrics& b) {
    EXPECT_EQ(a.subArrays, b.subArrays);
    EXPECT_EQ(a.rowsPerArray, b.rowsPerArray);
    EXPECT_EQ(a.totalEntries, b.totalEntries);
    // Bitwise: the cached path must reuse the same arithmetic, not merely
    // land close.
    EXPECT_EQ(a.perSearch.ml, b.perSearch.ml);
    EXPECT_EQ(a.perSearch.sl, b.perSearch.sl);
    EXPECT_EQ(a.perSearch.sa, b.perSearch.sa);
    EXPECT_EQ(a.perSearch.staticRail, b.perSearch.staticRail);
    EXPECT_EQ(a.encoderEnergy, b.encoderEnergy);
    EXPECT_EQ(a.searchDelay, b.searchDelay);
    EXPECT_EQ(a.cycleTime, b.cycleTime);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.areaF2, b.areaF2);
    EXPECT_EQ(a.functional, b.functional);
}

}  // namespace

TEST(CharCache, CachedEvaluateBankIsBitIdentical) {
    const auto tech = device::TechCard::cmos45();
    const auto cfg = smallConfig();
    const auto plain = evaluateBank(tech, cfg, 10);

    serve::CharacterizationCache cache;
    const auto cold = evaluateBank(tech, cfg, 10, {}, {}, recover::FailurePolicy::Strict,
                                   cache.provider());
    const auto warm = evaluateBank(tech, cfg, 10, {}, {}, recover::FailurePolicy::Strict,
                                   cache.provider());
    expectSameBank(plain, cold);
    expectSameBank(plain, warm);

    const auto stats = cache.stats();
    EXPECT_GT(stats.misses, 0);
    EXPECT_GT(stats.hits, 0);  // the warm evaluation must not re-simulate
    EXPECT_EQ(stats.entries, stats.misses);
}

TEST(CharCache, KeyDistinguishesElectricalSituations) {
    array::WordSimOptions base;
    base.config = smallConfig();
    base.stored = tcam::TernaryWord::fromString("10101010");
    base.key = tcam::TernaryWord::fromString("10101010");

    const auto k0 = serve::CharacterizationCache::keyOf(base);

    auto vdd = base;
    vdd.tech.vdd *= 0.9;
    EXPECT_NE(serve::CharacterizationCache::keyOf(vdd), k0);

    auto temp = base;
    temp.tech.temperatureK += 50.0;
    EXPECT_NE(serve::CharacterizationCache::keyOf(temp), k0);

    auto mismatch = base;
    mismatch.key = tcam::TernaryWord::fromString("00101010");
    EXPECT_NE(serve::CharacterizationCache::keyOf(mismatch), k0);

    auto wider = base;
    wider.config.wordBits = 16;
    EXPECT_NE(serve::CharacterizationCache::keyOf(wider), k0);

    auto timing = base;
    timing.config.timing.tEval *= 2.0;
    EXPECT_NE(serve::CharacterizationCache::keyOf(timing), k0);

    // Rows are deliberately NOT part of the key: a word sim is one row and
    // the array scaling happens outside the cache.
    auto moreRows = base;
    moreRows.config.rows = 128;
    EXPECT_EQ(serve::CharacterizationCache::keyOf(moreRows), k0);
}

TEST(CharCache, VariationsAndWaveformsBypass) {
    array::WordSimOptions o;
    o.config = smallConfig();
    o.stored = tcam::TernaryWord::fromString("10101010");
    o.key = o.stored;
    EXPECT_TRUE(serve::CharacterizationCache::cacheable(o));

    auto waves = o;
    waves.recordWaveforms = true;
    EXPECT_FALSE(serve::CharacterizationCache::cacheable(waves));

    auto mc = o;
    mc.variations.resize(8);
    EXPECT_FALSE(serve::CharacterizationCache::cacheable(mc));

    serve::CharacterizationCache cache;
    cache.characterize(waves);
    EXPECT_EQ(cache.stats().bypasses, 1);
    EXPECT_EQ(cache.stats().entries, 0);
}

TEST(CharCache, MacroBuildsThroughProvider) {
    const auto tech = device::TechCard::cmos45();
    const auto cfg = smallConfig();
    auto cache = std::make_shared<serve::CharacterizationCache>();

    core::TcamMacro plain(tech, cfg, 8);
    core::TcamMacro cached(tech, cfg, 8, {}, cache->provider());
    expectSameBank(plain.hardware(), cached.hardware());
    EXPECT_GT(cache->stats().misses, 0);
}

TEST(QueryEngine, GlobalPriorityAcrossShards) {
    serve::QueryEngine engine(smallOptions());  // 3 shards x 4 rows
    ASSERT_EQ(engine.shards(), 3);
    ASSERT_EQ(engine.capacity(), 12);

    const auto word = tcam::TernaryWord::fromString("1100xx00");
    engine.insertAt(9, word);   // shard 2
    engine.insertAt(5, word);   // shard 1
    const auto key = tcam::TernaryWord::fromString("11001100");

    auto r = engine.searchBatch({key});
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0], 5);  // lowest global row wins across shards

    engine.insertAt(2, word);  // shard 0, higher priority still
    r = engine.searchBatch({key});
    EXPECT_EQ(r.rows[0], 2);

    engine.erase(2);
    r = engine.searchBatch({key});
    EXPECT_EQ(r.rows[0], 5);

    // A non-matching key misses everywhere.
    r = engine.searchBatch({tcam::TernaryWord::fromString("00110011")});
    EXPECT_EQ(r.rows[0], -1);
    EXPECT_EQ(r.hits, 0);
}

TEST(QueryEngine, ColdWarmAndJobsAreByteIdentical) {
    auto cache = std::make_shared<serve::CharacterizationCache>();
    const auto options = smallOptions(8, 4, 20);

    serve::QueryEngine cold(options, cache);
    serve::QueryEngine warm(options, cache);
    expectSameBank(cold.hardware(), warm.hardware());

    numeric::Rng rng(7);
    std::vector<tcam::TernaryWord> words;
    for (int i = 0; i < 20; ++i) {
        tcam::TernaryWord w(8);
        for (std::size_t b = 0; b < 8; ++b)
            w[b] = rng.uniform() < 0.25 ? tcam::Trit::X
                                        : (rng.bernoulli(0.5) ? tcam::Trit::One
                                                              : tcam::Trit::Zero);
        words.push_back(w);
        cold.insertAt(i, w);
        warm.insertAt(i, w);
    }
    std::vector<tcam::TernaryWord> keys;
    for (int i = 0; i < 300; ++i)
        keys.push_back(tcam::TernaryWord::fromBits(rng.nextU64() & 0xFF, 8));

    // Batch smaller than the key count so several tiles fan out.
    const auto serial = cold.searchBatch(keys, 1);
    for (const int jobs : {2, 4, 7}) {
        const auto par = warm.searchBatch(keys, jobs);
        EXPECT_EQ(par.rows, serial.rows) << "jobs=" << jobs;
        EXPECT_EQ(par.hits, serial.hits);
        EXPECT_EQ(par.energy, serial.energy);
        EXPECT_EQ(par.latency, serial.latency);
    }

    // After identical query streams the deterministic reports must agree
    // byte for byte (cache/wall-clock stats are deliberately excluded).
    serve::QueryEngine a(options, cache), b(options, cache);
    for (int i = 0; i < 20; ++i) {
        a.insertAt(i, words[static_cast<std::size_t>(i)]);
        b.insertAt(i, words[static_cast<std::size_t>(i)]);
    }
    a.searchBatch(keys, 1);
    b.searchBatch(keys, 5);
    EXPECT_EQ(a.report(), b.report());
}

TEST(QueryEngine, RejectsBadSpecsAndBadKeys) {
    EXPECT_THROW(serve::QueryEngine(smallOptions(8, 4, 0)), recover::SimError);
    EXPECT_THROW(serve::QueryEngine(smallOptions(8, 4, -5)), recover::SimError);
    EXPECT_THROW(serve::QueryEngine(smallOptions(8, 4, serve::QueryEngine::kMaxCapacity + 1)),
                 recover::SimError);
    auto badBatch = smallOptions();
    badBatch.batchSize = 0;
    EXPECT_THROW(serve::QueryEngine{badBatch}, recover::SimError);

    serve::QueryEngine engine(smallOptions());
    EXPECT_THROW(engine.insertAt(-1, tcam::TernaryWord(8)), recover::SimError);
    EXPECT_THROW(engine.insertAt(12, tcam::TernaryWord(8)), recover::SimError);
    EXPECT_THROW(engine.insertAt(0, tcam::TernaryWord(9)), recover::SimError);

    // A bad key anywhere in the batch fails up front: no partial accounting.
    std::vector<tcam::TernaryWord> keys{tcam::TernaryWord(8), tcam::TernaryWord(7)};
    EXPECT_THROW(engine.searchBatch(keys), recover::SimError);
    EXPECT_EQ(engine.stats().queries, 0);
    EXPECT_EQ(engine.stats().batches, 0);
}

TEST(QueryEngine, InsertFindsFirstFreeRow) {
    serve::QueryEngine engine(smallOptions(8, 4, 4));
    const tcam::TernaryWord w(8, tcam::Trit::X);
    EXPECT_EQ(engine.insert(w), 0);
    EXPECT_EQ(engine.insert(w), 1);
    engine.erase(0);
    EXPECT_EQ(engine.occupancy(), 1);
    EXPECT_EQ(engine.insert(w), 0);
    EXPECT_EQ(engine.insert(w), 2);
    EXPECT_EQ(engine.insert(w), 3);
    EXPECT_THROW(engine.insert(w), std::length_error);
    ASSERT_TRUE(engine.entryAt(2).has_value());
}

TEST(ServeAdapters, LpmMatchesLinearReference) {
    apps::RoutingTable table;
    table.addRoute(0, 0, 1);                      // default
    table.addRoute(0x0A000000, 8, 10);            // 10/8
    table.addRoute(0x0A010000, 16, 20);           // 10.1/16
    table.addRoute(0x0A010200, 24, 30);           // 10.1.2/24
    table.addRoute(0xC0A80000, 16, 40);           // 192.168/16

    serve::EngineOptions base;
    base.shard = smallConfig(32, 4);
    serve::LpmService svc(table, base);

    numeric::Rng rng(11);
    std::vector<std::uint32_t> addresses{0x0A010203, 0x0A010300, 0x0A020000, 0xC0A80101,
                                         0xDEADBEEF};
    for (int i = 0; i < 200; ++i) {
        const auto raw = static_cast<std::uint32_t>(rng.nextU64());
        addresses.push_back(rng.bernoulli(0.7) ? (0x0A000000u | (raw & 0x00FFFFFFu)) : raw);
    }

    const auto got = svc.lookupBatch(addresses);
    ASSERT_EQ(got.size(), addresses.size());
    for (std::size_t i = 0; i < addresses.size(); ++i)
        EXPECT_EQ(got[i], table.lookupLinear(addresses[i])) << "address " << addresses[i];
}

TEST(ServeAdapters, TlbMatchesTranslateReference) {
    apps::Tlb tlb(16);
    tlb.insert(0, apps::PageSize::Page1G, 3);
    tlb.insert(1ULL << 18, apps::PageSize::Page2M, 77);
    for (int i = 0; i < 6; ++i)
        tlb.insert((1ULL << 20) + static_cast<std::uint64_t>(i), apps::PageSize::Page4K,
                   static_cast<std::uint64_t>(100 + i));

    serve::EngineOptions base;
    base.shard = smallConfig(apps::Tlb::kVpnBits, 4);
    serve::TlbService svc(tlb, base);

    numeric::Rng rng(13);
    std::vector<std::uint64_t> vaddrs;
    for (int i = 0; i < 300; ++i) {
        const double u = rng.uniform();
        if (u < 0.4) {
            vaddrs.push_back(rng.nextU64() & ((1ULL << 30) - 1));  // gigapage
        } else if (u < 0.7) {
            vaddrs.push_back((((1ULL << 20) + static_cast<std::uint64_t>(
                                                  rng.uniformInt(0, 9)))
                              << 12) +
                             (rng.nextU64() & 0xFFF));  // 4K pages, some absent
        } else {
            vaddrs.push_back(rng.nextU64() & ((1ULL << apps::Tlb::kVaBits) - 1));
        }
    }

    const auto got = svc.translateBatch(vaddrs);
    ASSERT_EQ(got.size(), vaddrs.size());
    for (std::size_t i = 0; i < vaddrs.size(); ++i)
        EXPECT_EQ(got[i], tlb.translate(vaddrs[i])) << "vaddr " << vaddrs[i];
}

TEST(ServeAdapters, ClassifierMatchesClassifyReference) {
    apps::PacketClassifier classifier;
    classifier.addRule(apps::RuleBuilder()
                           .srcPrefix(0x0A000000, 8)
                           .protocol(6)
                           .build(1, "tcp-from-10"));
    classifier.addRule(
        apps::RuleBuilder().dstPrefix(0xC0A80000, 16).build(2, "to-192-168"));
    classifier.addRule(apps::RuleBuilder().dstPort(443).build(3, "https"));

    serve::EngineOptions base;
    base.shard = smallConfig(apps::PacketHeader::kBits, 2);
    serve::ClassifierService svc(classifier, base);

    numeric::Rng rng(17);
    std::vector<apps::PacketHeader> headers;
    for (int i = 0; i < 200; ++i) {
        apps::PacketHeader h;
        h.srcIp = rng.bernoulli(0.5) ? (0x0A000000u |
                                        (static_cast<std::uint32_t>(rng.nextU64()) &
                                         0x00FFFFFFu))
                                     : static_cast<std::uint32_t>(rng.nextU64());
        h.dstIp = rng.bernoulli(0.5) ? (0xC0A80000u |
                                        (static_cast<std::uint32_t>(rng.nextU64()) & 0xFFFFu))
                                     : static_cast<std::uint32_t>(rng.nextU64());
        h.srcPort = static_cast<std::uint16_t>(rng.nextU64());
        h.dstPort = rng.bernoulli(0.3) ? 443 : static_cast<std::uint16_t>(rng.nextU64());
        h.protocol = rng.bernoulli(0.5) ? 6 : 17;
        headers.push_back(h);
    }

    const auto got = svc.classifyBatch(headers);
    ASSERT_EQ(got.size(), headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i)
        EXPECT_EQ(got[i], classifier.classify(headers[i])) << "header " << i;
}

TEST(ServeAdapters, SharedCacheReusedAcrossServices) {
    // Two services over the same word width and design share characterized
    // points: the second build must be all hits.
    apps::Tlb tlb(8);
    for (int i = 0; i < 8; ++i)
        tlb.insert((1ULL << 20) + static_cast<std::uint64_t>(i), apps::PageSize::Page4K,
                   static_cast<std::uint64_t>(i));

    auto cache = std::make_shared<serve::CharacterizationCache>();
    serve::EngineOptions base;
    base.shard = smallConfig(apps::Tlb::kVpnBits, 4);

    serve::TlbService first(tlb, base, cache);
    const auto afterFirst = cache->stats();
    serve::TlbService second(tlb, base, cache);
    const auto afterSecond = cache->stats();

    EXPECT_EQ(afterSecond.misses, afterFirst.misses);  // no new transients
    EXPECT_GT(afterSecond.hits, afterFirst.hits);
    expectSameBank(first.engine().hardware(), second.engine().hardware());
}

TEST(CharCache, KeyLeadsWithSchemaVersionByte) {
    array::WordSimOptions o;
    o.config = smallConfig();
    o.stored = tcam::TernaryWord(8, tcam::Trit::Zero);
    o.key = tcam::TernaryWord(8, tcam::Trit::One);
    const auto key = serve::CharacterizationCache::keyOf(o);
    ASSERT_FALSE(key.empty());
    // The first byte is the packed-layout version, so keys from different
    // layouts can never alias — in memory or in a persisted store.
    EXPECT_EQ(static_cast<std::uint8_t>(key[0]), serve::kCharSchemaVersion);
}

TEST(QueryEngineAdmission, UnboundedAndSequentialSubmitsAreAccepted) {
    auto options = smallOptions();
    serve::QueryEngine unbounded(options);  // maxInFlightBatches = 0
    unbounded.insert(tcam::TernaryWord::fromBits(5, 8));

    const std::vector<tcam::TernaryWord> keys = {tcam::TernaryWord::fromBits(5, 8),
                                                 tcam::TernaryWord::fromBits(9, 8)};
    const auto direct = unbounded.searchBatch(keys);
    auto submitted = unbounded.submitBatch(keys);
    ASSERT_TRUE(submitted.admitted());
    EXPECT_EQ(submitted.result.rows, direct.rows);
    EXPECT_EQ(submitted.result.hits, direct.hits);

    // A bound of 1 never sheds sequential submissions.
    options.admission.maxInFlightBatches = 1;
    serve::QueryEngine bounded(options);
    bounded.insert(tcam::TernaryWord::fromBits(5, 8));
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(bounded.submitBatch(keys).admitted());
    const auto stats = bounded.stats();
    EXPECT_EQ(stats.accepted, 3);
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(bounded.inFlightBatches(), 0);
}

TEST(QueryEngineAdmission, ConcurrentOverloadSheds) {
    auto options = smallOptions();
    options.admission.maxInFlightBatches = 1;
    serve::QueryEngine engine(options);
    engine.insert(tcam::TernaryWord::fromBits(5, 8));

    // A batch large enough that the worker is observably in flight. If the
    // worker finishes before we can collide with it, retry with more keys.
    const std::vector<tcam::TernaryWord> probe = {tcam::TernaryWord::fromBits(5, 8)};
    bool shedObserved = false;
    std::int64_t big = 1 << 16;
    for (int attempt = 0; attempt < 8 && !shedObserved; ++attempt, big *= 2) {
        const std::vector<tcam::TernaryWord> bulk(
            static_cast<std::size_t>(big), tcam::TernaryWord::fromBits(5, 8));
        serve::SubmitResult bulkResult;
        std::thread worker(
            [&] { bulkResult = engine.submitBatch(bulk, /*jobs=*/1); });
        while (engine.inFlightBatches() > 0) {
            const auto r = engine.submitBatch(probe, 1);
            if (!r.admitted()) {
                shedObserved = true;
                break;
            }
        }
        worker.join();
        EXPECT_TRUE(bulkResult.admitted());
    }
    EXPECT_TRUE(shedObserved);
    const auto stats = engine.stats();
    EXPECT_GT(stats.shed, 0);
    // Shed batches did zero work: every counted query belongs to an admitted
    // batch (the bulks plus the admitted single-key probes).
    EXPECT_EQ(stats.batches, stats.accepted);
    EXPECT_EQ(engine.inFlightBatches(), 0);
}

TEST(QueryEngineStore, WarmRestartServesIdenticalResults) {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "fetcam_serve_test_store").string();
    fs::remove_all(dir);

    auto options = smallOptions();
    options.store.dir = dir;

    const std::vector<tcam::TernaryWord> keys = {
        tcam::TernaryWord::fromBits(3, 8), tcam::TernaryWord::fromBits(7, 8),
        tcam::TernaryWord::fromBits(200, 8)};

    std::string coldReport;
    serve::BatchResult coldBatch;
    array::BankMetrics coldBank;
    std::int64_t coldMisses = 0;
    {
        serve::QueryEngine cold(options);
        ASSERT_FALSE(cold.storeStatus().degraded);
        coldMisses = cold.cache()->stats().misses;
        EXPECT_GT(coldMisses, 0);
        cold.insert(tcam::TernaryWord::fromBits(3, 8));
        cold.insert(tcam::TernaryWord::fromBits(7, 8));
        coldBatch = cold.searchBatch(keys);
        coldReport = cold.report();
        coldBank = cold.hardware();
    }  // engine teardown flushes the store

    serve::QueryEngine warm(options);
    ASSERT_FALSE(warm.storeStatus().degraded);
    // The warm build replays every characterization from disk: zero solver
    // transients, and everything served is bit-identical to the cold run.
    EXPECT_EQ(warm.cache()->stats().misses, 0);
    EXPECT_GT(warm.cache()->stats().storeHits, 0);
    // The cold run also characterized (and persisted) one word-write cost
    // when insert() first charged program energy — hence the +1.
    EXPECT_EQ(warm.storeStatus().load.recordsLoaded, coldMisses + 1);
    warm.insert(tcam::TernaryWord::fromBits(3, 8));
    warm.insert(tcam::TernaryWord::fromBits(7, 8));
    const auto warmBatch = warm.searchBatch(keys);
    EXPECT_EQ(warmBatch.rows, coldBatch.rows);
    EXPECT_EQ(warmBatch.hits, coldBatch.hits);
    EXPECT_EQ(warmBatch.energy, coldBatch.energy);
    EXPECT_EQ(warmBatch.latency, coldBatch.latency);
    EXPECT_EQ(warm.report(), coldReport);
    expectSameBank(warm.hardware(), coldBank);

    fs::remove_all(dir);
}

// --- per-query deadlines (network front-end contract) ----------------------

TEST(QueryEngineDeadline, ExpiredQueriesShedBeforeSimulation) {
    serve::QueryEngine engine(smallOptions());
    engine.insert(tcam::TernaryWord::fromBits(5, 8));

    const std::vector<tcam::TernaryWord> keys = {
        tcam::TernaryWord::fromBits(5, 8),  // hit, expired
        tcam::TernaryWord::fromBits(5, 8),  // hit, live deadline
        tcam::TernaryWord::fromBits(9, 8),  // miss, no deadline
    };
    const double now = obs::monotonicSeconds();
    const std::vector<double> deadlines = {now - 1.0, now + 100.0, 0.0};
    serve::SubmitOptions opts;
    opts.deadlines = &deadlines;
    const auto out = engine.submitBatch(keys, opts);
    ASSERT_TRUE(out.admitted());

    EXPECT_EQ(out.result.rows[0], serve::kRowDeadlineExpired);
    EXPECT_EQ(out.result.rows[1], 0);
    EXPECT_EQ(out.result.rows[2], -1);
    EXPECT_EQ(out.result.expired, 1);
    EXPECT_EQ(out.result.hits, 1);
    // Shed-before-scan means shed-before-energy: only the two executed
    // queries are charged.
    EXPECT_EQ(out.result.energy, engine.energyPerQuery() * 2);

    EXPECT_EQ(engine.stats().deadlineExpired, 1);
    EXPECT_EQ(engine.stats().queries, 3);
    EXPECT_NE(engine.report().find("1 deadline-expired"), std::string::npos);
}

TEST(QueryEngineDeadline, AllExpiredChargesNoEnergy) {
    serve::QueryEngine engine(smallOptions());
    engine.insert(tcam::TernaryWord::fromBits(5, 8));
    const std::vector<tcam::TernaryWord> keys(4, tcam::TernaryWord::fromBits(5, 8));
    const std::vector<double> deadlines(4, 1e-9);  // long past
    serve::SubmitOptions opts;
    opts.deadlines = &deadlines;
    const auto out = engine.submitBatch(keys, opts);
    ASSERT_TRUE(out.admitted());
    EXPECT_EQ(out.result.expired, 4);
    EXPECT_EQ(out.result.hits, 0);
    EXPECT_EQ(out.result.energy, 0.0);
    for (const auto row : out.result.rows) EXPECT_EQ(row, serve::kRowDeadlineExpired);
}

TEST(QueryEngineDeadline, MisalignedDeadlinesRejected) {
    serve::QueryEngine engine(smallOptions());
    const std::vector<tcam::TernaryWord> keys(3, tcam::TernaryWord::fromBits(5, 8));
    const std::vector<double> deadlines(2, 0.0);
    serve::SubmitOptions opts;
    opts.deadlines = &deadlines;
    EXPECT_THROW(engine.submitBatch(keys, opts), recover::SimError);
}

TEST(QueryEngineDeadline, NoDeadlinesMatchesPlainSearch) {
    const auto options = smallOptions();
    serve::QueryEngine a(options);
    serve::QueryEngine b(options);
    for (auto* e : {&a, &b}) {
        e->insert(tcam::TernaryWord::fromBits(5, 8));
        e->insert(tcam::TernaryWord::fromBits(6, 8));
    }
    std::vector<tcam::TernaryWord> keys;
    for (int i = 0; i < 8; ++i) keys.push_back(tcam::TernaryWord::fromBits(i, 8));
    const auto plain = a.searchBatch(keys);
    const auto submitted = b.submitBatch(keys, serve::SubmitOptions{});
    ASSERT_TRUE(submitted.admitted());
    EXPECT_EQ(submitted.result.rows, plain.rows);
    EXPECT_EQ(submitted.result.hits, plain.hits);
    EXPECT_EQ(submitted.result.energy, plain.energy);
    EXPECT_EQ(submitted.result.expired, 0);
}
