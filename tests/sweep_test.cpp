// Systematic parameterized sweeps: hardware invariants that must hold at
// every point of the operating grid, not just the calibration cases.
#include <gtest/gtest.h>

#include "array/energy_model.hpp"
#include "array/word_sim.hpp"

using namespace fetcam;
using tcam::CellKind;

// ---------------------------------------------------------------------------
// A single-bit mismatch must be detected wherever it falls in the word.
// ---------------------------------------------------------------------------

struct PositionCase {
    CellKind cell;
    int position;
};

class MismatchPosition : public ::testing::TestWithParam<PositionCase> {};

TEST_P(MismatchPosition, DetectedAnywhere) {
    const auto [cell, pos] = GetParam();
    array::WordSimOptions o;
    o.config.cell = cell;
    o.config.wordBits = 8;
    o.stored = array::calibrationWord(8);
    o.key = o.stored;
    o.key[static_cast<std::size_t>(pos)] =
        o.stored[static_cast<std::size_t>(pos)] == tcam::Trit::One ? tcam::Trit::Zero
                                                                   : tcam::Trit::One;
    const auto r = simulateWordSearch(o);
    EXPECT_FALSE(r.expectedMatch);
    EXPECT_FALSE(r.matchDetected) << cellKindName(cell) << " pos=" << pos;
}

static std::vector<PositionCase> positionGrid() {
    std::vector<PositionCase> cases;
    for (const auto c : {CellKind::Cmos16T, CellKind::ReRam2T2R, CellKind::FeFet2,
                         CellKind::FeFet2Nand})
        for (int p = 0; p < 8; ++p) cases.push_back({c, p});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCellsAllPositions, MismatchPosition,
                         ::testing::ValuesIn(positionGrid()));

// ---------------------------------------------------------------------------
// Any mismatch multiplicity must be detected; detection never slows down as
// more bits mismatch (more parallel pulldowns).
// ---------------------------------------------------------------------------

class MismatchCount : public ::testing::TestWithParam<int> {};

TEST_P(MismatchCount, DetectedAndMonotone) {
    const int k = GetParam();
    array::WordSimOptions o;
    o.config.cell = CellKind::FeFet2;
    o.config.wordBits = 16;
    o.stored = array::calibrationWord(16);
    o.key = array::keyWithMismatches(o.stored, k);
    const auto r = simulateWordSearch(o);
    EXPECT_FALSE(r.matchDetected);
    ASSERT_TRUE(r.detectDelay.has_value());

    if (k > 1) {
        auto o1 = o;
        o1.key = array::keyWithMismatches(o.stored, 1);
        const auto r1 = simulateWordSearch(o1);
        ASSERT_TRUE(r1.detectDelay.has_value());
        EXPECT_LE(*r.detectDelay, *r1.detectDelay * 1.05);
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, MismatchCount, ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Functionality across word widths.
// ---------------------------------------------------------------------------

struct WidthCase {
    CellKind cell;
    int bits;
};

class WidthFunctional : public ::testing::TestWithParam<WidthCase> {};

TEST_P(WidthFunctional, MatchAndMismatchCorrect) {
    const auto [cell, bits] = GetParam();
    array::WordSimOptions o;
    o.config.cell = cell;
    o.config.wordBits = bits;
    o.stored = array::calibrationWord(bits);
    o.key = o.stored;
    EXPECT_TRUE(simulateWordSearch(o).correct());
    o.key = array::keyWithMismatches(o.stored, 1);
    EXPECT_TRUE(simulateWordSearch(o).correct());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WidthFunctional,
    ::testing::Values(WidthCase{CellKind::Cmos16T, 4}, WidthCase{CellKind::Cmos16T, 32},
                      WidthCase{CellKind::ReRam2T2R, 4}, WidthCase{CellKind::ReRam2T2R, 32},
                      WidthCase{CellKind::FeFet2, 4}, WidthCase{CellKind::FeFet2, 32},
                      WidthCase{CellKind::FeFet2, 64}, WidthCase{CellKind::FeFet2Nand, 12}));

// ---------------------------------------------------------------------------
// Search-voltage scaling: functional down to 0.7 V, SL energy monotone in
// the swing.
// ---------------------------------------------------------------------------

TEST(VSearchSweep, FunctionalAndMonotone) {
    double prevEnergy = 0.0;
    for (const double vs : {0.7, 0.8, 0.9, 1.0}) {
        array::WordSimOptions o;
        o.config.cell = CellKind::FeFet2;
        o.config.wordBits = 16;
        o.config.vSearch = vs;
        o.stored = array::calibrationWord(16);
        o.key = array::keyWithMismatches(o.stored, 1);
        const auto r = simulateWordSearch(o);
        EXPECT_FALSE(r.matchDetected) << "vSearch=" << vs;
        EXPECT_GT(r.energySl, prevEnergy) << "vSearch=" << vs;
        prevEnergy = r.energySl;
    }
}

// ---------------------------------------------------------------------------
// Array model scaling laws.
// ---------------------------------------------------------------------------

TEST(ArrayScaling, EnergyGrowsNearLinearlyWithRows) {
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = CellKind::FeFet2;
    cfg.wordBits = 16;
    cfg.rows = 32;
    const double e32 = evaluateArray(tech, cfg).perSearch.total();
    cfg.rows = 128;
    const double e128 = evaluateArray(tech, cfg).perSearch.total();
    EXPECT_NEAR(e128 / e32, 4.0, 0.5);  // ~linear in rows
}

TEST(ArrayScaling, MatchFractionReducesEnergy) {
    // More matching rows -> fewer discharging matchlines -> less energy.
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = CellKind::FeFet2;
    cfg.wordBits = 16;
    cfg.rows = 64;
    array::WorkloadProfile few, many;
    few.matchRowFraction = 1.0 / 64.0;
    many.matchRowFraction = 0.5;
    EXPECT_GT(evaluateArray(tech, cfg, few).perSearch.total(),
              evaluateArray(tech, cfg, many).perSearch.total());
}

TEST(ArrayScaling, NandArrayEnergyAdvantageHolds) {
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig nor, nand;
    nor.cell = CellKind::FeFet2;
    nand.cell = CellKind::FeFet2Nand;
    nor.wordBits = nand.wordBits = 8;
    nor.rows = nand.rows = 64;
    const auto mNor = evaluateArray(tech, nor);
    const auto mNand = evaluateArray(tech, nand);
    EXPECT_TRUE(mNand.functional);
    EXPECT_LT(mNand.perSearch.total(), mNor.perSearch.total() / 2.0);
}
