// Tests for the observability substrate: metric semantics, scoped timers,
// JSONL trace round-trips (write -> parse -> assert nesting), and the
// guarantee that a disabled registry allocates nothing on the hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>

#include "obs/obs.hpp"
#include "obs/trace_reader.hpp"

using namespace fetcam;

// --- allocation counting for the zero-allocation guard -----------------------
//
// Global operator new/delete overrides count every heap allocation in the
// test binary. Only the delta across a measured region matters.

namespace {
std::atomic<long long> gAllocs{0};
}  // namespace

void* operator new(std::size_t size) {
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

TEST(Metrics, CounterSemantics) {
    auto& c = obs::counter("test.counter");
    c.reset();
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    EXPECT_EQ(c.name(), "test.counter");
    // Same name -> same instrument.
    EXPECT_EQ(&obs::counter("test.counter"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeSemantics) {
    auto& g = obs::gauge("test.gauge");
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBuckets) {
    auto& h = obs::histogram("test.hist", {1.0, 10.0, 100.0});
    h.reset();
    for (const double v : {0.5, 0.9, 5.0, 50.0, 500.0, 5000.0}) h.observe(v);
    const auto counts = h.counts();
    ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2);       // <= 1
    EXPECT_EQ(counts[1], 1);       // <= 10
    EXPECT_EQ(counts[2], 1);       // <= 100
    EXPECT_EQ(counts[3], 2);       // overflow
    EXPECT_EQ(h.count(), 6);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 5000.0);
    EXPECT_NEAR(h.sum(), 5556.4, 1e-9);
    EXPECT_NEAR(h.mean(), 5556.4 / 6.0, 1e-9);
}

TEST(Metrics, ExponentialBounds) {
    const auto b = obs::Histogram::exponentialBounds(1e-6, 1e-3, 1);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_NEAR(b[0], 1e-6, 1e-12);
    EXPECT_NEAR(b[3], 1e-3, 1e-9);
    EXPECT_TRUE(obs::Histogram::exponentialBounds(-1.0, 1.0, 1).empty());
}

TEST(Metrics, ScopedTimerAccumulates) {
    auto& h = obs::histogram("test.timer.hist", {1.0});
    h.reset();
    double accum = 0.0;
    {
        obs::ScopedTimer timer(h, accum);
        // Burn a little time so elapsed is strictly positive.
        volatile double x = 0.0;
        for (int i = 0; i < 1000; ++i) x += static_cast<double>(i);
        EXPECT_GE(timer.elapsed(), 0.0);
    }
    EXPECT_EQ(h.count(), 1);
    EXPECT_GT(accum, 0.0);
    EXPECT_DOUBLE_EQ(h.sum(), accum);
}

TEST(Metrics, RegistrySnapshots) {
    obs::counter("test.snapshot.counter");
    obs::gauge("test.snapshot.gauge");
    obs::histogram("test.snapshot.hist");
    bool foundCounter = false;
    for (const auto* c : obs::Registry::global().counters())
        foundCounter |= c->name() == "test.snapshot.counter";
    EXPECT_TRUE(foundCounter);
    EXPECT_FALSE(obs::Registry::global().gauges().empty());
    EXPECT_FALSE(obs::Registry::global().histograms().empty());
}

TEST(Obs, EnabledFlagToggles) {
    EXPECT_FALSE(obs::enabled());  // default off
    obs::setEnabled(true);
    EXPECT_TRUE(obs::enabled());
    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
}

TEST(Trace, JsonlRoundTripWithNesting) {
    const std::string path = ::testing::TempDir() + "obs_roundtrip.jsonl";
    auto& sink = obs::TraceSink::global();
    ASSERT_TRUE(sink.open(path));
    obs::setEnabled(true);
    {
        obs::SpanGuard outer("outer", {{"runs", 1}});
        {
            obs::SpanGuard inner("inner", {{"label", "a b\"c"}});
            sink.event("tick", {{"value", 2.5}, {"ok", true}});
        }
    }
    obs::setEnabled(false);
    sink.close();

    const auto records = obs::readTraceFile(path);
    ASSERT_EQ(records.size(), 3u);

    // Spans close child-first, so file order is: event, inner, outer.
    const auto& event = records[0];
    const auto& inner = records[1];
    const auto& outer = records[2];
    EXPECT_TRUE(event.isEvent());
    EXPECT_EQ(event.name, "tick");
    EXPECT_EQ(event.depth, 2);  // inside two open spans
    EXPECT_DOUBLE_EQ(event.num.at("value"), 2.5);
    EXPECT_DOUBLE_EQ(event.num.at("ok"), 1.0);

    EXPECT_TRUE(inner.isSpan());
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(inner.str.at("label"), "a b\"c");  // escaping survived

    EXPECT_TRUE(outer.isSpan());
    EXPECT_EQ(outer.depth, 0);
    EXPECT_DOUBLE_EQ(outer.num.at("runs"), 1.0);

    // Nesting: the inner span's interval sits inside the outer's.
    EXPECT_GE(inner.ts, outer.ts);
    EXPECT_LE(inner.end(), outer.end() + 1e-9);
    // The event fires while both spans are open.
    EXPECT_GE(event.ts, inner.ts);
    EXPECT_LE(event.ts, inner.end() + 1e-9);

    // Self-time attribution: outer's self excludes inner's duration.
    const auto stats = obs::spanStats(records);
    ASSERT_EQ(stats.size(), 2u);
    double outerSelf = 0.0, innerTotal = 0.0, outerTotal = 0.0;
    for (const auto& s : stats) {
        if (s.name == "outer") {
            outerSelf = s.self;
            outerTotal = s.total;
        }
        if (s.name == "inner") innerTotal = s.total;
    }
    EXPECT_NEAR(outerSelf, outerTotal - innerTotal, 1e-12);
}

TEST(Trace, ParserRejectsMalformedLines) {
    EXPECT_FALSE(obs::parseTraceLine("").has_value());
    EXPECT_FALSE(obs::parseTraceLine("   ").has_value());
    EXPECT_THROW(obs::parseTraceLine("{\"unterminated"), std::runtime_error);
    EXPECT_THROW(obs::parseTraceLine("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(obs::parseTraceLine("{\"a\":1} junk"), std::runtime_error);
    const auto rec = obs::parseTraceLine("{}");
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->type.empty());
}

TEST(Trace, InactiveSinkDropsRecords) {
    auto& sink = obs::TraceSink::global();
    ASSERT_FALSE(sink.active());
    sink.event("ignored", {{"x", 1}});  // must be a silent no-op
    obs::SpanGuard span("ignored.span");
    EXPECT_DOUBLE_EQ(sink.now(), 0.0);
}

TEST(Obs, DisabledHotPathMakesZeroAllocations) {
    obs::setEnabled(false);
    ASSERT_FALSE(obs::TraceSink::global().active());

    // Register outside the measured region (registration may allocate).
    auto& c = obs::counter("test.zeroalloc.counter");
    auto& g = obs::gauge("test.zeroalloc.gauge");
    auto& h = obs::histogram("test.zeroalloc.hist", {1e-3, 1.0});
    double accum = 0.0;

    const long long before = gAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        if (obs::enabled()) {  // the instrumentation-site idiom: all off
            c.add();
            g.set(static_cast<double>(i));
        }
        h.observe(1e-4);  // metrics mutation itself is allocation-free too
        c.add();
        obs::ScopedTimer timer(h, accum);
        obs::TraceSink::global().event("noop", {{"i", i}});
        obs::SpanGuard span("noop.span", {{"i", i}});
        // Repeated registry lookup of an existing name (heterogeneous find).
        obs::counter("test.zeroalloc.counter");
    }
    const long long after = gAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0);
}

}  // namespace

TEST(Metrics, QuantileEstimatesFromBuckets) {
    fetcam::obs::Histogram hist("quantile.test", {1.0, 2.0, 4.0, 8.0});
    EXPECT_TRUE(std::isnan(fetcam::obs::quantile(hist, 0.5)));

    for (int i = 0; i < 100; ++i) hist.observe(1.5);  // all in bucket (1, 2]
    const double p50 = fetcam::obs::quantile(hist, 0.5);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 2.0);
    // Clamped to observed extremes, so the estimate never exceeds reality.
    EXPECT_GE(fetcam::obs::quantile(hist, 0.001), hist.min());
    EXPECT_LE(fetcam::obs::quantile(hist, 0.999), hist.max());

    hist.reset();
    hist.observe(0.5);
    hist.observe(3.0);
    hist.observe(6.0);
    hist.observe(100.0);  // overflow bucket
    EXPECT_LE(fetcam::obs::quantile(hist, 0.25), fetcam::obs::quantile(hist, 0.9));
    EXPECT_LE(fetcam::obs::quantile(hist, 0.999), 100.0);
    EXPECT_GE(fetcam::obs::quantile(hist, 0.01), 0.5);
}
