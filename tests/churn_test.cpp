// Mutation-under-load contract tests: the RCU-snapshot table, first-free-row
// insert order, write-cost accounting, the churn workload's differential
// bit-identity against a naive oracle, and warm restart of a mutated table
// through the entry delta log.
//
// The thread tests are written to be meaningful under TSan (the CI
// thread-sanitize job runs this binary): concurrent searchers race a mutator
// and every observed result must have been valid at some point in the
// mutation order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include "apps/churn.hpp"
#include "numeric/stats.hpp"
#include "serve/match_backend.hpp"
#include "serve/query_engine.hpp"
#include "tcam/write.hpp"
#include "tcam/write_schedule.hpp"

using namespace fetcam;

namespace {

serve::EngineOptions churnOptions(int wordBits, int shardRows, std::int64_t capacity,
                                  serve::MatchBackendKind backend) {
    serve::EngineOptions o;
    o.shard.cell = tcam::CellKind::FeFet2;
    o.shard.sense = array::SenseScheme::LowSwing;
    o.shard.wordBits = wordBits;
    o.shard.rows = shardRows;
    o.capacity = capacity;
    o.backend = backend;
    return o;
}

tcam::TernaryWord definiteWord(std::uint64_t bits, int width) {
    tcam::TernaryWord w(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
        w[static_cast<std::size_t>(i)] =
            (bits >> (i % 64)) & 1 ? tcam::Trit::One : tcam::Trit::Zero;
    return w;
}

/// The stop-the-world oracle: a plain vector of optional words, searched by
/// linear scan-from-0. Everything the engine does must be bit-identical to
/// this.
struct NaiveTable {
    std::vector<std::optional<tcam::TernaryWord>> rows;

    explicit NaiveTable(std::int64_t capacity)
        : rows(static_cast<std::size_t>(capacity)) {}

    std::int64_t insert(const tcam::TernaryWord& word) {
        for (std::size_t r = 0; r < rows.size(); ++r)
            if (!rows[r]) {
                rows[r] = word;
                return static_cast<std::int64_t>(r);
            }
        return -1;
    }

    std::int64_t findFirst(const tcam::TernaryWord& key) const {
        for (std::size_t r = 0; r < rows.size(); ++r)
            if (rows[r] && rows[r]->matchesUnchecked(key))
                return static_cast<std::int64_t>(r);
        return -1;
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Satellite: first-free-row hint must not change insert row assignment.
// ---------------------------------------------------------------------------

TEST(ChurnEngine, InsertRowOrderMatchesNaiveScanFromZero) {
    auto engine = serve::QueryEngine(
        churnOptions(8, 4, 24, serve::MatchBackendKind::BitPlane));
    NaiveTable naive(24);
    numeric::Rng rng(7);

    // A mixed insert/erase sequence: the hint path (scan from freeHint_) must
    // assign exactly the rows a scan-from-0 would, including re-filling holes
    // opened by erases.
    for (int step = 0; step < 200; ++step) {
        if (rng.bernoulli(0.4) && engine.occupancy() > 0) {
            const auto row =
                static_cast<std::int64_t>(rng.uniformInt(0, 23));
            engine.erase(row);
            naive.rows[static_cast<std::size_t>(row)].reset();
        } else if (engine.occupancy() < 24) {
            const auto word = definiteWord(rng.nextU64(), 8);
            const std::int64_t got = engine.insert(word);
            const std::int64_t want = naive.insert(word);
            ASSERT_EQ(got, want) << "insert diverged from scan-from-0 at step " << step;
        }
    }
    for (std::int64_t r = 0; r < 24; ++r) {
        const auto entry = engine.entryAt(r);
        const auto& expect = naive.rows[static_cast<std::size_t>(r)];
        ASSERT_EQ(entry.has_value(), expect.has_value());
        if (entry) EXPECT_TRUE(*entry == *expect);
    }
}

TEST(ChurnEngine, InsertThrowsWhenFullAndEraseReopensTheRow) {
    auto engine =
        serve::QueryEngine(churnOptions(8, 4, 4, serve::MatchBackendKind::BitPlane));
    for (int i = 0; i < 4; ++i)
        engine.insert(definiteWord(static_cast<std::uint64_t>(i), 8));
    EXPECT_THROW(engine.insert(definiteWord(99, 8)), std::length_error);
    engine.erase(1);
    EXPECT_EQ(engine.insert(definiteWord(99, 8)), 1);
}

// ---------------------------------------------------------------------------
// Satellite: entryAt returns a value snapshot, not a dangling reference.
// ---------------------------------------------------------------------------

TEST(ChurnEngine, EntryAtIsASnapshotSurvivingMutation) {
    auto engine =
        serve::QueryEngine(churnOptions(8, 4, 8, serve::MatchBackendKind::BitPlane));
    const auto word = definiteWord(0xA5, 8);
    engine.insertAt(3, word);

    const auto entry = engine.entryAt(3);
    ASSERT_TRUE(entry.has_value());
    // Mutating (and thereby retiring the snapshot the value was copied from)
    // must not affect the returned copy.
    engine.erase(3);
    engine.insertAt(3, definiteWord(0x3C, 8));
    ASSERT_TRUE(entry.has_value());
    EXPECT_TRUE(*entry == word);
    EXPECT_FALSE(*engine.entryAt(3) == word);
}

// ---------------------------------------------------------------------------
// Tentpole: write-cost accounting from tcam::planWordWrite.
// ---------------------------------------------------------------------------

TEST(ChurnEngine, MutationsAreChargedThePlannedWordWriteCost) {
    auto options = churnOptions(8, 4, 12, serve::MatchBackendKind::BitPlane);
    serve::QueryEngine engine(options);

    engine.insert(definiteWord(1, 8));
    engine.insert(definiteWord(2, 8));
    engine.insertAt(5, definiteWord(3, 8));
    engine.insertAt(5, definiteWord(4, 8));  // overwrite: a full reprogram
    engine.erase(5);
    engine.erase(5);  // already empty: free no-op, not charged

    const auto stats = engine.stats();
    EXPECT_EQ(stats.inserts, 4);
    EXPECT_EQ(stats.erases, 1);

    const auto cost = engine.writeCost();
    EXPECT_GT(cost.energy, 0.0);
    EXPECT_GT(cost.latency, 0.0);
    EXPECT_GT(cost.pulsePhases, 0);
    EXPECT_DOUBLE_EQ(stats.writeEnergy, 5 * cost.energy);
    EXPECT_DOUBLE_EQ(stats.writeLatency, 5 * cost.latency);
    EXPECT_EQ(stats.writePulsePhases, 5 * cost.pulsePhases);

    // The engine's cached price must be exactly the planner's: per-bit pulse
    // characterization through tcam::measureWriteEnergy, scheduled over the
    // word by tcam::planWordWrite.
    const auto direct = tcam::planWordWrite(
        options.shard.cell, tcam::measureWriteEnergy(options.shard.cell, options.tech),
        options.shard.wordBits);
    EXPECT_EQ(cost.energy, direct.energy);
    EXPECT_EQ(cost.latency, direct.latency);
    EXPECT_EQ(cost.pulsePhases, direct.pulsePhases);
}

// ---------------------------------------------------------------------------
// Tentpole: differential churn fuzz — every backend, widths straddling the
// 64-bit plane boundary, all-X rows — against the naive oracle.
// ---------------------------------------------------------------------------

TEST(ChurnFuzz, AllBackendsAndWidthsStayBitIdenticalToOracle) {
    const serve::MatchBackendKind backends[] = {serve::MatchBackendKind::Scalar,
                                                serve::MatchBackendKind::BitPlane,
                                                serve::MatchBackendKind::Checked};
    const int widths[] = {1, 63, 64, 65, 130};

    for (const auto backend : backends) {
        for (const int width : widths) {
            apps::ChurnSpec spec;
            spec.rows = 24;
            spec.wordBits = width;
            spec.wildcardFraction = 0.3;
            spec.allWildcardFraction = 0.1;  // force match-everything rows in
            spec.seed = 11 + static_cast<std::uint64_t>(width);
            apps::ChurnWorkload workload(spec);

            auto engine = serve::QueryEngine(
                churnOptions(width, 4, spec.rows, backend));
            NaiveTable naive(spec.rows);
            for (std::int64_t r = 0; r < spec.rows; ++r) {
                engine.insertAt(r, workload.words()[static_cast<std::size_t>(r)]);
                naive.rows[static_cast<std::size_t>(r)] =
                    workload.words()[static_cast<std::size_t>(r)];
            }

            for (int round = 0; round < 6; ++round) {
                for (int i = 0; i < 10; ++i) {
                    const auto op = workload.next();
                    if (op.insert) {
                        engine.insertAt(op.row, op.word);
                        naive.rows[static_cast<std::size_t>(op.row)] = op.word;
                    } else {
                        engine.erase(op.row);
                        naive.rows[static_cast<std::size_t>(op.row)].reset();
                    }
                }
                const auto keys = workload.queryStream(
                    32, 0.6, spec.seed + 1000 + static_cast<std::uint64_t>(round));
                const auto result = engine.searchBatch(keys);
                for (std::size_t q = 0; q < keys.size(); ++q)
                    ASSERT_EQ(result.rows[q], naive.findFirst(keys[q]))
                        << serve::backendName(backend) << " width " << width
                        << " round " << round << " query " << q;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tentpole: searches racing a mutator never block, never see a torn row —
// every observed result was valid at some point in the mutation order.
// (The CI thread-sanitize job runs this under TSan.)
// ---------------------------------------------------------------------------

TEST(ChurnConcurrency, ConcurrentSearchResultsAreValidAtSomeMutationPoint) {
    // Row layout: row kFlap flaps between its word and empty; row kFallback
    // is always present and matches the same probe key. A search taken at any
    // snapshot must therefore return kFlap (flap present) or kFallback (flap
    // absent) — anything else (a torn row, a mixed shard view, -1) is a bug.
    constexpr std::int64_t kFlap = 2;
    constexpr std::int64_t kFallback = 13;  // second shard: crosses a shard swap
    auto engine =
        serve::QueryEngine(churnOptions(16, 8, 16, serve::MatchBackendKind::BitPlane));

    tcam::TernaryWord flapWord(16, tcam::Trit::X);
    flapWord[0] = tcam::Trit::One;
    tcam::TernaryWord fallbackWord(16, tcam::Trit::X);  // matches everything
    engine.insertAt(kFlap, flapWord);
    engine.insertAt(kFallback, fallbackWord);

    tcam::TernaryWord probe = definiteWord(0xFFFF, 16);  // bit0 = 1: hits both

    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> failures{0};
    std::vector<std::thread> searchers;
    for (int s = 0; s < 3; ++s)
        searchers.emplace_back([&] {
            const std::vector<tcam::TernaryWord> keys(8, probe);
            while (!stop.load(std::memory_order_relaxed)) {
                const auto result = engine.searchBatch(keys);
                for (const auto row : result.rows)
                    if (row != kFlap && row != kFallback)
                        failures.fetch_add(1, std::memory_order_relaxed);
                // Exercise the concurrently-written accounting under TSan too.
                (void)engine.stats();
                (void)engine.occupancy();
                (void)engine.entryAt(kFlap);
            }
        });

    std::thread mutator([&] {
        for (int i = 0; i < 400; ++i) {
            if (i % 2 == 0)
                engine.erase(kFlap);
            else
                engine.insertAt(kFlap, flapWord);
        }
        stop.store(true, std::memory_order_relaxed);
    });
    mutator.join();
    for (auto& th : searchers) th.join();

    EXPECT_EQ(failures.load(), 0)
        << "a search observed a row set that existed at no point in the "
           "mutation order";
    // 400 flaps: 200 erases of a present row + 200 re-inserts, plus 2 seeds.
    const auto stats = engine.stats();
    EXPECT_EQ(stats.inserts, 202);
    EXPECT_EQ(stats.erases, 200);
    EXPECT_EQ(engine.occupancy(), 2);
}

// ---------------------------------------------------------------------------
// Tentpole: warm restart after churn replays the *mutated* table
// bit-identically, with zero solver calls.
// ---------------------------------------------------------------------------

TEST(ChurnPersistence, WarmRestartReplaysMutatedTableBitIdentically) {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "fetcam_churn_test_store").string();
    fs::remove_all(dir);

    auto options = churnOptions(16, 4, 16, serve::MatchBackendKind::BitPlane);
    options.store.dir = dir;
    options.persistEntries = true;

    apps::ChurnSpec spec;
    spec.rows = 16;
    spec.wordBits = 16;
    spec.seed = 3;
    apps::ChurnWorkload workload(spec);
    const auto keys = workload.queryStream(40, 0.6, 77);

    serve::BatchResult before;
    std::int64_t mutations = 0;
    std::int64_t occupancy = 0;
    {
        serve::QueryEngine engine(options);
        ASSERT_TRUE(engine.tableLogStatus().attached);
        ASSERT_FALSE(engine.tableLogStatus().degraded);
        EXPECT_EQ(engine.restoredMutations(), 0);
        for (std::int64_t r = 0; r < spec.rows; ++r)
            engine.insertAt(r, workload.words()[static_cast<std::size_t>(r)]);
        for (int i = 0; i < 37; ++i) {
            const auto op = workload.next();
            if (op.insert)
                engine.insertAt(op.row, op.word);
            else
                engine.erase(op.row);
        }
        const auto stats = engine.stats();
        mutations = stats.inserts + stats.erases;
        occupancy = engine.occupancy();
        before = engine.searchBatch(keys);
    }  // teardown flushes the delta log

    serve::QueryEngine warm(options);
    ASSERT_FALSE(warm.tableLogStatus().degraded);
    EXPECT_EQ(warm.restoredMutations(), mutations);
    EXPECT_EQ(warm.occupancy(), occupancy);
    // Zero solver calls: the characterization store replays every search and
    // write characterization.
    EXPECT_EQ(warm.cache()->stats().misses, 0);
    for (std::int64_t r = 0; r < spec.rows; ++r) {
        const auto entry = warm.entryAt(r);
        const bool expect = workload.present()[static_cast<std::size_t>(r)] != 0;
        ASSERT_EQ(entry.has_value(), expect) << "row " << r;
        if (entry)
            EXPECT_TRUE(*entry == workload.words()[static_cast<std::size_t>(r)]);
    }
    const auto after = warm.searchBatch(keys);
    EXPECT_EQ(after.rows, before.rows);
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.energy, before.energy);
    EXPECT_EQ(after.latency, before.latency);

    // Replayed mutations are not re-charged: they were paid when first
    // applied, and a restart must not double-bill the table.
    EXPECT_EQ(warm.stats().inserts, 0);
    EXPECT_EQ(warm.stats().erases, 0);

    fs::remove_all(dir);
}

TEST(ChurnPersistence, CompactTableSnapshotsOccupiedRowsOnly) {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "fetcam_churn_test_compact").string();
    fs::remove_all(dir);

    auto options = churnOptions(8, 4, 8, serve::MatchBackendKind::BitPlane);
    options.store.dir = dir;
    options.persistEntries = true;

    std::int64_t occupancy = 0;
    {
        serve::QueryEngine engine(options);
        for (int i = 0; i < 6; ++i)
            engine.insert(definiteWord(static_cast<std::uint64_t>(i), 8));
        engine.erase(1);
        engine.erase(4);
        // 8 delta records so far; the compacted log holds one per occupied row.
        ASSERT_TRUE(engine.compactTable());
        occupancy = engine.occupancy();
    }

    serve::QueryEngine warm(options);
    ASSERT_FALSE(warm.tableLogStatus().degraded);
    EXPECT_EQ(warm.restoredMutations(), occupancy);  // deduplicated
    EXPECT_EQ(warm.occupancy(), occupancy);
    EXPECT_FALSE(warm.entryAt(1).has_value());
    EXPECT_FALSE(warm.entryAt(4).has_value());
    ASSERT_TRUE(warm.entryAt(0).has_value());
    EXPECT_TRUE(*warm.entryAt(0) == definiteWord(0, 8));

    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Workload determinism: same spec, same universe / flaps / queries.
// ---------------------------------------------------------------------------

TEST(ChurnWorkload, IsSeedDeterministic) {
    apps::ChurnSpec spec;
    spec.rows = 32;
    spec.wordBits = 24;
    spec.seed = 9;
    apps::ChurnWorkload a(spec);
    apps::ChurnWorkload b(spec);

    for (std::size_t r = 0; r < a.words().size(); ++r)
        ASSERT_TRUE(a.words()[r] == b.words()[r]);
    for (int i = 0; i < 100; ++i) {
        const auto oa = a.next();
        const auto ob = b.next();
        ASSERT_EQ(oa.row, ob.row);
        ASSERT_EQ(oa.insert, ob.insert);
    }
    EXPECT_EQ(a.installed(), b.installed());
    const auto qa = a.queryStream(16, 0.5, 123);
    const auto qb = b.queryStream(16, 0.5, 123);
    for (std::size_t q = 0; q < qa.size(); ++q) ASSERT_TRUE(qa[q] == qb[q]);
}
