// fetcam::sim contract tests — the similarity-search subsystem end to end.
//
// Four layers:
//   1. Device/encoding — the MLC ladder (device::mlcLevels) and word
//      packing (tcam::mlcEncode) invariants.
//   2. Characterization — sim::characterizeMlc scaling relations (margin
//      divides by N-1, delays multiply by N-1), the distance-tolerant
//      strobe equivalence t_row > strobe  <=>  d <= maxDistance, and
//      run-to-run determinism.
//   3. Engine — nearestK / thresholdMatch / similarityBatch bit-identical
//      to sim::naiveSimilarity across backends, jobs, cold/warm cache,
//      pricing knobs, and a warm restart from the on-disk store.
//   4. Net — Similarity codec round-trip + malformed rejection, end-to-end
//      client/server with the accounting invariant, overload shedding,
//      and protocol version negotiation (client- and server-side gates).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "device/mlc.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "numeric/stats.hpp"
#include "recover/sim_error.hpp"
#include "serve/query_engine.hpp"
#include "sim/mlc_model.hpp"
#include "sim/similarity.hpp"
#include "tcam/mlc_encode.hpp"
#include "tcam/ternary.hpp"

using namespace fetcam;

namespace {

serve::EngineOptions simOptions() {
    serve::EngineOptions o;
    o.shard.cell = tcam::CellKind::FeFet2;
    o.shard.sense = array::SenseScheme::LowSwing;
    o.shard.wordBits = 8;
    o.shard.rows = 4;
    o.capacity = 48;
    return o;
}

tcam::TernaryWord randomWord(numeric::Rng& rng, int bits, double xDensity) {
    tcam::TernaryWord w(static_cast<std::size_t>(bits));
    for (int b = 0; b < bits; ++b)
        w[static_cast<std::size_t>(b)] =
            rng.uniform() < xDensity
                ? tcam::Trit::X
                : (rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero);
    return w;
}

/// A deterministic table with wildcard rows and empty slots, plus the keys
/// (one of them wildcarded) the engine tests all share.
struct Fixture {
    std::vector<std::optional<tcam::TernaryWord>> rows;
    std::vector<tcam::TernaryWord> keys;
};

Fixture makeFixture(int bits, std::size_t capacity) {
    Fixture f;
    auto rng = numeric::Rng::forStream(77, 0);
    f.rows.resize(capacity);
    for (std::size_t r = 0; r + 8 < capacity; ++r) {
        if (r % 7 == 3) continue;  // empty slot
        f.rows[r] = randomWord(rng, bits, r % 3 == 0 ? 0.25 : 0.0);
    }
    for (int q = 0; q < 24; ++q)
        f.keys.push_back(randomWord(rng, bits, q == 5 ? 0.3 : 0.0));
    return f;
}

void loadFixture(serve::QueryEngine& engine, const Fixture& f) {
    for (std::size_t r = 0; r < f.rows.size(); ++r)
        if (f.rows[r]) engine.insertAt(static_cast<std::int64_t>(r), *f.rows[r]);
}

std::vector<sim::SimilarityHits> naiveAll(const Fixture& f,
                                          const sim::SimilarityOptions& options) {
    std::vector<sim::SimilarityHits> out;
    for (const auto& k : f.keys) out.push_back(sim::naiveSimilarity(f.rows, k, options));
    return out;
}

/// Engine + Server on a background thread (the net_test idiom), entries
/// 0..entries-1 stored as exact 8-bit words.
class SimServerHarness {
public:
    explicit SimServerHarness(net::ServerOptions options = {}, int entries = 4)
        : engine_(simOptions()) {
        for (int i = 0; i < entries; ++i)
            engine_.insert(tcam::TernaryWord::fromBits(static_cast<std::uint64_t>(i), 8));
        options.port = 0;
        server_ = std::make_unique<net::Server>(engine_, options);
        server_->start();
        thread_ = std::thread([this] {
            try {
                server_->run();
            } catch (const recover::SimError& e) {
                runError_ = e.what();
            }
        });
    }

    ~SimServerHarness() { stop(); }

    void stop() {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
        EXPECT_EQ(runError_, "");
    }

    int port() const { return server_->port(); }
    const net::ServerStats& stats() const { return server_->stats(); }
    serve::QueryEngine& engine() { return engine_; }

private:
    serve::QueryEngine engine_;
    std::unique_ptr<net::Server> server_;
    std::thread thread_;
    std::string runError_;
};

net::SimilarityBody makeSimRequest(std::uint64_t id, sim::SimilarityKind kind,
                                   std::uint32_t param,
                                   std::initializer_list<int> values) {
    net::SimilarityBody s;
    s.requestId = id;
    s.kind = kind;
    s.param = param;
    s.maxResults = 8;
    for (const int v : values)
        s.keys.push_back(tcam::TernaryWord::fromBits(static_cast<std::uint64_t>(v), 8));
    return s;
}

}  // namespace

// --- device ladder + word encoding ----------------------------------------

TEST(MlcDevice, LadderEvenlySpacedAndValidated) {
    device::FeFetParams p;
    const auto lv = device::mlcLevels(p, 4);
    EXPECT_EQ(lv.statesPerCell, 4);
    ASSERT_EQ(lv.pnorm.size(), 4u);
    ASSERT_EQ(lv.vt.size(), 4u);
    EXPECT_DOUBLE_EQ(lv.pnorm.front(), -1.0);
    EXPECT_DOUBLE_EQ(lv.pnorm.back(), 1.0);
    EXPECT_DOUBLE_EQ(lv.windowV, 2.0 * p.deltaVt);
    EXPECT_DOUBLE_EQ(lv.vtStepV, lv.windowV / 3.0);
    for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_NEAR(lv.pnorm[i] - lv.pnorm[i - 1], 2.0 / 3.0, 1e-12);
        // Level index up = pnorm up = VT down, each step exactly vtStepV.
        EXPECT_NEAR(lv.vt[i - 1] - lv.vt[i], lv.vtStepV, 1e-12);
    }
    EXPECT_DOUBLE_EQ(lv.vt.front(), p.vtHigh());
    EXPECT_DOUBLE_EQ(lv.vt.back(), p.vtLow());

    EXPECT_THROW(device::mlcLevels(p, 1), recover::SimError);
    EXPECT_THROW(device::mlcLevels(p, 17), recover::SimError);
    device::FeFetParams flat = p;
    flat.deltaVt = 0.0;  // no memory window, nothing to subdivide
    EXPECT_THROW(device::mlcLevels(flat, 2), recover::SimError);
}

TEST(MlcEncode, PackingDistanceAndWildcardRejection) {
    EXPECT_EQ(tcam::mlcCellsPerWord(8, 1), 8);
    EXPECT_EQ(tcam::mlcCellsPerWord(8, 2), 4);
    EXPECT_EQ(tcam::mlcCellsPerWord(7, 2), 4);  // last cell partially used
    EXPECT_EQ(tcam::mlcCellsPerWord(8, 3), 3);
    EXPECT_THROW(tcam::mlcCellsPerWord(0, 2), recover::SimError);
    EXPECT_THROW(tcam::mlcCellsPerWord(8, 0), recover::SimError);

    const auto w = tcam::TernaryWord::fromBits(0b10110100, 8);
    const auto levels = tcam::mlcEncode(w, 2);
    ASSERT_EQ(levels.size(), 4u);
    // Bit j of cell c is word[c*bitsPerCell + j], LSB-first within the cell.
    for (std::size_t c = 0; c < 4; ++c) {
        int expected = 0;
        for (int j = 0; j < 2; ++j)
            if (w[c * 2 + static_cast<std::size_t>(j)] == tcam::Trit::One)
                expected |= 1 << j;
        EXPECT_EQ(levels[c], expected) << "cell " << c;
    }

    tcam::TernaryWord masked(8, tcam::Trit::Zero);
    masked[3] = tcam::Trit::X;  // an X trit has no level
    EXPECT_THROW(tcam::mlcEncode(masked, 2), recover::SimError);

    EXPECT_EQ(tcam::mlcLevelDistance({0, 3, 1}, {3, 3, 2}), 4);
    EXPECT_EQ(tcam::mlcLevelDistance({}, {}), 0);
    EXPECT_THROW(tcam::mlcLevelDistance({0}, {0, 1}), recover::SimError);
}

// --- characterization ------------------------------------------------------

TEST(MlcModel, ScalingRelationsAndDeterminism) {
    const auto base = simOptions();
    sim::MlcOptions m1;
    m1.bitsPerCell = 1;
    m1.workload = base.workload;
    sim::MlcOptions m2 = m1;
    m2.bitsPerCell = 2;

    const auto c1 = sim::characterizeMlc(base.tech, base.shard, m1);
    const auto c2 = sim::characterizeMlc(base.tech, base.shard, m2);

    EXPECT_EQ(c1.statesPerCell, 2);
    EXPECT_EQ(c2.statesPerCell, 4);
    EXPECT_EQ(c1.cellsPerWord, 8);
    EXPECT_EQ(c2.cellsPerWord, 4);
    EXPECT_TRUE(c1.functional);
    EXPECT_TRUE(c2.functional);

    // Binary cells: the ladder is the binary pair, nothing changes.
    EXPECT_DOUBLE_EQ(c1.senseMarginV, c1.binarySenseMarginV);
    EXPECT_DOUBLE_EQ(c1.energyPerBitFj, c1.binaryEnergyPerBitFj);

    // Both characterizations start from the same deterministic binary
    // calibration, and the MLC ladder divides the margin by N-1 while
    // stretching the unit discharge and detect latency by N-1.
    EXPECT_DOUBLE_EQ(c2.binarySenseMarginV, c1.binarySenseMarginV);
    EXPECT_DOUBLE_EQ(c2.senseMarginV, c2.binarySenseMarginV / 3.0);
    EXPECT_DOUBLE_EQ(c2.tauUnitSeconds, 3.0 * c1.tauUnitSeconds);
    EXPECT_DOUBLE_EQ(c2.searchDelay, 3.0 * c1.searchDelay);
    EXPECT_DOUBLE_EQ(c2.vtStepV, c2.windowV / 3.0);

    // Fewer driven cells per word -> lower search energy, never free.
    EXPECT_LT(c2.energyPerSearchJ, c1.energyPerSearchJ);
    EXPECT_GT(c2.energyPerSearchJ, 0.0);

    // Same inputs, fresh solver: bit-identical characterization.
    const auto again = sim::characterizeMlc(base.tech, base.shard, m2);
    EXPECT_EQ(again.senseMarginV, c2.senseMarginV);
    EXPECT_EQ(again.tauUnitSeconds, c2.tauUnitSeconds);
    EXPECT_EQ(again.energyPerSearchJ, c2.energyPerSearchJ);
    EXPECT_EQ(again.functional, c2.functional);
}

TEST(MlcModel, RejectsNonFefetAndBadLadder) {
    const auto base = simOptions();
    sim::MlcOptions m;
    m.workload = base.workload;

    auto cmos = base.shard;
    cmos.cell = tcam::CellKind::Cmos16T;
    EXPECT_THROW(sim::characterizeMlc(base.tech, cmos, m), recover::SimError);

    sim::MlcOptions bad = m;
    bad.bitsPerCell = 0;
    EXPECT_THROW(sim::characterizeMlc(base.tech, base.shard, bad), recover::SimError);
    bad.bitsPerCell = device::kMaxMlcBitsPerCell + 1;
    EXPECT_THROW(sim::characterizeMlc(base.tech, base.shard, bad), recover::SimError);
}

TEST(MlcModel, StrobeSelectsExactlyTheToleratedDistances) {
    const double tau = 2e-9;
    const std::vector<std::size_t> d = {0, 1, 2, 3, 5, 9, sim::kEmptyRowDistance};
    const auto times = sim::dischargeTimes(d, tau);
    ASSERT_EQ(times.size(), d.size());
    EXPECT_TRUE(std::isinf(times[0]));     // exact match never discharges
    EXPECT_DOUBLE_EQ(times.back(), 0.0);   // empty row: held low
    EXPECT_DOUBLE_EQ(times[1], tau);
    EXPECT_DOUBLE_EQ(times[2], tau / 2.0);

    // Sampling the matchline at strobeFor(tau, D) accepts a row iff its
    // distance is within D — the analog threshold-match primitive.
    for (std::size_t maxDistance = 0; maxDistance <= 10; ++maxDistance) {
        const double strobe = sim::strobeFor(tau, maxDistance);
        EXPECT_GT(strobe, 0.0);
        for (std::size_t i = 0; i < d.size(); ++i) {
            const bool accepted = times[i] > strobe;
            const bool wanted = d[i] != sim::kEmptyRowDistance && d[i] <= maxDistance;
            EXPECT_EQ(accepted, wanted)
                << "distance " << d[i] << " at maxDistance " << maxDistance;
        }
    }
    EXPECT_THROW(sim::strobeFor(0.0, 1), recover::SimError);
    EXPECT_THROW(sim::strobeFor(-1e-9, 1), recover::SimError);
}

// --- selection primitives --------------------------------------------------

TEST(Similarity, OptionValidation) {
    sim::SimilarityOptions o;
    EXPECT_NO_THROW(sim::validateSimilarityOptions(o));
    o.kind = static_cast<sim::SimilarityKind>(0);
    EXPECT_THROW(sim::validateSimilarityOptions(o), recover::SimError);
    o = {};
    o.k = 0;
    EXPECT_THROW(sim::validateSimilarityOptions(o), recover::SimError);
    o = {};
    o.maxResults = 0;
    EXPECT_THROW(sim::validateSimilarityOptions(o), recover::SimError);
    o = {};
    o.k = 65;  // k beyond maxResults could never be answered fully
    EXPECT_THROW(sim::validateSimilarityOptions(o), recover::SimError);
}

TEST(Similarity, TopSelectorOrderIndependentAndBounded) {
    sim::SimilarityOptions o;
    o.kind = sim::SimilarityKind::NearestK;
    o.k = 3;
    o.maxResults = 3;

    const std::vector<std::pair<std::int64_t, std::size_t>> offers = {
        {9, 4}, {2, 1}, {7, 1}, {0, 6}, {5, 0}, {3, 1}, {8, 2}};
    sim::TopSelector forward(o), backward(o);
    for (const auto& [row, dist] : offers) forward.consider(row, dist);
    for (auto it = offers.rbegin(); it != offers.rend(); ++it)
        backward.consider(it->first, it->second);

    const auto a = forward.take();
    const auto b = backward.take();
    EXPECT_EQ(a, b);  // arrival order never shows in the answer
    ASSERT_EQ(a.size(), 3u);
    // Best-first by (distance, row): ties at distance 1 keep lowest rows.
    EXPECT_EQ(a[0], (sim::SimilarityHit{5, 0}));
    EXPECT_EQ(a[1], (sim::SimilarityHit{2, 1}));
    EXPECT_EQ(a[2], (sim::SimilarityHit{3, 1}));
}

TEST(Similarity, NaiveOracleSkipsEmptyAndAppliesThreshold) {
    std::vector<std::optional<tcam::TernaryWord>> rows(5);
    rows[0] = tcam::TernaryWord::fromBits(0b0000, 4);
    rows[2] = tcam::TernaryWord::fromBits(0b0011, 4);
    rows[4] = tcam::TernaryWord::fromBits(0b1111, 4);
    const auto key = tcam::TernaryWord::fromBits(0b0001, 4);

    sim::SimilarityOptions nearest;
    nearest.kind = sim::SimilarityKind::NearestK;
    nearest.k = 2;
    const auto nk = sim::naiveSimilarity(rows, key, nearest);
    ASSERT_EQ(nk.size(), 2u);
    EXPECT_EQ(nk[0], (sim::SimilarityHit{0, 1}));  // d=1, lowest row wins the tie
    EXPECT_EQ(nk[1], (sim::SimilarityHit{2, 1}));

    sim::SimilarityOptions within;
    within.kind = sim::SimilarityKind::Threshold;
    within.maxDistance = 1;
    const auto th = sim::naiveSimilarity(rows, key, within);
    ASSERT_EQ(th.size(), 2u);  // row 4 is at d=3, rows 1/3 are empty
    EXPECT_EQ(th[0].row, 0);
    EXPECT_EQ(th[1].row, 2);
}

// --- engine ----------------------------------------------------------------

TEST(SimEngine, BitIdenticalAcrossBackendsJobsAndWarmCache) {
    const auto base = simOptions();
    const auto f = makeFixture(static_cast<int>(base.shard.wordBits), base.capacity);

    sim::SimilarityOptions nearest;
    nearest.kind = sim::SimilarityKind::NearestK;
    nearest.k = 5;
    nearest.maxResults = 5;
    sim::SimilarityOptions within;
    within.kind = sim::SimilarityKind::Threshold;
    within.maxDistance = 2;

    const auto nearestOracle = naiveAll(f, nearest);
    const auto withinOracle = naiveAll(f, within);

    for (const auto backend : {serve::MatchBackendKind::Scalar,
                               serve::MatchBackendKind::BitPlane,
                               serve::MatchBackendKind::Checked}) {
        auto options = base;
        options.backend = backend;
        serve::QueryEngine engine(options);
        loadFixture(engine, f);
        for (const int jobs : {1, 5}) {
            const auto nk = engine.similarityBatch(f.keys, nearest, jobs);
            const auto th = engine.similarityBatch(f.keys, within, jobs);
            EXPECT_EQ(nk.hits, nearestOracle) << "backend " << static_cast<int>(backend)
                                              << " jobs " << jobs;
            EXPECT_EQ(th.hits, withinOracle) << "backend " << static_cast<int>(backend)
                                             << " jobs " << jobs;
        }
        // Warm cache (second pass reuses the characterized pricing) and the
        // single-key conveniences agree with the batched path.
        const auto again = engine.similarityBatch(f.keys, nearest, 1);
        EXPECT_EQ(again.hits, nearestOracle);
        EXPECT_EQ(engine.nearestK(f.keys[0], nearest.k), nearestOracle[0]);
        EXPECT_EQ(engine.thresholdMatch(f.keys[0], within.maxDistance), withinOracle[0]);
    }
}

TEST(SimEngine, PricingKnobNeverChangesAnswers) {
    const auto base = simOptions();
    const auto f = makeFixture(static_cast<int>(base.shard.wordBits), base.capacity);
    sim::SimilarityOptions nearest;
    nearest.kind = sim::SimilarityKind::NearestK;
    nearest.k = 3;

    auto dense = base;
    dense.simBitsPerCell = 4;
    serve::QueryEngine binaryPriced(base);   // simBitsPerCell = 2 default
    serve::QueryEngine densePriced(dense);
    loadFixture(binaryPriced, f);
    loadFixture(densePriced, f);

    const auto a = binaryPriced.similarityBatch(f.keys, nearest, 1);
    const auto b = densePriced.similarityBatch(f.keys, nearest, 1);
    EXPECT_EQ(a.hits, b.hits);  // functional answers are pricing-independent
    EXPECT_GT(a.energy, 0.0);
    EXPECT_GT(b.energy, 0.0);
    EXPECT_NE(a.energy, b.energy);  // ...but the MLC ladder changes the bill
    EXPECT_EQ(binaryPriced.simCost().bitsPerCell, 2);
    EXPECT_EQ(densePriced.simCost().bitsPerCell, 4);

    const auto stats = binaryPriced.stats();
    EXPECT_EQ(stats.simBatches, 1);
    EXPECT_EQ(stats.simQueries, static_cast<std::int64_t>(f.keys.size()));
    EXPECT_EQ(stats.simRows,
              [&] {
                  std::int64_t rows = 0;
                  for (const auto& h : a.hits) rows += static_cast<std::int64_t>(h.size());
                  return rows;
              }());
}

TEST(SimEngine, RejectsBadQueriesWithTypedErrors) {
    serve::QueryEngine engine(simOptions());
    engine.insert(tcam::TernaryWord::fromBits(1, 8));

    sim::SimilarityOptions bad;
    bad.k = 0;
    EXPECT_THROW(engine.similarityBatch({tcam::TernaryWord::fromBits(0, 8)}, bad, 1),
                 recover::SimError);
    // Width mismatch is a query error, not a crash.
    EXPECT_THROW(engine.nearestK(tcam::TernaryWord::fromBits(0, 4), 1), recover::SimError);

    // Non-FeFET geometry serves exact match fine but has no MLC similarity
    // story: construction succeeds, the first similarity query throws.
    auto cmos = simOptions();
    cmos.shard.cell = tcam::CellKind::Cmos16T;
    serve::QueryEngine cmosEngine(cmos);
    cmosEngine.insert(tcam::TernaryWord::fromBits(1, 8));
    EXPECT_THROW(cmosEngine.nearestK(tcam::TernaryWord::fromBits(0, 8), 1),
                 recover::SimError);
}

TEST(SimEngineStore, WarmRestartBitIdenticalSimilarity) {
    namespace fs = std::filesystem;
    const std::string dir = (fs::temp_directory_path() / "fetcam_sim_test_store").string();
    fs::remove_all(dir);

    auto options = simOptions();
    options.store.dir = dir;
    const auto f = makeFixture(static_cast<int>(options.shard.wordBits), options.capacity);

    sim::SimilarityOptions nearest;
    nearest.kind = sim::SimilarityKind::NearestK;
    nearest.k = 4;
    sim::SimilarityOptions within;
    within.kind = sim::SimilarityKind::Threshold;
    within.maxDistance = 3;

    serve::SimilarityBatchResult coldNearest, coldWithin;
    sim::MlcCharacterization coldCost;
    {
        serve::QueryEngine cold(options);
        ASSERT_FALSE(cold.storeStatus().degraded);
        loadFixture(cold, f);
        coldNearest = cold.similarityBatch(f.keys, nearest, 3);
        coldWithin = cold.similarityBatch(f.keys, within, 3);
        coldCost = cold.simCost();
        EXPECT_GT(cold.cache()->stats().misses, 0);
    }  // teardown flushes the store

    serve::QueryEngine warm(options);
    ASSERT_FALSE(warm.storeStatus().degraded);
    loadFixture(warm, f);
    const auto warmNearest = warm.similarityBatch(f.keys, nearest, 3);
    const auto warmWithin = warm.similarityBatch(f.keys, within, 3);
    // Replayed from disk: zero solver transients, answers and pricing
    // bit-identical to the cold run.
    EXPECT_EQ(warm.cache()->stats().misses, 0);
    EXPECT_GT(warm.cache()->stats().storeHits, 0);
    EXPECT_EQ(warmNearest.hits, coldNearest.hits);
    EXPECT_EQ(warmWithin.hits, coldWithin.hits);
    EXPECT_EQ(warmNearest.energy, coldNearest.energy);
    EXPECT_EQ(warmNearest.latency, coldNearest.latency);
    const auto warmCost = warm.simCost();
    EXPECT_EQ(warmCost.senseMarginV, coldCost.senseMarginV);
    EXPECT_EQ(warmCost.tauUnitSeconds, coldCost.tauUnitSeconds);
    EXPECT_EQ(warmCost.energyPerSearchJ, coldCost.energyPerSearchJ);

    fs::remove_all(dir);
}

// --- net: codec ------------------------------------------------------------

TEST(SimProtocol, SimilarityRoundTrip) {
    auto req = makeSimRequest(42, sim::SimilarityKind::Threshold, 3, {1, 2, 250});
    req.keys[1][2] = tcam::Trit::X;  // wildcard keys survive the wire
    const auto body = net::encodeSimilarity(req);
    std::string err;
    const auto back = net::decodeSimilarity(body, 8, 64, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->requestId, 42u);
    EXPECT_EQ(back->kind, sim::SimilarityKind::Threshold);
    EXPECT_EQ(back->param, 3u);
    EXPECT_EQ(back->maxResults, 8u);
    ASSERT_EQ(back->keys.size(), 3u);
    EXPECT_EQ(back->keys[1][2], tcam::Trit::X);
    EXPECT_EQ(back->keys, req.keys);

    net::SimilarityReplyBody reply;
    reply.requestId = 42;
    reply.admission = static_cast<std::uint8_t>(serve::BatchAdmission::Accepted);
    reply.hits.resize(3);
    reply.hits[0] = {{5, 0}, {1, 2}};
    // hits[1] stays empty — nothing within the threshold
    reply.hits[2] = {{7, 1}};
    const auto rbody = net::encodeSimilarityReply(reply);
    const auto rback = net::decodeSimilarityReply(rbody, &err);
    ASSERT_TRUE(rback.has_value()) << err;
    EXPECT_EQ(rback->requestId, 42u);
    EXPECT_EQ(rback->admission, reply.admission);
    EXPECT_EQ(rback->hits, reply.hits);
}

TEST(SimProtocol, MalformedSimilarityRejected) {
    const auto req = makeSimRequest(7, sim::SimilarityKind::NearestK, 2, {1, 2});
    const auto body = net::encodeSimilarity(req);
    std::string err;

    // Truncation anywhere must fail loudly, never half-parse.
    EXPECT_FALSE(net::decodeSimilarity(body.substr(0, body.size() - 1), 8, 64, &err));
    EXPECT_FALSE(net::decodeSimilarity("", 8, 64, &err));
    // Width policing happens at decode, against the server's word size.
    EXPECT_FALSE(net::decodeSimilarity(body, 16, 64, &err));
    // Batch bound: two keys against a 1-key ceiling.
    EXPECT_FALSE(net::decodeSimilarity(body, 8, 1, &err));
    // Trit bytes outside {0,1,2}.
    auto corrupt = body;
    corrupt[corrupt.size() - 1] = '\x7f';
    EXPECT_FALSE(net::decodeSimilarity(corrupt, 8, 64, &err));
    EXPECT_FALSE(err.empty());

    net::SimilarityReplyBody reply;
    reply.requestId = 7;
    reply.hits.resize(1);
    reply.hits[0] = {{3, 1}};
    const auto rbody = net::encodeSimilarityReply(reply);
    EXPECT_FALSE(net::decodeSimilarityReply(rbody.substr(0, rbody.size() - 2), &err));
}

// --- net: end to end -------------------------------------------------------

TEST(SimNet, EndToEndSimilarityMatchesOracle) {
    SimServerHarness h;
    net::Client client;
    client.connect("127.0.0.1", h.port());
    EXPECT_EQ(client.serverVersion(), net::kProtocolVersion);

    // The harness table as the oracle sees it: rows 0..3 hold words 0..3.
    std::vector<std::optional<tcam::TernaryWord>> rows(4);
    for (std::uint64_t i = 0; i < 4; ++i) rows[i] = tcam::TernaryWord::fromBits(i, 8);

    const auto nearest = makeSimRequest(1, sim::SimilarityKind::NearestK, 2, {0, 7});
    const auto nres = client.similarity(nearest);
    ASSERT_TRUE(nres.simReply.has_value()) << nres.message;
    EXPECT_EQ(nres.simReply->requestId, 1u);
    EXPECT_EQ(nres.simReply->admission,
              static_cast<std::uint8_t>(serve::BatchAdmission::Accepted));
    ASSERT_EQ(nres.simReply->hits.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        EXPECT_EQ(nres.simReply->hits[i],
                  sim::naiveSimilarity(rows, nearest.keys[i], nearest.toOptions()));

    const auto within = makeSimRequest(2, sim::SimilarityKind::Threshold, 1, {0});
    const auto tres = client.similarity(within);
    ASSERT_TRUE(tres.simReply.has_value()) << tres.message;
    ASSERT_EQ(tres.simReply->hits.size(), 1u);
    EXPECT_EQ(tres.simReply->hits[0],
              sim::naiveSimilarity(rows, within.keys[0], within.toOptions()));

    client.close();
    h.stop();

    // Accounting invariant: every similarity key is either served by the
    // engine or counted shed — nothing vanishes.
    const auto& s = h.stats();
    EXPECT_EQ(s.simRequests, 2);
    EXPECT_EQ(s.simQueries, 3);
    EXPECT_EQ(s.simShed, 0);
    EXPECT_EQ(s.simQueries - s.simShed, h.engine().stats().simQueries);
    std::int64_t rowsReturned = 0;
    for (const auto& hl : nres.simReply->hits)
        rowsReturned += static_cast<std::int64_t>(hl.size());
    for (const auto& hl : tres.simReply->hits)
        rowsReturned += static_cast<std::int64_t>(hl.size());
    EXPECT_EQ(s.simRows, rowsReturned);
}

TEST(SimNet, OverloadShedsSimilarityTyped) {
    net::ServerOptions opts;
    opts.maxPendingQueries = 1;
    opts.coalesceWindow = 0.3;  // hold the filler query pending long enough
    SimServerHarness h(opts);
    net::Client client;
    client.connect("127.0.0.1", h.port());

    // Fill the pending budget with an exact-match query, then hit the
    // similarity path while the server is saturated: the whole request is
    // shed with a typed reply and empty per-key hit lists.
    net::QueryBatchBody filler;
    filler.requestId = 8;
    filler.keys.push_back(tcam::TernaryWord::fromBits(1, 8));
    ASSERT_TRUE(client.sendRaw(
        net::encodeFrame(net::MsgType::QueryBatch, net::encodeQueryBatch(filler))));

    const auto res =
        client.similarity(makeSimRequest(9, sim::SimilarityKind::NearestK, 1, {0, 1}));
    ASSERT_TRUE(res.simReply.has_value()) << res.message;
    EXPECT_EQ(res.simReply->admission,
              static_cast<std::uint8_t>(serve::BatchAdmission::Shed));
    for (const auto& hl : res.simReply->hits) EXPECT_TRUE(hl.empty());

    // Drain the filler's (admitted) reply so the connection closes cleanly.
    const auto fillerReply = client.readFrame(5.0);
    EXPECT_TRUE(fillerReply.ok);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().simShed, 2);
    EXPECT_EQ(h.engine().stats().simQueries, 0);  // shed keys never reach the engine
}

TEST(SimNet, ClientGatesFeaturesOnOldServers) {
    net::ServerOptions opts;
    opts.advertiseVersion = 1;  // emulate a pre-mutation, pre-similarity server
    SimServerHarness h(opts);
    net::Client client;
    client.connect("127.0.0.1", h.port());
    EXPECT_EQ(client.serverVersion(), 1u);

    // Feature calls fail locally with a typed error; nothing goes on the wire.
    net::MutateBody mutate;
    mutate.requestId = 1;
    mutate.ops.push_back({net::MutateOp::Insert, 0, tcam::TernaryWord::fromBits(9, 8)});
    const auto mres = client.mutate(mutate);
    EXPECT_EQ(mres.error, net::ProtoError::UnsupportedVersion);

    const auto sres =
        client.similarity(makeSimRequest(2, sim::SimilarityKind::NearestK, 1, {0}));
    EXPECT_EQ(sres.error, net::ProtoError::UnsupportedVersion);

    // Plain queries still work against a v1 server.
    net::QueryBatchBody batch;
    batch.requestId = 3;
    batch.keys.push_back(tcam::TernaryWord::fromBits(2, 8));
    const auto qres = client.query(batch);
    ASSERT_TRUE(qres.ok);
    EXPECT_EQ(qres.reply.rows[0], 2);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().simRequests, 0);  // the gated calls never arrived
}

TEST(SimNet, ServerRefusesFeatureFramesBeyondAdvertisedVersion) {
    net::ServerOptions opts;
    opts.advertiseVersion = 2;  // mutation yes, similarity no
    SimServerHarness h(opts);
    net::Client client;
    client.connect("127.0.0.1", h.port());
    EXPECT_EQ(client.serverVersion(), 2u);

    // Bypass the client-side gate: push a raw v3 Similarity frame at a v2
    // server. The server answers a typed error and drops the connection.
    const auto req = makeSimRequest(4, sim::SimilarityKind::NearestK, 1, {0});
    ASSERT_TRUE(client.sendRaw(
        net::encodeFrame(net::MsgType::Similarity, net::encodeSimilarity(req))));
    const auto err = client.readFrame(5.0);
    EXPECT_EQ(err.error, net::ProtoError::UnsupportedVersion);
    const auto eof = client.readFrame(5.0);
    EXPECT_TRUE(eof.disconnected);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().simRequests, 0);
}
