// Array-layer tests: word-level search simulation across cell kinds and
// sensing schemes, the analytic array energy model, and Monte Carlo.
#include <gtest/gtest.h>

#include "array/energy_model.hpp"
#include "array/montecarlo.hpp"
#include "array/word_sim.hpp"
#include "recover/sim_error.hpp"

using namespace fetcam;
using array::ArrayConfig;
using array::SenseScheme;
using array::WordSimOptions;
using tcam::CellKind;
using tcam::TernaryWord;

namespace {

WordSimOptions makeOptions(CellKind cell, SenseScheme sense, int bits, int mismatches) {
    WordSimOptions o;
    o.config.cell = cell;
    o.config.sense = sense;
    o.config.wordBits = bits;
    o.stored = array::calibrationWord(bits);
    o.key = mismatches == 0 ? o.stored : array::keyWithMismatches(o.stored, mismatches);
    return o;
}

}  // namespace

// Decision correctness for every (cell, scheme) pair, match and mismatch.
struct SchemeCase {
    CellKind cell;
    SenseScheme sense;
};

class WordDecision : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(WordDecision, MatchAndMismatchResolvedCorrectly) {
    const auto [cell, sense] = GetParam();
    const auto match = simulateWordSearch(makeOptions(cell, sense, 8, 0));
    EXPECT_TRUE(match.expectedMatch);
    EXPECT_TRUE(match.matchDetected)
        << "false mismatch, mlAtSense=" << match.mlAtSense;
    EXPECT_FALSE(match.detectDelay.has_value());

    const auto mism = simulateWordSearch(makeOptions(cell, sense, 8, 1));
    EXPECT_FALSE(mism.expectedMatch);
    EXPECT_FALSE(mism.matchDetected)
        << "missed mismatch, mlAtSense=" << mism.mlAtSense;
    EXPECT_TRUE(mism.detectDelay.has_value());
    // The mismatching matchline must actually discharge well below the
    // matching one.
    EXPECT_LT(mism.mlAtSense, 0.5 * match.mlAtSense + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, WordDecision,
    ::testing::Values(SchemeCase{CellKind::Cmos16T, SenseScheme::FullSwing},
                      SchemeCase{CellKind::ReRam2T2R, SenseScheme::FullSwing},
                      SchemeCase{CellKind::FeFet2, SenseScheme::FullSwing},
                      SchemeCase{CellKind::FeFet2, SenseScheme::LowSwing}));

TEST(WordSim, EnergiesArePositiveAndSum) {
    const auto r = simulateWordSearch(makeOptions(CellKind::FeFet2, SenseScheme::FullSwing,
                                                  8, 1));
    EXPECT_GT(r.energyMl, 0.0);
    EXPECT_GT(r.energySl, 0.0);
    EXPECT_NEAR(r.energyTotal, r.energyMl + r.energySl + r.energySa + r.energyStatic,
                1e-20);
    // Sub-100fJ for an 8-bit word search: sanity band.
    EXPECT_LT(r.energyTotal, 100e-15);
}

TEST(WordSim, LowSwingSavesMatchlineEnergy) {
    const auto full = simulateWordSearch(
        makeOptions(CellKind::FeFet2, SenseScheme::FullSwing, 16, 1));
    const auto low = simulateWordSearch(
        makeOptions(CellKind::FeFet2, SenseScheme::LowSwing, 16, 1));
    // ML energy scales ~ Vpre^2: 0.4 V vs 1.0 V should save >3x.
    EXPECT_LT(low.energyMl, full.energyMl / 3.0);
}

TEST(WordSim, ReducedSearchVoltageSavesSearchlineEnergy) {
    auto base = makeOptions(CellKind::FeFet2, SenseScheme::FullSwing, 16, 1);
    auto reduced = base;
    reduced.config.vSearch = 0.8;
    const auto r1 = simulateWordSearch(base);
    const auto r2 = simulateWordSearch(reduced);
    EXPECT_LT(r2.energySl, r1.energySl);
    EXPECT_FALSE(r2.matchDetected);  // still detects the mismatch
}

TEST(WordSim, MoreMismatchesDischargeFaster) {
    const auto one = simulateWordSearch(makeOptions(CellKind::FeFet2,
                                                    SenseScheme::FullSwing, 16, 1));
    const auto many = simulateWordSearch(makeOptions(CellKind::FeFet2,
                                                     SenseScheme::FullSwing, 16, 8));
    ASSERT_TRUE(one.detectDelay.has_value());
    ASSERT_TRUE(many.detectDelay.has_value());
    EXPECT_LT(*many.detectDelay, *one.detectDelay);
}

TEST(WordSim, FeFetBeatsCmosOnSearchEnergy) {
    const auto fefet = simulateWordSearch(makeOptions(CellKind::FeFet2,
                                                      SenseScheme::FullSwing, 16, 1));
    const auto cmos = simulateWordSearch(makeOptions(CellKind::Cmos16T,
                                                     SenseScheme::FullSwing, 16, 1));
    EXPECT_LT(fefet.energyTotal, cmos.energyTotal);
}

TEST(WordSim, ValidatesInputs) {
    WordSimOptions o;
    o.stored = TernaryWord::fromString("0101");
    o.key = TernaryWord::fromString("01");
    EXPECT_THROW(simulateWordSearch(o), recover::SimError);
    o.key = o.stored;
    o.variations.resize(2);
    EXPECT_THROW(simulateWordSearch(o), recover::SimError);
    o.stored = TernaryWord();
    o.key = TernaryWord();
    o.variations.clear();
    EXPECT_THROW(simulateWordSearch(o), recover::SimError);
}

TEST(EnergyModelHelpers, CalibrationWordIsDefiniteAndDeterministic) {
    const auto a = array::calibrationWord(32);
    const auto b = array::calibrationWord(32);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.wildcardCount(), 0u);
    EXPECT_EQ(a.size(), 32u);
}

TEST(EnergyModelHelpers, KeyWithMismatches) {
    const auto stored = TernaryWord::fromString("1X01");
    const auto key = array::keyWithMismatches(stored, 2);
    EXPECT_EQ(stored.mismatchCount(key), 2u);
    EXPECT_THROW(array::keyWithMismatches(TernaryWord::fromString("XX"), 1),
                 recover::SimError);
}

TEST(EnergyModel, BaselineArrayIsFunctionalAndSane) {
    ArrayConfig cfg;
    cfg.cell = CellKind::FeFet2;
    cfg.wordBits = 16;
    cfg.rows = 64;
    const auto tech = device::TechCard::cmos45();
    const auto m = evaluateArray(tech, cfg);
    EXPECT_TRUE(m.functional);
    EXPECT_GT(m.energyPerBitFj, 0.01);
    EXPECT_LT(m.energyPerBitFj, 50.0);  // fJ/bit/search sanity band
    EXPECT_GT(m.searchDelay, 0.0);
    EXPECT_GT(m.throughput, 1e7);
    EXPECT_GT(m.senseMarginV, 0.2);
    EXPECT_GT(m.areaF2, 0.0);
}

TEST(EnergyModel, SegmentationReducesMatchlineEnergy) {
    const auto tech = device::TechCard::cmos45();
    ArrayConfig base;
    base.cell = CellKind::FeFet2;
    base.wordBits = 16;
    base.rows = 128;
    auto seg = base;
    seg.mlSegments = 4;
    const auto m0 = evaluateArray(tech, base);
    const auto m1 = evaluateArray(tech, seg);
    EXPECT_LT(m1.perSearch.ml, m0.perSearch.ml);
    // Early termination costs latency.
    EXPECT_GT(m1.searchDelay, m0.searchDelay);
}

TEST(EnergyModel, SelectivePrechargeReducesEnergy) {
    const auto tech = device::TechCard::cmos45();
    ArrayConfig base;
    base.cell = CellKind::FeFet2;
    base.wordBits = 16;
    base.rows = 128;
    auto sel = base;
    sel.selectivePrecharge = true;
    sel.prefilterBits = 2;
    const auto m0 = evaluateArray(tech, base);
    const auto m1 = evaluateArray(tech, sel);
    EXPECT_LT(m1.perSearch.ml + m1.perSearch.sa, m0.perSearch.ml + m0.perSearch.sa);
}

TEST(EnergyModel, RejectsBadGeometry) {
    ArrayConfig cfg;
    cfg.wordBits = 0;
    EXPECT_THROW(evaluateArray(device::TechCard::cmos45(), cfg), recover::SimError);
}

TEST(MonteCarlo, ZeroSigmaIsErrorFreeAndTight) {
    array::MonteCarloSpec spec;
    spec.config.cell = CellKind::FeFet2;
    spec.config.wordBits = 8;
    spec.trials = 5;
    spec.sigmaVt = 0.0;
    spec.sigmaState = 0.0;
    const auto r = runMonteCarlo(spec);
    EXPECT_EQ(r.matchErrors, 0);
    EXPECT_EQ(r.mismatchErrors, 0);
    EXPECT_NEAR(r.mlMatch.stddev(), 0.0, 1e-9);
    EXPECT_GT(r.senseMarginMean(), 0.3);
}

TEST(MonteCarlo, VariationWidensDistributions) {
    array::MonteCarloSpec spec;
    spec.config.cell = CellKind::FeFet2;
    spec.config.wordBits = 8;
    spec.trials = 12;
    spec.sigmaVt = 0.05;
    spec.sigmaState = 0.10;
    const auto r = runMonteCarlo(spec);
    EXPECT_GT(r.mlMatch.stddev() + r.mlMismatch.stddev(), 1e-4);
    EXPECT_LE(r.errorRate(), 1.0);
    EXPECT_GE(r.senseMarginWorst(), -1.0);  // well-defined
}

TEST(ArrayConfig, EffectiveVoltagesFollowSchemeAndTech) {
    const auto tech = device::TechCard::cmos45();
    ArrayConfig cfg;
    cfg.sense = SenseScheme::FullSwing;
    EXPECT_DOUBLE_EQ(cfg.effectiveVSearch(tech), tech.vdd);
    EXPECT_DOUBLE_EQ(cfg.effectiveVPrecharge(tech), tech.vdd);
    cfg.sense = SenseScheme::LowSwing;
    EXPECT_DOUBLE_EQ(cfg.effectiveVPrecharge(tech), 0.4);
    cfg.vSearch = 0.8;
    cfg.vPrecharge = 0.5;
    EXPECT_DOUBLE_EQ(cfg.effectiveVSearch(tech), 0.8);
    EXPECT_DOUBLE_EQ(cfg.effectiveVPrecharge(tech), 0.5);
}

TEST(ArrayConfig, TimingPhasesAreOrdered) {
    const array::SearchTiming t;
    EXPECT_LT(t.evalStart(), t.evalEnd());
    EXPECT_LT(t.evalEnd(), t.prechargeStart());
    EXPECT_LT(t.prechargeStart(), t.prechargeEnd());
    EXPECT_LT(t.prechargeEnd(), t.cycle());
    EXPECT_LT(t.strobeEnd(), t.evalEnd());  // strobe closes inside eval
}

TEST(MonteCarlo, DeterministicBySeed) {
    array::MonteCarloSpec spec;
    spec.config.cell = CellKind::FeFet2;
    spec.config.wordBits = 8;
    spec.trials = 4;
    spec.seed = 99;
    const auto a = runMonteCarlo(spec);
    const auto b = runMonteCarlo(spec);
    EXPECT_DOUBLE_EQ(a.mlMatch.mean(), b.mlMatch.mean());
    EXPECT_DOUBLE_EQ(a.mlMismatch.mean(), b.mlMismatch.mean());
}
