// Odds and ends: integration-method selection, waveform branch readout,
// formatting extremes, tech-card derivation composition.
#include <gtest/gtest.h>

#include <cmath>

#include "core/report.hpp"
#include "device/passives.hpp"
#include "device/sources.hpp"
#include "device/tech.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"

using namespace fetcam;

TEST(Transient, BackwardEulerAlsoMatchesAnalytic) {
    const double r = 10e3, cap = 100e-15, tau = r * cap;
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    c.add<device::VoltageSource>("V1", c, vin, spice::kGround,
                                 device::SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    c.add<device::Resistor>("R1", vin, out, r);
    c.add<device::Capacitor>("C1", out, spice::kGround, cap);
    spice::TransientSpec spec;
    spec.tstop = 5.0 * tau;
    spec.dtMax = tau / 200.0;  // BE is first order: needs finer steps
    spec.method = spice::IntegrationMethod::BackwardEuler;
    const auto res = runTransient(c, spec);
    EXPECT_NEAR(res.waveforms.nodeAt(out, tau), 1.0 - std::exp(-1.0), 0.02);
}

TEST(Waveforms, BranchCurrentReadout) {
    // Branch current of the source driving a resistor: -V/R (leaves +).
    spice::Circuit c;
    const auto vin = c.node("in");
    auto& vs = c.add<device::VoltageSource>("V1", c, vin, spice::kGround,
                                            device::SourceWave::dc(1.0));
    c.add<device::Resistor>("R1", vin, spice::kGround, 1e3);
    spice::TransientSpec spec;
    spec.tstop = 1e-9;
    spec.dtMax = 0.05e-9;
    spec.initialConditions = {{vin, 1.0}};
    const auto res = runTransient(c, spec);
    const auto ib = res.waveforms.branch(vs.branch());
    ASSERT_FALSE(ib.empty());
    EXPECT_NEAR(ib.back(), -1e-3, 1e-6);
}

TEST(Report, SubAttoFormatting) {
    EXPECT_EQ(core::engFormat(3.0e-21, "Js"), "3.00 zJs");
    EXPECT_EQ(core::engFormat(3.0e-22, "Js"), "300 yJs");
    EXPECT_EQ(core::engFormat(2.5e-24, "Js"), "2.50 yJs");
    // Below yocto: scientific fallback.
    const auto s = core::engFormat(1.0e-27, "Js");
    EXPECT_NE(s.find("e-"), std::string::npos);
}

TEST(TechCard, CornerComposesWithTemperature) {
    const auto base = device::TechCard::cmos45();
    const auto hotFf = base.atTemperature(398.0).atCorner(device::Corner::FF);
    EXPECT_LT(hotFf.nmos.vt0, base.atTemperature(398.0).nmos.vt0);
    EXPECT_NEAR(hotFf.nmos.ut, 0.02585 * 398.0 / 300.0, 1e-6);
}

TEST(DcOp, ReportsFinalGmin) {
    spice::Circuit c;
    c.add<device::VoltageSource>("V1", c, c.node("a"), spice::kGround,
                                 device::SourceWave::dc(1.0));
    c.add<device::Resistor>("R1", c.node("a"), spice::kGround, 1e3);
    const auto op = spice::solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_LE(op.finalGmin, 1e-12 * 1.001);
    EXPECT_GT(op.totalIterations, 0);
}

TEST(SourceWave, PeriodicPulseRepeats) {
    const auto w = device::SourceWave::pulse(0.0, 1.0, 0.0, 1e-10, 1e-10, 3e-10, 1e-9);
    EXPECT_NEAR(w.at(0.25e-9), 1.0, 1e-9);   // first pulse
    EXPECT_NEAR(w.at(1.25e-9), 1.0, 1e-9);   // second period
    EXPECT_NEAR(w.at(0.75e-9), 0.0, 1e-9);   // between pulses
    std::vector<double> bps;
    w.collectBreakpoints(2.1e-9, bps);
    EXPECT_GE(bps.size(), 8u);  // edges from at least two periods
}

TEST(SourceWave, RejectsZeroEdges) {
    EXPECT_THROW(device::SourceWave::pulse(0, 1, 0, 0.0, 1e-10, 1e-9),
                 std::invalid_argument);
}
