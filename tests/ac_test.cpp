// AC small-signal analysis tests: complex LU, analytic RC responses,
// amplifier gain consistency with the DC linearization, corner extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/sources.hpp"
#include "device/tech.hpp"
#include "numeric/complex_matrix.hpp"
#include "spice/ac.hpp"
#include "spice/dcop.hpp"

using namespace fetcam;
using device::Capacitor;
using device::Mosfet;
using device::Resistor;
using device::SourceWave;
using device::VoltageSource;
using numeric::Complex;

TEST(ComplexLu, SolvesKnownSystem) {
    numeric::ComplexDenseMatrix a(2, 2);
    a(0, 0) = {1.0, 1.0};
    a(0, 1) = {0.0, -1.0};
    a(1, 0) = {2.0, 0.0};
    a(1, 1) = {1.0, 0.0};
    const std::vector<Complex> b{{1.0, 0.0}, {0.0, 1.0}};
    const auto x = numeric::solveComplexDense(a, b);
    const auto ax = a.multiply(x);
    for (int i = 0; i < 2; ++i) {
        EXPECT_NEAR(ax[static_cast<std::size_t>(i)].real(),
                    b[static_cast<std::size_t>(i)].real(), 1e-12);
        EXPECT_NEAR(ax[static_cast<std::size_t>(i)].imag(),
                    b[static_cast<std::size_t>(i)].imag(), 1e-12);
    }
}

TEST(ComplexLu, SingularThrows) {
    numeric::ComplexDenseMatrix a(2, 2);
    a(0, 0) = {1.0, 0.0};
    a(1, 0) = {1.0, 0.0};
    EXPECT_THROW(numeric::solveComplexDense(a, {{1, 0}, {1, 0}}), std::runtime_error);
}

TEST(AcSpec, LogSweepEndpoints) {
    const auto s = spice::AcSpec::logSweep(1e3, 1e6, 5);
    EXPECT_NEAR(s.frequencies.front(), 1e3, 1e-6);
    EXPECT_NEAR(s.frequencies.back(), 1e6, 1.0);
    EXPECT_GE(s.frequencies.size(), 15u);
    EXPECT_THROW(spice::AcSpec::logSweep(0.0, 1e3), std::invalid_argument);
    EXPECT_THROW(spice::AcSpec::logSweep(1e6, 1e3), std::invalid_argument);
}

TEST(Ac, RcLowPassMatchesAnalytic) {
    const double r = 10e3, cap = 100e-15;  // corner at ~159 MHz
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    auto& vs = c.add<VoltageSource>("V1", c, vin, spice::kGround, SourceWave::dc(0.0));
    vs.setAcMagnitude(1.0);
    c.add<Resistor>("R1", vin, out, r);
    c.add<Capacitor>("C1", out, spice::kGround, cap);

    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    const auto spec = spice::AcSpec::logSweep(1e6, 1e10, 20);
    const auto res = runAc(c, op, spec);

    for (std::size_t i = 0; i < res.points(); ++i) {
        const double f = res.frequencies()[i];
        const double wrc = 2.0 * std::numbers::pi * f * r * cap;
        const double expectedMag = 1.0 / std::sqrt(1.0 + wrc * wrc);
        const double expectedPhase = -std::atan(wrc) * 180.0 / std::numbers::pi;
        EXPECT_NEAR(std::abs(res.node(i, out)), expectedMag, 1e-3 + 0.01 * expectedMag);
        EXPECT_NEAR(res.phaseDeg(i, out), expectedPhase, 1.0);
    }

    const auto corner = res.cornerFrequency(out);
    ASSERT_TRUE(corner.has_value());
    EXPECT_NEAR(*corner, 1.0 / (2.0 * std::numbers::pi * r * cap), 0.05 * *corner);
}

TEST(Ac, CommonSourceGainMatchesLinearization) {
    // NMOS common-source stage with resistive load: |gain| at low frequency
    // must equal gm * (Rload || 1/gds) from the DC linearization.
    const auto tech = device::TechCard::cmos45();
    const double rLoad = 20e3;
    spice::Circuit c;
    const auto nvdd = c.node("vdd");
    const auto nin = c.node("in");
    const auto nout = c.node("out");
    c.add<VoltageSource>("Vdd", c, nvdd, spice::kGround, SourceWave::dc(1.0));
    auto& vin = c.add<VoltageSource>("Vin", c, nin, spice::kGround, SourceWave::dc(0.55));
    vin.setAcMagnitude(1.0);
    c.add<Resistor>("RL", nvdd, nout, rLoad);
    c.add<Mosfet>("M1", nin, nout, spice::kGround, tech.nmos);

    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);

    // Linearize at the solved bias.
    const auto e = ekvChannel(tech.nmos, 0.55, op.v(nout), tech.nmos.vt0);
    const double rOut = 1.0 / (e.gds + 1.0 / rLoad);
    const double expectedGain = e.gm * rOut;

    const auto res = runAc(c, op, spice::AcSpec::logSweep(1e5, 1e7, 4));
    EXPECT_NEAR(std::abs(res.node(0, nout)), expectedGain, 0.02 * expectedGain);
    // Inverting stage: output ~180 degrees from input.
    EXPECT_NEAR(std::abs(res.phaseDeg(0, nout)), 180.0, 3.0);
    // And it must roll off at high frequency.
    const auto hi = runAc(c, op, spice::AcSpec::logSweep(1e11, 1e12, 2));
    EXPECT_LT(std::abs(hi.node(0, nout)), expectedGain);
}

TEST(Ac, NoCornerWhenFlat) {
    spice::Circuit c;
    const auto vin = c.node("in");
    auto& vs = c.add<VoltageSource>("V1", c, vin, spice::kGround, SourceWave::dc(0.0));
    vs.setAcMagnitude(1.0);
    c.add<Resistor>("R1", vin, spice::kGround, 1e3);
    const auto op = solveDcOp(c);
    const auto res = runAc(c, op, spice::AcSpec::logSweep(1e3, 1e6, 3));
    EXPECT_FALSE(res.cornerFrequency(vin).has_value());
}

TEST(Ac, RejectsUnconvergedOp) {
    spice::Circuit c;
    c.add<Resistor>("R1", c.node("a"), spice::kGround, 1e3);
    spice::DcOpResult bad;
    bad.converged = false;
    EXPECT_THROW(runAc(c, bad, spice::AcSpec::logSweep(1e3, 1e4)), std::invalid_argument);
}
