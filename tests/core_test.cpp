// Core-layer tests: design catalog, exploration, Pareto extraction, report
// formatting.
#include <gtest/gtest.h>

#include <fstream>

#include "core/design_space.hpp"
#include "core/report.hpp"

using namespace fetcam;
using namespace fetcam::core;

TEST(DesignSpace, StandardCatalog) {
    const auto designs = standardDesigns(32, 64);
    ASSERT_EQ(designs.size(), 6u);
    EXPECT_EQ(designs[0].name, "CMOS-16T");
    EXPECT_EQ(designs[0].config.cell, tcam::CellKind::Cmos16T);
    EXPECT_EQ(designs[2].config.cell, tcam::CellKind::FeFet2);
    // Cumulative energy-aware techniques.
    EXPECT_EQ(designs[3].config.sense, array::SenseScheme::LowSwing);
    EXPECT_DOUBLE_EQ(designs[4].config.vSearch, 0.8);
    EXPECT_TRUE(designs[5].config.selectivePrecharge);
    for (const auto& d : designs) {
        EXPECT_EQ(d.config.wordBits, 32);
        EXPECT_EQ(d.config.rows, 64);
    }
    EXPECT_EQ(proposedDesign(32, 64).name, designs.back().name);
}

TEST(DesignSpace, ParametricSweepCoversGrid) {
    const auto sweep = parametricSweep(tcam::CellKind::FeFet2, 16, 32);
    EXPECT_EQ(sweep.size(), 2u * 2u * 3u);
    // Names are unique.
    for (std::size_t i = 0; i < sweep.size(); ++i)
        for (std::size_t j = i + 1; j < sweep.size(); ++j)
            EXPECT_NE(sweep[i].name, sweep[j].name);
}

TEST(DesignSpace, ExploreAndProposedWins) {
    // Small geometry to keep circuit-sim cost down; the ordering that the
    // paper's headline claims rest on must hold: proposed EA-FeFET beats the
    // CMOS baseline on search energy by a solid factor.
    const auto tech = device::TechCard::cmos45();
    const auto designs = standardDesigns(16, 64);
    const auto results = exploreDesigns(tech, designs);
    ASSERT_EQ(results.size(), designs.size());
    double cmosEnergy = 0.0, fefetEnergy = 0.0, proposedEnergy = 0.0;
    for (const auto& r : results) {
        EXPECT_TRUE(r.metrics.functional) << r.design.name;
        if (r.design.name == "CMOS-16T") cmosEnergy = r.metrics.perSearch.total();
        if (r.design.name == "FeFET-2T") fefetEnergy = r.metrics.perSearch.total();
        if (r.design.name == "EA-FeFET (+LS+VS+SP)")
            proposedEnergy = r.metrics.perSearch.total();
    }
    EXPECT_LT(fefetEnergy, cmosEnergy);
    EXPECT_LT(proposedEnergy, fefetEnergy);
    EXPECT_LT(proposedEnergy, cmosEnergy / 2.0);
}

TEST(DesignSpace, ParetoFrontBasics) {
    // Hand-made metrics: only energy/delay fields matter here.
    auto mk = [](double e, double d) {
        ExplorationResult r;
        r.metrics.perSearch.ml = e;
        r.metrics.searchDelay = d;
        return r;
    };
    std::vector<ExplorationResult> pts{mk(1.0, 5.0), mk(2.0, 2.0), mk(3.0, 1.0),
                                       mk(3.0, 3.0), mk(0.5, 6.0)};
    const auto front = paretoFront(
        pts, [](const array::ArrayMetrics& m) { return m.perSearch.total(); },
        [](const array::ArrayMetrics& m) { return m.searchDelay; });
    // Dominated: (3,3) by (2,2); (1,5) not dominated; (0.5,6) not dominated.
    std::vector<std::size_t> expected{0, 1, 2, 4};
    EXPECT_EQ(front, expected);
}

TEST(Report, EngFormat) {
    EXPECT_EQ(engFormat(12.3e-15, "J"), "12.3 fJ");
    EXPECT_EQ(engFormat(1.0e-9, "s"), "1.00 ns");
    EXPECT_EQ(engFormat(0.0, "J"), "0 J");
    EXPECT_EQ(engFormat(2.5e3, "Hz"), "2.50 kHz");
    EXPECT_EQ(engFormat(-3.0e-6, "A"), "-3.00 uA");
    EXPECT_EQ(engFormat(999.0, "V", 3), "999 V");
}

TEST(Report, NumFormat) {
    EXPECT_EQ(numFormat(3.14159, 2), "3.14");
    EXPECT_EQ(numFormat(2.0, 0), "2");
}

TEST(Report, TableRendering) {
    Table t({"design", "energy"});
    t.addRow({"CMOS", "100 fJ"});
    t.addRow({"FeFET", "12 fJ"});
    const auto aligned = t.toAligned();
    EXPECT_NE(aligned.find("design"), std::string::npos);
    EXPECT_NE(aligned.find("FeFET"), std::string::npos);
    const auto md = t.toMarkdown();
    EXPECT_NE(md.find("| CMOS | 100 fJ |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    const auto csv = t.toCsv();
    EXPECT_NE(csv.find("design,energy"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, TableValidation) {
    EXPECT_THROW(Table{{}}, std::invalid_argument);
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Report, CsvQuoting) {
    Table t({"name"});
    t.addRow({"a,b"});
    EXPECT_NE(t.toCsv().find("\"a,b\""), std::string::npos);
}

TEST(DesignSpace, ExplorationTableAndCsvExport) {
    ExplorationResult r;
    r.design.name = "demo";
    r.metrics.perSearch.ml = 1e-12;
    r.metrics.searchDelay = 2e-10;
    r.metrics.cycleTime = 2e-9;
    r.metrics.throughput = 5e8;
    r.metrics.functional = true;
    const auto t = explorationTable({r});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_NE(t.toCsv().find("demo"), std::string::npos);

    const std::string path = "/tmp/fetcam_dse_test.csv";
    exportExplorationCsv({r}, path);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("E_per_search_J"), std::string::npos);
    EXPECT_THROW(exportExplorationCsv({r}, "/nonexistent_zz/x.csv"), std::runtime_error);
}
