// Coverage batch: exercises paths the focused suites don't reach — the
// write scheduler, DC gmin continuation, solver edge cases, bank workload
// dilution, state-dependent FeFET small-signal response.
#include <gtest/gtest.h>

#include <cmath>

#include "array/bank.hpp"
#include "array/montecarlo.hpp"
#include "device/fefet.hpp"
#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/sources.hpp"
#include "numeric/sparse_matrix.hpp"
#include "spice/ac.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"
#include "tcam/write_schedule.hpp"

using namespace fetcam;

namespace {
const device::TechCard kTech = device::TechCard::cmos45();
}

// ---------------------------------------------------------------------------
// Write scheduling.
// ---------------------------------------------------------------------------

TEST(WriteSchedule, FeFetWidthIndependentLatency) {
    tcam::WriteEnergyResult perBit;
    perBit.energyPerBit = 10e-15;
    perBit.writeLatency = 220e-9;
    const auto w8 = planWordWrite(tcam::CellKind::FeFet2, perBit, 8);
    const auto w128 = planWordWrite(tcam::CellKind::FeFet2, perBit, 128);
    EXPECT_EQ(w8.pulsePhases, 2);
    EXPECT_DOUBLE_EQ(w8.latency, w128.latency);  // word-parallel pulses
    EXPECT_DOUBLE_EQ(w128.energy, 128 * perBit.energyPerBit);
}

TEST(WriteSchedule, ReramSerializesUnderCurrentBudget) {
    tcam::WriteEnergyResult perBit;
    perBit.energyPerBit = 1e-12;
    perBit.writeLatency = 70e-9;
    tcam::WriteScheduleParams p;
    p.reramParallelBits = 8;
    const auto w64 = planWordWrite(tcam::CellKind::ReRam2T2R, perBit, 64, p);
    EXPECT_EQ(w64.pulsePhases, 16);  // 8 groups x (RESET+SET)
    EXPECT_DOUBLE_EQ(w64.latency, 8 * perBit.writeLatency);
    p.reramParallelBits = 64;
    const auto wide = planWordWrite(tcam::CellKind::ReRam2T2R, perBit, 64, p);
    EXPECT_DOUBLE_EQ(wide.latency, perBit.writeLatency);
}

TEST(WriteSchedule, CmosSingleCycle) {
    tcam::WriteEnergyResult perBit;
    perBit.energyPerBit = 10e-15;
    perBit.writeLatency = 2.5e-9;
    const auto w = planWordWrite(tcam::CellKind::Cmos16T, perBit, 64);
    EXPECT_EQ(w.pulsePhases, 1);
    EXPECT_DOUBLE_EQ(w.latency, perBit.writeLatency);
    EXPECT_THROW(planWordWrite(tcam::CellKind::Cmos16T, perBit, 0), std::invalid_argument);
}

TEST(WriteSchedule, ArrayPlanScalesByRows) {
    const auto r = planArrayWrite(tcam::CellKind::Cmos16T, kTech, 16, 32);
    EXPECT_NEAR(r.fullArrayLatency, 32 * r.perWord.latency, 1e-18);
    EXPECT_NEAR(r.fullArrayEnergy, 32 * r.perWord.energy, 1e-24);
    EXPECT_GT(r.wordsPerSecond, 1e6);
    EXPECT_THROW(planArrayWrite(tcam::CellKind::Cmos16T, kTech, 16, 0),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Solver edge cases.
// ---------------------------------------------------------------------------

TEST(DcOp, GminContinuationSolvesBackToBackInverters) {
    // A 4-inverter chain with feedback-free stages converges directly, but
    // exercise the continuation path by checking it also works from cold.
    spice::Circuit c;
    const auto nvdd = c.node("vdd");
    c.add<device::VoltageSource>("Vdd", c, nvdd, spice::kGround,
                                 device::SourceWave::dc(1.0));
    spice::NodeId in = c.node("in");
    c.add<device::VoltageSource>("Vin", c, in, spice::kGround,
                                 device::SourceWave::dc(0.3));
    for (int i = 0; i < 4; ++i) {
        const auto out = c.node("s" + std::to_string(i));
        c.add<device::Mosfet>("MP" + std::to_string(i), in, out, nvdd, kTech.pmos);
        c.add<device::Mosfet>("MN" + std::to_string(i), in, out, spice::kGround,
                              kTech.nmos);
        in = out;
    }
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    // 0.3 V in -> chain of inverters ends near a rail.
    const double vOut = op.v(c.findNode("s3"));
    EXPECT_TRUE(vOut < 0.1 || vOut > 0.9) << vOut;
}

TEST(SparseLu, FillInReported) {
    numeric::TripletList t(3, 3);
    t.add(0, 0, 4.0);
    t.add(1, 1, 4.0);
    t.add(2, 2, 4.0);
    t.add(2, 0, 1.0);
    t.add(0, 2, 1.0);
    numeric::SparseLu lu(numeric::SparseMatrixCsc::fromTriplets(t));
    EXPECT_GE(lu.fillIn(), 0);
    EXPECT_EQ(lu.size(), 3);
}

TEST(Transient, StepRejectionRecovers) {
    // A fast comparator-like positive feedback loop forces at least some
    // Newton retries, but the run must still finish.
    spice::Circuit c;
    const auto nvdd = c.node("vdd");
    c.add<device::VoltageSource>("Vdd", c, nvdd, spice::kGround,
                                 device::SourceWave::dc(1.0));
    const auto a = c.node("a");
    const auto b = c.node("b");
    // Cross-coupled inverter pair kicked by a pulse: regenerative snap.
    c.add<device::Mosfet>("MPa", b, a, nvdd, kTech.pmos);
    c.add<device::Mosfet>("MNa", b, a, spice::kGround, kTech.nmos);
    c.add<device::Mosfet>("MPb", a, b, nvdd, kTech.pmos);
    c.add<device::Mosfet>("MNb", a, b, spice::kGround, kTech.nmos);
    c.add<device::Capacitor>("Ca", a, spice::kGround, 1e-15);
    c.add<device::Capacitor>("Cb", b, spice::kGround, 1e-15);
    const auto kick = c.node("kick");
    c.add<device::VoltageSource>("Vk", c, kick, spice::kGround,
                                 device::SourceWave::pulse(0.0, 1.0, 0.5e-9, 50e-12,
                                                           50e-12, 0.3e-9));
    c.add<device::Resistor>("Rk", kick, a, 5e3);

    spice::TransientSpec spec;
    spec.tstop = 3e-9;
    spec.dtMax = 20e-12;
    spec.initialConditions = {{nvdd, 1.0}, {a, 0.45}, {b, 0.55}};
    const auto r = runTransient(c, spec);
    EXPECT_TRUE(r.finished);
    // Latch resolved to complementary rails.
    const double va = r.waveforms.finalNode(a);
    const double vb = r.waveforms.finalNode(b);
    EXPECT_GT(std::abs(va - vb), 0.8);
}

// ---------------------------------------------------------------------------
// Bank workload dilution.
// ---------------------------------------------------------------------------

TEST(Bank, MatchFractionDilutesAcrossSubArrays) {
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 32;
    array::WorkloadProfile wl;
    wl.matchRowFraction = 0.5;  // absurdly match-heavy on purpose
    const auto one = evaluateBank(kTech, cfg, 32, wl);
    const auto four = evaluateBank(kTech, cfg, 128, wl);
    // With dilution, the 4-array bank is NOT 4x the single-array energy:
    // matching (cheap) rows concentrate in one sub-array.
    EXPECT_GT(four.perSearch.total(), 3.0 * one.perSearch.total());
}

// ---------------------------------------------------------------------------
// FeFET small-signal response is state-dependent.
// ---------------------------------------------------------------------------

TEST(Ac, FeFetGainTracksStoredState) {
    auto gainFor = [&](double pnorm) {
        spice::Circuit c;
        const auto nvdd = c.node("vdd");
        const auto nin = c.node("in");
        const auto nout = c.node("out");
        c.add<device::VoltageSource>("Vdd", c, nvdd, spice::kGround,
                                     device::SourceWave::dc(1.0));
        auto& vin = c.add<device::VoltageSource>("Vin", c, nin, spice::kGround,
                                                 device::SourceWave::dc(0.6));
        vin.setAcMagnitude(1.0);
        c.add<device::Resistor>("RL", nvdd, nout, 20e3);
        auto& fet = c.add<device::FeFet>("F1", nin, nout, spice::kGround, kTech.fefet);
        fet.setPolarization(pnorm);
        const auto op = solveDcOp(c);
        if (!op.converged) return -1.0;
        const auto res = runAc(c, op, spice::AcSpec::logSweep(1e6, 2e6, 2));
        return std::abs(res.node(0, nout));
    };
    const double gLow = gainFor(1.0);    // low VT: strong transconductance
    const double gHigh = gainFor(-1.0);  // high VT: device off at 0.6 V gate
    ASSERT_GE(gLow, 0.0);
    ASSERT_GE(gHigh, 0.0);
    EXPECT_GT(gLow, 20.0 * gHigh);
}

// ---------------------------------------------------------------------------
// Monte Carlo knobs.
// ---------------------------------------------------------------------------

TEST(MonteCarlo, MoreMismatchBitsWidenMargin) {
    array::MonteCarloSpec spec;
    spec.config.cell = tcam::CellKind::FeFet2;
    spec.config.wordBits = 8;
    spec.trials = 4;
    spec.sigmaVt = 0.02;
    spec.mismatchBits = 1;
    const auto one = runMonteCarlo(spec);
    spec.mismatchBits = 4;
    const auto four = runMonteCarlo(spec);
    // More mismatching cells discharge faster and further by sense time.
    EXPECT_LE(four.mlMismatch.mean(), one.mlMismatch.mean() + 0.02);
}

// ---------------------------------------------------------------------------
// FerroCap charge bookkeeping.
// ---------------------------------------------------------------------------

TEST(FerroCap, ChargeCombinesLinearAndRemanent) {
    spice::Circuit c;
    auto& fe = c.add<device::FerroCap>("F", c.node("a"), spice::kGround,
                                       kTech.fefet.ferro, 1e-14);
    fe.setPolarization(1.0);
    const double qAt0 = fe.charge(0.0);
    EXPECT_NEAR(qAt0, 1e-14 * kTech.fefet.ferro.ps, 1e-18);  // pure remanence
    const double qAt1 = fe.charge(1.0);
    EXPECT_GT(qAt1, qAt0);  // plus the linear dielectric part
    fe.setPolarization(-1.0);
    EXPECT_NEAR(fe.charge(0.0), -qAt0, 1e-18);
}
