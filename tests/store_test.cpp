// fetcam::store contract tests: the crash-safety and corruption matrix.
//
// The store's one guarantee: it never serves wrong bytes. A torn tail (crash
// mid-append) salvages the valid prefix; anything invalid *inside* the
// prefix — flipped CRC byte, wrong magic, version drift — surfaces as a
// typed SimError(CorruptData) (read-only) or a quarantine-and-start-fresh
// (read-write). The serve cache on top degrades to memory-only — cold is
// always correct — and warm restarts are bit-identical to cold runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "array/bank.hpp"
#include "recover/sim_error.hpp"
#include "serve/char_cache.hpp"
#include "store/char_store.hpp"
#include "store/format.hpp"
#include "store/record_log.hpp"

using namespace fetcam;
using recover::SimError;
using recover::SimErrorReason;
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSchema = 7;

class StoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::temp_directory_path() /
                (std::string("fetcam_store_test_") + info->name()))
                   .string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    store::StoreConfig cfg(bool readOnly = false, std::uint32_t schema = kSchema) {
        store::StoreConfig c;
        c.dir = dir_;
        c.readOnly = readOnly;
        c.schemaVersion = schema;
        return c;
    }

    std::string logPath() const {
        return (fs::path(dir_) / store::CharStore::kLogName).string();
    }

    /// Create the store and persist `records` durably.
    void writeStore(const std::vector<store::Record>& records) {
        store::CharStore s(cfg());
        EXPECT_TRUE(s.load().empty());
        for (const auto& r : records) s.append(r.key, r.payload);
        s.flush();
    }

    std::string readFile() const {
        std::ifstream in(logPath(), std::ios::binary);
        EXPECT_TRUE(in.good());
        return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    }

    void writeFile(const std::string& bytes) const {
        std::ofstream out(logPath(), std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    std::string dir_;
};

const std::vector<store::Record> kRecords = {
    {"alpha", "payload-one"},
    {"beta", std::string("\x00\x01\x7f\xff", 4)},  // binary-safe
    {"gamma", ""},                                 // empty payload is legal
};

}  // namespace

TEST(StoreFormat, Crc32MatchesKnownVectorAndChains) {
    // IEEE 802.3 check value.
    EXPECT_EQ(store::crc32("123456789", 9), 0xCBF43926u);
    // Seed chaining must equal the one-shot CRC of the concatenation.
    const std::uint32_t part = store::crc32("12345", 5);
    EXPECT_EQ(store::crc32("6789", 4, part), 0xCBF43926u);
}

TEST(StoreFormat, HeaderAndRecordSizes) {
    EXPECT_EQ(store::encodeFileHeader(kSchema).size(), store::kFileHeaderSize);
    EXPECT_EQ(store::encodeRecord("key", "value").size(),
              store::kRecordHeaderSize + 3 + 5);
}

TEST_F(StoreTest, RoundTripPreservesOrderAndBytes) {
    writeStore(kRecords);

    store::CharStore s(cfg());
    const auto loaded = s.load();
    EXPECT_EQ(loaded, kRecords);
    EXPECT_EQ(s.loadStats().recordsLoaded, 3);
    EXPECT_EQ(s.loadStats().recordsSalvaged, 0);
    EXPECT_FALSE(s.loadStats().truncatedTail);
    EXPECT_FALSE(s.loadStats().startedFresh);
    EXPECT_FALSE(s.loadStats().quarantined);
}

TEST_F(StoreTest, FreshStoreStartsEmptyThenAppends) {
    store::CharStore s(cfg());
    EXPECT_TRUE(s.load().empty());
    EXPECT_TRUE(s.loadStats().startedFresh);
    s.append("k", "v");
    s.flush();
    EXPECT_EQ(s.appendedRecords(), 1);
    EXPECT_GT(s.logBytes(), static_cast<std::int64_t>(store::kFileHeaderSize));
}

TEST_F(StoreTest, LoadTwiceIsRejected) {
    store::CharStore s(cfg());
    (void)s.load();
    EXPECT_THROW((void)s.load(), SimError);
}

TEST_F(StoreTest, TruncatedTailSalvagesPrefixAndReattaches) {
    writeStore(kRecords);
    // Crash mid-append: drop the last 3 bytes, tearing the final frame.
    const std::string bytes = readFile();
    writeFile(bytes.substr(0, bytes.size() - 3));

    {
        store::CharStore s(cfg());
        const auto loaded = s.load();
        ASSERT_EQ(loaded.size(), 2u);
        EXPECT_EQ(loaded[0], kRecords[0]);
        EXPECT_EQ(loaded[1], kRecords[1]);
        EXPECT_TRUE(s.loadStats().truncatedTail);
        EXPECT_EQ(s.loadStats().recordsSalvaged, 2);
        EXPECT_GT(s.loadStats().tailBytesDropped, 0);
        // The writer reattached past the last valid frame: appending works.
        s.append("delta", "recovered");
        s.flush();
    }
    store::CharStore s(cfg());
    const auto loaded = s.load();
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[2], (store::Record{"delta", "recovered"}));
    EXPECT_FALSE(s.loadStats().truncatedTail);
}

TEST_F(StoreTest, TornHeaderStubSalvagesToEmpty) {
    fs::create_directories(dir_);
    writeFile("FCST");  // crash between create and header write

    store::CharStore s(cfg());
    EXPECT_TRUE(s.load().empty());
    EXPECT_TRUE(s.loadStats().truncatedTail);
    s.append("k", "v");
    s.flush();
}

TEST_F(StoreTest, FlippedCrcByteIsCorruptReadOnly) {
    writeStore(kRecords);
    // Flip one byte inside the first record's payload: its CRC must trip.
    std::string bytes = readFile();
    const std::size_t off = store::kFileHeaderSize + store::kRecordHeaderSize +
                            kRecords[0].key.size() + 2;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x40);
    writeFile(bytes);

    store::CharStore s(cfg(/*readOnly=*/true));
    try {
        (void)s.load();
        FAIL() << "corrupt record must not load";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::CorruptData);
    }
}

TEST_F(StoreTest, FlippedCrcByteQuarantinesReadWrite) {
    writeStore(kRecords);
    std::string bytes = readFile();
    bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x01);
    // Flipping the very last byte corrupts the final record's body CRC
    // without shortening the file — corruption, not a torn tail.
    writeFile(bytes);

    store::CharStore s(cfg());
    EXPECT_TRUE(s.load().empty());
    EXPECT_TRUE(s.loadStats().quarantined);
    EXPECT_TRUE(s.loadStats().startedFresh);
    EXPECT_FALSE(s.loadStats().quarantineReason.empty());
    EXPECT_TRUE(fs::exists(logPath() + store::CharStore::kQuarantineSuffix));
    // The store is usable again, from scratch.
    s.append("fresh", "start");
    s.flush();
    EXPECT_EQ(s.appendedRecords(), 1);
}

TEST_F(StoreTest, WrongFileMagicIsCorrupt) {
    writeStore(kRecords);
    std::string bytes = readFile();
    bytes[0] = 'X';
    writeFile(bytes);

    store::CharStore s(cfg(/*readOnly=*/true));
    try {
        (void)s.load();
        FAIL() << "bad magic must not load";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::CorruptData);
    }
}

TEST_F(StoreTest, WrongRecordMagicIsCorrupt) {
    writeStore(kRecords);
    std::string bytes = readFile();
    bytes[store::kFileHeaderSize] = static_cast<char>(bytes[store::kFileHeaderSize] ^ 0xFF);
    writeFile(bytes);

    store::CharStore s(cfg(/*readOnly=*/true));
    EXPECT_THROW((void)s.load(), SimError);
}

TEST_F(StoreTest, SchemaVersionDriftIsCorrupt) {
    writeStore(kRecords);  // written as kSchema

    {
        store::CharStore s(cfg(/*readOnly=*/true, kSchema + 1));
        try {
            (void)s.load();
            FAIL() << "schema drift must not load";
        } catch (const SimError& e) {
            EXPECT_EQ(e.reason(), SimErrorReason::CorruptData);
        }
    }
    // Read-write: drifted log is quarantined, new-schema log starts fresh.
    store::CharStore s(cfg(/*readOnly=*/false, kSchema + 1));
    EXPECT_TRUE(s.load().empty());
    EXPECT_TRUE(s.loadStats().quarantined);
    EXPECT_TRUE(fs::exists(logPath() + store::CharStore::kQuarantineSuffix));
}

TEST_F(StoreTest, ReadOnlyMissingDirServesNothing) {
    store::CharStore s(cfg(/*readOnly=*/true));
    EXPECT_TRUE(s.load().empty());
    EXPECT_TRUE(s.loadStats().startedFresh);
    EXPECT_THROW(s.append("k", "v"), SimError);
    EXPECT_THROW(s.compact({}), SimError);
    EXPECT_FALSE(fs::exists(dir_));  // read-only never creates anything
}

TEST_F(StoreTest, AppendBeforeLoadIsRejected) {
    store::CharStore s(cfg());
    EXPECT_THROW(s.append("k", "v"), SimError);
    EXPECT_THROW(s.compact({}), SimError);
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(StoreTest, SecondWriterIsRejectedReadersShare) {
    store::CharStore first(cfg());
    (void)first.load();
    try {
        store::CharStore second(cfg());
        FAIL() << "two writers must not share a store";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::IoError);
    }
    // Readers are always welcome alongside the writer.
    store::CharStore reader(cfg(/*readOnly=*/true));
    EXPECT_NO_THROW((void)reader.load());
}
#endif

TEST_F(StoreTest, CompactionDedupsAtomically) {
    store::CharStore s(cfg());
    (void)s.load();
    for (int round = 0; round < 3; ++round)
        for (const auto& r : kRecords) s.append(r.key, r.payload);
    s.flush();
    const auto before = s.logBytes();

    s.compact(kRecords);  // caller dedups; the store snapshots
    EXPECT_LT(s.logBytes(), before);
    // Appends keep working on the compacted log.
    s.append("post", "compact");
    s.flush();

    store::CharStore reader(cfg(/*readOnly=*/true));
    auto expected = kRecords;
    expected.push_back({"post", "compact"});
    EXPECT_EQ(reader.load(), expected);
}

// --- serve cache on top of the store -------------------------------------

namespace {

array::ArrayConfig cacheConfig() {
    array::ArrayConfig c;
    c.cell = tcam::CellKind::FeFet2;
    c.sense = array::SenseScheme::LowSwing;
    c.wordBits = 8;
    c.rows = 4;
    return c;
}

}  // namespace

TEST_F(StoreTest, CacheWarmRestartIsBitIdenticalWithZeroSims) {
    const auto tech = device::TechCard::cmos45();
    const auto acfg = cacheConfig();
    const auto plain = evaluateBank(tech, acfg, 10);

    store::StoreConfig scfg;
    scfg.dir = dir_;
    std::int64_t coldMisses = 0;
    {
        serve::CharacterizationCache cold(scfg);
        ASSERT_FALSE(cold.storeStatus().degraded);
        const auto bank = evaluateBank(tech, acfg, 10, {}, {},
                                       recover::FailurePolicy::Strict, cold.provider());
        EXPECT_EQ(bank.perSearch.ml, plain.perSearch.ml);
        EXPECT_EQ(bank.searchDelay, plain.searchDelay);
        coldMisses = cold.stats().misses;
        EXPECT_GT(coldMisses, 0);
        EXPECT_EQ(cold.storeStatus().appended, coldMisses);
    }  // destructor flushes

    serve::CharacterizationCache warm(scfg);
    ASSERT_FALSE(warm.storeStatus().degraded);
    EXPECT_EQ(warm.storeStatus().load.recordsLoaded, coldMisses);
    const auto bank = evaluateBank(tech, acfg, 10, {}, {},
                                   recover::FailurePolicy::Strict, warm.provider());
    // Bit-identical to the never-cached path, with zero solver transients.
    EXPECT_EQ(bank.perSearch.ml, plain.perSearch.ml);
    EXPECT_EQ(bank.perSearch.sl, plain.perSearch.sl);
    EXPECT_EQ(bank.perSearch.sa, plain.perSearch.sa);
    EXPECT_EQ(bank.searchDelay, plain.searchDelay);
    EXPECT_EQ(bank.cycleTime, plain.cycleTime);
    const auto stats = warm.stats();
    EXPECT_EQ(stats.misses, 0);
    EXPECT_GT(stats.storeHits, 0);
}

TEST_F(StoreTest, CacheDegradesToColdOnCorruptStore) {
    // A poisoned log: valid header, garbage body.
    fs::create_directories(dir_);
    writeFile(store::encodeFileHeader(serve::kCharSchemaVersion) +
              "this is not a record frame at all........");

    store::StoreConfig scfg;
    scfg.dir = dir_;
    scfg.readOnly = true;  // read-only: no quarantine rescue, must degrade
    serve::CharacterizationCache cache(scfg);
    EXPECT_TRUE(cache.storeStatus().degraded);
    EXPECT_EQ(cache.storeStatus().errorReason, SimErrorReason::CorruptData);
    EXPECT_FALSE(cache.storeStatus().error.empty());

    // Degraded = memory-only = still bit-identical to the plain path.
    const auto tech = device::TechCard::cmos45();
    const auto acfg = cacheConfig();
    const auto plain = evaluateBank(tech, acfg, 10);
    const auto bank = evaluateBank(tech, acfg, 10, {}, {},
                                   recover::FailurePolicy::Strict, cache.provider());
    EXPECT_EQ(bank.perSearch.ml, plain.perSearch.ml);
    EXPECT_EQ(bank.searchDelay, plain.searchDelay);
    EXPECT_GT(cache.stats().misses, 0);
    EXPECT_EQ(cache.stats().storeHits, 0);
}

TEST_F(StoreTest, CacheRejectsStoreLockedByAnotherWriter) {
#if defined(__unix__) || defined(__APPLE__)
    store::StoreConfig scfg;
    scfg.dir = dir_;
    serve::CharacterizationCache first(scfg);
    ASSERT_FALSE(first.storeStatus().degraded);

    serve::CharacterizationCache second(scfg);
    EXPECT_TRUE(second.storeStatus().degraded);
    EXPECT_EQ(second.storeStatus().errorReason, SimErrorReason::IoError);
#endif
}

TEST(CharPayload, PackUnpackRoundTrip) {
    array::WordSimResult r;
    r.expectedMatch = true;
    r.matchDetected = false;
    r.detectDelay = 1.25e-10;
    r.mlAtSense = 0.41;
    r.mlMin = 0.02;
    r.vPrecharge = 0.8;
    r.energyMl = 1.5e-15;
    r.energySl = 2.5e-15;
    r.energySa = 3.5e-16;
    r.energyStatic = 4.5e-17;
    r.energyTotal = 4.4e-15;

    const auto bytes = serve::packResult(r);
    const auto back = serve::unpackResult(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->expectedMatch, r.expectedMatch);
    EXPECT_EQ(back->matchDetected, r.matchDetected);
    ASSERT_TRUE(back->detectDelay.has_value());
    EXPECT_EQ(*back->detectDelay, *r.detectDelay);  // bitwise
    EXPECT_EQ(back->mlAtSense, r.mlAtSense);
    EXPECT_EQ(back->mlMin, r.mlMin);
    EXPECT_EQ(back->vPrecharge, r.vPrecharge);
    EXPECT_EQ(back->energyMl, r.energyMl);
    EXPECT_EQ(back->energySl, r.energySl);
    EXPECT_EQ(back->energySa, r.energySa);
    EXPECT_EQ(back->energyStatic, r.energyStatic);
    EXPECT_EQ(back->energyTotal, r.energyTotal);

    // No detect delay survives as nullopt, not 0-that-looks-real.
    r.detectDelay.reset();
    const auto back2 = serve::unpackResult(serve::packResult(r));
    ASSERT_TRUE(back2.has_value());
    EXPECT_FALSE(back2->detectDelay.has_value());
}

TEST(CharPayload, UnpackRejectsMalformedBytes) {
    array::WordSimResult r;
    auto bytes = serve::packResult(r);
    EXPECT_FALSE(serve::unpackResult(bytes.substr(1)).has_value());  // short
    EXPECT_FALSE(serve::unpackResult(bytes + "x").has_value());      // long
    bytes[0] = static_cast<char>(0x80);  // reserved flag bits set
    EXPECT_FALSE(serve::unpackResult(bytes).has_value());
}

TEST(CharPayload, WaveformResultsAreNotPersistable) {
    array::WordSimOptions o;
    o.config = cacheConfig();
    o.config.rows = 1;
    o.stored = tcam::TernaryWord(8, tcam::Trit::Zero);
    o.key = tcam::TernaryWord(8, tcam::Trit::Zero);
    o.recordWaveforms = true;
    const auto r = array::simulateWordSearch(o);
    ASSERT_GT(r.waveforms.size(), 0u);
    EXPECT_THROW((void)serve::packResult(r), SimError);
}

TEST(RecordLog, SyncDirectoryIsTypedNeverBestEffort) {
    EXPECT_THROW(store::syncDirectory("/definitely/not/a/real/dir"), SimError);
    try {
        store::syncDirectory("/definitely/not/a/real/dir");
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_EQ(e.reason(), SimErrorReason::IoError);
    }
    const auto dir = fs::temp_directory_path() / "fetcam_syncdir_test";
    fs::create_directories(dir);
    EXPECT_NO_THROW(store::syncDirectory(dir.string()));
    fs::remove_all(dir);
}
