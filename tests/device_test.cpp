// Device-model tests: MOSFET regions and derivative consistency, inverter
// VTC, Preisach hysteresis properties, FeFET program/erase/disturb behavior,
// ReRAM switching.
#include <gtest/gtest.h>

#include <cmath>

#include "device/fefet.hpp"
#include "device/ferro.hpp"
#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/reram.hpp"
#include "device/sources.hpp"
#include "device/tech.hpp"
#include "numeric/stats.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"

using namespace fetcam;
using namespace fetcam::device;

namespace {
const TechCard kTech = TechCard::cmos45();
}

TEST(MosfetModel, OffAndOnCurrents) {
    const auto& p = kTech.nmos;
    const double idOff = ekvChannel(p, 0.0, 1.0, p.vt0).id;
    const double idOn = ekvChannel(p, 1.0, 1.0, p.vt0).id;
    EXPECT_GT(idOn, 1e-5);        // tens of uA for a near-minimum device
    EXPECT_LT(idOff, 1e-8);       // off leakage
    EXPECT_GT(idOn / idOff, 1e4); // healthy on/off ratio
}

TEST(MosfetModel, SubthresholdSlopeReasonable) {
    const auto& p = kTech.nmos;
    // Current should grow ~10x per n*Ut*ln(10) of gate drive below VT.
    const double i1 = ekvChannel(p, 0.20, 1.0, p.vt0).id;
    const double i2 = ekvChannel(p, 0.20 + p.n * p.ut * std::log(10.0), 1.0, p.vt0).id;
    EXPECT_NEAR(i2 / i1, 10.0, 2.0);
}

TEST(MosfetModel, TriodeVsSaturation) {
    const auto& p = kTech.nmos;
    const double triode = ekvChannel(p, 1.0, 0.05, p.vt0).id;
    const double sat = ekvChannel(p, 1.0, 1.0, p.vt0).id;
    EXPECT_GT(sat, 3.0 * triode);
    // Saturation current should be nearly flat in vds (up to lambda).
    const double sat2 = ekvChannel(p, 1.0, 0.9, p.vt0).id;
    EXPECT_NEAR(sat / sat2, (1.0 + p.lambda * 1.0) / (1.0 + p.lambda * 0.9), 0.05);
}

TEST(MosfetModel, SymmetricConductionReversesSign) {
    const auto& p = kTech.nmos;
    EXPECT_LT(ekvChannel(p, 1.0, -0.3, p.vt0).id, 0.0);
    EXPECT_NEAR(ekvChannel(p, 1.0, 0.0, p.vt0).id, 0.0, 1e-12);
}

// Property: analytic gm/gds match finite differences across random bias.
class MosDerivative : public ::testing::TestWithParam<int> {};

TEST_P(MosDerivative, MatchesFiniteDifference) {
    numeric::Rng rng(37 + static_cast<std::uint64_t>(GetParam()));
    const auto& p = kTech.nmos;
    const double vgs = rng.uniform(-0.2, 1.2);
    const double vds = rng.uniform(-0.5, 1.2);
    const double h = 1e-6;
    const auto e = ekvChannel(p, vgs, vds, p.vt0);
    const double gmFd =
        (ekvChannel(p, vgs + h, vds, p.vt0).id - ekvChannel(p, vgs - h, vds, p.vt0).id) /
        (2.0 * h);
    const double gdsFd =
        (ekvChannel(p, vgs, vds + h, p.vt0).id - ekvChannel(p, vgs, vds - h, p.vt0).id) /
        (2.0 * h);
    const double tol = 1e-6 + 1e-4 * std::abs(gmFd);
    EXPECT_NEAR(e.gm, gmFd, tol);
    EXPECT_NEAR(e.gds, gdsFd, 1e-6 + 1e-4 * std::abs(gdsFd));
}

INSTANTIATE_TEST_SUITE_P(RandomBias, MosDerivative, ::testing::Range(0, 20));

TEST(MosfetModel, InverterVtc) {
    // CMOS inverter driven through a DC sweep: check rails and monotonicity.
    const double vdd = kTech.vdd;
    double prev = vdd + 1.0;
    for (double vin : {0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0}) {
        spice::Circuit c;
        const auto nin = c.node("in");
        const auto nout = c.node("out");
        const auto nvdd = c.node("vdd");
        c.add<VoltageSource>("Vdd", c, nvdd, spice::kGround, SourceWave::dc(vdd));
        c.add<VoltageSource>("Vin", c, nin, spice::kGround, SourceWave::dc(vin));
        c.add<Mosfet>("MP", nin, nout, nvdd, kTech.pmos);
        c.add<Mosfet>("MN", nin, nout, spice::kGround, kTech.nmos);
        const auto op = spice::solveDcOp(c);
        ASSERT_TRUE(op.converged) << "vin=" << vin;
        const double vout = op.v(nout);
        EXPECT_LT(vout, prev + 1e-6) << "VTC must be non-increasing, vin=" << vin;
        prev = vout;
        if (vin == 0.0) {
            EXPECT_NEAR(vout, vdd, 0.02);
        }
        if (vin == 1.0) {
            EXPECT_NEAR(vout, 0.0, 0.02);
        }
    }
}

TEST(MosfetModel, RingOscillatorOscillates) {
    // 3-stage ring oscillator: a strong end-to-end engine check.
    const double vdd = kTech.vdd;
    spice::Circuit c;
    const auto nvdd = c.node("vdd");
    c.add<VoltageSource>("Vdd", c, nvdd, spice::kGround, SourceWave::dc(vdd));
    const spice::NodeId n[3] = {c.node("s0"), c.node("s1"), c.node("s2")};
    for (int i = 0; i < 3; ++i) {
        const auto in = n[i];
        const auto out = n[(i + 1) % 3];
        c.add<Mosfet>("MP" + std::to_string(i), in, out, nvdd, kTech.pmos);
        c.add<Mosfet>("MN" + std::to_string(i), in, out, spice::kGround, kTech.nmos);
        c.add<Capacitor>("CL" + std::to_string(i), out, spice::kGround, 0.5e-15);
    }
    spice::TransientSpec spec;
    spec.tstop = 2e-9;
    spec.dtMax = 2e-12;
    spec.initialConditions = {{n[0], vdd}};  // break the symmetry
    const auto res = runTransient(c, spec);
    ASSERT_TRUE(res.finished);
    // Count mid-rail crossings of one stage in the second half of the run.
    const auto t = res.waveforms.time();
    const auto v = res.waveforms.node(n[1]);
    int crossings = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        if (t[i] > 1e-9 && (v[i - 1] - vdd / 2) * (v[i] - vdd / 2) < 0.0) ++crossings;
    EXPECT_GE(crossings, 4) << "ring oscillator failed to oscillate";
}

TEST(Preisach, SaturationAndRemanence) {
    PreisachBank bank(kTech.fefet.ferro);
    bank.settle(5.0);
    EXPECT_NEAR(bank.pnorm(), 1.0, 1e-9);
    bank.settle(0.0);  // remove field: remanent state holds
    EXPECT_NEAR(bank.pnorm(), 1.0, 1e-9);
    bank.settle(-5.0);
    EXPECT_NEAR(bank.pnorm(), -1.0, 1e-9);
}

TEST(Preisach, SubCoerciveHold) {
    PreisachBank bank(kTech.fefet.ferro);
    bank.reset(-1.0);
    // Logic-level disturb for a long time: nothing may move (all vc > 0.7).
    for (int i = 0; i < 1000; ++i) bank.advance(0.7, 1e-9);
    EXPECT_NEAR(bank.pnorm(), -1.0, 1e-12);
}

TEST(Preisach, WipingProperty) {
    // Classical Preisach wiping: a larger reversal erases the memory of
    // smaller intermediate cycling.
    PreisachBank a(kTech.fefet.ferro);
    PreisachBank b(kTech.fefet.ferro);
    a.settle(-5.0);
    b.settle(-5.0);
    // Bank a takes a detour through minor loops before the big sweep.
    a.settle(1.6);
    a.settle(-1.2);
    a.settle(1.3);
    a.settle(5.0);
    b.settle(5.0);
    EXPECT_NEAR(a.pnorm(), b.pnorm(), 1e-12);
}

TEST(Preisach, MinorLoopIsContained) {
    PreisachBank bank(kTech.fefet.ferro);
    bank.settle(-5.0);
    bank.settle(1.5);  // partial switch up
    const double pPartial = bank.pnorm();
    EXPECT_GT(pPartial, -1.0);
    EXPECT_LT(pPartial, 1.0);
    bank.settle(-1.1);  // partial switch back down
    EXPECT_LT(bank.pnorm(), pPartial);
    EXPECT_GT(bank.pnorm(), -1.0);
}

TEST(Preisach, MerzFasterAtHigherVoltage) {
    PreisachBank slow(kTech.fefet.ferro);
    PreisachBank fast(kTech.fefet.ferro);
    slow.reset(-1.0);
    fast.reset(-1.0);
    slow.advance(2.2, 5e-9);
    fast.advance(3.2, 5e-9);
    EXPECT_GT(fast.pnorm(), slow.pnorm());
}

TEST(Preisach, ResetValidatesRange) {
    PreisachBank bank(kTech.fefet.ferro);
    EXPECT_THROW(bank.reset(1.5), std::invalid_argument);
}

TEST(FerroCap, HysteresisLoopDissipatesEnergy) {
    // Drive a triangular +/-4 V cycle across the FE cap; after a full loop the
    // absorbed energy must be positive (hysteresis loss), unlike a linear cap.
    spice::Circuit c;
    const auto nin = c.node("in");
    c.add<VoltageSource>(
        "V1", c, nin, spice::kGround,
        SourceWave::pwl({0.0, 50e-9, 150e-9, 250e-9, 300e-9}, {0.0, 4.0, -4.0, 4.0, 4.0}));
    auto& fe = c.add<FerroCap>("F1", nin, spice::kGround, kTech.fefet.ferro, 120e-9 * 45e-9);
    fe.setPolarization(-1.0);

    spice::TransientSpec spec;
    spec.tstop = 300e-9;
    spec.dtMax = 0.2e-9;
    const auto res = runTransient(c, spec);
    ASSERT_TRUE(res.finished);
    EXPECT_GT(fe.pnorm(), 0.9);      // ends programmed up
    EXPECT_GT(fe.energy(), 0.0);     // net loss after cycling
}

TEST(FeFet, MemoryWindow) {
    const auto& p = kTech.fefet;
    EXPECT_NEAR(p.vtLow(), 0.15, 1e-9);
    EXPECT_NEAR(p.vtHigh(), 1.25, 1e-9);
    // On/off discrimination at VDD gate drive.
    const double iLow = ekvChannel(p.mos, kTech.vdd, 0.5, p.vtLow()).id;
    const double iHigh = ekvChannel(p.mos, kTech.vdd, 0.5, p.vtHigh()).id;
    EXPECT_GT(iLow / iHigh, 1e3);
}

namespace {

/// Apply one gate pulse to a grounded-source FeFET and return final pnorm.
double pulseFeFet(double startP, double vPulse, double width) {
    spice::Circuit c;
    const auto g = c.node("g");
    c.add<VoltageSource>("Vg", c, g, spice::kGround,
                         SourceWave::pulse(0.0, vPulse, 1e-9, 1e-9, 1e-9, width));
    auto& fet = c.add<FeFet>("X1", g, spice::kGround, spice::kGround, kTech.fefet);
    fet.setPolarization(startP);
    spice::TransientSpec spec;
    spec.tstop = width + 5e-9;
    spec.dtMax = 0.5e-9;
    runTransient(c, spec);
    return fet.pnorm();
}

}  // namespace

TEST(FeFet, ProgramAndErasePulses) {
    EXPECT_GT(pulseFeFet(-1.0, kTech.vWriteFe, kTech.tWriteFe), 0.95);   // program
    EXPECT_LT(pulseFeFet(1.0, -kTech.vWriteFe, kTech.tWriteFe), -0.95); // erase
}

TEST(FeFet, SearchPulseDoesNotDisturb) {
    // Thousands of search cycles at VDD must not move the polarization.
    const double p = pulseFeFet(-1.0, kTech.vdd, 1000e-9);
    EXPECT_NEAR(p, -1.0, 1e-9);
}

TEST(FeFet, ShorterOrWeakerPulseSwitchesLess) {
    const double full = pulseFeFet(-1.0, kTech.vWriteFe, kTech.tWriteFe);
    const double brief = pulseFeFet(-1.0, kTech.vWriteFe, 3e-9);
    const double weak = pulseFeFet(-1.0, 2.0, kTech.tWriteFe);
    EXPECT_LT(brief, full);
    EXPECT_LT(weak, full);
}

TEST(Reram, ResistanceStates) {
    spice::Circuit c;
    Reram r("R1", c.node("a"), spice::kGround, kTech.reram);
    EXPECT_NEAR(r.resistance(), kTech.reram.rOff, 1.0);
    r.setLrs();
    EXPECT_NEAR(r.resistance(), kTech.reram.rOn, 1.0);
    r.setState(0.5);
    EXPECT_NEAR(r.resistance(), std::sqrt(kTech.reram.rOn * kTech.reram.rOff), 10.0);
    EXPECT_THROW(r.setState(1.5), std::invalid_argument);
}

namespace {

double pulseReram(double startW, double vPulse, double width) {
    spice::Circuit c;
    const auto a = c.node("a");
    c.add<VoltageSource>("Vp", c, a, spice::kGround,
                         SourceWave::pulse(0.0, vPulse, 1e-9, 0.5e-9, 0.5e-9, width));
    auto& r = c.add<Reram>("R1", a, spice::kGround, kTech.reram, startW);
    spice::TransientSpec spec;
    spec.tstop = width + 4e-9;
    spec.dtMax = 0.25e-9;
    runTransient(c, spec);
    return r.state();
}

}  // namespace

TEST(Reram, SetAndResetPulses) {
    EXPECT_GT(pulseReram(0.0, kTech.vWriteReram, kTech.tWriteReram), 0.95);
    EXPECT_LT(pulseReram(1.0, -kTech.vWriteReram, kTech.tWriteReram), 0.05);
}

TEST(Reram, ReadIsNonDestructive) {
    EXPECT_NEAR(pulseReram(0.0, 1.0, 200e-9), 0.0, 1e-12);
    EXPECT_NEAR(pulseReram(1.0, -1.0, 200e-9), 1.0, 1e-12);
}

TEST(TechCard, SizingHelpers) {
    const auto w2 = kTech.sizedNmos(2.0);
    EXPECT_DOUBLE_EQ(w2.w, 2.0 * kTech.nmos.w);
    EXPECT_DOUBLE_EQ(w2.l, kTech.nmos.l);
    const auto p3 = kTech.sizedPmos(3.0);
    EXPECT_DOUBLE_EQ(p3.w, 3.0 * kTech.pmos.w);
}
