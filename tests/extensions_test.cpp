// Tests for the extension features: temperature-dependent tech cards,
// ferroelectric retention, the matchline keeper, bank-level modelling, the
// TLB application, scalar optimization and the auto-tuner.
#include <gtest/gtest.h>

#include "recover/sim_error.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "apps/tlb.hpp"
#include "array/bank.hpp"
#include "array/energy_model.hpp"
#include "core/tuner.hpp"
#include "device/fefet.hpp"
#include "numeric/optimize.hpp"

using namespace fetcam;

// ---------------------------------------------------------------------------
// Temperature.
// ---------------------------------------------------------------------------

TEST(Temperature, CardScalesFirstOrder) {
    const auto t300 = device::TechCard::cmos45();
    const auto t400 = t300.atTemperature(400.0);
    EXPECT_NEAR(t400.nmos.ut, 0.02585 * 400.0 / 300.0, 1e-6);
    EXPECT_LT(t400.nmos.vt0, t300.nmos.vt0);   // VT drops
    EXPECT_LT(t400.nmos.kp, t300.nmos.kp);     // mobility degrades
    EXPECT_LT(t400.fefet.ferro.vcMean, t300.fefet.ferro.vcMean);
    EXPECT_LT(t400.reram.tauSet, t300.reram.tauSet);  // faster switching hot
    EXPECT_THROW(t400.atTemperature(500.0), std::logic_error);  // re-derive
    EXPECT_THROW(t300.atTemperature(-5.0), std::invalid_argument);
}

TEST(Temperature, LeakageGrowsWithT) {
    const auto t300 = device::TechCard::cmos45();
    const auto t400 = t300.atTemperature(400.0);
    const double off300 = ekvChannel(t300.nmos, 0.0, 1.0, t300.nmos.vt0).id;
    const double off400 = ekvChannel(t400.nmos, 0.0, 1.0, t400.nmos.vt0).id;
    EXPECT_GT(off400, 10.0 * off300);
}

TEST(Temperature, SearchStillFunctionalAcrossRange) {
    for (const double tk : {233.0, 300.0, 398.0}) {  // -40C .. 125C
        const auto tech = device::TechCard::cmos45().atTemperature(tk);
        array::WordSimOptions o;
        o.tech = tech;
        o.config.cell = tcam::CellKind::FeFet2;
        o.config.wordBits = 8;
        o.stored = array::calibrationWord(8);
        o.key = o.stored;
        EXPECT_TRUE(simulateWordSearch(o).matchDetected) << "T=" << tk;
        o.key = array::keyWithMismatches(o.stored, 1);
        EXPECT_FALSE(simulateWordSearch(o).matchDetected) << "T=" << tk;
    }
}

// ---------------------------------------------------------------------------
// Retention.
// ---------------------------------------------------------------------------

TEST(Retention, PolarizationDecaysExponentially) {
    const auto tech = device::TechCard::cmos45();
    device::PreisachBank bank(tech.fefet.ferro);
    bank.reset(1.0);
    bank.relax(tech.fefet.ferro.tauRetention);
    EXPECT_NEAR(bank.pnorm(), std::exp(-1.0), 1e-9);
    EXPECT_THROW(bank.relax(-1.0), std::invalid_argument);
}

TEST(Retention, NegligibleAtCircuitTimescales) {
    const auto tech = device::TechCard::cmos45();
    device::PreisachBank bank(tech.fefet.ferro);
    bank.reset(-1.0);
    bank.relax(1e-3);  // a full millisecond
    EXPECT_NEAR(bank.pnorm(), -1.0, 1e-9);
}

TEST(Retention, AgedFeFetLosesWindowMonotonically) {
    const auto tech = device::TechCard::cmos45();
    spice::Circuit c;
    auto& fet = c.add<device::FeFet>("F", c.node("g"), c.node("d"), spice::kGround,
                                     tech.fefet);
    fet.setPolarization(1.0);
    double prevVt = fet.vtEff();
    for (const double years : {0.1, 1.0, 10.0}) {
        fet.setPolarization(1.0);
        fet.ageBy(years * 3.15e7);
        EXPECT_GT(fet.vtEff(), prevVt);  // VT drifts back toward midpoint
        prevVt = fet.vtEff();
    }
    EXPECT_LT(prevVt, tech.fefet.mos.vt0);  // still on the programmed side
}

// ---------------------------------------------------------------------------
// Matchline keeper.
// ---------------------------------------------------------------------------

TEST(MlKeeper, RemovesMatchSagOnWideReramWords) {
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::ReRam2T2R;
    o.config.wordBits = 32;
    o.stored = array::calibrationWord(32);
    o.key = o.stored;
    const auto bare = simulateWordSearch(o);
    o.config.mlKeeper = true;
    const auto kept = simulateWordSearch(o);
    EXPECT_TRUE(kept.matchDetected);
    // Keeper holds the matching ML essentially at the rail.
    EXPECT_GT(kept.mlAtSense, bare.mlAtSense + 0.05);
    EXPECT_GT(kept.mlAtSense, 0.95);
}

TEST(MlKeeper, MismatchStillDetectedButSlower) {
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::FeFet2;
    o.config.wordBits = 16;
    o.stored = array::calibrationWord(16);
    o.key = array::keyWithMismatches(o.stored, 1);
    const auto bare = simulateWordSearch(o);
    o.config.mlKeeper = true;
    const auto kept = simulateWordSearch(o);
    EXPECT_FALSE(kept.matchDetected);
    ASSERT_TRUE(bare.detectDelay && kept.detectDelay);
    EXPECT_GT(*kept.detectDelay, *bare.detectDelay);  // contention slows it
}

// ---------------------------------------------------------------------------
// Bank model.
// ---------------------------------------------------------------------------

TEST(Bank, RoundsUpAndScales) {
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 64;
    const auto one = evaluateBank(tech, cfg, 64);
    const auto three = evaluateBank(tech, cfg, 130);  // 3 sub-arrays
    EXPECT_EQ(one.subArrays, 1);
    EXPECT_EQ(three.subArrays, 3);
    EXPECT_EQ(three.totalEntries, 192);
    EXPECT_TRUE(three.functional);
    EXPECT_NEAR(three.perSearch.sl, 3.0 * one.perSearch.sl, 1e-18);
    EXPECT_GT(three.searchDelay, one.searchDelay);  // deeper encoder
    EXPECT_THROW(evaluateBank(tech, cfg, 0), recover::SimError);
}

TEST(Bank, EncoderModelDepth) {
    array::PriorityEncoderModel pe;
    EXPECT_DOUBLE_EQ(pe.delay(1), pe.delayPerLevel);
    EXPECT_DOUBLE_EQ(pe.delay(256), 8.0 * pe.delayPerLevel);
    EXPECT_DOUBLE_EQ(pe.energy(100), 100 * pe.energyPerRowFj * 1e-15);
}

TEST(Bank, TwoLevelEncoderStructure) {
    array::PriorityEncoderModel pe;
    // n parallel per-sub-array encoders plus a merge tree over n results —
    // not one flat tree over n*rows flags (the old double-count charged the
    // merge inputs as if every row fed the final stage directly).
    EXPECT_DOUBLE_EQ(pe.bankDelay(5, 5), pe.delay(5) + pe.delay(5));
    EXPECT_LT(pe.bankDelay(5, 5), pe.delay(25) + pe.delay(5));
    EXPECT_DOUBLE_EQ(pe.bankEnergy(5, 5), 5.0 * pe.energy(5) + pe.energy(5));
    // One sub-array collapses to the flat encoder: banked and flat pricing
    // of the same geometry agree exactly.
    EXPECT_DOUBLE_EQ(pe.bankDelay(1, 64), pe.delay(64));
    EXPECT_DOUBLE_EQ(pe.bankEnergy(1, 64), pe.energy(64));
}

TEST(Bank, EvaluateBankUsesTwoLevelEncoder) {
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 64;
    const array::PriorityEncoderModel pe;
    const auto b = evaluateBank(tech, cfg, 130);  // 3 sub-arrays of 64
    EXPECT_DOUBLE_EQ(b.encoderEnergy, pe.bankEnergy(3, 64));
    const auto flat = evaluateBank(tech, cfg, 64);
    EXPECT_DOUBLE_EQ(flat.encoderEnergy, pe.energy(64));
    EXPECT_DOUBLE_EQ(b.searchDelay - pe.bankDelay(3, 64),
                     flat.searchDelay - pe.delay(64));  // same sub-array delay
}

TEST(Bank, Int64CapacitiesDoNotWrap) {
    array::PriorityEncoderModel pe;
    // Row counts past 2^31 are legal inputs; the old int interface wrapped.
    EXPECT_DOUBLE_EQ(pe.delay(std::int64_t{1} << 33), 33.0 * pe.delayPerLevel);
    EXPECT_GT(pe.energy(std::int64_t{1} << 33), 0.0);

    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 2;  // keep the calibration sims tiny
    cfg.rows = 1 << 20;
    const std::int64_t entries = 5'000'000'000;  // > INT32_MAX
    const auto b = evaluateBank(tech, cfg, entries);
    EXPECT_EQ(b.subArrays, (entries + cfg.rows - 1) / cfg.rows);
    EXPECT_GE(b.totalEntries, entries);
    EXPECT_GT(b.totalEntries, std::int64_t{std::numeric_limits<std::int32_t>::max()});
    EXPECT_TRUE(std::isfinite(b.totalPerSearch()));

    // Entry counts whose rounded-up provisioning would overflow int64 raise
    // a structured InvalidSpec instead of wrapping silently.
    EXPECT_THROW(evaluateBank(tech, cfg, std::numeric_limits<std::int64_t>::max() - 1),
                 recover::SimError);
}

// ---------------------------------------------------------------------------
// TLB.
// ---------------------------------------------------------------------------

TEST(Tlb, BasicTranslateAndMiss) {
    apps::Tlb tlb(4);
    tlb.insert(0x12345, apps::PageSize::Page4K, 0x999);
    const auto pa = tlb.translate((0x12345ULL << 12) | 0xabc);
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, (0x999ULL << 12) | 0xabc);
    EXPECT_FALSE(tlb.translate(0x99999ULL << 12).has_value());
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(Tlb, SuperpagesUseWildcards) {
    apps::Tlb tlb(4);
    // One 2M page covers 512 consecutive 4K VPNs.
    tlb.insert(0x40000, apps::PageSize::Page2M, 0x40000);
    EXPECT_EQ(tlb.entries()[0].tag().wildcardCount(), 9u);
    for (const std::uint64_t vpnOff : {0ULL, 1ULL, 511ULL}) {
        const auto pa = tlb.translate((0x40000ULL + vpnOff) << 12);
        ASSERT_TRUE(pa.has_value()) << vpnOff;
        // Offset within the superpage must be preserved.
        EXPECT_EQ(*pa % (1ULL << 21), (vpnOff << 12) % (1ULL << 21));
    }
    EXPECT_FALSE(tlb.translate((0x40200ULL) << 12).has_value());  // next 2M
}

TEST(Tlb, AlignmentAndRangeValidation) {
    apps::Tlb tlb(2);
    EXPECT_THROW(tlb.insert(0x40001, apps::PageSize::Page2M, 1), std::invalid_argument);
    EXPECT_THROW(tlb.insert(1ULL << 36, apps::PageSize::Page4K, 1), std::invalid_argument);
    EXPECT_THROW(apps::Tlb(0), std::invalid_argument);
}

TEST(Tlb, FifoEviction) {
    apps::Tlb tlb(2);
    tlb.insert(1, apps::PageSize::Page4K, 10);
    tlb.insert(2, apps::PageSize::Page4K, 20);
    tlb.insert(3, apps::PageSize::Page4K, 30);  // evicts vpn=1
    EXPECT_FALSE(tlb.translate(1ULL << 12).has_value());
    EXPECT_TRUE(tlb.translate(2ULL << 12).has_value());
    EXPECT_TRUE(tlb.translate(3ULL << 12).has_value());
}

// ---------------------------------------------------------------------------
// Optimizer + tuner.
// ---------------------------------------------------------------------------

TEST(Optimize, GoldenFindsQuadraticMinimum) {
    const auto r = numeric::minimizeGolden([](double x) { return (x - 1.7) * (x - 1.7); },
                                           0.0, 5.0, 1e-5);
    EXPECT_NEAR(r.x, 1.7, 1e-4);
    EXPECT_NEAR(r.value, 0.0, 1e-8);
    EXPECT_THROW(numeric::minimizeGolden([](double) { return 0.0; }, 2.0, 1.0),
                 std::invalid_argument);
}

TEST(Optimize, GridMinimum) {
    const auto r = numeric::minimizeOnGrid(
        [](double x) { return std::abs(x - 3.0); }, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(r.x, 3.0);
    EXPECT_EQ(r.evaluations, 4);
    EXPECT_THROW(numeric::minimizeOnGrid([](double) { return 0.0; }, {}),
                 std::invalid_argument);
}

TEST(Tuner, SegmentsRespectDelayBudget) {
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 16;
    cfg.rows = 128;
    const auto unconstrained = core::tuneSegments(tech, cfg);
    EXPECT_GT(unconstrained.segments, 1);  // segmentation always saves energy here
    const auto tight = core::tuneSegments(tech, cfg, /*maxDelay=*/250e-12);
    EXPECT_EQ(tight.segments, 1);  // only the flat ML meets 250 ps
    EXPECT_GE(tight.energy, unconstrained.energy);
}

TEST(Tuner, VddTunerReturnsFunctionalOptimum) {
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 32;
    const auto r = core::tuneVddForMinEdp(tech, cfg, 0.8, 1.1);
    EXPECT_GE(r.vdd, 0.8);
    EXPECT_LE(r.vdd, 1.1);
    EXPECT_TRUE(r.metrics.functional);
    EXPECT_GT(r.edp, 0.0);
    // The optimum must not be worse than both bracket endpoints.
    auto t = tech;
    t.vdd = 1.1;
    const auto hi = evaluateArray(t, cfg);
    EXPECT_LE(r.edp, hi.perSearch.total() * hi.searchDelay * 1.001);
}
