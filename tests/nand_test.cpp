// NAND-type FeFET TCAM tests: encodings, full truth table via transient
// simulation, inverted sensing polarity, and NOR-vs-NAND trade-offs.
#include <gtest/gtest.h>

#include "array/energy_model.hpp"
#include "array/montecarlo.hpp"
#include "array/word_sim.hpp"
#include "tcam/cell_builder.hpp"
#include "tcam/write_schedule.hpp"

using namespace fetcam;
using tcam::CellKind;
using tcam::Trit;

TEST(NandCell, EncodingConductsOnMatch) {
    // Stored 1: SL branch conducts (key 1 matches), SLB branch blocks.
    const auto one = tcam::nandEncodeTrit(Trit::One);
    EXPECT_TRUE(one.aEnabled);
    EXPECT_FALSE(one.bEnabled);
    const auto zero = tcam::nandEncodeTrit(Trit::Zero);
    EXPECT_FALSE(zero.aEnabled);
    EXPECT_TRUE(zero.bEnabled);
    const auto x = tcam::nandEncodeTrit(Trit::X);
    EXPECT_TRUE(x.aEnabled);
    EXPECT_TRUE(x.bEnabled);
}

TEST(NandCell, SearchDriveAssertsBothOnMaskedKey) {
    EXPECT_TRUE(tcam::nandSearchDrive(Trit::X).sl);
    EXPECT_TRUE(tcam::nandSearchDrive(Trit::X).slb);
    EXPECT_TRUE(tcam::nandSearchDrive(Trit::One).sl);
    EXPECT_FALSE(tcam::nandSearchDrive(Trit::One).slb);
    EXPECT_FALSE(tcam::nandSearchDrive(Trit::Zero).sl);
    EXPECT_TRUE(tcam::nandSearchDrive(Trit::Zero).slb);
}

TEST(NandCell, NorBuilderRejectsNandKind) {
    spice::Circuit c;
    const tcam::CellPorts ports{c.node("ml"), c.node("sl"), c.node("slb"), c.node("v")};
    EXPECT_THROW(buildSearchCell(c, device::TechCard::cmos45(), CellKind::FeFet2Nand,
                                 Trit::One, ports, "x"),
                 std::invalid_argument);
}

TEST(NandCell, MetadataRegistered) {
    EXPECT_EQ(cellDeviceCount(CellKind::FeFet2Nand).fefets, 2);
    EXPECT_LT(cellAreaF2(CellKind::FeFet2Nand, device::TechCard::cmos45()),
              cellAreaF2(CellKind::FeFet2, device::TechCard::cmos45()));
    EXPECT_TRUE(tcam::isNandKind(CellKind::FeFet2Nand));
    EXPECT_FALSE(tcam::isNandKind(CellKind::FeFet2));
}

// Full truth table at 4 bits through circuit simulation.
struct NandTruthCase {
    Trit stored;
    Trit key;
};

class NandTruthTable : public ::testing::TestWithParam<NandTruthCase> {};

TEST_P(NandTruthTable, DecisionMatchesGoldenModel) {
    const auto [stored, key] = GetParam();
    array::WordSimOptions o;
    o.config.cell = CellKind::FeFet2Nand;
    o.config.wordBits = 4;
    o.stored = tcam::TernaryWord(4, Trit::X);
    o.stored[1] = stored;
    o.key = tcam::TernaryWord(4, Trit::X);
    o.key[1] = key;
    const auto r = simulateWordSearch(o);
    EXPECT_EQ(r.expectedMatch, tritMatches(stored, key));
    EXPECT_EQ(r.matchDetected, r.expectedMatch)
        << "stored=" << static_cast<int>(stored) << " key=" << static_cast<int>(key)
        << " mlAtSense=" << r.mlAtSense;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, NandTruthTable,
    ::testing::Values(NandTruthCase{Trit::Zero, Trit::Zero},
                      NandTruthCase{Trit::Zero, Trit::One},
                      NandTruthCase{Trit::Zero, Trit::X},
                      NandTruthCase{Trit::One, Trit::Zero},
                      NandTruthCase{Trit::One, Trit::One},
                      NandTruthCase{Trit::One, Trit::X},
                      NandTruthCase{Trit::X, Trit::Zero},
                      NandTruthCase{Trit::X, Trit::One},
                      NandTruthCase{Trit::X, Trit::X}));

TEST(NandWord, InvertedMlPolarity) {
    array::WordSimOptions o;
    o.config.cell = CellKind::FeFet2Nand;
    o.config.wordBits = 8;
    o.stored = array::calibrationWord(8);
    o.key = o.stored;
    const auto match = simulateWordSearch(o);
    EXPECT_TRUE(match.matchDetected);
    EXPECT_LT(match.mlAtSense, 0.3);  // match DISCHARGES the chain
    EXPECT_TRUE(match.detectDelay.has_value());

    o.key = array::keyWithMismatches(o.stored, 1);
    const auto mism = simulateWordSearch(o);
    EXPECT_FALSE(mism.matchDetected);
    EXPECT_GT(mism.mlAtSense, 0.8);  // blocked chain holds the precharge
}

TEST(NandWord, MatchDelayGrowsWithWordLength) {
    // The series chain makes discharge quadratic-ish in length — the NAND
    // word-length wall.
    double prev = 0.0;
    for (const int bits : {4, 8, 12}) {
        array::WordSimOptions o;
        o.config.cell = CellKind::FeFet2Nand;
        o.config.wordBits = bits;
        o.stored = array::calibrationWord(bits);
        o.key = o.stored;
        const auto r = simulateWordSearch(o);
        ASSERT_TRUE(r.matchDetected) << bits;
        ASSERT_TRUE(r.detectDelay.has_value());
        EXPECT_GT(*r.detectDelay, prev);
        prev = *r.detectDelay;
    }
}

TEST(NandWord, CheaperThanNorPerSearch) {
    // For short words the NAND organization spends far less ML energy: only
    // the matching chain discharges, and SL loading is similar.
    array::WordSimOptions o;
    o.config.wordBits = 8;
    o.stored = array::calibrationWord(8);
    o.key = array::keyWithMismatches(o.stored, 1);  // typical row: mismatch
    o.config.cell = CellKind::FeFet2;
    const auto nor = simulateWordSearch(o);
    o.config.cell = CellKind::FeFet2Nand;
    const auto nand = simulateWordSearch(o);
    EXPECT_LT(nand.energyMl, nor.energyMl);
}

TEST(NandWord, ArrayModelFunctional) {
    array::ArrayConfig cfg;
    cfg.cell = CellKind::FeFet2Nand;
    cfg.wordBits = 8;
    cfg.rows = 64;
    const auto m = evaluateArray(device::TechCard::cmos45(), cfg);
    EXPECT_TRUE(m.functional);
    EXPECT_GT(m.senseMarginV, 0.3);
    EXPECT_GT(m.searchDelay, 0.0);
}

TEST(NandWord, MonteCarloRunsCleanAtLowSigma) {
    array::MonteCarloSpec spec;
    spec.config.cell = CellKind::FeFet2Nand;
    spec.config.wordBits = 8;
    spec.trials = 5;
    spec.sigmaVt = 0.02;
    spec.sigmaState = 0.03;
    const auto r = runMonteCarlo(spec);
    EXPECT_EQ(r.matchErrors + r.mismatchErrors, 0);
}

TEST(NandWord, WritePathShared) {
    const auto tech = device::TechCard::cmos45();
    const auto w = measureWriteEnergy(CellKind::FeFet2Nand, tech);
    EXPECT_TRUE(w.verified);
    const auto plan = planWordWrite(CellKind::FeFet2Nand, w, 8);
    EXPECT_EQ(plan.pulsePhases, 2);
}
