// Netlist parser tests: SPICE number literals, every element form, error
// reporting, and an end-to-end parse -> simulate check.
#include <gtest/gtest.h>

#include <cmath>

#include "device/fefet.hpp"
#include "device/netlist.hpp"
#include "device/passives.hpp"
#include "device/reram.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"

using namespace fetcam;
using device::parseNetlist;
using device::parseSpiceNumber;

namespace {
const device::TechCard kTech = device::TechCard::cmos45();
}

TEST(SpiceNumber, PlainAndScientific) {
    EXPECT_DOUBLE_EQ(parseSpiceNumber("42"), 42.0);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("-3.5"), -3.5);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("2.5e3"), 2500.0);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("1E-15"), 1e-15);
}

TEST(SpiceNumber, MagnitudeSuffixes) {
    EXPECT_DOUBLE_EQ(parseSpiceNumber("10k"), 10e3);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("100f"), 100e-15);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("3n"), 3e-9);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("4.5meg"), 4.5e6);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("2u"), 2e-6);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("7m"), 7e-3);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("1g"), 1e9);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("100ns"), 100e-9);  // trailing unit ok
    EXPECT_DOUBLE_EQ(parseSpiceNumber("10kohm"), 10e3);
}

TEST(SpiceNumber, Rejections) {
    EXPECT_THROW(parseSpiceNumber(""), std::invalid_argument);
    EXPECT_THROW(parseSpiceNumber("abc"), std::invalid_argument);
    EXPECT_THROW(parseSpiceNumber("1q"), std::invalid_argument);
}

TEST(Netlist, DividerDcSolve) {
    spice::Circuit c;
    const int n = parseNetlist(R"(
* a simple divider
V1 in 0 DC 3.0
R1 in mid 1k
R2 mid gnd 2k   ; bottom leg
)", c, kTech);
    EXPECT_EQ(n, 3);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(c.findNode("mid")), 2.0, 1e-6);
}

TEST(Netlist, PulseAndPwlSources) {
    spice::Circuit c;
    parseNetlist("V1 a 0 PULSE 0 1 1n 0.1n 0.1n 2n\n"
                 "V2 b 0 PWL 0 0 1n 1 2n -1\n"
                 "R1 a 0 1k\nR2 b 0 1k\n", c, kTech);
    spice::TransientSpec spec;
    spec.tstop = 3e-9;
    spec.dtMax = 0.05e-9;
    const auto r = runTransient(c, spec);
    EXPECT_NEAR(r.waveforms.nodeAt(c.findNode("a"), 2e-9), 1.0, 1e-6);
    EXPECT_NEAR(r.waveforms.nodeAt(c.findNode("b"), 0.5e-9), 0.5, 1e-6);
    EXPECT_NEAR(r.waveforms.nodeAt(c.findNode("b"), 2.5e-9), -1.0, 1e-6);
}

TEST(Netlist, MosInverterParsesAndWorks) {
    spice::Circuit c;
    parseNetlist("Vdd vdd 0 DC 1.0\n"
                 "Vin in 0 DC 0.0\n"
                 "MP1 in out vdd PMOS W=2\n"
                 "MN1 in out 0 NMOS W=1\n", c, kTech);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(c.findNode("out")), 1.0, 0.02);
}

TEST(Netlist, FeFetAndFerroAndReram) {
    spice::Circuit c;
    const int n = parseNetlist("F1 g ml 0 P=1\n"
                               "X1 a 0 FERRO AREA=1e-14 P=-0.5\n"
                               "Y1 ml mid RERAM W=1\n", c, kTech);
    EXPECT_EQ(n, 3);
    const auto* fet = dynamic_cast<device::FeFet*>(c.findDevice("F1"));
    ASSERT_NE(fet, nullptr);
    EXPECT_DOUBLE_EQ(fet->pnorm(), 1.0);
    const auto* fe = dynamic_cast<device::FerroCap*>(c.findDevice("X1"));
    ASSERT_NE(fe, nullptr);
    EXPECT_DOUBLE_EQ(fe->pnorm(), -0.5);
    const auto* ram = dynamic_cast<device::Reram*>(c.findDevice("Y1"));
    ASSERT_NE(ram, nullptr);
    EXPECT_DOUBLE_EQ(ram->state(), 1.0);
}

TEST(Netlist, CurrentSource) {
    spice::Circuit c;
    parseNetlist("I1 0 n1 DC 1m\nR1 n1 0 1k\n", c, kTech);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(c.findNode("n1")), 1.0, 1e-6);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
    spice::Circuit c;
    try {
        parseNetlist("R1 a 0 1k\nQ9 x y z\n", c, kTech);
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Netlist, RejectsMalformedElements) {
    spice::Circuit c;
    EXPECT_THROW(parseNetlist("R1 a 0\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("V1 a 0 DC\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("V1 a 0 SINE 1 2\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("V1 a 0 PWL 0 0 1n\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("M1 g d s XMOS\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("M1 g d s NMOS Z=2\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("F1 g d s P=2\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("Y1 a b RERAM W=3\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("X1 a b WRONG\n", c, kTech), std::invalid_argument);
}

TEST(Netlist, CommentsAndBlanksIgnored) {
    spice::Circuit c;
    EXPECT_EQ(parseNetlist("* header comment\n\n; another\nR1 a 0 1k * trailing\n", c,
                           kTech), 1);
}

TEST(Netlist, DescribeCircuitListsEverything) {
    spice::Circuit c;
    parseNetlist("V1 in 0 DC 1\nR1 in out 10k\nC1 out 0 5f\nF1 in out 0 P=1\n", c, kTech);
    const auto desc = device::describeCircuit(c);
    EXPECT_NE(desc.find("V1"), std::string::npos);
    EXPECT_NE(desc.find("10000"), std::string::npos);
    EXPECT_NE(desc.find("FeFET"), std::string::npos);
    EXPECT_NE(desc.find("4 devices"), std::string::npos);
}

TEST(Netlist, EndToEndRcFromText) {
    // Full loop: parse -> transient -> analytic check.
    spice::Circuit c;
    parseNetlist("V1 in 0 PULSE 0 1 0 1p 1p 1\nR1 in out 10k\nC1 out 0 100f\n", c, kTech);
    spice::TransientSpec spec;
    spec.tstop = 5e-9;
    spec.dtMax = 20e-12;
    const auto r = runTransient(c, spec);
    EXPECT_NEAR(r.waveforms.nodeAt(c.findNode("out"), 1e-9), 1.0 - std::exp(-1.0), 0.01);
}
