// Unit and property tests for the numeric substrate: dense/sparse LU,
// interpolation, statistics, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numeric/dense_matrix.hpp"
#include "numeric/interp.hpp"
#include "numeric/sparse_matrix.hpp"
#include "numeric/stats.hpp"

namespace num = fetcam::numeric;

namespace {

num::DenseMatrix randomDiagDominant(num::Rng& rng, std::size_t n) {
    num::DenseMatrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        double rowSum = 0.0;
        for (std::size_t c = 0; c < n; ++c) {
            if (r == c) continue;
            a(r, c) = rng.uniform(-1.0, 1.0);
            rowSum += std::abs(a(r, c));
        }
        a(r, r) = rowSum + rng.uniform(0.5, 2.0);
    }
    return a;
}

}  // namespace

TEST(DenseMatrix, IdentitySolve) {
    const auto eye = num::DenseMatrix::identity(4);
    const std::vector<double> b{1.0, -2.0, 3.0, 0.5};
    EXPECT_EQ(num::solveDense(eye, b), b);
}

TEST(DenseMatrix, Known2x2) {
    num::DenseMatrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto x = num::solveDense(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingHandlesZeroDiagonal) {
    num::DenseMatrix a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    const auto x = num::solveDense(a, {3.0, 4.0});
    EXPECT_NEAR(x[0], 4.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseMatrix, SingularThrows) {
    num::DenseMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW(num::DenseLu{a}, std::runtime_error);
}

TEST(DenseMatrix, DeterminantOfTriangular) {
    num::DenseMatrix a(3, 3);
    a(0, 0) = 2.0;
    a(1, 1) = 3.0;
    a(2, 2) = -4.0;
    a(0, 1) = 7.0;
    a(0, 2) = -1.0;
    a(1, 2) = 5.0;
    num::DenseLu lu(a);
    EXPECT_NEAR(lu.determinant(), -24.0, 1e-12);
}

// Property: random diagonally dominant systems solve to small residual.
class DenseLuProperty : public ::testing::TestWithParam<int> {};

TEST_P(DenseLuProperty, ResidualSmall) {
    num::Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = static_cast<std::size_t>(3 + GetParam() * 7 % 40);
    const auto a = randomDiagDominant(rng, n);
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-5.0, 5.0);
    const auto x = num::solveDense(a, b);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, DenseLuProperty, ::testing::Range(0, 12));

TEST(SparseMatrix, TripletDuplicatesSum) {
    num::TripletList t(3, 3);
    t.add(0, 0, 1.0);
    t.add(0, 0, 2.0);
    t.add(2, 1, -1.0);
    const auto m = num::SparseMatrixCsc::fromTriplets(t);
    EXPECT_EQ(m.nonZeros(), 2);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m.at(2, 1), -1.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
    num::Rng rng(7);
    const int n = 20;
    num::TripletList t(n, n);
    num::DenseMatrix d(n, n);
    for (int k = 0; k < 80; ++k) {
        const int r = rng.uniformInt(0, n - 1);
        const int c = rng.uniformInt(0, n - 1);
        const double v = rng.uniform(-2.0, 2.0);
        t.add(r, c, v);
        d(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
    }
    const auto s = num::SparseMatrixCsc::fromTriplets(t);
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    const auto ys = s.multiply(x);
    const auto yd = d.multiply(x);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SparseLu, SolvesIdentity) {
    num::TripletList t(3, 3);
    for (int i = 0; i < 3; ++i) t.add(i, i, 1.0);
    num::SparseLu lu(num::SparseMatrixCsc::fromTriplets(t));
    const auto x = lu.solve({1.0, 2.0, 3.0});
    EXPECT_NEAR(x[0], 1.0, 1e-14);
    EXPECT_NEAR(x[1], 2.0, 1e-14);
    EXPECT_NEAR(x[2], 3.0, 1e-14);
}

TEST(SparseLu, RequiresPivoting) {
    // Zero diagonal forces off-diagonal pivoting.
    num::TripletList t(2, 2);
    t.add(0, 1, 1.0);
    t.add(1, 0, 2.0);
    num::SparseLu lu(num::SparseMatrixCsc::fromTriplets(t));
    const auto x = lu.solve({3.0, 8.0});
    EXPECT_NEAR(x[0], 4.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLu, SingularThrows) {
    num::TripletList t(2, 2);
    t.add(0, 0, 1.0);
    t.add(1, 0, 1.0);  // column 1 empty -> singular
    EXPECT_THROW(num::SparseLu{num::SparseMatrixCsc::fromTriplets(t)}, std::runtime_error);
}

// Property: sparse LU agrees with dense LU on random sprinkled systems.
class SparseLuProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuProperty, MatchesDense) {
    num::Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
    const int n = 5 + GetParam() * 11 % 60;
    num::TripletList t(n, n);
    num::DenseMatrix d(n, n);
    // Diagonally dominant sparse pattern (MNA-like).
    for (int i = 0; i < n; ++i) {
        double offSum = 0.0;
        const int fanout = rng.uniformInt(1, 4);
        for (int k = 0; k < fanout; ++k) {
            const int j = rng.uniformInt(0, n - 1);
            if (j == i) continue;
            const double v = rng.uniform(-1.0, 1.0);
            t.add(i, j, v);
            d(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += v;
            offSum += std::abs(v);
        }
        const double diag = offSum + rng.uniform(0.5, 1.5);
        t.add(i, i, diag);
        d(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += diag;
    }
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-3.0, 3.0);

    num::SparseLu slu(num::SparseMatrixCsc::fromTriplets(t));
    const auto xs = slu.solve(b);
    const auto xd = num::solveDense(d, b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[static_cast<std::size_t>(i)],
                                            xd[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Random, SparseLuProperty, ::testing::Range(0, 16));

namespace {

/// Random diagonally dominant MNA-like matrix, same triplet list reusable
/// for value perturbation (identical pattern, different values).
num::TripletList mnaLikeTriplets(int n, num::Rng& rng) {
    num::TripletList t(n, n);
    for (int i = 0; i < n; ++i) {
        double offSum = 0.0;
        const int fanout = rng.uniformInt(1, 4);
        for (int k = 0; k < fanout; ++k) {
            const int j = rng.uniformInt(0, n - 1);
            if (j == i) continue;
            const double v = rng.uniform(-1.0, 1.0);
            t.add(i, j, v);
            offSum += std::abs(v);
        }
        t.add(i, i, offSum + rng.uniform(0.5, 1.5));
    }
    return t;
}

}  // namespace

TEST(SparseMatrix, FromTripletsReportsStampSlots) {
    num::TripletList t(3, 3);
    t.add(2, 2, 5.0);
    t.add(0, 0, 1.0);
    t.add(0, 0, 2.0);  // duplicate: same slot as the previous entry
    t.add(1, 0, -1.0);
    std::vector<int> slots;
    const auto m = num::SparseMatrixCsc::fromTriplets(t, &slots);
    ASSERT_EQ(slots.size(), 4u);
    // Replaying each entry into values()[slot] must reproduce the matrix.
    auto values = m.values();
    std::fill(values.begin(), values.end(), 0.0);
    const auto& es = t.entries();
    for (std::size_t i = 0; i < es.size(); ++i)
        values[static_cast<std::size_t>(slots[i])] += es[i].value;
    EXPECT_EQ(values, m.values());
    EXPECT_EQ(slots[1], slots[2]);  // the duplicate shares its slot
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
}

// The core symbolic-reuse guarantee: refactoring with perturbed values (same
// pattern) must match a from-scratch factorization's solution to 1e-12.
TEST(SparseLu, RefactorMatchesFreshFactor) {
    for (int round = 0; round < 8; ++round) {
        num::Rng rng(500 + static_cast<std::uint64_t>(round));
        const int n = 120;
        auto t = mnaLikeTriplets(n, rng);
        num::SparseLu lu(num::SparseMatrixCsc::fromTriplets(t));

        for (int perturb = 0; perturb < 4; ++perturb) {
            // New values, identical pattern (rebuild from scaled entries).
            num::TripletList t2(n, n);
            for (const auto& e : t.entries())
                t2.add(e.row, e.col, e.value * rng.uniform(0.5, 1.5));
            const auto m2 = num::SparseMatrixCsc::fromTriplets(t2);
            std::vector<double> b(static_cast<std::size_t>(n));
            for (auto& v : b) v = rng.uniform(-3.0, 3.0);

            ASSERT_TRUE(lu.refactor(m2));
            const auto xRefactor = lu.solve(b);
            const auto xFresh = num::SparseLu(m2).solve(b);
            for (int i = 0; i < n; ++i)
                ASSERT_NEAR(xRefactor[static_cast<std::size_t>(i)],
                            xFresh[static_cast<std::size_t>(i)], 1e-12);
        }
    }
}

TEST(SparseLu, RefactorRejectsDegradedPivotThenFactorRecovers) {
    // Factor a diagonally dominant 2x2, then swap in values whose diagonal
    // collapses to zero: the cached no-pivoting order is now unusable.
    num::TripletList t(2, 2);
    t.add(0, 0, 4.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(1, 1, 4.0);
    auto m = num::SparseMatrixCsc::fromTriplets(t);
    num::SparseLu lu(m);
    ASSERT_TRUE(lu.factored());

    auto& v = m.values();  // CSC column-major: (0,0) (1,0) (0,1) (1,1)
    v = {0.0, 2.0, 2.0, 0.0};  // anti-diagonal: needs off-diagonal pivots
    EXPECT_FALSE(lu.refactor(m));
    EXPECT_FALSE(lu.factored());

    // The fallback path: a fresh pivoting factorization handles it.
    lu.factor(m);
    ASSERT_TRUE(lu.factored());
    const auto x = lu.solve({6.0, 4.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);

    // And refactor works again after the recovery factor.
    ASSERT_TRUE(lu.refactor(m));
    const auto x2 = lu.solve({6.0, 4.0});
    EXPECT_NEAR(x2[0], 2.0, 1e-12);
    EXPECT_NEAR(x2[1], 3.0, 1e-12);
}

TEST(SparseLu, RefactorRejectsPatternMismatch) {
    num::TripletList t(2, 2);
    t.add(0, 0, 1.0);
    t.add(1, 1, 1.0);
    num::SparseLu lu(num::SparseMatrixCsc::fromTriplets(t));
    t.add(0, 1, 0.5);  // different nonzero count
    EXPECT_FALSE(lu.refactor(num::SparseMatrixCsc::fromTriplets(t)));
}

TEST(Rng, ForStreamIsOrderIndependent) {
    // Stream k depends only on (seed, k) — not on how many streams were made.
    auto a = num::Rng::forStream(42, 7);
    num::Rng::forStream(42, 3);  // unrelated stream creation in between
    auto b = num::Rng::forStream(42, 7);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());

    // Distinct streams and distinct seeds diverge.
    auto c = num::Rng::forStream(42, 8);
    auto d = num::Rng::forStream(43, 7);
    auto e = num::Rng::forStream(42, 7);
    EXPECT_NE(e.nextU64(), c.nextU64());
    EXPECT_NE(e.nextU64(), d.nextU64());
}

TEST(Interp, PiecewiseLinearBasics) {
    num::PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
    EXPECT_DOUBLE_EQ(f(-1.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(f(0.5), 1.0);
    EXPECT_DOUBLE_EQ(f(1.0), 2.0);
    EXPECT_DOUBLE_EQ(f(2.0), 1.0);
    EXPECT_DOUBLE_EQ(f(5.0), 0.0);    // clamped
    EXPECT_DOUBLE_EQ(f.slope(0.5), 2.0);
    EXPECT_DOUBLE_EQ(f.slope(2.0), -1.0);
}

TEST(Interp, RejectsUnsortedX) {
    EXPECT_THROW(num::PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Interp, NanQueryDoesNotIndexPastTheEnd) {
    // Regression: NaN compares false against every knot, so upper_bound
    // returned end() and the interpolation read one past the y vector. A NaN
    // query now propagates NaN (operator()) / a zero slope instead of UB.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    num::PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
    EXPECT_TRUE(std::isnan(f(nan)));
    EXPECT_DOUBLE_EQ(f.slope(nan), 0.0);
}

TEST(Interp, RejectsNanKnots) {
    // A NaN knot passes the pairwise strictly-increasing check (NaN
    // comparisons are all false) and then breaks upper_bound's partition
    // precondition; the constructor must reject it up front.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(num::PiecewiseLinear({0.0, nan, 2.0}, {1.0, 2.0, 3.0}),
                 std::invalid_argument);
    EXPECT_THROW(num::PiecewiseLinear({nan}, {1.0}), std::invalid_argument);
    EXPECT_THROW(num::PiecewiseLinear({0.0, std::numeric_limits<double>::infinity()},
                                      {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Interp, ExactKnotAndBoundaryQueries) {
    num::PiecewiseLinear f({0.0, 1.0, 3.0}, {0.5, 2.0, -1.0});
    // Exact knot hits land on the stored value, not an interpolation of a
    // zero-width interval.
    EXPECT_DOUBLE_EQ(f(0.0), 0.5);
    EXPECT_DOUBLE_EQ(f(1.0), 2.0);
    EXPECT_DOUBLE_EQ(f(3.0), -1.0);
    // Just inside the last interval still interpolates finitely.
    const double x = std::nextafter(3.0, 0.0);
    EXPECT_TRUE(std::isfinite(f(x)));
    EXPECT_NEAR(f(x), -1.0, 1e-9);
    EXPECT_DOUBLE_EQ(f.slope(x), -1.5);
    // Boundary slopes are clamped to zero outside the knot span.
    EXPECT_DOUBLE_EQ(f.slope(3.0), 0.0);
    EXPECT_DOUBLE_EQ(f.slope(-1.0), 0.0);

    // Single-knot tables degenerate to a constant.
    num::PiecewiseLinear one({2.0}, {7.0});
    EXPECT_DOUBLE_EQ(one(-10.0), 7.0);
    EXPECT_DOUBLE_EQ(one(2.0), 7.0);
    EXPECT_DOUBLE_EQ(one(10.0), 7.0);
    EXPECT_DOUBLE_EQ(one.slope(2.0), 0.0);
}

TEST(Interp, FirstCrossing) {
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys{0.0, 1.0, 0.0, 1.0};
    const auto rise = num::firstCrossing(xs, ys, 0.5, /*rising=*/true);
    ASSERT_TRUE(rise.has_value());
    EXPECT_NEAR(*rise, 0.5, 1e-12);
    const auto fall = num::firstCrossing(xs, ys, 0.5, /*rising=*/false);
    ASSERT_TRUE(fall.has_value());
    EXPECT_NEAR(*fall, 1.5, 1e-12);
    const auto later = num::firstCrossing(xs, ys, 0.5, /*rising=*/true, 1.0);
    ASSERT_TRUE(later.has_value());
    EXPECT_NEAR(*later, 2.5, 1e-12);
    EXPECT_FALSE(num::firstCrossing(xs, ys, 2.0, true).has_value());
}

TEST(Interp, Trapezoid) {
    EXPECT_NEAR(num::trapezoid({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0}), 1.0, 1e-12);
}

TEST(Stats, RunningStatsMoments) {
    num::RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Percentile) {
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(num::percentile(v, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(num::percentile(v, 100.0), 4.0, 1e-12);
    EXPECT_NEAR(num::percentile(v, 50.0), 2.5, 1e-12);
    EXPECT_THROW(num::percentile({}, 50.0), std::invalid_argument);
}

TEST(Rng, DeterministicAndBounded) {
    num::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
    num::Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const int k = r.uniformInt(-3, 3);
        EXPECT_GE(k, -3);
        EXPECT_LE(k, 3);
    }
}

TEST(Rng, NormalMoments) {
    num::Rng r(99);
    num::RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(r.normal(1.5, 2.0));
    EXPECT_NEAR(s.mean(), 1.5, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}
