// Tests for the extended element palette (inductor, VCVS, VCCS) and netlist
// subcircuit hierarchy.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "device/extras.hpp"
#include "device/netlist.hpp"
#include "device/passives.hpp"
#include "device/sources.hpp"
#include "spice/ac.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"

using namespace fetcam;
using namespace fetcam::device;

namespace {
const TechCard kTech = TechCard::cmos45();
}

TEST(Inductor, DcShort) {
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto mid = c.node("mid");
    c.add<VoltageSource>("V1", c, vin, spice::kGround, SourceWave::dc(2.0));
    c.add<Resistor>("R1", vin, mid, 1000.0);
    c.add<Inductor>("L1", c, mid, spice::kGround, 1e-9);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(mid), 0.0, 1e-6);  // shorted to ground
}

TEST(Inductor, RlRiseMatchesAnalytic) {
    // L/R time constant: i(t) = (V/R)(1 - exp(-t R/L)); node voltage across L
    // decays from V to 0.
    const double r = 1e3, l = 1e-6, tau = l / r;
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto mid = c.node("mid");
    c.add<VoltageSource>("V1", c, vin, spice::kGround,
                         SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    c.add<Resistor>("R1", vin, mid, r);
    c.add<Inductor>("L1", c, mid, spice::kGround, l);
    spice::TransientSpec spec;
    spec.tstop = 5.0 * tau;
    spec.dtMax = tau / 50.0;
    const auto res = runTransient(c, spec);
    EXPECT_NEAR(res.waveforms.nodeAt(mid, tau), std::exp(-1.0), 0.02);
    EXPECT_NEAR(res.waveforms.nodeAt(mid, 3.0 * tau), std::exp(-3.0), 0.02);
}

TEST(Inductor, LcResonanceFrequency) {
    // Series RLC ring-down: oscillation at f0 ~ 1/(2*pi*sqrt(LC)).
    const double l = 1e-9, cap = 1e-12;  // f0 ~ 5.03 GHz
    const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(l * cap));
    spice::Circuit c;
    const auto n1 = c.node("n1");
    const auto n2 = c.node("n2");
    c.add<Resistor>("R1", n1, n2, 5.0);  // lightly damped
    c.add<Inductor>("L1", c, n2, spice::kGround, l);
    c.add<Capacitor>("C1", n1, spice::kGround, cap);
    spice::TransientSpec spec;
    spec.tstop = 4.0 / f0;
    spec.dtMax = 1.0 / f0 / 200.0;
    spec.initialConditions = {{n1, 1.0}};
    const auto res = runTransient(c, spec);
    // Count zero crossings of v(n1): two per period.
    const auto t = res.waveforms.time();
    const auto v = res.waveforms.node(n1);
    int crossings = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        if (v[i - 1] * v[i] < 0.0) ++crossings;
    const double measuredF = crossings / 2.0 / spec.tstop;
    EXPECT_NEAR(measuredF, f0, 0.1 * f0);
}

TEST(Inductor, AcImpedanceRises) {
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    auto& vs = c.add<VoltageSource>("V1", c, vin, spice::kGround, SourceWave::dc(0.0));
    vs.setAcMagnitude(1.0);
    c.add<Resistor>("R1", vin, out, 1e3);
    c.add<Inductor>("L1", c, out, spice::kGround, 1e-6);
    const auto op = solveDcOp(c);
    // High-pass: |v(out)| = wL/sqrt(R^2 + (wL)^2).
    const auto res = runAc(c, op, spice::AcSpec::logSweep(1e7, 1e10, 4));
    for (std::size_t i = 0; i < res.points(); ++i) {
        const double wl = 2.0 * std::numbers::pi * res.frequencies()[i] * 1e-6;
        const double expected = wl / std::sqrt(1e6 + wl * wl);
        EXPECT_NEAR(std::abs(res.node(i, out)), expected, 0.02 * expected + 1e-4);
    }
    EXPECT_THROW(Inductor("Lbad", c, out, spice::kGround, -1.0), std::invalid_argument);
}

TEST(Vcvs, AmplifiesDc) {
    spice::Circuit c;
    const auto nin = c.node("in");
    const auto nout = c.node("out");
    c.add<VoltageSource>("V1", c, nin, spice::kGround, SourceWave::dc(0.25));
    c.add<Vcvs>("E1", c, nout, spice::kGround, nin, spice::kGround, 4.0);
    c.add<Resistor>("RL", nout, spice::kGround, 1e3);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(nout), 1.0, 1e-6);
}

TEST(Vccs, SinksProportionalCurrent) {
    spice::Circuit c;
    const auto nctl = c.node("ctl");
    const auto nout = c.node("out");
    c.add<VoltageSource>("V1", c, nctl, spice::kGround, SourceWave::dc(0.5));
    c.add<VoltageSource>("V2", c, c.node("vdd"), spice::kGround, SourceWave::dc(1.0));
    c.add<Resistor>("RL", c.node("vdd"), nout, 1e3);
    // gm = 1 mS: 0.5 mA pulled from out to ground -> 0.5 V drop across RL.
    c.add<Vccs>("G1", nout, spice::kGround, nctl, spice::kGround, 1e-3);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(nout), 0.5, 1e-6);
}

TEST(Subckt, ExpandsAndConnectsPorts) {
    spice::Circuit c;
    const int n = parseNetlist(R"(
.SUBCKT divider top out
R1 top out 1k
R2 out 0 1k
.ENDS
V1 in 0 DC 2.0
Xd1 in mid divider
Xd2 mid mid2 divider
)", c, kTech);
    EXPECT_EQ(n, 7);  // V1 + 2 instantiations + 2x2 resistors... X lines count too
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    // Divider loaded by the second instance's 2k leg: 2 * (1k||2k)/(1k + 1k||2k).
    EXPECT_NEAR(op.v(c.findNode("mid")), 0.8, 1e-4);
    // Internal nodes are namespaced per instance.
    EXPECT_TRUE(c.hasNode("mid"));
    EXPECT_NE(c.findDevice("Xd1.R1"), nullptr);
    EXPECT_NE(c.findDevice("Xd2.R2"), nullptr);
}

TEST(Subckt, NestedInstantiation) {
    spice::Circuit c;
    parseNetlist(R"(
.SUBCKT leg a b
R1 a b 2k
.ENDS
.SUBCKT divider top out
Xup top out leg
Xdn out 0 leg
.ENDS
V1 in 0 DC 1.0
X1 in mid divider
)", c, kTech);
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(c.findNode("mid")), 0.5, 1e-5);
    EXPECT_NE(c.findDevice("X1.Xup.R1"), nullptr);
}

TEST(Subckt, InternalNodesAreIsolated) {
    spice::Circuit c;
    parseNetlist(R"(
.SUBCKT cellpair a
R1 a inner 1k
R2 inner 0 1k
.ENDS
V1 in 0 DC 1.0
Xa in cellpair
Xb in cellpair
)", c, kTech);
    // Each instance gets its own "inner": two distinct 2k legs in parallel.
    const auto op = solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_TRUE(c.hasNode("Xa.inner"));
    EXPECT_TRUE(c.hasNode("Xb.inner"));
    EXPECT_NE(c.findNode("Xa.inner"), c.findNode("Xb.inner"));
}

TEST(Subckt, Errors) {
    spice::Circuit c;
    EXPECT_THROW(parseNetlist("X1 a b nosuch\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist(".SUBCKT s a\nR1 a 0 1k\n", c, kTech),
                 std::invalid_argument);  // unterminated
    EXPECT_THROW(parseNetlist(".ENDS\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist(".SUBCKT s a\nR1 a 0 1k\n.ENDS\nX1 a b s\n", c, kTech),
                 std::invalid_argument);  // wrong port count
    EXPECT_THROW(parseNetlist(".OPTIONS foo\n", c, kTech), std::invalid_argument);
}

TEST(Netlist, NewElementLetters) {
    spice::Circuit c;
    const int n = parseNetlist("L1 a b 1n\nE1 x 0 a b 2.5\nG1 y 0 a b 1m\nR1 y 0 1k\n"
                               "R2 x 0 1k\nR3 b 0 1k\nV1 a 0 DC 1\n", c, kTech);
    EXPECT_EQ(n, 7);
    EXPECT_NE(dynamic_cast<Inductor*>(c.findDevice("L1")), nullptr);
    EXPECT_NE(dynamic_cast<Vcvs*>(c.findDevice("E1")), nullptr);
    EXPECT_NE(dynamic_cast<Vccs*>(c.findDevice("G1")), nullptr);
    EXPECT_THROW(parseNetlist("L1 a b\n", c, kTech), std::invalid_argument);
    EXPECT_THROW(parseNetlist("E1 a 0 b\n", c, kTech), std::invalid_argument);
}
