// Parallel sweep engine tests: parallelFor semantics, and the determinism
// contract of the sweeps built on it — Monte Carlo with jobs=N must be
// bit-for-bit identical to jobs=1 (including failure accounting under an
// installed FaultPlan), and searchMany must equal a sequential search loop.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>
#include <vector>

#include "array/montecarlo.hpp"
#include "core/tcam_macro.hpp"
#include "numeric/parallel.hpp"
#include "recover/fault_injection.hpp"

using namespace fetcam;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (const int jobs : {1, 2, 4, 7}) {
        const int count = 103;
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
        numeric::parallelFor(jobs, count, [&](int i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, ZeroAndNegativeCountsAreNoops) {
    int calls = 0;
    numeric::parallelFor(4, 0, [&](int) { ++calls; });
    numeric::parallelFor(4, -3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
    for (const int jobs : {1, 3, 8}) {
        try {
            numeric::parallelFor(jobs, 64, [&](int i) {
                if (i == 11 || i == 42) throw std::runtime_error("idx " + std::to_string(i));
            });
            FAIL() << "expected runtime_error (jobs=" << jobs << ")";
        } catch (const std::runtime_error& e) {
            // Same failure a sequential loop would have surfaced first.
            EXPECT_STREQ(e.what(), "idx 11");
        }
    }
}

TEST(ParallelFor, NestedCallsRunInline) {
    std::vector<std::atomic<int>> hits(16 * 8);
    numeric::parallelFor(4, 16, [&](int outer) {
        // The inner call must not spawn a team inside a worker; it runs
        // inline in index order on the calling worker.
        numeric::parallelFor(4, 8, [&](int inner) {
            hits[static_cast<std::size_t>(outer * 8 + inner)].fetch_add(1);
        });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ResolveJobsSemantics) {
    const int saved = numeric::defaultJobs();
    numeric::setDefaultJobs(3);
    EXPECT_EQ(numeric::resolveJobs(0), 3);
    EXPECT_EQ(numeric::resolveJobs(5), 5);
    EXPECT_EQ(numeric::resolveJobs(-1), numeric::hardwareConcurrency());
    numeric::setDefaultJobs(saved);
    EXPECT_GE(numeric::hardwareConcurrency(), 1);
}

TEST(ParallelFor, ParseJobsSharedSemantics) {
    // The one --jobs parser every CLI/bench shares.
    EXPECT_EQ(numeric::parseJobs("4"), 4);
    EXPECT_EQ(numeric::parseJobs("1"), 1);
    // 0 and negatives mean "all hardware threads".
    EXPECT_EQ(numeric::parseJobs("0"), numeric::hardwareConcurrency());
    EXPECT_EQ(numeric::parseJobs("-2"), numeric::hardwareConcurrency());
    // Oversubscription clamps to the sanity ceiling instead of spawning an
    // absurd team.
    EXPECT_EQ(numeric::parseJobs("99999"), numeric::kMaxJobs);
    // Non-integers are rejected outright, not silently truncated the way a
    // bare atoi would ("4k" -> 4).
    EXPECT_THROW(numeric::parseJobs("abc"), std::invalid_argument);
    EXPECT_THROW(numeric::parseJobs("4k"), std::invalid_argument);
    EXPECT_THROW(numeric::parseJobs("1e9"), std::invalid_argument);
    EXPECT_THROW(numeric::parseJobs(""), std::invalid_argument);
    EXPECT_THROW(numeric::parseJobs("2.5"), std::invalid_argument);
}

namespace {

array::MonteCarloSpec mcSpec(int trials = 6) {
    array::MonteCarloSpec spec;
    spec.config.cell = tcam::CellKind::FeFet2;
    spec.config.wordBits = 4;
    spec.trials = trials;
    spec.seed = 21;
    spec.sigmaVt = 0.04;
    spec.sigmaState = 0.08;
    return spec;
}

void expectBitIdentical(const array::MonteCarloResult& a,
                        const array::MonteCarloResult& b) {
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completedTrials, b.completedTrials);
    EXPECT_EQ(a.matchErrors, b.matchErrors);
    EXPECT_EQ(a.mismatchErrors, b.mismatchErrors);
    EXPECT_EQ(a.failedTrials, b.failedTrials);
    EXPECT_EQ(a.failureReasons, b.failureReasons);
    // RunningStats are accumulated in trial order after the join, so every
    // derived moment must match exactly, not approximately.
    EXPECT_EQ(a.mlMatch.count(), b.mlMatch.count());
    EXPECT_EQ(a.mlMatch.mean(), b.mlMatch.mean());
    EXPECT_EQ(a.mlMatch.stddev(), b.mlMatch.stddev());
    EXPECT_EQ(a.mlMatch.min(), b.mlMatch.min());
    EXPECT_EQ(a.mlMatch.max(), b.mlMatch.max());
    EXPECT_EQ(a.mlMismatch.count(), b.mlMismatch.count());
    EXPECT_EQ(a.mlMismatch.mean(), b.mlMismatch.mean());
    EXPECT_EQ(a.mlMismatch.stddev(), b.mlMismatch.stddev());
    EXPECT_EQ(a.mlMismatch.min(), b.mlMismatch.min());
    EXPECT_EQ(a.mlMismatch.max(), b.mlMismatch.max());
}

}  // namespace

TEST(ParallelMonteCarlo, JobsDoNotChangeResults) {
    auto spec = mcSpec();
    spec.jobs = 1;
    const auto serial = array::runMonteCarlo(spec);
    ASSERT_EQ(serial.completedTrials, spec.trials);
    for (const int jobs : {2, 4, 8}) {
        spec.jobs = jobs;
        expectBitIdentical(serial, array::runMonteCarlo(spec));
    }
}

TEST(ParallelMonteCarlo, FaultPlanAccountingMatchesAcrossJobs) {
    // Singular stamp live for a window of each trial's solves: some trials
    // fail, and both the result's failure accounting and the parent plan's
    // counters must be schedule-independent.
    auto run = [&](int jobs) {
        recover::FaultPlan plan;
        plan.add({recover::FaultKind::SingularStamp, 0,
                  std::numeric_limits<long long>::max(), 1});
        recover::ScopedFaultPlan guard(plan);
        auto spec = mcSpec(4);
        spec.jobs = jobs;
        const auto r = array::runMonteCarlo(spec);
        return std::tuple<array::MonteCarloResult, long long, long long>(
            r, plan.solvesSeen(), plan.injectionCount());
    };
    const auto [r1, solves1, inj1] = run(1);
    EXPECT_EQ(r1.failedTrials, 4);
    EXPECT_GT(inj1, 0);
    for (const int jobs : {2, 4}) {
        const auto [rN, solvesN, injN] = run(jobs);
        expectBitIdentical(r1, rN);
        EXPECT_EQ(solves1, solvesN);
        EXPECT_EQ(inj1, injN);
    }
}

TEST(ParallelMonteCarlo, StrictModeThrowsSameErrorForAnyJobs) {
    recover::FaultPlan plan;
    plan.add({recover::FaultKind::SingularStamp, 0,
              std::numeric_limits<long long>::max(), 1});
    recover::ScopedFaultPlan guard(plan);
    auto spec = mcSpec(4);
    spec.onFailure = recover::FailurePolicy::Strict;
    for (const int jobs : {1, 4}) {
        spec.jobs = jobs;
        try {
            array::runMonteCarlo(spec);
            FAIL() << "expected SimError (jobs=" << jobs << ")";
        } catch (const recover::SimError& e) {
            EXPECT_EQ(e.reason(), recover::SimErrorReason::SingularMatrix);
        }
    }
}

TEST(ParallelSearch, SearchManyMatchesSequentialSearch) {
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 8;
    core::TcamMacro a(device::TechCard::cmos45(), cfg, 8);
    core::TcamMacro b(device::TechCard::cmos45(), cfg, 8);
    for (const char* w : {"1010XXXX", "10100000", "XXXXXXXX", "01010101"}) {
        a.write(tcam::TernaryWord::fromString(w));
        b.write(tcam::TernaryWord::fromString(w));
    }
    std::vector<tcam::TernaryWord> keys;
    for (const char* k : {"10100000", "10101111", "01010101", "00000000",
                          "11111111", "10100001"})
        keys.push_back(tcam::TernaryWord::fromString(k));

    std::vector<std::optional<int>> expected;
    for (const auto& k : keys) expected.push_back(a.search(k));

    const auto got = b.searchMany(keys, /*jobs=*/4);
    EXPECT_EQ(got, expected);
    // Identical accounting: N searchMany keys cost the same as N searches.
    EXPECT_EQ(a.stats().searches, b.stats().searches);
    EXPECT_EQ(a.stats().hits, b.stats().hits);
    EXPECT_DOUBLE_EQ(a.stats().searchEnergy, b.stats().searchEnergy);
}

TEST(ParallelSearch, SearchManyValidatesAllKeysUpFront) {
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 8;
    core::TcamMacro macro(device::TechCard::cmos45(), cfg, 8);
    macro.write(tcam::TernaryWord::fromString("00000000"));
    const auto before = macro.stats().searches;
    std::vector<tcam::TernaryWord> keys = {tcam::TernaryWord::fromString("00000000"),
                                           tcam::TernaryWord::fromString("00")};
    EXPECT_THROW(macro.searchMany(keys), recover::SimError);
    EXPECT_EQ(macro.stats().searches, before);  // nothing charged on reject
}
