// Differential tests for the pluggable functional-match backends.
//
// The contract under test: every backend is bit-identical to a naive
// reference built directly on TernaryWord::matches / mismatchCount over the
// stored entries. The fuzz sweeps widths across machine-word boundaries
// (1..256, deliberately including non-multiples of 64), row counts beyond
// one 64-row block, all-X rows, empty slots, keys with X trits, and random
// [begin, end) sub-ranges — everywhere the bit-plane partial-block masking
// could go wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "numeric/stats.hpp"
#include "recover/sim_error.hpp"
#include "serve/char_cache.hpp"
#include "serve/match_backend.hpp"
#include "serve/query_engine.hpp"

using namespace fetcam;

namespace {

tcam::TernaryWord randomWord(numeric::Rng& rng, int bits, double xDensity) {
    tcam::TernaryWord w(static_cast<std::size_t>(bits));
    for (int b = 0; b < bits; ++b)
        w[static_cast<std::size_t>(b)] =
            rng.uniform() < xDensity
                ? tcam::Trit::X
                : (rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero);
    return w;
}

/// The trusted reference: a plain row-major table queried through the
/// public TernaryWord operations, no backend machinery involved.
struct NaiveTable {
    std::vector<std::optional<tcam::TernaryWord>> rows;

    std::int64_t findFirst(std::int64_t begin, std::int64_t end,
                           const tcam::TernaryWord& key) const {
        for (std::int64_t r = begin; r < end; ++r)
            if (rows[static_cast<std::size_t>(r)] &&
                rows[static_cast<std::size_t>(r)]->matches(key))
                return r;
        return -1;
    }

    std::vector<std::size_t> mismatchCounts(const tcam::TernaryWord& key) const {
        std::vector<std::size_t> out(rows.size(), tcam::kNoEntry);
        for (std::size_t r = 0; r < rows.size(); ++r)
            if (rows[r]) out[r] = rows[r]->mismatchCount(key);
        return out;
    }
};

}  // namespace

TEST(MatchBackend, ParseAndNameRoundTrip) {
    EXPECT_EQ(serve::parseBackendKind("scalar"), serve::MatchBackendKind::Scalar);
    EXPECT_EQ(serve::parseBackendKind("bitplane"), serve::MatchBackendKind::BitPlane);
    EXPECT_EQ(serve::parseBackendKind("checked"), serve::MatchBackendKind::Checked);
    for (const auto kind :
         {serve::MatchBackendKind::Scalar, serve::MatchBackendKind::BitPlane,
          serve::MatchBackendKind::Checked})
        EXPECT_EQ(serve::parseBackendKind(serve::backendName(kind)), kind);
    EXPECT_THROW(serve::parseBackendKind("simd"), recover::SimError);
    EXPECT_THROW(serve::parseBackendKind(""), recover::SimError);
}

TEST(MatchBackend, FactoryProducesRequestedKindAllRowsEmpty) {
    for (const auto kind :
         {serve::MatchBackendKind::Scalar, serve::MatchBackendKind::BitPlane,
          serve::MatchBackendKind::Checked}) {
        const auto b = serve::makeMatchBackend(kind, 70, 8);
        EXPECT_EQ(b->kind(), kind);
        EXPECT_EQ(b->rows(), 70);
        EXPECT_EQ(b->bits(), 8);
        for (std::int64_t r = 0; r < 70; ++r) EXPECT_FALSE(b->at(r).has_value());
        const auto key = tcam::TernaryWord(8, tcam::Trit::Zero);
        EXPECT_EQ(b->findFirst(0, 70, b->prepare(key)), -1);
    }
}

// The main differential fuzz: scalar, bit-plane and checked backends vs the
// naive reference, across widths that straddle 64-bit boundaries.
TEST(MatchBackend, DifferentialFuzzAgainstNaiveReference) {
    numeric::Rng rng(2026);
    for (const int bits : {1, 3, 7, 31, 64, 65, 127, 128, 200, 256}) {
        // Row counts cross the one-block boundary for every width at least
        // once; 130 exercises two full blocks plus a partial third.
        const std::int64_t rows = (bits <= 31) ? 130 : 70;

        NaiveTable naive;
        naive.rows.resize(static_cast<std::size_t>(rows));
        auto scalar = serve::makeMatchBackend(serve::MatchBackendKind::Scalar, rows, bits);
        auto planes = serve::makeMatchBackend(serve::MatchBackendKind::BitPlane, rows, bits);
        auto checked = serve::makeMatchBackend(serve::MatchBackendKind::Checked, rows, bits);
        const auto store = [&](std::int64_t r, const tcam::TernaryWord& w) {
            naive.rows[static_cast<std::size_t>(r)] = w;
            scalar->set(r, w);
            planes->set(r, w);
            checked->set(r, w);
        };
        const auto drop = [&](std::int64_t r) {
            naive.rows[static_cast<std::size_t>(r)].reset();
            scalar->clear(r);
            planes->clear(r);
            checked->clear(r);
        };

        for (std::int64_t r = 0; r < rows; ++r) {
            if (rng.uniform() < 0.10) continue;  // empty slot
            store(r, rng.uniform() < 0.05
                         ? tcam::TernaryWord(static_cast<std::size_t>(bits))  // all-X
                         : randomWord(rng, bits, 0.25));
        }

        for (int round = 0; round < 3; ++round) {
            for (int q = 0; q < 25; ++q) {
                // Keys may themselves carry X trits (skipped bit-planes).
                const auto key = randomWord(rng, bits, q % 5 == 0 ? 0.3 : 0.0);
                const auto ps = scalar->prepare(key);
                const auto pp = planes->prepare(key);
                const auto pc = checked->prepare(key);

                // Full range plus random sub-ranges, including empty ones.
                std::int64_t begin = 0, end = rows;
                if (q % 3 == 1) {
                    begin = rng.uniformInt(0, static_cast<int>(rows));
                    end = rng.uniformInt(static_cast<int>(begin), static_cast<int>(rows));
                }
                const auto want = naive.findFirst(begin, end, key);
                EXPECT_EQ(scalar->findFirst(begin, end, ps), want)
                    << "scalar bits=" << bits << " [" << begin << "," << end << ")";
                EXPECT_EQ(planes->findFirst(begin, end, pp), want)
                    << "bitplane bits=" << bits << " [" << begin << "," << end << ")";
                EXPECT_EQ(checked->findFirst(begin, end, pc), want)
                    << "checked bits=" << bits << " [" << begin << "," << end << ")";

                const auto wantCounts = naive.mismatchCounts(key);
                std::vector<std::size_t> got(static_cast<std::size_t>(rows));
                scalar->mismatchCounts(ps, got.data());
                EXPECT_EQ(got, wantCounts) << "scalar bits=" << bits;
                planes->mismatchCounts(pp, got.data());
                EXPECT_EQ(got, wantCounts) << "bitplane bits=" << bits;
                checked->mismatchCounts(pc, got.data());
                EXPECT_EQ(got, wantCounts) << "checked bits=" << bits;
            }
            // Mutate between rounds: the planes must stay consistent under
            // incremental set/clear, not just bulk load.
            for (int m = 0; m < 20; ++m) {
                const auto r = rng.uniformInt(0, static_cast<int>(rows) - 1);
                if (rng.bernoulli(0.4))
                    drop(r);
                else
                    store(r, randomWord(rng, bits, 0.25));
            }
        }

        // at() mirrors the naive table exactly after all the churn.
        for (std::int64_t r = 0; r < rows; ++r) {
            const auto& want = naive.rows[static_cast<std::size_t>(r)];
            for (const auto* b : {scalar.get(), planes.get(), checked.get()}) {
                const auto& got = b->at(r);
                ASSERT_EQ(got.has_value(), want.has_value());
                if (want) EXPECT_EQ(got->toString(), want->toString());
            }
        }
    }
}

// Dedicated mismatchCounts fuzz at wildcard densities the main fuzz only
// grazes: stored rows that are 0%, 50% and 100% X trits, at widths exactly
// straddling the 64-bit plane-word boundary. A stored X never counts as a
// mismatch regardless of the key bit — the bit-plane care masks and the
// partial-block tail masking must both get this right, since similarity
// search (nearestK / thresholdMatch) is built directly on these counts.
TEST(MatchBackend, MismatchCountsWildcardRowsAtWordBoundaries) {
    numeric::Rng rng(4242);
    for (const int bits : {63, 64, 65, 127, 128, 129}) {
        for (const double xDensity : {0.0, 0.5, 1.0}) {
            const std::int64_t rows = 70;  // one full 64-row block + a tail
            NaiveTable naive;
            naive.rows.resize(static_cast<std::size_t>(rows));
            auto scalar =
                serve::makeMatchBackend(serve::MatchBackendKind::Scalar, rows, bits);
            auto planes =
                serve::makeMatchBackend(serve::MatchBackendKind::BitPlane, rows, bits);
            auto checked =
                serve::makeMatchBackend(serve::MatchBackendKind::Checked, rows, bits);

            for (std::int64_t r = 0; r < rows; ++r) {
                if (r % 9 == 4) continue;  // empty slots stay kNoEntry
                const auto w = randomWord(rng, bits, xDensity);
                naive.rows[static_cast<std::size_t>(r)] = w;
                scalar->set(r, w);
                planes->set(r, w);
                checked->set(r, w);
            }

            for (int q = 0; q < 20; ++q) {
                // Keys both fully definite and with their own X trits.
                const auto key = randomWord(rng, bits, q % 4 == 0 ? 0.3 : 0.0);
                const auto want = naive.mismatchCounts(key);
                std::vector<std::size_t> got(static_cast<std::size_t>(rows));
                scalar->mismatchCounts(scalar->prepare(key), got.data());
                EXPECT_EQ(got, want) << "scalar bits=" << bits << " x=" << xDensity;
                planes->mismatchCounts(planes->prepare(key), got.data());
                EXPECT_EQ(got, want) << "bitplane bits=" << bits << " x=" << xDensity;
                checked->mismatchCounts(checked->prepare(key), got.data());
                EXPECT_EQ(got, want) << "checked bits=" << bits << " x=" << xDensity;
                // All-X rows match every key: their count must be exactly 0.
                if (xDensity == 1.0)
                    for (std::int64_t r = 0; r < rows; ++r)
                        if (naive.rows[static_cast<std::size_t>(r)])
                            EXPECT_EQ(got[static_cast<std::size_t>(r)], 0u);
            }
        }
    }
}

// Engine-level equivalence: the backend choice must be invisible in results
// — cold vs warm, jobs=1 vs jobs=N, across all three backends.
TEST(MatchBackend, QueryEngineResultsIdenticalAcrossBackends) {
    auto cache = std::make_shared<serve::CharacterizationCache>();
    numeric::Rng rng(7);

    std::vector<tcam::TernaryWord> words;
    for (int i = 0; i < 12; ++i) words.push_back(randomWord(rng, 8, 0.25));
    std::vector<tcam::TernaryWord> keys;
    for (int i = 0; i < 64; ++i) keys.push_back(randomWord(rng, 8, 0.0));

    std::vector<std::vector<std::int64_t>> perBackend;
    for (const auto kind :
         {serve::MatchBackendKind::Scalar, serve::MatchBackendKind::BitPlane,
          serve::MatchBackendKind::Checked}) {
        serve::EngineOptions options;
        options.shard.cell = tcam::CellKind::FeFet2;
        options.shard.sense = array::SenseScheme::LowSwing;
        options.shard.wordBits = 8;
        options.shard.rows = 4;
        options.capacity = 12;
        options.backend = kind;

        serve::QueryEngine engine(options, cache);
        EXPECT_EQ(engine.backendKind(), kind);
        for (std::int64_t i = 0; i < 12; ++i)
            engine.insertAt(i, words[static_cast<std::size_t>(i)]);
        engine.erase(3);
        engine.erase(7);

        const auto serial = engine.searchBatch(keys, 1);
        const auto parallel = engine.searchBatch(keys, 5);
        EXPECT_EQ(serial.rows, parallel.rows);
        EXPECT_EQ(serial.hits, parallel.hits);
        perBackend.push_back(serial.rows);
    }
    ASSERT_EQ(perBackend.size(), 3u);
    EXPECT_EQ(perBackend[0], perBackend[1]);  // scalar == bitplane
    EXPECT_EQ(perBackend[0], perBackend[2]);  // scalar == checked
}

TEST(MatchBackend, CloneIsADeepIndependentCopy) {
    // The copy-on-write primitive behind the engine's snapshot mutations: a
    // clone and its source must never share storage, on every backend and on
    // widths/rows straddling the 64-bit plane blocks.
    const serve::MatchBackendKind kinds[] = {serve::MatchBackendKind::Scalar,
                                             serve::MatchBackendKind::BitPlane,
                                             serve::MatchBackendKind::Checked};
    numeric::Rng rng(31);
    for (const auto kind : kinds) {
        for (const int bits : {1, 64, 65}) {
            for (const std::int64_t rows : {3ll, 64ll, 70ll}) {
                auto original = serve::makeMatchBackend(kind, rows, bits);
                for (std::int64_t r = 0; r < rows; r += 2)
                    original->set(r, randomWord(rng, bits, 0.3));

                auto copy = original->clone();
                ASSERT_EQ(copy->kind(), original->kind());
                ASSERT_EQ(copy->rows(), rows);
                ASSERT_EQ(copy->bits(), bits);
                for (std::int64_t r = 0; r < rows; ++r)
                    ASSERT_EQ(copy->at(r), original->at(r))
                        << serve::backendName(kind) << " " << bits << "b row " << r;

                // Diverge the copy: the original must not move.
                const auto before = original->at(0);
                copy->set(0, randomWord(rng, bits, 0.0));
                copy->clear(2 % rows);
                EXPECT_EQ(original->at(0), before);
                if (rows > 2) EXPECT_EQ(original->at(2).has_value(), true);

                // And mutate the original: the copy must not move either.
                const auto copyRow = copy->at(0);
                original->clear(0);
                EXPECT_EQ(copy->at(0), copyRow);
            }
        }
    }
}
