// Application-layer tests: LPM routing semantics, packet classification,
// associative (Hamming) search, and workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/classifier.hpp"
#include "apps/hamming.hpp"
#include "apps/lpm.hpp"
#include "apps/workloads.hpp"
#include "numeric/stats.hpp"

using namespace fetcam;
using namespace fetcam::apps;

namespace {
std::uint32_t ip(int a, int b, int c, int d) {
    return (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
           (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
}
}  // namespace

TEST(Lpm, RoutePattern) {
    const Route r{ip(10, 1, 0, 0), 16, 5};
    const auto p = r.pattern();
    EXPECT_EQ(p.toString().substr(0, 16), "0000101000000001");
    EXPECT_EQ(p.wildcardCount(), 16u);
    EXPECT_TRUE(r.covers(ip(10, 1, 200, 7)));
    EXPECT_FALSE(r.covers(ip(10, 2, 0, 0)));
}

TEST(Lpm, LongestPrefixWins) {
    RoutingTable t;
    t.addRoute(ip(10, 0, 0, 0), 8, 1);
    t.addRoute(ip(10, 1, 0, 0), 16, 2);
    t.addRoute(ip(10, 1, 2, 0), 24, 3);
    EXPECT_EQ(t.lookup(ip(10, 1, 2, 77)), 3);
    EXPECT_EQ(t.lookup(ip(10, 1, 9, 1)), 2);
    EXPECT_EQ(t.lookup(ip(10, 200, 0, 1)), 1);
    EXPECT_EQ(t.lookup(ip(11, 0, 0, 1)), std::nullopt);
}

TEST(Lpm, DefaultRouteMatchesEverything) {
    RoutingTable t;
    t.addRoute(0, 0, 42);
    EXPECT_EQ(t.lookup(ip(1, 2, 3, 4)), 42);
    EXPECT_EQ(t.lookup(0xffffffffu), 42);
}

TEST(Lpm, RejectsBadPrefixLength) {
    RoutingTable t;
    EXPECT_THROW(t.addRoute(0, 33, 1), std::invalid_argument);
    EXPECT_THROW(t.addRoute(0, -1, 1), std::invalid_argument);
}

TEST(Lpm, TcamOrderMatchesLinearScan) {
    // Property: priority-ordered first-match == longest-prefix linear scan.
    const auto table = syntheticRoutingTable(200, 11);
    const auto queries = syntheticQueryStream(table, 500, 0.7, 12);
    for (const auto q : queries) EXPECT_EQ(table.lookup(q), table.lookupLinear(q));
}

TEST(Lpm, PatternsPreservePriorityOrder) {
    const auto table = syntheticRoutingTable(64, 3);
    const auto& routes = table.routes();
    for (std::size_t i = 1; i < routes.size(); ++i)
        EXPECT_GE(routes[i - 1].prefixLength, routes[i].prefixLength);
    EXPECT_EQ(table.patterns().size(), table.size());
}

TEST(Classifier, HeaderToWordLayout) {
    PacketHeader h;
    h.srcIp = 0x80000000u;  // top bit set
    h.protocol = 0x01;
    const auto w = h.toWord();
    EXPECT_EQ(w.size(), 104u);
    EXPECT_EQ(w[0], tcam::Trit::One);
    EXPECT_EQ(w[103], tcam::Trit::One);
    EXPECT_EQ(w[1], tcam::Trit::Zero);
}

TEST(Classifier, FirstMatchingRuleWins) {
    PacketClassifier cls;
    cls.addRule(RuleBuilder().dstPort(80).protocol(6).build(1, "allow-http"));
    cls.addRule(RuleBuilder().protocol(6).build(2, "tcp-other"));
    cls.addRule(RuleBuilder().build(3, "default"));

    PacketHeader http;
    http.dstPort = 80;
    http.protocol = 6;
    EXPECT_EQ(cls.classify(http), 1);

    PacketHeader ssh;
    ssh.dstPort = 22;
    ssh.protocol = 6;
    EXPECT_EQ(cls.classify(ssh), 2);

    PacketHeader udp;
    udp.protocol = 17;
    EXPECT_EQ(cls.classify(udp), 3);
    EXPECT_EQ(cls.matchIndex(udp), 2u);
}

TEST(Classifier, PrefixFieldsRespectLength) {
    PacketClassifier cls;
    cls.addRule(RuleBuilder().srcPrefix(ip(192, 168, 0, 0), 16).build(7));
    PacketHeader in;
    in.srcIp = ip(192, 168, 55, 1);
    EXPECT_EQ(cls.classify(in), 7);
    in.srcIp = ip(192, 169, 0, 1);
    EXPECT_EQ(cls.classify(in), std::nullopt);
}

TEST(Classifier, NoMatchReturnsNullopt) {
    PacketClassifier cls;
    cls.addRule(RuleBuilder().protocol(6).build(1));
    PacketHeader h;
    h.protocol = 17;
    EXPECT_EQ(cls.classify(h), std::nullopt);
}

TEST(Classifier, RejectsBadPatternWidth) {
    PacketClassifier cls;
    ClassifierRule r;
    r.pattern = tcam::TernaryWord(10);
    EXPECT_THROW(cls.addRule(r), std::invalid_argument);
}

TEST(Hamming, ExactNearest) {
    AssociativeMemory mem(8);
    mem.add(tcam::TernaryWord::fromString("00000000"));
    mem.add(tcam::TernaryWord::fromString("11110000"));
    mem.add(tcam::TernaryWord::fromString("11111111"));
    const auto r = mem.nearest(tcam::TernaryWord::fromString("11100000"));
    EXPECT_EQ(r.index, 1u);
    EXPECT_EQ(r.distance, 1u);
    EXPECT_TRUE(r.unique);
}

TEST(Hamming, TieDetection) {
    AssociativeMemory mem(4);
    mem.add(tcam::TernaryWord::fromString("0000"));
    mem.add(tcam::TernaryWord::fromString("1111"));
    const auto r = mem.nearest(tcam::TernaryWord::fromString("0011"));
    EXPECT_FALSE(r.unique);
}

TEST(Hamming, DistancesMatchPerRowMismatchCount) {
    // The bit-plane kernel behind distances() must agree with the scalar
    // TernaryWord::mismatchCount row by row — including widths that are not
    // a multiple of 64 and memories spanning several 64-row blocks.
    numeric::Rng rng(5);
    for (const std::size_t bits : {5u, 64u, 77u}) {
        AssociativeMemory mem(bits);
        const int rows = 70;
        for (int r = 0; r < rows; ++r) {
            tcam::TernaryWord w(bits);
            for (std::size_t b = 0; b < bits; ++b)
                w[b] = rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
            mem.add(w);
        }
        for (int q = 0; q < 10; ++q) {
            tcam::TernaryWord key(bits);
            for (std::size_t b = 0; b < bits; ++b)
                key[b] = rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
            const auto d = mem.distances(key);
            ASSERT_EQ(d.size(), mem.size());
            for (std::size_t r = 0; r < d.size(); ++r)
                EXPECT_EQ(d[r], mem.rows()[r].mismatchCount(key));
        }
    }
}

TEST(Hamming, RejectsWildcardsAndWidthMismatch) {
    AssociativeMemory mem(4);
    EXPECT_THROW(mem.add(tcam::TernaryWord::fromString("0X01")), std::invalid_argument);
    EXPECT_THROW(mem.add(tcam::TernaryWord::fromString("01")), std::invalid_argument);
    EXPECT_THROW(mem.nearest(tcam::TernaryWord::fromString("0000")), std::logic_error);
}

TEST(Hamming, DischargeModelAgreesWithExactModel) {
    // Property: the analog discharge-time winner equals the Hamming winner
    // whenever no exact-match row exists (exact matches never discharge and
    // trivially win in both models too).
    const auto rows = randomHypervectors(32, 64, 21);
    AssociativeMemory mem(64);
    for (const auto& r : rows) mem.add(r);
    numeric::Rng rng(22);
    for (int q = 0; q < 50; ++q) {
        const auto base = rows[static_cast<std::size_t>(rng.uniformInt(0, 31))];
        const auto query = perturbWord(base, static_cast<std::size_t>(rng.uniformInt(1, 8)),
                                       rng);
        const auto exact = mem.nearest(query);
        const auto analog = mem.nearestViaDischarge(query);
        if (exact.unique) EXPECT_EQ(analog.index, exact.index);
        EXPECT_EQ(analog.distance, exact.distance);
    }
}

TEST(Hamming, DischargeTieBreaksToLowestIndexLikeExactModel) {
    // Three rows at identical distance from the query: both models must
    // report the lowest index and flag the tie, on every tie position.
    AssociativeMemory mem(8);
    mem.add(tcam::TernaryWord::fromString("10000000"));  // d=1 from all-zeros
    mem.add(tcam::TernaryWord::fromString("01000000"));  // d=1
    mem.add(tcam::TernaryWord::fromString("11110000"));  // d=4
    mem.add(tcam::TernaryWord::fromString("00100000"));  // d=1
    const auto query = tcam::TernaryWord::fromString("00000000");
    const auto exact = mem.nearest(query);
    const auto analog = mem.nearestViaDischarge(query);
    EXPECT_EQ(analog.index, 0u);
    EXPECT_EQ(analog.index, exact.index);
    EXPECT_EQ(analog.distance, 1u);
    EXPECT_FALSE(analog.unique);
    EXPECT_FALSE(exact.unique);
}

TEST(Hamming, ExactMatchBeatsDistanceOneDeterministically) {
    // An exact-match row never discharges (+inf): it must win over a
    // distance-1 row regardless of ordering, and two exact matches tie to
    // the lowest index exactly like the exact model.
    {
        AssociativeMemory mem(8);
        mem.add(tcam::TernaryWord::fromString("10000000"));  // d=1, earlier row
        mem.add(tcam::TernaryWord::fromString("00000000"));  // exact, later row
        const auto analog =
            mem.nearestViaDischarge(tcam::TernaryWord::fromString("00000000"));
        EXPECT_EQ(analog.index, 1u);
        EXPECT_EQ(analog.distance, 0u);
        EXPECT_TRUE(analog.unique);
    }
    {
        AssociativeMemory mem(8);
        mem.add(tcam::TernaryWord::fromString("00000000"));  // exact
        mem.add(tcam::TernaryWord::fromString("00000000"));  // exact duplicate
        mem.add(tcam::TernaryWord::fromString("10000000"));  // d=1
        const auto query = tcam::TernaryWord::fromString("00000000");
        const auto exact = mem.nearest(query);
        const auto analog = mem.nearestViaDischarge(query);
        EXPECT_EQ(analog.index, 0u);
        EXPECT_EQ(analog.index, exact.index);
        EXPECT_EQ(analog.distance, 0u);
        EXPECT_FALSE(analog.unique);
        EXPECT_FALSE(exact.unique);
    }
}

TEST(Hamming, DischargeTimesInverseToDistance) {
    AssociativeMemory mem(8);
    mem.add(tcam::TernaryWord::fromString("00000000"));
    const auto t1 = mem.dischargeTimes(tcam::TernaryWord::fromString("10000000"));
    const auto t4 = mem.dischargeTimes(tcam::TernaryWord::fromString("11110000"));
    EXPECT_DOUBLE_EQ(t1[0] / t4[0], 4.0);
    const auto tExact = mem.dischargeTimes(tcam::TernaryWord::fromString("00000000"));
    EXPECT_TRUE(std::isinf(tExact[0]));
}

TEST(Workloads, SyntheticTableShape) {
    const auto t = syntheticRoutingTable(500, 42);
    EXPECT_EQ(t.size(), 500u);
    // /24 should dominate.
    int n24 = 0;
    for (const auto& r : t.routes()) n24 += r.prefixLength == 24;
    EXPECT_GT(n24, 150);
}

TEST(Workloads, QueryStreamHitFraction) {
    const auto t = syntheticRoutingTable(200, 1);
    const auto qs = syntheticQueryStream(t, 1000, 0.8, 2);
    int hits = 0;
    for (const auto q : qs) hits += t.lookup(q).has_value();
    EXPECT_GT(hits, 700);  // >= the crafted 80% (random ones can also hit)
}

TEST(Workloads, SyntheticPacketsHitClassifier) {
    const auto cls = syntheticClassifier(50, 5);
    const auto pkts = syntheticPackets(cls, 400, 0.9, 6);
    int hits = 0;
    for (const auto& p : pkts) hits += cls.classify(p).has_value();
    EXPECT_GT(hits, 300);
}

TEST(Workloads, PerturbWordFlipsExactly) {
    numeric::Rng rng(9);
    const auto base = randomHypervectors(1, 32, 10)[0];
    const auto p = perturbWord(base, 5, rng);
    EXPECT_EQ(base.mismatchCount(p), 5u);
    EXPECT_THROW(perturbWord(base, 33, rng), std::invalid_argument);
}
