// Integration tests for the MNA engine: DC solutions against hand-derived
// circuits, transients against analytic RC responses, energy bookkeeping
// against Tellegen's theorem.
#include <gtest/gtest.h>

#include "recover/sim_error.hpp"

#include <cmath>
#include <limits>

#include "device/passives.hpp"
#include "device/sources.hpp"
#include "obs/obs.hpp"
#include "obs/trace_reader.hpp"
#include "spice/circuit.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"

using namespace fetcam;
using device::Capacitor;
using device::CurrentSource;
using device::Resistor;
using device::SourceWave;
using device::VoltageSource;

TEST(DcOp, VoltageDivider) {
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto mid = c.node("mid");
    c.add<VoltageSource>("V1", c, vin, spice::kGround, SourceWave::dc(3.0));
    c.add<Resistor>("R1", vin, mid, 1000.0);
    c.add<Resistor>("R2", mid, spice::kGround, 2000.0);

    const auto op = spice::solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(vin), 3.0, 1e-9);
    EXPECT_NEAR(op.v(mid), 2.0, 1e-6);
}

TEST(DcOp, CurrentSourceIntoResistor) {
    spice::Circuit c;
    const auto n1 = c.node("n1");
    // 1 mA pushed from ground into n1 through the source, 1 kOhm to ground.
    c.add<CurrentSource>("I1", spice::kGround, n1, SourceWave::dc(1e-3));
    c.add<Resistor>("R1", n1, spice::kGround, 1000.0);
    const auto op = spice::solveDcOp(c);
    ASSERT_TRUE(op.converged);
    EXPECT_NEAR(op.v(n1), 1.0, 1e-6);
}

TEST(DcOp, VoltageSourceBranchCurrent) {
    spice::Circuit c;
    const auto vin = c.node("in");
    auto& vs = c.add<VoltageSource>("V1", c, vin, spice::kGround, SourceWave::dc(1.0));
    c.add<Resistor>("R1", vin, spice::kGround, 1000.0);
    const auto op = spice::solveDcOp(c);
    ASSERT_TRUE(op.converged);
    // Branch current flows p -> source -> n; the source pushes 1 mA out of
    // its + terminal, so the branch unknown is -1 mA.
    EXPECT_NEAR(op.x[static_cast<std::size_t>(c.numNodes() - 1 + vs.branch())], -1e-3, 1e-9);
}

TEST(Transient, RcChargeMatchesAnalytic) {
    // 10k * 100f = 1 ns time constant.
    const double r = 10e3, cap = 100e-15, tau = r * cap;
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    c.add<VoltageSource>("V1", c, vin, spice::kGround,
                         SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    c.add<Resistor>("R1", vin, out, r);
    c.add<Capacitor>("C1", out, spice::kGround, cap);

    spice::TransientSpec spec;
    spec.tstop = 8.0 * tau;
    spec.dtMax = tau / 50.0;
    const auto res = runTransient(c, spec);
    ASSERT_TRUE(res.finished);

    for (double t : {0.5 * tau, 1.0 * tau, 2.0 * tau, 5.0 * tau}) {
        const double expected = 1.0 - std::exp(-t / tau);
        EXPECT_NEAR(res.waveforms.nodeAt(out, t), expected, 0.01)
            << "at t=" << t;
    }
    EXPECT_NEAR(res.waveforms.finalNode(out), 1.0, 1e-3);
}

TEST(Transient, RcEnergyBookkeeping) {
    const double r = 10e3, cap = 100e-15, tau = r * cap;
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    auto& vs = c.add<VoltageSource>("V1", c, vin, spice::kGround,
                                    SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    auto& res1 = c.add<Resistor>("R1", vin, out, r);
    auto& cap1 = c.add<Capacitor>("C1", out, spice::kGround, cap);

    spice::TransientSpec spec;
    spec.tstop = 12.0 * tau;
    spec.dtMax = tau / 100.0;
    const auto tr = runTransient(c, spec);
    ASSERT_TRUE(tr.finished);

    const double e = cap * 1.0 * 1.0;  // C*V^2 drawn from the supply
    EXPECT_NEAR(vs.deliveredEnergy(), e, 0.02 * e);
    EXPECT_NEAR(res1.energy(), 0.5 * e, 0.02 * e);
    EXPECT_NEAR(cap1.energy(), 0.5 * e, 0.02 * e);
    EXPECT_NEAR(cap1.storedEnergy(), 0.5 * e, 0.02 * e);
    // Tellegen: the sum of absorbed energies over all devices is ~0.
    EXPECT_NEAR(c.totalEnergy(), 0.0, 1e-3 * e);
}

TEST(Transient, UicDischarge) {
    const double r = 1e3, cap = 1e-12, tau = r * cap;
    spice::Circuit c;
    const auto n1 = c.node("n1");
    c.add<Resistor>("R1", n1, spice::kGround, r);
    c.add<Capacitor>("C1", n1, spice::kGround, cap);

    spice::TransientSpec spec;
    spec.tstop = 5.0 * tau;
    spec.dtMax = tau / 50.0;
    spec.initialConditions = {{n1, 1.0}};
    const auto res = runTransient(c, spec);
    EXPECT_NEAR(res.waveforms.nodeAt(n1, tau), std::exp(-1.0), 0.01);
    EXPECT_NEAR(res.waveforms.nodeAt(n1, 3.0 * tau), std::exp(-3.0), 0.01);
}

TEST(Transient, PwlSourceFollowed) {
    spice::Circuit c;
    const auto vin = c.node("in");
    c.add<VoltageSource>(
        "V1", c, vin, spice::kGround,
        SourceWave::pwl({0.0, 1e-9, 2e-9, 3e-9}, {0.0, 1.0, 1.0, -0.5}));
    c.add<Resistor>("R1", vin, spice::kGround, 1e6);

    spice::TransientSpec spec;
    spec.tstop = 4e-9;
    spec.dtMax = 0.05e-9;
    const auto res = runTransient(c, spec);
    EXPECT_NEAR(res.waveforms.nodeAt(vin, 0.5e-9), 0.5, 1e-6);
    EXPECT_NEAR(res.waveforms.nodeAt(vin, 1.5e-9), 1.0, 1e-6);
    EXPECT_NEAR(res.waveforms.nodeAt(vin, 2.5e-9), 0.25, 1e-6);
    EXPECT_NEAR(res.waveforms.nodeAt(vin, 3.5e-9), -0.5, 1e-6);
}

TEST(Transient, BreakpointsAreHit) {
    spice::Circuit c;
    const auto vin = c.node("in");
    c.add<VoltageSource>("V1", c, vin, spice::kGround,
                         SourceWave::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9, 0.5e-9));
    c.add<Resistor>("R1", vin, spice::kGround, 1e3);

    spice::TransientSpec spec;
    spec.tstop = 3e-9;
    spec.dtMax = 0.4e-9;  // much coarser than the pulse edges
    const auto res = runTransient(c, spec);
    // The pulse must still be fully resolved because edges are breakpoints.
    EXPECT_NEAR(res.waveforms.nodeAt(vin, 1.35e-9), 1.0, 1e-6);
    EXPECT_NEAR(res.waveforms.nodeAt(vin, 2.5e-9), 0.0, 1e-6);
}

TEST(Transient, RejectsBadSpec) {
    spice::Circuit c;
    c.add<Resistor>("R1", c.node("a"), spice::kGround, 1.0);
    spice::TransientSpec spec;
    spec.tstop = 0.0;
    spec.dtMax = 1e-9;
    EXPECT_THROW(runTransient(c, spec), recover::SimError);
    spec.tstop = 1e-9;
    spec.dtMax = 0.0;
    EXPECT_THROW(runTransient(c, spec), recover::SimError);
}

TEST(Transient, InstrumentedRunStepEventsMatchCounters) {
    const std::string path = ::testing::TempDir() + "spice_step_trace.jsonl";
    ASSERT_TRUE(obs::TraceSink::global().open(path));
    obs::setEnabled(true);

    const double r = 10e3, cap = 100e-15, tau = r * cap;
    spice::Circuit c;
    const auto vin = c.node("in");
    const auto out = c.node("out");
    c.add<VoltageSource>("V1", c, vin, spice::kGround,
                         SourceWave::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0));
    c.add<Resistor>("R1", vin, out, r);
    c.add<Capacitor>("C1", out, spice::kGround, cap);

    spice::TransientSpec spec;
    spec.tstop = 8.0 * tau;
    spec.dtMax = tau / 50.0;
    const auto res = runTransient(c, spec);
    obs::setEnabled(false);
    obs::TraceSink::global().close();
    ASSERT_TRUE(res.finished);

    // Step events in the trace must agree with the result's counters, and
    // the iteration accounting must split cleanly into accepted + rejected.
    const auto records = obs::readTraceFile(path);
    int accepts = 0, rejects = 0, acceptIters = 0, rejectIters = 0;
    for (const auto& rec : records) {
        if (!rec.isEvent()) continue;
        if (rec.name == "step.accept") {
            ++accepts;
            acceptIters += static_cast<int>(rec.num.at("iters"));
            EXPECT_GT(rec.num.at("dt"), 0.0);
        } else if (rec.name == "step.reject") {
            ++rejects;
            rejectIters += static_cast<int>(rec.num.at("iters"));
        }
    }
    EXPECT_EQ(accepts, res.acceptedSteps);
    EXPECT_EQ(rejects, res.rejectedSteps);
    EXPECT_EQ(accepts + rejects, res.acceptedSteps + res.rejectedSteps);
    EXPECT_EQ(acceptIters + rejectIters, res.newtonIterations);
    EXPECT_EQ(rejectIters, res.rejectedNewtonIterations);

    // SolverStats collected during an instrumented run.
    EXPECT_EQ(res.stats.dtHistogram.total(), res.acceptedSteps);
    // Every iteration of this well-posed circuit factors exactly once —
    // a full pivoting factorization for the first, numeric refactorizations
    // replaying the cached pattern for the rest.
    EXPECT_EQ(res.stats.factorizations + res.stats.refactorizations,
              res.newtonIterations);
    EXPECT_GE(res.stats.factorizations, 1);
    EXPECT_GT(res.stats.refactorizations, res.stats.factorizations);
    EXPECT_GT(res.stats.totalSeconds, 0.0);
    EXPECT_GT(res.stats.stampSeconds, 0.0);
    EXPECT_GT(res.stats.factorSeconds, 0.0);
    EXPECT_GE(res.stats.worstStepIterations, 1);

    // The enclosing transient span is present and carries the step counts.
    bool sawSpan = false;
    for (const auto& rec : records) {
        if (rec.isSpan() && rec.name == "spice.transient") {
            sawSpan = true;
            EXPECT_EQ(static_cast<int>(rec.num.at("steps")), res.acceptedSteps);
            EXPECT_EQ(static_cast<int>(rec.num.at("rejected")), res.rejectedSteps);
        }
    }
    EXPECT_TRUE(sawSpan);
}

TEST(Circuit, NodeNamingAndLookup) {
    spice::Circuit c;
    EXPECT_EQ(c.node("0"), spice::kGround);
    EXPECT_EQ(c.node("gnd"), spice::kGround);
    const auto a = c.node("a");
    EXPECT_EQ(c.node("a"), a);
    EXPECT_NE(c.internalNode("x"), c.internalNode("x"));
    EXPECT_TRUE(c.hasNode("a"));
    EXPECT_FALSE(c.hasNode("zzz"));
    EXPECT_THROW(c.findNode("zzz"), std::out_of_range);
    EXPECT_EQ(c.nodeName(a), "a");
}

TEST(Circuit, FindDevice) {
    spice::Circuit c;
    c.add<Resistor>("R1", c.node("a"), spice::kGround, 1.0);
    EXPECT_NE(c.findDevice("R1"), nullptr);
    EXPECT_EQ(c.findDevice("R2"), nullptr);
}

TEST(Waveforms, InterpolationAndPeak) {
    spice::Waveforms w(2, 0);
    w.record(0.0, {0.0});
    w.record(1.0, {2.0});
    w.record(2.0, {-4.0});
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 1.5), -1.0);
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 99.0), -4.0);
    EXPECT_DOUBLE_EQ(w.peakNode(1), 4.0);
    EXPECT_DOUBLE_EQ(w.finalNode(1), -4.0);
    EXPECT_DOUBLE_EQ(w.nodeAt(spice::kGround, 1.0), 0.0);
}

TEST(Waveforms, NodeAtBoundaryAndNanQueries) {
    spice::Waveforms w(2, 0);
    w.record(0.0, {0.0});
    w.record(1.0, {2.0});
    w.record(2.0, {-4.0});
    // Exact sample times return the recorded value (no zero-width division).
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 2.0), -4.0);
    // Clamped on both sides.
    EXPECT_DOUBLE_EQ(w.nodeAt(1, -5.0), 0.0);
    EXPECT_DOUBLE_EQ(w.nodeAt(1, 1e9), -4.0);
    // Just inside the last interval stays finite and close to the endpoint.
    EXPECT_NEAR(w.nodeAt(1, std::nextafter(2.0, 0.0)), -4.0, 1e-6);
    // Regression: a NaN query used to slip past the range clamps (NaN
    // comparisons are false) and index one past the sample vector; it now
    // raises a structured error instead.
    EXPECT_THROW(w.nodeAt(1, std::numeric_limits<double>::quiet_NaN()),
                 std::runtime_error);
}
