// Waveform CSV export/import round trip.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "recover/sim_error.hpp"
#include "spice/waveform_io.hpp"

using namespace fetcam::spice;
namespace recover = fetcam::recover;

namespace {

Waveforms sampleWaves() {
    Waveforms w(3, 0);  // nodes 1 and 2 usable
    w.record(0.0, {0.0, 1.0});
    w.record(1e-9, {0.5, 0.8});
    w.record(2e-9, {1.0, 0.2});
    return w;
}

}  // namespace

TEST(WaveformIo, CsvRoundTrip) {
    const auto w = sampleWaves();
    std::stringstream ss;
    writeCsv(ss, w, {{"a", 1}, {"b", 2}});
    const auto data = readCsv(ss);
    ASSERT_EQ(data.header.size(), 3u);
    EXPECT_EQ(data.header[0], "time");
    EXPECT_EQ(data.header[1], "a");
    EXPECT_EQ(data.header[2], "b");
    ASSERT_EQ(data.rows.size(), 3u);
    EXPECT_DOUBLE_EQ(data.rows[1][0], 1e-9);
    EXPECT_DOUBLE_EQ(data.rows[1][1], 0.5);
    EXPECT_DOUBLE_EQ(data.rows[2][2], 0.2);
}

TEST(WaveformIo, UniformResampling) {
    const auto w = sampleWaves();
    std::stringstream ss;
    writeCsvUniform(ss, w, {{"a", 1}}, 5);
    const auto data = readCsv(ss);
    ASSERT_EQ(data.rows.size(), 5u);
    EXPECT_DOUBLE_EQ(data.rows[0][0], 0.0);
    EXPECT_DOUBLE_EQ(data.rows[4][0], 2e-9);
    // Midpoint interpolates linearly: t=1e-9 exactly on a sample.
    EXPECT_NEAR(data.rows[2][1], 0.5, 1e-12);
    EXPECT_THROW(writeCsvUniform(ss, w, {{"a", 1}}, 1), recover::SimError);
}

TEST(WaveformIo, FileWriteAndErrors) {
    const auto w = sampleWaves();
    const std::string path = "/tmp/fetcam_wave_test.csv";
    writeCsvFile(path, w, {{"a", 1}});
    std::ifstream in(path);
    const auto data = readCsv(in);
    EXPECT_EQ(data.rows.size(), 3u);
    EXPECT_THROW(writeCsvFile("/nonexistent_dir_zz/x.csv", w, {{"a", 1}}),
                 std::runtime_error);
}

TEST(WaveformIo, ReaderRejectsMalformed) {
    std::stringstream empty;
    EXPECT_THROW(readCsv(empty), std::runtime_error);
    std::stringstream bad("time,a\n1,notanumber\n");
    EXPECT_THROW(readCsv(bad), std::runtime_error);
    std::stringstream ragged("time,a\n1\n");
    EXPECT_THROW(readCsv(ragged), std::runtime_error);
}

TEST(WaveformIo, ErrorsCarryTypedReasons) {
    std::stringstream ragged("time,a\n1\n");
    try {
        readCsv(ragged);
        FAIL() << "expected SimError";
    } catch (const recover::SimError& e) {
        EXPECT_EQ(e.reason(), recover::SimErrorReason::IoError);
        EXPECT_EQ(e.where(), "readCsv");
        EXPECT_NE(std::string(e.what()).find("ragged"), std::string::npos);
    }
    std::stringstream bad("time,a\n1,notanumber\n");
    try {
        readCsv(bad);
        FAIL() << "expected SimError";
    } catch (const recover::SimError& e) {
        EXPECT_EQ(e.reason(), recover::SimErrorReason::IoError);
        EXPECT_NE(std::string(e.what()).find("notanumber"), std::string::npos);
    }
}

TEST(WaveformIo, ReadCsvFileReportsUnopenablePath) {
    try {
        readCsvFile("/nonexistent_dir_zz/missing.csv");
        FAIL() << "expected SimError";
    } catch (const recover::SimError& e) {
        EXPECT_EQ(e.reason(), recover::SimErrorReason::IoError);
        EXPECT_EQ(e.where(), "readCsvFile");
    }
    // Round trip through the file-based reader still works.
    const auto w = sampleWaves();
    const std::string path = "/tmp/fetcam_wave_read_test.csv";
    writeCsvFile(path, w, {{"a", 1}});
    const auto data = readCsvFile(path);
    ASSERT_EQ(data.header.size(), 2u);
    EXPECT_EQ(data.rows.size(), 3u);
}
