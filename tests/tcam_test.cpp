// TCAM-layer tests: ternary semantics, storage encodings, per-cell search
// truth tables exercised through full transient simulation, and write
// sequencers.
#include <gtest/gtest.h>

#include "array/word_sim.hpp"
#include "numeric/stats.hpp"
#include "tcam/cell.hpp"
#include "tcam/cell_builder.hpp"
#include "tcam/ternary.hpp"
#include "tcam/write.hpp"

using namespace fetcam;
using tcam::CellKind;
using tcam::TernaryWord;
using tcam::Trit;

TEST(Ternary, TritMatchSemantics) {
    EXPECT_TRUE(tritMatches(Trit::One, Trit::One));
    EXPECT_TRUE(tritMatches(Trit::Zero, Trit::Zero));
    EXPECT_FALSE(tritMatches(Trit::One, Trit::Zero));
    EXPECT_FALSE(tritMatches(Trit::Zero, Trit::One));
    EXPECT_TRUE(tritMatches(Trit::X, Trit::Zero));
    EXPECT_TRUE(tritMatches(Trit::X, Trit::One));
    EXPECT_TRUE(tritMatches(Trit::Zero, Trit::X));
    EXPECT_TRUE(tritMatches(Trit::X, Trit::X));
}

TEST(Ternary, StringRoundTrip) {
    const auto w = TernaryWord::fromString("01X*x1");
    EXPECT_EQ(w.toString(), "01XXX1");
    EXPECT_EQ(w.size(), 6u);
    EXPECT_EQ(w.wildcardCount(), 3u);
    EXPECT_EQ(w.definiteCount(), 3u);
    EXPECT_THROW(TernaryWord::fromString("012"), std::invalid_argument);
}

TEST(Ternary, FromBits) {
    EXPECT_EQ(TernaryWord::fromBits(0b1011, 4).toString(), "1011");
    EXPECT_EQ(TernaryWord::fromBits(0b1, 3).toString(), "001");
}

TEST(Ternary, WordMatchAndMismatchCount) {
    const auto stored = TernaryWord::fromString("1X0X");
    EXPECT_TRUE(stored.matches(TernaryWord::fromString("1100")));
    EXPECT_TRUE(stored.matches(TernaryWord::fromString("1001")));
    EXPECT_FALSE(stored.matches(TernaryWord::fromString("0100")));
    EXPECT_EQ(stored.mismatchCount(TernaryWord::fromString("0111")), 2u);
    EXPECT_EQ(stored.mismatchCount(TernaryWord::fromString("1X0X")), 0u);
    EXPECT_THROW(stored.matches(TernaryWord::fromString("11")), std::invalid_argument);
}

TEST(Ternary, UncheckedPathsAgreeWithChecked) {
    // The unchecked variants exist so batch callers can hoist the width
    // validation; on valid inputs they must be indistinguishable.
    numeric::Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const auto bits = static_cast<std::size_t>(rng.uniformInt(1, 24));
        TernaryWord stored(bits), key(bits);
        for (std::size_t b = 0; b < bits; ++b) {
            const auto pick = [&] {
                const int t = rng.uniformInt(0, 2);
                return t == 0 ? Trit::Zero : (t == 1 ? Trit::One : Trit::X);
            };
            stored[b] = pick();
            key[b] = pick();
        }
        EXPECT_EQ(stored.matchesUnchecked(key), stored.matches(key));
        EXPECT_EQ(stored.mismatchCountUnchecked(key), stored.mismatchCount(key));
    }
    // The checked entry points still reject width mismatches.
    EXPECT_THROW(TernaryWord(4).matches(TernaryWord(5)), std::invalid_argument);
    EXPECT_THROW(TernaryWord(4).mismatchCount(TernaryWord(5)), std::invalid_argument);
}

TEST(Cell, DeviceCounts) {
    EXPECT_EQ(cellDeviceCount(CellKind::Cmos16T).transistors, 16);
    EXPECT_EQ(cellDeviceCount(CellKind::ReRam2T2R).transistors, 2);
    EXPECT_EQ(cellDeviceCount(CellKind::ReRam2T2R).rerams, 2);
    EXPECT_EQ(cellDeviceCount(CellKind::FeFet2).fefets, 2);
}

TEST(Cell, EncodingTruthTable) {
    // Stored 1 must discharge on key 0 (SLB branch), hold on key 1.
    const auto one = tcam::encodeTrit(Trit::One);
    EXPECT_FALSE(one.aEnabled);
    EXPECT_TRUE(one.bEnabled);
    const auto zero = tcam::encodeTrit(Trit::Zero);
    EXPECT_TRUE(zero.aEnabled);
    EXPECT_FALSE(zero.bEnabled);
    const auto x = tcam::encodeTrit(Trit::X);
    EXPECT_FALSE(x.aEnabled);
    EXPECT_FALSE(x.bEnabled);
}

TEST(Cell, SearchDrive) {
    EXPECT_TRUE(tcam::searchDrive(Trit::One).sl);
    EXPECT_FALSE(tcam::searchDrive(Trit::One).slb);
    EXPECT_FALSE(tcam::searchDrive(Trit::Zero).sl);
    EXPECT_TRUE(tcam::searchDrive(Trit::Zero).slb);
    EXPECT_FALSE(tcam::searchDrive(Trit::X).sl);
    EXPECT_FALSE(tcam::searchDrive(Trit::X).slb);
}

// ---------------------------------------------------------------------------
// Full truth-table verification per cell technology through circuit
// simulation: 3 stored states x 3 key states on a 4-bit word.
// ---------------------------------------------------------------------------

struct TruthCase {
    CellKind kind;
    Trit stored;
    Trit key;
};

class CellTruthTable : public ::testing::TestWithParam<TruthCase> {};

TEST_P(CellTruthTable, SimulatedDecisionMatchesGoldenModel) {
    const auto [kind, stored, key] = GetParam();
    array::WordSimOptions o;
    o.config.cell = kind;
    o.config.wordBits = 4;
    // Word: the probed trit plus three stored-X padding cells.
    o.stored = tcam::TernaryWord(4, Trit::X);
    o.stored[1] = stored;
    o.key = tcam::TernaryWord(4, Trit::X);
    o.key[1] = key;

    const auto r = simulateWordSearch(o);
    EXPECT_EQ(r.expectedMatch, tritMatches(stored, key));
    EXPECT_EQ(r.matchDetected, r.expectedMatch)
        << cellKindName(kind) << " stored=" << static_cast<int>(stored)
        << " key=" << static_cast<int>(key) << " mlAtSense=" << r.mlAtSense;
}

static std::vector<TruthCase> allTruthCases() {
    std::vector<TruthCase> cases;
    for (CellKind k : {CellKind::Cmos16T, CellKind::ReRam2T2R, CellKind::FeFet2})
        for (Trit s : {Trit::Zero, Trit::One, Trit::X})
            for (Trit q : {Trit::Zero, Trit::One, Trit::X})
                cases.push_back({k, s, q});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellTruthTable, ::testing::ValuesIn(allTruthCases()));

// ---------------------------------------------------------------------------
// Write sequencers.
// ---------------------------------------------------------------------------

TEST(Write, FeFetWriteVerifiesAndCostsEnergy) {
    const auto tech = device::TechCard::cmos45();
    const auto r = measureWriteEnergy(CellKind::FeFet2, tech);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.energyPerBit, 0.0);
    EXPECT_LT(r.energyPerBit, 1e-12);  // sub-pJ per bit expected
}

TEST(Write, ReramWriteVerifiesAndCostsEnergy) {
    const auto tech = device::TechCard::cmos45();
    const auto r = measureWriteEnergy(CellKind::ReRam2T2R, tech);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.energyPerBit, 0.0);
}

TEST(Write, SramWriteFlipsCell) {
    const auto tech = device::TechCard::cmos45();
    const auto r = tcam::measureSramWrite(tech);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.energyPerBit, 0.0);
    EXPECT_LT(r.energyPerBit, 100e-15);  // a few fJ to flip a 6T cell
}

TEST(Write, FeFetShorterPulseUsesLessEnergyButMayFail) {
    const auto tech = device::TechCard::cmos45();
    const auto full = tcam::measureFeFetWrite(tech, tech.vWriteFe, tech.tWriteFe);
    const auto brief = tcam::measureFeFetWrite(tech, tech.vWriteFe, 2e-9);
    EXPECT_TRUE(full.verified);
    EXPECT_LT(brief.energyPerBit, full.energyPerBit);
}

TEST(Write, HalfSelectDisturbCorruptsButThirdSelectHolds) {
    const auto tech = device::TechCard::cmos45();
    const double vw = tech.vWriteFe;
    // V/2 on unselected gates exceeds the coercive tail: partial flip.
    const double half = tcam::measureWriteDisturb(tech, vw / 2.0, 10, tech.tWriteFe);
    EXPECT_GT(half, -0.5);
    // V/3 sits under the tail: state must hold through many disturbs.
    const double third =
        tcam::measureWriteDisturb(tech, vw / 3.0, 1, 1e6 * tech.tWriteFe);
    EXPECT_LT(third, -0.99);
    EXPECT_THROW(tcam::measureWriteDisturb(tech, 1.0, -1, 1e-9), std::invalid_argument);
}

TEST(Write, ReramWriteLowVoltageFails) {
    const auto tech = device::TechCard::cmos45();
    const auto weak = tcam::measureReramWrite(tech, 1.0, tech.tWriteReram);
    EXPECT_FALSE(weak.verified);  // below both thresholds: state cannot SET
}
