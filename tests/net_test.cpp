// fetcam::net contract tests.
//
// Two layers:
//   1. Wire protocol (no sockets) — the corruption matrix: truncated
//      headers, bad magic/CRC, oversized declarations, malformed bodies must
//      each produce the right typed ProtoError, never a partially-parsed
//      message.
//   2. Server (loopback sockets, server on its own thread) — correct
//      answers against the engine, overload shedding, deadline expiry,
//      one-bad-connection isolation, slowloris read timeout, mid-batch
//      disconnect, graceful-drain accounting, and a random-byte fuzz smoke:
//      whatever bytes arrive, the server keeps serving well-formed peers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "numeric/stats.hpp"
#include "obs/obs.hpp"
#include "recover/fault_injection.hpp"
#include "recover/sim_error.hpp"
#include "serve/query_engine.hpp"
#include "store/format.hpp"

using namespace fetcam;

namespace {

serve::EngineOptions smallOptions() {
    serve::EngineOptions o;
    o.shard.cell = tcam::CellKind::FeFet2;
    o.shard.sense = array::SenseScheme::LowSwing;
    o.shard.wordBits = 8;
    o.shard.rows = 4;
    o.capacity = 8;
    return o;
}

net::QueryBatchBody makeBatch(std::uint64_t id, std::initializer_list<int> values,
                              std::uint32_t deadlineMicros = 0) {
    net::QueryBatchBody b;
    b.requestId = id;
    b.deadlineMicros = deadlineMicros;
    for (const int v : values)
        b.keys.push_back(tcam::TernaryWord::fromBits(static_cast<std::uint64_t>(v), 8));
    return b;
}

/// Engine + Server on a background thread; entries 0..entries-1 stored as
/// exact words, so querying value v hits row v iff v < entries.
class ServerHarness {
public:
    explicit ServerHarness(net::ServerOptions options = {}, int entries = 4)
        : engine_(smallOptions()) {
        for (int i = 0; i < entries; ++i)
            engine_.insert(tcam::TernaryWord::fromBits(static_cast<std::uint64_t>(i), 8));
        options.port = 0;
        server_ = std::make_unique<net::Server>(engine_, options);
        server_->start();
        thread_ = std::thread([this] {
            try {
                server_->run();
            } catch (const recover::SimError& e) {
                runError_ = e.what();
            }
        });
    }

    ~ServerHarness() { stop(); }

    void stop() {
        if (thread_.joinable()) {
            server_->requestStop();
            thread_.join();
        }
        EXPECT_EQ(runError_, "");
    }

    int port() const { return server_->port(); }
    const net::ServerStats& stats() const { return server_->stats(); }
    net::Server& server() { return *server_; }
    serve::QueryEngine& engine() { return engine_; }

private:
    serve::QueryEngine engine_;
    std::unique_ptr<net::Server> server_;
    std::thread thread_;
    std::string runError_;
};

void expectAccountingInvariant(const net::ServerStats& s) {
    EXPECT_EQ(s.queries, s.hits + s.misses + s.shedQueries + s.expiredQueries);
}

}  // namespace

// --- protocol corruption matrix (no sockets) -------------------------------

TEST(NetProtocol, FrameRoundTrip) {
    const std::string frame = net::encodeFrame(net::MsgType::QueryBatch, "payload");
    const auto r = net::decodeFrame(frame, net::kDefaultMaxFrameBytes);
    ASSERT_EQ(r.status, net::DecodeResult::Status::Ok);
    EXPECT_EQ(r.frame.type, net::MsgType::QueryBatch);
    EXPECT_EQ(r.frame.body, "payload");
    EXPECT_EQ(r.consumed, frame.size());
}

TEST(NetProtocol, TruncatedHeaderNeedsMore) {
    const std::string frame = net::encodeFrame(net::MsgType::Drain, "");
    for (std::size_t n = 0; n < net::kFrameHeaderSize; ++n) {
        const auto r = net::decodeFrame(frame.substr(0, n), net::kDefaultMaxFrameBytes);
        EXPECT_EQ(r.status, net::DecodeResult::Status::NeedMore) << "prefix " << n;
    }
}

TEST(NetProtocol, TruncatedBodyNeedsMore) {
    const std::string frame = net::encodeFrame(net::MsgType::Error, "some error text");
    for (std::size_t n = net::kFrameHeaderSize; n < frame.size(); ++n) {
        const auto r = net::decodeFrame(frame.substr(0, n), net::kDefaultMaxFrameBytes);
        EXPECT_EQ(r.status, net::DecodeResult::Status::NeedMore) << "prefix " << n;
    }
}

TEST(NetProtocol, GarbagePreambleIsBadMagic) {
    const auto r = net::decodeFrame("GET / HTTP/1.1\r\nHost: x\r\n\r\n",
                                    net::kDefaultMaxFrameBytes);
    EXPECT_EQ(r.status, net::DecodeResult::Status::Bad);
    EXPECT_EQ(r.error, net::ProtoError::BadMagic);
}

TEST(NetProtocol, CorruptedByteIsBadCrc) {
    std::string frame = net::encodeFrame(net::MsgType::QueryBatch, "payload");
    frame[net::kFrameHeaderSize + 2] ^= 0x01;  // flip one body bit
    const auto r = net::decodeFrame(frame, net::kDefaultMaxFrameBytes);
    EXPECT_EQ(r.status, net::DecodeResult::Status::Bad);
    EXPECT_EQ(r.error, net::ProtoError::BadCrc);
}

TEST(NetProtocol, OversizedRejectedBeforeBodyArrives) {
    // Header declaring a body over the limit must fail immediately — waiting
    // for the body would let a hostile peer hold the buffer hostage.
    std::string frame = net::encodeFrame(net::MsgType::QueryBatch, "x");
    const std::uint32_t huge = 512 + 1;
    std::memcpy(frame.data() + 8, &huge, 4);
    const auto r = net::decodeFrame(frame.substr(0, net::kFrameHeaderSize), 512);
    EXPECT_EQ(r.status, net::DecodeResult::Status::Bad);
    EXPECT_EQ(r.error, net::ProtoError::Oversized);
}

TEST(NetProtocol, UnknownTypeIsBadType) {
    std::string frame = net::encodeFrame(net::MsgType::Drain, "");
    frame[4] = 99;  // type byte; re-seal the CRC so only the type is wrong
    std::uint32_t crc = store::crc32(frame.data() + 4, 8);
    std::memcpy(frame.data() + 12, &crc, 4);
    const auto r = net::decodeFrame(frame, net::kDefaultMaxFrameBytes);
    EXPECT_EQ(r.status, net::DecodeResult::Status::Bad);
    EXPECT_EQ(r.error, net::ProtoError::BadType);
}

TEST(NetProtocol, QueryBatchBodyValidation) {
    const auto batch = makeBatch(7, {1, 2, 3}, 1234);
    const std::string body = net::encodeQueryBatch(batch);
    std::string err;

    const auto ok = net::decodeQueryBatch(body, 8, 100, &err);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->requestId, 7u);
    EXPECT_EQ(ok->deadlineMicros, 1234u);
    ASSERT_EQ(ok->keys.size(), 3u);
    EXPECT_EQ(ok->keys[1], batch.keys[1]);

    // Count above maxBatch.
    EXPECT_FALSE(net::decodeQueryBatch(body, 8, 2, &err).has_value());
    // Wrong word width: body length no longer matches count * wordBits.
    EXPECT_FALSE(net::decodeQueryBatch(body, 16, 100, &err).has_value());
    // Trailing junk.
    EXPECT_FALSE(net::decodeQueryBatch(body + "x", 8, 100, &err).has_value());
    // Truncated.
    EXPECT_FALSE(
        net::decodeQueryBatch(body.substr(0, body.size() - 1), 8, 100, &err).has_value());
    // Trit byte outside {0,1,2}.
    std::string bad = body;
    bad[bad.size() - 1] = 3;
    EXPECT_FALSE(net::decodeQueryBatch(bad, 8, 100, &err).has_value());
    // Zero queries.
    net::QueryBatchBody empty;
    empty.requestId = 1;
    EXPECT_FALSE(
        net::decodeQueryBatch(net::encodeQueryBatch(empty), 8, 100, &err).has_value());
}

TEST(NetProtocol, BatchReplyAndErrorRoundTrip) {
    net::BatchReplyBody reply;
    reply.requestId = 42;
    reply.admission = static_cast<std::uint8_t>(serve::BatchAdmission::Accepted);
    reply.rows = {0, -1, serve::kRowDeadlineExpired};
    reply.status = {net::QueryStatus::Hit, net::QueryStatus::Miss,
                    net::QueryStatus::DeadlineExceeded};
    std::string err;
    const auto back = net::decodeBatchReply(net::encodeBatchReply(reply), &err);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->requestId, 42u);
    EXPECT_EQ(back->rows, reply.rows);
    EXPECT_EQ(back->status, reply.status);

    net::ErrorBody e{net::ProtoError::ReadTimeout, "too slow"};
    const auto eb = net::decodeError(net::encodeError(e), &err);
    ASSERT_TRUE(eb.has_value());
    EXPECT_EQ(eb->code, net::ProtoError::ReadTimeout);
    EXPECT_EQ(eb->message, "too slow");

    // Reply with a status byte outside the enum.
    std::string badReply = net::encodeBatchReply(reply);
    badReply[badReply.size() - 1] = 9;
    EXPECT_FALSE(net::decodeBatchReply(badReply, &err).has_value());
}

TEST(NetProtocol, StableErrorNames) {
    EXPECT_STREQ(net::protoErrorName(net::ProtoError::BadMagic), "bad_magic");
    EXPECT_STREQ(net::protoErrorName(net::ProtoError::BadCrc), "bad_crc");
    EXPECT_STREQ(net::protoErrorName(net::ProtoError::Oversized), "oversized");
    EXPECT_STREQ(net::protoErrorName(net::ProtoError::ReadTimeout), "read_timeout");
    EXPECT_STREQ(net::protoErrorName(net::ProtoError::Truncated), "truncated");
    EXPECT_STREQ(net::queryStatusName(net::QueryStatus::Shed), "shed");
    EXPECT_STREQ(net::queryStatusName(net::QueryStatus::DeadlineExceeded),
                 "deadline_exceeded");
}

// --- server behaviour (loopback) -------------------------------------------

TEST(NetServer, ServesCorrectRowsAndHello) {
    ServerHarness h;
    net::Client client;
    client.connect("127.0.0.1", h.port());
    EXPECT_EQ(client.hello().version, net::kProtocolVersion);
    EXPECT_EQ(client.hello().wordBits, 8u);

    const auto res = client.query(makeBatch(1, {0, 3, 7}));
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.reply.rows.size(), 3u);
    EXPECT_EQ(res.reply.rows[0], 0);   // entry 0 stored at row 0
    EXPECT_EQ(res.reply.rows[1], 3);   // entry 3 stored at row 3
    EXPECT_EQ(res.reply.rows[2], -1);  // 7 was never inserted
    EXPECT_EQ(res.reply.status[0], net::QueryStatus::Hit);
    EXPECT_EQ(res.reply.status[2], net::QueryStatus::Miss);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().requests, 1);
    EXPECT_EQ(h.stats().hits, 2);
    EXPECT_EQ(h.stats().misses, 1);
    EXPECT_TRUE(h.stats().drained);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, OverloadShedsWholeRequestsWithTypedReplies) {
    net::ServerOptions opts;
    opts.maxPendingQueries = 2;
    opts.coalesceWindow = 0.2;  // hold queries pending long enough to collide
    ServerHarness h(opts);

    net::Client client;
    client.connect("127.0.0.1", h.port());

    // Two requests on one connection: frame order fixes arrival order, so the
    // first request's two queries fill the pending budget and the second must
    // be shed immediately (typed, whole-request) while the first is still
    // answered normally after the coalesce window.
    ASSERT_TRUE(client.sendRaw(
        net::encodeFrame(net::MsgType::QueryBatch,
                         net::encodeQueryBatch(makeBatch(1, {0, 1})))));
    ASSERT_TRUE(client.sendRaw(
        net::encodeFrame(net::MsgType::QueryBatch,
                         net::encodeQueryBatch(makeBatch(2, {2, 3})))));

    net::ClientResult accepted, shed;
    for (int i = 0; i < 2; ++i) {
        const auto res = client.readFrame(5.0);
        ASSERT_TRUE(res.ok);
        if (res.reply.requestId == 1)
            accepted = res;
        else
            shed = res;
    }
    EXPECT_EQ(accepted.reply.requestId, 1u);
    EXPECT_EQ(accepted.reply.admission,
              static_cast<std::uint8_t>(serve::BatchAdmission::Accepted));
    EXPECT_EQ(shed.reply.requestId, 2u);
    EXPECT_EQ(shed.reply.admission,
              static_cast<std::uint8_t>(serve::BatchAdmission::Shed));
    ASSERT_EQ(shed.reply.status.size(), 2u);
    EXPECT_EQ(shed.reply.status[0], net::QueryStatus::Shed);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().shedQueries, 2);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, ExpiredDeadlinesAnsweredWithoutScanning) {
    net::ServerOptions opts;
    opts.coalesceWindow = 0.05;  // longer than the 1us deadline below
    ServerHarness h(opts);
    net::Client client;
    client.connect("127.0.0.1", h.port());

    const auto res = client.query(makeBatch(1, {0, 1}, /*deadlineMicros=*/1));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.reply.status[0], net::QueryStatus::DeadlineExceeded);
    EXPECT_EQ(res.reply.status[1], net::QueryStatus::DeadlineExceeded);
    EXPECT_EQ(res.reply.rows[0], serve::kRowDeadlineExpired);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().expiredQueries, 2);
    EXPECT_EQ(h.engine().stats().deadlineExpired, 2);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, BadConnectionDiesAloneNeighboursUnaffected) {
    ServerHarness h;
    net::Client good;
    good.connect("127.0.0.1", h.port());
    net::Client bad;
    bad.connect("127.0.0.1", h.port());

    // Garbage preamble: the bad peer gets a typed Error frame, then its
    // connection — and only its connection — is closed.
    ASSERT_TRUE(bad.sendRaw("this is definitely not a frame"));
    const auto err = bad.readFrame(5.0);
    EXPECT_EQ(err.error, net::ProtoError::BadMagic);
    const auto eof = bad.readFrame(5.0);
    EXPECT_TRUE(eof.disconnected);

    const auto res = good.query(makeBatch(1, {2}));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.reply.rows[0], 2);

    good.close();
    h.stop();
    EXPECT_EQ(h.stats().errorCounts[static_cast<std::size_t>(net::ProtoError::BadMagic)], 1);
    EXPECT_EQ(h.stats().connectionsDropped, 1);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, OversizedFrameRejectedWithTypedError) {
    net::ServerOptions opts;
    opts.maxFrameBytes = 256;
    ServerHarness h(opts);
    net::Client client;
    client.connect("127.0.0.1", h.port());

    // Header declaring a 1 MiB body against a 256-byte limit.
    std::string frame = net::encodeFrame(net::MsgType::QueryBatch, "x");
    const std::uint32_t huge = 1u << 20;
    std::memcpy(frame.data() + 8, &huge, 4);
    ASSERT_TRUE(client.sendRaw(frame.substr(0, net::kFrameHeaderSize)));
    const auto err = client.readFrame(5.0);
    EXPECT_EQ(err.error, net::ProtoError::Oversized);

    h.stop();
    EXPECT_EQ(h.stats().errorCounts[static_cast<std::size_t>(net::ProtoError::Oversized)],
              1);
}

TEST(NetServer, SlowlorisCutByReadTimeout) {
    net::ServerOptions opts;
    opts.readTimeout = 0.15;
    ServerHarness h(opts);
    net::Client stalled;
    stalled.connect("127.0.0.1", h.port());
    net::Client good;
    good.connect("127.0.0.1", h.port());

    // Half a frame, then silence: the server must cut the stalled peer after
    // readTimeout with a typed error, not hold the parse buffer forever.
    const std::string frame =
        net::encodeFrame(net::MsgType::QueryBatch, net::encodeQueryBatch(makeBatch(1, {0})));
    ASSERT_TRUE(stalled.sendRaw(frame.substr(0, net::kFrameHeaderSize + 2)));
    const auto err = stalled.readFrame(5.0);
    EXPECT_EQ(err.error, net::ProtoError::ReadTimeout);

    // An idle-but-quiet neighbour (no partial frame) must NOT be cut.
    const auto res = good.query(makeBatch(2, {1}));
    ASSERT_TRUE(res.ok);

    good.close();
    h.stop();
    EXPECT_EQ(
        h.stats().errorCounts[static_cast<std::size_t>(net::ProtoError::ReadTimeout)], 1);
}

TEST(NetServer, DisconnectMidFrameCountedAsTruncated) {
    ServerHarness h;
    {
        net::Client client;
        client.connect("127.0.0.1", h.port());
        const std::string frame = net::encodeFrame(
            net::MsgType::QueryBatch, net::encodeQueryBatch(makeBatch(1, {0, 1, 2})));
        ASSERT_TRUE(client.sendRaw(frame.substr(0, frame.size() - 3)));
        client.close();
    }
    // On loopback the torn bytes and FIN are already queued, so the drain
    // pass reads the EOF (and counts it) before run() exits.
    h.stop();
    EXPECT_EQ(h.stats().errorCounts[static_cast<std::size_t>(net::ProtoError::Truncated)],
              1);
    EXPECT_EQ(h.stats().requests, 0);  // the torn request never parsed
}

TEST(NetServer, ClientFaultPlanInjectsTornFrame) {
    ServerHarness h;
    recover::FaultPlan plan;
    recover::FaultSpec spec;
    spec.kind = recover::FaultKind::TornFrame;
    spec.fromSolve = 0;
    spec.toSolve = 1;
    plan.add(spec);

    net::Client client;
    client.connect("127.0.0.1", h.port());
    {
        recover::ScopedFaultPlan guard(plan);
        const auto res = client.query(makeBatch(1, {0, 1}));
        EXPECT_TRUE(res.faultInjected);
        EXPECT_FALSE(res.ok);
    }
    EXPECT_EQ(plan.framesSeen(), 1);
    EXPECT_EQ(plan.injectionCount(), 1);

    // Reconnect and serve normally — the fault consumed its window.
    client.connect("127.0.0.1", h.port());
    {
        recover::ScopedFaultPlan guard(plan);
        const auto res = client.query(makeBatch(2, {0}));
        ASSERT_TRUE(res.ok);
        EXPECT_EQ(res.reply.rows[0], 0);
    }
    client.close();

    for (int i = 0; i < 100 && h.stats().protoErrors == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    h.stop();
    EXPECT_EQ(h.stats().errorCounts[static_cast<std::size_t>(net::ProtoError::Truncated)],
              1);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, DrainAnswersInFlightThenExits) {
    net::ServerOptions opts;
    opts.coalesceWindow = 0.2;  // queries sit pending when the stop arrives
    ServerHarness h(opts);
    net::Client client;
    client.connect("127.0.0.1", h.port());

    std::thread querier([&] {
        // In flight when requestStop() lands; drain must still answer it.
        const auto res = client.query(makeBatch(1, {0, 7}), 5.0);
        ASSERT_TRUE(res.ok);
        EXPECT_EQ(res.reply.rows[0], 0);
        EXPECT_EQ(res.reply.rows[1], -1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    h.server().requestStop();
    querier.join();
    h.stop();

    EXPECT_TRUE(h.stats().drained);
    EXPECT_FALSE(h.stats().drainForced);
    EXPECT_EQ(h.stats().hits, 1);
    EXPECT_EQ(h.stats().misses, 1);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, FuzzRandomBytesNeverKillTheServer) {
    ServerHarness h;
    numeric::Rng rng(0xF022);
    for (int round = 0; round < 40; ++round) {
        net::Client fuzzer;
        fuzzer.connect("127.0.0.1", h.port());
        std::string noise(static_cast<std::size_t>(rng.uniformInt(1, 200)), '\0');
        for (auto& c : noise) c = static_cast<char>(rng.uniformInt(0, 255));
        fuzzer.sendRaw(noise);
        // Whatever happened — typed error, silent drop, instant close — the
        // fuzzer connection is gone or dying; the server must still be up.
        fuzzer.close();
    }
    net::Client wellFormed;
    wellFormed.connect("127.0.0.1", h.port());
    const auto res = wellFormed.query(makeBatch(99, {1, 2}));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.reply.rows[0], 1);
    EXPECT_EQ(res.reply.rows[1], 2);
    wellFormed.close();
    h.stop();
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, StatsJsonIsWellFormedAndDeterministicFields) {
    ServerHarness h;
    net::Client client;
    client.connect("127.0.0.1", h.port());
    ASSERT_TRUE(client.query(makeBatch(1, {0})).ok);
    client.close();
    h.stop();
    const std::string json = h.server().statsJson();
    EXPECT_NE(json.find("\"requests\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"queries\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"drained\": true"), std::string::npos);
    EXPECT_EQ(json.find("seconds"), std::string::npos);  // no wall-clock inside
}

TEST(NetServer, RejectsInvalidOptions) {
    serve::QueryEngine engine(smallOptions());
    net::ServerOptions opts;
    opts.maxBatch = 0;
    EXPECT_THROW(net::Server(engine, opts), recover::SimError);
    opts = {};
    opts.readTimeout = 0.0;
    EXPECT_THROW(net::Server(engine, opts), recover::SimError);
    opts = {};
    opts.host = "not-an-address";
    net::Server bad(engine, opts);
    EXPECT_THROW(bad.start(), recover::SimError);
}

// --- table mutation over the wire (protocol v2) ----------------------------

TEST(NetProtocol, MutateRoundTrip) {
    net::MutateBody body;
    body.requestId = 77;
    net::MutateOpSpec ins;
    ins.op = net::MutateOp::Insert;
    ins.word = tcam::TernaryWord::fromBits(0xA5, 8);
    net::MutateOpSpec at;
    at.op = net::MutateOp::InsertAt;
    at.row = 3;
    at.word = tcam::TernaryWord(8, tcam::Trit::X);
    net::MutateOpSpec del;
    del.op = net::MutateOp::Erase;
    del.row = 5;
    body.ops = {ins, at, del};

    std::string err;
    const auto decoded = net::decodeMutate(net::encodeMutate(body), 8, 16, &err);
    ASSERT_TRUE(decoded.has_value()) << err;
    EXPECT_EQ(decoded->requestId, 77u);
    ASSERT_EQ(decoded->ops.size(), 3u);
    EXPECT_EQ(decoded->ops[0].op, net::MutateOp::Insert);
    EXPECT_TRUE(decoded->ops[0].word == ins.word);
    EXPECT_EQ(decoded->ops[1].op, net::MutateOp::InsertAt);
    EXPECT_EQ(decoded->ops[1].row, 3);
    EXPECT_TRUE(decoded->ops[1].word == at.word);
    EXPECT_EQ(decoded->ops[2].op, net::MutateOp::Erase);
    EXPECT_EQ(decoded->ops[2].row, 5);
    EXPECT_EQ(decoded->ops[2].word.size(), 0u);  // no word bytes on the wire
}

TEST(NetProtocol, MutateBodyValidation) {
    net::MutateBody body;
    body.requestId = 1;
    net::MutateOpSpec op;
    op.op = net::MutateOp::InsertAt;
    op.row = 0;
    op.word = tcam::TernaryWord::fromBits(3, 8);
    body.ops = {op};
    const std::string good = net::encodeMutate(body);
    std::string err;

    // Empty op list.
    net::MutateBody empty;
    empty.requestId = 2;
    EXPECT_FALSE(net::decodeMutate(net::encodeMutate(empty), 8, 16, &err).has_value());

    // More ops than the server's batch cap.
    EXPECT_FALSE(net::decodeMutate(good, 8, 0, &err).has_value());

    // Truncated: cut mid-word.
    EXPECT_FALSE(
        net::decodeMutate(std::string_view(good).substr(0, good.size() - 3), 8, 16, &err)
            .has_value());

    // Trailing junk after the declared ops.
    EXPECT_FALSE(net::decodeMutate(good + "x", 8, 16, &err).has_value());

    // Trit byte outside {0, 1, 2}.
    std::string bad = good;
    bad[bad.size() - 1] = 7;
    EXPECT_FALSE(net::decodeMutate(bad, 8, 16, &err).has_value());

    // Unknown op byte (first byte after requestId u64 + count u32).
    bad = good;
    bad[12] = 9;
    EXPECT_FALSE(net::decodeMutate(bad, 8, 16, &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(NetProtocol, MutateReplyRoundTripAndValidation) {
    net::MutateReplyBody reply;
    reply.requestId = 9;
    reply.rows = {4, -1};
    reply.status = {net::MutateStatus::Ok, net::MutateStatus::TableFull};

    std::string err;
    const auto decoded = net::decodeMutateReply(net::encodeMutateReply(reply), &err);
    ASSERT_TRUE(decoded.has_value()) << err;
    EXPECT_EQ(decoded->requestId, 9u);
    EXPECT_EQ(decoded->rows, reply.rows);
    ASSERT_EQ(decoded->status.size(), 2u);
    EXPECT_EQ(decoded->status[1], net::MutateStatus::TableFull);

    // Status byte out of range.
    std::string bad = net::encodeMutateReply(reply);
    bad[bad.size() - 1] = 99;
    EXPECT_FALSE(net::decodeMutateReply(bad, &err).has_value());
}

TEST(NetProtocol, StableMutateNames) {
    EXPECT_STREQ(net::mutateOpName(net::MutateOp::Insert), "insert");
    EXPECT_STREQ(net::mutateOpName(net::MutateOp::InsertAt), "insert_at");
    EXPECT_STREQ(net::mutateOpName(net::MutateOp::Erase), "erase");
    EXPECT_STREQ(net::mutateStatusName(net::MutateStatus::Ok), "ok");
    EXPECT_STREQ(net::mutateStatusName(net::MutateStatus::TableFull), "table_full");
    EXPECT_STREQ(net::mutateStatusName(net::MutateStatus::InvalidRow), "invalid_row");
    EXPECT_STREQ(net::mutateStatusName(net::MutateStatus::Rejected), "rejected");
}

TEST(NetServer, MutateAppliesOpsAndSearchesSeeThem) {
    ServerHarness h;  // entries 0..3 at rows 0..3; capacity 8
    net::Client client;
    client.connect("127.0.0.1", h.port());

    net::MutateBody body;
    body.requestId = 50;
    net::MutateOpSpec ins;  // first-free-row insert lands at row 4
    ins.op = net::MutateOp::Insert;
    ins.word = tcam::TernaryWord::fromBits(7, 8);
    net::MutateOpSpec del;  // drop entry 1
    del.op = net::MutateOp::Erase;
    del.row = 1;
    net::MutateOpSpec oob;  // typed per-op failure, not a dead connection
    oob.op = net::MutateOp::Erase;
    oob.row = 100;
    body.ops = {ins, del, oob};

    const auto res = client.mutate(body);
    ASSERT_TRUE(res.ok);
    ASSERT_TRUE(res.mutateReply.has_value());
    ASSERT_EQ(res.mutateReply->rows.size(), 3u);
    EXPECT_EQ(res.mutateReply->rows[0], 4);
    EXPECT_EQ(res.mutateReply->status[0], net::MutateStatus::Ok);
    EXPECT_EQ(res.mutateReply->rows[1], 1);
    EXPECT_EQ(res.mutateReply->status[1], net::MutateStatus::Ok);
    EXPECT_EQ(res.mutateReply->rows[2], -1);
    EXPECT_EQ(res.mutateReply->status[2], net::MutateStatus::InvalidRow);

    // Same connection immediately observes the mutated table.
    const auto q = client.query(makeBatch(51, {7, 1, 0}));
    ASSERT_TRUE(q.ok);
    EXPECT_EQ(q.reply.rows[0], 4);   // the new entry
    EXPECT_EQ(q.reply.rows[1], -1);  // erased
    EXPECT_EQ(q.reply.rows[2], 0);   // untouched

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().mutateRequests, 1);
    EXPECT_EQ(h.stats().mutateOps, 3);
    EXPECT_EQ(h.stats().mutateFailed, 1);
    expectAccountingInvariant(h.stats());
}

TEST(NetServer, MutateInsertIntoFullTableIsTypedTableFull) {
    ServerHarness h({}, 8);  // capacity 8, fully seeded
    net::Client client;
    client.connect("127.0.0.1", h.port());

    net::MutateBody body;
    body.requestId = 60;
    net::MutateOpSpec ins;
    ins.op = net::MutateOp::Insert;
    ins.word = tcam::TernaryWord::fromBits(0xEE, 8);
    body.ops = {ins};

    const auto res = client.mutate(body);
    ASSERT_TRUE(res.ok);
    ASSERT_TRUE(res.mutateReply.has_value());
    EXPECT_EQ(res.mutateReply->rows[0], -1);
    EXPECT_EQ(res.mutateReply->status[0], net::MutateStatus::TableFull);

    client.close();
    h.stop();
}

TEST(NetServer, MutateWidthMismatchRejectedClientSide) {
    ServerHarness h;
    net::Client client;
    client.connect("127.0.0.1", h.port());

    net::MutateBody body;
    body.requestId = 70;
    net::MutateOpSpec ins;
    ins.op = net::MutateOp::Insert;
    ins.word = tcam::TernaryWord::fromBits(1, 16);  // server speaks 8-bit words
    body.ops = {ins};

    const auto res = client.mutate(body);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, net::ProtoError::WidthMismatch);

    client.close();
    h.stop();
    EXPECT_EQ(h.stats().mutateRequests, 0);  // never reached the server
}
