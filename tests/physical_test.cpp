// Physical-effects extensions: FeFET endurance (wake-up/fatigue), process
// corners, and the distributed matchline model.
#include <gtest/gtest.h>

#include "array/word_sim.hpp"
#include "array/energy_model.hpp"
#include "device/fefet.hpp"
#include "device/tech.hpp"

using namespace fetcam;

namespace {
const device::TechCard kTech = device::TechCard::cmos45();
}

TEST(Endurance, WakeupThenFatigue) {
    device::PreisachBank bank(kTech.fefet.ferro);
    const double pristine = bank.enduranceFactor(0.0);
    const double wokeUp = bank.enduranceFactor(1e4);
    const double plateau = bank.enduranceFactor(1e5);
    const double fatigued = bank.enduranceFactor(1e9);
    const double deep = bank.enduranceFactor(1e15);
    EXPECT_LT(pristine, 1.0);
    EXPECT_NEAR(wokeUp, 1.0, 1e-9);
    EXPECT_NEAR(plateau, 1.0, 1e-9);
    EXPECT_LT(fatigued, plateau);
    EXPECT_GE(deep, kTech.fefet.ferro.fatigueFloor);  // floored
    EXPECT_THROW(bank.enduranceFactor(-1.0), std::invalid_argument);
}

TEST(Endurance, ScalesPolarizationAndVtWindow) {
    spice::Circuit c;
    auto& fet = c.add<device::FeFet>("F", c.node("g"), c.node("d"), spice::kGround,
                                     kTech.fefet);
    fet.setPolarization(1.0);
    const double vtFresh = fet.vtEff();
    fet.setCyclingHistory(1e10);
    EXPECT_LT(fet.pnorm(), 1.0);
    EXPECT_GT(fet.vtEff(), vtFresh);  // window closes toward the mid VT
}

TEST(Endurance, MonotoneFatigueBeyondOnset) {
    device::PreisachBank bank(kTech.fefet.ferro);
    double prev = 1.0;
    for (double n = 1e6; n <= 1e14; n *= 100.0) {
        const double f = bank.enduranceFactor(n);
        EXPECT_LE(f, prev);
        prev = f;
    }
}

TEST(Corners, SkewDirections) {
    const auto tt = kTech.atCorner(device::Corner::TT);
    const auto ff = kTech.atCorner(device::Corner::FF);
    const auto ss = kTech.atCorner(device::Corner::SS);
    const auto fs = kTech.atCorner(device::Corner::FS);
    EXPECT_DOUBLE_EQ(tt.nmos.vt0, kTech.nmos.vt0);
    EXPECT_LT(ff.nmos.vt0, kTech.nmos.vt0);
    EXPECT_GT(ff.nmos.kp, kTech.nmos.kp);
    EXPECT_GT(ss.nmos.vt0, kTech.nmos.vt0);
    EXPECT_LT(ss.pmos.kp, kTech.pmos.kp);
    EXPECT_LT(fs.nmos.vt0, kTech.nmos.vt0);
    EXPECT_GT(fs.pmos.vt0, kTech.pmos.vt0);
    // FeFET channel follows NMOS; ferroelectric untouched.
    EXPECT_LT(ff.fefet.mos.vt0, kTech.fefet.mos.vt0);
    EXPECT_DOUBLE_EQ(ff.fefet.ferro.vcMean, kTech.fefet.ferro.vcMean);
}

TEST(Corners, SearchFunctionalAtAllCorners) {
    for (const auto corner : {device::Corner::TT, device::Corner::FF, device::Corner::SS,
                              device::Corner::FS, device::Corner::SF}) {
        array::WordSimOptions o;
        o.tech = kTech.atCorner(corner);
        o.config.cell = tcam::CellKind::FeFet2;
        o.config.wordBits = 8;
        o.stored = array::calibrationWord(8);
        o.key = o.stored;
        EXPECT_TRUE(simulateWordSearch(o).matchDetected) << cornerName(corner);
        o.key = array::keyWithMismatches(o.stored, 1);
        EXPECT_FALSE(simulateWordSearch(o).matchDetected) << cornerName(corner);
    }
}

TEST(Corners, SlowCornerIsSlower) {
    auto run = [&](device::Corner corner) {
        array::WordSimOptions o;
        o.tech = kTech.atCorner(corner);
        o.config.cell = tcam::CellKind::FeFet2;
        o.config.wordBits = 16;
        o.stored = array::calibrationWord(16);
        o.key = array::keyWithMismatches(o.stored, 1);
        return *simulateWordSearch(o).detectDelay;
    };
    EXPECT_GT(run(device::Corner::SS), run(device::Corner::TT));
    EXPECT_GT(run(device::Corner::TT), run(device::Corner::FF));
}

TEST(DistributedMl, AgreesWithLumpedAtSmallWidth) {
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::FeFet2;
    o.config.wordBits = 8;
    o.stored = array::calibrationWord(8);
    o.key = array::keyWithMismatches(o.stored, 1);
    const auto lumped = simulateWordSearch(o);
    o.config.distributedMl = true;
    const auto dist = simulateWordSearch(o);
    ASSERT_TRUE(lumped.detectDelay && dist.detectDelay);
    EXPECT_FALSE(dist.matchDetected);
    // At 8 cells the wire RC is negligible: within ~15%.
    EXPECT_NEAR(*dist.detectDelay, *lumped.detectDelay, 0.15 * *lumped.detectDelay);
    EXPECT_NEAR(dist.energyMl, lumped.energyMl, 0.15 * lumped.energyMl);
}

TEST(DistributedMl, WideWordsShowWireDelay) {
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::FeFet2;
    o.config.wordBits = 128;
    o.stored = array::calibrationWord(128);
    // Mismatch at the FAR end of the line from the sense amp: worst case.
    o.key = o.stored;
    for (std::size_t i = o.stored.size(); i-- > 0;) {
        if (o.stored[i] == tcam::Trit::X) continue;
        o.key[i] = o.stored[i] == tcam::Trit::One ? tcam::Trit::Zero : tcam::Trit::One;
        break;
    }
    const auto lumped = simulateWordSearch(o);
    o.config.distributedMl = true;
    const auto dist = simulateWordSearch(o);
    ASSERT_TRUE(lumped.detectDelay && dist.detectDelay);
    EXPECT_GT(*dist.detectDelay, *lumped.detectDelay);  // wire RC adds delay
    EXPECT_FALSE(dist.matchDetected);                   // still functional
}

TEST(DistributedMl, MatchCaseStillHolds) {
    array::WordSimOptions o;
    o.config.cell = tcam::CellKind::FeFet2;
    o.config.wordBits = 32;
    o.config.distributedMl = true;
    o.stored = array::calibrationWord(32);
    o.key = o.stored;
    const auto r = simulateWordSearch(o);
    EXPECT_TRUE(r.matchDetected);
    EXPECT_GT(r.mlAtSense, 0.9);
}
