// TcamMacro and Dictionary tests: entry management semantics, priority,
// energy accounting consistency, and signature compilation/matching.
#include <gtest/gtest.h>

#include "recover/sim_error.hpp"

#include "apps/dictionary.hpp"
#include "core/tcam_macro.hpp"

using namespace fetcam;
using apps::Dictionary;
using core::TcamMacro;
using tcam::TernaryWord;

namespace {

TcamMacro makeMacro(std::size_t capacity = 8, int rows = 8) {
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = rows;
    return TcamMacro(device::TechCard::cmos45(), cfg, capacity);
}

}  // namespace

TEST(TcamMacro, WriteSearchErase) {
    auto macro = makeMacro();
    EXPECT_EQ(macro.capacity(), 8u);
    EXPECT_EQ(macro.occupancy(), 0u);
    const int r0 = macro.write(TernaryWord::fromString("1010XXXX"));
    const int r1 = macro.write(TernaryWord::fromString("10100000"));
    EXPECT_EQ(r0, 0);
    EXPECT_EQ(r1, 1);
    EXPECT_EQ(macro.occupancy(), 2u);

    // Priority: row 0 wins even though both match.
    EXPECT_EQ(macro.search(TernaryWord::fromString("10100000")), 0);
    macro.erase(0);
    EXPECT_EQ(macro.search(TernaryWord::fromString("10100000")), 1);
    EXPECT_EQ(macro.search(TernaryWord::fromString("11111111")), std::nullopt);
    EXPECT_EQ(macro.occupancy(), 1u);
    EXPECT_FALSE(macro.entryAt(0).has_value());
    ASSERT_TRUE(macro.entryAt(1).has_value());
}

TEST(TcamMacro, EnergyAccounting) {
    auto macro = makeMacro();
    macro.write(TernaryWord::fromString("00000000"));
    macro.search(TernaryWord::fromString("00000000"));
    macro.search(TernaryWord::fromString("11111111"));
    const auto& s = macro.stats();
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.searches, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_NEAR(s.searchEnergy, 2.0 * macro.energyPerSearch(), 1e-20);
    EXPECT_NEAR(s.writeEnergy, macro.energyPerWrite(), 1e-20);
    EXPECT_GT(s.totalEnergy(), 0.0);
    EXPECT_GT(macro.searchLatency(), 0.0);
    EXPECT_GT(macro.writeLatency(), 0.0);
}

TEST(TcamMacro, CapacityRoundsUpToSubArrays) {
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;
    cfg.wordBits = 8;
    cfg.rows = 8;
    TcamMacro macro(device::TechCard::cmos45(), cfg, 10);  // -> 2 sub-arrays
    EXPECT_EQ(macro.capacity(), 16u);
    EXPECT_EQ(macro.hardware().subArrays, 2);
}

TEST(TcamMacro, Validation) {
    auto macro = makeMacro(2, /*rows=*/2);
    macro.write(TernaryWord::fromString("00000000"));
    macro.write(TernaryWord::fromString("00000001"));
    EXPECT_THROW(macro.write(TernaryWord::fromString("00000010")), std::length_error);
    EXPECT_THROW(macro.write(TernaryWord::fromString("00")), recover::SimError);
    EXPECT_THROW(macro.search(TernaryWord::fromString("00")), recover::SimError);
    EXPECT_THROW(macro.erase(99), std::out_of_range);
    EXPECT_THROW(macro.writeAt(-1, TernaryWord::fromString("00000000")),
                 std::out_of_range);
}

TEST(TcamMacro, EraseOfEmptyRowIsFreeNoop) {
    auto macro = makeMacro();
    const auto before = macro.stats().writeEnergy;
    macro.erase(3);
    EXPECT_EQ(macro.stats().erases, 0u);
    EXPECT_DOUBLE_EQ(macro.stats().writeEnergy, before);
}

TEST(Dictionary, CompileTokenLayout) {
    const auto w = apps::compileToken("A", 2);
    EXPECT_EQ(w.size(), 16u);
    // 'A' = 0x41 = 01000001.
    EXPECT_EQ(w.toString().substr(0, 8), "01000001");
    // Padding is wildcard: prefix-match semantics.
    EXPECT_EQ(w.toString().substr(8, 8), "XXXXXXXX");
    EXPECT_THROW(apps::compileToken("toolong", 2), std::invalid_argument);
}

TEST(Dictionary, WildcardCharacter) {
    const auto w = apps::compileToken("a?c", 3);
    EXPECT_EQ(w.toString().substr(8, 8), "XXXXXXXX");
    EXPECT_TRUE(w.matches(apps::compileText("abc", 3)));
    EXPECT_TRUE(w.matches(apps::compileText("azc", 3)));
    EXPECT_FALSE(w.matches(apps::compileText("abX", 3)));
}

TEST(Dictionary, PriorityAndMultiHit) {
    Dictionary d(8);
    d.add("GET ?", 1);    // any GET
    d.add("GET /a", 2);   // more specific but lower priority (added later)
    d.add("POST", 3);
    EXPECT_EQ(d.match("GET /abc"), 1);
    const auto all = d.matchAll("GET /abc");
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], 1);
    EXPECT_EQ(all[1], 2);
    EXPECT_EQ(d.match("POST /x"), 3);
    EXPECT_EQ(d.match("PUT /x"), std::nullopt);
    EXPECT_EQ(d.patterns().size(), 3u);
}

TEST(Dictionary, PrefixSemantics) {
    Dictionary d(8);
    d.add("cat", 7);
    EXPECT_EQ(d.match("cat"), 7);
    EXPECT_EQ(d.match("catalog"), 7);  // trailing wildcards: prefix signature
    EXPECT_EQ(d.match("dog"), std::nullopt);
}
