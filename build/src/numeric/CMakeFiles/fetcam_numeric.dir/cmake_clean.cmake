file(REMOVE_RECURSE
  "CMakeFiles/fetcam_numeric.dir/complex_matrix.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/complex_matrix.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/dense_matrix.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/interp.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/interp.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/optimize.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/optimize.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/sparse_matrix.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/fetcam_numeric.dir/stats.cpp.o"
  "CMakeFiles/fetcam_numeric.dir/stats.cpp.o.d"
  "libfetcam_numeric.a"
  "libfetcam_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
