
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/complex_matrix.cpp" "src/numeric/CMakeFiles/fetcam_numeric.dir/complex_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/fetcam_numeric.dir/complex_matrix.cpp.o.d"
  "/root/repo/src/numeric/dense_matrix.cpp" "src/numeric/CMakeFiles/fetcam_numeric.dir/dense_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/fetcam_numeric.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/numeric/interp.cpp" "src/numeric/CMakeFiles/fetcam_numeric.dir/interp.cpp.o" "gcc" "src/numeric/CMakeFiles/fetcam_numeric.dir/interp.cpp.o.d"
  "/root/repo/src/numeric/optimize.cpp" "src/numeric/CMakeFiles/fetcam_numeric.dir/optimize.cpp.o" "gcc" "src/numeric/CMakeFiles/fetcam_numeric.dir/optimize.cpp.o.d"
  "/root/repo/src/numeric/sparse_matrix.cpp" "src/numeric/CMakeFiles/fetcam_numeric.dir/sparse_matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/fetcam_numeric.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/numeric/stats.cpp" "src/numeric/CMakeFiles/fetcam_numeric.dir/stats.cpp.o" "gcc" "src/numeric/CMakeFiles/fetcam_numeric.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
