file(REMOVE_RECURSE
  "libfetcam_array.a"
)
