file(REMOVE_RECURSE
  "CMakeFiles/fetcam_array.dir/bank.cpp.o"
  "CMakeFiles/fetcam_array.dir/bank.cpp.o.d"
  "CMakeFiles/fetcam_array.dir/energy_model.cpp.o"
  "CMakeFiles/fetcam_array.dir/energy_model.cpp.o.d"
  "CMakeFiles/fetcam_array.dir/montecarlo.cpp.o"
  "CMakeFiles/fetcam_array.dir/montecarlo.cpp.o.d"
  "CMakeFiles/fetcam_array.dir/word_sim.cpp.o"
  "CMakeFiles/fetcam_array.dir/word_sim.cpp.o.d"
  "libfetcam_array.a"
  "libfetcam_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
