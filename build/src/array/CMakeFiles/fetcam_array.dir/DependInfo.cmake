
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/bank.cpp" "src/array/CMakeFiles/fetcam_array.dir/bank.cpp.o" "gcc" "src/array/CMakeFiles/fetcam_array.dir/bank.cpp.o.d"
  "/root/repo/src/array/energy_model.cpp" "src/array/CMakeFiles/fetcam_array.dir/energy_model.cpp.o" "gcc" "src/array/CMakeFiles/fetcam_array.dir/energy_model.cpp.o.d"
  "/root/repo/src/array/montecarlo.cpp" "src/array/CMakeFiles/fetcam_array.dir/montecarlo.cpp.o" "gcc" "src/array/CMakeFiles/fetcam_array.dir/montecarlo.cpp.o.d"
  "/root/repo/src/array/word_sim.cpp" "src/array/CMakeFiles/fetcam_array.dir/word_sim.cpp.o" "gcc" "src/array/CMakeFiles/fetcam_array.dir/word_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcam/CMakeFiles/fetcam_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fetcam_device.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
