# Empty compiler generated dependencies file for fetcam_array.
# This may be replaced when dependencies are built.
