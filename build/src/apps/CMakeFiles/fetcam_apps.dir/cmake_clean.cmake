file(REMOVE_RECURSE
  "CMakeFiles/fetcam_apps.dir/classifier.cpp.o"
  "CMakeFiles/fetcam_apps.dir/classifier.cpp.o.d"
  "CMakeFiles/fetcam_apps.dir/dictionary.cpp.o"
  "CMakeFiles/fetcam_apps.dir/dictionary.cpp.o.d"
  "CMakeFiles/fetcam_apps.dir/hamming.cpp.o"
  "CMakeFiles/fetcam_apps.dir/hamming.cpp.o.d"
  "CMakeFiles/fetcam_apps.dir/lpm.cpp.o"
  "CMakeFiles/fetcam_apps.dir/lpm.cpp.o.d"
  "CMakeFiles/fetcam_apps.dir/tlb.cpp.o"
  "CMakeFiles/fetcam_apps.dir/tlb.cpp.o.d"
  "CMakeFiles/fetcam_apps.dir/workloads.cpp.o"
  "CMakeFiles/fetcam_apps.dir/workloads.cpp.o.d"
  "libfetcam_apps.a"
  "libfetcam_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
