file(REMOVE_RECURSE
  "libfetcam_apps.a"
)
