# Empty dependencies file for fetcam_apps.
# This may be replaced when dependencies are built.
