file(REMOVE_RECURSE
  "CMakeFiles/fetcam_core.dir/design_space.cpp.o"
  "CMakeFiles/fetcam_core.dir/design_space.cpp.o.d"
  "CMakeFiles/fetcam_core.dir/report.cpp.o"
  "CMakeFiles/fetcam_core.dir/report.cpp.o.d"
  "CMakeFiles/fetcam_core.dir/tcam_macro.cpp.o"
  "CMakeFiles/fetcam_core.dir/tcam_macro.cpp.o.d"
  "CMakeFiles/fetcam_core.dir/tuner.cpp.o"
  "CMakeFiles/fetcam_core.dir/tuner.cpp.o.d"
  "libfetcam_core.a"
  "libfetcam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
