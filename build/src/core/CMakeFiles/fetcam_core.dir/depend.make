# Empty dependencies file for fetcam_core.
# This may be replaced when dependencies are built.
