file(REMOVE_RECURSE
  "libfetcam_core.a"
)
