file(REMOVE_RECURSE
  "CMakeFiles/fetcam_spice.dir/ac.cpp.o"
  "CMakeFiles/fetcam_spice.dir/ac.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/circuit.cpp.o"
  "CMakeFiles/fetcam_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/dcop.cpp.o"
  "CMakeFiles/fetcam_spice.dir/dcop.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/mna.cpp.o"
  "CMakeFiles/fetcam_spice.dir/mna.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/newton.cpp.o"
  "CMakeFiles/fetcam_spice.dir/newton.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/transient.cpp.o"
  "CMakeFiles/fetcam_spice.dir/transient.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/waveform.cpp.o"
  "CMakeFiles/fetcam_spice.dir/waveform.cpp.o.d"
  "CMakeFiles/fetcam_spice.dir/waveform_io.cpp.o"
  "CMakeFiles/fetcam_spice.dir/waveform_io.cpp.o.d"
  "libfetcam_spice.a"
  "libfetcam_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
