file(REMOVE_RECURSE
  "CMakeFiles/fetcam_device.dir/extras.cpp.o"
  "CMakeFiles/fetcam_device.dir/extras.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/fefet.cpp.o"
  "CMakeFiles/fetcam_device.dir/fefet.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/ferro.cpp.o"
  "CMakeFiles/fetcam_device.dir/ferro.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/mosfet.cpp.o"
  "CMakeFiles/fetcam_device.dir/mosfet.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/netlist.cpp.o"
  "CMakeFiles/fetcam_device.dir/netlist.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/passives.cpp.o"
  "CMakeFiles/fetcam_device.dir/passives.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/reram.cpp.o"
  "CMakeFiles/fetcam_device.dir/reram.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/sources.cpp.o"
  "CMakeFiles/fetcam_device.dir/sources.cpp.o.d"
  "CMakeFiles/fetcam_device.dir/tech.cpp.o"
  "CMakeFiles/fetcam_device.dir/tech.cpp.o.d"
  "libfetcam_device.a"
  "libfetcam_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
