file(REMOVE_RECURSE
  "libfetcam_device.a"
)
