
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/extras.cpp" "src/device/CMakeFiles/fetcam_device.dir/extras.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/extras.cpp.o.d"
  "/root/repo/src/device/fefet.cpp" "src/device/CMakeFiles/fetcam_device.dir/fefet.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/fefet.cpp.o.d"
  "/root/repo/src/device/ferro.cpp" "src/device/CMakeFiles/fetcam_device.dir/ferro.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/ferro.cpp.o.d"
  "/root/repo/src/device/mosfet.cpp" "src/device/CMakeFiles/fetcam_device.dir/mosfet.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/mosfet.cpp.o.d"
  "/root/repo/src/device/netlist.cpp" "src/device/CMakeFiles/fetcam_device.dir/netlist.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/netlist.cpp.o.d"
  "/root/repo/src/device/passives.cpp" "src/device/CMakeFiles/fetcam_device.dir/passives.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/passives.cpp.o.d"
  "/root/repo/src/device/reram.cpp" "src/device/CMakeFiles/fetcam_device.dir/reram.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/reram.cpp.o.d"
  "/root/repo/src/device/sources.cpp" "src/device/CMakeFiles/fetcam_device.dir/sources.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/sources.cpp.o.d"
  "/root/repo/src/device/tech.cpp" "src/device/CMakeFiles/fetcam_device.dir/tech.cpp.o" "gcc" "src/device/CMakeFiles/fetcam_device.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
