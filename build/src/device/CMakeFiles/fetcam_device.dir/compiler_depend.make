# Empty compiler generated dependencies file for fetcam_device.
# This may be replaced when dependencies are built.
