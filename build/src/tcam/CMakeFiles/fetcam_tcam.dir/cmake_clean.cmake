file(REMOVE_RECURSE
  "CMakeFiles/fetcam_tcam.dir/cell.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/cell.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/cell_builder.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/cell_builder.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/ternary.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/ternary.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/write.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/write.cpp.o.d"
  "CMakeFiles/fetcam_tcam.dir/write_schedule.cpp.o"
  "CMakeFiles/fetcam_tcam.dir/write_schedule.cpp.o.d"
  "libfetcam_tcam.a"
  "libfetcam_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
