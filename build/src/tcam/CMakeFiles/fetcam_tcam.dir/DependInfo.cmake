
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcam/cell.cpp" "src/tcam/CMakeFiles/fetcam_tcam.dir/cell.cpp.o" "gcc" "src/tcam/CMakeFiles/fetcam_tcam.dir/cell.cpp.o.d"
  "/root/repo/src/tcam/cell_builder.cpp" "src/tcam/CMakeFiles/fetcam_tcam.dir/cell_builder.cpp.o" "gcc" "src/tcam/CMakeFiles/fetcam_tcam.dir/cell_builder.cpp.o.d"
  "/root/repo/src/tcam/ternary.cpp" "src/tcam/CMakeFiles/fetcam_tcam.dir/ternary.cpp.o" "gcc" "src/tcam/CMakeFiles/fetcam_tcam.dir/ternary.cpp.o.d"
  "/root/repo/src/tcam/write.cpp" "src/tcam/CMakeFiles/fetcam_tcam.dir/write.cpp.o" "gcc" "src/tcam/CMakeFiles/fetcam_tcam.dir/write.cpp.o.d"
  "/root/repo/src/tcam/write_schedule.cpp" "src/tcam/CMakeFiles/fetcam_tcam.dir/write_schedule.cpp.o" "gcc" "src/tcam/CMakeFiles/fetcam_tcam.dir/write_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/fetcam_device.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
