file(REMOVE_RECURSE
  "CMakeFiles/tcam_test.dir/tcam_test.cpp.o"
  "CMakeFiles/tcam_test.dir/tcam_test.cpp.o.d"
  "tcam_test"
  "tcam_test.pdb"
  "tcam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
