file(REMOVE_RECURSE
  "CMakeFiles/waveform_io_test.dir/waveform_io_test.cpp.o"
  "CMakeFiles/waveform_io_test.dir/waveform_io_test.cpp.o.d"
  "waveform_io_test"
  "waveform_io_test.pdb"
  "waveform_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveform_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
