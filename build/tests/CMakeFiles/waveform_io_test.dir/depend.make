# Empty dependencies file for waveform_io_test.
# This may be replaced when dependencies are built.
