# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/spice_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/tcam_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/nand_test[1]_include.cmake")
include("/root/repo/build/tests/ac_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/physical_test[1]_include.cmake")
include("/root/repo/build/tests/macro_test[1]_include.cmake")
include("/root/repo/build/tests/waveform_io_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
