# Empty dependencies file for signature_scan.
# This may be replaced when dependencies are built.
