file(REMOVE_RECURSE
  "CMakeFiles/signature_scan.dir/signature_scan.cpp.o"
  "CMakeFiles/signature_scan.dir/signature_scan.cpp.o.d"
  "signature_scan"
  "signature_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
