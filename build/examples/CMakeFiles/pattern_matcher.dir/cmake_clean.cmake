file(REMOVE_RECURSE
  "CMakeFiles/pattern_matcher.dir/pattern_matcher.cpp.o"
  "CMakeFiles/pattern_matcher.dir/pattern_matcher.cpp.o.d"
  "pattern_matcher"
  "pattern_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
