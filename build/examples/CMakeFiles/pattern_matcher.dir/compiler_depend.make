# Empty compiler generated dependencies file for pattern_matcher.
# This may be replaced when dependencies are built.
