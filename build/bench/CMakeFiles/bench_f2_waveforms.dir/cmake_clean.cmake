file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_waveforms.dir/bench_f2_waveforms.cpp.o"
  "CMakeFiles/bench_f2_waveforms.dir/bench_f2_waveforms.cpp.o.d"
  "bench_f2_waveforms"
  "bench_f2_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
