# Empty dependencies file for bench_f2_waveforms.
# This may be replaced when dependencies are built.
