file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_retention.dir/bench_f12_retention.cpp.o"
  "CMakeFiles/bench_f12_retention.dir/bench_f12_retention.cpp.o.d"
  "bench_f12_retention"
  "bench_f12_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
