# Empty dependencies file for bench_f12_retention.
# This may be replaced when dependencies are built.
