# Empty dependencies file for bench_f19_corners.
# This may be replaced when dependencies are built.
