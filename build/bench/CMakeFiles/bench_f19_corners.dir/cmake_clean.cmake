file(REMOVE_RECURSE
  "CMakeFiles/bench_f19_corners.dir/bench_f19_corners.cpp.o"
  "CMakeFiles/bench_f19_corners.dir/bench_f19_corners.cpp.o.d"
  "bench_f19_corners"
  "bench_f19_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f19_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
