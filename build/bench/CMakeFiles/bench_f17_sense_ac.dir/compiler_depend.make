# Empty compiler generated dependencies file for bench_f17_sense_ac.
# This may be replaced when dependencies are built.
