file(REMOVE_RECURSE
  "CMakeFiles/bench_f17_sense_ac.dir/bench_f17_sense_ac.cpp.o"
  "CMakeFiles/bench_f17_sense_ac.dir/bench_f17_sense_ac.cpp.o.d"
  "bench_f17_sense_ac"
  "bench_f17_sense_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f17_sense_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
