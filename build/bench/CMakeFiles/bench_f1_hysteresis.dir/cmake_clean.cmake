file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_hysteresis.dir/bench_f1_hysteresis.cpp.o"
  "CMakeFiles/bench_f1_hysteresis.dir/bench_f1_hysteresis.cpp.o.d"
  "bench_f1_hysteresis"
  "bench_f1_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
