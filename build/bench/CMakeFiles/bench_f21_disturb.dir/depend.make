# Empty dependencies file for bench_f21_disturb.
# This may be replaced when dependencies are built.
