file(REMOVE_RECURSE
  "CMakeFiles/bench_f21_disturb.dir/bench_f21_disturb.cpp.o"
  "CMakeFiles/bench_f21_disturb.dir/bench_f21_disturb.cpp.o.d"
  "bench_f21_disturb"
  "bench_f21_disturb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f21_disturb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
