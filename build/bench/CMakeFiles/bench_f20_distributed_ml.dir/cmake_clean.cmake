file(REMOVE_RECURSE
  "CMakeFiles/bench_f20_distributed_ml.dir/bench_f20_distributed_ml.cpp.o"
  "CMakeFiles/bench_f20_distributed_ml.dir/bench_f20_distributed_ml.cpp.o.d"
  "bench_f20_distributed_ml"
  "bench_f20_distributed_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f20_distributed_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
