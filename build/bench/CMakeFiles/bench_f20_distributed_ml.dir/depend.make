# Empty dependencies file for bench_f20_distributed_ml.
# This may be replaced when dependencies are built.
