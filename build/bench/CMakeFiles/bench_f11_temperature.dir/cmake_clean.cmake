file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_temperature.dir/bench_f11_temperature.cpp.o"
  "CMakeFiles/bench_f11_temperature.dir/bench_f11_temperature.cpp.o.d"
  "bench_f11_temperature"
  "bench_f11_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
