# Empty dependencies file for bench_f11_temperature.
# This may be replaced when dependencies are built.
