# Empty compiler generated dependencies file for bench_f9_apps.
# This may be replaced when dependencies are built.
