file(REMOVE_RECURSE
  "CMakeFiles/bench_f18_endurance.dir/bench_f18_endurance.cpp.o"
  "CMakeFiles/bench_f18_endurance.dir/bench_f18_endurance.cpp.o.d"
  "bench_f18_endurance"
  "bench_f18_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f18_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
