# Empty dependencies file for bench_f18_endurance.
# This may be replaced when dependencies are built.
