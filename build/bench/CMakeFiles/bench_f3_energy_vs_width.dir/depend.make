# Empty dependencies file for bench_f3_energy_vs_width.
# This may be replaced when dependencies are built.
