file(REMOVE_RECURSE
  "CMakeFiles/bench_f15_autotune.dir/bench_f15_autotune.cpp.o"
  "CMakeFiles/bench_f15_autotune.dir/bench_f15_autotune.cpp.o.d"
  "bench_f15_autotune"
  "bench_f15_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f15_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
