file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_write.dir/bench_f10_write.cpp.o"
  "CMakeFiles/bench_f10_write.dir/bench_f10_write.cpp.o.d"
  "bench_f10_write"
  "bench_f10_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
