# Empty compiler generated dependencies file for bench_f4_delay_vs_width.
# This may be replaced when dependencies are built.
