file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_delay_vs_width.dir/bench_f4_delay_vs_width.cpp.o"
  "CMakeFiles/bench_f4_delay_vs_width.dir/bench_f4_delay_vs_width.cpp.o.d"
  "bench_f4_delay_vs_width"
  "bench_f4_delay_vs_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_delay_vs_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
