# Empty dependencies file for bench_t3_standby.
# This may be replaced when dependencies are built.
