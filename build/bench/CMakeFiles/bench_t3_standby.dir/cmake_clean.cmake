file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_standby.dir/bench_t3_standby.cpp.o"
  "CMakeFiles/bench_t3_standby.dir/bench_t3_standby.cpp.o.d"
  "bench_t3_standby"
  "bench_t3_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
