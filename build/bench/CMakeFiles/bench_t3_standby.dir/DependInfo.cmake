
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_t3_standby.cpp" "bench/CMakeFiles/bench_t3_standby.dir/bench_t3_standby.cpp.o" "gcc" "bench/CMakeFiles/bench_t3_standby.dir/bench_t3_standby.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fetcam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fetcam_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/fetcam_array.dir/DependInfo.cmake"
  "/root/repo/build/src/tcam/CMakeFiles/fetcam_tcam.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/fetcam_device.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/fetcam_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/fetcam_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
