# Empty dependencies file for bench_f7_variation.
# This may be replaced when dependencies are built.
