file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_variation.dir/bench_f7_variation.cpp.o"
  "CMakeFiles/bench_f7_variation.dir/bench_f7_variation.cpp.o.d"
  "bench_f7_variation"
  "bench_f7_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
