# Empty compiler generated dependencies file for bench_t2_array_table.
# This may be replaced when dependencies are built.
