file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_array_table.dir/bench_t2_array_table.cpp.o"
  "CMakeFiles/bench_t2_array_table.dir/bench_t2_array_table.cpp.o.d"
  "bench_t2_array_table"
  "bench_t2_array_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_array_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
