file(REMOVE_RECURSE
  "CMakeFiles/bench_f16_nor_vs_nand.dir/bench_f16_nor_vs_nand.cpp.o"
  "CMakeFiles/bench_f16_nor_vs_nand.dir/bench_f16_nor_vs_nand.cpp.o.d"
  "bench_f16_nor_vs_nand"
  "bench_f16_nor_vs_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f16_nor_vs_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
