# Empty compiler generated dependencies file for bench_f16_nor_vs_nand.
# This may be replaced when dependencies are built.
