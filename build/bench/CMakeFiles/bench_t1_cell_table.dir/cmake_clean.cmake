file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_cell_table.dir/bench_t1_cell_table.cpp.o"
  "CMakeFiles/bench_t1_cell_table.dir/bench_t1_cell_table.cpp.o.d"
  "bench_t1_cell_table"
  "bench_t1_cell_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_cell_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
