# Empty dependencies file for bench_t1_cell_table.
# This may be replaced when dependencies are built.
