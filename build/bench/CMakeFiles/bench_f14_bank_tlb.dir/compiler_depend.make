# Empty compiler generated dependencies file for bench_f14_bank_tlb.
# This may be replaced when dependencies are built.
