file(REMOVE_RECURSE
  "CMakeFiles/bench_f14_bank_tlb.dir/bench_f14_bank_tlb.cpp.o"
  "CMakeFiles/bench_f14_bank_tlb.dir/bench_f14_bank_tlb.cpp.o.d"
  "bench_f14_bank_tlb"
  "bench_f14_bank_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f14_bank_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
