# Empty dependencies file for bench_f13_keeper.
# This may be replaced when dependencies are built.
