file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_keeper.dir/bench_f13_keeper.cpp.o"
  "CMakeFiles/bench_f13_keeper.dir/bench_f13_keeper.cpp.o.d"
  "bench_f13_keeper"
  "bench_f13_keeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_keeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
