file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_write_throughput.dir/bench_t4_write_throughput.cpp.o"
  "CMakeFiles/bench_t4_write_throughput.dir/bench_t4_write_throughput.cpp.o.d"
  "bench_t4_write_throughput"
  "bench_t4_write_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_write_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
