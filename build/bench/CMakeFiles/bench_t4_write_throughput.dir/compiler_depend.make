# Empty compiler generated dependencies file for bench_t4_write_throughput.
# This may be replaced when dependencies are built.
