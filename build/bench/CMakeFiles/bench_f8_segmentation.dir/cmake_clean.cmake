file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_segmentation.dir/bench_f8_segmentation.cpp.o"
  "CMakeFiles/bench_f8_segmentation.dir/bench_f8_segmentation.cpp.o.d"
  "bench_f8_segmentation"
  "bench_f8_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
