# Empty compiler generated dependencies file for debug_breakdown.
# This may be replaced when dependencies are built.
