file(REMOVE_RECURSE
  "CMakeFiles/debug_breakdown.dir/debug_breakdown.cpp.o"
  "CMakeFiles/debug_breakdown.dir/debug_breakdown.cpp.o.d"
  "debug_breakdown"
  "debug_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
