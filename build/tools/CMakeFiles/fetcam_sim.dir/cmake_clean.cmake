file(REMOVE_RECURSE
  "CMakeFiles/fetcam_sim.dir/fetcam_sim.cpp.o"
  "CMakeFiles/fetcam_sim.dir/fetcam_sim.cpp.o.d"
  "fetcam_sim"
  "fetcam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetcam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
