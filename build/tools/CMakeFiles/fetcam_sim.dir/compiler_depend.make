# Empty compiler generated dependencies file for fetcam_sim.
# This may be replaced when dependencies are built.
