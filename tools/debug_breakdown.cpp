// Developer diagnostic: per-design energy breakdown at word level and array
// level. Not part of the shipped benches.
#include <cstdio>

#include "core/design_space.hpp"

using namespace fetcam;

int main() {
    const auto tech = device::TechCard::cmos45();
    const auto designs = core::standardDesigns(16, 64);
    std::printf("%-22s %10s %10s %10s %10s | %12s %12s %12s | func margin\n", "design",
                "word eMl", "word eSl", "word eSa", "word tot", "arr ML", "arr SL",
                "arr SA");
    for (const auto& d : designs) {
        const auto m = evaluateArray(tech, d.config);
        const auto& mm = m.mismatchWord;
        std::printf(
            "%-22s %9.2ffJ %9.2ffJ %9.2ffJ %9.2ffJ | %10.2ffJ %10.2ffJ %10.2ffJ | %d  %.3f\n",
            d.name.c_str(), mm.energyMl * 1e15, mm.energySl * 1e15, mm.energySa * 1e15,
            mm.energyTotal * 1e15, m.perSearch.ml * 1e15, m.perSearch.sl * 1e15,
            m.perSearch.sa * 1e15, m.functional, m.senseMarginV);
        const auto& ma = m.matchWord;
        std::printf("%-22s %9.2ffJ %9.2ffJ %9.2ffJ %9.2ffJ   (match word)\n", "",
                    ma.energyMl * 1e15, ma.energySl * 1e15, ma.energySa * 1e15,
                    ma.energyTotal * 1e15);
    }
    return 0;
}
