// Shared deterministic workload for the network serving pair: fetcam_serve
// --listen populates its engine with makeListenEntries(seed, ...), and
// fetcam_load regenerates the identical entry list from the same seed to
// craft guaranteed-hit queries. Both sides must use the same seed / entries /
// wordBits for the hit mix to be meaningful; with different seeds the load is
// all misses, which is legal but less interesting.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/stats.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::tools {

/// Entry i: ternary word with ~25% wildcard trits, from Rng stream i of
/// `seed`. Stream-per-entry keeps the list independent of generation order.
inline std::vector<tcam::TernaryWord> makeListenEntries(std::uint64_t seed,
                                                        std::int64_t entries,
                                                        int wordBits) {
    std::vector<tcam::TernaryWord> out;
    out.reserve(static_cast<std::size_t>(entries));
    for (std::int64_t i = 0; i < entries; ++i) {
        numeric::Rng rng = numeric::Rng::forStream(seed, static_cast<std::uint64_t>(i));
        tcam::TernaryWord word(static_cast<std::size_t>(wordBits));
        for (int b = 0; b < wordBits; ++b) {
            if (rng.uniform() < 0.25)
                word[static_cast<std::size_t>(b)] = tcam::Trit::X;
            else
                word[static_cast<std::size_t>(b)] =
                    rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
        }
        out.push_back(std::move(word));
    }
    return out;
}

/// Fully-specified key matching `pattern` (wildcards resolved from `rng`).
inline tcam::TernaryWord specializeKey(const tcam::TernaryWord& pattern,
                                       numeric::Rng& rng) {
    tcam::TernaryWord key(pattern.size());
    for (std::size_t b = 0; b < pattern.size(); ++b) {
        if (pattern[b] == tcam::Trit::X)
            key[b] = rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
        else
            key[b] = pattern[b];
    }
    return key;
}

/// Fully-specified random key (usually a miss against sparse entries).
inline tcam::TernaryWord randomKey(int wordBits, numeric::Rng& rng) {
    tcam::TernaryWord key(static_cast<std::size_t>(wordBits));
    for (int b = 0; b < wordBits; ++b)
        key[static_cast<std::size_t>(b)] =
            rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
    return key;
}

}  // namespace fetcam::tools
