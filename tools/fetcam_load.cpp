// fetcam_load — open-loop load generator for fetcam_serve --listen.
//
// Drives the net protocol at a configured offered rate: requests are
// scheduled on a fixed timeline (t0 + i/qps) regardless of how fast the
// server answers, and latency is measured from the *scheduled* arrival — so
// a stalled server inflates the tail instead of silently slowing the
// offered load (no coordinated omission).
//
// Usage:
//   fetcam_load --port P | --port-file FILE  [--host H]
//               [--qps N] [--connections C] [--queries N | --seconds S]
//               [--batch B] [--deadline-ms D] [--hit-fraction F]
//               [--entries N] [--seed S] [--retries R] [--timeout S]
//               [--churn N]
//               [--similarity F] [--sim-k K] [--sim-threshold D]
//               [--fault-torn N] [--fault-garbage N]
//               [--fault-disconnect N] [--fault-stall N]
//               [--json FILE]
//
// --churn N adds a dedicated mutator connection sending Mutate frames at N
// table updates per second while the query load runs: it flaps the known
// seed entries (erase a present row / re-install its word), mirroring the
// membership client-side so every op is valid. Mutations ride the same
// open-loop pacing and are tallied separately from query requests.
//
// --similarity F sends that fraction of requests as protocol-v3 Similarity
// frames (nearest-k by default, --sim-k K; --sim-threshold D switches to
// threshold matching with max Hamming distance D). The decision is drawn
// from the same per-request deterministic stream as the keys, so the mix is
// reproducible. Similarity replies are tallied separately (simRequests /
// simKeys / simRows).
//
// Feature flags are version-gated at connect: --churn needs a protocol-v2
// server (Mutate frames) and --similarity a v3 one — against an older
// server the tool fails fast with a typed InvalidSpec error instead of
// sending frames the server cannot parse.
//
// Shed and failed requests retry with capped exponential backoff plus
// deterministic jitter (numeric::Rng::forStream per connection); a request
// that exhausts its retries is a permanent failure, and any permanent
// failure makes the tool exit with the DeadlineExceeded code (10) so CI can
// tell "server refused / lost work" from "clean run".
//
// --fault-* N injects a network fault on every Nth outbound frame of each
// connection through the recover::FaultPlan harness (torn frame, garbage
// bytes, disconnect, stalled read); the generator reconnects and retries, so
// a healthy server shows zero permanent failures even under injected faults.
//
// --entries/--seed must match the server's for the --hit-fraction mix to
// produce actual hits (see listen_workload.hpp).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/fault_injection.hpp"
#include "recover/io_guard.hpp"
#include "recover/sim_error.hpp"
#include "serve/query_engine.hpp"
#include "listen_workload.hpp"

using namespace fetcam;

namespace {

struct Args {
    std::string host = "127.0.0.1";
    int port = 0;
    std::string portFile;
    double qps = 5000.0;  ///< offered queries per second (not requests)
    int connections = 4;
    std::int64_t queries = 20'000;
    double seconds = 0.0;  ///< when > 0, overrides --queries as qps * seconds
    int batch = 16;
    double deadlineMs = 0.0;
    double hitFraction = 0.5;
    std::int64_t entries = 64;
    std::uint64_t seed = 42;
    int retries = 5;
    double timeout = 5.0;
    double churn = 0.0;  ///< table updates per second (0 = no mutator)
    double similarity = 0.0;  ///< fraction of requests sent as Similarity
    int simK = 4;             ///< nearest-k per key
    int simThreshold = -1;    ///< >= 0: threshold matching at this distance
    int faultTorn = 0;
    int faultGarbage = 0;
    int faultDisconnect = 0;
    int faultStall = 0;
    std::string jsonPath;
};

Args parseArgs(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                        "fetcam_load", "missing value after " + opt);
            return argv[i];
        };
        if (opt == "--host") a.host = next();
        else if (opt == "--port") a.port = std::atoi(next().c_str());
        else if (opt == "--port-file") a.portFile = next();
        else if (opt == "--qps") a.qps = std::atof(next().c_str());
        else if (opt == "--connections") a.connections = std::atoi(next().c_str());
        else if (opt == "--queries") a.queries = std::atoll(next().c_str());
        else if (opt == "--seconds") a.seconds = std::atof(next().c_str());
        else if (opt == "--batch") a.batch = std::atoi(next().c_str());
        else if (opt == "--deadline-ms") a.deadlineMs = std::atof(next().c_str());
        else if (opt == "--hit-fraction") a.hitFraction = std::atof(next().c_str());
        else if (opt == "--entries") a.entries = std::atoll(next().c_str());
        else if (opt == "--seed") a.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
        else if (opt == "--retries") a.retries = std::atoi(next().c_str());
        else if (opt == "--timeout") a.timeout = std::atof(next().c_str());
        else if (opt == "--churn") a.churn = std::atof(next().c_str());
        else if (opt == "--similarity") a.similarity = std::atof(next().c_str());
        else if (opt == "--sim-k") a.simK = std::atoi(next().c_str());
        else if (opt == "--sim-threshold") a.simThreshold = std::atoi(next().c_str());
        else if (opt == "--fault-torn") a.faultTorn = std::atoi(next().c_str());
        else if (opt == "--fault-garbage") a.faultGarbage = std::atoi(next().c_str());
        else if (opt == "--fault-disconnect") a.faultDisconnect = std::atoi(next().c_str());
        else if (opt == "--fault-stall") a.faultStall = std::atoi(next().c_str());
        else if (opt == "--json") a.jsonPath = next();
        else
            throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_load",
                                    "unknown option " + opt);
    }
    if (a.port <= 0 && a.portFile.empty())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_load",
                                "--port or --port-file is required");
    if (a.qps <= 0.0 || a.connections < 1 || a.batch < 1 || a.retries < 0 ||
        a.timeout <= 0.0 || a.entries < 1 || a.hitFraction < 0.0 ||
        a.hitFraction > 1.0 || a.churn < 0.0 || a.similarity < 0.0 ||
        a.similarity > 1.0 || a.simK < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_load",
                                "argument out of range");
    if (a.seconds > 0.0)
        a.queries = std::max<std::int64_t>(
            a.batch, static_cast<std::int64_t>(a.qps * a.seconds));
    if (a.queries < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_load",
                                "--queries must be >= 1");
    return a;
}

/// Wait for the server to publish its ephemeral port (written after bind).
int resolvePort(const Args& a) {
    if (a.port > 0) return a.port;
    const double deadline = obs::monotonicSeconds() + 10.0;
    while (obs::monotonicSeconds() < deadline) {
        std::ifstream is(a.portFile);
        int port = 0;
        if (is >> port && port > 0) return port;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    throw recover::SimError(recover::SimErrorReason::IoError, "fetcam_load",
                            "no port appeared in " + a.portFile + " within 10 s");
}

/// Every-Nth-frame injection expressed as one-frame FaultPlan windows.
void addEveryNth(recover::FaultPlan& plan, recover::FaultKind kind, int n,
                 long long maxFrames) {
    if (n <= 0) return;
    for (long long ord = n - 1; ord < maxFrames; ord += n) {
        recover::FaultSpec spec;
        spec.kind = kind;
        spec.fromSolve = ord;
        spec.toSolve = ord + 1;
        plan.add(spec);
    }
}

struct Tally {
    std::int64_t requests = 0;
    std::int64_t okRequests = 0;
    std::int64_t permanentFailures = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t deadlineExceeded = 0;  ///< per-query statuses in accepted replies
    std::int64_t shedReplies = 0;       ///< whole requests refused (overload/drain)
    std::int64_t retries = 0;
    std::int64_t reconnects = 0;
    std::int64_t faultsInjected = 0;
    std::int64_t protoErrors = 0;  ///< server Error frames / decode failures seen
    std::int64_t timeouts = 0;
    std::int64_t disconnects = 0;
    std::int64_t drainNotices = 0;
    std::int64_t mutations = 0;         ///< Mutate ops acknowledged Ok
    std::int64_t mutationFailures = 0;  ///< non-Ok statuses or exhausted retries
    std::int64_t simRequests = 0;       ///< requests sent as Similarity frames
    std::int64_t simKeys = 0;           ///< keys inside accepted sim replies
    std::int64_t simRows = 0;           ///< hit rows returned in those replies

    void merge(const Tally& o) {
        requests += o.requests;
        okRequests += o.okRequests;
        permanentFailures += o.permanentFailures;
        hits += o.hits;
        misses += o.misses;
        deadlineExceeded += o.deadlineExceeded;
        shedReplies += o.shedReplies;
        retries += o.retries;
        reconnects += o.reconnects;
        faultsInjected += o.faultsInjected;
        protoErrors += o.protoErrors;
        timeouts += o.timeouts;
        disconnects += o.disconnects;
        drainNotices += o.drainNotices;
        mutations += o.mutations;
        mutationFailures += o.mutationFailures;
        simRequests += o.simRequests;
        simKeys += o.simKeys;
        simRows += o.simRows;
    }
};

void sleepUntil(double when) {
    const double wait = when - obs::monotonicSeconds();
    if (wait > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
}

void runConnection(const Args& a, int port, int conn, double t0, double interval,
                   std::int64_t totalRequests,
                   const std::vector<tcam::TernaryWord>& entries, int wordBits,
                   obs::Histogram& latency, Tally& tally) {
    recover::FaultPlan plan;
    const long long frameCap = 3 * (totalRequests / a.connections + 1) + 16;
    addEveryNth(plan, recover::FaultKind::TornFrame, a.faultTorn, frameCap);
    addEveryNth(plan, recover::FaultKind::GarbageBytes, a.faultGarbage, frameCap);
    addEveryNth(plan, recover::FaultKind::Disconnect, a.faultDisconnect, frameCap);
    addEveryNth(plan, recover::FaultKind::StalledRead, a.faultStall, frameCap);
    recover::ScopedFaultPlan guard(plan);

    numeric::Rng rng = numeric::Rng::forStream(a.seed, 0xB0FFu + static_cast<std::uint64_t>(conn));
    net::Client client;

    for (std::int64_t r = conn; r < totalRequests; r += a.connections) {
        const double sched = t0 + static_cast<double>(r) * interval;
        sleepUntil(sched);

        net::QueryBatchBody batch;
        batch.requestId = static_cast<std::uint64_t>(r) + 1;
        batch.deadlineMicros = static_cast<std::uint32_t>(a.deadlineMs * 1e3);
        numeric::Rng keyRng =
            numeric::Rng::forStream(a.seed, 0x10000000ULL + static_cast<std::uint64_t>(r));
        const std::int64_t remaining = a.queries - r * static_cast<std::int64_t>(a.batch);
        const std::int64_t want = std::clamp<std::int64_t>(remaining, 0, a.batch);
        for (std::int64_t k = 0; k < want; ++k) {
            if (!entries.empty() && keyRng.uniform() < a.hitFraction) {
                const auto idx = static_cast<std::size_t>(keyRng.uniformInt(
                    0, static_cast<int>(entries.size()) - 1));
                batch.keys.push_back(tools::specializeKey(entries[idx], keyRng));
            } else {
                batch.keys.push_back(tools::randomKey(wordBits, keyRng));
            }
        }
        if (batch.keys.empty()) continue;
        ++tally.requests;

        // The similarity decision rides the same deterministic per-request
        // stream as the keys: the query/similarity mix is reproducible.
        const bool simRequest = a.similarity > 0.0 && keyRng.uniform() < a.similarity;
        net::SimilarityBody sim;
        if (simRequest) {
            ++tally.simRequests;
            sim.requestId = batch.requestId;
            if (a.simThreshold >= 0) {
                sim.kind = sim::SimilarityKind::Threshold;
                sim.param = static_cast<std::uint32_t>(a.simThreshold);
            } else {
                sim.kind = sim::SimilarityKind::NearestK;
                sim.param = static_cast<std::uint32_t>(a.simK);
            }
            sim.maxResults = static_cast<std::uint32_t>(std::max(a.simK, 64));
            sim.keys = batch.keys;
        }

        bool done = false;
        for (int attempt = 0; attempt <= a.retries && !done; ++attempt) {
            if (attempt > 0) {
                ++tally.retries;
                // Capped exponential backoff with deterministic jitter, so a
                // shedding server sees a decaying, non-synchronized retry
                // wave rather than a thundering herd.
                const double base = std::min(1e-3 * std::pow(2.0, attempt - 1), 0.1);
                sleepUntil(obs::monotonicSeconds() + base * (0.5 + rng.uniform()));
            }
            if (!client.connected()) {
                try {
                    client.connect(a.host, port, a.timeout);
                    ++tally.reconnects;
                } catch (const recover::SimError&) {
                    continue;  // server booting or mid-drain; backoff covers us
                }
            }
            net::ClientResult res = simRequest ? client.similarity(sim, a.timeout)
                                               : client.query(batch, a.timeout);
            if (res.drainNotice) ++tally.drainNotices;
            if (res.faultInjected) {
                ++tally.faultsInjected;
                // Stall leaves a poisoned half-frame on the wire; everything
                // else already closed the socket. Reconnect either way.
                client.close();
                continue;
            }
            if (simRequest && res.ok && res.simReply) {
                if (res.simReply->admission ==
                    static_cast<std::uint8_t>(serve::BatchAdmission::Accepted)) {
                    tally.simKeys += static_cast<std::int64_t>(res.simReply->hits.size());
                    for (const auto& hits : res.simReply->hits)
                        tally.simRows += static_cast<std::int64_t>(hits.size());
                    latency.observe(obs::monotonicSeconds() - sched);
                    ++tally.okRequests;
                    done = true;
                } else {
                    ++tally.shedReplies;  // typed whole-request shed; retryable
                }
            } else if (!simRequest && res.ok &&
                       res.reply.admission ==
                           static_cast<std::uint8_t>(serve::BatchAdmission::Accepted)) {
                for (const auto status : res.reply.status) {
                    switch (status) {
                        case net::QueryStatus::Hit: ++tally.hits; break;
                        case net::QueryStatus::Miss: ++tally.misses; break;
                        case net::QueryStatus::DeadlineExceeded:
                            ++tally.deadlineExceeded;
                            break;
                        case net::QueryStatus::Shed: ++tally.shedReplies; break;
                    }
                }
                latency.observe(obs::monotonicSeconds() - sched);
                ++tally.okRequests;
                done = true;
            } else if (res.ok) {
                ++tally.shedReplies;  // typed whole-request shed; retryable
            } else if (res.timedOut) {
                ++tally.timeouts;
                client.close();
            } else if (res.error != net::ProtoError::None) {
                ++tally.protoErrors;
                client.close();
            } else {
                ++tally.disconnects;
                client.close();
            }
        }
        if (!done) ++tally.permanentFailures;
    }
    client.close();
}

/// Dedicated mutator connection: flap the known seed entries at a.churn
/// updates/s (open-loop schedule, like the query timeline) until told to
/// stop. Membership is mirrored client-side, so each op is a valid erase of
/// a present row or a re-install of an absent one.
void runMutator(const Args& a, int port, const std::vector<tcam::TernaryWord>& entries,
                const std::atomic<bool>& stop, Tally& tally) {
    net::Client client;
    numeric::Rng rng = numeric::Rng::forStream(a.seed, 0xC4C4u);
    std::vector<char> present(entries.size(), 1);
    const double t0 = obs::monotonicSeconds();
    std::int64_t i = 0;
    // Mutation requestIds live in their own range so a stale query reply can
    // never be mistaken for a mutate ack.
    std::uint64_t requestId = 1ULL << 62;
    while (!stop.load(std::memory_order_relaxed)) {
        sleepUntil(t0 + static_cast<double>(i) / a.churn);
        if (stop.load(std::memory_order_relaxed)) break;
        ++i;

        const auto row = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(entries.size()) - 1));
        net::MutateBody body;
        body.requestId = requestId++;
        net::MutateOpSpec op;
        op.row = static_cast<std::int64_t>(row);
        if (present[row]) {
            op.op = net::MutateOp::Erase;
        } else {
            op.op = net::MutateOp::InsertAt;
            op.word = entries[row];
        }
        body.ops.push_back(std::move(op));

        bool done = false;
        for (int attempt = 0; attempt <= a.retries && !done; ++attempt) {
            if (attempt > 0) {
                ++tally.retries;
                const double base = std::min(1e-3 * std::pow(2.0, attempt - 1), 0.1);
                sleepUntil(obs::monotonicSeconds() + base * (0.5 + rng.uniform()));
            }
            if (!client.connected()) {
                try {
                    client.connect(a.host, port, a.timeout);
                    ++tally.reconnects;
                } catch (const recover::SimError&) {
                    continue;
                }
            }
            net::ClientResult res = client.mutate(body, a.timeout);
            if (res.drainNotice) ++tally.drainNotices;
            if (res.ok && res.mutateReply) {
                if (res.mutateReply->status[0] == net::MutateStatus::Ok) {
                    present[row] = !present[row];
                    ++tally.mutations;
                } else {
                    ++tally.mutationFailures;  // typed refusal; don't retry
                }
                done = true;
            } else if (res.timedOut) {
                ++tally.timeouts;
                client.close();
            } else if (res.error != net::ProtoError::None) {
                ++tally.protoErrors;
                client.close();
            } else {
                ++tally.disconnects;
                client.close();
            }
        }
        if (!done) ++tally.mutationFailures;
    }
    client.close();
}

void writeJson(const std::string& path, const Tally& t, const obs::Histogram& latency,
               double wallSeconds) {
    std::ofstream os(path);
    if (!os)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_load",
                                "cannot open " + path + " for writing");
    os.precision(17);
    os << "{\n  \"tool\": \"fetcam_load\",\n";
    os << "  \"accounting\": {\n";
    os << "    \"requests\": " << t.requests << ",\n";
    os << "    \"okRequests\": " << t.okRequests << ",\n";
    os << "    \"permanentFailures\": " << t.permanentFailures << ",\n";
    os << "    \"hits\": " << t.hits << ",\n";
    os << "    \"misses\": " << t.misses << ",\n";
    os << "    \"deadlineExceeded\": " << t.deadlineExceeded << ",\n";
    os << "    \"shedReplies\": " << t.shedReplies << ",\n";
    os << "    \"retries\": " << t.retries << ",\n";
    os << "    \"reconnects\": " << t.reconnects << ",\n";
    os << "    \"faultsInjected\": " << t.faultsInjected << ",\n";
    os << "    \"protoErrors\": " << t.protoErrors << ",\n";
    os << "    \"timeouts\": " << t.timeouts << ",\n";
    os << "    \"disconnects\": " << t.disconnects << ",\n";
    os << "    \"drainNotices\": " << t.drainNotices << ",\n";
    os << "    \"mutations\": " << t.mutations << ",\n";
    os << "    \"mutationFailures\": " << t.mutationFailures << ",\n";
    os << "    \"simRequests\": " << t.simRequests << ",\n";
    os << "    \"simKeys\": " << t.simKeys << ",\n";
    os << "    \"simRows\": " << t.simRows << "\n";
    os << "  },\n";
    os << "  \"latency\": {\n";
    os << "    \"count\": " << latency.count() << ",\n";
    os << "    \"p50\": " << obs::quantile(latency, 0.5) << ",\n";
    os << "    \"p99\": " << obs::quantile(latency, 0.99) << ",\n";
    os << "    \"p999\": " << obs::quantile(latency, 0.999) << ",\n";
    os << "    \"meanSeconds\": " << latency.mean() << ",\n";
    os << "    \"wallSeconds\": " << wallSeconds << ",\n";
    os << "    \"achievedQps\": "
       << (wallSeconds > 0.0 ? static_cast<double>(t.hits + t.misses + t.deadlineExceeded) /
                                   wallSeconds
                             : 0.0)
       << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
    recover::ignoreSigpipe();
    try {
        const Args a = parseArgs(argc, argv);
        const int port = resolvePort(a);

        // Probe connection: learn the server's word width and negotiated
        // protocol version (failing fast on a *newer* server) before
        // spinning up the worker connections.
        int wordBits = 0;
        std::uint32_t serverVersion = 0;
        {
            net::Client probe;
            probe.connect(a.host, port, a.timeout);
            wordBits = static_cast<int>(probe.hello().wordBits);
            serverVersion = probe.serverVersion();
        }
        // Feature flags against an old server fail fast with a typed error
        // instead of sending frames the server cannot parse.
        if (a.churn > 0.0 && serverVersion < net::kMinMutateVersion)
            throw recover::SimError(
                recover::SimErrorReason::InvalidSpec, "fetcam_load",
                "--churn needs a protocol v" + std::to_string(net::kMinMutateVersion) +
                    " server (Mutate frames); this one speaks v" +
                    std::to_string(serverVersion));
        if (a.similarity > 0.0 && serverVersion < net::kMinSimilarityVersion)
            throw recover::SimError(
                recover::SimErrorReason::InvalidSpec, "fetcam_load",
                "--similarity needs a protocol v" +
                    std::to_string(net::kMinSimilarityVersion) +
                    " server (Similarity frames); this one speaks v" +
                    std::to_string(serverVersion));
        const auto entries = tools::makeListenEntries(a.seed, a.entries, wordBits);

        const std::int64_t totalRequests = (a.queries + a.batch - 1) / a.batch;
        const double interval = static_cast<double>(a.batch) / a.qps;
        obs::Histogram latency("load.latency.seconds",
                               obs::Histogram::exponentialBounds(1e-6, 100.0, 9));

        std::vector<Tally> tallies(static_cast<std::size_t>(a.connections));
        std::vector<std::thread> threads;
        const double t0 = obs::monotonicSeconds() + 0.05;  // shared epoch
        threads.reserve(static_cast<std::size_t>(a.connections));
        for (int c = 0; c < a.connections; ++c)
            threads.emplace_back([&, c] {
                runConnection(a, port, c, t0, interval, totalRequests, entries,
                              wordBits, latency, tallies[static_cast<std::size_t>(c)]);
            });
        std::atomic<bool> stopMutator{false};
        Tally mutatorTally;
        std::thread mutator;
        if (a.churn > 0.0)
            mutator = std::thread(
                [&] { runMutator(a, port, entries, stopMutator, mutatorTally); });
        for (auto& th : threads) th.join();
        stopMutator.store(true, std::memory_order_relaxed);
        if (mutator.joinable()) mutator.join();
        const double wallSeconds = obs::monotonicSeconds() - t0;

        Tally t;
        for (const auto& partial : tallies) t.merge(partial);
        t.merge(mutatorTally);

        std::printf("fetcam_load: %lld requests (%lld ok, %lld failed) @ %.0f q/s offered\n",
                    static_cast<long long>(t.requests),
                    static_cast<long long>(t.okRequests),
                    static_cast<long long>(t.permanentFailures), a.qps);
        std::printf("  queries        %lld hit / %lld miss / %lld deadline-expired\n",
                    static_cast<long long>(t.hits), static_cast<long long>(t.misses),
                    static_cast<long long>(t.deadlineExceeded));
        if (a.churn > 0.0)
            std::printf("  churn          %lld mutations acked (%lld failed) @ %.0f u/s offered\n",
                        static_cast<long long>(t.mutations),
                        static_cast<long long>(t.mutationFailures), a.churn);
        if (a.similarity > 0.0)
            std::printf("  similarity     %lld requests (%lld keys, %lld rows returned)\n",
                        static_cast<long long>(t.simRequests),
                        static_cast<long long>(t.simKeys),
                        static_cast<long long>(t.simRows));
        std::printf("  robustness     %lld shed / %lld retries / %lld faults injected / "
                    "%lld proto errors / %lld timeouts / %lld disconnects\n",
                    static_cast<long long>(t.shedReplies),
                    static_cast<long long>(t.retries),
                    static_cast<long long>(t.faultsInjected),
                    static_cast<long long>(t.protoErrors),
                    static_cast<long long>(t.timeouts),
                    static_cast<long long>(t.disconnects));
        std::printf("  latency        p50 %.3f ms / p99 %.3f ms / p999 %.3f ms "
                    "(%lld samples, %.2f s wall)\n",
                    obs::quantile(latency, 0.5) * 1e3, obs::quantile(latency, 0.99) * 1e3,
                    obs::quantile(latency, 0.999) * 1e3,
                    static_cast<long long>(latency.count()), wallSeconds);

        if (!a.jsonPath.empty()) writeJson(a.jsonPath, t, latency, wallSeconds);
        recover::checkStdout("fetcam_load");

        if (t.permanentFailures > 0) {
            std::fprintf(stderr,
                         "fetcam_load: %lld requests permanently failed after %d retries\n",
                         static_cast<long long>(t.permanentFailures), a.retries);
            return recover::exitCodeFor(recover::SimErrorReason::DeadlineExceeded);
        }
        return 0;
    } catch (const recover::SimError& e) {
        std::fprintf(stderr, "fetcam_load: [%s] %s\n", recover::reasonName(e.reason()),
                     e.what());
        return recover::exitCodeFor(e.reason());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fetcam_load: %s\n", e.what());
        return 1;
    }
}
