// fetcam_serve — TCAM query-service front-end on the characterize-then-serve
// engine: build a workload (LPM routing / TLB translation / packet
// classification), characterize its electrical cost once through the shared
// cache, then stream batched queries and report functional + electrical
// accounting.
//
// Usage:
//   fetcam_serve [--workload lpm|tlb|classifier|all] [--entries N]
//                [--queries N] [--rows N] [--batch N] [--jobs N] [--seed S]
//                [--backend scalar|bitplane|checked]
//                [--store DIR] [--store-readonly] [--compact]
//                [--json FILE] [--trace FILE]
//   fetcam_serve --listen PORT [--host H] [--port-file FILE] [--word-bits N]
//                [--entries N] [--rows N] [--seed S] [--deadline-ms D]
//                [--coalesce-us U] [--max-pending N] [--max-connections N]
//                [--read-timeout S] [--drain-timeout S] [--max-batch N]
//                [--bits-per-cell N]
//                [--store DIR] [--persist-entries] [--compact] [--json FILE]
//
// --listen turns the tool into a network front-end: a net::Server speaking
// the CRC-framed fetcam protocol on PORT (0 = ephemeral; --port-file
// publishes the bound port for scripts), serving a deterministic entry set
// generated from --seed/--entries/--word-bits (the same set fetcam_load
// regenerates client-side). SIGTERM/SIGINT begin a graceful drain: stop
// accepting, answer everything in flight, flush the store, then emit the
// final report and exit 0.
//
// --backend selects the functional match implementation: the bit-plane
// engine (64 entries per machine word, default), the scalar row-scan oracle,
// or checked mode (both run per query, divergence is a typed CorruptData
// error). All three serve bit-identical results.
//
// Similarity frames (protocol v3 nearest-k / threshold queries, driven by
// fetcam_load --similarity) are served from the same snapshot table;
// --bits-per-cell selects the multi-level-cell FeFET model that prices them
// (2 bits/cell = 4 polarization states by default). Functional results never
// depend on it.
//
// --persist-entries (listen mode, requires --store) additionally journals
// every table mutation (protocol Mutate frames) as CRC-framed delta records
// in DIR/table.fcs: a restart replays the deltas and serves the *mutated*
// table bit-identically — the deterministic seed set is only installed on a
// cold start (restoredMutations() == 0).
//
// --store DIR backs the characterization cache with a crash-safe on-disk
// record log: the first run pays the solver transients and persists them;
// every later run against the same directory warm-restarts with zero
// characterizations and bit-identical results. --store-readonly loads
// without locking or appending (share a store across readers); --compact
// rewrites the log as a deduplicated snapshot after serving.
//
// The --json report is split into a "deterministic" object (byte-identical
// across cold/warm runs and any --jobs value — CI diffs it) and a
// "volatile" object (wall-clock, cache and store traffic).
//
// Exit codes follow the structured SimError taxonomy (see recover/sim_error).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/fetcam.hpp"
#include "device/mlc.hpp"
#include "net/server.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/io_guard.hpp"
#include "recover/sim_error.hpp"
#include "serve/adapters.hpp"
#include "listen_workload.hpp"

using namespace fetcam;

namespace {

double now() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Args {
    std::string workload = "all";
    std::int64_t entries = 64;
    std::int64_t queries = 100'000;
    int rows = 16;
    int batch = 4096;
    int jobs = 0;
    std::uint64_t seed = 42;
    serve::MatchBackendKind backend = serve::MatchBackendKind::BitPlane;
    std::string jsonPath;
    std::string tracePath;
    std::string storeDir;
    bool storeReadonly = false;
    bool compact = false;
    bool persistEntries = false;
    // --- network front-end (--listen) ---
    int listenPort = -1;  ///< < 0 = batch mode; >= 0 = listen (0 ephemeral)
    std::string host = "127.0.0.1";
    std::string portFile;
    int wordBits = 32;
    double deadlineMs = 0.0;
    double coalesceUs = 500.0;
    std::int64_t maxPending = 1 << 16;
    int maxConnections = 256;
    int maxBatch = 4096;
    double readTimeout = 5.0;
    double drainTimeout = 5.0;
    int bitsPerCell = 2;  ///< MLC model pricing similarity queries
    /// Test hook: advertise (and behave as) an older protocol version, so
    /// client-side version negotiation can be exercised end-to-end.
    int advertiseVersion = static_cast<int>(net::kProtocolVersion);
};

Args parseArgs(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string opt = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                        "fetcam_serve", "missing value after " + opt);
            return argv[i];
        };
        if (opt == "--workload") {
            a.workload = next();
            if (a.workload != "lpm" && a.workload != "tlb" &&
                a.workload != "classifier" && a.workload != "all")
                throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                        "fetcam_serve",
                                        "--workload expects lpm|tlb|classifier|all");
        } else if (opt == "--entries") {
            a.entries = std::atoll(next().c_str());
        } else if (opt == "--queries") {
            a.queries = std::atoll(next().c_str());
        } else if (opt == "--rows") {
            a.rows = std::atoi(next().c_str());
        } else if (opt == "--batch") {
            a.batch = std::atoi(next().c_str());
        } else if (opt == "--seed") {
            a.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
        } else if (opt == "--jobs") {
            try {
                a.jobs = numeric::parseJobs(next());
            } catch (const std::invalid_argument& e) {
                throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                        "fetcam_serve", e.what());
            }
        } else if (opt == "--backend") {
            a.backend = serve::parseBackendKind(next());
        } else if (opt == "--json") {
            a.jsonPath = next();
        } else if (opt == "--trace") {
            a.tracePath = next();
        } else if (opt == "--store") {
            a.storeDir = next();
        } else if (opt == "--store-readonly") {
            a.storeReadonly = true;
        } else if (opt == "--compact") {
            a.compact = true;
        } else if (opt == "--persist-entries") {
            a.persistEntries = true;
        } else if (opt == "--listen") {
            a.listenPort = std::atoi(next().c_str());
        } else if (opt == "--host") {
            a.host = next();
        } else if (opt == "--port-file") {
            a.portFile = next();
        } else if (opt == "--word-bits") {
            a.wordBits = std::atoi(next().c_str());
        } else if (opt == "--deadline-ms") {
            a.deadlineMs = std::atof(next().c_str());
        } else if (opt == "--coalesce-us") {
            a.coalesceUs = std::atof(next().c_str());
        } else if (opt == "--max-pending") {
            a.maxPending = std::atoll(next().c_str());
        } else if (opt == "--max-connections") {
            a.maxConnections = std::atoi(next().c_str());
        } else if (opt == "--max-batch") {
            a.maxBatch = std::atoi(next().c_str());
        } else if (opt == "--read-timeout") {
            a.readTimeout = std::atof(next().c_str());
        } else if (opt == "--drain-timeout") {
            a.drainTimeout = std::atof(next().c_str());
        } else if (opt == "--bits-per-cell") {
            a.bitsPerCell = std::atoi(next().c_str());
        } else if (opt == "--advertise-version") {
            a.advertiseVersion = std::atoi(next().c_str());
        } else {
            throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                    "unknown option " + opt);
        }
    }
    if (a.entries < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--entries must be >= 1");
    if (a.queries < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--queries must be >= 1");
    if (a.storeDir.empty() && (a.storeReadonly || a.compact))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--store-readonly/--compact require --store DIR");
    if (a.storeReadonly && a.compact)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--compact cannot rewrite a read-only store");
    if (a.persistEntries && (a.storeDir.empty() || a.listenPort < 0))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--persist-entries requires --listen and --store DIR");
    if (a.listenPort >= 0 &&
        (a.wordBits < 1 || a.wordBits > 512 || a.maxBatch < 1 || a.maxPending < 1 ||
         a.coalesceUs < 0.0 || a.readTimeout <= 0.0 || a.drainTimeout <= 0.0))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--listen argument out of range");
    if (a.bitsPerCell < 1 || a.bitsPerCell > device::kMaxMlcBitsPerCell)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--bits-per-cell expects 1.." +
                                    std::to_string(device::kMaxMlcBitsPerCell));
    if (a.advertiseVersion < 1 ||
        a.advertiseVersion > static_cast<int>(net::kProtocolVersion))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "--advertise-version expects 1.." +
                                    std::to_string(net::kProtocolVersion));
    return a;
}

serve::EngineOptions baseOptions(const Args& a) {
    serve::EngineOptions base;
    base.shard.cell = tcam::CellKind::FeFet2;
    base.shard.sense = array::SenseScheme::LowSwing;
    base.shard.rows = a.rows;
    base.batchSize = a.batch;
    base.backend = a.backend;
    return base;
}

struct ServeSummary {
    std::string name;
    std::int64_t queries = 0;
    std::int64_t hits = 0;
    std::int64_t accepted = 0;  ///< batches through engine admission control
    std::int64_t shed = 0;      ///< batches refused by admission control
    std::int64_t deadlineExpired = 0;
    double seconds = 0.0;
    double qps = 0.0;
    double energyPerQuery = 0.0;
    double latency = 0.0;
    std::string report;
};

void printSummary(const ServeSummary& s, const serve::CharacterizationCache& cache) {
    std::printf("--- %s: %lld queries, %lld hits, %s ---\n", s.name.c_str(),
                static_cast<long long>(s.queries), static_cast<long long>(s.hits),
                core::engFormat(s.qps, "q/s").c_str());
    std::printf("%s", s.report.c_str());
    const auto cs = cache.stats();
    std::printf("  cache          %lld entries (%lld hits / %lld misses / %lld bypasses)\n",
                static_cast<long long>(cs.entries), static_cast<long long>(cs.hits),
                static_cast<long long>(cs.misses), static_cast<long long>(cs.bypasses));
    const auto ss = cache.storeStatus();
    if (ss.attached) {
        if (ss.degraded) {
            std::printf("  store          DEGRADED [%s] %s\n",
                        recover::reasonName(ss.errorReason), ss.error.c_str());
        } else {
            std::printf("  store          %lld loaded (%lld salvaged) / %lld appended%s%s\n",
                        static_cast<long long>(ss.load.recordsLoaded),
                        static_cast<long long>(ss.load.recordsSalvaged),
                        static_cast<long long>(ss.appended),
                        ss.readOnly ? ", read-only" : "",
                        ss.load.quarantined ? ", prior log quarantined" : "");
        }
    }
    std::printf("\n");
}

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

ServeSummary summarize(const std::string& name, const serve::QueryEngine& engine,
                       std::int64_t queries, std::int64_t hits, double seconds) {
    ServeSummary s;
    s.name = name;
    s.queries = queries;
    s.hits = hits;
    s.seconds = seconds;
    s.qps = static_cast<double>(queries) / seconds;
    const auto es = engine.stats();
    s.accepted = es.accepted;
    s.shed = es.shed;
    s.deadlineExpired = es.deadlineExpired;
    s.energyPerQuery = engine.energyPerQuery();
    s.latency = engine.queryLatency();
    s.report = engine.report();
    return s;
}

ServeSummary runLpm(const Args& a, const std::shared_ptr<serve::CharacterizationCache>& cache) {
    apps::RoutingTable table;
    numeric::Rng rng(a.seed);
    table.addRoute(0, 0, 1);
    for (std::int64_t i = 1; i < a.entries; ++i) {
        const int len = 8 * rng.uniformInt(1, 3);  // /8, /16 or /24
        const auto addr = static_cast<std::uint32_t>(rng.nextU64());
        const std::uint32_t mask = len == 32 ? ~0u : ~0u << (32 - len);
        table.addRoute(addr & mask, len, static_cast<int>(100 + i));
    }

    std::vector<std::uint32_t> addresses(static_cast<std::size_t>(a.queries));
    for (auto& addr : addresses) addr = static_cast<std::uint32_t>(rng.nextU64());

    serve::LpmService svc(table, baseOptions(a), cache);
    const double t0 = now();
    const auto out = svc.lookupBatch(addresses, a.jobs);
    const double dt = now() - t0;
    std::int64_t hits = 0;
    for (const auto& h : out) hits += h.has_value();
    return summarize("lpm", svc.engine(), a.queries, hits, dt);
}

ServeSummary runTlb(const Args& a, const std::shared_ptr<serve::CharacterizationCache>& cache) {
    apps::Tlb tlb(static_cast<std::size_t>(a.entries));
    numeric::Rng rng(a.seed);
    for (std::int64_t i = 0; i < a.entries; ++i) {
        if (i % 16 == 0) {  // sprinkle 2M superpages among the 4K pages
            tlb.insert(static_cast<std::uint64_t>(i) << 9, apps::PageSize::Page2M,
                       static_cast<std::uint64_t>(5000 + i));
        } else {
            tlb.insert((1ULL << 20) + static_cast<std::uint64_t>(i), apps::PageSize::Page4K,
                       static_cast<std::uint64_t>(1000 + i));
        }
    }

    std::vector<std::uint64_t> vaddrs(static_cast<std::size_t>(a.queries));
    for (auto& vaddr : vaddrs) {
        if (rng.uniform() < 0.8) {  // mostly resident pages
            const auto i = static_cast<std::uint64_t>(
                rng.uniformInt(0, static_cast<int>(a.entries) - 1));
            vaddr = (((1ULL << 20) + i) << 12) + (rng.nextU64() & 0xFFF);
        } else {
            vaddr = rng.nextU64() & ((1ULL << apps::Tlb::kVaBits) - 1);
        }
    }

    serve::TlbService svc(tlb, baseOptions(a), cache);
    const double t0 = now();
    const auto out = svc.translateBatch(vaddrs, a.jobs);
    const double dt = now() - t0;
    std::int64_t hits = 0;
    for (const auto& h : out) hits += h.has_value();
    return summarize("tlb", svc.engine(), a.queries, hits, dt);
}

ServeSummary runClassifier(const Args& a,
                           const std::shared_ptr<serve::CharacterizationCache>& cache) {
    apps::PacketClassifier classifier;
    numeric::Rng rng(a.seed);
    for (std::int64_t i = 0; i < a.entries; ++i) {
        const auto src = static_cast<std::uint32_t>(rng.nextU64());
        apps::RuleBuilder b;
        b.srcPrefix(src & (~0u << 8), 24).protocol(rng.bernoulli(0.5) ? 6 : 17);
        classifier.addRule(b.build(static_cast<int>(i), "rule" + std::to_string(i)));
    }

    const auto& rules = classifier.rules();
    std::vector<apps::PacketHeader> headers(static_cast<std::size_t>(a.queries));
    for (auto& h : headers) {
        h.srcIp = static_cast<std::uint32_t>(rng.nextU64());
        if (rng.uniform() < 0.5 && !rules.empty()) {
            // Steer into a known rule's /24 so a fair share of packets match.
            const auto& w = rules[static_cast<std::size_t>(rng.uniformInt(
                                      0, static_cast<int>(rules.size()) - 1))]
                                .pattern;
            std::uint32_t prefix = 0;
            for (int bit = 0; bit < 24; ++bit)
                prefix = (prefix << 1) |
                         (w[static_cast<std::size_t>(bit)] == tcam::Trit::One ? 1u : 0u);
            h.srcIp = (prefix << 8) | (h.srcIp & 0xFF);
        }
        h.dstIp = static_cast<std::uint32_t>(rng.nextU64());
        h.srcPort = static_cast<std::uint16_t>(rng.nextU64());
        h.dstPort = static_cast<std::uint16_t>(rng.nextU64());
        h.protocol = rng.bernoulli(0.5) ? 6 : 17;
    }

    serve::ClassifierService svc(classifier, baseOptions(a), cache);
    const double t0 = now();
    const auto out = svc.classifyBatch(headers, a.jobs);
    const double dt = now() - t0;
    std::int64_t hits = 0;
    for (const auto& h : out) hits += h.has_value();
    return summarize("classifier", svc.engine(), a.queries, hits, dt);
}

void writeJson(const std::string& path, const std::vector<ServeSummary>& summaries,
               const serve::CharacterizationCache& cache) {
    std::ofstream os(path);
    if (!os)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "cannot open " + path + " for writing");
    os.precision(17);
    const auto cs = cache.stats();
    const auto ss = cache.storeStatus();
    os << "{\n  \"tool\": \"fetcam_serve\",\n";

    // Everything under "deterministic" is byte-identical for the same
    // arguments regardless of cold/warm cache, store state, or --jobs: the
    // warm-restart CI smoke diffs this object across two runs sharing one
    // store directory.
    os << "  \"deterministic\": {\n    \"workloads\": [\n";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const auto& s = summaries[i];
        os << "      {\n";
        os << "        \"name\": \"" << s.name << "\",\n";
        os << "        \"queries\": " << s.queries << ",\n";
        os << "        \"hits\": " << s.hits << ",\n";
        os << "        \"accepted\": " << s.accepted << ",\n";
        os << "        \"shed\": " << s.shed << ",\n";
        os << "        \"deadlineExpired\": " << s.deadlineExpired << ",\n";
        os << "        \"energyPerQueryJ\": " << s.energyPerQuery << ",\n";
        os << "        \"latencyS\": " << s.latency << ",\n";
        os << "        \"report\": \"" << jsonEscape(s.report) << "\"\n";
        os << "      }" << (i + 1 < summaries.size() ? "," : "") << "\n";
    }
    os << "    ]\n  },\n";

    os << "  \"volatile\": {\n    \"workloads\": [\n";
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const auto& s = summaries[i];
        os << "      {\"name\": \"" << s.name << "\", \"seconds\": " << s.seconds
           << ", \"qps\": " << s.qps << "}" << (i + 1 < summaries.size() ? "," : "")
           << "\n";
    }
    os << "    ],\n";
    os << "    \"cache\": {\"entries\": " << cs.entries << ", \"hits\": " << cs.hits
       << ", \"misses\": " << cs.misses << ", \"bypasses\": " << cs.bypasses
       << ", \"storeHits\": " << cs.storeHits << "},\n";
    os << "    \"store\": {\"attached\": " << (ss.attached ? "true" : "false")
       << ", \"readOnly\": " << (ss.readOnly ? "true" : "false")
       << ", \"degraded\": " << (ss.degraded ? "true" : "false")
       << ", \"loaded\": " << ss.load.recordsLoaded
       << ", \"salvaged\": " << ss.load.recordsSalvaged
       << ", \"appended\": " << ss.appended
       << ", \"quarantined\": " << (ss.load.quarantined ? "true" : "false")
       << ", \"error\": \"" << jsonEscape(ss.error) << "\"}\n";
    os << "  }\n}\n";
}

void writeListenJson(const std::string& path, const net::Server& server,
                     const serve::QueryEngine& engine,
                     const serve::CharacterizationCache& cache) {
    std::ofstream os(path);
    if (!os)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "fetcam_serve",
                                "cannot open " + path + " for writing");
    os.precision(17);
    const auto es = engine.stats();
    const auto cs = cache.stats();
    const auto ss = cache.storeStatus();
    const auto& qw = obs::histogram("serve.admission.queue_wait");
    os << "{\n  \"tool\": \"fetcam_serve\",\n  \"mode\": \"listen\",\n";
    // Deterministic = pure accounting, no wall-clock: CI asserts the
    // invariant queries == hits + misses + shedQueries + expiredQueries and
    // that every protocol error carries a typed code.
    os << "  \"deterministic\": {\n";
    os << "    \"server\": " << server.statsJson() << ",\n";
    os << "    \"engine\": {\"queries\": " << es.queries << ", \"hits\": " << es.hits
       << ", \"batches\": " << es.batches << ", \"accepted\": " << es.accepted
       << ", \"shed\": " << es.shed << ", \"deadlineExpired\": " << es.deadlineExpired
       << "},\n";
    os << "    \"writes\": {\"inserts\": " << es.inserts << ", \"erases\": " << es.erases
       << ", \"energyJ\": " << es.writeEnergy << ", \"latencyS\": " << es.writeLatency
       << ", \"pulsePhases\": " << es.writePulsePhases << "},\n";
    os << "    \"similarity\": {\"queries\": " << es.simQueries
       << ", \"batches\": " << es.simBatches << ", \"rows\": " << es.simRows
       << ", \"energyJ\": " << es.simEnergy << "},\n";
    os << "    \"energyPerQueryJ\": " << engine.energyPerQuery()
       << ",\n    \"latencyS\": " << engine.queryLatency() << "\n  },\n";
    os << "  \"volatile\": {\n";
    os << "    \"queueWait\": {\"count\": " << qw.count() << ", \"meanSeconds\": "
       << (qw.count() > 0 ? qw.mean() : 0.0)
       << ", \"p50\": " << (qw.count() > 0 ? obs::quantile(qw, 0.5) : 0.0)
       << ", \"p99\": " << (qw.count() > 0 ? obs::quantile(qw, 0.99) : 0.0) << "},\n";
    os << "    \"cache\": {\"entries\": " << cs.entries << ", \"hits\": " << cs.hits
       << ", \"misses\": " << cs.misses << "},\n";
    os << "    \"store\": {\"attached\": " << (ss.attached ? "true" : "false")
       << ", \"degraded\": " << (ss.degraded ? "true" : "false")
       << ", \"loaded\": " << ss.load.recordsLoaded << ", \"appended\": " << ss.appended
       << "},\n";
    const auto tls = engine.tableLogStatus();
    os << "    \"tableLog\": {\"attached\": " << (tls.attached ? "true" : "false")
       << ", \"degraded\": " << (tls.degraded ? "true" : "false")
       << ", \"replayed\": " << tls.replayed << ", \"appended\": " << tls.appended
       << ", \"occupied\": " << engine.occupancy() << "}\n  }\n}\n";
}

int runListen(const Args& a, const std::shared_ptr<serve::CharacterizationCache>& cache) {
    // The queue-wait histogram and net.* counters live behind obs::enabled().
    obs::setEnabled(true);

    serve::EngineOptions base = baseOptions(a);
    base.shard.wordBits = a.wordBits;
    base.capacity = a.entries;
    base.simBitsPerCell = a.bitsPerCell;
    if (a.persistEntries) {
        base.persistEntries = true;
        base.store.dir = a.storeDir;
        base.store.readOnly = a.storeReadonly;
    }
    serve::QueryEngine engine(base, cache);
    const auto tls = engine.tableLogStatus();
    if (tls.degraded)
        std::fprintf(stderr,
                     "fetcam_serve: warning: table log unusable, entries memory-only "
                     "[%s] %s\n",
                     recover::reasonName(tls.errorReason), tls.error.c_str());
    if (engine.restoredMutations() > 0) {
        // Warm restart: the delta log already replayed the mutated table;
        // installing the seed set would clobber it.
        std::printf("fetcam_serve: warm table restart — %lld mutations replayed, "
                    "%lld rows occupied\n",
                    static_cast<long long>(engine.restoredMutations()),
                    static_cast<long long>(engine.occupancy()));
    } else {
        const auto entries = tools::makeListenEntries(a.seed, a.entries, a.wordBits);
        for (const auto& word : entries) engine.insert(word);
    }

    net::ServerOptions opts;
    opts.host = a.host;
    opts.port = a.listenPort;
    opts.maxConnections = a.maxConnections;
    opts.maxBatch = static_cast<std::uint32_t>(a.maxBatch);
    opts.coalesceWindow = a.coalesceUs * 1e-6;
    opts.maxPendingQueries = a.maxPending;
    opts.readTimeout = a.readTimeout;
    opts.defaultDeadline = a.deadlineMs * 1e-3;
    opts.drainTimeout = a.drainTimeout;
    opts.jobs = a.jobs;
    opts.advertiseVersion = static_cast<std::uint32_t>(a.advertiseVersion);

    net::Server server(engine, opts);
    server.start();
    net::Server::installStopSignals(server);
    if (!a.portFile.empty()) {
        std::ofstream pf(a.portFile);
        if (!pf)
            throw recover::SimError(recover::SimErrorReason::IoError, "fetcam_serve",
                                    "cannot write port file " + a.portFile);
        pf << server.port() << "\n";
    }
    std::printf("fetcam_serve: listening on %s:%d (%lld entries, %d-bit words)\n",
                a.host.c_str(), server.port(), static_cast<long long>(a.entries),
                a.wordBits);
    std::fflush(stdout);

    server.run();  // returns after the SIGTERM/SIGINT graceful drain

    // Drain contract: the engine answered everything in flight; now make the
    // characterization store and entry delta log durable before reporting.
    cache->flush();
    engine.flushTable();
    if (a.compact && cache->compact())
        std::printf("store compacted: %lld entries snapshotted\n",
                    static_cast<long long>(cache->stats().entries));
    if (a.compact && engine.compactTable())
        std::printf("table log compacted: %lld rows snapshotted\n",
                    static_cast<long long>(engine.occupancy()));

    const auto& st = server.stats();
    std::printf("fetcam_serve: drained%s — %lld conns, %lld requests, %lld queries "
                "(%lld hit / %lld miss / %lld shed / %lld expired), %lld proto errors\n",
                st.drainForced ? " (forced)" : "",
                static_cast<long long>(st.connectionsAccepted),
                static_cast<long long>(st.requests), static_cast<long long>(st.queries),
                static_cast<long long>(st.hits), static_cast<long long>(st.misses),
                static_cast<long long>(st.shedQueries),
                static_cast<long long>(st.expiredQueries),
                static_cast<long long>(st.protoErrors));
    std::printf("%s", engine.report().c_str());

    if (!a.jsonPath.empty()) writeListenJson(a.jsonPath, server, engine, *cache);
    recover::checkStdout("fetcam_serve");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    // A reader (pipe, CI log collector) going away must surface as a typed
    // I/O error through checkStdout, not a silent SIGPIPE death.
    recover::ignoreSigpipe();
    try {
        const Args a = parseArgs(argc, argv);
        if (!a.tracePath.empty()) {
            if (!obs::TraceSink::global().open(a.tracePath))
                std::fprintf(stderr, "warning: cannot open trace file %s\n",
                             a.tracePath.c_str());
            obs::setEnabled(true);
        } else {
            obs::initFromEnv();
        }

        std::shared_ptr<serve::CharacterizationCache> cache;
        if (!a.storeDir.empty()) {
            store::StoreConfig cfg;
            cfg.dir = a.storeDir;
            cfg.readOnly = a.storeReadonly;
            cache = std::make_shared<serve::CharacterizationCache>(cfg);
            const auto ss = cache->storeStatus();
            if (ss.degraded)
                std::fprintf(stderr,
                             "fetcam_serve: warning: store unusable, serving cold "
                             "[%s] %s\n",
                             recover::reasonName(ss.errorReason), ss.error.c_str());
        } else {
            cache = std::make_shared<serve::CharacterizationCache>();
        }
        if (a.listenPort >= 0) return runListen(a, cache);
        std::vector<ServeSummary> summaries;
        if (a.workload == "lpm" || a.workload == "all") {
            summaries.push_back(runLpm(a, cache));
            printSummary(summaries.back(), *cache);
        }
        if (a.workload == "tlb" || a.workload == "all") {
            summaries.push_back(runTlb(a, cache));
            printSummary(summaries.back(), *cache);
        }
        if (a.workload == "classifier" || a.workload == "all") {
            summaries.push_back(runClassifier(a, cache));
            printSummary(summaries.back(), *cache);
        }
        cache->flush();  // everything characterized this run is now durable
        if (a.compact && cache->compact())
            std::printf("store compacted: %lld entries snapshotted\n",
                        static_cast<long long>(cache->stats().entries));
        if (!a.jsonPath.empty()) writeJson(a.jsonPath, summaries, *cache);
        recover::checkStdout("fetcam_serve");
        return 0;
    } catch (const recover::SimError& e) {
        std::fprintf(stderr, "fetcam_serve: [%s] %s\n", recover::reasonName(e.reason()),
                     e.what());
        return recover::exitCodeFor(e.reason());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fetcam_serve: %s\n", e.what());
        return 1;
    }
}
