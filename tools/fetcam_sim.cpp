// fetcam_sim — command-line circuit simulator front-end.
//
// Usage:
//   fetcam_sim op <netlist.sp>
//   fetcam_sim tran <netlist.sp> --tstop 10n [--dtmax 10p] [--ic node=V ...]
//                   [--probe n1,n2,...] [--csv out.csv] [--trace out.jsonl]
//                   [--jobs N]
//   fetcam_sim ac <netlist.sp> --from 1k --to 1g [--ppd 10] --probe out
//   fetcam_sim describe <netlist.sp>
//
// Netlist grammar: see src/device/netlist.hpp (R C L V I M F X Y E G,
// .subckt/.ends). Numbers accept SPICE suffixes (10k, 100f, 5n).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fetcam.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/io_guard.hpp"
#include "recover/sim_error.hpp"
#include "spice/waveform_io.hpp"

using namespace fetcam;

namespace {

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<std::string> splitCsvList(const std::string& s) {
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty()) out.push_back(item);
    return out;
}

struct Args {
    std::string command;
    std::string netlistPath;
    double tstop = 0.0;
    double dtmax = 0.0;
    double fFrom = 1e3, fTo = 1e9;
    int ppd = 10;
    std::vector<std::string> probes;
    std::vector<std::pair<std::string, double>> ics;
    std::string csvPath;
    std::string tracePath;  ///< JSONL observability trace (also: FETCAM_TRACE)
};

Args parseArgs(int argc, char** argv) {
    if (argc < 3) throw std::runtime_error("usage: fetcam_sim <op|tran|ac|describe> "
                                           "<netlist> [options]");
    Args a;
    a.command = argv[1];
    a.netlistPath = argv[2];
    for (int i = 3; i < argc; ++i) {
        const std::string opt = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc) throw std::runtime_error("missing value after " + opt);
            return argv[i];
        };
        if (opt == "--tstop") {
            a.tstop = device::parseSpiceNumber(next());
        } else if (opt == "--dtmax") {
            a.dtmax = device::parseSpiceNumber(next());
        } else if (opt == "--from") {
            a.fFrom = device::parseSpiceNumber(next());
        } else if (opt == "--to") {
            a.fTo = device::parseSpiceNumber(next());
        } else if (opt == "--ppd") {
            a.ppd = static_cast<int>(device::parseSpiceNumber(next()));
        } else if (opt == "--probe") {
            for (auto& p : splitCsvList(next())) a.probes.push_back(p);
        } else if (opt == "--csv") {
            a.csvPath = next();
        } else if (opt == "--trace") {
            a.tracePath = next();
        } else if (opt == "--jobs") {
            // Worker threads for any parallel sweep the run triggers.
            // Shared parseJobs semantics: 0/negative = all hardware threads,
            // non-integers rejected as a structured InvalidSpec.
            try {
                numeric::setDefaultJobs(numeric::parseJobs(next()));
            } catch (const std::invalid_argument& e) {
                throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                        "fetcam_sim", e.what());
            }
        } else if (opt == "--ic") {
            const std::string kv = next();
            const auto eq = kv.find('=');
            if (eq == std::string::npos) throw std::runtime_error("--ic expects node=V");
            a.ics.emplace_back(kv.substr(0, eq),
                               device::parseSpiceNumber(kv.substr(eq + 1)));
        } else {
            throw std::runtime_error("unknown option " + opt);
        }
    }
    return a;
}

int runOp(spice::Circuit& c) {
    const auto op = solveDcOp(c);
    if (!op.converged) {
        std::fprintf(stderr, "DC operating point did not converge\n");
        return 2;
    }
    std::printf("node voltages (gmin=%g, %d Newton iterations):\n", op.finalGmin,
                op.totalIterations);
    for (spice::NodeId n = 1; n < c.numNodes(); ++n)
        std::printf("  %-20s %12.6f V\n", c.nodeName(n).c_str(), op.v(n));
    return 0;
}

int runTran(spice::Circuit& c, const Args& a) {
    if (a.tstop <= 0.0) throw std::runtime_error("tran requires --tstop");
    spice::TransientSpec spec;
    spec.tstop = a.tstop;
    spec.dtMax = a.dtmax > 0.0 ? a.dtmax : a.tstop / 1000.0;
    for (const auto& [name, v] : a.ics) spec.initialConditions.push_back({c.node(name), v});
    const auto r = runTransient(c, spec);
    if (obs::enabled())
        std::printf("\n%s\n", core::runReport(r).c_str());
    else
        std::printf("transient: %d accepted steps, %d rejected, %d Newton iterations\n",
                    r.acceptedSteps, r.rejectedSteps, r.newtonIterations);

    spice::WaveColumns cols;
    for (const auto& p : a.probes) cols.emplace_back(p, c.findNode(p));
    if (cols.empty())
        for (spice::NodeId n = 1; n < c.numNodes(); ++n)
            cols.emplace_back(c.nodeName(n), n);

    if (!a.csvPath.empty()) {
        writeCsvFile(a.csvPath, r.waveforms, cols);
        std::printf("wrote %zu samples x %zu columns to %s\n", r.waveforms.size(),
                    cols.size(), a.csvPath.c_str());
    } else {
        writeCsvUniform(std::cout, r.waveforms, cols, 21);
    }
    // Per-device energy summary.
    std::printf("\ndevice energies (absorbed):\n");
    for (const auto& d : c.devices())
        std::printf("  %-20s %s\n", d->name().c_str(),
                    core::engFormat(d->energy(), "J").c_str());
    return 0;
}

int runAcCmd(spice::Circuit& c, const Args& a) {
    if (a.probes.empty()) throw std::runtime_error("ac requires --probe");
    const auto op = solveDcOp(c);
    if (!op.converged) {
        std::fprintf(stderr, "DC operating point did not converge\n");
        return 2;
    }
    const auto res = runAc(c, op, spice::AcSpec::logSweep(a.fFrom, a.fTo, a.ppd));
    std::printf("%-14s", "freq [Hz]");
    for (const auto& p : a.probes) std::printf("  %14s dB  %9s deg", p.c_str(), p.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < res.points(); ++i) {
        std::printf("%-14.6g", res.frequencies()[i]);
        for (const auto& p : a.probes) {
            const auto n = c.findNode(p);
            std::printf("  %14.3f     %9.2f    ", res.magnitudeDb(i, n),
                        res.phaseDeg(i, n));
        }
        std::printf("\n");
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    // Waveform output commonly goes to a pipe (`fetcam_sim tran | head`); a
    // closed reader must become a typed I/O error, not a silent SIGPIPE kill.
    recover::ignoreSigpipe();
    try {
        const Args a = parseArgs(argc, argv);
        if (!a.tracePath.empty()) {
            if (!obs::TraceSink::global().open(a.tracePath))
                std::fprintf(stderr, "warning: cannot open trace file %s\n",
                             a.tracePath.c_str());
            obs::setEnabled(true);
        } else {
            obs::initFromEnv();
        }
        spice::Circuit c;
        const auto tech = device::TechCard::cmos45();
        const int n = parseNetlist(readFile(a.netlistPath), c, tech);
        std::fprintf(stderr, "parsed %d elements, %d nodes, %d branches\n", n,
                     c.numNodes() - 1, c.numBranches());
        int rc = 1;
        if (a.command == "op") rc = runOp(c);
        else if (a.command == "tran") rc = runTran(c, a);
        else if (a.command == "ac") rc = runAcCmd(c, a);
        else if (a.command == "describe") {
            std::printf("%s", device::describeCircuit(c).c_str());
            rc = 0;
        } else {
            throw std::runtime_error("unknown command '" + a.command + "'");
        }
        recover::checkStdout("fetcam_sim");
        return rc;
    } catch (const recover::SimError& e) {
        std::fprintf(stderr, "fetcam_sim: [%s] %s\n", recover::reasonName(e.reason()),
                     e.what());
        return recover::exitCodeFor(e.reason());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fetcam_sim: %s\n", e.what());
        return 1;
    }
}
