// fetcam_trace — summarize a JSONL trace produced by the obs subsystem
// (bench `--trace out.jsonl` or the FETCAM_TRACE env switch).
//
// Prints: top spans by self wall time, event counts, solver step health
// (accept/reject totals and rejection hot-spots along simulated time), and a
// per-device energy ranking.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/trace_reader.hpp"

namespace {

using fetcam::core::engFormat;
using fetcam::core::numFormat;
using fetcam::core::Table;
using fetcam::obs::SpanStat;
using fetcam::obs::TraceRecord;

int usage() {
    std::fprintf(stderr,
                 "usage: fetcam_trace <trace.jsonl> [--top N]\n"
                 "  Summarize a fetcam observability trace: top spans by self time,\n"
                 "  event counts, solver rejection hot-spots, per-device energy.\n");
    return 2;
}

void printSpanSummary(const std::vector<TraceRecord>& records, int top) {
    const auto stats = fetcam::obs::spanStats(records);
    if (stats.empty()) {
        std::printf("no spans recorded\n\n");
        return;
    }
    Table t({"span", "count", "total", "self", "mean", "max"});
    int shown = 0;
    for (const auto& s : stats) {
        if (shown++ >= top) break;
        t.addRow({s.name, std::to_string(s.count), engFormat(s.total, "s"),
                  engFormat(s.self, "s"),
                  engFormat(s.total / static_cast<double>(s.count), "s"),
                  engFormat(s.max, "s")});
    }
    std::printf("== top spans by self time ==\n%s\n", t.toAligned().c_str());
}

void printEventCounts(const std::vector<TraceRecord>& records, int top) {
    std::map<std::string, long long> counts;
    for (const auto& r : records)
        if (r.isEvent()) ++counts[r.name];
    if (counts.empty()) {
        std::printf("no events recorded\n\n");
        return;
    }
    std::vector<std::pair<std::string, long long>> sorted(counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    Table t({"event", "count"});
    int shown = 0;
    for (const auto& [name, n] : sorted) {
        if (shown++ >= top) break;
        t.addRow({name, std::to_string(n)});
    }
    std::printf("== event counts ==\n%s\n", t.toAligned().c_str());
}

void printStepHealth(const std::vector<TraceRecord>& records) {
    long long accepted = 0, rejected = 0;
    double tMax = 0.0;
    std::vector<const TraceRecord*> rejects;
    for (const auto& r : records) {
        if (!r.isEvent()) continue;
        if (r.name == "step.accept") ++accepted;
        if (r.name == "step.reject") {
            ++rejected;
            rejects.push_back(&r);
        }
        if (r.name == "step.accept" || r.name == "step.reject") {
            const auto it = r.num.find("t");
            if (it != r.num.end()) tMax = std::max(tMax, it->second);
        }
    }
    if (accepted + rejected == 0) return;
    std::printf("== solver steps ==\naccepted %lld   rejected %lld   (%.2f%% rejected)\n\n",
                accepted, rejected,
                100.0 * static_cast<double>(rejected) /
                    static_cast<double>(accepted + rejected));
    if (rejects.empty() || tMax <= 0.0) return;

    // Hot-spots: rejections bucketed along simulated time.
    constexpr int kBuckets = 10;
    std::vector<long long> hist(kBuckets, 0);
    for (const auto* r : rejects) {
        const auto it = r->num.find("t");
        if (it == r->num.end()) continue;
        int b = static_cast<int>(it->second / tMax * kBuckets);
        hist[std::clamp(b, 0, kBuckets - 1)]++;
    }
    Table t({"sim-time window", "rejections"});
    for (int b = 0; b < kBuckets; ++b) {
        if (hist[b] == 0) continue;
        t.addRow({engFormat(b * tMax / kBuckets, "s") + " .. " +
                      engFormat((b + 1) * tMax / kBuckets, "s"),
                  std::to_string(hist[b])});
    }
    std::printf("== rejection hot-spots ==\n%s\n", t.toAligned().c_str());

    std::sort(rejects.begin(), rejects.end(), [](const auto* a, const auto* b) {
        const auto iters = [](const TraceRecord* r) {
            const auto it = r->num.find("iters");
            return it == r->num.end() ? 0.0 : it->second;
        };
        return iters(a) > iters(b);
    });
    Table worst({"t", "dt", "iters"});
    for (std::size_t i = 0; i < rejects.size() && i < 5; ++i) {
        const auto& n = rejects[i]->num;
        const auto get = [&](const char* k) {
            const auto it = n.find(k);
            return it == n.end() ? 0.0 : it->second;
        };
        worst.addRow({engFormat(get("t"), "s"), engFormat(get("dt"), "s"),
                      numFormat(get("iters"), 0)});
    }
    std::printf("== worst rejected steps ==\n%s\n", worst.toAligned().c_str());
}

void printEnergyRanking(const std::vector<TraceRecord>& records, int top) {
    std::map<std::string, double> energy;
    for (const auto& r : records) {
        if (!r.isEvent() || r.name != "energy.device") continue;
        const auto dev = r.str.find("device");
        const auto e = r.num.find("energy");
        if (dev == r.str.end() || e == r.num.end()) continue;
        energy[dev->second] += e->second;
    }
    if (energy.empty()) return;
    std::vector<std::pair<std::string, double>> sorted(energy.begin(), energy.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    double total = 0.0;
    for (const auto& [_, e] : sorted) total += e;
    Table t({"device", "energy", "share"});
    int shown = 0;
    for (const auto& [name, e] : sorted) {
        if (shown++ >= top) break;
        t.addRow({name, engFormat(e, "J"),
                  total > 0.0 ? numFormat(100.0 * e / total, 1) + " %" : "-"});
    }
    std::printf("== per-device energy ==\ntotal %s\n%s\n", engFormat(total, "J").c_str(),
                t.toAligned().c_str());
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    int top = 20;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
            top = std::atoi(argv[++i]);
        } else if (argv[i][0] == '-') {
            return usage();
        } else if (path.empty()) {
            path = argv[i];
        } else {
            return usage();
        }
    }
    if (path.empty() || top <= 0) return usage();

    std::vector<TraceRecord> records;
    try {
        records = fetcam::obs::readTraceFile(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fetcam_trace: %s\n", e.what());
        return 1;
    }

    long long spans = 0, events = 0;
    for (const auto& r : records) {
        spans += r.isSpan() ? 1 : 0;
        events += r.isEvent() ? 1 : 0;
    }
    std::printf("trace %s: %zu records (%lld spans, %lld events)\n\n", path.c_str(),
                records.size(), spans, events);

    printSpanSummary(records, top);
    printEventCounts(records, top);
    printStepHealth(records);
    printEnergyRanking(records, top);
    return 0;
}
