// Approximate pattern matcher (hyperdimensional-computing flavour).
//
// Stores random hypervectors in an associative FeFET TCAM and recovers the
// nearest entry for noisy queries two ways: the exact Hamming golden model
// and the analog matchline-discharge model (the row whose ML falls last
// wins). Then prices the search on hardware.
#include <cstdio>

#include "core/fetcam.hpp"

using namespace fetcam;

int main() {
    constexpr std::size_t kBits = 64;
    constexpr std::size_t kEntries = 128;
    constexpr int kTrials = 300;

    const auto rows = apps::randomHypervectors(kEntries, kBits, /*seed=*/7);
    apps::AssociativeMemory memory(kBits);
    for (const auto& r : rows) memory.add(r);

    numeric::Rng rng(99);
    int recoveredExact = 0, recoveredAnalog = 0, agreements = 0;
    for (int t = 0; t < kTrials; ++t) {
        const auto target = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(kEntries) - 1));
        const auto noisy = apps::perturbWord(rows[target], /*flips=*/6, rng);

        const auto exact = memory.nearest(noisy);
        const auto analog = memory.nearestViaDischarge(noisy);
        recoveredExact += exact.index == target;
        recoveredAnalog += analog.index == target;
        agreements += exact.index == analog.index;
    }
    std::printf("associative recall over %d noisy queries (6/%zu bits flipped):\n", kTrials,
                kBits);
    std::printf("  exact Hamming model : %.1f%% recovered\n",
                100.0 * recoveredExact / kTrials);
    std::printf("  analog ML-discharge : %.1f%% recovered (%.1f%% agreement)\n\n",
                100.0 * recoveredAnalog / kTrials, 100.0 * agreements / kTrials);

    // Hardware cost of one associative search on a 128 x 64 FeFET array.
    // Approximate search keeps every matchline evaluating (no early match),
    // so matchRowFraction = 0 is the honest workload.
    const auto tech = device::TechCard::cmos45();
    array::WorkloadProfile wl;
    wl.matchRowFraction = 0.0;
    core::Table out({"design", "E/query", "fJ/bit", "latency"});
    for (const auto& d :
         core::standardDesigns(static_cast<int>(kBits), static_cast<int>(kEntries))) {
        if (d.config.selectivePrecharge) continue;  // needs full-word evaluation
        const auto m = evaluateArray(tech, d.config, wl);
        out.addRow({d.name, core::engFormat(m.perSearch.total(), "J"),
                    core::numFormat(m.energyPerBitFj, 2),
                    core::engFormat(m.searchDelay, "s")});
    }
    std::printf("%s", out.toAligned().c_str());
    return 0;
}
