// Quickstart: build one FeFET TCAM word, search it, and read out the
// decision, delay and per-search energy — the library's core loop in ~40
// lines. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/fetcam.hpp"

using namespace fetcam;

int main() {
    // 1. Pick a technology and an array configuration.
    const auto tech = device::TechCard::cmos45();
    array::ArrayConfig cfg;
    cfg.cell = tcam::CellKind::FeFet2;          // 2-FeFET NOR cell
    cfg.sense = array::SenseScheme::FullSwing;  // conventional sensing
    cfg.wordBits = 16;

    // 2. Store a ternary word: '1'/'0' match exactly, 'X' matches anything.
    const auto stored = tcam::TernaryWord::fromString("10X1XX0110X1XX01");

    // 3. Search a few keys through full circuit simulation.
    const struct {
        const char* key;
        const char* what;
    } queries[] = {
        {"1011110110011101", "matches (X positions are free)"},
        {"0011110110011101", "first bit differs"},
        {"1011110110011100", "last bit differs"},
    };

    std::printf("stored: %s  (%s cell, %s sensing)\n\n", stored.toString().c_str(),
                cellKindName(cfg.cell), senseSchemeName(cfg.sense));
    for (const auto& q : queries) {
        array::WordSimOptions opt;
        opt.tech = tech;
        opt.config = cfg;
        opt.stored = stored;
        opt.key = tcam::TernaryWord::fromString(q.key);

        const auto r = simulateWordSearch(opt);
        std::printf("key %s -> %-8s  [%s]\n", q.key, r.matchDetected ? "MATCH" : "mismatch",
                    q.what);
        std::printf("    golden model agrees: %s;  ML at sense: %.3f V\n",
                    r.correct() ? "yes" : "NO", r.mlAtSense);
        if (r.detectDelay)
            std::printf("    mismatch detected after %s\n",
                        core::engFormat(*r.detectDelay, "s").c_str());
        std::printf("    energy: %s  (ML %s, SL %s, SA %s)\n\n",
                    core::engFormat(r.energyTotal, "J").c_str(),
                    core::engFormat(r.energyMl, "J").c_str(),
                    core::engFormat(r.energySl, "J").c_str(),
                    core::engFormat(r.energySa, "J").c_str());
    }

    // 4. Scale to an array with the analytic model.
    cfg.wordBits = 32;
    cfg.rows = 64;
    const auto metrics = evaluateArray(tech, cfg);
    std::printf("64x32 array: %s/search, %s/bit, delay %s, %s searches/s\n",
                core::engFormat(metrics.perSearch.total(), "J").c_str(),
                core::engFormat(metrics.energyPerBitFj * 1e-15, "J").c_str(),
                core::engFormat(metrics.searchDelay, "s").c_str(),
                core::engFormat(metrics.throughput, "").c_str());
    return 0;
}
