// Design-space explorer: sweep the (sensing x search-voltage x segmentation)
// grid for the FeFET cell, print every point, and mark the energy/delay
// Pareto front.
#include <algorithm>
#include <cstdio>

#include "core/fetcam.hpp"

using namespace fetcam;

int main() {
    const auto tech = device::TechCard::cmos45();
    const auto designs = core::parametricSweep(tcam::CellKind::FeFet2, /*wordBits=*/32,
                                               /*rows=*/64);
    std::printf("exploring %zu FeFET design points (32-bit words, 64 rows)...\n\n",
                designs.size());
    const auto results = exploreDesigns(tech, designs);

    const auto energyOf = [](const array::ArrayMetrics& m) { return m.perSearch.total(); };
    const auto delayOf = [](const array::ArrayMetrics& m) { return m.searchDelay; };
    const auto front = core::paretoFront(results, energyOf, delayOf);

    core::Table out({"design point", "E/search", "delay", "EDP", "pareto"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        const bool onFront = std::find(front.begin(), front.end(), i) != front.end();
        out.addRow({r.design.name, core::engFormat(energyOf(r.metrics), "J"),
                    core::engFormat(delayOf(r.metrics), "s"),
                    core::engFormat(energyOf(r.metrics) * delayOf(r.metrics), "Js"),
                    onFront ? "  *" : ""});
    }
    std::printf("%s\n", out.toAligned().c_str());
    std::printf("%zu of %zu points are Pareto-optimal (*)\n", front.size(), results.size());
    return 0;
}
