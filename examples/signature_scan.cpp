// Signature scanning end-to-end on a TcamMacro: compile an HTTP-flavoured
// signature dictionary into ternary patterns, load them into a hardware
// macro, stream text tokens through it, and read off hit statistics and
// accumulated energy — the deep-packet-inspection use case.
#include <cstdio>

#include "core/fetcam.hpp"

using namespace fetcam;

int main() {
    constexpr std::size_t kWidth = 12;  // characters -> 96-bit words

    apps::Dictionary dict(kWidth);
    dict.add("GET /admin", 1);
    dict.add("GET /api/?", 2);
    dict.add("GET ?", 3);
    dict.add("POST /login", 4);
    dict.add("POST ?", 5);
    dict.add("DELETE ?", 6);
    dict.add("../", 7);          // path traversal signature
    dict.add("<script", 8);      // XSS signature

    // Load into a hardware macro (proposed energy-aware FeFET design).
    array::ArrayConfig cfg = core::proposedDesign(static_cast<int>(kWidth) * 8, 64).config;
    cfg.selectivePrecharge = false;  // signatures often differ only mid-word
    core::TcamMacro macro(device::TechCard::cmos45(), cfg, 64);
    for (const auto& e : dict.entries()) macro.write(apps::compileToken(e.token, kWidth));

    const char* stream[] = {
        "GET /admin/x",  "GET /api/user", "GET /index",   "POST /login",
        "POST /upload",  "PUT /file",     "../etc/passwd", "<script>aler",
        "DELETE /tmp",   "GET /api/keys", "HEAD /",        "POST /login",
    };

    std::printf("%-16s %-10s %-10s\n", "input", "tcam row", "tag");
    int hits = 0;
    for (const char* s : stream) {
        const auto key = apps::compileText(s, kWidth);
        const auto row = macro.search(key);
        const auto tag = dict.match(s);
        // The macro's row order mirrors dictionary priority: verify agreement.
        if (row.has_value() != tag.has_value()) {
            std::printf("MISMATCH between functional model and macro for '%s'\n", s);
            return 1;
        }
        hits += row.has_value();
        std::printf("%-16s %-10s %-10s\n", s,
                    row ? std::to_string(*row).c_str() : "-",
                    tag ? std::to_string(*tag).c_str() : "-");
    }

    const auto& st = macro.stats();
    std::printf("\n%llu signatures loaded, %llu scans, %d hits\n",
                static_cast<unsigned long long>(st.writes),
                static_cast<unsigned long long>(st.searches), hits);
    std::printf("energy: %s total (%s searching at %s/scan, %s loading)\n",
                core::engFormat(st.totalEnergy(), "J").c_str(),
                core::engFormat(st.searchEnergy, "J").c_str(),
                core::engFormat(macro.energyPerSearch(), "J").c_str(),
                core::engFormat(st.writeEnergy, "J").c_str());
    std::printf("scan latency %s -> %s scans/s sustained\n",
                core::engFormat(macro.searchLatency(), "s").c_str(),
                core::engFormat(1.0 / macro.hardware().cycleTime, "").c_str());
    return 0;
}
