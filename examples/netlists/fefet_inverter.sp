* FeFET driving a resistive load: stored state gates the transfer curve
Vdd vdd 0 DC 1.0
Vin in 0 PULSE 0 1 0.2n 50p 50p 1n
RL vdd out 20k
F1 in out 0 P=1
