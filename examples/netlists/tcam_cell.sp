* One 2-FeFET NOR TCAM cell storing '1' (subcircuit demo).
* Run: fetcam_sim tran examples/netlists/tcam_cell.sp --tstop 1.5n \
*        --ic ml=1.0 --probe ml
* The matchline starts precharged (--ic) and the key-0 search (SLB pulse)
* discharges it through the low-VT FeFET: a mismatch.
.SUBCKT fefet_cell ml sl slb
Fa sl  ml 0 P=-1   ; SL branch blocks  (stored 1)
Fb slb ml 0 P=1    ; SLB branch pulls  (mismatch on key 0)
.ENDS
Vsl  sl  0 PULSE 0 0 0.2n 50p 50p 1n    ; key=0: SL low...
Vslb slb 0 PULSE 0 1 0.2n 50p 50p 1n    ; ...SLB high -> discharge
X1 ml sl slb fefet_cell
Cml ml 0 5f
