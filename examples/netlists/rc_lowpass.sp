* RC low-pass driven by a step: corner at 1/(2*pi*RC) ~ 159 MHz
V1 in 0 PULSE 0 1 0 10p 10p 1
R1 in out 10k
C1 out 0 100f
