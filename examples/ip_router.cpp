// IP longest-prefix-match router on a FeFET TCAM.
//
// Builds a synthetic BGP-shaped routing table, serves a query stream with the
// functional model (priority-ordered TCAM semantics, cross-checked against a
// linear scan), then prices the lookups on real hardware designs with the
// calibrated array energy model.
#include <cstdio>

#include "core/fetcam.hpp"

using namespace fetcam;

int main() {
    constexpr std::size_t kRoutes = 256;
    constexpr std::size_t kQueries = 2000;

    // --- functional layer ---
    const auto table = apps::syntheticRoutingTable(kRoutes, /*seed=*/2021);
    const auto queries = apps::syntheticQueryStream(table, kQueries, /*hitFraction=*/0.85);

    std::size_t hits = 0, disagreements = 0;
    for (const auto q : queries) {
        const auto viaTcam = table.lookup(q);
        if (viaTcam != table.lookupLinear(q)) ++disagreements;
        hits += viaTcam.has_value();
    }
    std::printf("routing table: %zu prefixes, %zu queries, %.1f%% hit rate, "
                "%zu TCAM/linear disagreements\n\n",
                table.size(), queries.size(), 100.0 * hits / queries.size(),
                disagreements);

    // --- hardware layer: price a 256 x 32 TCAM on each design ---
    const auto tech = device::TechCard::cmos45();
    array::WorkloadProfile wl;
    wl.matchRowFraction = static_cast<double>(hits) / queries.size() / kRoutes;

    core::Table out({"design", "E/lookup", "fJ/bit", "latency", "lookups/s", "area (F^2)"});
    for (const auto& d : core::standardDesigns(apps::RoutingTable::kWordBits,
                                               static_cast<int>(kRoutes))) {
        const auto m = evaluateArray(tech, d.config, wl);
        out.addRow({d.name, core::engFormat(m.perSearch.total(), "J"),
                    core::numFormat(m.energyPerBitFj, 2),
                    core::engFormat(m.searchDelay, "s"),
                    core::engFormat(m.throughput, ""),
                    core::engFormat(m.areaF2, "")});
    }
    std::printf("%s\n", out.toAligned().c_str());

    const auto queryEnergy = [&](const core::DesignPoint& d) {
        return evaluateArray(tech, d.config, wl).perSearch.total();
    };
    const double eCmos = queryEnergy(core::standardDesigns(32, kRoutes)[0]);
    const double eProposed = queryEnergy(core::proposedDesign(32, kRoutes));
    std::printf("energy for the whole %zu-query stream: CMOS %s vs proposed %s (%.1fx)\n",
                queries.size(), core::engFormat(eCmos * kQueries, "J").c_str(),
                core::engFormat(eProposed * kQueries, "J").c_str(), eCmos / eProposed);
    return 0;
}
