// Monte Carlo variation analysis: sample per-device threshold-voltage and
// storage-state variations, re-simulate the word search, and collect the
// sense-margin distribution and search error rates.
#pragma once

#include <array>
#include <cstdint>

#include "array/word_sim.hpp"
#include "numeric/stats.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::array {

struct MonteCarloSpec {
    device::TechCard tech = device::TechCard::cmos45();
    ArrayConfig config;
    int trials = 100;
    std::uint64_t seed = 1;

    double sigmaVt = 0.030;     ///< per-device VT sigma [V] (local mismatch)
    /// Storage-state degradation sigma: FeFET |pnorm| and ReRAM filament w
    /// are reduced by |N(0, sigma)| from their nominal +/-1 / {0,1} values.
    double sigmaState = 0.05;
    int mismatchBits = 1;       ///< mismatch severity for the error analysis

    /// Strict: the first trial that raises a SimError aborts the sweep.
    /// Lenient: failed trials are counted and the sweep carries on.
    recover::FailurePolicy onFailure = recover::FailurePolicy::Lenient;

    /// Worker threads for the trial sweep (0 = numeric::defaultJobs()).
    /// Results are bit-identical for any jobs value: each trial's RNG is
    /// derived from (seed, trial index) alone and trial outcomes are merged
    /// in trial order after the parallel region.
    int jobs = 0;
};

struct MonteCarloResult {
    int trials = 0;           ///< trials attempted
    int completedTrials = 0;  ///< trials that produced both measurements
    numeric::RunningStats mlMatch;     ///< ML voltage at sense, match case
    numeric::RunningStats mlMismatch;  ///< ML voltage at sense, mismatch case
    int matchErrors = 0;      ///< matches read as mismatches (false negatives)
    int mismatchErrors = 0;   ///< mismatches read as matches (false positives)

    /// Lenient-mode failure accounting.
    int failedTrials = 0;
    std::array<int, recover::kNumSimErrorReasons> failureReasons{};

    double senseMarginMean() const { return mlMatch.mean() - mlMismatch.mean(); }
    /// Worst-case margin: closest approach of the two distributions observed.
    double senseMarginWorst() const { return mlMatch.min() - mlMismatch.max(); }
    double errorRate() const {
        return completedTrials == 0 ? 0.0
                                    : static_cast<double>(matchErrors + mismatchErrors) /
                                          (2.0 * static_cast<double>(completedTrials));
    }
};

/// Run the variation sweep. With a recover::FaultPlan installed, each trial
/// runs against a fresh clone of the plan (trial-relative solve ordinals, so
/// injection windows hit the same solves regardless of jobs or schedule); the
/// clones' counters are folded back into the installed plan in trial order.
MonteCarloResult runMonteCarlo(const MonteCarloSpec& spec);

}  // namespace fetcam::array
