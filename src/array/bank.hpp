// Bank-level model: a capacity too large for one array is split across
// parallel sub-arrays sharing a search bus, with a priority encoder reducing
// the per-row match flags to one address. This is the standard TCAM macro
// organization and what the application studies size against.
#pragma once

#include <string>

#include "array/energy_model.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::array {

/// Priority-encoder cost proxy, calibrated as a log-depth CMOS reduction
/// tree: ~0.02 fJ of switched capacitance per row flag per search and ~15 ps
/// per tree level.
struct PriorityEncoderModel {
    double energyPerRowFj = 0.02;
    double delayPerLevel = 15e-12;

    double energy(int rows) const { return rows * energyPerRowFj * 1e-15; }
    double delay(int rows) const;
};

struct BankMetrics {
    int subArrays = 0;
    int rowsPerArray = 0;
    int totalEntries = 0;       ///< capacity actually provisioned (rounded up)
    EnergyBreakdown perSearch;  ///< whole-bank energy per search [J]
    double encoderEnergy = 0.0; ///< priority-encoder share [J]
    double searchDelay = 0.0;   ///< array delay + encoder depth [s]
    double cycleTime = 0.0;
    double throughput = 0.0;
    double areaF2 = 0.0;
    bool functional = false;

    /// Lenient-mode degradation: the sub-array simulation raised a SimError
    /// and the metrics above are zeros rather than measurements.
    bool simFailed = false;
    std::string failureSummary;  ///< what() of the captured error

    double totalPerSearch() const { return perSearch.total() + encoderEnergy; }
};

/// Evaluate a bank holding at least `entries` words, split into sub-arrays of
/// `arrayConfig.rows` rows each (all searched in parallel). Runs one
/// evaluateArray for the sub-array and scales. With a Lenient policy a
/// SimError from the sub-array simulation is captured into the metrics
/// (simFailed/failureSummary) instead of propagating; invalid-geometry
/// errors always throw.
BankMetrics evaluateBank(const device::TechCard& tech, const ArrayConfig& arrayConfig,
                         int entries, const WorkloadProfile& workload = {},
                         const PriorityEncoderModel& encoder = {},
                         recover::FailurePolicy onFailure = recover::FailurePolicy::Strict);

}  // namespace fetcam::array
