// Bank-level model: a capacity too large for one array is split across
// parallel sub-arrays sharing a search bus, with a priority encoder reducing
// the per-row match flags to one address. This is the standard TCAM macro
// organization and what the application studies size against.
#pragma once

#include <cstdint>
#include <string>

#include "array/energy_model.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::array {

/// Priority-encoder cost proxy, calibrated as a log-depth CMOS reduction
/// tree: ~0.02 fJ of switched capacitance per row flag per search and ~15 ps
/// per tree level. Row counts are 64-bit throughout: capacity sweeps past
/// 2^31 cells are legitimate inputs and must not wrap.
struct PriorityEncoderModel {
    double energyPerRowFj = 0.02;
    double delayPerLevel = 15e-12;

    double energy(std::int64_t rows) const {
        return static_cast<double>(rows) * energyPerRowFj * 1e-15;
    }
    double delay(std::int64_t rows) const;

    /// Bank organization: each of `subArrays` sub-arrays reduces its own
    /// `rowsPerArray` match flags in a local encoder (all in parallel), then
    /// a merge stage reduces the per-sub-array results to one address. With
    /// one sub-array both collapse to the flat encoder, so banked and flat
    /// configurations of the same geometry price identically.
    double bankEnergy(std::int64_t subArrays, std::int64_t rowsPerArray) const;
    double bankDelay(std::int64_t subArrays, std::int64_t rowsPerArray) const;
};

struct BankMetrics {
    std::int64_t subArrays = 0;
    std::int64_t rowsPerArray = 0;
    std::int64_t totalEntries = 0;  ///< capacity actually provisioned (rounded up)
    EnergyBreakdown perSearch;  ///< whole-bank energy per search [J]
    double encoderEnergy = 0.0; ///< priority-encoder share [J]
    double searchDelay = 0.0;   ///< array delay + encoder depth [s]
    double cycleTime = 0.0;
    double throughput = 0.0;
    double areaF2 = 0.0;
    bool functional = false;

    /// Lenient-mode degradation: the sub-array simulation raised a SimError
    /// and the metrics above are zeros rather than measurements.
    bool simFailed = false;
    std::string failureSummary;  ///< what() of the captured error

    double totalPerSearch() const { return perSearch.total() + encoderEnergy; }
};

/// Evaluate a bank holding at least `entries` words, split into sub-arrays of
/// `arrayConfig.rows` rows each (all searched in parallel). Runs one
/// evaluateArray for the sub-array and scales. With a Lenient policy a
/// SimError from the sub-array simulation is captured into the metrics
/// (simFailed/failureSummary) instead of propagating; invalid-geometry
/// errors always throw — including entry counts large enough that the
/// rounded-up capacity would overflow 64-bit arithmetic, which raise a
/// structured InvalidSpec instead of wrapping silently. Calibration word
/// simulations go through `sim` when provided (see WordSimFn).
BankMetrics evaluateBank(const device::TechCard& tech, const ArrayConfig& arrayConfig,
                         std::int64_t entries, const WorkloadProfile& workload = {},
                         const PriorityEncoderModel& encoder = {},
                         recover::FailurePolicy onFailure = recover::FailurePolicy::Strict,
                         const WordSimFn& sim = {});

}  // namespace fetcam::array
