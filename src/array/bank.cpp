#include "array/bank.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace fetcam::array {

double PriorityEncoderModel::delay(int rows) const {
    if (rows <= 1) return delayPerLevel;
    return std::ceil(std::log2(static_cast<double>(rows))) * delayPerLevel;
}

BankMetrics evaluateBank(const device::TechCard& tech, const ArrayConfig& arrayConfig,
                         int entries, const WorkloadProfile& workload,
                         const PriorityEncoderModel& encoder,
                         recover::FailurePolicy onFailure) {
    if (entries < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "evaluateBank",
                                "entries must be >= 1");
    if (arrayConfig.rows < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "evaluateBank",
                                "bad array rows");

    const int n = (entries + arrayConfig.rows - 1) / arrayConfig.rows;

    // The per-row match probability dilutes across sub-arrays: at most one
    // sub-array holds the matching row, the others see pure-mismatch traffic.
    // Splitting matchRowFraction across n arrays models exactly that.
    WorkloadProfile wl = workload;
    wl.matchRowFraction = workload.matchRowFraction / n;
    ArrayMetrics sub;
    try {
        sub = evaluateArray(tech, arrayConfig, wl);
    } catch (const recover::SimError& e) {
        if (onFailure == recover::FailurePolicy::Strict ||
            e.reason() == recover::SimErrorReason::InvalidSpec)
            throw;
        if (obs::enabled()) {
            static obs::Counter& failed = obs::counter("array.bank.failed_evals");
            failed.add();
        }
        BankMetrics m;
        m.subArrays = n;
        m.rowsPerArray = arrayConfig.rows;
        m.totalEntries = n * arrayConfig.rows;
        m.simFailed = true;
        m.failureSummary = e.what();
        return m;
    }

    BankMetrics m;
    m.subArrays = n;
    m.rowsPerArray = arrayConfig.rows;
    m.totalEntries = n * arrayConfig.rows;
    m.perSearch.ml = sub.perSearch.ml * n;
    m.perSearch.sl = sub.perSearch.sl * n;
    m.perSearch.sa = sub.perSearch.sa * n;
    m.perSearch.staticRail = sub.perSearch.staticRail * n;
    m.encoderEnergy = encoder.energy(m.totalEntries);
    m.searchDelay = sub.searchDelay + encoder.delay(m.totalEntries);
    m.cycleTime = sub.cycleTime;
    m.throughput = 1.0 / m.cycleTime;
    m.areaF2 = sub.areaF2 * n;
    m.functional = sub.functional;
    return m;
}

}  // namespace fetcam::array
