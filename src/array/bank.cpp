#include "array/bank.hpp"

#include <cmath>
#include <stdexcept>

namespace fetcam::array {

double PriorityEncoderModel::delay(int rows) const {
    if (rows <= 1) return delayPerLevel;
    return std::ceil(std::log2(static_cast<double>(rows))) * delayPerLevel;
}

BankMetrics evaluateBank(const device::TechCard& tech, const ArrayConfig& arrayConfig,
                         int entries, const WorkloadProfile& workload,
                         const PriorityEncoderModel& encoder) {
    if (entries < 1) throw std::invalid_argument("evaluateBank: entries must be >= 1");
    if (arrayConfig.rows < 1) throw std::invalid_argument("evaluateBank: bad array rows");

    const int n = (entries + arrayConfig.rows - 1) / arrayConfig.rows;

    // The per-row match probability dilutes across sub-arrays: at most one
    // sub-array holds the matching row, the others see pure-mismatch traffic.
    // Splitting matchRowFraction across n arrays models exactly that.
    WorkloadProfile wl = workload;
    wl.matchRowFraction = workload.matchRowFraction / n;
    const auto sub = evaluateArray(tech, arrayConfig, wl);

    BankMetrics m;
    m.subArrays = n;
    m.rowsPerArray = arrayConfig.rows;
    m.totalEntries = n * arrayConfig.rows;
    m.perSearch.ml = sub.perSearch.ml * n;
    m.perSearch.sl = sub.perSearch.sl * n;
    m.perSearch.sa = sub.perSearch.sa * n;
    m.perSearch.staticRail = sub.perSearch.staticRail * n;
    m.encoderEnergy = encoder.energy(m.totalEntries);
    m.searchDelay = sub.searchDelay + encoder.delay(m.totalEntries);
    m.cycleTime = sub.cycleTime;
    m.throughput = 1.0 / m.cycleTime;
    m.areaF2 = sub.areaF2 * n;
    m.functional = sub.functional;
    return m;
}

}  // namespace fetcam::array
