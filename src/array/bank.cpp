#include "array/bank.hpp"

#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace fetcam::array {

double PriorityEncoderModel::delay(std::int64_t rows) const {
    if (rows <= 1) return delayPerLevel;
    return std::ceil(std::log2(static_cast<double>(rows))) * delayPerLevel;
}

double PriorityEncoderModel::bankEnergy(std::int64_t subArrays, std::int64_t rowsPerArray) const {
    const double local = static_cast<double>(subArrays) * energy(rowsPerArray);
    return subArrays > 1 ? local + energy(subArrays) : local;
}

double PriorityEncoderModel::bankDelay(std::int64_t subArrays, std::int64_t rowsPerArray) const {
    // Local encoders run in parallel (one tree depth), then the merge stage
    // adds its own log-depth tree over the sub-array results.
    return subArrays > 1 ? delay(rowsPerArray) + delay(subArrays) : delay(rowsPerArray);
}

BankMetrics evaluateBank(const device::TechCard& tech, const ArrayConfig& arrayConfig,
                         std::int64_t entries, const WorkloadProfile& workload,
                         const PriorityEncoderModel& encoder,
                         recover::FailurePolicy onFailure, const WordSimFn& sim) {
    if (entries < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "evaluateBank",
                                "entries must be >= 1");
    if (arrayConfig.rows < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "evaluateBank",
                                "bad array rows");
    const auto rows = static_cast<std::int64_t>(arrayConfig.rows);
    // Rounding entries up to whole sub-arrays computes entries + rows - 1;
    // reject entry counts where that (or the provisioned n * rows) would
    // exceed int64 range rather than wrapping.
    if (entries > std::numeric_limits<std::int64_t>::max() - (rows - 1))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "evaluateBank",
                                "entries too large: provisioned capacity would overflow");

    const std::int64_t n = (entries + rows - 1) / rows;

    // The per-row match probability dilutes across sub-arrays: at most one
    // sub-array holds the matching row, the others see pure-mismatch traffic.
    // Splitting matchRowFraction across n arrays models exactly that.
    WorkloadProfile wl = workload;
    wl.matchRowFraction = workload.matchRowFraction / static_cast<double>(n);
    ArrayMetrics sub;
    try {
        sub = evaluateArray(tech, arrayConfig, wl, sim);
    } catch (const recover::SimError& e) {
        if (onFailure == recover::FailurePolicy::Strict ||
            e.reason() == recover::SimErrorReason::InvalidSpec)
            throw;
        if (obs::enabled()) {
            static obs::Counter& failed = obs::counter("array.bank.failed_evals");
            failed.add();
        }
        BankMetrics m;
        m.subArrays = n;
        m.rowsPerArray = rows;
        m.totalEntries = n * rows;
        m.simFailed = true;
        m.failureSummary = e.what();
        return m;
    }

    BankMetrics m;
    m.subArrays = n;
    m.rowsPerArray = rows;
    m.totalEntries = n * rows;
    const auto scale = static_cast<double>(n);
    m.perSearch.ml = sub.perSearch.ml * scale;
    m.perSearch.sl = sub.perSearch.sl * scale;
    m.perSearch.sa = sub.perSearch.sa * scale;
    m.perSearch.staticRail = sub.perSearch.staticRail * scale;
    // Two-level priority encoding: per-sub-array encoders plus a merge
    // stage. Charging one flat encoder on totalEntries both mispriced the
    // delay (a single log2(n*rows) tree instead of parallel local trees +
    // merge) and made a banked capacity inconsistent with the same capacity
    // evaluated flat.
    m.encoderEnergy = encoder.bankEnergy(n, rows);
    m.searchDelay = sub.searchDelay + encoder.bankDelay(n, rows);
    m.cycleTime = sub.cycleTime;
    m.throughput = 1.0 / m.cycleTime;
    m.areaF2 = sub.areaF2 * n;
    m.functional = sub.functional;
    return m;
}

}  // namespace fetcam::array
