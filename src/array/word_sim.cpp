#include "array/word_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "device/fefet.hpp"
#include "device/mosfet.hpp"
#include "device/passives.hpp"
#include "device/sources.hpp"
#include "numeric/interp.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::array {

namespace {

using namespace fetcam::device;
using tcam::CellPorts;
using tcam::CellVariation;

/// Nodes and sources a word build exposes to the measurement code.
struct WordNetlist {
    spice::NodeId ml = 0;
    spice::NodeId saOut = 0;
    VoltageSource* vPre = nullptr;
    VoltageSource* vPreGate = nullptr;
    VoltageSource* vSa = nullptr;
    VoltageSource* vSaEn = nullptr;
    VoltageSource* vStore = nullptr;
    std::vector<VoltageSource*> slSources;
    std::vector<std::pair<spice::NodeId, double>> initialConditions;
};

SourceWave slWave(bool asserted, double vHigh, const SearchTiming& t) {
    if (!asserted) return SourceWave::dc(0.0);
    return SourceWave::pulse(0.0, vHigh, t.evalStart(), t.slEdge, t.slEdge,
                             t.tEval - 2.0 * t.slEdge);
}

/// A driven line: ideal source behind a series driver resistance, so the
/// driver dissipates the C*V^2 its load actually costs.
VoltageSource& addDrivenNode(spice::Circuit& c, const std::string& name, spice::NodeId node,
                             SourceWave wave, double rDriver,
                             std::vector<std::pair<spice::NodeId, double>>& ics) {
    const auto raw = c.node(name + "_drv");
    auto& src = c.add<VoltageSource>("V" + name, c, raw, spice::kGround, wave);
    c.add<Resistor>("R" + name, raw, node, rDriver);
    const double v0 = src.valueAt(0.0);
    ics.push_back({raw, v0});
    ics.push_back({node, v0});
    return src;
}

/// Build the complete word: cells, searchline drivers, precharger, sense amp.
WordNetlist buildWord(spice::Circuit& c, const WordSimOptions& o) {
    const auto& tech = o.tech;
    const auto& cfg = o.config;
    const auto& t = cfg.timing;
    const int bits = static_cast<int>(o.stored.size());
    const double vdd = tech.vdd;
    const double vPre = cfg.effectiveVPrecharge(tech);
    const double vSearch = cfg.effectiveVSearch(tech);

    WordNetlist w;
    w.ml = c.node("ml");
    const auto nVpre = c.node("vpre");
    const auto nVsa = c.node("vsa");
    const auto nStore = c.node("vstore");

    w.vPre = &c.add<VoltageSource>("Vpre", c, nVpre, spice::kGround, SourceWave::dc(vPre));
    w.vSa = &c.add<VoltageSource>("Vsa", c, nVsa, spice::kGround, SourceWave::dc(vdd));
    w.initialConditions.push_back({nVpre, vPre});
    w.initialConditions.push_back({nVsa, vdd});
    w.initialConditions.push_back({w.ml, vPre});  // steady state: already precharged

    if (cfg.cell == tcam::CellKind::Cmos16T) {
        w.vStore = &c.add<VoltageSource>("Vstore", c, nStore, spice::kGround,
                                         SourceWave::dc(vdd));
        w.initialConditions.push_back({nStore, vdd});
    }

    // Matchline wire parasitics: lumped single node by default, or a
    // distributed RC ladder with one segment per cell (sense end at w.ml).
    const bool nand = tcam::isNandKind(cfg.cell);
    std::vector<spice::NodeId> mlSegment(static_cast<std::size_t>(bits), w.ml);
    if (cfg.distributedMl && !nand) {
        spice::NodeId prev = w.ml;
        for (int i = 0; i < bits; ++i) {
            const auto seg = i == 0 ? w.ml : c.node("ml_seg" + std::to_string(i));
            if (i > 0) {
                c.add<Resistor>("Rml" + std::to_string(i), prev, seg,
                                tech.mlWireResPerCell);
                w.initialConditions.push_back({seg, vPre});
            }
            c.add<Capacitor>("Cml" + std::to_string(i), seg, spice::kGround,
                             tech.mlWireCapPerCell);
            mlSegment[static_cast<std::size_t>(i)] = seg;
            prev = seg;
        }
    } else {
        c.add<Capacitor>("Cml", w.ml, spice::kGround, bits * tech.mlWireCapPerCell);
    }

    // --- cells + searchline drivers ---
    spice::NodeId chainPrev = w.ml;  // NAND: cells chain from the ML downwards
    for (int i = 0; i < bits; ++i) {
        const auto sl = c.node("sl" + std::to_string(i));
        const auto slb = c.node("slb" + std::to_string(i));
        c.add<Capacitor>("Csl" + std::to_string(i), sl, spice::kGround,
                         tech.slWireCapPerCell);
        c.add<Capacitor>("Cslb" + std::to_string(i), slb, spice::kGround,
                         tech.slWireCapPerCell);
        const auto key = o.key[static_cast<std::size_t>(i)];
        const auto drive = nand ? tcam::nandSearchDrive(key) : tcam::searchDrive(key);
        w.slSources.push_back(&addDrivenNode(c, "sl" + std::to_string(i), sl,
                                             slWave(drive.sl, vSearch, t), tech.slDriverRes,
                                             w.initialConditions));
        w.slSources.push_back(&addDrivenNode(c, "slb" + std::to_string(i), slb,
                                             slWave(drive.slb, vSearch, t), tech.slDriverRes,
                                             w.initialConditions));
        const CellVariation* var =
            o.variations.empty() ? nullptr : &o.variations[static_cast<std::size_t>(i)];
        if (nand) {
            const auto chainNext = c.internalNode("chain");
            const tcam::NandCellPorts ports{.chainIn = chainPrev, .chainOut = chainNext,
                                            .sl = sl, .slb = slb};
            buildNandSearchCell(c, tech, o.stored[static_cast<std::size_t>(i)], ports,
                                "c" + std::to_string(i), var);
            chainPrev = chainNext;
        } else {
            const CellPorts ports{.ml = mlSegment[static_cast<std::size_t>(i)], .sl = sl,
                                  .slb = slb, .storeVdd = nStore};
            const auto built = buildSearchCell(c, tech, cfg.cell,
                                               o.stored[static_cast<std::size_t>(i)], ports,
                                               "c" + std::to_string(i), var);
            // Nodes resistively tied to the ML sit at the precharge level in
            // steady state (searchlines idle between cycles).
            for (const auto node : built.mlCoupledNodes)
                w.initialConditions.push_back({node, vPre});
        }
    }
    if (nand) {
        // Evaluation footer: the chain can only discharge during the eval
        // window, so precharge never fights a matching (conducting) chain.
        const auto evalEn = c.node("eval_en");
        addDrivenNode(c, "eval_en", evalEn,
                      SourceWave::pulse(0.0, vdd, t.evalStart(), 30e-12, 30e-12, t.tEval),
                      tech.ctrlDriverRes, w.initialConditions);
        c.add<Mosfet>("Meval", evalEn, chainPrev, spice::kGround, tech.sizedNmos(4.0));
    }

    // --- precharger ---
    const auto preGate = c.node("pre_gate");
    if (cfg.sense == SenseScheme::FullSwing) {
        // PMOS precharger, gate active-low during the precharge window.
        w.vPreGate = &addDrivenNode(c, "pre_gate", preGate,
                                    SourceWave::pulse(vdd, 0.0, t.prechargeStart(), 50e-12,
                                                      50e-12, t.tPrecharge - 100e-12),
                                    tech.ctrlDriverRes, w.initialConditions);
        c.add<Mosfet>("Mpre", preGate, w.ml, nVpre, tech.sizedPmos(4.0));
    } else {
        // NMOS precharger to the reduced level, gate active-high.
        w.vPreGate = &addDrivenNode(c, "pre_gate", preGate,
                                    SourceWave::pulse(0.0, vdd, t.prechargeStart(), 50e-12,
                                                      50e-12, t.tPrecharge - 100e-12),
                                    tech.ctrlDriverRes, w.initialConditions);
        c.add<Mosfet>("Mpre", preGate, nVpre, w.ml, tech.sizedNmos(4.0));
    }

    // --- sense amplifier ---
    const auto saMid = c.node("sa_mid");
    w.saOut = c.node("sa_out");
    if (cfg.sense == SenseScheme::FullSwing) {
        // Skewed inverter (strong NMOS -> low trip) + restoring inverter.
        c.add<Mosfet>("Msa_p", w.ml, saMid, nVsa, tech.sizedPmos(1.0));
        c.add<Mosfet>("Msa_n", w.ml, saMid, spice::kGround, tech.sizedNmos(4.0));
        w.initialConditions.push_back({saMid, 0.0});
        if (cfg.mlKeeper && !nand) {
            // Weak feedback keeper: on while the sense stage reads "match".
            // (Meaningless on NAND chains, where a discharging ML IS the
            // match signal — silently ignored there.)
            c.add<Mosfet>("Mkeep", saMid, w.ml, nVsa, tech.sizedPmos(0.5));
        }
    } else {
        // Clock-gated ratioed PMOS-input amplifier: header PMOS enables the
        // pull-up path only during the strobe window; the NMOS load keeps
        // sa_mid low (default "match") when disabled. Sizing puts the trip
        // current between the amp PMOS current at ML = Vpre (match) and at
        // ML ~ 0 (mismatch).
        const auto saEn = c.node("sa_enb");
        const auto saSrc = c.node("sa_src");
        w.vSaEn = &addDrivenNode(
            c, "sa_enb", saEn,
            SourceWave::pulse(vdd, 0.0, t.evalStart() + t.saStrobeDelay, 30e-12, 30e-12,
                              t.saStrobeLen),
            tech.ctrlDriverRes, w.initialConditions);
        c.add<Mosfet>("Msa_hdr", saEn, saSrc, nVsa, tech.sizedPmos(2.0));
        c.add<Mosfet>("Msa_p", w.ml, saMid, saSrc, tech.sizedPmos(1.0));
        c.add<Mosfet>("Msa_load", nVsa, saMid, spice::kGround, tech.sizedNmos(0.25));
        w.initialConditions.push_back({saMid, 0.0});
    }
    // Restoring inverter: saOut high = match.
    c.add<Mosfet>("Msa2_p", saMid, w.saOut, nVsa, tech.sizedPmos(2.0));
    c.add<Mosfet>("Msa2_n", saMid, w.saOut, spice::kGround, tech.sizedNmos(1.0));
    c.add<Capacitor>("Cout", w.saOut, spice::kGround, 0.5e-15);
    w.initialConditions.push_back({w.saOut, vdd});
    return w;
}

}  // namespace

WordSimResult simulateWordSearch(const WordSimOptions& o) {
    if (o.stored.size() != o.key.size())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "simulateWordSearch",
                                "stored/key width mismatch");
    if (o.stored.empty())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "simulateWordSearch",
                                "empty word");
    if (!o.variations.empty() && o.variations.size() != o.stored.size())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "simulateWordSearch",
                                "variations width mismatch");

    obs::SpanGuard span("array.word_search",
                        {{"bits", static_cast<int>(o.stored.size())},
                         {"cell", tcam::isNandKind(o.config.cell) ? "nand" : "nor"}});
    const bool obsOn = obs::enabled();
    double wall = 0.0;
    if (obsOn) wall = obs::monotonicSeconds();

    spice::Circuit c;
    const WordNetlist w = buildWord(c, o);
    const auto& t = o.config.timing;

    spice::TransientSpec spec;
    spec.tstop = t.cycle();
    spec.dtMax = 10e-12;
    spec.initialConditions = w.initialConditions;
    const auto tr = runTransient(c, spec);

    WordSimResult r;
    r.expectedMatch = o.stored.matches(o.key);
    r.vPrecharge = o.config.effectiveVPrecharge(o.tech);

    const double vdd = o.tech.vdd;
    // Decision time: late in the evaluation window for the continuous
    // full-swing sense (just before the searchlines release, so their falling
    // edge doesn't couple into the reading); end of the strobe window for the
    // clocked low-swing sense.
    const double senseTime = o.config.sense == SenseScheme::FullSwing
                                 ? t.evalStart() + t.tEval - 2.0 * t.slEdge
                                 : t.strobeEnd();
    // NOR arrays: a discharged ML (saOut low) means mismatch. NAND chains
    // invert the polarity: the ML discharges only on a full match.
    const bool saOutHigh = tr.waveforms.nodeAt(w.saOut, senseTime) > vdd / 2.0;
    r.matchDetected = tcam::isNandKind(o.config.cell) ? !saOutHigh : saOutHigh;
    r.mlAtSense = tr.waveforms.nodeAt(w.ml, senseTime);

    // Mismatch-detect delay: saOut falling through VDD/2 after eval start.
    const auto times = tr.waveforms.time();
    const auto saOutWave = tr.waveforms.node(w.saOut);
    if (const auto cross = numeric::firstCrossing(times, saOutWave, vdd / 2.0,
                                                  /*rising=*/false, t.evalStart())) {
        if (*cross <= senseTime) r.detectDelay = *cross - t.evalStart();
    }

    // Lowest ML voltage during evaluation.
    const auto mlWave = tr.waveforms.node(w.ml);
    double mlMin = r.vPrecharge;
    for (std::size_t i = 0; i < times.size(); ++i) {
        if (times[i] < t.evalStart() || times[i] > t.evalEnd()) continue;
        mlMin = std::min(mlMin, mlWave[i]);
    }
    r.mlMin = mlMin;

    // Per-search supply energies.
    r.energyMl = w.vPre->deliveredEnergy() + w.vPreGate->deliveredEnergy();
    for (const auto* src : w.slSources) r.energySl += src->deliveredEnergy();
    r.energySa = w.vSa->deliveredEnergy();
    if (w.vSaEn) r.energySa += w.vSaEn->deliveredEnergy();
    if (w.vStore) r.energyStatic = w.vStore->deliveredEnergy();
    r.energyTotal = r.energyMl + r.energySl + r.energySa + r.energyStatic;

    if (obsOn) {
        static obs::Counter& searches = obs::counter("array.word_search.count");
        static obs::Histogram& seconds = obs::histogram(
            "array.word_search.seconds", obs::Histogram::exponentialBounds(1e-4, 100.0));
        searches.add();
        seconds.observe(obs::monotonicSeconds() - wall);
        // Per-supply energy deltas for the trace's energy ranking.
        auto& sink = obs::TraceSink::global();
        sink.event("energy.device", {{"device", "matchline"}, {"energy", r.energyMl}});
        sink.event("energy.device", {{"device", "searchlines"}, {"energy", r.energySl}});
        sink.event("energy.device", {{"device", "sense_amp"}, {"energy", r.energySa}});
        if (r.energyStatic != 0.0)
            sink.event("energy.device", {{"device", "storage"}, {"energy", r.energyStatic}});
        span.add({"match", r.matchDetected});
        span.add({"energyTotal", r.energyTotal});
        span.add({"steps", tr.acceptedSteps});
        span.add({"rejected", tr.rejectedSteps});
    }

    if (o.recordWaveforms) {
        r.waveforms = tr.waveforms;
        r.mlNode = w.ml;
        r.saOutNode = w.saOut;
    }
    return r;
}

}  // namespace fetcam::array
