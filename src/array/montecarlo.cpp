#include "array/montecarlo.hpp"

#include <algorithm>
#include <cmath>

#include "array/energy_model.hpp"
#include "obs/obs.hpp"

namespace fetcam::array {

namespace {

/// Sample one cell's perturbations. Storage-state overrides are expressed in
/// the cell technology's native state variable.
tcam::CellVariation sampleCell(numeric::Rng& rng, const MonteCarloSpec& spec,
                               tcam::Trit stored, tcam::CellKind kind) {
    tcam::CellVariation v;
    v.vtOffsetA = rng.normal(0.0, spec.sigmaVt);
    v.vtOffsetB = rng.normal(0.0, spec.sigmaVt);
    if (spec.sigmaState <= 0.0) return v;

    const auto enc =
        tcam::isNandKind(kind) ? tcam::nandEncodeTrit(stored) : tcam::encodeTrit(stored);
    const double degA = std::abs(rng.normal(0.0, spec.sigmaState));
    const double degB = std::abs(rng.normal(0.0, spec.sigmaState));
    switch (kind) {
        case tcam::CellKind::FeFet2Nand:
        case tcam::CellKind::FeFet2:
            // Polarization magnitude loss toward 0 (imprint / partial switch).
            v.stateA = enc.aEnabled ? 1.0 - degA : -1.0 + degA;
            v.stateB = enc.bEnabled ? 1.0 - degB : -1.0 + degB;
            break;
        case tcam::CellKind::ReRam2T2R:
            // Filament variation: LRS weakens, HRS strengthens (leakier).
            v.stateA = enc.aEnabled ? 1.0 - degA : degA;
            v.stateB = enc.bEnabled ? 1.0 - degB : degB;
            break;
        case tcam::CellKind::Cmos16T:
            break;  // SRAM state is digital; only VT varies
    }
    v.stateA = std::clamp(v.stateA, -1.0, 1.0);
    v.stateB = std::clamp(v.stateB, -1.0, 1.0);
    return v;
}

}  // namespace

MonteCarloResult runMonteCarlo(const MonteCarloSpec& spec) {
    obs::SpanGuard span("array.montecarlo",
                        {{"trials", spec.trials}, {"bits", spec.config.wordBits}});
    const bool obsOn = obs::enabled();

    MonteCarloResult result;
    result.trials = spec.trials;
    numeric::Rng rng(spec.seed);

    const auto stored = calibrationWord(spec.config.wordBits,
                                        /*seed=*/spec.seed ^ 0x5bd1e995u);
    const auto matchKey = stored;
    const auto mismatchKey = keyWithMismatches(stored, spec.mismatchBits);

    for (int trial = 0; trial < spec.trials; ++trial) {
        double trialWall = 0.0;
        if (obsOn) trialWall = obs::monotonicSeconds();
        auto trialRng = rng.split();
        std::vector<tcam::CellVariation> vars;
        vars.reserve(stored.size());
        for (std::size_t i = 0; i < stored.size(); ++i)
            vars.push_back(sampleCell(trialRng, spec, stored[i], spec.config.cell));

        WordSimOptions o;
        o.tech = spec.tech;
        o.config = spec.config;
        o.stored = stored;
        o.variations = vars;

        WordSimResult match, mism;
        try {
            o.key = matchKey;
            match = simulateWordSearch(o);
            o.key = mismatchKey;
            mism = simulateWordSearch(o);
        } catch (const recover::SimError& e) {
            if (spec.onFailure == recover::FailurePolicy::Strict) throw;
            ++result.failedTrials;
            ++result.failureReasons[static_cast<std::size_t>(e.reason())];
            if (obsOn) {
                static obs::Counter& failed = obs::counter("array.mc.failed_trials");
                failed.add();
                obs::TraceSink::global().event(
                    "mc.trial_failed",
                    {{"trial", trial}, {"reason", recover::reasonName(e.reason())}});
            }
            continue;
        }
        ++result.completedTrials;
        result.mlMatch.add(match.mlAtSense);
        if (!match.matchDetected) ++result.matchErrors;
        result.mlMismatch.add(mism.mlAtSense);
        if (mism.matchDetected) ++result.mismatchErrors;

        if (obsOn) {
            static obs::Counter& trials = obs::counter("array.mc.trials");
            static obs::Histogram& seconds = obs::histogram(
                "array.mc.trial.seconds", obs::Histogram::exponentialBounds(1e-4, 100.0));
            trials.add();
            seconds.observe(obs::monotonicSeconds() - trialWall);
            obs::TraceSink::global().event("mc.trial",
                                           {{"trial", trial},
                                            {"mlMatch", match.mlAtSense},
                                            {"mlMismatch", mism.mlAtSense},
                                            {"errors", result.matchErrors +
                                                           result.mismatchErrors}});
        }
    }
    return result;
}

}  // namespace fetcam::array
