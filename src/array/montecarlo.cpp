#include "array/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "array/energy_model.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/fault_injection.hpp"

namespace fetcam::array {

namespace {

/// Sample one cell's perturbations. Storage-state overrides are expressed in
/// the cell technology's native state variable.
tcam::CellVariation sampleCell(numeric::Rng& rng, const MonteCarloSpec& spec,
                               tcam::Trit stored, tcam::CellKind kind) {
    tcam::CellVariation v;
    v.vtOffsetA = rng.normal(0.0, spec.sigmaVt);
    v.vtOffsetB = rng.normal(0.0, spec.sigmaVt);
    if (spec.sigmaState <= 0.0) return v;

    const auto enc =
        tcam::isNandKind(kind) ? tcam::nandEncodeTrit(stored) : tcam::encodeTrit(stored);
    const double degA = std::abs(rng.normal(0.0, spec.sigmaState));
    const double degB = std::abs(rng.normal(0.0, spec.sigmaState));
    switch (kind) {
        case tcam::CellKind::FeFet2Nand:
        case tcam::CellKind::FeFet2:
            // Polarization magnitude loss toward 0 (imprint / partial switch).
            v.stateA = enc.aEnabled ? 1.0 - degA : -1.0 + degA;
            v.stateB = enc.bEnabled ? 1.0 - degB : -1.0 + degB;
            break;
        case tcam::CellKind::ReRam2T2R:
            // Filament variation: LRS weakens, HRS strengthens (leakier).
            v.stateA = enc.aEnabled ? 1.0 - degA : degA;
            v.stateB = enc.bEnabled ? 1.0 - degB : degB;
            break;
        case tcam::CellKind::Cmos16T:
            break;  // SRAM state is digital; only VT varies
    }
    v.stateA = std::clamp(v.stateA, -1.0, 1.0);
    v.stateB = std::clamp(v.stateB, -1.0, 1.0);
    return v;
}

}  // namespace

MonteCarloResult runMonteCarlo(const MonteCarloSpec& spec) {
    obs::SpanGuard span("array.montecarlo", {{"trials", spec.trials},
                                             {"bits", spec.config.wordBits},
                                             {"jobs", numeric::resolveJobs(spec.jobs)}});
    const bool obsOn = obs::enabled();

    MonteCarloResult result;
    result.trials = spec.trials;
    if (spec.trials <= 0) return result;

    const auto stored = calibrationWord(spec.config.wordBits,
                                        /*seed=*/spec.seed ^ 0x5bd1e995u);
    const auto matchKey = stored;
    const auto mismatchKey = keyWithMismatches(stored, spec.mismatchBits);

    // The caller's plan stays on the calling thread; workers run clones.
    recover::FaultPlan* parentPlan = recover::FaultPlan::active();

    struct TrialOutcome {
        bool failed = false;
        recover::SimErrorReason reason = recover::SimErrorReason::InvalidSpec;
        double mlMatch = 0.0;
        double mlMismatch = 0.0;
        bool matchDetected = false;
        bool mismatchDetected = false;
        double wallSeconds = 0.0;
        long long faultSolves = 0;
        long long faultInjections = 0;
    };
    std::vector<TrialOutcome> outcomes(static_cast<std::size_t>(spec.trials));

    // Trials are schedule-independent: trial RNG from (seed, trial) alone,
    // outputs into per-trial slots, merged in trial order below. In strict
    // mode the worker rethrows and parallelFor surfaces the lowest-index
    // failure — the same trial a sequential sweep would have died on.
    numeric::parallelFor(spec.jobs, spec.trials, [&](int trial) {
        TrialOutcome& out = outcomes[static_cast<std::size_t>(trial)];
        const double t0 = obsOn ? obs::monotonicSeconds() : 0.0;

        auto trialRng = numeric::Rng::forStream(spec.seed, static_cast<std::uint64_t>(trial));
        std::vector<tcam::CellVariation> vars;
        vars.reserve(stored.size());
        for (std::size_t i = 0; i < stored.size(); ++i)
            vars.push_back(sampleCell(trialRng, spec, stored[i], spec.config.cell));

        // Per-trial fault-plan clone: fresh solve ordinals every trial, on
        // this worker's thread, so injections are deterministic per trial.
        std::optional<recover::FaultPlan> plan;
        std::optional<recover::ScopedFaultPlan> guard;
        if (parentPlan) {
            plan.emplace(parentPlan->specs());
            guard.emplace(*plan);
        }

        WordSimOptions o;
        o.tech = spec.tech;
        o.config = spec.config;
        o.stored = stored;
        o.variations = vars;

        try {
            o.key = matchKey;
            const WordSimResult match = simulateWordSearch(o);
            o.key = mismatchKey;
            const WordSimResult mism = simulateWordSearch(o);
            out.mlMatch = match.mlAtSense;
            out.matchDetected = match.matchDetected;
            out.mlMismatch = mism.mlAtSense;
            out.mismatchDetected = mism.matchDetected;
        } catch (const recover::SimError& e) {
            if (spec.onFailure == recover::FailurePolicy::Strict) throw;
            out.failed = true;
            out.reason = e.reason();
        }
        if (plan) {
            out.faultSolves = plan->solvesSeen();
            out.faultInjections = plan->injectionCount();
        }
        if (obsOn) out.wallSeconds = obs::monotonicSeconds() - t0;
    });

    // Merge in trial order: RunningStats accumulation and failure counts see
    // the exact sequence a serial sweep produces, whatever the schedule was.
    for (int trial = 0; trial < spec.trials; ++trial) {
        const TrialOutcome& out = outcomes[static_cast<std::size_t>(trial)];
        if (parentPlan) parentPlan->absorb(out.faultSolves, out.faultInjections);
        if (out.failed) {
            ++result.failedTrials;
            ++result.failureReasons[static_cast<std::size_t>(out.reason)];
            if (obsOn) {
                static obs::Counter& failed = obs::counter("array.mc.failed_trials");
                failed.add();
                obs::TraceSink::global().event(
                    "mc.trial_failed",
                    {{"trial", trial}, {"reason", recover::reasonName(out.reason)}});
            }
            continue;
        }
        ++result.completedTrials;
        result.mlMatch.add(out.mlMatch);
        if (!out.matchDetected) ++result.matchErrors;
        result.mlMismatch.add(out.mlMismatch);
        if (out.mismatchDetected) ++result.mismatchErrors;

        if (obsOn) {
            static obs::Counter& trials = obs::counter("array.mc.trials");
            static obs::Histogram& seconds = obs::histogram(
                "array.mc.trial.seconds", obs::Histogram::exponentialBounds(1e-4, 100.0));
            trials.add();
            seconds.observe(out.wallSeconds);
            obs::TraceSink::global().event("mc.trial",
                                           {{"trial", trial},
                                            {"mlMatch", out.mlMatch},
                                            {"mlMismatch", out.mlMismatch},
                                            {"errors", result.matchErrors +
                                                           result.mismatchErrors}});
        }
    }
    return result;
}

}  // namespace fetcam::array
