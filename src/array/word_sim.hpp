// Word-level search simulation: one TCAM word (matchline with N cells,
// searchline drivers, precharger, sense amplifier) simulated through a full
// steady-state search cycle [evaluate -> release -> precharge], starting from
// a precharged matchline. Supply energies over the cycle are the per-search
// energies the array model scales up.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "array/config.hpp"
#include "spice/transient.hpp"
#include "tcam/cell_builder.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::array {

struct WordSimOptions {
    device::TechCard tech = device::TechCard::cmos45();
    ArrayConfig config;
    tcam::TernaryWord stored;
    tcam::TernaryWord key;
    /// Optional per-cell Monte Carlo perturbations (size == wordBits).
    std::vector<tcam::CellVariation> variations;
    /// Keep full waveforms in the result (benches plot from them).
    bool recordWaveforms = false;
};

struct WordSimResult {
    // --- functional outcome ---
    bool expectedMatch = false;   ///< golden-model verdict
    bool matchDetected = false;   ///< sense-amp verdict at end of evaluation
    bool correct() const { return expectedMatch == matchDetected; }

    // --- timing ---
    /// Mismatch detection delay: sense output crossing VDD/2 after the start
    /// of evaluation. Empty when the sense amp never fired (i.e. a match).
    std::optional<double> detectDelay;

    // --- matchline analog detail ---
    double mlAtSense = 0.0;   ///< ML voltage at the end of evaluation [V]
    double mlMin = 0.0;       ///< lowest ML voltage during evaluation [V]
    double vPrecharge = 0.0;  ///< precharge level used [V]

    // --- per-search energies [J] ---
    double energyMl = 0.0;      ///< precharge supply
    double energySl = 0.0;      ///< all searchline drivers
    double energySa = 0.0;      ///< sense-amp supply
    double energyStatic = 0.0;  ///< storage rail (SRAM cells; 0 otherwise)
    double energyTotal = 0.0;   ///< sum of the above

    // --- optional waveforms ---
    spice::Waveforms waveforms;
    spice::NodeId mlNode = 0;
    spice::NodeId saOutNode = 0;
    std::vector<double> time() const { return waveforms.time(); }
};

/// Simulate one word search cycle. Throws std::invalid_argument on
/// inconsistent widths.
WordSimResult simulateWordSearch(const WordSimOptions& options);

}  // namespace fetcam::array
