// Array-level energy/delay model.
//
// Methodology (standard for TCAM circuit papers): simulate one word at
// circuit level for the match and worst-case (1-bit) mismatch cases, then
// scale to the full array analytically:
//
//   E_search = rows * E_SL(word)                         (searchline drive)
//            + nMatch * [E_ML + E_SA](match word)        (matching rows)
//            + (rows - nMatch) * [E_ML + E_SA](mismatch) (discharged rows)
//
// Matchline segmentation and selective precharge reshape the sum: later
// stages only evaluate for rows whose earlier stage matched, with stage
// activation probabilities derived from the workload's bit-match statistics.
#pragma once

#include <functional>

#include "array/word_sim.hpp"

namespace fetcam::array {

/// Pluggable word-simulation provider. The analytic array/bank models run
/// every calibration circuit simulation through this hook, so a caller can
/// substitute a memoizing provider (serve::CharacterizationCache) for the
/// real solver; an empty function means simulateWordSearch. Providers must
/// be deterministic: same options, bit-identical result.
using WordSimFn = std::function<WordSimResult(const WordSimOptions&)>;

/// Workload statistics the analytic scaling needs.
struct WorkloadProfile {
    /// Fraction of rows fully matching a query (TCAMs are built so ~1 row hits).
    double matchRowFraction = 1.0 / 64.0;
    /// Probability that one definite cell matches a random key bit; 0.5 for
    /// uniform random data. Drives segment-activation probabilities.
    double bitMatchProbability = 0.5;
};

struct EnergyBreakdown {
    double ml = 0.0;       ///< matchline precharge [J]
    double sl = 0.0;       ///< searchline drivers [J]
    double sa = 0.0;       ///< sense amplifiers [J]
    double staticRail = 0.0;
    double total() const { return ml + sl + sa + staticRail; }
};

struct ArrayMetrics {
    EnergyBreakdown perSearch;        ///< whole-array energy per search [J]
    double energyPerBitFj = 0.0;      ///< fJ / bit / search (the headline metric)
    double searchDelay = 0.0;         ///< match-decision latency [s]
    double cycleTime = 0.0;           ///< search repetition period [s]
    double throughput = 0.0;          ///< searches per second
    double areaF2 = 0.0;              ///< array footprint proxy [F^2]
    double senseMarginV = 0.0;        ///< ML(match) - ML(worst mismatch) at sense
    bool functional = false;          ///< calibration sims decided correctly

    // Calibration word simulations (first/only stage width).
    WordSimResult matchWord;
    WordSimResult mismatchWord;
};

/// Evaluate a full array configuration. Runs 2 word-level circuit
/// simulations per distinct stage width (through `sim` when provided);
/// everything else is analytic.
ArrayMetrics evaluateArray(const device::TechCard& tech, const ArrayConfig& config,
                           const WorkloadProfile& workload = {},
                           const WordSimFn& sim = {});

/// Deterministic pseudo-random definite word used for calibration sims.
tcam::TernaryWord calibrationWord(int bits, std::uint64_t seed = 7);

/// Key matching `stored`, with `mismatches` definite positions flipped.
tcam::TernaryWord keyWithMismatches(const tcam::TernaryWord& stored, int mismatches);

}  // namespace fetcam::array
