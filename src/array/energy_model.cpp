#include "array/energy_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "numeric/stats.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::array {

tcam::TernaryWord calibrationWord(int bits, std::uint64_t seed) {
    numeric::Rng rng(seed);
    tcam::TernaryWord w(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i)
        w[static_cast<std::size_t>(i)] = rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
    return w;
}

tcam::TernaryWord keyWithMismatches(const tcam::TernaryWord& stored, int mismatches) {
    tcam::TernaryWord key(stored.size());
    for (std::size_t i = 0; i < stored.size(); ++i)
        key[i] = stored[i] == tcam::Trit::X ? tcam::Trit::Zero : stored[i];
    int left = mismatches;
    for (std::size_t i = 0; i < stored.size() && left > 0; ++i) {
        if (stored[i] == tcam::Trit::X) continue;
        key[i] = stored[i] == tcam::Trit::One ? tcam::Trit::Zero : tcam::Trit::One;
        --left;
    }
    if (left > 0)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "keyWithMismatches",
                                "not enough definite positions");
    return key;
}

namespace {

/// Stage widths implied by the configuration.
std::vector<int> stageWidths(const ArrayConfig& cfg) {
    if (cfg.selectivePrecharge) {
        const int pre = std::min(cfg.prefilterBits, cfg.wordBits - 1);
        return {pre, cfg.wordBits - pre};
    }
    if (cfg.mlSegments > 1) {
        const int k = std::min(cfg.mlSegments, cfg.wordBits);
        std::vector<int> w(static_cast<std::size_t>(k), cfg.wordBits / k);
        for (int i = 0; i < cfg.wordBits % k; ++i) ++w[static_cast<std::size_t>(i)];
        return w;
    }
    return {cfg.wordBits};
}

struct StageSims {
    WordSimResult match;
    WordSimResult mismatch;
};

}  // namespace

ArrayMetrics evaluateArray(const device::TechCard& tech, const ArrayConfig& config,
                           const WorkloadProfile& workload, const WordSimFn& sim) {
    if (config.wordBits < 1 || config.rows < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "evaluateArray",
                                "bad geometry");

    const auto widths = stageWidths(config);
    const auto runSim = [&](const WordSimOptions& o) {
        return sim ? sim(o) : simulateWordSearch(o);
    };

    // --- calibration circuit simulations, one pair per distinct stage width ---
    std::map<int, StageSims> sims;
    for (int w : widths) {
        if (sims.contains(w)) continue;
        WordSimOptions o;
        o.tech = tech;
        o.config = config;
        o.config.wordBits = w;
        o.stored = calibrationWord(w);
        o.key = o.stored;  // exact match
        StageSims s;
        s.match = runSim(o);
        o.key = keyWithMismatches(o.stored, 1);  // worst-case single mismatch
        s.mismatch = runSim(o);
        sims.emplace(w, std::move(s));
    }

    ArrayMetrics m;
    const auto& first = sims.at(widths.front());
    m.matchWord = first.match;
    m.mismatchWord = first.mismatch;
    // NAND chains invert the ML polarity, so report the magnitude.
    m.senseMarginV = std::abs(first.match.mlAtSense - first.mismatch.mlAtSense);
    m.functional = true;
    for (const auto& [w, s] : sims)
        m.functional = m.functional && s.match.correct() && s.mismatch.correct();

    // --- analytic scaling to the array ---
    const double rows = config.rows;
    const double nMatchRows = workload.matchRowFraction * rows;
    const double q = workload.bitMatchProbability;

    double delay = 0.0;
    int cumBits = 0;
    for (std::size_t j = 0; j < widths.size(); ++j) {
        const int w = widths[j];
        const auto& s = sims.at(w);

        // Probability a random (ultimately non-matching) row is still alive
        // entering stage j, i.e. it matched every earlier stage.
        const double aliveProb = std::pow(q, static_cast<double>(cumBits));
        const double activeNonMatch = (rows - nMatchRows) * aliveProb;
        // Of the active non-matching rows, those matching this stage too.
        const double stageMatchFrac = std::pow(q, static_cast<double>(w));
        const double nStageMatch = activeNonMatch * stageMatchFrac;
        const double nStageMismatch = activeNonMatch - nStageMatch;

        // Searchlines of every stage broadcast across all rows each search.
        m.perSearch.sl += rows * s.match.energySl;
        // Matchline + sense energy only for rows whose stage evaluates.
        const double eMlMatch = s.match.energyMl;
        const double eMlMismatch = s.mismatch.energyMl;
        m.perSearch.ml += (nMatchRows + nStageMatch) * eMlMatch + nStageMismatch * eMlMismatch;
        m.perSearch.sa += (nMatchRows + nStageMatch) * s.match.energySa +
                          nStageMismatch * s.mismatch.energySa;
        m.perSearch.staticRail +=
            (nMatchRows + nStageMatch) * s.match.energyStatic +
            nStageMismatch * s.mismatch.energyStatic;

        // Stage decision latency: the sense event when one occurred (mismatch
        // discharge for NOR, match discharge for NAND), else the full
        // evaluation window.
        const double event = s.mismatch.detectDelay.value_or(
            s.match.detectDelay.value_or(config.timing.tEval));
        const double stageDelay = event + config.timing.tSetup;
        delay += stageDelay;
        cumBits += w;
    }

    m.searchDelay = delay;
    m.cycleTime = static_cast<double>(widths.size()) * config.timing.cycle();
    m.throughput = 1.0 / m.cycleTime;
    const double cells = rows * config.wordBits;
    m.energyPerBitFj = m.perSearch.total() / cells * 1e15;
    // Cell area plus ~15% periphery (drivers, sense amps, prechargers).
    m.areaF2 = cells * tcam::cellAreaF2(config.cell, tech) * 1.15;
    return m;
}

}  // namespace fetcam::array
