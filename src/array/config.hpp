// Array-level configuration: sensing scheme, geometry, drive voltages,
// search-cycle timing. These knobs are the "energy-aware design" space the
// benches sweep.
#pragma once

#include "device/tech.hpp"
#include "tcam/cell.hpp"

namespace fetcam::array {

/// Matchline precharge/sense strategy.
enum class SenseScheme {
    /// Conventional: precharge ML to VDD through a PMOS, sense with a skewed
    /// CMOS inverter. Robust, but every mismatching ML burns C*VDD^2.
    FullSwing,
    /// Energy-aware: precharge ML to a reduced level (~0.4*VDD) through an
    /// NMOS, sense with a ratioed PMOS-input amplifier. ML energy scales with
    /// Vpre^2; the price is amplifier static current during evaluation.
    LowSwing,
};

constexpr const char* senseSchemeName(SenseScheme s) {
    return s == SenseScheme::FullSwing ? "full-swing" : "low-swing";
}

/// Search-cycle phase durations.
struct SearchTiming {
    double tSetup = 100e-12;      ///< quiet time before evaluation
    double tEval = 1.0e-9;        ///< searchlines asserted, ML evaluated
    double tGap = 100e-12;        ///< searchlines released
    double tPrecharge = 500e-12;  ///< ML recharged for the next search
    double tTail = 200e-12;       ///< settle time at the end of the cycle
    double slEdge = 50e-12;       ///< searchline rise/fall time
    /// Low-swing sense strobe window, relative to evaluation start. The
    /// strobe must open after the slowest single-bit mismatch discharge.
    double saStrobeDelay = 500e-12;
    double saStrobeLen = 120e-12;

    double evalStart() const { return tSetup; }
    double evalEnd() const { return tSetup + tEval; }
    double strobeEnd() const { return evalStart() + saStrobeDelay + saStrobeLen; }
    double prechargeStart() const { return evalEnd() + tGap; }
    double prechargeEnd() const { return prechargeStart() + tPrecharge; }
    double cycle() const { return prechargeEnd() + tTail; }
};

struct ArrayConfig {
    tcam::CellKind cell = tcam::CellKind::FeFet2;
    SenseScheme sense = SenseScheme::FullSwing;
    int wordBits = 64;
    int rows = 64;

    /// Searchline high level; 0 -> tech.vdd. Reducing it below VDD is viable
    /// for FeFET cells (gate-input sensing with VT_low ~ 0.15 V keeps plenty
    /// of overdrive) and is one of the energy-aware techniques.
    double vSearch = 0.0;
    /// Matchline precharge level; 0 -> VDD for FullSwing, 0.4 V for LowSwing.
    double vPrecharge = 0.0;

    /// Weak feedback keeper PMOS on the matchline (full-swing sensing only):
    /// gate driven by the sense stage, so it holds a matching ML at the rail
    /// (kills leakage sag — rescues wide ReRAM words) and releases once a
    /// mismatch discharge flips the sense stage. Costs contention energy and
    /// detection delay.
    bool mlKeeper = false;

    /// Model the matchline as a distributed RC ladder (one segment per cell,
    /// using the tech card's per-cell wire R/C) instead of a single lumped
    /// node. More accurate for wide words at the cost of a larger system.
    bool distributedMl = false;

    /// Matchline segmentation with early termination (1 = off).
    int mlSegments = 1;
    /// Selective precharge: evaluate `prefilterBits` first and precharge the
    /// main ML only for rows that pass.
    bool selectivePrecharge = false;
    int prefilterBits = 2;

    SearchTiming timing;

    double effectiveVSearch(const device::TechCard& tech) const {
        return vSearch > 0.0 ? vSearch : tech.vdd;
    }
    double effectiveVPrecharge(const device::TechCard& tech) const {
        if (vPrecharge > 0.0) return vPrecharge;
        return sense == SenseScheme::FullSwing ? tech.vdd : 0.4;
    }
};

}  // namespace fetcam::array
