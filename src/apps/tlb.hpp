// Fully-associative TLB on a TCAM: virtual-page-number tags with wildcarded
// low bits for superpages (4 KiB / 2 MiB / 1 GiB), FIFO replacement.
//
// The tag side is exactly a ternary match problem — the classic hardware
// reason fully-associative TLBs are built from CAM cells — and superpages
// are what make it *ternary*.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::apps {

enum class PageSize { Page4K, Page2M, Page1G };

/// Low VPN bits wildcarded for each page size (x86-64-style 48-bit VA).
constexpr int wildcardBits(PageSize s) {
    switch (s) {
        case PageSize::Page4K: return 0;
        case PageSize::Page2M: return 9;   // 2M = 4K << 9
        case PageSize::Page1G: return 18;  // 1G = 4K << 18
    }
    return 0;
}

constexpr std::uint64_t pageBytes(PageSize s) {
    switch (s) {
        case PageSize::Page4K: return 1ULL << 12;
        case PageSize::Page2M: return 1ULL << 21;
        case PageSize::Page1G: return 1ULL << 30;
    }
    return 0;
}

struct TlbEntry {
    std::uint64_t vpn = 0;  ///< virtual page number (VA >> 12)
    PageSize size = PageSize::Page4K;
    std::uint64_t pfn = 0;  ///< physical frame number

    tcam::TernaryWord tag() const;  ///< kVpnBits-wide ternary tag
    bool covers(std::uint64_t vaddr) const;
};

class Tlb {
public:
    static constexpr int kVaBits = 48;
    static constexpr int kVpnBits = 36;  // 48 - 12

    explicit Tlb(std::size_t capacity);

    /// Install a translation; evicts FIFO when full. The VPN's wildcarded
    /// bits must be zero (page-aligned), else std::invalid_argument.
    void insert(std::uint64_t vpn, PageSize size, std::uint64_t pfn);

    /// Translate a virtual address; nullopt on TLB miss.
    std::optional<std::uint64_t> translate(std::uint64_t vaddr) const;

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    const std::vector<TlbEntry>& entries() const { return entries_; }

    // Statistics.
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double hitRate() const;

private:
    std::size_t capacity_;
    std::vector<TlbEntry> entries_;  // FIFO order: front is oldest
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

}  // namespace fetcam::apps
