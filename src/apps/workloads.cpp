#include "apps/workloads.hpp"

#include <stdexcept>

namespace fetcam::apps {

namespace {

/// Empirical-ish BGP prefix-length distribution: (length, weight).
constexpr struct {
    int length;
    double weight;
} kPrefixMix[] = {
    {8, 0.01}, {12, 0.02}, {16, 0.10}, {18, 0.05}, {20, 0.10},
    {22, 0.15}, {24, 0.50}, {28, 0.04}, {32, 0.03},
};

int samplePrefixLength(numeric::Rng& rng) {
    double total = 0.0;
    for (const auto& p : kPrefixMix) total += p.weight;
    double u = rng.uniform(0.0, total);
    for (const auto& p : kPrefixMix) {
        if (u < p.weight) return p.length;
        u -= p.weight;
    }
    return 24;
}

}  // namespace

RoutingTable syntheticRoutingTable(std::size_t entries, std::uint64_t seed) {
    numeric::Rng rng(seed);
    RoutingTable table;
    while (table.size() < entries) {
        const int len = samplePrefixLength(rng);
        const std::uint32_t addr =
            static_cast<std::uint32_t>(rng.nextU64()) &
            (len == 32 ? ~0u : (len == 0 ? 0u : ~0u << (32 - len)));
        table.addRoute(addr, len, rng.uniformInt(0, 63));
    }
    return table;
}

std::vector<std::uint32_t> syntheticQueryStream(const RoutingTable& table,
                                                std::size_t queries, double hitFraction,
                                                std::uint64_t seed) {
    if (table.size() == 0) throw std::invalid_argument("syntheticQueryStream: empty table");
    numeric::Rng rng(seed);
    std::vector<std::uint32_t> out;
    out.reserve(queries);
    const auto& routes = table.routes();
    for (std::size_t i = 0; i < queries; ++i) {
        if (rng.bernoulli(hitFraction)) {
            // Address inside a random prefix: prefix bits + random host bits.
            const auto& r = routes[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(routes.size()) - 1))];
            const std::uint32_t hostMask =
                r.prefixLength == 32 ? 0u : ~0u >> r.prefixLength;
            out.push_back(r.address | (static_cast<std::uint32_t>(rng.nextU64()) & hostMask));
        } else {
            out.push_back(static_cast<std::uint32_t>(rng.nextU64()));
        }
    }
    return out;
}

PacketClassifier syntheticClassifier(std::size_t rules, std::uint64_t seed) {
    numeric::Rng rng(seed);
    PacketClassifier cls;
    for (std::size_t i = 0; i < rules; ++i) {
        RuleBuilder b;
        b.srcPrefix(static_cast<std::uint32_t>(rng.nextU64()), rng.uniformInt(8, 24));
        b.dstPrefix(static_cast<std::uint32_t>(rng.nextU64()), rng.uniformInt(8, 24));
        if (rng.bernoulli(0.5))
            b.dstPort(static_cast<std::uint16_t>(rng.uniformInt(0, 1023)));
        if (rng.bernoulli(0.7)) b.protocol(rng.bernoulli(0.5) ? 6 : 17);  // TCP/UDP
        cls.addRule(b.build(rng.uniformInt(0, 3), "rule" + std::to_string(i)));
    }
    return cls;
}

std::vector<PacketHeader> syntheticPackets(const PacketClassifier& cls, std::size_t packets,
                                           double hitFraction, std::uint64_t seed) {
    numeric::Rng rng(seed);
    std::vector<PacketHeader> out;
    out.reserve(packets);
    for (std::size_t i = 0; i < packets; ++i) {
        PacketHeader h;
        if (!cls.rules().empty() && rng.bernoulli(hitFraction)) {
            // Materialize a packet from a random rule: definite bits copied,
            // wildcards randomized.
            const auto& rule = cls.rules()[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(cls.size()) - 1))];
            tcam::TernaryWord w(PacketHeader::kBits);
            for (std::size_t b = 0; b < w.size(); ++b) {
                const auto t = rule.pattern[b];
                w[b] = t == tcam::Trit::X ? (rng.bernoulli(0.5) ? tcam::Trit::One
                                                                : tcam::Trit::Zero)
                                          : t;
            }
            auto field = [&](int off, int bits) {
                std::uint64_t v = 0;
                for (int b = 0; b < bits; ++b)
                    v = (v << 1) |
                        (w[static_cast<std::size_t>(off + b)] == tcam::Trit::One ? 1u : 0u);
                return v;
            };
            h.srcIp = static_cast<std::uint32_t>(field(0, 32));
            h.dstIp = static_cast<std::uint32_t>(field(32, 32));
            h.srcPort = static_cast<std::uint16_t>(field(64, 16));
            h.dstPort = static_cast<std::uint16_t>(field(80, 16));
            h.protocol = static_cast<std::uint8_t>(field(96, 8));
        } else {
            h.srcIp = static_cast<std::uint32_t>(rng.nextU64());
            h.dstIp = static_cast<std::uint32_t>(rng.nextU64());
            h.srcPort = static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
            h.dstPort = static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
            h.protocol = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        }
        out.push_back(h);
    }
    return out;
}

std::vector<tcam::TernaryWord> randomHypervectors(std::size_t count, std::size_t bits,
                                                  std::uint64_t seed) {
    numeric::Rng rng(seed);
    std::vector<tcam::TernaryWord> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        tcam::TernaryWord w(bits);
        for (std::size_t b = 0; b < bits; ++b)
            w[b] = rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
        out.push_back(w);
    }
    return out;
}

tcam::TernaryWord perturbWord(const tcam::TernaryWord& word, std::size_t flips,
                              numeric::Rng& rng) {
    tcam::TernaryWord out = word;
    if (flips > word.size()) throw std::invalid_argument("perturbWord: too many flips");
    // Sample distinct positions by rejection (fine for sparse flips).
    std::vector<bool> used(word.size(), false);
    std::size_t done = 0;
    while (done < flips) {
        const auto pos = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(word.size()) - 1));
        if (used[pos] || out[pos] == tcam::Trit::X) continue;
        used[pos] = true;
        out[pos] = out[pos] == tcam::Trit::One ? tcam::Trit::Zero : tcam::Trit::One;
        ++done;
    }
    return out;
}

}  // namespace fetcam::apps
