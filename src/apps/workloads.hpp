// Synthetic workload generators for the application case studies.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/classifier.hpp"
#include "apps/lpm.hpp"
#include "numeric/stats.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::apps {

/// Synthetic routing table with a realistic prefix-length mix (mass around
/// /16-/24, peak at /24 — the published BGP table shape).
RoutingTable syntheticRoutingTable(std::size_t entries, std::uint64_t seed = 1);

/// Query stream: a mix of addresses covered by table prefixes (hits) and
/// uniform random addresses (mostly misses).
std::vector<std::uint32_t> syntheticQueryStream(const RoutingTable& table,
                                                std::size_t queries, double hitFraction,
                                                std::uint64_t seed = 2);

/// Synthetic firewall-style rule set over the 104-bit header.
PacketClassifier syntheticClassifier(std::size_t rules, std::uint64_t seed = 3);

/// Random packet headers, a fraction crafted to hit classifier rules.
std::vector<PacketHeader> syntheticPackets(const PacketClassifier& cls, std::size_t packets,
                                           double hitFraction, std::uint64_t seed = 4);

/// Random fully-definite words (hypervector-style) for associative search.
std::vector<tcam::TernaryWord> randomHypervectors(std::size_t count, std::size_t bits,
                                                  std::uint64_t seed = 5);

/// Perturb a word by flipping `flips` random definite positions.
tcam::TernaryWord perturbWord(const tcam::TernaryWord& word, std::size_t flips,
                              numeric::Rng& rng);

}  // namespace fetcam::apps
