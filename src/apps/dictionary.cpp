#include "apps/dictionary.hpp"

#include <stdexcept>

namespace fetcam::apps {

namespace {

void compileChar(tcam::TernaryWord& w, std::size_t charIndex, unsigned char c) {
    for (int b = 0; b < 8; ++b)
        w[charIndex * 8 + static_cast<std::size_t>(b)] =
            ((c >> (7 - b)) & 1) ? tcam::Trit::One : tcam::Trit::Zero;
}

}  // namespace

tcam::TernaryWord compileToken(const std::string& token, std::size_t width) {
    if (token.size() > width)
        throw std::invalid_argument("compileToken: token longer than dictionary width");
    tcam::TernaryWord w(width * 8, tcam::Trit::X);
    for (std::size_t i = 0; i < token.size(); ++i) {
        if (token[i] == '?') continue;  // single-character wildcard
        compileChar(w, i, static_cast<unsigned char>(token[i]));
    }
    return w;
}

tcam::TernaryWord compileText(const std::string& text, std::size_t width) {
    tcam::TernaryWord w(width * 8, tcam::Trit::Zero);
    for (std::size_t i = 0; i < width; ++i)
        compileChar(w, i, i < text.size() ? static_cast<unsigned char>(text[i]) : 0);
    return w;
}

void Dictionary::add(const std::string& token, int tag) {
    compileToken(token, width_);  // validate
    entries_.push_back({token, tag});
}

std::optional<int> Dictionary::match(const std::string& text) const {
    const auto key = compileText(text, width_);
    for (const auto& e : entries_)
        if (compileToken(e.token, width_).matches(key)) return e.tag;
    return std::nullopt;
}

std::vector<int> Dictionary::matchAll(const std::string& text) const {
    const auto key = compileText(text, width_);
    std::vector<int> out;
    for (const auto& e : entries_)
        if (compileToken(e.token, width_).matches(key)) out.push_back(e.tag);
    return out;
}

std::vector<tcam::TernaryWord> Dictionary::patterns() const {
    std::vector<tcam::TernaryWord> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(compileToken(e.token, width_));
    return out;
}

}  // namespace fetcam::apps
