#include "apps/tlb.hpp"

#include <stdexcept>

namespace fetcam::apps {

tcam::TernaryWord TlbEntry::tag() const {
    tcam::TernaryWord w(Tlb::kVpnBits);
    const int wild = wildcardBits(size);
    for (int i = 0; i < Tlb::kVpnBits; ++i) {
        const int bitPos = Tlb::kVpnBits - 1 - i;  // MSB first
        if (bitPos < wild) {
            w[static_cast<std::size_t>(i)] = tcam::Trit::X;
        } else {
            const bool bit = (vpn >> bitPos) & 1ULL;
            w[static_cast<std::size_t>(i)] = bit ? tcam::Trit::One : tcam::Trit::Zero;
        }
    }
    return w;
}

bool TlbEntry::covers(std::uint64_t vaddr) const {
    const std::uint64_t pageVpn = (vaddr >> 12) & ((1ULL << Tlb::kVpnBits) - 1);
    const int wild = wildcardBits(size);
    return (pageVpn >> wild) == (vpn >> wild);
}

Tlb::Tlb(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Tlb: capacity must be > 0");
}

void Tlb::insert(std::uint64_t vpn, PageSize size, std::uint64_t pfn) {
    const int wild = wildcardBits(size);
    if (wild > 0 && (vpn & ((1ULL << wild) - 1)) != 0)
        throw std::invalid_argument("Tlb::insert: vpn not aligned to page size");
    if (vpn >> kVpnBits)
        throw std::invalid_argument("Tlb::insert: vpn exceeds 36 bits");
    if (entries_.size() == capacity_) entries_.erase(entries_.begin());  // FIFO evict
    entries_.push_back({vpn, size, pfn});
}

std::optional<std::uint64_t> Tlb::translate(std::uint64_t vaddr) const {
    const std::uint64_t pageVpn = (vaddr >> 12) & ((1ULL << kVpnBits) - 1);
    const auto key = tcam::TernaryWord::fromBits(pageVpn, kVpnBits);
    for (const auto& e : entries_) {
        if (!e.tag().matches(key)) continue;
        ++hits_;
        // Physical address: frame base + in-page offset (superpage-aware).
        const std::uint64_t offsetMask = pageBytes(e.size) - 1;
        return (e.pfn * pageBytes(PageSize::Page4K) & ~offsetMask) + (vaddr & offsetMask);
    }
    ++misses_;
    return std::nullopt;
}

double Tlb::hitRate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace fetcam::apps
