#include "apps/lpm.hpp"

#include <algorithm>
#include <stdexcept>

namespace fetcam::apps {

tcam::TernaryWord Route::pattern() const {
    tcam::TernaryWord w(32, tcam::Trit::X);
    for (int i = 0; i < prefixLength; ++i) {
        const bool bit = (address >> (31 - i)) & 1u;
        w[static_cast<std::size_t>(i)] = bit ? tcam::Trit::One : tcam::Trit::Zero;
    }
    return w;
}

bool Route::covers(std::uint32_t addr) const {
    if (prefixLength == 0) return true;
    const std::uint32_t mask = prefixLength == 32 ? ~0u : ~0u << (32 - prefixLength);
    return (addr & mask) == (address & mask);
}

void RoutingTable::addRoute(std::uint32_t address, int prefixLength, int nextHop) {
    if (prefixLength < 0 || prefixLength > 32)
        throw std::invalid_argument("RoutingTable::addRoute: bad prefix length");
    const Route r{address, prefixLength, nextHop};
    // Insert keeping longest-prefix-first order (stable within equal lengths:
    // earlier insertions win, matching TCAM overwrite-free behaviour).
    const auto pos = std::find_if(routes_.begin(), routes_.end(), [&](const Route& x) {
        return x.prefixLength < prefixLength;
    });
    routes_.insert(pos, r);
}

std::optional<int> RoutingTable::lookup(std::uint32_t address) const {
    const auto key = tcam::TernaryWord::fromBits(address, 32);
    for (const Route& r : routes_)
        if (r.pattern().matches(key)) return r.nextHop;
    return std::nullopt;
}

std::optional<int> RoutingTable::lookupLinear(std::uint32_t address) const {
    const Route* best = nullptr;
    for (const Route& r : routes_) {
        if (!r.covers(address)) continue;
        if (!best || r.prefixLength > best->prefixLength) best = &r;
    }
    return best ? std::optional<int>(best->nextHop) : std::nullopt;
}

std::vector<tcam::TernaryWord> RoutingTable::patterns() const {
    std::vector<tcam::TernaryWord> out;
    out.reserve(routes_.size());
    for (const Route& r : routes_) out.push_back(r.pattern());
    return out;
}

}  // namespace fetcam::apps
