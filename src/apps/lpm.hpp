// Longest-prefix-match IP routing — the classic TCAM application.
//
// Prefixes map to ternary words (prefix bits definite, the rest X) stored in
// decreasing prefix-length order, so the first matching row (the hardware
// priority encoder's output) is the longest match.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::apps {

struct Route {
    std::uint32_t address = 0;  ///< prefix value (host-order, upper bits used)
    int prefixLength = 0;       ///< 0..32
    int nextHop = 0;

    /// 32-trit ternary pattern: prefixLength definite bits, the rest X.
    tcam::TernaryWord pattern() const;
    bool covers(std::uint32_t addr) const;
};

class RoutingTable {
public:
    /// Insert a route. Throws on invalid prefix length. Keeps the table in
    /// TCAM priority order (longest prefix first).
    void addRoute(std::uint32_t address, int prefixLength, int nextHop);

    /// TCAM-semantics lookup: first matching row in priority order.
    std::optional<int> lookup(std::uint32_t address) const;

    /// Reference implementation: scan everything, pick the longest match.
    /// Used to cross-check the TCAM ordering invariant.
    std::optional<int> lookupLinear(std::uint32_t address) const;

    std::size_t size() const { return routes_.size(); }
    const std::vector<Route>& routes() const { return routes_; }

    /// The table as ternary words, in stored (priority) order.
    std::vector<tcam::TernaryWord> patterns() const;

    static constexpr int kWordBits = 32;

private:
    std::vector<Route> routes_;  // sorted: longest prefix first
};

}  // namespace fetcam::apps
