#include "apps/hamming.hpp"

#include <limits>
#include <stdexcept>

namespace fetcam::apps {

void AssociativeMemory::add(const tcam::TernaryWord& word) {
    if (word.size() != bits_)
        throw std::invalid_argument("AssociativeMemory::add: width mismatch");
    if (word.wildcardCount() != 0)
        throw std::invalid_argument("AssociativeMemory::add: wildcards not allowed");
    rows_.push_back(word);
}

std::vector<std::size_t> AssociativeMemory::distances(const tcam::TernaryWord& query) const {
    std::vector<std::size_t> out;
    out.reserve(rows_.size());
    for (const auto& row : rows_) out.push_back(row.mismatchCount(query));
    return out;
}

NearestResult AssociativeMemory::nearest(const tcam::TernaryWord& query) const {
    if (rows_.empty()) throw std::logic_error("AssociativeMemory::nearest: empty memory");
    const auto d = distances(query);
    NearestResult best{0, d[0], true};
    for (std::size_t i = 1; i < d.size(); ++i) {
        if (d[i] < best.distance) {
            best = {i, d[i], true};
        } else if (d[i] == best.distance) {
            best.unique = false;
        }
    }
    return best;
}

std::vector<double> AssociativeMemory::dischargeTimes(const tcam::TernaryWord& query,
                                                      double tauUnit) const {
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto& row : rows_) {
        const auto d = row.mismatchCount(query);
        out.push_back(d == 0 ? std::numeric_limits<double>::infinity()
                             : tauUnit / static_cast<double>(d));
    }
    return out;
}

NearestResult AssociativeMemory::nearestViaDischarge(const tcam::TernaryWord& query,
                                                     double tauUnit) const {
    if (rows_.empty())
        throw std::logic_error("AssociativeMemory::nearestViaDischarge: empty memory");
    const auto times = dischargeTimes(query, tauUnit);
    NearestResult best{0, rows_[0].mismatchCount(query), true};
    double bestTime = times[0];
    for (std::size_t i = 1; i < times.size(); ++i) {
        if (times[i] > bestTime) {
            bestTime = times[i];
            best = {i, rows_[i].mismatchCount(query), true};
        } else if (times[i] == bestTime) {
            best.unique = false;
        }
    }
    return best;
}

}  // namespace fetcam::apps
