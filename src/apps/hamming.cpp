#include "apps/hamming.hpp"

#include <limits>
#include <stdexcept>

namespace fetcam::apps {

void AssociativeMemory::add(const tcam::TernaryWord& word) {
    if (word.size() != bits_)
        throw std::invalid_argument("AssociativeMemory::add: width mismatch");
    if (word.wildcardCount() != 0)
        throw std::invalid_argument("AssociativeMemory::add: wildcards not allowed");
    const auto row = static_cast<std::int64_t>(rows_.size());
    rows_.push_back(word);
    planes_.ensureRows(row + 1);
    planes_.set(row, word);
}

std::vector<std::size_t> AssociativeMemory::distances(const tcam::TernaryWord& query) const {
    // Width is validated once per query; the per-row counts come from the
    // bit-plane kernel, 64 rows per machine word.
    if (query.size() != bits_)
        throw std::invalid_argument("AssociativeMemory::distances: width mismatch");
    std::vector<std::size_t> out(rows_.size());
    if (!rows_.empty()) planes_.mismatchCounts(tcam::KeySlices::of(query), out.data());
    return out;
}

NearestResult AssociativeMemory::nearest(const tcam::TernaryWord& query) const {
    if (rows_.empty()) throw std::logic_error("AssociativeMemory::nearest: empty memory");
    const auto d = distances(query);
    NearestResult best{0, d[0], true};
    for (std::size_t i = 1; i < d.size(); ++i) {
        if (d[i] < best.distance) {
            best = {i, d[i], true};
        } else if (d[i] == best.distance) {
            best.unique = false;
        }
    }
    return best;
}

std::vector<double> AssociativeMemory::dischargeTimes(const tcam::TernaryWord& query,
                                                      double tauUnit) const {
    const auto d = distances(query);
    std::vector<double> out;
    out.reserve(d.size());
    for (const auto di : d)
        out.push_back(di == 0 ? std::numeric_limits<double>::infinity()
                              : tauUnit / static_cast<double>(di));
    return out;
}

NearestResult AssociativeMemory::nearestViaDischarge(const tcam::TernaryWord& query,
                                                     double tauUnit) const {
    if (rows_.empty())
        throw std::logic_error("AssociativeMemory::nearestViaDischarge: empty memory");
    const auto d = distances(query);
    const auto times = dischargeTimes(query, tauUnit);
    // Winner-take-all on the latest discharge. Tie-breaking matches the
    // exact model: only a strictly later discharge displaces the incumbent,
    // so equal times (equal distances — including several exact matches,
    // whose +inf times compare equal) keep the lowest row index and clear
    // `unique`. An exact match always beats distance 1 deterministically:
    // +inf > tauUnit holds for every finite positive tauUnit.
    NearestResult best{0, d[0], true};
    double bestTime = times[0];
    for (std::size_t i = 1; i < times.size(); ++i) {
        if (times[i] > bestTime) {
            bestTime = times[i];
            best = {i, d[i], true};
        } else if (times[i] == bestTime) {
            best.unique = false;
        }
    }
    return best;
}

}  // namespace fetcam::apps
