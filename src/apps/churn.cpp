#include "apps/churn.hpp"

#include <stdexcept>

namespace fetcam::apps {

ChurnWorkload::ChurnWorkload(const ChurnSpec& spec) : spec_(spec), flapRng_(spec.seed) {
    if (spec_.rows < 1) throw std::invalid_argument("ChurnWorkload: rows must be >= 1");
    if (spec_.wordBits < 1)
        throw std::invalid_argument("ChurnWorkload: wordBits must be >= 1");
    if (spec_.wildcardFraction < 0.0 || spec_.wildcardFraction > 1.0 ||
        spec_.allWildcardFraction < 0.0 || spec_.allWildcardFraction > 1.0)
        throw std::invalid_argument("ChurnWorkload: fractions must be in [0, 1]");

    // The word universe comes from its own stream so the flap sequence stays
    // identical however many words are generated.
    numeric::Rng wordRng(spec_.seed ^ 0x5eed7ab1eULL);
    words_.reserve(static_cast<std::size_t>(spec_.rows));
    for (std::int64_t r = 0; r < spec_.rows; ++r) {
        tcam::TernaryWord word(static_cast<std::size_t>(spec_.wordBits));
        if (wordRng.bernoulli(spec_.allWildcardFraction)) {
            // Leave the all-X fill: a match-everything entry.
        } else {
            for (std::size_t i = 0; i < word.size(); ++i) {
                if (wordRng.bernoulli(spec_.wildcardFraction)) continue;  // keep X
                word[i] = wordRng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
            }
        }
        words_.push_back(std::move(word));
    }
    present_.assign(static_cast<std::size_t>(spec_.rows), 1);
    installed_ = spec_.rows;
}

ChurnOp ChurnWorkload::next() {
    const auto row = static_cast<std::int64_t>(
        flapRng_.uniformInt(0, static_cast<int>(spec_.rows) - 1));
    ChurnOp op;
    op.row = row;
    if (present_[static_cast<std::size_t>(row)]) {
        op.insert = false;
        present_[static_cast<std::size_t>(row)] = 0;
        --installed_;
    } else {
        op.insert = true;
        op.word = words_[static_cast<std::size_t>(row)];
        present_[static_cast<std::size_t>(row)] = 1;
        ++installed_;
    }
    return op;
}

std::vector<tcam::TernaryWord> ChurnWorkload::queryStream(std::size_t count,
                                                          double hitFraction,
                                                          std::uint64_t streamSeed) const {
    numeric::Rng rng(streamSeed);
    std::vector<tcam::TernaryWord> out;
    out.reserve(count);
    for (std::size_t q = 0; q < count; ++q) {
        tcam::TernaryWord key(static_cast<std::size_t>(spec_.wordBits));
        if (rng.bernoulli(hitFraction)) {
            // A definite key covered by some seed row: its word with every X
            // pinned to a random bit.
            const auto& word = words_[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(spec_.rows) - 1))];
            for (std::size_t i = 0; i < word.size(); ++i)
                key[i] = word[i] == tcam::Trit::X
                             ? (rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero)
                             : word[i];
        } else {
            for (std::size_t i = 0; i < key.size(); ++i)
                key[i] = rng.bernoulli(0.5) ? tcam::Trit::One : tcam::Trit::Zero;
        }
        out.push_back(std::move(key));
    }
    return out;
}

}  // namespace fetcam::apps
