// Fixed-width dictionary / signature matching: ASCII tokens with '?'
// single-character wildcards compiled to ternary words (8 trits per
// character) — the TCAM pattern behind deep-packet-inspection signature
// engines and fixed-field database predicates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::apps {

/// Compile a token to trits: 8 per character, MSB first; '?' compiles to
/// eight X trits (matches any character). The token is padded with trailing
/// wildcards up to `width` characters. Throws if longer than `width`.
tcam::TernaryWord compileToken(const std::string& token, std::size_t width);

/// Exact-width key from input text (truncated/padded with NULs to width).
tcam::TernaryWord compileText(const std::string& text, std::size_t width);

struct DictionaryEntry {
    std::string token;
    int tag = 0;
};

/// Priority-ordered signature dictionary.
class Dictionary {
public:
    explicit Dictionary(std::size_t width) : width_(width) {}

    /// Earlier additions have higher match priority.
    void add(const std::string& token, int tag);

    /// First (highest-priority) entry matching the text; TCAM semantics.
    std::optional<int> match(const std::string& text) const;

    /// Every matching entry's tag, in priority order ("multi-hit" readout).
    std::vector<int> matchAll(const std::string& text) const;

    std::size_t size() const { return entries_.size(); }
    std::size_t width() const { return width_; }
    const std::vector<DictionaryEntry>& entries() const { return entries_; }
    std::vector<tcam::TernaryWord> patterns() const;

private:
    std::size_t width_;
    std::vector<DictionaryEntry> entries_;
};

}  // namespace fetcam::apps
