// Multi-field packet classification on a TCAM: rules are ternary patterns
// over concatenated header fields; the first matching rule (priority order)
// decides the action.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::apps {

/// A simplified 5-tuple-style header flattened to bits:
/// srcIp(32) | dstIp(32) | srcPort(16) | dstPort(16) | protocol(8) = 104 bits.
struct PacketHeader {
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint8_t protocol = 0;

    static constexpr int kBits = 104;
    tcam::TernaryWord toWord() const;
};

struct ClassifierRule {
    tcam::TernaryWord pattern;  ///< width PacketHeader::kBits
    int action = 0;
    std::string name;
};

/// Helpers to assemble rule patterns field by field.
class RuleBuilder {
public:
    RuleBuilder();
    RuleBuilder& srcPrefix(std::uint32_t addr, int len);
    RuleBuilder& dstPrefix(std::uint32_t addr, int len);
    RuleBuilder& srcPort(std::uint16_t port);   ///< exact
    RuleBuilder& dstPort(std::uint16_t port);   ///< exact
    RuleBuilder& protocol(std::uint8_t proto);  ///< exact
    ClassifierRule build(int action, std::string name = {}) const;

private:
    void setField(int offset, std::uint64_t value, int definiteBits, int fieldBits);
    tcam::TernaryWord pattern_;
};

class PacketClassifier {
public:
    /// Append a rule (lowest index = highest priority).
    void addRule(ClassifierRule rule);

    /// First matching rule's action, TCAM priority semantics.
    std::optional<int> classify(const PacketHeader& header) const;

    /// Index of the first matching rule (for tests / diagnostics).
    std::optional<std::size_t> matchIndex(const PacketHeader& header) const;

    std::size_t size() const { return rules_.size(); }
    const std::vector<ClassifierRule>& rules() const { return rules_; }

private:
    std::vector<ClassifierRule> rules_;
};

}  // namespace fetcam::apps
