#include "apps/classifier.hpp"

#include <stdexcept>

namespace fetcam::apps {

namespace {

void writeBits(tcam::TernaryWord& w, int offset, std::uint64_t value, int definiteBits,
               int fieldBits) {
    for (int i = 0; i < definiteBits; ++i) {
        const bool bit = (value >> (fieldBits - 1 - i)) & 1ULL;
        w[static_cast<std::size_t>(offset + i)] = bit ? tcam::Trit::One : tcam::Trit::Zero;
    }
}

}  // namespace

tcam::TernaryWord PacketHeader::toWord() const {
    tcam::TernaryWord w(kBits, tcam::Trit::Zero);
    writeBits(w, 0, srcIp, 32, 32);
    writeBits(w, 32, dstIp, 32, 32);
    writeBits(w, 64, srcPort, 16, 16);
    writeBits(w, 80, dstPort, 16, 16);
    writeBits(w, 96, protocol, 8, 8);
    return w;
}

RuleBuilder::RuleBuilder() : pattern_(PacketHeader::kBits, tcam::Trit::X) {}

void RuleBuilder::setField(int offset, std::uint64_t value, int definiteBits, int fieldBits) {
    if (definiteBits < 0 || definiteBits > fieldBits)
        throw std::invalid_argument("RuleBuilder: bad field width");
    writeBits(pattern_, offset, value, definiteBits, fieldBits);
}

RuleBuilder& RuleBuilder::srcPrefix(std::uint32_t addr, int len) {
    setField(0, addr, len, 32);
    return *this;
}
RuleBuilder& RuleBuilder::dstPrefix(std::uint32_t addr, int len) {
    setField(32, addr, len, 32);
    return *this;
}
RuleBuilder& RuleBuilder::srcPort(std::uint16_t port) {
    setField(64, port, 16, 16);
    return *this;
}
RuleBuilder& RuleBuilder::dstPort(std::uint16_t port) {
    setField(80, port, 16, 16);
    return *this;
}
RuleBuilder& RuleBuilder::protocol(std::uint8_t proto) {
    setField(96, proto, 8, 8);
    return *this;
}

ClassifierRule RuleBuilder::build(int action, std::string name) const {
    return ClassifierRule{pattern_, action, std::move(name)};
}

void PacketClassifier::addRule(ClassifierRule rule) {
    if (static_cast<int>(rule.pattern.size()) != PacketHeader::kBits)
        throw std::invalid_argument("PacketClassifier::addRule: bad pattern width");
    rules_.push_back(std::move(rule));
}

std::optional<int> PacketClassifier::classify(const PacketHeader& header) const {
    if (const auto idx = matchIndex(header)) return rules_[*idx].action;
    return std::nullopt;
}

std::optional<std::size_t> PacketClassifier::matchIndex(const PacketHeader& header) const {
    const auto key = header.toWord();
    for (std::size_t i = 0; i < rules_.size(); ++i)
        if (rules_[i].pattern.matches(key)) return i;
    return std::nullopt;
}

}  // namespace fetcam::apps
