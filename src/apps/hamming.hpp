// Approximate (nearest-neighbour) associative search.
//
// FeFET TCAMs are attractive beyond exact match: on a mismatch the matchline
// discharge rate is proportional to the number of mismatching cells, so the
// row whose ML falls last is the Hamming-nearest entry — the primitive
// behind hyperdimensional-computing and few-shot-learning accelerators.
//
// This module provides the exact functional model plus the analog
// discharge-time model that maps distances to ML fall times.
//
// Distances ride the same bit-plane kernel as the serving hot path: rows
// pack into tcam::TernaryPlanes and all per-row mismatch counts come from
// one bit-sliced XOR+mask+popcount pass (64 rows per machine word) instead
// of a trit-by-trit walk — bit-identical to TernaryWord::mismatchCount by
// the planes' contract (cross-checked in apps_test).
#pragma once

#include <cstdint>
#include <vector>

#include "tcam/bitplanes.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::apps {

struct NearestResult {
    std::size_t index = 0;      ///< winning row
    std::size_t distance = 0;   ///< its Hamming distance
    bool unique = true;         ///< no tie with another row
};

class AssociativeMemory {
public:
    explicit AssociativeMemory(std::size_t bits)
        : bits_(bits), planes_(static_cast<int>(bits)) {}

    /// Store a fully-definite word. Throws on width mismatch or wildcards.
    void add(const tcam::TernaryWord& word);

    std::size_t size() const { return rows_.size(); }
    std::size_t bits() const { return bits_; }
    const std::vector<tcam::TernaryWord>& rows() const { return rows_; }

    /// Exact nearest row by Hamming distance (golden model).
    NearestResult nearest(const tcam::TernaryWord& query) const;

    /// All distances (for distribution studies).
    std::vector<std::size_t> distances(const tcam::TernaryWord& query) const;

    /// Analog model: per-row matchline discharge time constants, inversely
    /// proportional to mismatch count:  t_row = tauUnit / max(d, epsilon).
    /// A winner-take-all on the *latest* discharge recovers the nearest row;
    /// the ordering is identical to the exact model except exact matches,
    /// which never discharge (represented as +inf).
    std::vector<double> dischargeTimes(const tcam::TernaryWord& query,
                                       double tauUnit = 1e-9) const;

    /// Winner via the analog model (latest discharge wins). Deterministic
    /// and identical to nearest(): ties — rows at equal distance, whose
    /// discharge times compare exactly equal (including +inf for several
    /// exact matches) — resolve to the lowest row index with unique=false,
    /// and an exact match (+inf, never discharges) always beats distance 1.
    NearestResult nearestViaDischarge(const tcam::TernaryWord& query,
                                      double tauUnit = 1e-9) const;

private:
    std::size_t bits_;
    std::vector<tcam::TernaryWord> rows_;
    tcam::TernaryPlanes planes_;  ///< bit-sliced mirror of rows_, all occupied
};

}  // namespace fetcam::apps
