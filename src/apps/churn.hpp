// Route-churn replay workload: the mutation-under-load case study.
//
// Models what a deployed TCAM actually experiences between searches: BGP
// flaps / rule updates that erase and re-install table entries while the
// query stream keeps running. The workload owns a fixed universe of `rows`
// ternary words (the seed table, with a realistic wildcard mix), a
// present/absent membership bitmap, and a deterministic flap sequence: each
// op picks a uniform row and toggles it — present rows are erased, absent
// rows are re-inserted with their original word. That keeps the reachable
// state space equal to the power set of one fixed table, so an oracle can
// verify any engine state by membership alone, and a replayed delta log must
// land on exactly the final bitmap.
//
// Everything is seed-deterministic (numeric::Rng): the same spec produces
// the same seed table, the same flap order, and the same query stream on
// every run — what bench_churn and the differential tests require.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/stats.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::apps {

struct ChurnSpec {
    std::int64_t rows = 1024;  ///< seed-table entries (all present at start)
    int wordBits = 64;
    /// Probability that a seed-word trit is X (prefix-style wildcarding).
    double wildcardFraction = 0.25;
    /// Fraction of seed rows stored as all-X (match-everything) entries —
    /// the degenerate case the bit-plane care masks must get right.
    double allWildcardFraction = 0.02;
    std::uint64_t seed = 1;
};

/// One table mutation in the flap sequence.
struct ChurnOp {
    bool insert = false;     ///< true: re-install `word` at `row`; false: erase
    std::int64_t row = 0;
    tcam::TernaryWord word;  ///< the row's seed word (empty for erases)
};

class ChurnWorkload {
public:
    explicit ChurnWorkload(const ChurnSpec& spec);

    const ChurnSpec& spec() const { return spec_; }
    /// The fixed word universe, indexed by row.
    const std::vector<tcam::TernaryWord>& words() const { return words_; }
    /// Current membership (updated by next()); words()[r] is installed when
    /// present()[r] != 0. Starts all-present.
    const std::vector<char>& present() const { return present_; }
    std::int64_t installed() const { return installed_; }

    /// The next flap: erase a present row or re-insert an absent one,
    /// deterministically. Updates the membership bitmap.
    ChurnOp next();

    /// Deterministic query stream: `hitFraction` of the keys are crafted to
    /// match a uniformly chosen seed row (its word with every X replaced by
    /// a definite bit), the rest are uniform random definite words. Whether
    /// a crafted key actually hits depends on the membership state when it
    /// is searched — which is the point of the scenario.
    std::vector<tcam::TernaryWord> queryStream(std::size_t count, double hitFraction,
                                               std::uint64_t streamSeed) const;

private:
    ChurnSpec spec_;
    std::vector<tcam::TernaryWord> words_;
    std::vector<char> present_;
    std::int64_t installed_ = 0;
    numeric::Rng flapRng_;
};

}  // namespace fetcam::apps
