// Pluggable functional-match backends for the query engine's hot path.
//
// The engine's serving loop reduces to one primitive — "lowest occupied row
// in [begin, end) matching this key" (the shard-local priority encoder) —
// plus the bit-parallel mismatchCounts the similarity workloads ride. This
// interface makes the implementation swappable:
//
//   * Scalar   — the original row-at-a-time scan over
//                std::vector<std::optional<TernaryWord>>. Slow, obviously
//                correct: it is the cross-check oracle.
//   * BitPlane — tcam::TernaryPlanes value/care bit-slices, 64 entries per
//                machine word per operation (default).
//   * Checked  — runs both on every call and throws on any divergence; what
//                the differential tests and the paranoid deployment flag use.
//
// Contract: backends are bit-identical. For the same entry set and key,
// findFirst returns the same row and mismatchCounts the same counts, on any
// backend — asserted by match_backend_test's differential fuzz and by
// bench_match on every run.
//
// Width discipline: the engine validates key widths once per batch, then
// calls prepare() once per key and findFirst() once per (key, shard) — no
// per-call width checks anywhere on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tcam/bitplanes.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::serve {

enum class MatchBackendKind {
    Scalar,    ///< row-at-a-time oracle
    BitPlane,  ///< value/care bit-planes, 64 rows per word (default)
    Checked,   ///< both, cross-asserted per call
};

/// Stable name ("scalar" / "bitplane" / "checked").
const char* backendName(MatchBackendKind kind) noexcept;

/// Parse a --backend value; throws recover::SimError(InvalidSpec) on others.
MatchBackendKind parseBackendKind(const std::string& name);

/// A key prepared once per batch: the word itself (scalar path) plus its
/// definite-bit slices (bit-plane path). Holds a pointer — the key must
/// outlive the PreparedKey, which batch loops guarantee.
struct PreparedKey {
    const tcam::TernaryWord* word = nullptr;
    tcam::KeySlices slices;
};

class MatchBackend {
public:
    virtual ~MatchBackend() = default;

    virtual MatchBackendKind kind() const noexcept = 0;

    /// Store `word` at `row`. Width == bits() and row in range are the
    /// caller's (already-validated) responsibility.
    virtual void set(std::int64_t row, const tcam::TernaryWord& word) = 0;

    /// Mark `row` empty.
    virtual void clear(std::int64_t row) = 0;

    /// Entry at `row` (nullopt when empty) — introspection, not hot path.
    /// The reference is into this backend's storage: when the backend is a
    /// copy-on-write snapshot (the engine's shards), keep the snapshot alive
    /// while the reference is used.
    virtual const std::optional<tcam::TernaryWord>& at(std::int64_t row) const = 0;

    /// Deep copy with identical entries — the copy-on-write primitive behind
    /// the engine's mutable shard snapshots. Backends are value types
    /// underneath, so a clone and its source never share storage.
    virtual std::unique_ptr<MatchBackend> clone() const = 0;

    /// Decompose a (width-validated) key once per batch.
    virtual PreparedKey prepare(const tcam::TernaryWord& key) const = 0;

    /// Shard-local priority encoder: lowest occupied matching row in
    /// [begin, end), or -1.
    virtual std::int64_t findFirst(std::int64_t begin, std::int64_t end,
                                   const PreparedKey& key) const = 0;

    /// Per-row mismatch counts into out[0..rows()); empty rows get
    /// tcam::kNoEntry.
    virtual void mismatchCounts(const PreparedKey& key, std::size_t* out) const = 0;

    std::int64_t rows() const noexcept { return rows_; }
    int bits() const noexcept { return bits_; }

protected:
    MatchBackend(std::int64_t rows, int bits) : rows_(rows), bits_(bits) {}

private:
    std::int64_t rows_;
    int bits_;
};

/// Factory: a `rows` x `bits` backend of the requested kind, all rows empty.
std::unique_ptr<MatchBackend> makeMatchBackend(MatchBackendKind kind, std::int64_t rows,
                                               int bits);

}  // namespace fetcam::serve
