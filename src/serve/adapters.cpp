#include "serve/adapters.hpp"

#include <algorithm>

#include "recover/sim_error.hpp"

namespace fetcam::serve {

namespace {

/// Services submit through admission control so the accepted/shed accounting
/// in the deterministic fetcam_serve report covers the app paths too. A
/// sequential service call can only be shed if the caller also hammers the
/// same engine concurrently past its in-flight bound — surface that as a
/// typed error rather than inventing a partial-result contract here.
BatchResult runAdmitted(QueryEngine& engine, const std::vector<tcam::TernaryWord>& keys,
                        int jobs, const char* where) {
    auto submitted = engine.submitBatch(keys, jobs);
    if (!submitted.admitted())
        throw recover::SimError(recover::SimErrorReason::DeadlineExceeded, where,
                                "service batch shed by engine admission control");
    return std::move(submitted.result);
}

}  // namespace

EngineOptions appEngineOptions(EngineOptions base, int wordBits, std::int64_t capacity) {
    base.shard.wordBits = wordBits;
    base.capacity = std::max<std::int64_t>(capacity, 1);
    return base;
}

LpmService::LpmService(const apps::RoutingTable& table, EngineOptions base,
                       std::shared_ptr<CharacterizationCache> cache)
    : engine_(appEngineOptions(std::move(base), apps::RoutingTable::kWordBits,
                               static_cast<std::int64_t>(table.size())),
              std::move(cache)) {
    // routes() is kept longest-prefix-first, so row index = TCAM priority and
    // the engine's lowest-row winner is the longest match.
    std::int64_t row = 0;
    nextHops_.reserve(table.size());
    for (const auto& route : table.routes()) {
        engine_.insertAt(row++, route.pattern());
        nextHops_.push_back(route.nextHop);
    }
}

std::vector<std::optional<int>> LpmService::lookupBatch(
    const std::vector<std::uint32_t>& addresses, int jobs) {
    std::vector<tcam::TernaryWord> keys;
    keys.reserve(addresses.size());
    for (const auto addr : addresses)
        keys.push_back(tcam::TernaryWord::fromBits(addr, apps::RoutingTable::kWordBits));
    const auto batch = runAdmitted(engine_, keys, jobs, "LpmService::lookupBatch");

    std::vector<std::optional<int>> out(addresses.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        if (batch.rows[i] >= 0) out[i] = nextHops_[static_cast<std::size_t>(batch.rows[i])];
    return out;
}

TlbService::TlbService(const apps::Tlb& tlb, EngineOptions base,
                       std::shared_ptr<CharacterizationCache> cache)
    : engine_(appEngineOptions(std::move(base), apps::Tlb::kVpnBits,
                               static_cast<std::int64_t>(tlb.capacity())),
              std::move(cache)) {
    // FIFO order: Tlb::translate takes the first matching entry, so row
    // index = insertion order reproduces its pick exactly.
    std::int64_t row = 0;
    entries_ = tlb.entries();
    for (const auto& entry : entries_) engine_.insertAt(row++, entry.tag());
}

std::vector<std::optional<std::uint64_t>> TlbService::translateBatch(
    const std::vector<std::uint64_t>& vaddrs, int jobs) {
    std::vector<tcam::TernaryWord> keys;
    keys.reserve(vaddrs.size());
    for (const auto vaddr : vaddrs) {
        const std::uint64_t pageVpn = (vaddr >> 12) & ((1ULL << apps::Tlb::kVpnBits) - 1);
        keys.push_back(tcam::TernaryWord::fromBits(pageVpn, apps::Tlb::kVpnBits));
    }
    const auto batch = runAdmitted(engine_, keys, jobs, "TlbService::translateBatch");

    std::vector<std::optional<std::uint64_t>> out(vaddrs.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (batch.rows[i] < 0) continue;
        const auto& e = entries_[static_cast<std::size_t>(batch.rows[i])];
        // Same physical-address math as Tlb::translate: frame base plus the
        // superpage-aware in-page offset.
        const std::uint64_t offsetMask = apps::pageBytes(e.size) - 1;
        out[i] = (e.pfn * apps::pageBytes(apps::PageSize::Page4K) & ~offsetMask) +
                 (vaddrs[i] & offsetMask);
    }
    return out;
}

ClassifierService::ClassifierService(const apps::PacketClassifier& classifier,
                                     EngineOptions base,
                                     std::shared_ptr<CharacterizationCache> cache)
    : engine_(appEngineOptions(std::move(base), apps::PacketHeader::kBits,
                               static_cast<std::int64_t>(classifier.size())),
              std::move(cache)) {
    std::int64_t row = 0;
    actions_.reserve(classifier.size());
    for (const auto& rule : classifier.rules()) {
        engine_.insertAt(row++, rule.pattern);
        actions_.push_back(rule.action);
    }
}

std::vector<std::optional<int>> ClassifierService::classifyBatch(
    const std::vector<apps::PacketHeader>& headers, int jobs) {
    std::vector<tcam::TernaryWord> keys;
    keys.reserve(headers.size());
    for (const auto& header : headers) keys.push_back(header.toWord());
    const auto batch = runAdmitted(engine_, keys, jobs, "ClassifierService::classifyBatch");

    std::vector<std::optional<int>> out(headers.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        if (batch.rows[i] >= 0) out[i] = actions_[static_cast<std::size_t>(batch.rows[i])];
    return out;
}

}  // namespace fetcam::serve
