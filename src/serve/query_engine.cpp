#include "serve/query_engine.hpp"

#include <algorithm>
#include <sstream>

#include "core/report.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::serve {

namespace {

std::shared_ptr<CharacterizationCache> makeCache(const EngineOptions& options) {
    if (options.store.enabled())
        return std::make_shared<CharacterizationCache>(options.store);
    return std::make_shared<CharacterizationCache>();
}

}  // namespace

QueryEngine::QueryEngine(EngineOptions options, std::shared_ptr<CharacterizationCache> cache)
    : options_(std::move(options)),
      cache_(cache ? std::move(cache) : makeCache(options_)) {
    if (options_.capacity < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "capacity must be >= 1");
    if (options_.capacity > kMaxCapacity)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "capacity exceeds functional storage limit (2^28 words)");
    if (options_.batchSize < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "batchSize must be >= 1");
    if (options_.admission.maxInFlightBatches < 0)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "admission.maxInFlightBatches must be >= 0");
    obs::SpanGuard span("serve.engine.build",
                        {{"capacity", static_cast<long long>(options_.capacity)},
                         {"wordBits", options_.shard.wordBits}});
    bank_ = evaluateBank(options_.tech, options_.shard, options_.capacity, options_.workload,
                         options_.encoder, recover::FailurePolicy::Strict,
                         cache_->provider());
    if (bank_.totalEntries > kMaxCapacity)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "provisioned capacity exceeds functional storage limit");
    backend_ = makeMatchBackend(options_.backend, bank_.totalEntries,
                                options_.shard.wordBits);
}

void QueryEngine::checkRow(std::int64_t row) const {
    if (row < 0 || row >= capacity())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "row out of range");
}

std::int64_t QueryEngine::insert(const tcam::TernaryWord& word) {
    for (std::int64_t r = 0; r < capacity(); ++r) {
        if (!backend_->at(r)) {
            insertAt(r, word);
            return r;
        }
    }
    throw std::length_error("QueryEngine::insert: engine full");
}

void QueryEngine::insertAt(std::int64_t row, const tcam::TernaryWord& word) {
    checkRow(row);
    if (static_cast<int>(word.size()) != options_.shard.wordBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "QueryEngine::insertAt", "word width mismatch");
    // Backends maintain their planes incrementally on set/clear, so online
    // mutation never pays a rebuild.
    if (!backend_->at(row)) ++occupied_;
    backend_->set(row, word);
}

void QueryEngine::erase(std::int64_t row) {
    checkRow(row);
    if (backend_->at(row)) {
        backend_->clear(row);
        --occupied_;
    }
}

const std::optional<tcam::TernaryWord>& QueryEngine::entryAt(std::int64_t row) const {
    checkRow(row);
    return backend_->at(row);
}

BatchResult QueryEngine::searchBatch(const std::vector<tcam::TernaryWord>& keys, int jobs) {
    return searchBatchMasked(keys, nullptr, jobs);
}

BatchResult QueryEngine::searchBatchMasked(const std::vector<tcam::TernaryWord>& keys,
                                           const std::vector<char>* expired, int jobs) {
    // Validate every key up front so a bad key fails before any accounting.
    for (const auto& key : keys)
        if (static_cast<int>(key.size()) != options_.shard.wordBits)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                    "QueryEngine::searchBatch", "key width mismatch");

    const bool obsOn = obs::enabled();
    if (obsOn) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        if (shardHists_.empty()) {
            shardHists_.reserve(static_cast<std::size_t>(shards()));
            for (std::int64_t s = 0; s < shards(); ++s)
                shardHists_.push_back(
                    &obs::histogram("serve.shard" + std::to_string(s) + ".seconds"));
        }
    }
    const double t0 = obsOn ? obs::monotonicSeconds() : 0.0;

    BatchResult out;
    out.rows.assign(keys.size(), -1);

    const auto n = static_cast<std::int64_t>(keys.size());
    const std::int64_t tileSize = options_.batchSize;
    const auto tiles = static_cast<int>((n + tileSize - 1) / tileSize);
    const std::int64_t numShards = shards();

    // Fan the tiles out across the team. Each worker owns its tile's result
    // slots outright, and the shard scans inside a tile run in a fixed
    // order, so the merge below never depends on the schedule.
    const std::int64_t rowsPerShard = bank_.rowsPerArray;
    const std::int64_t cap = capacity();
    numeric::parallelFor(jobs, tiles, [&](int tile) {
        const std::int64_t lo = static_cast<std::int64_t>(tile) * tileSize;
        const std::int64_t hi = std::min(lo + tileSize, n);
        // Each key is decomposed once per tile (widths were validated above)
        // and the prepared form is reused across every shard scan.
        std::vector<PreparedKey> prepared;
        prepared.reserve(static_cast<std::size_t>(hi - lo));
        for (std::int64_t i = lo; i < hi; ++i)
            prepared.push_back(backend_->prepare(keys[static_cast<std::size_t>(i)]));
        for (std::int64_t s = 0; s < numShards; ++s) {
            // Shard bounds depend only on the shard, not the query.
            const std::int64_t begin = s * rowsPerShard;
            const std::int64_t end = std::min(begin + rowsPerShard, cap);
            const double ts0 = obsOn ? obs::monotonicSeconds() : 0.0;
            for (std::int64_t i = lo; i < hi; ++i) {
                // Deadline-shed queries never reach the scan: mark and skip.
                if (expired && (*expired)[static_cast<std::size_t>(i)]) {
                    out.rows[static_cast<std::size_t>(i)] = kRowDeadlineExpired;
                    continue;
                }
                auto& best = out.rows[static_cast<std::size_t>(i)];
                // Shards cover ascending row ranges, so the first shard to
                // report a match holds the global winner: later shards
                // cannot beat it and are skipped.
                if (best >= 0) continue;
                const std::int64_t local =
                    backend_->findFirst(begin, end, prepared[static_cast<std::size_t>(i - lo)]);
                if (local >= 0) best = local;
            }
            if (obsOn && hi > lo)
                shardHists_[static_cast<std::size_t>(s)]->observe(
                    (obs::monotonicSeconds() - ts0) / static_cast<double>(hi - lo));
        }
    });

    for (const auto r : out.rows) {
        out.hits += r >= 0;
        out.expired += r == kRowDeadlineExpired;
    }
    // Expired queries were shed before simulation, so they draw no energy.
    out.energy = bank_.totalPerSearch() * static_cast<double>(n - out.expired);
    out.latency = bank_.searchDelay;

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.queries += n;
        stats_.hits += out.hits;
        stats_.batches += 1;
        stats_.searchEnergy += out.energy;
        stats_.deadlineExpired += out.expired;
    }

    if (obsOn) {
        static obs::Counter& queries = obs::counter("serve.queries");
        static obs::Counter& hits = obs::counter("serve.hits");
        static obs::Counter& batches = obs::counter("serve.batches");
        static obs::Histogram& batchSeconds = obs::histogram("serve.batch.seconds");
        queries.add(static_cast<long long>(n));
        hits.add(static_cast<long long>(out.hits));
        batches.add();
        if (out.expired > 0) {
            static obs::Counter& deadlineExpired =
                obs::counter("serve.admission.deadline_expired");
            deadlineExpired.add(static_cast<long long>(out.expired));
        }
        const double dt = obs::monotonicSeconds() - t0;
        batchSeconds.observe(dt);
        if (dt > 0.0) obs::gauge("serve.qps").set(static_cast<double>(n) / dt);
    }
    return out;
}

SubmitResult QueryEngine::submitBatch(const std::vector<tcam::TernaryWord>& keys, int jobs) {
    return submitBatch(keys, SubmitOptions{}, jobs);
}

SubmitResult QueryEngine::submitBatch(const std::vector<tcam::TernaryWord>& keys,
                                      const SubmitOptions& opts, int jobs) {
    if (opts.deadlines && opts.deadlines->size() != keys.size())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "QueryEngine::submitBatch",
                                "deadlines must align with keys");
    const int limit = options_.admission.maxInFlightBatches;
    // fetch_add-then-check keeps the bound exact under races: whoever reads
    // a pre-increment count at or above the limit backs out, so at most
    // `limit` submissions ever run concurrently.
    if (inFlight_.fetch_add(1, std::memory_order_acq_rel) >= limit && limit > 0) {
        inFlight_.fetch_sub(1, std::memory_order_acq_rel);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.shed;
        }
        if (obs::enabled()) {
            static obs::Counter& shed = obs::counter("serve.admission.shed");
            shed.add();
        }
        return {BatchAdmission::Shed, {}};
    }

    // Admitted. Record how long the front-end's oldest query queued before
    // the engine picked the batch up — the satellite metric CI diffs under
    // load — and evaluate deadlines exactly once, at admission: a query
    // whose deadline has already passed is shed before any entry is scanned.
    const double now = obs::monotonicSeconds();
    if (obs::enabled() && opts.enqueuedAt > 0.0) {
        static obs::Histogram& queueWait = obs::histogram("serve.admission.queue_wait");
        queueWait.observe(std::max(0.0, now - opts.enqueuedAt));
    }
    std::vector<char> expired;
    bool anyExpired = false;
    if (opts.deadlines) {
        expired.resize(keys.size(), 0);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const double d = (*opts.deadlines)[i];
            if (d > 0.0 && now >= d) {
                expired[i] = 1;
                anyExpired = true;
            }
        }
    }

    SubmitResult out;
    try {
        out.result = searchBatchMasked(keys, anyExpired ? &expired : nullptr, jobs);
    } catch (...) {
        inFlight_.fetch_sub(1, std::memory_order_acq_rel);
        throw;
    }
    inFlight_.fetch_sub(1, std::memory_order_acq_rel);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.accepted;
    }
    if (obs::enabled()) {
        static obs::Counter& accepted = obs::counter("serve.admission.accepted");
        accepted.add();
    }
    return out;
}

EngineStats QueryEngine::stats() const {
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

std::string QueryEngine::report() const {
    const EngineStats s = stats();
    std::ostringstream os;
    os << "serve::QueryEngine " << capacity() << " words (" << shards() << " shards x "
       << rowsPerShard() << " rows, " << wordBits() << "b, "
       << backendName(backendKind()) << " backend)\n";
    os << "  occupancy      " << occupancy() << "\n";
    os << "  queries        " << s.queries << " (" << s.hits << " hits, "
       << s.batches << " batches)\n";
    os << "  admission      " << s.accepted << " accepted / " << s.shed << " shed / "
       << s.deadlineExpired << " deadline-expired\n";
    os << "  energy/query   " << core::engFormat(energyPerQuery(), "J") << "\n";
    os << "  query latency  " << core::engFormat(queryLatency(), "s") << "\n";
    os << "  search energy  " << core::engFormat(s.searchEnergy, "J") << "\n";
    return os.str();
}

}  // namespace fetcam::serve
