#include "serve/query_engine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/report.hpp"
#include "numeric/parallel.hpp"
#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::serve {

namespace {

std::shared_ptr<CharacterizationCache> makeCache(const EngineOptions& options) {
    if (options.store.enabled())
        return std::make_shared<CharacterizationCache>(options.store);
    return std::make_shared<CharacterizationCache>();
}

std::string tritsOf(const tcam::TernaryWord& word) {
    std::string trits(word.size(), '\0');
    for (std::size_t i = 0; i < word.size(); ++i)
        trits[i] = static_cast<char>(static_cast<int>(word[i]));
    return trits;
}

tcam::TernaryWord wordOf(const std::string& trits) {
    tcam::TernaryWord word(trits.size());
    for (std::size_t i = 0; i < trits.size(); ++i)
        word[i] = static_cast<tcam::Trit>(static_cast<unsigned char>(trits[i]));
    return word;
}

}  // namespace

QueryEngine::QueryEngine(EngineOptions options, std::shared_ptr<CharacterizationCache> cache)
    : options_(std::move(options)),
      cache_(cache ? std::move(cache) : makeCache(options_)) {
    if (options_.capacity < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "capacity must be >= 1");
    if (options_.capacity > kMaxCapacity)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "capacity exceeds functional storage limit (2^28 words)");
    if (options_.batchSize < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "batchSize must be >= 1");
    if (options_.admission.maxInFlightBatches < 0)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "admission.maxInFlightBatches must be >= 0");
    obs::SpanGuard span("serve.engine.build",
                        {{"capacity", static_cast<long long>(options_.capacity)},
                         {"wordBits", options_.shard.wordBits}});
    bank_ = evaluateBank(options_.tech, options_.shard, options_.capacity, options_.workload,
                         options_.encoder, recover::FailurePolicy::Strict,
                         cache_->provider());
    if (bank_.totalEntries > kMaxCapacity)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "provisioned capacity exceeds functional storage limit");
    capacity_ = bank_.totalEntries;
    rowsPerShard_ = bank_.rowsPerArray;

    // One backend per shard, so a mutation clones one shard, not the table.
    std::vector<std::unique_ptr<MatchBackend>> shards;
    shards.reserve(static_cast<std::size_t>(bank_.subArrays));
    for (std::int64_t s = 0; s < bank_.subArrays; ++s)
        shards.push_back(
            makeMatchBackend(options_.backend, rowsPerShard_, options_.shard.wordBits));

    // Replay any persisted entry deltas into the still-private shards, then
    // freeze them into the first published snapshot.
    attachTableLog(shards);

    auto table = std::make_shared<Table>();
    table->reserve(shards.size());
    for (auto& s : shards)
        table->push_back(std::shared_ptr<const MatchBackend>(std::move(s)));
    table_.store(std::move(table), std::memory_order_release);
}

QueryEngine::~QueryEngine() {
    try {
        flushTable();
    } catch (...) {
        // Destructor: best effort; complete frames are already buffered.
    }
}

void QueryEngine::attachTableLog(std::vector<std::unique_ptr<MatchBackend>>& shards) {
    if (!options_.persistEntries || !options_.store.enabled()) return;
    store::StoreConfig cfg = options_.store;
    cfg.schemaVersion = store::kTableSchemaVersion;
    cfg.logName = store::CharStore::kTableLogName;
    cfg.lockName = store::CharStore::kTableLockName;
    try {
        auto log = std::make_unique<store::CharStore>(cfg);
        const auto records = log->load();
        // Validate the whole history against this engine's geometry before
        // applying anything: a log from a different table shape degrades
        // cleanly instead of replaying a half-fitting prefix.
        std::vector<store::DeltaRecord> deltas;
        deltas.reserve(records.size());
        for (const auto& rec : records) {
            auto d = store::unpackDelta(rec);
            if (!d)
                throw recover::SimError(recover::SimErrorReason::CorruptData,
                                        "QueryEngine",
                                        "table delta record failed to unpack");
            if (d->row >= capacity_)
                throw recover::SimError(recover::SimErrorReason::CorruptData,
                                        "QueryEngine",
                                        "table delta row out of range for this geometry");
            if (d->op == store::DeltaOp::Insert &&
                static_cast<int>(d->trits.size()) != options_.shard.wordBits)
                throw recover::SimError(recover::SimErrorReason::CorruptData,
                                        "QueryEngine",
                                        "table delta word width mismatch");
            deltas.push_back(std::move(*d));
        }
        std::int64_t occupied = 0;
        for (const auto& d : deltas) {
            auto& shard = shards[static_cast<std::size_t>(d.row / rowsPerShard_)];
            const std::int64_t local = d.row % rowsPerShard_;
            if (d.op == store::DeltaOp::Insert) {
                if (!shard->at(local)) ++occupied;
                shard->set(local, wordOf(d.trits));
            } else if (shard->at(local)) {
                shard->clear(local);
                --occupied;
            }
        }
        occupied_.store(occupied, std::memory_order_relaxed);
        tableLogStatus_.attached = true;
        tableLogStatus_.readOnly = log->readOnly();
        tableLogStatus_.load = log->loadStats();
        tableLogStatus_.replayed = static_cast<std::int64_t>(deltas.size());
        tableLog_ = std::move(log);
    } catch (const recover::SimError& e) {
        // Typed degradation: serve the seed-empty table, entries memory-only.
        tableLogStatus_.attached = true;
        tableLogStatus_.readOnly = cfg.readOnly;
        tableLogStatus_.degraded = true;
        tableLogStatus_.errorReason = e.reason();
        tableLogStatus_.error = e.what();
        tableLog_.reset();
        occupied_.store(0, std::memory_order_relaxed);
        if (obs::enabled()) obs::counter("store.degraded").add();
    }
}

void QueryEngine::degradeTableLogLocked(const recover::SimError& e) {
    tableLogStatus_.degraded = true;
    tableLogStatus_.errorReason = e.reason();
    tableLogStatus_.error = e.what();
    tableLog_.reset();
    if (obs::enabled()) obs::counter("store.degraded").add();
}

void QueryEngine::checkRow(std::int64_t row) const {
    if (row < 0 || row >= capacity())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "QueryEngine",
                                "row out of range");
}

tcam::WordWriteResult QueryEngine::writeCostLocked() {
    if (!writeCost_) {
        const auto perBit = cache_->characterizeWrite(options_.shard.cell, options_.tech);
        writeCost_ =
            tcam::planWordWrite(options_.shard.cell, perBit, options_.shard.wordBits);
    }
    return *writeCost_;
}

tcam::WordWriteResult QueryEngine::writeCost() {
    std::lock_guard<std::mutex> lock(mutMutex_);
    return writeCostLocked();
}

sim::MlcCharacterization QueryEngine::simCostLocked() {
    if (!simCost_) {
        sim::MlcOptions mlc;
        mlc.bitsPerCell = options_.simBitsPerCell;
        mlc.workload = options_.workload;
        // The two calibration word sims route through the cache provider,
        // so the characterization is bit-identical cold/warm and replays
        // from the store with zero solver calls on a warm restart.
        simCost_ = sim::characterizeMlc(options_.tech, options_.shard, mlc,
                                        cache_->provider());
    }
    return *simCost_;
}

sim::MlcCharacterization QueryEngine::simCost() {
    std::lock_guard<std::mutex> lock(mutMutex_);
    return simCostLocked();
}

void QueryEngine::publishMutationLocked(const Table& table, std::int64_t row,
                                        const tcam::TernaryWord* word) {
    const auto shard = static_cast<std::size_t>(row / rowsPerShard_);
    const std::int64_t local = row % rowsPerShard_;
    auto next = std::make_shared<Table>(table);
    auto clone = table[shard]->clone();
    if (word)
        clone->set(local, *word);
    else
        clone->clear(local);
    (*next)[shard] = std::shared_ptr<const MatchBackend>(std::move(clone));
    table_.store(std::move(next), std::memory_order_release);
}

void QueryEngine::recordMutationLocked(bool isInsert, std::int64_t row,
                                       const tcam::TernaryWord* word) {
    const tcam::WordWriteResult cost = writeCostLocked();
    double accumulated = 0.0;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        if (isInsert)
            ++stats_.inserts;
        else
            ++stats_.erases;
        stats_.writeEnergy += cost.energy;
        stats_.writeLatency += cost.latency;
        stats_.writePulsePhases += cost.pulsePhases;
        accumulated = stats_.writeEnergy;
    }
    if (obs::enabled()) {
        static obs::Counter& inserts = obs::counter("serve.writes.inserts");
        static obs::Counter& erases = obs::counter("serve.writes.erases");
        (isInsert ? inserts : erases).add();
        obs::gauge("serve.write.energy").set(accumulated);
    }
    if (tableLog_ && !tableLog_->readOnly()) {
        store::DeltaRecord d;
        d.op = isInsert ? store::DeltaOp::Insert : store::DeltaOp::Erase;
        d.row = row;
        if (word) d.trits = tritsOf(*word);
        const store::Record rec = store::packDelta(d);
        try {
            tableLog_->append(rec.key, rec.payload);
            ++tableLogStatus_.appended;
        } catch (const recover::SimError& e) {
            degradeTableLogLocked(e);
        }
    }
}

std::int64_t QueryEngine::insert(const tcam::TernaryWord& word) {
    if (static_cast<int>(word.size()) != options_.shard.wordBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "QueryEngine::insert", "word width mismatch");
    std::lock_guard<std::mutex> lock(mutMutex_);
    const auto table = table_.load(std::memory_order_acquire);
    // Every row below freeHint_ is occupied (erase lowers the hint), so
    // starting the scan there assigns exactly the row a scan from 0 would.
    for (std::int64_t r = freeHint_; r < capacity_; ++r) {
        if ((*table)[static_cast<std::size_t>(r / rowsPerShard_)]->at(r % rowsPerShard_))
            continue;
        publishMutationLocked(*table, r, &word);
        occupied_.fetch_add(1, std::memory_order_relaxed);
        freeHint_ = r + 1;
        recordMutationLocked(/*isInsert=*/true, r, &word);
        return r;
    }
    throw std::length_error("QueryEngine::insert: engine full");
}

void QueryEngine::insertAt(std::int64_t row, const tcam::TernaryWord& word) {
    checkRow(row);
    if (static_cast<int>(word.size()) != options_.shard.wordBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "QueryEngine::insertAt", "word width mismatch");
    std::lock_guard<std::mutex> lock(mutMutex_);
    const auto table = table_.load(std::memory_order_acquire);
    const bool wasEmpty =
        !(*table)[static_cast<std::size_t>(row / rowsPerShard_)]->at(row % rowsPerShard_);
    publishMutationLocked(*table, row, &word);
    if (wasEmpty) occupied_.fetch_add(1, std::memory_order_relaxed);
    // Overwriting an occupied row is still a full word program — charge it.
    recordMutationLocked(/*isInsert=*/true, row, &word);
}

void QueryEngine::erase(std::int64_t row) {
    checkRow(row);
    std::lock_guard<std::mutex> lock(mutMutex_);
    const auto table = table_.load(std::memory_order_acquire);
    if (!(*table)[static_cast<std::size_t>(row / rowsPerShard_)]->at(row % rowsPerShard_))
        return;  // no-op: nothing stored, nothing charged, nothing logged
    publishMutationLocked(*table, row, nullptr);
    occupied_.fetch_sub(1, std::memory_order_relaxed);
    freeHint_ = std::min(freeHint_, row);
    recordMutationLocked(/*isInsert=*/false, row, nullptr);
}

std::optional<tcam::TernaryWord> QueryEngine::entryAt(std::int64_t row) const {
    checkRow(row);
    const auto table = table_.load(std::memory_order_acquire);
    return (*table)[static_cast<std::size_t>(row / rowsPerShard_)]->at(row % rowsPerShard_);
}

BatchResult QueryEngine::searchBatch(const std::vector<tcam::TernaryWord>& keys, int jobs) {
    return searchBatchMasked(keys, nullptr, jobs);
}

BatchResult QueryEngine::searchBatchMasked(const std::vector<tcam::TernaryWord>& keys,
                                           const std::vector<char>* expired, int jobs) {
    // Validate every key up front so a bad key fails before any accounting.
    for (const auto& key : keys)
        if (static_cast<int>(key.size()) != options_.shard.wordBits)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                    "QueryEngine::searchBatch", "key width mismatch");

    // One root load per batch: every tile and every shard scan below sees
    // the same table version, however many mutations land meanwhile — the
    // result is always valid at a single point in the mutation order.
    const std::shared_ptr<const Table> table = table_.load(std::memory_order_acquire);
    const Table& shardsRef = *table;

    const bool obsOn = obs::enabled();
    if (obsOn) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        if (shardHists_.empty()) {
            shardHists_.reserve(static_cast<std::size_t>(shards()));
            for (std::int64_t s = 0; s < shards(); ++s)
                shardHists_.push_back(
                    &obs::histogram("serve.shard" + std::to_string(s) + ".seconds"));
        }
    }
    const double t0 = obsOn ? obs::monotonicSeconds() : 0.0;

    BatchResult out;
    out.rows.assign(keys.size(), -1);

    const auto n = static_cast<std::int64_t>(keys.size());
    const std::int64_t tileSize = options_.batchSize;
    const auto tiles = static_cast<int>((n + tileSize - 1) / tileSize);
    const std::int64_t numShards = static_cast<std::int64_t>(shardsRef.size());

    // Fan the tiles out across the team. Each worker owns its tile's result
    // slots outright, and the shard scans inside a tile run in a fixed
    // order, so the merge below never depends on the schedule.
    const std::int64_t rowsPerShard = rowsPerShard_;
    const std::int64_t cap = capacity_;
    numeric::parallelFor(jobs, tiles, [&](int tile) {
        const std::int64_t lo = static_cast<std::int64_t>(tile) * tileSize;
        const std::int64_t hi = std::min(lo + tileSize, n);
        // Each key is decomposed once per tile (widths were validated above)
        // and the prepared form is reused across every shard scan.
        std::vector<PreparedKey> prepared;
        prepared.reserve(static_cast<std::size_t>(hi - lo));
        for (std::int64_t i = lo; i < hi; ++i)
            prepared.push_back(shardsRef[0]->prepare(keys[static_cast<std::size_t>(i)]));
        for (std::int64_t s = 0; s < numShards; ++s) {
            // Shard s holds global rows [s * rowsPerShard, ...) locally.
            const std::int64_t begin = s * rowsPerShard;
            const std::int64_t localEnd = std::min(rowsPerShard, cap - begin);
            const MatchBackend& shard = *shardsRef[static_cast<std::size_t>(s)];
            const double ts0 = obsOn ? obs::monotonicSeconds() : 0.0;
            for (std::int64_t i = lo; i < hi; ++i) {
                // Deadline-shed queries never reach the scan: mark and skip.
                if (expired && (*expired)[static_cast<std::size_t>(i)]) {
                    out.rows[static_cast<std::size_t>(i)] = kRowDeadlineExpired;
                    continue;
                }
                auto& best = out.rows[static_cast<std::size_t>(i)];
                // Shards cover ascending row ranges, so the first shard to
                // report a match holds the global winner: later shards
                // cannot beat it and are skipped.
                if (best >= 0) continue;
                const std::int64_t local =
                    shard.findFirst(0, localEnd, prepared[static_cast<std::size_t>(i - lo)]);
                if (local >= 0) best = begin + local;
            }
            if (obsOn && hi > lo)
                shardHists_[static_cast<std::size_t>(s)]->observe(
                    (obs::monotonicSeconds() - ts0) / static_cast<double>(hi - lo));
        }
    });

    for (const auto r : out.rows) {
        out.hits += r >= 0;
        out.expired += r == kRowDeadlineExpired;
    }
    // Expired queries were shed before simulation, so they draw no energy.
    out.energy = bank_.totalPerSearch() * static_cast<double>(n - out.expired);
    out.latency = bank_.searchDelay;

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.queries += n;
        stats_.hits += out.hits;
        stats_.batches += 1;
        stats_.searchEnergy += out.energy;
        stats_.deadlineExpired += out.expired;
    }

    if (obsOn) {
        static obs::Counter& queries = obs::counter("serve.queries");
        static obs::Counter& hits = obs::counter("serve.hits");
        static obs::Counter& batches = obs::counter("serve.batches");
        static obs::Histogram& batchSeconds = obs::histogram("serve.batch.seconds");
        queries.add(static_cast<long long>(n));
        hits.add(static_cast<long long>(out.hits));
        batches.add();
        if (out.expired > 0) {
            static obs::Counter& deadlineExpired =
                obs::counter("serve.admission.deadline_expired");
            deadlineExpired.add(static_cast<long long>(out.expired));
        }
        const double dt = obs::monotonicSeconds() - t0;
        batchSeconds.observe(dt);
        if (dt > 0.0) obs::gauge("serve.qps").set(static_cast<double>(n) / dt);
    }
    return out;
}

SimilarityBatchResult QueryEngine::similarityBatch(
    const std::vector<tcam::TernaryWord>& keys, const sim::SimilarityOptions& options,
    int jobs) {
    sim::validateSimilarityOptions(options);
    for (const auto& key : keys)
        if (static_cast<int>(key.size()) != options_.shard.wordBits)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                    "QueryEngine::similarityBatch", "key width mismatch");
    // Price the batch up front (validates the FeFET geometry too): the MLC
    // characterization is deterministic and cache-served, so doing it before
    // the fan-out keeps the parallel region free of cache traffic.
    const sim::MlcCharacterization cost = simCost();

    // One root load per batch — every tile and shard scan sees the same
    // table version (see searchBatchMasked).
    const std::shared_ptr<const Table> table = table_.load(std::memory_order_acquire);
    const Table& shardsRef = *table;

    const bool obsOn = obs::enabled();
    const double t0 = obsOn ? obs::monotonicSeconds() : 0.0;

    SimilarityBatchResult out;
    out.hits.resize(keys.size());

    const auto n = static_cast<std::int64_t>(keys.size());
    const std::int64_t tileSize = options_.batchSize;
    const auto tiles = static_cast<int>((n + tileSize - 1) / tileSize);
    const std::int64_t numShards = static_cast<std::int64_t>(shardsRef.size());
    const std::int64_t rowsPerShard = rowsPerShard_;
    const std::int64_t cap = capacity_;

    // Tiles fan out across the team; each worker owns its tile's hit slots.
    // Unlike the priority search there is no early-out: a nearer row can
    // live in any shard, so every shard contributes its counts. Shards are
    // scanned in ascending order and the selector's (distance, row) order
    // is total, so the merged result is schedule-independent.
    numeric::parallelFor(jobs, tiles, [&](int tile) {
        const std::int64_t lo = static_cast<std::int64_t>(tile) * tileSize;
        const std::int64_t hi = std::min(lo + tileSize, n);
        std::vector<PreparedKey> prepared;
        prepared.reserve(static_cast<std::size_t>(hi - lo));
        std::vector<sim::TopSelector> selectors;
        selectors.reserve(static_cast<std::size_t>(hi - lo));
        for (std::int64_t i = lo; i < hi; ++i) {
            prepared.push_back(shardsRef[0]->prepare(keys[static_cast<std::size_t>(i)]));
            selectors.emplace_back(options);
        }
        std::vector<std::size_t> counts(static_cast<std::size_t>(rowsPerShard));
        for (std::int64_t s = 0; s < numShards; ++s) {
            const std::int64_t begin = s * rowsPerShard;
            const std::int64_t localEnd = std::min(rowsPerShard, cap - begin);
            const MatchBackend& shard = *shardsRef[static_cast<std::size_t>(s)];
            for (std::int64_t i = lo; i < hi; ++i) {
                shard.mismatchCounts(prepared[static_cast<std::size_t>(i - lo)],
                                     counts.data());
                auto& sel = selectors[static_cast<std::size_t>(i - lo)];
                for (std::int64_t r = 0; r < localEnd; ++r) {
                    const std::size_t d = counts[static_cast<std::size_t>(r)];
                    if (d == tcam::kNoEntry) continue;  // empty row
                    sel.consider(begin + r, d);
                }
            }
        }
        for (std::int64_t i = lo; i < hi; ++i)
            out.hits[static_cast<std::size_t>(i)] =
                selectors[static_cast<std::size_t>(i - lo)].take();
    });

    for (const auto& hits : out.hits)
        out.rowsReturned += static_cast<std::int64_t>(hits.size());
    out.energy = cost.energyPerSearchJ * static_cast<double>(n);
    out.latency = cost.searchDelay;

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.simQueries += n;
        stats_.simBatches += 1;
        stats_.simRows += out.rowsReturned;
        stats_.simEnergy += out.energy;
    }
    if (obsOn) {
        static obs::Counter& queries = obs::counter("serve.sim.queries");
        static obs::Counter& batches = obs::counter("serve.sim.batches");
        static obs::Counter& rows = obs::counter("serve.sim.rows");
        static obs::Histogram& batchSeconds = obs::histogram("serve.sim.batch.seconds");
        queries.add(static_cast<long long>(n));
        batches.add();
        rows.add(static_cast<long long>(out.rowsReturned));
        double accumulated = 0.0;
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            accumulated = stats_.simEnergy;
        }
        obs::gauge("serve.sim.energy").set(accumulated);
        batchSeconds.observe(obs::monotonicSeconds() - t0);
    }
    return out;
}

sim::SimilarityHits QueryEngine::nearestK(const tcam::TernaryWord& key, int k) {
    sim::SimilarityOptions options;
    options.kind = sim::SimilarityKind::NearestK;
    options.k = k;
    if (k > 0 && static_cast<std::size_t>(k) > options.maxResults)
        options.maxResults = static_cast<std::size_t>(k);
    return similarityBatch({key}, options).hits[0];
}

sim::SimilarityHits QueryEngine::thresholdMatch(const tcam::TernaryWord& key,
                                                std::size_t maxDistance) {
    sim::SimilarityOptions options;
    options.kind = sim::SimilarityKind::Threshold;
    options.maxDistance = maxDistance;
    return similarityBatch({key}, options).hits[0];
}

SubmitResult QueryEngine::submitBatch(const std::vector<tcam::TernaryWord>& keys, int jobs) {
    return submitBatch(keys, SubmitOptions{}, jobs);
}

SubmitResult QueryEngine::submitBatch(const std::vector<tcam::TernaryWord>& keys,
                                      const SubmitOptions& opts, int jobs) {
    if (opts.deadlines && opts.deadlines->size() != keys.size())
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "QueryEngine::submitBatch",
                                "deadlines must align with keys");
    const int limit = options_.admission.maxInFlightBatches;
    // fetch_add-then-check keeps the bound exact under races: whoever reads
    // a pre-increment count at or above the limit backs out, so at most
    // `limit` submissions ever run concurrently.
    if (inFlight_.fetch_add(1, std::memory_order_acq_rel) >= limit && limit > 0) {
        inFlight_.fetch_sub(1, std::memory_order_acq_rel);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.shed;
        }
        if (obs::enabled()) {
            static obs::Counter& shed = obs::counter("serve.admission.shed");
            shed.add();
        }
        return {BatchAdmission::Shed, {}};
    }

    // Admitted. Record how long the front-end's oldest query queued before
    // the engine picked the batch up — the satellite metric CI diffs under
    // load — and evaluate deadlines exactly once, at admission: a query
    // whose deadline has already passed is shed before any entry is scanned.
    const double now = obs::monotonicSeconds();
    if (obs::enabled() && opts.enqueuedAt > 0.0) {
        static obs::Histogram& queueWait = obs::histogram("serve.admission.queue_wait");
        queueWait.observe(std::max(0.0, now - opts.enqueuedAt));
    }
    std::vector<char> expired;
    bool anyExpired = false;
    if (opts.deadlines) {
        expired.resize(keys.size(), 0);
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const double d = (*opts.deadlines)[i];
            if (d > 0.0 && now >= d) {
                expired[i] = 1;
                anyExpired = true;
            }
        }
    }

    SubmitResult out;
    try {
        out.result = searchBatchMasked(keys, anyExpired ? &expired : nullptr, jobs);
    } catch (...) {
        inFlight_.fetch_sub(1, std::memory_order_acq_rel);
        throw;
    }
    inFlight_.fetch_sub(1, std::memory_order_acq_rel);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.accepted;
    }
    if (obs::enabled()) {
        static obs::Counter& accepted = obs::counter("serve.admission.accepted");
        accepted.add();
    }
    return out;
}

std::int64_t QueryEngine::restoredMutations() const {
    std::lock_guard<std::mutex> lock(mutMutex_);
    return tableLogStatus_.replayed;
}

TableLogStatus QueryEngine::tableLogStatus() const {
    std::lock_guard<std::mutex> lock(mutMutex_);
    return tableLogStatus_;
}

void QueryEngine::flushTable() {
    std::lock_guard<std::mutex> lock(mutMutex_);
    if (!tableLog_ || tableLog_->readOnly()) return;
    try {
        tableLog_->flush();
    } catch (const recover::SimError& e) {
        degradeTableLogLocked(e);
    }
}

bool QueryEngine::compactTable() {
    std::lock_guard<std::mutex> lock(mutMutex_);
    if (!tableLog_ || tableLog_->readOnly()) return false;
    const auto table = table_.load(std::memory_order_acquire);
    std::vector<store::Record> records;
    records.reserve(static_cast<std::size_t>(occupied_.load(std::memory_order_relaxed)));
    for (std::int64_t row = 0; row < capacity_; ++row) {
        const auto& entry =
            (*table)[static_cast<std::size_t>(row / rowsPerShard_)]->at(row % rowsPerShard_);
        if (!entry) continue;
        store::DeltaRecord d;
        d.op = store::DeltaOp::Insert;
        d.row = row;
        d.trits = tritsOf(*entry);
        records.push_back(store::packDelta(d));
    }
    try {
        tableLog_->compact(records);
    } catch (const recover::SimError& e) {
        degradeTableLogLocked(e);
        return false;
    }
    return true;
}

EngineStats QueryEngine::stats() const {
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

std::string QueryEngine::report() const {
    const EngineStats s = stats();
    std::ostringstream os;
    os << "serve::QueryEngine " << capacity() << " words (" << shards() << " shards x "
       << rowsPerShard() << " rows, " << wordBits() << "b, "
       << backendName(backendKind()) << " backend)\n";
    os << "  occupancy      " << occupancy() << "\n";
    os << "  queries        " << s.queries << " (" << s.hits << " hits, "
       << s.batches << " batches)\n";
    os << "  admission      " << s.accepted << " accepted / " << s.shed << " shed / "
       << s.deadlineExpired << " deadline-expired\n";
    os << "  writes         " << s.inserts << " inserts / " << s.erases << " erases\n";
    os << "  similarity     " << s.simQueries << " queries (" << s.simRows << " rows, "
       << s.simBatches << " batches)\n";
    os << "  energy/query   " << core::engFormat(energyPerQuery(), "J") << "\n";
    os << "  query latency  " << core::engFormat(queryLatency(), "s") << "\n";
    os << "  search energy  " << core::engFormat(s.searchEnergy, "J") << "\n";
    os << "  write energy   " << core::engFormat(s.writeEnergy, "J") << "\n";
    return os.str();
}

}  // namespace fetcam::serve
