// QueryEngine: the serving half of the characterize-then-serve split.
//
// Separates what a production TCAM service actually does per query —
// *functional* ternary match over the stored words (exact, per the F9
// golden-model cross-checks) — from *electrical costing* (energy / delay /
// margin), which comes from the characterization cache and is charged
// analytically per query without ever touching the solver.
//
// Organization mirrors the hardware (and the F14 bank model):
//   * entries shard across sub-array banks (`options.shard.rows` rows each),
//   * incoming queries batch, and batches fan out across worker threads with
//     numeric::parallelFor (deterministic for any jobs value),
//   * every shard reports its local priority-encoder result (lowest matching
//     row) and a merge stage picks the globally lowest row, exactly like the
//     two-level priority encoder the bank model prices,
//   * the scan itself runs on a pluggable MatchBackend — bit-plane
//     (value/care bit-slices, 64 entries per machine word) by default, with
//     the scalar row-scan kept as a bit-identical cross-check oracle and a
//     checked mode that runs both (see match_backend.hpp).
//
// Concurrency: mutations are safe while batches are in flight. The table is
// one atomically-published snapshot — a shared_ptr to an immutable vector of
// per-shard MatchBackend snapshots. A search loads that root pointer once
// per batch and scans a fully consistent version of every shard; a mutation
// (serialized by a writer mutex) clones only the affected shard, swaps the
// root, and never blocks readers. Publishing the whole table through a
// single root — rather than one atomic pointer per shard — is what makes a
// cross-shard search linearizable: with per-shard pointers an ascending scan
// could mix shard versions and report a result that was valid at no single
// point in the mutation order. Retired snapshots are reclaimed by
// shared_ptr refcounts once the last in-flight batch drops them (RCU with
// reference counting standing in for grace periods). Lock order:
// mutMutex_ before statsMutex_; searches take only statsMutex_.
//
// Write costing: every effective mutation is charged its real program/erase
// cost — tcam::measureWriteEnergy per bit (served through the
// characterization cache, so it is persisted and replayed like search
// characterizations) scheduled across the word by tcam::planWordWrite, which
// models each technology's pulse parallelism (FeFET two word-parallel
// phases, ReRAM current-limited groups, CMOS single-cycle). Accumulated in
// EngineStats and the serve.writes.* / serve.write.energy obs metrics.
//
// Persistence: EngineOptions.store names a characterization-store directory;
// when set (and no shared cache is passed in) the engine builds on a
// store-backed cache, so a restarted service replays prior characterizations
// from disk instead of re-running the solver — bit-identical by the same
// provider contract that makes the in-memory cache invisible. With
// EngineOptions.persistEntries the same directory additionally carries an
// entry delta log (store/delta_log.hpp): every insert/erase appends a
// CRC-framed record, and a restarted engine replays the *mutated* table
// bit-identically before serving. A log that fails to open, or whose
// records do not fit this engine's geometry, degrades to memory-only
// entries with a typed error in tableLogStatus() — never a wrong table.
//
// Admission control: submitBatch() bounds the number of concurrently
// in-flight batches (EngineOptions.admission) and sheds the excess with a
// typed result instead of queueing unboundedly — what a loaded service does
// when offered queries/s exceeds what the worker team sustains.
//
// obs integration (when obs::enabled()): serve.queries / serve.hits /
// serve.batches counters, serve.admission.accepted / serve.admission.shed,
// serve.writes.inserts / serve.writes.erases, a serve.write.energy gauge,
// serve.qps, a serve.batch.seconds histogram, per-shard
// serve.shard<i>.seconds latency histograms, serve.cache.* from the
// underlying cache, and store.* from its persistent backing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "array/bank.hpp"
#include "serve/char_cache.hpp"
#include "serve/match_backend.hpp"
#include "sim/mlc_model.hpp"
#include "sim/similarity.hpp"
#include "store/delta_log.hpp"
#include "tcam/write_schedule.hpp"

namespace fetcam::obs {
class Histogram;
}

namespace fetcam::serve {

struct AdmissionOptions {
    /// Batches allowed in flight at once through submitBatch(); offered
    /// batches beyond this are shed with a typed result. 0 = unbounded.
    int maxInFlightBatches = 0;
};

struct EngineOptions {
    device::TechCard tech = device::TechCard::cmos45();
    /// Per-shard sub-array geometry; shard.rows is the shard size.
    array::ArrayConfig shard;
    /// Total words the engine must hold (rounded up to whole shards).
    std::int64_t capacity = 0;
    array::WorkloadProfile workload;
    array::PriorityEncoderModel encoder;
    /// Queries per fan-out tile: batches split into tiles of this many
    /// queries and tiles run across the worker team.
    int batchSize = 4096;
    /// Persistent characterization store (store.dir empty = memory-only).
    /// Only consulted when no shared cache is passed to the constructor.
    store::StoreConfig store;
    /// Also persist the entry table as a delta log in store.dir: mutations
    /// append insert/erase records and construction replays them, so a warm
    /// restart serves the mutated table (see tableLogStatus()). Requires
    /// store.dir; ignored without it.
    bool persistEntries = false;
    AdmissionOptions admission;
    /// Functional match implementation: bit-plane (64 entries per machine
    /// word, the default), the scalar row-scan oracle, or checked (both,
    /// cross-asserted per query). All three are bit-identical.
    MatchBackendKind backend = MatchBackendKind::BitPlane;
    /// Bits per FeFET cell the similarity queries are priced at (the MLC
    /// ladder; 1 = binary cells). Functional similarity results never
    /// depend on it — only energy/latency/margin accounting does. The MLC
    /// characterization is lazy: engines that never serve a similarity
    /// query never pay for it (and non-FeFET geometries only reject
    /// similarity queries, not construction).
    int simBitsPerCell = 2;
};

/// Per-query row sentinel: the query's deadline expired before the scan, so
/// it was shed without touching the entries (no scan work, no energy).
inline constexpr std::int64_t kRowDeadlineExpired = -2;

/// Result of one batched search. `rows[i]` is the globally lowest matching
/// row for keys[i], -1 when nothing matched — what the hardware priority
/// encoder would report — and kRowDeadlineExpired (-2) when the query's
/// deadline passed before simulation and it was shed unscanned.
struct BatchResult {
    std::vector<std::int64_t> rows;
    std::int64_t hits = 0;
    std::int64_t expired = 0;  ///< queries shed by their deadline (rows[i] == -2)
    double energy = 0.0;   ///< whole-batch search energy [J], executed queries only
    double latency = 0.0;  ///< per-query hardware latency [s]
};

/// Result of one batched similarity search. hits[i] holds keys[i]'s rows,
/// best-first by (distance, row) — see sim::SimilarityOptions for the two
/// query kinds and the ordering contract.
struct SimilarityBatchResult {
    std::vector<sim::SimilarityHits> hits;
    std::int64_t rowsReturned = 0;  ///< total hits across the batch
    double energy = 0.0;   ///< whole-batch MLC search energy [J]
    double latency = 0.0;  ///< per-query hardware latency [s]
};

struct EngineStats {
    std::int64_t queries = 0;
    std::int64_t hits = 0;
    std::int64_t batches = 0;
    double searchEnergy = 0.0;  ///< [J] accumulated
    std::int64_t accepted = 0;  ///< batches admitted through submitBatch
    std::int64_t shed = 0;      ///< batches refused by admission control
    std::int64_t deadlineExpired = 0;  ///< queries shed by their deadline
    // --- mutation accounting (each effective insert/erase is charged the
    // --- full word program/erase sequence from tcam::planWordWrite) ---
    std::int64_t inserts = 0;        ///< effective insert/insertAt mutations
    std::int64_t erases = 0;         ///< effective erases (occupied rows only)
    double writeEnergy = 0.0;        ///< [J] accumulated program/erase energy
    double writeLatency = 0.0;       ///< [s] accumulated write-sequence time
    std::int64_t writePulsePhases = 0;  ///< sequential pulse groups issued
    // --- similarity accounting (nearestK / thresholdMatch) ---
    std::int64_t simQueries = 0;  ///< similarity keys served
    std::int64_t simBatches = 0;  ///< similarityBatch calls
    std::int64_t simRows = 0;     ///< hit rows returned across all queries
    double simEnergy = 0.0;       ///< [J] accumulated MLC search energy
};

/// Health of the persistent entry delta log (tableLogStatus()).
struct TableLogStatus {
    bool attached = false;  ///< persistEntries was requested with a store dir
    bool readOnly = false;
    bool degraded = false;  ///< open/load/replay failed; entries memory-only
    recover::SimErrorReason errorReason = recover::SimErrorReason::IoError;
    std::string error;  ///< empty when healthy
    store::LoadStats load;
    std::int64_t replayed = 0;  ///< delta records applied at construction
    std::int64_t appended = 0;  ///< delta records written by this engine
};

/// Typed outcome of an admission-controlled submission.
enum class BatchAdmission {
    Accepted,  ///< ran; `result` is valid
    Shed,      ///< refused: too many batches already in flight
};

struct SubmitResult {
    BatchAdmission admission = BatchAdmission::Accepted;
    BatchResult result;  ///< valid only when admitted
    bool admitted() const { return admission == BatchAdmission::Accepted; }
};

/// Deadline / queueing context a front-end attaches to a submission. All
/// times are absolute obs::monotonicSeconds() values.
struct SubmitOptions {
    /// Per-query absolute deadlines aligned with `keys` (0 = no deadline for
    /// that query); queries whose deadline has already passed at admission
    /// are shed *before* any entry is scanned (rows[i] = kRowDeadlineExpired)
    /// and charged no search energy. nullptr = no deadlines.
    const std::vector<double>* deadlines = nullptr;
    /// When the front-end first queued the batch's oldest query; > 0 feeds
    /// the serve.admission.queue_wait histogram at admission time.
    double enqueuedAt = 0.0;
};

class QueryEngine {
public:
    /// Functional storage ceiling (same rationale as TcamMacro's).
    static constexpr std::int64_t kMaxCapacity = std::int64_t{1} << 28;

    /// Characterizes the bank up front through `cache` (shared across
    /// engines to amortize; when omitted, a private cache is created —
    /// store-backed if options.store.dir is set). After construction,
    /// serving never runs the solver.
    explicit QueryEngine(EngineOptions options,
                         std::shared_ptr<CharacterizationCache> cache = {});

    ~QueryEngine();

    // --- entry management (global row index = priority, lowest wins) ---
    // Safe to call while batches are in flight: mutations publish a new
    // table snapshot; searches keep scanning the one they loaded.
    std::int64_t insert(const tcam::TernaryWord& word);  ///< first free row
    void insertAt(std::int64_t row, const tcam::TernaryWord& word);
    void erase(std::int64_t row);
    /// Entry at `row`, by value: a consistent snapshot read that stays valid
    /// however the table is mutated afterwards.
    std::optional<tcam::TernaryWord> entryAt(std::int64_t row) const;

    // --- serving ---
    /// Batched priority search across `jobs` workers (0 = process default).
    /// Results and accounting are bit-identical for any jobs value and for
    /// cold vs. warm caches. Concurrent mutations are safe: the whole batch
    /// sees one consistent table version.
    BatchResult searchBatch(const std::vector<tcam::TernaryWord>& keys, int jobs = 0);

    /// searchBatch behind admission control: when
    /// options.admission.maxInFlightBatches concurrent submissions are
    /// already running, the batch is shed (typed result, no partial work, no
    /// query accounting) instead of queueing. Thread-safe, including against
    /// concurrent entry mutations.
    SubmitResult submitBatch(const std::vector<tcam::TernaryWord>& keys, int jobs = 0);

    /// submitBatch with deadline / queue-wait context: queries whose
    /// deadline expired before admission are shed unscanned (see
    /// SubmitOptions), counted in stats().deadlineExpired and the
    /// serve.admission.deadline_expired counter. `opts.deadlines`, when set,
    /// must be keys.size() long.
    SubmitResult submitBatch(const std::vector<tcam::TernaryWord>& keys,
                             const SubmitOptions& opts, int jobs = 0);

    /// Batches currently inside submitBatch (admission gauge).
    int inFlightBatches() const { return inFlight_.load(std::memory_order_relaxed); }

    // --- similarity serving (the second product surface) ---
    /// Batched similarity search: every key gets its best-first hit list
    /// per `options` (NearestK or Threshold), computed over one consistent
    /// table snapshot with the bit-sliced mismatchCounts kernel. Same
    /// determinism contract as searchBatch — bit-identical for any jobs
    /// value, any backend, cold/warm cache, and across warm restarts.
    /// Requires an FeFET shard geometry (the MLC pricing);
    /// throws SimError(InvalidSpec) otherwise or on bad options/widths.
    SimilarityBatchResult similarityBatch(const std::vector<tcam::TernaryWord>& keys,
                                          const sim::SimilarityOptions& options,
                                          int jobs = 0);

    /// The k Hamming-nearest rows to `key`, best-first by (distance, row).
    /// Fewer than k hits when occupancy < k.
    sim::SimilarityHits nearestK(const tcam::TernaryWord& key, int k);

    /// Every row within `maxDistance` of `key`, best-first, capped at
    /// sim::SimilarityOptions{}.maxResults rows.
    sim::SimilarityHits thresholdMatch(const tcam::TernaryWord& key,
                                       std::size_t maxDistance);

    /// MLC characterization similarity queries are priced at
    /// (options.simBitsPerCell). Lazy, cached, served through the
    /// characterization cache — zero solver calls on a warm store.
    sim::MlcCharacterization simCost();

    // --- introspection ---
    std::int64_t capacity() const { return capacity_; }
    std::int64_t occupancy() const { return occupied_.load(std::memory_order_relaxed); }
    MatchBackendKind backendKind() const { return options_.backend; }
    int wordBits() const { return options_.shard.wordBits; }
    std::int64_t shards() const { return bank_.subArrays; }
    std::int64_t rowsPerShard() const { return bank_.rowsPerArray; }
    const array::BankMetrics& hardware() const { return bank_; }
    double energyPerQuery() const { return bank_.totalPerSearch(); }
    double queryLatency() const { return bank_.searchDelay; }
    /// Price of one word mutation (program/erase sequence) on this
    /// geometry/technology — what each effective insert/erase is charged.
    /// Characterized lazily through the cache on first use.
    tcam::WordWriteResult writeCost();
    EngineStats stats() const;
    const std::shared_ptr<CharacterizationCache>& cache() const { return cache_; }
    /// Persistence health of the underlying cache (memory-only when the
    /// engine was built without a store).
    StoreStatus storeStatus() const { return cache_->storeStatus(); }

    // --- entry persistence (persistEntries) ---
    /// Delta records replayed into the table at construction (0 for a cold
    /// start or when persistence is off/degraded).
    std::int64_t restoredMutations() const;
    TableLogStatus tableLogStatus() const;
    /// Push write-behind delta appends to disk (no-op without a log).
    void flushTable();
    /// Snapshot the occupied rows into a deduplicated delta log, atomically
    /// replacing the append history. False (doing nothing) without a
    /// writable log.
    bool compactTable();

    /// Deterministic text report: geometry, served-query accounting and the
    /// per-query hardware price. Identical for cold/warm caches and any
    /// jobs value (cache and wall-clock stats deliberately excluded).
    std::string report() const;

private:
    /// The published table: one immutable snapshot per shard. Readers load
    /// the root once per batch; writers clone-and-swap under mutMutex_.
    using Table = std::vector<std::shared_ptr<const MatchBackend>>;

    void checkRow(std::int64_t row) const;
    /// searchBatch with an optional per-query skip mask (expired deadlines):
    /// masked queries get kRowDeadlineExpired without being scanned.
    BatchResult searchBatchMasked(const std::vector<tcam::TernaryWord>& keys,
                                  const std::vector<char>* expired, int jobs);
    /// Clone the affected shard, mutate it, publish the new table. Caller
    /// holds mutMutex_. `word` null = clear the row.
    void publishMutationLocked(const Table& table, std::int64_t row,
                               const tcam::TernaryWord* word);
    /// Charge one effective mutation: write cost into stats_ + obs, delta
    /// record into the table log. Caller holds mutMutex_.
    void recordMutationLocked(bool isInsert, std::int64_t row,
                              const tcam::TernaryWord* word);
    tcam::WordWriteResult writeCostLocked();
    sim::MlcCharacterization simCostLocked();
    /// Open the delta log and replay it into the pre-publication shards.
    /// Constructor-only (no concurrency yet).
    void attachTableLog(std::vector<std::unique_ptr<MatchBackend>>& shards);
    void degradeTableLogLocked(const recover::SimError& e);

    EngineOptions options_;
    std::shared_ptr<CharacterizationCache> cache_;
    array::BankMetrics bank_;
    std::int64_t capacity_ = 0;       ///< bank_.totalEntries
    std::int64_t rowsPerShard_ = 0;   ///< bank_.rowsPerArray
    /// Entry storage root. Readers: one acquire load per batch. Writers:
    /// copy-on-write swap under mutMutex_.
    std::atomic<std::shared_ptr<const Table>> table_;
    std::atomic<std::int64_t> occupied_{0};
    mutable std::mutex mutMutex_;  ///< serializes writers (and the fields below)
    /// First-free-row search hint: every row < freeHint_ is occupied.
    /// insert() scans from here instead of row 0 (erase lowers it), which
    /// keeps row assignment identical to a scan-from-0 while making a full
    /// table's Nth insert O(1) instead of O(capacity).
    std::int64_t freeHint_ = 0;
    std::optional<tcam::WordWriteResult> writeCost_;  ///< lazy, cached
    std::optional<sim::MlcCharacterization> simCost_;  ///< lazy, cached
    std::unique_ptr<store::CharStore> tableLog_;  ///< null when not persisting
    TableLogStatus tableLogStatus_;
    mutable std::mutex statsMutex_;  ///< guards stats_ + shardHists_ init
    EngineStats stats_;
    std::atomic<int> inFlight_{0};
    std::vector<obs::Histogram*> shardHists_;  ///< filled lazily when obs is on
};

}  // namespace fetcam::serve
