// QueryEngine: the serving half of the characterize-then-serve split.
//
// Separates what a production TCAM service actually does per query —
// *functional* ternary match over the stored words (exact, per the F9
// golden-model cross-checks) — from *electrical costing* (energy / delay /
// margin), which comes from the characterization cache and is charged
// analytically per query without ever touching the solver.
//
// Organization mirrors the hardware (and the F14 bank model):
//   * entries shard across sub-array banks (`options.shard.rows` rows each),
//   * incoming queries batch, and batches fan out across worker threads with
//     numeric::parallelFor (deterministic for any jobs value),
//   * every shard reports its local priority-encoder result (lowest matching
//     row) and a merge stage picks the globally lowest row, exactly like the
//     two-level priority encoder the bank model prices,
//   * the scan itself runs on a pluggable MatchBackend — bit-plane
//     (value/care bit-slices, 64 entries per machine word) by default, with
//     the scalar row-scan kept as a bit-identical cross-check oracle and a
//     checked mode that runs both (see match_backend.hpp).
//
// Persistence: EngineOptions.store names a characterization-store directory;
// when set (and no shared cache is passed in) the engine builds on a
// store-backed cache, so a restarted service replays prior characterizations
// from disk instead of re-running the solver — bit-identical by the same
// provider contract that makes the in-memory cache invisible.
//
// Admission control: submitBatch() bounds the number of concurrently
// in-flight batches (EngineOptions.admission) and sheds the excess with a
// typed result instead of queueing unboundedly — what a loaded service does
// when offered queries/s exceeds what the worker team sustains.
//
// obs integration (when obs::enabled()): serve.queries / serve.hits /
// serve.batches counters, serve.admission.accepted / serve.admission.shed,
// serve.qps gauge, a serve.batch.seconds histogram, per-shard
// serve.shard<i>.seconds latency histograms, serve.cache.* from the
// underlying cache, and store.* from its persistent backing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "array/bank.hpp"
#include "serve/char_cache.hpp"
#include "serve/match_backend.hpp"

namespace fetcam::obs {
class Histogram;
}

namespace fetcam::serve {

struct AdmissionOptions {
    /// Batches allowed in flight at once through submitBatch(); offered
    /// batches beyond this are shed with a typed result. 0 = unbounded.
    int maxInFlightBatches = 0;
};

struct EngineOptions {
    device::TechCard tech = device::TechCard::cmos45();
    /// Per-shard sub-array geometry; shard.rows is the shard size.
    array::ArrayConfig shard;
    /// Total words the engine must hold (rounded up to whole shards).
    std::int64_t capacity = 0;
    array::WorkloadProfile workload;
    array::PriorityEncoderModel encoder;
    /// Queries per fan-out tile: batches split into tiles of this many
    /// queries and tiles run across the worker team.
    int batchSize = 4096;
    /// Persistent characterization store (store.dir empty = memory-only).
    /// Only consulted when no shared cache is passed to the constructor.
    store::StoreConfig store;
    AdmissionOptions admission;
    /// Functional match implementation: bit-plane (64 entries per machine
    /// word, the default), the scalar row-scan oracle, or checked (both,
    /// cross-asserted per query). All three are bit-identical.
    MatchBackendKind backend = MatchBackendKind::BitPlane;
};

/// Per-query row sentinel: the query's deadline expired before the scan, so
/// it was shed without touching the entries (no scan work, no energy).
inline constexpr std::int64_t kRowDeadlineExpired = -2;

/// Result of one batched search. `rows[i]` is the globally lowest matching
/// row for keys[i], -1 when nothing matched — what the hardware priority
/// encoder would report — and kRowDeadlineExpired (-2) when the query's
/// deadline passed before simulation and it was shed unscanned.
struct BatchResult {
    std::vector<std::int64_t> rows;
    std::int64_t hits = 0;
    std::int64_t expired = 0;  ///< queries shed by their deadline (rows[i] == -2)
    double energy = 0.0;   ///< whole-batch search energy [J], executed queries only
    double latency = 0.0;  ///< per-query hardware latency [s]
};

struct EngineStats {
    std::int64_t queries = 0;
    std::int64_t hits = 0;
    std::int64_t batches = 0;
    double searchEnergy = 0.0;  ///< [J] accumulated
    std::int64_t accepted = 0;  ///< batches admitted through submitBatch
    std::int64_t shed = 0;      ///< batches refused by admission control
    std::int64_t deadlineExpired = 0;  ///< queries shed by their deadline
};

/// Typed outcome of an admission-controlled submission.
enum class BatchAdmission {
    Accepted,  ///< ran; `result` is valid
    Shed,      ///< refused: too many batches already in flight
};

struct SubmitResult {
    BatchAdmission admission = BatchAdmission::Accepted;
    BatchResult result;  ///< valid only when admitted
    bool admitted() const { return admission == BatchAdmission::Accepted; }
};

/// Deadline / queueing context a front-end attaches to a submission. All
/// times are absolute obs::monotonicSeconds() values.
struct SubmitOptions {
    /// Per-query absolute deadlines aligned with `keys` (0 = no deadline for
    /// that query); queries whose deadline has already passed at admission
    /// are shed *before* any entry is scanned (rows[i] = kRowDeadlineExpired)
    /// and charged no search energy. nullptr = no deadlines.
    const std::vector<double>* deadlines = nullptr;
    /// When the front-end first queued the batch's oldest query; > 0 feeds
    /// the serve.admission.queue_wait histogram at admission time.
    double enqueuedAt = 0.0;
};

class QueryEngine {
public:
    /// Functional storage ceiling (same rationale as TcamMacro's).
    static constexpr std::int64_t kMaxCapacity = std::int64_t{1} << 28;

    /// Characterizes the bank up front through `cache` (shared across
    /// engines to amortize; when omitted, a private cache is created —
    /// store-backed if options.store.dir is set). After construction,
    /// serving never runs the solver.
    explicit QueryEngine(EngineOptions options,
                         std::shared_ptr<CharacterizationCache> cache = {});

    // --- entry management (global row index = priority, lowest wins) ---
    std::int64_t insert(const tcam::TernaryWord& word);  ///< first free row
    void insertAt(std::int64_t row, const tcam::TernaryWord& word);
    void erase(std::int64_t row);
    const std::optional<tcam::TernaryWord>& entryAt(std::int64_t row) const;

    // --- serving ---
    /// Batched priority search across `jobs` workers (0 = process default).
    /// Results and accounting are bit-identical for any jobs value and for
    /// cold vs. warm caches.
    BatchResult searchBatch(const std::vector<tcam::TernaryWord>& keys, int jobs = 0);

    /// searchBatch behind admission control: when
    /// options.admission.maxInFlightBatches concurrent submissions are
    /// already running, the batch is shed (typed result, no partial work, no
    /// query accounting) instead of queueing. Thread-safe; entries must not
    /// be mutated concurrently with serving.
    SubmitResult submitBatch(const std::vector<tcam::TernaryWord>& keys, int jobs = 0);

    /// submitBatch with deadline / queue-wait context: queries whose
    /// deadline expired before admission are shed unscanned (see
    /// SubmitOptions), counted in stats().deadlineExpired and the
    /// serve.admission.deadline_expired counter. `opts.deadlines`, when set,
    /// must be keys.size() long.
    SubmitResult submitBatch(const std::vector<tcam::TernaryWord>& keys,
                             const SubmitOptions& opts, int jobs = 0);

    /// Batches currently inside submitBatch (admission gauge).
    int inFlightBatches() const { return inFlight_.load(std::memory_order_relaxed); }

    // --- introspection ---
    std::int64_t capacity() const { return backend_->rows(); }
    std::int64_t occupancy() const { return occupied_; }
    MatchBackendKind backendKind() const { return backend_->kind(); }
    int wordBits() const { return options_.shard.wordBits; }
    std::int64_t shards() const { return bank_.subArrays; }
    std::int64_t rowsPerShard() const { return bank_.rowsPerArray; }
    const array::BankMetrics& hardware() const { return bank_; }
    double energyPerQuery() const { return bank_.totalPerSearch(); }
    double queryLatency() const { return bank_.searchDelay; }
    EngineStats stats() const;
    const std::shared_ptr<CharacterizationCache>& cache() const { return cache_; }
    /// Persistence health of the underlying cache (memory-only when the
    /// engine was built without a store).
    StoreStatus storeStatus() const { return cache_->storeStatus(); }

    /// Deterministic text report: geometry, served-query accounting and the
    /// per-query hardware price. Identical for cold/warm caches and any
    /// jobs value (cache and wall-clock stats deliberately excluded).
    std::string report() const;

private:
    void checkRow(std::int64_t row) const;
    /// searchBatch with an optional per-query skip mask (expired deadlines):
    /// masked queries get kRowDeadlineExpired without being scanned.
    BatchResult searchBatchMasked(const std::vector<tcam::TernaryWord>& keys,
                                  const std::vector<char>* expired, int jobs);

    EngineOptions options_;
    std::shared_ptr<CharacterizationCache> cache_;
    array::BankMetrics bank_;
    /// Entry storage + shard-local priority encoder (see match_backend.hpp).
    std::unique_ptr<MatchBackend> backend_;
    std::int64_t occupied_ = 0;
    mutable std::mutex statsMutex_;  ///< guards stats_ + shardHists_ init
    EngineStats stats_;
    std::atomic<int> inFlight_{0};
    std::vector<obs::Histogram*> shardHists_;  ///< filled lazily when obs is on
};

}  // namespace fetcam::serve
