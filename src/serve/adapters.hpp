// Application services on the query engine: the F9/F14 case studies (IP
// longest-prefix match, packet classification, superpage TLB) re-run through
// serve::QueryEngine, so the same workloads that were priced per-query on
// evaluateArray now stream through the sharded, batched, cache-backed path.
//
// Each service loads the application's rules/entries into the engine in
// priority order and translates batch results back into application answers.
// Functional answers are exact: they must agree with the app-layer reference
// implementations (RoutingTable::lookupLinear, Tlb::translate,
// PacketClassifier::classify) — serve_test holds that contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/classifier.hpp"
#include "apps/lpm.hpp"
#include "apps/tlb.hpp"
#include "serve/query_engine.hpp"

namespace fetcam::serve {

/// Engine options tuned for an application: word width forced to the app's,
/// capacity to its table size (rounded up to whole shards).
EngineOptions appEngineOptions(EngineOptions base, int wordBits, std::int64_t capacity);

/// IP longest-prefix match served from the engine. Routes are stored longest
/// prefix first (the RoutingTable invariant), so the engine's global
/// priority result IS the longest match.
class LpmService {
public:
    explicit LpmService(const apps::RoutingTable& table, EngineOptions base = {},
                        std::shared_ptr<CharacterizationCache> cache = {});

    /// Next hop per address; nullopt on miss. Matches lookupLinear exactly.
    std::vector<std::optional<int>> lookupBatch(const std::vector<std::uint32_t>& addresses,
                                                int jobs = 0);

    QueryEngine& engine() { return engine_; }
    const QueryEngine& engine() const { return engine_; }

private:
    QueryEngine engine_;
    std::vector<int> nextHops_;  ///< by stored row
};

/// Fully-associative, superpage-aware TLB served from the engine.
class TlbService {
public:
    explicit TlbService(const apps::Tlb& tlb, EngineOptions base = {},
                        std::shared_ptr<CharacterizationCache> cache = {});

    /// Physical address per virtual address; nullopt on TLB miss. Matches
    /// Tlb::translate exactly (first entry in insertion order wins).
    std::vector<std::optional<std::uint64_t>> translateBatch(
        const std::vector<std::uint64_t>& vaddrs, int jobs = 0);

    QueryEngine& engine() { return engine_; }
    const QueryEngine& engine() const { return engine_; }

private:
    QueryEngine engine_;
    std::vector<apps::TlbEntry> entries_;  ///< by stored row
};

/// Multi-field packet classification served from the engine.
class ClassifierService {
public:
    explicit ClassifierService(const apps::PacketClassifier& classifier,
                               EngineOptions base = {},
                               std::shared_ptr<CharacterizationCache> cache = {});

    /// Action per header; nullopt when no rule matches. Matches
    /// PacketClassifier::classify exactly.
    std::vector<std::optional<int>> classifyBatch(const std::vector<apps::PacketHeader>& headers,
                                                  int jobs = 0);

    QueryEngine& engine() { return engine_; }
    const QueryEngine& engine() const { return engine_; }

private:
    QueryEngine engine_;
    std::vector<int> actions_;  ///< by stored row
};

}  // namespace fetcam::serve
