#include "serve/match_backend.hpp"

#include <sstream>

#include "recover/sim_error.hpp"

namespace fetcam::serve {

const char* backendName(MatchBackendKind kind) noexcept {
    switch (kind) {
        case MatchBackendKind::Scalar: return "scalar";
        case MatchBackendKind::BitPlane: return "bitplane";
        case MatchBackendKind::Checked: return "checked";
    }
    return "?";
}

MatchBackendKind parseBackendKind(const std::string& name) {
    if (name == "scalar") return MatchBackendKind::Scalar;
    if (name == "bitplane") return MatchBackendKind::BitPlane;
    if (name == "checked") return MatchBackendKind::Checked;
    throw recover::SimError(recover::SimErrorReason::InvalidSpec, "parseBackendKind",
                            "unknown match backend '" + name +
                                "' (expected scalar|bitplane|checked)");
}

namespace {

/// The original row-at-a-time scan, kept verbatim as the oracle every other
/// backend is checked against.
class ScalarBackend final : public MatchBackend {
public:
    ScalarBackend(std::int64_t rows, int bits)
        : MatchBackend(rows, bits), entries_(static_cast<std::size_t>(rows)) {}

    MatchBackendKind kind() const noexcept override { return MatchBackendKind::Scalar; }

    void set(std::int64_t row, const tcam::TernaryWord& word) override {
        entries_[static_cast<std::size_t>(row)] = word;
    }

    void clear(std::int64_t row) override {
        entries_[static_cast<std::size_t>(row)].reset();
    }

    const std::optional<tcam::TernaryWord>& at(std::int64_t row) const override {
        return entries_[static_cast<std::size_t>(row)];
    }

    std::unique_ptr<MatchBackend> clone() const override {
        return std::make_unique<ScalarBackend>(*this);
    }

    PreparedKey prepare(const tcam::TernaryWord& key) const override {
        return {&key, {}};  // the scalar scan needs no slices
    }

    std::int64_t findFirst(std::int64_t begin, std::int64_t end,
                           const PreparedKey& key) const override {
        for (std::int64_t r = begin; r < end; ++r) {
            const auto& slot = entries_[static_cast<std::size_t>(r)];
            if (slot && slot->matchesUnchecked(*key.word)) return r;
        }
        return -1;
    }

    void mismatchCounts(const PreparedKey& key, std::size_t* out) const override {
        for (std::size_t r = 0; r < entries_.size(); ++r) {
            const auto& slot = entries_[r];
            out[r] = slot ? slot->mismatchCountUnchecked(*key.word) : tcam::kNoEntry;
        }
    }

private:
    std::vector<std::optional<tcam::TernaryWord>> entries_;
};

/// Bit-plane backend: the planes answer every search; a word mirror serves
/// at() so introspection stays exact without unpacking trits from planes.
class BitPlaneBackend final : public MatchBackend {
public:
    BitPlaneBackend(std::int64_t rows, int bits)
        : MatchBackend(rows, bits),
          planes_(bits, rows),
          mirror_(static_cast<std::size_t>(rows)) {}

    MatchBackendKind kind() const noexcept override { return MatchBackendKind::BitPlane; }

    void set(std::int64_t row, const tcam::TernaryWord& word) override {
        planes_.set(row, word);
        mirror_[static_cast<std::size_t>(row)] = word;
    }

    void clear(std::int64_t row) override {
        planes_.clear(row);
        mirror_[static_cast<std::size_t>(row)].reset();
    }

    const std::optional<tcam::TernaryWord>& at(std::int64_t row) const override {
        return mirror_[static_cast<std::size_t>(row)];
    }

    std::unique_ptr<MatchBackend> clone() const override {
        return std::make_unique<BitPlaneBackend>(*this);
    }

    PreparedKey prepare(const tcam::TernaryWord& key) const override {
        return {&key, tcam::KeySlices::of(key)};
    }

    std::int64_t findFirst(std::int64_t begin, std::int64_t end,
                           const PreparedKey& key) const override {
        return planes_.findFirstMatch(begin, end, key.slices);
    }

    void mismatchCounts(const PreparedKey& key, std::size_t* out) const override {
        planes_.mismatchCounts(key.slices, out);
    }

private:
    tcam::TernaryPlanes planes_;
    std::vector<std::optional<tcam::TernaryWord>> mirror_;
};

/// Paranoid mode: every query runs on both backends and any divergence is a
/// hard, typed error. This is how the differential fuzz drives both paths
/// through one call site, and a deployable safety net for new backends.
class CheckedBackend final : public MatchBackend {
public:
    CheckedBackend(std::int64_t rows, int bits)
        : MatchBackend(rows, bits), scalar_(rows, bits), planes_(rows, bits) {}

    MatchBackendKind kind() const noexcept override { return MatchBackendKind::Checked; }

    void set(std::int64_t row, const tcam::TernaryWord& word) override {
        scalar_.set(row, word);
        planes_.set(row, word);
    }

    void clear(std::int64_t row) override {
        scalar_.clear(row);
        planes_.clear(row);
    }

    const std::optional<tcam::TernaryWord>& at(std::int64_t row) const override {
        return planes_.at(row);
    }

    std::unique_ptr<MatchBackend> clone() const override {
        return std::make_unique<CheckedBackend>(*this);
    }

    PreparedKey prepare(const tcam::TernaryWord& key) const override {
        return planes_.prepare(key);  // superset of what the scalar path needs
    }

    std::int64_t findFirst(std::int64_t begin, std::int64_t end,
                           const PreparedKey& key) const override {
        const std::int64_t fast = planes_.findFirst(begin, end, key);
        const std::int64_t oracle = scalar_.findFirst(begin, end, key);
        if (fast != oracle) {
            std::ostringstream os;
            os << "bit-plane result diverged from scalar oracle: key "
               << key.word->toString() << " rows [" << begin << ", " << end
               << ") -> bitplane " << fast << ", scalar " << oracle;
            throw recover::SimError(recover::SimErrorReason::CorruptData,
                                    "MatchBackend::findFirst", os.str());
        }
        return fast;
    }

    void mismatchCounts(const PreparedKey& key, std::size_t* out) const override {
        planes_.mismatchCounts(key, out);
        std::vector<std::size_t> oracle(static_cast<std::size_t>(rows()));
        scalar_.mismatchCounts(key, oracle.data());
        for (std::size_t r = 0; r < oracle.size(); ++r) {
            if (out[r] != oracle[r]) {
                std::ostringstream os;
                os << "bit-plane mismatch count diverged from scalar oracle at row "
                   << r << ": bitplane " << out[r] << ", scalar " << oracle[r];
                throw recover::SimError(recover::SimErrorReason::CorruptData,
                                        "MatchBackend::mismatchCounts", os.str());
            }
        }
    }

private:
    ScalarBackend scalar_;
    BitPlaneBackend planes_;
};

}  // namespace

std::unique_ptr<MatchBackend> makeMatchBackend(MatchBackendKind kind, std::int64_t rows,
                                               int bits) {
    if (rows < 0 || bits < 0 || bits > tcam::TernaryPlanes::kMaxBits)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "makeMatchBackend",
                                "backend geometry out of range");
    switch (kind) {
        case MatchBackendKind::Scalar:
            return std::make_unique<ScalarBackend>(rows, bits);
        case MatchBackendKind::BitPlane:
            return std::make_unique<BitPlaneBackend>(rows, bits);
        case MatchBackendKind::Checked:
            return std::make_unique<CheckedBackend>(rows, bits);
    }
    throw recover::SimError(recover::SimErrorReason::InvalidSpec, "makeMatchBackend",
                            "unknown backend kind");
}

}  // namespace fetcam::serve
