// Characterization cache: the simulate-once / serve-forever half of the
// characterize-then-serve split (see DESIGN.md).
//
// A TCAM deployment answers millions of queries, but only ever exercises a
// handful of distinct *electrical* situations: a cell design, its option
// flags, a stage width, a mismatch count, a supply and a temperature fully
// determine the transient the solver would run. The cache keys word-level
// simulations on exactly that tuple, lazily runs the real simulateWordSearch
// on the first miss, and replays the stored result — bit-identical, since
// the solver itself is deterministic — on every subsequent hit.
//
// The cache plugs into the analytic models through array::WordSimFn
// (evaluateArray / evaluateBank / TcamMacro all accept a provider), so the
// cached and uncached paths share every line of scaling arithmetic.
//
// Thread safety: characterize() may be called concurrently; a map mutex
// protects lookups/inserts and misses simulate outside the lock. Two threads
// racing on the same cold key both simulate and insert identical results, so
// served values never depend on the schedule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "array/energy_model.hpp"

namespace fetcam::serve {

struct CacheStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;    ///< each miss paid one full word transient
    std::int64_t bypasses = 0;  ///< uncacheable requests (variations/waveforms)
    std::int64_t entries = 0;   ///< resident characterized points
};

class CharacterizationCache {
public:
    /// The cache key serialized from a request: cell kind, sense scheme and
    /// every design option, stage width, stored/key trits (which carry the
    /// mismatch count), search-cycle timing, and the full tech card (VDD,
    /// temperature, and every device parameter, so corner or re-derived
    /// cards can never alias). Exposed for tests.
    static std::string keyOf(const array::WordSimOptions& options);

    /// Whether a request is cacheable: per-cell Monte Carlo variations and
    /// waveform recording are pass-through (each trial is unique / waveforms
    /// are too big to pin), everything else is served from the cache.
    static bool cacheable(const array::WordSimOptions& options);

    /// Serve a word simulation: cache hit, or run the real solver and
    /// remember the result. Bit-identical to simulateWordSearch(options).
    array::WordSimResult characterize(const array::WordSimOptions& options);

    /// Adapter for the evaluateArray/evaluateBank/TcamMacro `sim` hook.
    /// The returned function references *this; keep the cache alive.
    array::WordSimFn provider();

    CacheStats stats() const;
    void clear();

private:
    mutable std::mutex mutex_;
    std::map<std::string, array::WordSimResult> entries_;
    CacheStats stats_;
};

}  // namespace fetcam::serve
