// Characterization cache: the simulate-once / serve-forever half of the
// characterize-then-serve split (see DESIGN.md).
//
// A TCAM deployment answers millions of queries, but only ever exercises a
// handful of distinct *electrical* situations: a cell design, its option
// flags, a stage width, a mismatch count, a supply and a temperature fully
// determine the transient the solver would run. The cache keys word-level
// simulations on exactly that tuple, lazily runs the real simulateWordSearch
// on the first miss, and replays the stored result — bit-identical, since
// the solver itself is deterministic — on every subsequent hit.
//
// The cache plugs into the analytic models through array::WordSimFn
// (evaluateArray / evaluateBank / TcamMacro all accept a provider), so the
// cached and uncached paths share every line of scaling arithmetic.
//
// Persistence: constructed with a store::StoreConfig the cache becomes a
// warm-restartable service — prior characterizations load from the on-disk
// record log at build time, misses append write-behind, and flush()/
// compact() manage durability. A store that fails to open or validate
// (locked, corrupt, version drift) degrades the cache to memory-only with a
// typed error in storeStatus(): cold characterization is always correct,
// stale or torn bytes never are.
//
// Thread safety: characterize() may be called concurrently; a map mutex
// protects lookups/inserts and misses simulate outside the lock. Two threads
// racing on the same cold key both simulate and insert identical results, so
// served values never depend on the schedule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "array/energy_model.hpp"
#include "recover/sim_error.hpp"
#include "store/char_store.hpp"
#include "tcam/write.hpp"

namespace fetcam::serve {

/// Layout version of the packed characterization schema: the cache key bytes
/// (every packed struct below keyOf) AND the packed WordSimResult payload.
/// It is the first byte of every key and the schemaVersion of every store
/// file. Bump it whenever TechCard / MosfetParams / FerroParams /
/// ArrayConfig / the key packing / the result packing change shape, so a
/// rebuilt binary can never read a stale store as current physics.
/// (Version 1 was the unversioned PR-4 in-memory-only key layout; version 2
/// was search-only; version 3 added write-energy records to the same log.)
inline constexpr std::uint8_t kCharSchemaVersion = 3;

/// Second key byte of a write-energy record. Search keys start with the
/// packed cell-kind int (first byte 0..2), so 'W' can never alias one.
inline constexpr char kWriteKeyTag = 'W';

struct CacheStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;    ///< each miss paid one full word transient
    std::int64_t bypasses = 0;  ///< uncacheable requests (variations/waveforms)
    std::int64_t entries = 0;   ///< resident characterized points
    std::int64_t storeHits = 0;  ///< hits served by store-loaded entries
};

/// Health of the persistent backing, for tools and tests.
struct StoreStatus {
    bool attached = false;  ///< a store is live behind this cache
    bool readOnly = false;
    bool degraded = false;  ///< open/load failed; serving memory-only
    recover::SimErrorReason errorReason = recover::SimErrorReason::IoError;
    std::string error;  ///< empty when healthy
    store::LoadStats load;
    std::int64_t appended = 0;
};

/// Pack a cacheable WordSimResult (no waveforms) into the fixed-layout store
/// payload. Throws SimError(InvalidSpec) if the result carries waveforms.
std::string packResult(const array::WordSimResult& result);

/// Inverse of packResult. nullopt when `bytes` is not a valid payload (e.g.
/// schema drift that slipped past the version gate).
std::optional<array::WordSimResult> unpackResult(std::string_view bytes);

/// Pack a per-bit write-energy measurement (the mutation-path analogue of
/// packResult; payload size differs from the search payload by design).
std::string packWriteResult(const tcam::WriteEnergyResult& result);

/// Inverse of packWriteResult.
std::optional<tcam::WriteEnergyResult> unpackWriteResult(std::string_view bytes);

class CharacterizationCache {
public:
    /// In-memory-only cache (PR-4 behavior).
    CharacterizationCache() = default;

    /// Store-backed cache: opens `config.dir`, loads every persisted
    /// characterization, and write-behind-appends future misses (unless
    /// read-only). Never throws for store trouble — a store that cannot be
    /// used leaves the cache memory-only with the typed failure recorded in
    /// storeStatus().
    explicit CharacterizationCache(const store::StoreConfig& config);

    ~CharacterizationCache();

    /// The cache key serialized from a request: one schema-version byte
    /// (kCharSchemaVersion), then cell kind, sense scheme and every design
    /// option, stage width, stored/key trits (which carry the mismatch
    /// count), search-cycle timing, and the full tech card (VDD,
    /// temperature, and every device parameter, so corner or re-derived
    /// cards can never alias). Exposed for tests.
    static std::string keyOf(const array::WordSimOptions& options);

    /// Whether a request is cacheable: per-cell Monte Carlo variations and
    /// waveform recording are pass-through (each trial is unique / waveforms
    /// are too big to pin), everything else is served from the cache.
    static bool cacheable(const array::WordSimOptions& options);

    /// The write-record key: version byte, kWriteKeyTag, cell kind, then the
    /// full tech card (measureWriteEnergy depends on nothing else). Exposed
    /// for tests.
    static std::string writeKeyOf(tcam::CellKind kind, const device::TechCard& tech);

    /// Serve a word simulation: cache hit, or run the real solver and
    /// remember the result. Bit-identical to simulateWordSearch(options).
    array::WordSimResult characterize(const array::WordSimOptions& options);

    /// Serve a per-bit write-energy measurement: cache hit, or run the real
    /// write-waveform transient (tcam::measureWriteEnergy) and remember it.
    /// Persisted next to the search records, so a warm restart prices
    /// mutations with zero solver calls. Counted in the same hit/miss stats.
    tcam::WriteEnergyResult characterizeWrite(tcam::CellKind kind,
                                              const device::TechCard& tech);

    /// Adapter for the evaluateArray/evaluateBank/TcamMacro `sim` hook.
    /// The returned function references *this; keep the cache alive.
    array::WordSimFn provider();

    /// Push write-behind appends to disk (no-op without a writable store).
    void flush();

    /// Snapshot the resident entries into a deduplicated log, atomically
    /// replacing the append history. Returns false (doing nothing) without a
    /// writable store.
    bool compact();

    CacheStats stats() const;
    StoreStatus storeStatus() const;
    void clear();  ///< resident entries + stats; the on-disk log is untouched

private:
    struct Entry {
        array::WordSimResult result;
        bool fromStore = false;
    };

    struct WriteEntry {
        tcam::WriteEnergyResult result;
        bool fromStore = false;
    };

    void attachStore(const store::StoreConfig& config);
    void degradeStore(const recover::SimError& e);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    std::map<std::string, WriteEntry> writeEntries_;
    CacheStats stats_;
    std::unique_ptr<store::CharStore> store_;  ///< null when memory-only
    StoreStatus storeStatus_;
};

}  // namespace fetcam::serve
