#include "serve/char_cache.hpp"

#include <cstring>

#include "obs/obs.hpp"

namespace fetcam::serve {

namespace {

void packBytes(std::string& key, const void* data, std::size_t size) {
    key.append(static_cast<const char*>(data), size);
}

void pack(std::string& key, double v) { packBytes(key, &v, sizeof v); }
void pack(std::string& key, int v) { packBytes(key, &v, sizeof v); }
void pack(std::string& key, bool v) { key.push_back(v ? '\1' : '\0'); }

void packMos(std::string& key, const device::MosfetParams& p) {
    pack(key, static_cast<int>(p.type));
    pack(key, p.w);
    pack(key, p.l);
    pack(key, p.vt0);
    pack(key, p.kp);
    pack(key, p.n);
    pack(key, p.lambda);
    pack(key, p.cox);
    pack(key, p.cOverlap);
    pack(key, p.cJunction);
    pack(key, p.ut);
}

void packFerro(std::string& key, const device::FerroParams& p) {
    pack(key, p.ps);
    pack(key, p.vcMean);
    pack(key, p.vcSigma);
    pack(key, p.tau0);
    pack(key, p.kMerz);
    pack(key, p.epsR);
    pack(key, p.thickness);
    pack(key, p.numHysterons);
    pack(key, p.tauRetention);
    pack(key, p.pristineFactor);
    pack(key, p.wakeupCycles);
    pack(key, p.fatigueOnsetCycles);
    pack(key, p.fatiguePerDecade);
    pack(key, p.fatigueFloor);
}

void packTech(std::string& key, const device::TechCard& t) {
    pack(key, t.vdd);
    pack(key, t.temperatureK);
    pack(key, t.vWriteFe);
    pack(key, t.tWriteFe);
    pack(key, t.vWriteReram);
    pack(key, t.tWriteReram);
    packMos(key, t.nmos);
    packMos(key, t.pmos);
    packMos(key, t.fefet.mos);
    packFerro(key, t.fefet.ferro);
    pack(key, t.fefet.deltaVt);
    pack(key, t.fefet.feArea);
    pack(key, t.reram.rOn);
    pack(key, t.reram.rOff);
    pack(key, t.reram.vSet);
    pack(key, t.reram.vReset);
    pack(key, t.reram.tauSet);
    pack(key, t.reram.tauReset);
    pack(key, t.reram.vAccel);
    pack(key, t.reram.cPar);
    pack(key, t.mlWireCapPerCell);
    pack(key, t.mlWireResPerCell);
    pack(key, t.slWireCapPerCell);
    pack(key, t.slDriverRes);
    pack(key, t.ctrlDriverRes);
}

void packConfig(std::string& key, const array::ArrayConfig& c) {
    pack(key, static_cast<int>(c.cell));
    pack(key, static_cast<int>(c.sense));
    pack(key, c.wordBits);
    // Note: c.rows deliberately not packed — a word simulation is one row;
    // the analytic scaling to the array happens outside the cache.
    pack(key, c.vSearch);
    pack(key, c.vPrecharge);
    pack(key, c.mlKeeper);
    pack(key, c.distributedMl);
    pack(key, c.mlSegments);
    pack(key, c.selectivePrecharge);
    pack(key, c.prefilterBits);
    pack(key, c.timing.tSetup);
    pack(key, c.timing.tEval);
    pack(key, c.timing.tGap);
    pack(key, c.timing.tPrecharge);
    pack(key, c.timing.tTail);
    pack(key, c.timing.slEdge);
    pack(key, c.timing.saStrobeDelay);
    pack(key, c.timing.saStrobeLen);
}

void packWord(std::string& key, const tcam::TernaryWord& w) {
    for (std::size_t i = 0; i < w.size(); ++i)
        key.push_back(static_cast<char>('0' + static_cast<int>(w[i])));
    key.push_back('|');
}

// --- packed WordSimResult payload (fixed layout, kCharSchemaVersion) ------

constexpr std::size_t kPackedDoubles = 9;
constexpr std::size_t kPackedResultSize = 1 + kPackedDoubles * sizeof(double);

// --- packed WriteEnergyResult payload (deliberately a different size) -----

constexpr std::size_t kPackedWriteDoubles = 5;
constexpr std::size_t kPackedWriteSize = 1 + kPackedWriteDoubles * sizeof(double);

}  // namespace

std::string packResult(const array::WordSimResult& r) {
    if (r.waveforms.size() != 0)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "serve::packResult",
                                "results carrying waveforms are not persistable");
    std::string out;
    out.reserve(kPackedResultSize);
    const char flags = static_cast<char>((r.expectedMatch ? 1 : 0) |
                                         (r.matchDetected ? 2 : 0) |
                                         (r.detectDelay.has_value() ? 4 : 0));
    out.push_back(flags);
    const double doubles[kPackedDoubles] = {
        r.detectDelay.value_or(0.0), r.mlAtSense, r.mlMin,
        r.vPrecharge, r.energyMl,    r.energySl,
        r.energySa,   r.energyStatic, r.energyTotal,
    };
    packBytes(out, doubles, sizeof doubles);
    return out;
}

std::optional<array::WordSimResult> unpackResult(std::string_view bytes) {
    if (bytes.size() != kPackedResultSize) return std::nullopt;
    const char flags = bytes[0];
    if (flags & ~0x7) return std::nullopt;
    double doubles[kPackedDoubles];
    std::memcpy(doubles, bytes.data() + 1, sizeof doubles);

    array::WordSimResult r;
    r.expectedMatch = flags & 1;
    r.matchDetected = flags & 2;
    if (flags & 4) r.detectDelay = doubles[0];
    r.mlAtSense = doubles[1];
    r.mlMin = doubles[2];
    r.vPrecharge = doubles[3];
    r.energyMl = doubles[4];
    r.energySl = doubles[5];
    r.energySa = doubles[6];
    r.energyStatic = doubles[7];
    r.energyTotal = doubles[8];
    return r;
}

std::string packWriteResult(const tcam::WriteEnergyResult& r) {
    std::string out;
    out.reserve(kPackedWriteSize);
    out.push_back(r.verified ? '\1' : '\0');
    const double doubles[kPackedWriteDoubles] = {
        r.energyPerBit, r.phase1Energy, r.phase2Energy, r.pulseWidth, r.writeLatency,
    };
    packBytes(out, doubles, sizeof doubles);
    return out;
}

std::optional<tcam::WriteEnergyResult> unpackWriteResult(std::string_view bytes) {
    if (bytes.size() != kPackedWriteSize) return std::nullopt;
    const char flags = bytes[0];
    if (flags & ~0x1) return std::nullopt;
    double doubles[kPackedWriteDoubles];
    std::memcpy(doubles, bytes.data() + 1, sizeof doubles);

    tcam::WriteEnergyResult r;
    r.verified = flags & 1;
    r.energyPerBit = doubles[0];
    r.phase1Energy = doubles[1];
    r.phase2Energy = doubles[2];
    r.pulseWidth = doubles[3];
    r.writeLatency = doubles[4];
    return r;
}

CharacterizationCache::CharacterizationCache(const store::StoreConfig& config) {
    store::StoreConfig cfg = config;
    cfg.schemaVersion = kCharSchemaVersion;
    attachStore(cfg);
}

CharacterizationCache::~CharacterizationCache() {
    try {
        flush();
    } catch (...) {
        // Destructor: best effort; complete frames are already buffered.
    }
}

void CharacterizationCache::attachStore(const store::StoreConfig& config) {
    // Constructor-only: no other thread can touch the cache yet, so the map
    // is filled without taking mutex_ (which also keeps the degrade path
    // below re-entrancy-safe).
    try {
        auto candidate = std::make_unique<store::CharStore>(config);
        const auto records = candidate->load();
        for (const auto& rec : records) {
            if (rec.key.empty() ||
                static_cast<std::uint8_t>(rec.key[0]) != kCharSchemaVersion)
                throw recover::SimError(
                    recover::SimErrorReason::CorruptData, "serve::CharacterizationCache",
                    "store record failed to unpack despite schema gate");
            if (rec.key.size() > 1 && rec.key[1] == kWriteKeyTag) {
                const auto write = unpackWriteResult(rec.payload);
                if (!write)
                    throw recover::SimError(
                        recover::SimErrorReason::CorruptData,
                        "serve::CharacterizationCache",
                        "write record failed to unpack despite schema gate");
                writeEntries_.emplace(rec.key, WriteEntry{*write, /*fromStore=*/true});
                continue;
            }
            const auto result = unpackResult(rec.payload);
            if (!result)
                throw recover::SimError(
                    recover::SimErrorReason::CorruptData, "serve::CharacterizationCache",
                    "store record failed to unpack despite schema gate");
            entries_.emplace(rec.key, Entry{*result, /*fromStore=*/true});
        }
        stats_.entries = static_cast<std::int64_t>(entries_.size() + writeEntries_.size());
        storeStatus_.attached = true;
        storeStatus_.readOnly = candidate->readOnly();
        storeStatus_.load = candidate->loadStats();
        store_ = std::move(candidate);
    } catch (const recover::SimError& e) {
        // Typed degradation: serve memory-only (always correct, just cold).
        entries_.clear();
        writeEntries_.clear();
        stats_ = {};
        store_.reset();
        storeStatus_.attached = true;
        storeStatus_.readOnly = config.readOnly;
        storeStatus_.degraded = true;
        storeStatus_.errorReason = e.reason();
        storeStatus_.error = e.what();
        if (obs::enabled()) obs::counter("store.degraded").add();
    }
}

void CharacterizationCache::degradeStore(const recover::SimError& e) {
    storeStatus_.degraded = true;
    storeStatus_.errorReason = e.reason();
    storeStatus_.error = e.what();
    store_.reset();
    if (obs::enabled()) obs::counter("store.degraded").add();
}

std::string CharacterizationCache::keyOf(const array::WordSimOptions& o) {
    std::string key;
    key.reserve(512);
    // Schema-version byte first: any change to the packed layouts below
    // bumps kCharSchemaVersion, so keys from different layouts can never
    // alias — in memory or on disk.
    key.push_back(static_cast<char>(kCharSchemaVersion));
    packConfig(key, o.config);
    packWord(key, o.stored);
    packWord(key, o.key);
    pack(key, static_cast<int>(o.stored.mismatchCount(o.key)));
    packTech(key, o.tech);
    return key;
}

bool CharacterizationCache::cacheable(const array::WordSimOptions& o) {
    return o.variations.empty() && !o.recordWaveforms;
}

std::string CharacterizationCache::writeKeyOf(tcam::CellKind kind,
                                              const device::TechCard& tech) {
    std::string key;
    key.reserve(512);
    key.push_back(static_cast<char>(kCharSchemaVersion));
    key.push_back(kWriteKeyTag);
    pack(key, static_cast<int>(kind));
    packTech(key, tech);
    return key;
}

tcam::WriteEnergyResult CharacterizationCache::characterizeWrite(
    tcam::CellKind kind, const device::TechCard& tech) {
    std::string key = writeKeyOf(kind, tech);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = writeEntries_.find(key);
        if (it != writeEntries_.end()) {
            ++stats_.hits;
            const bool fromStore = it->second.fromStore;
            if (fromStore) ++stats_.storeHits;
            if (obs::enabled()) {
                static obs::Counter& hits = obs::counter("serve.cache.hits");
                hits.add();
                if (fromStore) {
                    static obs::Counter& storeHits = obs::counter("store.hits");
                    storeHits.add();
                }
            }
            return it->second.result;
        }
    }

    // Miss: run the one real write-waveform transient outside the lock.
    const auto result = tcam::measureWriteEnergy(kind, tech);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        const bool inserted =
            writeEntries_.emplace(key, WriteEntry{result, /*fromStore=*/false}).second;
        stats_.entries = static_cast<std::int64_t>(entries_.size() + writeEntries_.size());
        if (inserted && store_ && !store_->readOnly()) {
            try {
                store_->append(key, packWriteResult(result));
                ++storeStatus_.appended;
            } catch (const recover::SimError& e) {
                degradeStore(e);
            }
        }
    }
    if (obs::enabled()) {
        static obs::Counter& misses = obs::counter("serve.cache.misses");
        misses.add();
    }
    return result;
}

array::WordSimResult CharacterizationCache::characterize(const array::WordSimOptions& o) {
    if (!cacheable(o)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.bypasses;
        }
        return array::simulateWordSearch(o);
    }

    std::string key = keyOf(o);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            const bool fromStore = it->second.fromStore;
            if (fromStore) ++stats_.storeHits;
            if (obs::enabled()) {
                static obs::Counter& hits = obs::counter("serve.cache.hits");
                hits.add();
                if (fromStore) {
                    static obs::Counter& storeHits = obs::counter("store.hits");
                    storeHits.add();
                    // Fraction of characterizations the warm restart avoided:
                    // without the store every storeHit's first touch would
                    // have been a solver miss.
                    obs::gauge("store.hit_rate_delta")
                        .set(static_cast<double>(stats_.storeHits) /
                             static_cast<double>(stats_.hits + stats_.misses));
                }
            }
            return it->second.result;
        }
    }

    // Miss: pay the one real transient, outside the lock so concurrent
    // distinct keys characterize in parallel.
    const auto result = array::simulateWordSearch(o);
    bool inserted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        // Racing insert: same key, same value; only the winner persists it.
        inserted = entries_.emplace(key, Entry{result, /*fromStore=*/false}).second;
        stats_.entries = static_cast<std::int64_t>(entries_.size() + writeEntries_.size());
        if (inserted && store_ && !store_->readOnly()) {
            try {
                store_->append(key, packResult(result));
                ++storeStatus_.appended;
            } catch (const recover::SimError& e) {
                degradeStore(e);
            }
        }
    }
    if (obs::enabled()) {
        static obs::Counter& misses = obs::counter("serve.cache.misses");
        misses.add();
    }
    return result;
}

array::WordSimFn CharacterizationCache::provider() {
    return [this](const array::WordSimOptions& o) { return characterize(o); };
}

void CharacterizationCache::flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!store_ || store_->readOnly()) return;
    try {
        store_->flush();
    } catch (const recover::SimError& e) {
        degradeStore(e);
    }
}

bool CharacterizationCache::compact() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!store_ || store_->readOnly()) return false;
    std::vector<store::Record> records;
    records.reserve(entries_.size() + writeEntries_.size());
    for (const auto& [key, entry] : entries_)
        records.push_back({key, packResult(entry.result)});
    for (const auto& [key, entry] : writeEntries_)
        records.push_back({key, packWriteResult(entry.result)});
    try {
        store_->compact(records);
    } catch (const recover::SimError& e) {
        degradeStore(e);
        return false;
    }
    return true;
}

CacheStats CharacterizationCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

StoreStatus CharacterizationCache::storeStatus() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return storeStatus_;
}

void CharacterizationCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    writeEntries_.clear();
    stats_ = {};
}

}  // namespace fetcam::serve
