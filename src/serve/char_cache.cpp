#include "serve/char_cache.hpp"

#include <cstring>

#include "obs/obs.hpp"

namespace fetcam::serve {

namespace {

void packBytes(std::string& key, const void* data, std::size_t size) {
    key.append(static_cast<const char*>(data), size);
}

void pack(std::string& key, double v) { packBytes(key, &v, sizeof v); }
void pack(std::string& key, int v) { packBytes(key, &v, sizeof v); }
void pack(std::string& key, bool v) { key.push_back(v ? '\1' : '\0'); }

void packMos(std::string& key, const device::MosfetParams& p) {
    pack(key, static_cast<int>(p.type));
    pack(key, p.w);
    pack(key, p.l);
    pack(key, p.vt0);
    pack(key, p.kp);
    pack(key, p.n);
    pack(key, p.lambda);
    pack(key, p.cox);
    pack(key, p.cOverlap);
    pack(key, p.cJunction);
    pack(key, p.ut);
}

void packFerro(std::string& key, const device::FerroParams& p) {
    pack(key, p.ps);
    pack(key, p.vcMean);
    pack(key, p.vcSigma);
    pack(key, p.tau0);
    pack(key, p.kMerz);
    pack(key, p.epsR);
    pack(key, p.thickness);
    pack(key, p.numHysterons);
    pack(key, p.tauRetention);
    pack(key, p.pristineFactor);
    pack(key, p.wakeupCycles);
    pack(key, p.fatigueOnsetCycles);
    pack(key, p.fatiguePerDecade);
    pack(key, p.fatigueFloor);
}

void packTech(std::string& key, const device::TechCard& t) {
    pack(key, t.vdd);
    pack(key, t.temperatureK);
    pack(key, t.vWriteFe);
    pack(key, t.tWriteFe);
    pack(key, t.vWriteReram);
    pack(key, t.tWriteReram);
    packMos(key, t.nmos);
    packMos(key, t.pmos);
    packMos(key, t.fefet.mos);
    packFerro(key, t.fefet.ferro);
    pack(key, t.fefet.deltaVt);
    pack(key, t.fefet.feArea);
    pack(key, t.reram.rOn);
    pack(key, t.reram.rOff);
    pack(key, t.reram.vSet);
    pack(key, t.reram.vReset);
    pack(key, t.reram.tauSet);
    pack(key, t.reram.tauReset);
    pack(key, t.reram.vAccel);
    pack(key, t.reram.cPar);
    pack(key, t.mlWireCapPerCell);
    pack(key, t.mlWireResPerCell);
    pack(key, t.slWireCapPerCell);
    pack(key, t.slDriverRes);
    pack(key, t.ctrlDriverRes);
}

void packConfig(std::string& key, const array::ArrayConfig& c) {
    pack(key, static_cast<int>(c.cell));
    pack(key, static_cast<int>(c.sense));
    pack(key, c.wordBits);
    // Note: c.rows deliberately not packed — a word simulation is one row;
    // the analytic scaling to the array happens outside the cache.
    pack(key, c.vSearch);
    pack(key, c.vPrecharge);
    pack(key, c.mlKeeper);
    pack(key, c.distributedMl);
    pack(key, c.mlSegments);
    pack(key, c.selectivePrecharge);
    pack(key, c.prefilterBits);
    pack(key, c.timing.tSetup);
    pack(key, c.timing.tEval);
    pack(key, c.timing.tGap);
    pack(key, c.timing.tPrecharge);
    pack(key, c.timing.tTail);
    pack(key, c.timing.slEdge);
    pack(key, c.timing.saStrobeDelay);
    pack(key, c.timing.saStrobeLen);
}

void packWord(std::string& key, const tcam::TernaryWord& w) {
    for (std::size_t i = 0; i < w.size(); ++i)
        key.push_back(static_cast<char>('0' + static_cast<int>(w[i])));
    key.push_back('|');
}

}  // namespace

std::string CharacterizationCache::keyOf(const array::WordSimOptions& o) {
    std::string key;
    key.reserve(512);
    packConfig(key, o.config);
    packWord(key, o.stored);
    packWord(key, o.key);
    pack(key, static_cast<int>(o.stored.mismatchCount(o.key)));
    packTech(key, o.tech);
    return key;
}

bool CharacterizationCache::cacheable(const array::WordSimOptions& o) {
    return o.variations.empty() && !o.recordWaveforms;
}

array::WordSimResult CharacterizationCache::characterize(const array::WordSimOptions& o) {
    if (!cacheable(o)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.bypasses;
        }
        return array::simulateWordSearch(o);
    }

    std::string key = keyOf(o);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            if (obs::enabled()) {
                static obs::Counter& hits = obs::counter("serve.cache.hits");
                hits.add();
            }
            return it->second;
        }
    }

    // Miss: pay the one real transient, outside the lock so concurrent
    // distinct keys characterize in parallel.
    const auto result = array::simulateWordSearch(o);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        entries_.emplace(std::move(key), result);  // racing insert: same value
        stats_.entries = static_cast<std::int64_t>(entries_.size());
    }
    if (obs::enabled()) {
        static obs::Counter& misses = obs::counter("serve.cache.misses");
        misses.add();
    }
    return result;
}

array::WordSimFn CharacterizationCache::provider() {
    return [this](const array::WordSimOptions& o) { return characterize(o); };
}

CacheStats CharacterizationCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void CharacterizationCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    stats_ = {};
}

}  // namespace fetcam::serve
