// Convergence rescue ladder: the escalation the solvers climb when a plain
// Newton solve fails, before giving up on a run.
//
// The ladder is ordered from cheapest/most-physical to most invasive:
//   1. TightenDamping    — retry with a smaller max per-iteration update
//   2. GminRamp          — solve at an elevated gmin and walk it back down,
//                          reusing each level's solution as the next start
//   3. SourceStepping    — ramp all independent sources from a fraction of
//                          their value up to full bias (continuation in bias)
//   4. ForceBackwardEuler— retry the step with the L-stable integrator
//
// The types here are dependency-free descriptions; the climbing logic lives
// next to each solver (spice/transient.cpp, spice/dcop.cpp) so this library
// stays below the circuit engine in the link order.
#pragma once

#include <string>
#include <vector>

namespace fetcam::recover {

enum class RescueRung {
    TightenDamping,
    GminRamp,
    SourceStepping,
    ForceBackwardEuler,
};

/// Short stable identifier ("damping", "gmin", "source", "backward_euler").
const char* rungName(RescueRung rung) noexcept;

/// One solve attempted while climbing the ladder.
struct RescueAttempt {
    RescueRung rung = RescueRung::TightenDamping;
    double value = 0.0;      ///< rung parameter: maxUpdate, gmin, or source scale
    bool converged = false;
    int iterations = 0;
};

/// "damping(0.25)=fail gmin(1e-06)=ok ..." — for error messages and logs.
std::string formatRescueTrail(const std::vector<RescueAttempt>& trail);

/// What the ladder is allowed to try. Every rung can be disabled by emptying
/// its level list (or clearing forceBackwardEuler); `enabled = false` restores
/// the pre-rescue behavior of failing outright.
struct RescuePolicy {
    bool enabled = true;

    /// maxUpdate overrides for the damping rung, tried in order.
    std::vector<double> dampingLevels = {0.25, 0.1};

    /// Elevated gmin levels for the ramp, walked largest -> smallest before
    /// finishing at the spec's own gmin.
    std::vector<double> gminLevels = {1e-3, 1e-6, 1e-9};

    /// If the ramp converges at some elevated gmin but cannot reach the
    /// target, accept the solution anyway when that gmin is at or below this
    /// bound (a <= 1 nS leak to ground per node: degraded, but recorded).
    double maxAcceptableGmin = 1e-9;

    /// Source-scale continuation points, ascending; a final 1.0 is implied.
    std::vector<double> sourceSteps = {0.25, 0.5, 0.75};

    /// Last resort: re-solve the step with backward Euler.
    bool forceBackwardEuler = true;
};

}  // namespace fetcam::recover
