#include "recover/io_guard.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "recover/sim_error.hpp"

namespace fetcam::recover {

void ignoreSigpipe() noexcept {
#ifdef SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);
#endif
}

void checkStdout(const char* tool) {
    const bool flushFailed = std::fflush(stdout) != 0;
    const int err = errno;
    if (flushFailed || std::ferror(stdout)) {
        std::string detail = "stdout write failed";
        if (flushFailed && err != 0)
            detail += std::string(": ") + std::strerror(err);
        else
            detail += " (closed pipe or short write)";
        throw SimError(SimErrorReason::IoError, tool, detail);
    }
}

}  // namespace fetcam::recover
