#include "recover/fault_injection.hpp"

namespace fetcam::recover {

namespace {
thread_local FaultPlan* tActivePlan = nullptr;
}  // namespace

const char* faultKindName(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::NanCurrent: return "nan_current";
        case FaultKind::SingularStamp: return "singular_stamp";
        case FaultKind::StuckPolarization: return "stuck_polarization";
    }
    return "unknown";
}

SolveFaults FaultPlan::beginSolve() noexcept {
    const long long ordinal = nextSolve_++;
    SolveFaults f;
    for (const auto& spec : specs_) {
        if (ordinal < spec.fromSolve || ordinal >= spec.toSolve) continue;
        switch (spec.kind) {
            case FaultKind::NanCurrent:
                f.nanCurrent = true;
                f.node = spec.node;
                ++injections_;
                break;
            case FaultKind::SingularStamp:
                f.singularStamp = true;
                f.node = spec.node;
                ++injections_;
                break;
            case FaultKind::StuckPolarization:
                break;  // not a per-solve fault
        }
    }
    return f;
}

bool FaultPlan::stuckPolarization() const noexcept {
    for (const auto& spec : specs_)
        if (spec.kind == FaultKind::StuckPolarization) return true;
    return false;
}

FaultPlan* FaultPlan::active() noexcept { return tActivePlan; }

ScopedFaultPlan::ScopedFaultPlan(FaultPlan& plan) : previous_(tActivePlan) {
    tActivePlan = &plan;
}

ScopedFaultPlan::~ScopedFaultPlan() { tActivePlan = previous_; }

}  // namespace fetcam::recover
