#include "recover/fault_injection.hpp"

namespace fetcam::recover {

namespace {
thread_local FaultPlan* tActivePlan = nullptr;
}  // namespace

const char* faultKindName(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::NanCurrent: return "nan_current";
        case FaultKind::SingularStamp: return "singular_stamp";
        case FaultKind::StuckPolarization: return "stuck_polarization";
        case FaultKind::TornFrame: return "torn_frame";
        case FaultKind::GarbageBytes: return "garbage_bytes";
        case FaultKind::Disconnect: return "disconnect";
        case FaultKind::StalledRead: return "stalled_read";
    }
    return "unknown";
}

namespace {

bool isNetFault(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::TornFrame:
        case FaultKind::GarbageBytes:
        case FaultKind::Disconnect:
        case FaultKind::StalledRead:
            return true;
        default:
            return false;
    }
}

}  // namespace

SolveFaults FaultPlan::beginSolve() noexcept {
    const long long ordinal = nextSolve_++;
    SolveFaults f;
    for (const auto& spec : specs_) {
        if (ordinal < spec.fromSolve || ordinal >= spec.toSolve) continue;
        switch (spec.kind) {
            case FaultKind::NanCurrent:
                f.nanCurrent = true;
                f.node = spec.node;
                ++injections_;
                break;
            case FaultKind::SingularStamp:
                f.singularStamp = true;
                f.node = spec.node;
                ++injections_;
                break;
            default:
                break;  // stuck polarization / net faults: not per-solve
        }
    }
    return f;
}

FrameFaults FaultPlan::beginNetFrame() noexcept {
    const long long ordinal = nextFrame_++;
    FrameFaults f;
    for (const auto& spec : specs_) {
        if (!isNetFault(spec.kind)) continue;
        if (ordinal < spec.fromSolve || ordinal >= spec.toSolve) continue;
        switch (spec.kind) {
            case FaultKind::TornFrame: f.tornFrame = true; break;
            case FaultKind::GarbageBytes: f.garbageBytes = true; break;
            case FaultKind::Disconnect: f.disconnect = true; break;
            case FaultKind::StalledRead: f.stalledRead = true; break;
            default: break;
        }
        ++injections_;
    }
    return f;
}

bool FaultPlan::stuckPolarization() const noexcept {
    for (const auto& spec : specs_)
        if (spec.kind == FaultKind::StuckPolarization) return true;
    return false;
}

FaultPlan* FaultPlan::active() noexcept { return tActivePlan; }

ScopedFaultPlan::ScopedFaultPlan(FaultPlan& plan) : previous_(tActivePlan) {
    tActivePlan = &plan;
}

ScopedFaultPlan::~ScopedFaultPlan() { tActivePlan = previous_; }

}  // namespace fetcam::recover
