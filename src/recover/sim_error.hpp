// Structured simulation errors.
//
// Every failure the simulation stack can raise carries a typed reason, the
// offending location (simulated time and a "where" naming the function, node
// or device), and — for solver failures — the rescue-ladder rungs that were
// already attempted before giving up. Sweep drivers (Monte Carlo, tuner,
// bank, design space) catch SimError per trial and degrade gracefully under
// FailurePolicy::Lenient instead of aborting the whole sweep.
//
// SimError derives from std::runtime_error, so legacy call sites catching
// std::runtime_error / std::exception keep working.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "recover/rescue.hpp"

namespace fetcam::recover {

enum class SimErrorReason {
    InvalidSpec,     ///< malformed analysis spec or inconsistent inputs
    StepUnderflow,   ///< transient dt shrank below dtMin without converging
    SingularMatrix,  ///< structurally singular MNA system (LU found no pivot)
    NanResidual,     ///< non-finite solution or update (NaN/Inf in the solve)
    NonConvergence,  ///< Newton exhausted its iteration budget
    IoError,         ///< file read/write failure
    CorruptData,     ///< persisted data failed validation (magic/CRC/version)
    DeadlineExceeded,  ///< a query/request deadline expired before completion
};

/// Short stable identifier ("invalid_spec", "step_underflow", ...).
const char* reasonName(SimErrorReason reason) noexcept;

/// Number of distinct reasons (histogram sizing).
inline constexpr int kNumSimErrorReasons = 8;

/// How a sweep reacts to one of its trials throwing SimError.
enum class FailurePolicy {
    Strict,   ///< propagate: the first failing trial aborts the sweep
    Lenient,  ///< record the failure (count + reason histogram) and continue
};

/// Process exit code for a reason, shared by every CLI tool so scripts can
/// tell a bad spec from a solver collapse regardless of which binary they
/// drove. 1 stays the generic-exception code, 2 DC non-convergence.
inline int exitCodeFor(SimErrorReason reason) noexcept {
    switch (reason) {
        case SimErrorReason::InvalidSpec: return 3;
        case SimErrorReason::StepUnderflow: return 4;
        case SimErrorReason::SingularMatrix: return 5;
        case SimErrorReason::NanResidual: return 6;
        case SimErrorReason::NonConvergence: return 7;
        case SimErrorReason::IoError: return 8;
        case SimErrorReason::CorruptData: return 9;
        case SimErrorReason::DeadlineExceeded: return 10;
    }
    return 1;
}

class SimError : public std::runtime_error {
public:
    /// Everything about the failure besides the human-readable message.
    struct Info {
        SimErrorReason reason = SimErrorReason::NonConvergence;
        std::string where;               ///< function / device / node label
        double time = -1.0;              ///< simulated seconds; < 0 when n/a
        std::vector<RescueAttempt> attempted;  ///< ladder rungs tried first
    };

    SimError(SimErrorReason reason, std::string where, const std::string& message);
    SimError(Info info, const std::string& message);

    SimErrorReason reason() const noexcept { return info_.reason; }
    const std::string& where() const noexcept { return info_.where; }
    /// Simulated time of the failure; negative when not applicable.
    double time() const noexcept { return info_.time; }
    const std::vector<RescueAttempt>& attemptedRescues() const noexcept {
        return info_.attempted;
    }

private:
    Info info_;
};

}  // namespace fetcam::recover
