#include "recover/rescue.hpp"

#include <cstdio>

namespace fetcam::recover {

const char* rungName(RescueRung rung) noexcept {
    switch (rung) {
        case RescueRung::TightenDamping: return "damping";
        case RescueRung::GminRamp: return "gmin";
        case RescueRung::SourceStepping: return "source";
        case RescueRung::ForceBackwardEuler: return "backward_euler";
    }
    return "unknown";
}

std::string formatRescueTrail(const std::vector<RescueAttempt>& trail) {
    std::string out;
    for (const auto& a : trail) {
        if (!out.empty()) out += ' ';
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s(%g)=%s", rungName(a.rung), a.value,
                      a.converged ? "ok" : "fail");
        out += buf;
    }
    return out;
}

}  // namespace fetcam::recover
