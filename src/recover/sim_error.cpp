#include "recover/sim_error.hpp"

#include <cstdio>

namespace fetcam::recover {

const char* reasonName(SimErrorReason reason) noexcept {
    switch (reason) {
        case SimErrorReason::InvalidSpec: return "invalid_spec";
        case SimErrorReason::StepUnderflow: return "step_underflow";
        case SimErrorReason::SingularMatrix: return "singular_matrix";
        case SimErrorReason::NanResidual: return "nan_residual";
        case SimErrorReason::NonConvergence: return "non_convergence";
        case SimErrorReason::IoError: return "io_error";
        case SimErrorReason::CorruptData: return "corrupt_data";
        case SimErrorReason::DeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

namespace {

std::string formatWhat(const SimError::Info& info, const std::string& message) {
    std::string out;
    if (!info.where.empty()) out += info.where + ": ";
    out += message;
    out += " [";
    out += reasonName(info.reason);
    if (info.time >= 0.0) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "; t=%g s", info.time);
        out += buf;
    }
    if (!info.attempted.empty()) out += "; rescue: " + formatRescueTrail(info.attempted);
    out += ']';
    return out;
}

}  // namespace

SimError::SimError(SimErrorReason reason, std::string where, const std::string& message)
    : SimError(Info{reason, std::move(where), -1.0, {}}, message) {}

SimError::SimError(Info info, const std::string& message)
    : std::runtime_error(formatWhat(info, message)), info_(std::move(info)) {}

}  // namespace fetcam::recover
