// Process-level I/O guards for the CLI tools.
//
// Writing a report into a closed pipe (`fetcam_serve ... | head`) raises
// SIGPIPE, which kills the process silently with no exit-code story at all.
// The tools instead:
//   * ignore SIGPIPE at startup (ignoreSigpipe), so a write into a closed
//     pipe fails with EPIPE and sets the stream's error flag, and
//   * flush + check stdout before exiting (checkStdout), turning any short
//     or failed report write — EPIPE, ENOSPC, a full disk — into a typed
//     SimError(IoError) with the io_error exit code instead of dying with a
//     half-written report and no diagnosis.
#pragma once

namespace fetcam::recover {

/// Ignore SIGPIPE process-wide (no-op on platforms without it). Call once at
/// tool startup, before any pipe/socket writes.
void ignoreSigpipe() noexcept;

/// Flush stdout and throw SimError(IoError) if the stream saw any write
/// failure (closed pipe, short write, disk full). `tool` names the thrower.
void checkStdout(const char* tool);

}  // namespace fetcam::recover
