// Deterministic fault injection for the solver robustness tests.
//
// A FaultPlan describes faults to inject at chosen Newton solves (a solve is
// one solveNewton call; the transient engine issues one or more per step, the
// ladder issues one per rescue attempt). The solver and devices consult the
// thread's installed plan at well-defined points:
//
//   NanCurrent        — solveNewton stamps a NaN current into the chosen
//                       node's KCL row, modelling a device model returning a
//                       non-finite current.
//   SingularStamp     — solveNewton zeroes the chosen node's matrix row and
//                       column after all stamping, making the system
//                       structurally singular at that solve.
//   StuckPolarization — FeFET hysteron banks stop advancing: write pulses
//                       leave the stored state unchanged while the plan is
//                       installed (models an imprinted / fatigued cell).
//
// Plans are installed with ScopedFaultPlan (thread-local, RAII). With no plan
// installed, the hot-path query is a single thread-local pointer read.
//
// Threading model: the active-plan pointer is thread-local, so a plan
// installed on one thread is invisible to workers spawned by the parallel
// sweep engine (numeric::parallelFor) — a plan is never shared across
// threads. Sweeps that want faults inside their workers install their own
// per-work-item plan on the worker thread: runMonteCarlo clones the caller's
// plan per trial (fresh solve ordinals each trial, so injection windows are
// trial-relative and independent of the execution schedule) and folds the
// clones' counters back into the caller's plan with absorb(). Other parallel
// sweeps (searchMany, tuner, design space) do not propagate plans.
#pragma once

#include <limits>
#include <vector>

namespace fetcam::recover {

enum class FaultKind {
    NanCurrent,
    SingularStamp,
    StuckPolarization,
    // --- network faults (consulted by net::Client's send path; the window
    // counts outbound frame ordinals via beginNetFrame, not Newton solves) ---
    TornFrame,     ///< send a prefix of the frame, then close the connection
    GarbageBytes,  ///< corrupt frame bytes before sending (CRC/magic damage)
    Disconnect,    ///< close the connection instead of sending the frame
    StalledRead,   ///< send only the frame header, then stall (slowloris)
};

const char* faultKindName(FaultKind kind) noexcept;

struct FaultSpec {
    FaultKind kind = FaultKind::NanCurrent;
    /// Half-open ordinal window [fromSolve, toSolve) during which the fault
    /// is live. Solver faults count Newton solves (beginSolve); network
    /// faults count outbound frames (beginNetFrame). Defaults cover the
    /// whole run.
    long long fromSolve = 0;
    long long toSolve = std::numeric_limits<long long>::max();
    /// Node whose row is poisoned (NanCurrent / SingularStamp).
    int node = 1;
};

/// Faults live for one particular Newton solve.
struct SolveFaults {
    bool nanCurrent = false;
    bool singularStamp = false;
    int node = 1;
    bool any() const noexcept { return nanCurrent || singularStamp; }
};

/// Faults live for one particular outbound network frame.
struct FrameFaults {
    bool tornFrame = false;
    bool garbageBytes = false;
    bool disconnect = false;
    bool stalledRead = false;
    bool any() const noexcept {
        return tornFrame || garbageBytes || disconnect || stalledRead;
    }
};

class FaultPlan {
public:
    FaultPlan() = default;
    explicit FaultPlan(std::vector<FaultSpec> specs) : specs_(std::move(specs)) {}

    void add(const FaultSpec& spec) { specs_.push_back(spec); }

    /// Advance the solve ordinal and report the faults live for this solve.
    /// Called once per solveNewton invocation.
    SolveFaults beginSolve() noexcept;

    /// Advance the outbound-frame ordinal and report the network faults live
    /// for this frame. Called once per frame the net client sends; the
    /// ordinal stream is independent of the solver's, so one plan can window
    /// both without interference.
    FrameFaults beginNetFrame() noexcept;

    /// True while any StuckPolarization spec is present (not solve-windowed:
    /// polarization commits happen on accepted steps, not solves).
    bool stuckPolarization() const noexcept;

    long long solvesSeen() const noexcept { return nextSolve_; }
    long long framesSeen() const noexcept { return nextFrame_; }
    long long injectionCount() const noexcept { return injections_; }

    const std::vector<FaultSpec>& specs() const noexcept { return specs_; }

    /// Fold a per-work-item clone's activity back into this plan. Parallel
    /// sweeps run `FaultPlan(parent.specs())` clones on their workers and
    /// absorb the counters in work-item order after the join.
    void absorb(long long solves, long long injections) noexcept {
        nextSolve_ += solves;
        injections_ += injections;
    }

    /// The plan installed on this thread, or nullptr.
    static FaultPlan* active() noexcept;

private:
    friend class ScopedFaultPlan;

    std::vector<FaultSpec> specs_;
    long long nextSolve_ = 0;
    long long nextFrame_ = 0;
    long long injections_ = 0;
};

/// Installs `plan` as the thread's active plan for the guard's lifetime;
/// restores the previously installed plan (if any) on destruction.
class ScopedFaultPlan {
public:
    explicit ScopedFaultPlan(FaultPlan& plan);
    ~ScopedFaultPlan();

    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

private:
    FaultPlan* previous_;
};

}  // namespace fetcam::recover
