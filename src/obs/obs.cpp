#include "obs/obs.hpp"

#include <cstdlib>
#include <string>

namespace fetcam::obs {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

void setEnabled(bool on) noexcept {
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

bool initFromEnv() {
    const char* env = std::getenv("FETCAM_TRACE");
    if (env == nullptr) return false;
    const std::string value(env);
    if (value.empty() || value == "0") return false;
    const std::string path = value == "1" ? "fetcam_trace.jsonl" : value;
    TraceSink::global().open(path);  // metrics stay useful even if open fails
    setEnabled(true);
    return true;
}

}  // namespace fetcam::obs
