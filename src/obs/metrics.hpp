// Named metrics: counters, gauges, histograms, and RAII scoped timers.
//
// All mutation paths are lock-free atomics so instruments can sit inside the
// solver hot loops; registration (name lookup) takes a mutex and allocates,
// so call sites cache the returned reference in a function-local static.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fetcam::obs {

/// Monotonic wall clock in seconds (std::chrono::steady_clock).
double monotonicSeconds() noexcept;

/// Monotonically increasing event count.
class Counter {
public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void add(long long n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    long long value() const noexcept { return value_.load(std::memory_order_relaxed); }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
    const std::string& name() const { return name_; }

private:
    std::string name_;
    std::atomic<long long> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    double value() const noexcept { return value_.load(std::memory_order_relaxed); }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
    const std::string& name() const { return name_; }

private:
    std::string name_;
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with running count/sum/min/max.
///
/// `bounds` are ascending bucket upper bounds; an implicit overflow bucket
/// catches everything above the last bound, so counts() has bounds.size()+1
/// entries. Bucket i holds observations v with v <= bounds[i] (and
/// > bounds[i-1]).
class Histogram {
public:
    Histogram(std::string name, std::vector<double> bounds);

    void observe(double v) noexcept;

    const std::string& name() const { return name_; }
    const std::vector<double>& bounds() const { return bounds_; }
    std::vector<long long> counts() const;
    long long count() const noexcept { return count_.load(std::memory_order_relaxed); }
    double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    double mean() const noexcept;
    double min() const noexcept;  ///< +inf when empty
    double max() const noexcept;  ///< -inf when empty
    void reset() noexcept;

    /// Log-spaced bucket bounds covering [lo, hi] with `perDecade` bounds per
    /// decade — the standard shape for wall-time histograms.
    static std::vector<double> exponentialBounds(double lo, double hi, int perDecade = 3);

private:
    std::string name_;
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<long long>[]> buckets_;  // bounds_.size() + 1
    std::atomic<long long> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Estimated q-quantile (q in [0, 1]) from a histogram's buckets: finds the
/// bucket holding the q-th observation and interpolates linearly inside it,
/// clamped to the observed min/max so tail estimates never exceed reality.
/// Returns NaN for an empty histogram. Resolution is bucket-bounded — with
/// the default exponential seconds buckets, good to a factor of ~2 at p999 —
/// which is what the load tools report as p50/p99/p999.
double quantile(const Histogram& hist, double q);

/// Process-wide registry of named instruments. Lookups are heterogeneous
/// (string_view), so repeated lookups of a registered name do not allocate.
class Registry {
public:
    static Registry& global();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    /// First registration fixes the bucket bounds; later calls with the same
    /// name return the existing histogram and ignore `bounds`. Empty bounds
    /// default to exponential seconds buckets [1us, 100s].
    Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

    /// Snapshot accessors for reporting (copies the pointer lists, not data).
    std::vector<const Counter*> counters() const;
    std::vector<const Gauge*> gauges() const;
    std::vector<const Histogram*> histograms() const;

    /// Zero every instrument (tests / between-run hygiene). Instruments stay
    /// registered so cached references remain valid.
    void resetAll();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Convenience forwarders onto Registry::global().
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

/// RAII wall-time scope: on destruction adds the elapsed monotonic seconds to
/// a histogram and/or a plain double accumulator. Construction costs one
/// clock read; no allocation.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& hist) : hist_(&hist), t0_(monotonicSeconds()) {}
    explicit ScopedTimer(double& accum) : accum_(&accum), t0_(monotonicSeconds()) {}
    ScopedTimer(Histogram& hist, double& accum)
        : hist_(&hist), accum_(&accum), t0_(monotonicSeconds()) {}
    ~ScopedTimer() {
        const double dt = monotonicSeconds() - t0_;
        if (hist_) hist_->observe(dt);
        if (accum_) *accum_ += dt;
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /// Elapsed seconds so far (scope still open).
    double elapsed() const noexcept { return monotonicSeconds() - t0_; }

private:
    Histogram* hist_ = nullptr;
    double* accum_ = nullptr;
    double t0_ = 0.0;
};

}  // namespace fetcam::obs
