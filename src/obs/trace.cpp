#include "obs/trace.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace fetcam::obs {

namespace {

/// Minimal JSON string escaping: quotes, backslashes, control characters.
void appendEscaped(std::string& out, std::string_view s) {
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
}

void appendNumber(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

}  // namespace

TraceSink& TraceSink::global() {
    static TraceSink instance;
    return instance;
}

TraceSink::~TraceSink() { close(); }

bool TraceSink::open(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open()) out_.close();
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_) {
        active_.store(false, std::memory_order_relaxed);
        return false;
    }
    path_ = path;
    epoch_ = std::chrono::steady_clock::now();
    active_.store(true, std::memory_order_relaxed);
    return true;
}

void TraceSink::close() {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.store(false, std::memory_order_relaxed);
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

double TraceSink::now() const noexcept {
    if (!active()) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void TraceSink::event(std::string_view name, std::initializer_list<Field> fields) {
    if (!active()) return;
    writeRecord("event", name, now(), spanDepth(), fields.begin(), fields.size(),
                /*dur=*/0.0, /*hasDur=*/false);
}

void TraceSink::span(std::string_view name, double ts, double dur, int depth,
                     const std::vector<Field>& fields) {
    if (!active()) return;
    writeRecord("span", name, ts, depth, fields.data(), fields.size(), dur, /*hasDur=*/true);
}

void TraceSink::writeRecord(std::string_view type, std::string_view name, double ts,
                            int depth, const Field* fields, std::size_t numFields,
                            double dur, bool hasDur) {
    std::string line;
    line.reserve(128 + numFields * 24);
    line += "{\"type\":\"";
    line += type;
    line += "\",\"name\":\"";
    appendEscaped(line, name);
    line += "\",\"ts\":";
    appendNumber(line, ts);
    if (hasDur) {
        line += ",\"dur\":";
        appendNumber(line, dur);
    }
    line += ",\"depth\":";
    appendNumber(line, depth);
    for (std::size_t i = 0; i < numFields; ++i) {
        const Field& f = fields[i];
        line += ",\"";
        appendEscaped(line, f.key());
        line += "\":";
        switch (f.kind()) {
            case Field::Kind::Num: appendNumber(line, f.num()); break;
            case Field::Kind::Int: line += std::to_string(f.intValue()); break;
            case Field::Kind::Bool: line += f.intValue() ? "true" : "false"; break;
            case Field::Kind::Str:
                line += '"';
                appendEscaped(line, f.str());
                line += '"';
                break;
        }
    }
    line += "}\n";

    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open()) out_ << line;
}

int& spanDepth() noexcept {
    thread_local int depth = 0;
    return depth;
}

SpanGuard::SpanGuard(const char* name, std::initializer_list<Field> fields) : name_(name) {
    auto& sink = TraceSink::global();
    if (!sink.active()) return;
    active_ = true;
    fields_.assign(fields.begin(), fields.end());
    depth_ = spanDepth()++;
    t0_ = sink.now();
}

SpanGuard::~SpanGuard() {
    if (!active_) return;
    --spanDepth();
    auto& sink = TraceSink::global();
    sink.span(name_, t0_, sink.now() - t0_, depth_, fields_);
}

void SpanGuard::add(Field field) {
    if (active_) fields_.push_back(field);
}

}  // namespace fetcam::obs
