// Reader for the JSONL traces TraceSink writes: a minimal flat-JSON parser
// plus span aggregation (total/self time per span name) used by the
// fetcam_trace CLI and the obs tests.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fetcam::obs {

/// One parsed trace line. Booleans land in `num` as 0/1; the well-known
/// header keys (type/name/ts/dur/depth) are lifted into struct fields and
/// also left out of the maps.
struct TraceRecord {
    std::string type;  ///< "span" or "event"
    std::string name;
    double ts = 0.0;   ///< seconds since trace start
    double dur = 0.0;  ///< span duration (0 for events)
    int depth = 0;
    std::map<std::string, double> num;
    std::map<std::string, std::string> str;

    bool isSpan() const { return type == "span"; }
    bool isEvent() const { return type == "event"; }
    double end() const { return ts + dur; }
};

/// Parse one JSONL line; std::nullopt for blank lines, throws
/// std::runtime_error on malformed JSON.
std::optional<TraceRecord> parseTraceLine(std::string_view line);

/// Read a whole trace file; throws std::runtime_error (with line number) on
/// I/O or parse errors.
std::vector<TraceRecord> readTraceFile(const std::string& path);

/// Aggregated wall time for all spans sharing a name.
struct SpanStat {
    std::string name;
    long long count = 0;
    double total = 0.0;  ///< sum of durations
    double self = 0.0;   ///< total minus time spent in direct child spans
    double max = 0.0;    ///< longest single span
};

/// Aggregate spans by name, computing self time from (ts, dur, depth)
/// nesting. Sorted by self time, descending.
std::vector<SpanStat> spanStats(const std::vector<TraceRecord>& records);

}  // namespace fetcam::obs
