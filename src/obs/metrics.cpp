#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace fetcam::obs {

double monotonicSeconds() noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

namespace {

/// Relaxed atomic-double accumulate (no std::atomic<double>::fetch_add pre-C++20
/// on all libstdc++ configs; a CAS loop is portable and contention here is nil).
void atomicAdd(std::atomic<double>& target, double delta) noexcept {
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
}

void atomicMin(std::atomic<double>& target, double v) noexcept {
    double cur = target.load(std::memory_order_relaxed);
    while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void atomicMax(std::atomic<double>& target, double v) noexcept {
    double cur = target.load(std::memory_order_relaxed);
    while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
    std::sort(bounds_.begin(), bounds_.end());
    buckets_ = std::make_unique<std::atomic<long long>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

std::vector<long long> Histogram::counts() const {
    std::vector<long long> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double Histogram::mean() const noexcept {
    const long long n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

void Histogram::reset() noexcept {
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

double quantile(const Histogram& hist, double q) {
    const auto counts = hist.counts();
    const long long total = hist.count();
    if (total <= 0) return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    const auto& bounds = hist.bounds();
    // Rank of the target observation (1-based), then walk the buckets.
    const double rank = q * static_cast<double>(total);
    long long seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        const long long before = seen;
        seen += counts[i];
        if (static_cast<double>(seen) < rank) continue;
        // Interpolate inside bucket i: (lo, hi] with lo = previous bound
        // (observed min for the first populated bucket) and hi = bounds[i]
        // (observed max for the overflow bucket).
        const double lo = i == 0 ? hist.min() : bounds[i - 1];
        const double hi = i < bounds.size() ? bounds[i] : hist.max();
        const double frac =
            (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
        const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        return std::clamp(v, hist.min(), hist.max());
    }
    return hist.max();
}

std::vector<double> Histogram::exponentialBounds(double lo, double hi, int perDecade) {
    std::vector<double> bounds;
    if (lo <= 0.0 || hi <= lo || perDecade < 1) return bounds;
    const double step = std::pow(10.0, 1.0 / perDecade);
    for (double b = lo; b < hi * (1.0 + 1e-12); b *= step) bounds.push_back(b);
    return bounds;
}

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = counters_.find(name); it != counters_.end()) return *it->second;
    auto [it, _] = counters_.emplace(std::string(name),
                                     std::make_unique<Counter>(std::string(name)));
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = gauges_.find(name); it != gauges_.end()) return *it->second;
    auto [it, _] =
        gauges_.emplace(std::string(name), std::make_unique<Gauge>(std::string(name)));
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = histograms_.find(name); it != histograms_.end()) return *it->second;
    if (bounds.empty()) bounds = Histogram::exponentialBounds(1e-6, 100.0);
    auto [it, _] = histograms_.emplace(
        std::string(name), std::make_unique<Histogram>(std::string(name), std::move(bounds)));
    return *it->second;
}

std::vector<const Counter*> Registry::counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Counter*> out;
    out.reserve(counters_.size());
    for (const auto& [_, c] : counters_) out.push_back(c.get());
    return out;
}

std::vector<const Gauge*> Registry::gauges() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Gauge*> out;
    out.reserve(gauges_.size());
    for (const auto& [_, g] : gauges_) out.push_back(g.get());
    return out;
}

std::vector<const Histogram*> Registry::histograms() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Histogram*> out;
    out.reserve(histograms_.size());
    for (const auto& [_, h] : histograms_) out.push_back(h.get());
    return out;
}

void Registry::resetAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [_, c] : counters_) c->reset();
    for (auto& [_, g] : gauges_) g->reset();
    for (auto& [_, h] : histograms_) h->reset();
}

Counter& counter(std::string_view name) { return Registry::global().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::global().gauge(name); }
Histogram& histogram(std::string_view name, std::vector<double> bounds) {
    return Registry::global().histogram(name, std::move(bounds));
}

}  // namespace fetcam::obs
