// fetcam::obs — observability substrate for the simulation stack.
//
// Three pieces, all opt-in at runtime:
//   * a global enabled() switch (off by default) that gates every
//     instrumentation site down to a single relaxed atomic load,
//   * a metrics registry of named counters / gauges / histograms plus RAII
//     scoped timers on the monotonic clock (metrics.hpp),
//   * a structured JSONL trace sink emitting span and event records
//     (trace.hpp), readable back via trace_reader.hpp.
//
// Conventions for instrumentation sites (the solver hot loops):
//   * check obs::enabled() first; everything behind that check may assume
//     observability is on,
//   * cache registry handles in function-local statics so the name lookup
//     happens once per process, not once per step,
//   * a fully disabled registry must stay allocation-free on the hot path
//     (guarded by tests/obs_test.cpp).
#pragma once

#include <atomic>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fetcam::obs {

namespace detail {
extern std::atomic<bool> gEnabled;
}  // namespace detail

/// Global observability switch. Off by default; near-zero cost when off.
inline bool enabled() noexcept { return detail::gEnabled.load(std::memory_order_relaxed); }

void setEnabled(bool on) noexcept;

/// Configure from the FETCAM_TRACE environment variable:
///   unset / "" / "0"  -> leave observability off
///   "1"               -> enable metrics + open "fetcam_trace.jsonl"
///   any other value   -> treated as a JSONL output path; enable + open it
/// Returns true if observability ended up enabled.
bool initFromEnv();

}  // namespace fetcam::obs
