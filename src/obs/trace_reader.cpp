#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace fetcam::obs {

namespace {

/// Cursor over one line of flat JSON.
struct Cursor {
    std::string_view s;
    std::size_t i = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("trace parse error at column " + std::to_string(i) + ": " +
                                 what);
    }
    void skipWs() {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    }
    char peek() const { return i < s.size() ? s[i] : '\0'; }
    void expect(char c) {
        skipWs();
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++i;
    }
    bool consume(char c) {
        skipWs();
        if (peek() != c) return false;
        ++i;
        return true;
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (i < s.size() && s[i] != '"') {
            char ch = s[i++];
            if (ch == '\\') {
                if (i >= s.size()) fail("dangling escape");
                const char esc = s[i++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (i + 4 > s.size()) fail("short \\u escape");
                        const int code =
                            static_cast<int>(std::strtol(std::string(s.substr(i, 4)).c_str(),
                                                         nullptr, 16));
                        i += 4;
                        // Flat ASCII escapes only (that's all the sink emits).
                        out += static_cast<char>(code);
                        break;
                    }
                    default: fail("unknown escape");
                }
            } else {
                out += ch;
            }
        }
        if (i >= s.size()) fail("unterminated string");
        ++i;  // closing quote
        return out;
    }

    double parseNumber() {
        skipWs();
        const char* begin = s.data() + i;
        char* end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin) fail("expected number");
        i += static_cast<std::size_t>(end - begin);
        return v;
    }

    bool consumeWord(std::string_view w) {
        skipWs();
        if (s.substr(i, w.size()) != w) return false;
        i += w.size();
        return true;
    }
};

}  // namespace

std::optional<TraceRecord> parseTraceLine(std::string_view line) {
    Cursor c{line};
    c.skipWs();
    if (c.i >= line.size()) return std::nullopt;

    TraceRecord rec;
    c.expect('{');
    if (!c.consume('}')) {
        do {
            const std::string key = c.parseString();
            c.expect(':');
            c.skipWs();
            if (c.peek() == '"') {
                const std::string value = c.parseString();
                if (key == "type") rec.type = value;
                else if (key == "name") rec.name = value;
                else rec.str[key] = value;
            } else if (c.consumeWord("true")) {
                rec.num[key] = 1.0;
            } else if (c.consumeWord("false")) {
                rec.num[key] = 0.0;
            } else if (c.consumeWord("null")) {
                // ignore
            } else {
                const double value = c.parseNumber();
                if (key == "ts") rec.ts = value;
                else if (key == "dur") rec.dur = value;
                else if (key == "depth") rec.depth = static_cast<int>(value);
                else rec.num[key] = value;
            }
        } while (c.consume(','));
        c.expect('}');
    }
    c.skipWs();
    if (c.i != line.size()) c.fail("trailing characters");
    return rec;
}

std::vector<TraceRecord> readTraceFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open trace file: " + path);
    std::vector<TraceRecord> out;
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        try {
            if (auto rec = parseTraceLine(line)) out.push_back(std::move(*rec));
        } catch (const std::runtime_error& e) {
            throw std::runtime_error(path + ":" + std::to_string(lineNo) + ": " + e.what());
        }
    }
    return out;
}

std::vector<SpanStat> spanStats(const std::vector<TraceRecord>& records) {
    // Spans are written when they close (children before parents), so order
    // them by start time to reconstruct nesting. Within one thread, spans at
    // equal depth are disjoint; a span's parent is the latest shallower span
    // that started at or before it.
    std::vector<const TraceRecord*> spans;
    for (const auto& r : records)
        if (r.isSpan()) spans.push_back(&r);
    std::stable_sort(spans.begin(), spans.end(), [](const auto* a, const auto* b) {
        if (a->ts != b->ts) return a->ts < b->ts;
        return a->depth < b->depth;
    });

    std::unordered_map<const TraceRecord*, double> childTime;
    std::vector<const TraceRecord*> lastAtDepth;
    for (const auto* s : spans) {
        const auto depth = static_cast<std::size_t>(std::max(s->depth, 0));
        if (lastAtDepth.size() <= depth) lastAtDepth.resize(depth + 1, nullptr);
        lastAtDepth[depth] = s;
        std::fill(lastAtDepth.begin() + static_cast<std::ptrdiff_t>(depth) + 1,
                  lastAtDepth.end(), nullptr);
        if (depth > 0 && lastAtDepth[depth - 1] != nullptr)
            childTime[lastAtDepth[depth - 1]] += s->dur;
    }

    std::map<std::string, SpanStat> byName;
    for (const auto* s : spans) {
        auto& stat = byName[s->name];
        stat.name = s->name;
        ++stat.count;
        stat.total += s->dur;
        stat.self += std::max(0.0, s->dur - childTime[s]);
        stat.max = std::max(stat.max, s->dur);
    }

    std::vector<SpanStat> out;
    out.reserve(byName.size());
    for (auto& [_, stat] : byName) out.push_back(std::move(stat));
    std::sort(out.begin(), out.end(),
              [](const SpanStat& a, const SpanStat& b) { return a.self > b.self; });
    return out;
}

}  // namespace fetcam::obs
