// Structured trace sink: JSONL span/event records.
//
// One record per line, flat JSON objects only:
//   {"type":"span","name":"spice.transient","ts":1.2e-3,"dur":4.5e-2,"depth":0,...}
//   {"type":"event","name":"step.accept","ts":2.0e-3,"depth":1,"t":1e-9,"dt":5e-12,...}
//
// `ts` is monotonic wall seconds since the sink was opened; `depth` is the
// span-nesting depth on the emitting thread (spans report the depth at which
// they opened; events report the number of spans open around them). Spans are
// written when they close, so a parent appears *after* its children in the
// file — readers reconstruct nesting from (ts, dur, depth).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fetcam::obs {

/// One extra key/value attached to a span or event record.
class Field {
public:
    enum class Kind { Num, Int, Bool, Str };

    Field(const char* key, double v) : key_(key), kind_(Kind::Num), num_(v) {}
    Field(const char* key, int v) : key_(key), kind_(Kind::Int), int_(v) {}
    Field(const char* key, long long v) : key_(key), kind_(Kind::Int), int_(v) {}
    Field(const char* key, bool v) : key_(key), kind_(Kind::Bool), int_(v ? 1 : 0) {}
    Field(const char* key, std::string_view v) : key_(key), kind_(Kind::Str), str_(v) {}
    Field(const char* key, const char* v) : key_(key), kind_(Kind::Str), str_(v) {}

    const char* key() const { return key_; }
    Kind kind() const { return kind_; }
    double num() const { return num_; }
    long long intValue() const { return int_; }
    std::string_view str() const { return str_; }

private:
    const char* key_;
    Kind kind_;
    double num_ = 0.0;
    long long int_ = 0;
    std::string_view str_;  // must outlive the emit call (true for literals)
};

/// Process-wide JSONL writer. Inactive (every emit a cheap early-out) until
/// open() succeeds. Thread-safe: one mutex around the stream, span depth is
/// thread-local.
class TraceSink {
public:
    static TraceSink& global();

    /// Open (truncate) `path` and start accepting records. Returns false and
    /// stays inactive if the file cannot be created.
    bool open(const std::string& path);
    void close();
    bool active() const noexcept { return active_.load(std::memory_order_relaxed); }
    const std::string& path() const { return path_; }

    /// Emit an event record at the current time and span depth.
    void event(std::string_view name, std::initializer_list<Field> fields = {});

    /// Emit a closed span record (normally via SpanGuard, not directly).
    void span(std::string_view name, double ts, double dur, int depth,
              const std::vector<Field>& fields);

    /// Monotonic seconds since open() (0 when inactive).
    double now() const noexcept;

    ~TraceSink();

private:
    TraceSink() = default;

    void writeRecord(std::string_view type, std::string_view name, double ts, int depth,
                     const Field* fields, std::size_t numFields, double dur, bool hasDur);

    std::atomic<bool> active_{false};
    std::mutex mutex_;
    std::ofstream out_;
    std::string path_;
    std::chrono::steady_clock::time_point epoch_{};
};

/// Current span-nesting depth on this thread.
int& spanDepth() noexcept;

/// RAII span: records the start time on construction, emits a span record on
/// destruction with the measured duration. No-op (no clock read, no
/// allocation) while the sink is inactive.
class SpanGuard {
public:
    explicit SpanGuard(const char* name, std::initializer_list<Field> fields = {});
    ~SpanGuard();

    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

    /// Attach an extra field before the span closes (e.g. a result computed
    /// inside the scope). Ignored while inactive.
    void add(Field field);

private:
    const char* name_;
    bool active_ = false;
    double t0_ = 0.0;
    int depth_ = 0;
    std::vector<Field> fields_;
};

}  // namespace fetcam::obs
