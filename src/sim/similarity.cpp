#include "sim/similarity.hpp"

#include <algorithm>

#include "recover/sim_error.hpp"

namespace fetcam::sim {

namespace {

/// The one total order everything sorts by: distance, then row.
bool hitLess(const SimilarityHit& a, const SimilarityHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.row < b.row;
}

}  // namespace

const char* similarityKindName(SimilarityKind kind) noexcept {
    switch (kind) {
        case SimilarityKind::NearestK: return "nearest";
        case SimilarityKind::Threshold: return "threshold";
    }
    return "?";
}

void validateSimilarityOptions(const SimilarityOptions& options) {
    if (options.kind != SimilarityKind::NearestK &&
        options.kind != SimilarityKind::Threshold)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "validateSimilarityOptions", "unknown similarity kind");
    if (options.maxResults < 1)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                "validateSimilarityOptions", "maxResults must be >= 1");
    if (options.kind == SimilarityKind::NearestK) {
        if (options.k < 1)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                    "validateSimilarityOptions", "k must be >= 1");
        if (static_cast<std::size_t>(options.k) > options.maxResults)
            throw recover::SimError(recover::SimErrorReason::InvalidSpec,
                                    "validateSimilarityOptions",
                                    "k exceeds the maxResults reply cap");
    }
}

TopSelector::TopSelector(const SimilarityOptions& options) : limit_(options.limit()) {
    if (options.kind == SimilarityKind::Threshold) maxDistance_ = options.maxDistance;
    heap_.reserve(limit_);
}

void TopSelector::consider(std::int64_t row, std::size_t distance) {
    if (maxDistance_ && distance > *maxDistance_) return;
    const SimilarityHit hit{row, static_cast<std::uint32_t>(distance)};
    if (heap_.size() < limit_) {
        heap_.push_back(hit);
        std::push_heap(heap_.begin(), heap_.end(), hitLess);
        return;
    }
    // Full: replace the current worst only if this hit is strictly better
    // in the (distance, row) order — a total order, so the surviving set is
    // the same whatever order candidates arrive in.
    if (!hitLess(hit, heap_.front())) return;
    std::pop_heap(heap_.begin(), heap_.end(), hitLess);
    heap_.back() = hit;
    std::push_heap(heap_.begin(), heap_.end(), hitLess);
}

SimilarityHits TopSelector::take() {
    std::sort_heap(heap_.begin(), heap_.end(), hitLess);
    return std::move(heap_);
}

SimilarityHits naiveSimilarity(const std::vector<std::optional<tcam::TernaryWord>>& rows,
                               const tcam::TernaryWord& key,
                               const SimilarityOptions& options) {
    validateSimilarityOptions(options);
    TopSelector selector(options);
    for (std::size_t r = 0; r < rows.size(); ++r)
        if (rows[r])
            selector.consider(static_cast<std::int64_t>(r), rows[r]->mismatchCount(key));
    return selector.take();
}

}  // namespace fetcam::sim
