#include "sim/mlc_model.hpp"

#include <cmath>
#include <limits>

#include "recover/sim_error.hpp"
#include "tcam/mlc_encode.hpp"

namespace fetcam::sim {

MlcCharacterization characterizeMlc(const device::TechCard& tech,
                                    const array::ArrayConfig& config,
                                    const MlcOptions& options,
                                    const array::WordSimFn& sim) {
    if (options.bitsPerCell < 1 || options.bitsPerCell > device::kMaxMlcBitsPerCell)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "characterizeMlc",
                                "bitsPerCell must be in [1, 4]");
    if (config.cell != tcam::CellKind::FeFet2 && config.cell != tcam::CellKind::FeFet2Nand)
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "characterizeMlc",
                                "MLC characterization requires an FeFET cell");

    const int statesPerCell = 1 << options.bitsPerCell;
    const auto ladder = device::mlcLevels(tech.fefet, statesPerCell);
    const auto base = array::evaluateArray(tech, config, options.workload, sim);

    MlcCharacterization out;
    out.bitsPerCell = options.bitsPerCell;
    out.statesPerCell = statesPerCell;
    out.cellsPerWord = tcam::mlcCellsPerWord(config.wordBits, options.bitsPerCell);
    out.windowV = ladder.windowV;
    out.vtStepV = ladder.vtStepV;
    out.binarySenseMarginV = base.senseMarginV;
    out.binaryEnergyPerBitFj = base.energyPerBitFj;

    // One-step overdrive instead of full-window: margin and discharge
    // current both shrink by (N-1), so the per-unit-distance time constant
    // and the worst-case detect latency stretch by the same factor.
    const double steps = static_cast<double>(statesPerCell - 1);
    out.senseMarginV = base.senseMarginV / steps;
    const double binaryDetect =
        base.mismatchWord.detectDelay ? *base.mismatchWord.detectDelay : base.searchDelay;
    out.tauUnitSeconds = binaryDetect * steps;
    out.searchDelay = base.searchDelay * steps;

    // Line-length energies scale with the shorter word; the sense amp is
    // per-row and does not.
    const double lineRatio = static_cast<double>(out.cellsPerWord) /
                             static_cast<double>(config.wordBits);
    const auto& e = base.perSearch;
    out.energyPerSearchJ =
        (e.ml + e.sl + e.staticRail) * lineRatio + e.sa;
    const double bitsServed =
        static_cast<double>(config.rows) * static_cast<double>(config.wordBits);
    out.energyPerBitFj = out.energyPerSearchJ / bitsServed * 1e15;

    out.functional = base.functional && out.senseMarginV > 0.0;
    return out;
}

std::vector<double> dischargeTimes(const std::vector<std::size_t>& distances,
                                   double tauUnitSeconds) {
    if (!(tauUnitSeconds > 0.0))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "dischargeTimes",
                                "tauUnit must be positive");
    std::vector<double> out;
    out.reserve(distances.size());
    for (const auto d : distances) {
        if (d == kEmptyRowDistance)
            out.push_back(0.0);
        else if (d == 0)
            out.push_back(std::numeric_limits<double>::infinity());
        else
            out.push_back(tauUnitSeconds / static_cast<double>(d));
    }
    return out;
}

double strobeFor(double tauUnitSeconds, std::size_t maxDistance) {
    if (!(tauUnitSeconds > 0.0))
        throw recover::SimError(recover::SimErrorReason::InvalidSpec, "strobeFor",
                                "tauUnit must be positive");
    // Accept distances <= D: the slowest rejected row (d = D+1) discharges
    // at tauUnit/(D+1), the fastest accepted one (d = D, when D > 0) at
    // tauUnit/D. Strobing at their geometric mean leaves the same *ratio*
    // of timing slack on both sides. D = 0 (exact match only) has no finite
    // accepted time; strobe one octave past the first rejected row.
    const double rejected = tauUnitSeconds / static_cast<double>(maxDistance + 1);
    if (maxDistance == 0) return rejected * 2.0;
    const double accepted = tauUnitSeconds / static_cast<double>(maxDistance);
    return std::sqrt(accepted * rejected);
}

}  // namespace fetcam::sim
