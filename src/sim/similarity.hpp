// Similarity-query vocabulary shared by the serving engine, the net
// protocol front-end, the tools and the benches.
//
// Two query shapes, both defined over the bitwise Hamming distance the
// bit-plane mismatchCounts kernel computes (wildcard stored trits match
// everything, exactly like TernaryWord::mismatchCount):
//
//   * NearestK  — the k best rows, best-first,
//   * Threshold — every row at distance <= maxDistance, capped at
//                 maxResults rows (the cap keeps replies bounded; it is
//                 deterministic: the first maxResults in the order below).
//
// Ordering contract: hits sort by (distance ascending, row ascending).
// Lowest-row tie-breaking is the same priority-encoder convention the
// exact-match path uses, so a distance-0 NearestK(1) degenerates to
// findFirst. Results are a pure function of (entries, key, options) —
// never of thread schedule, backend, cache temperature, or shard layout —
// which is what makes the serving determinism contract testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "tcam/ternary.hpp"

namespace fetcam::sim {

enum class SimilarityKind : std::uint8_t {
    NearestK = 1,   ///< k best rows by (distance, row)
    Threshold = 2,  ///< all rows with distance <= maxDistance (capped)
};

/// Stable name ("nearest" / "threshold").
const char* similarityKindName(SimilarityKind kind) noexcept;

struct SimilarityOptions {
    SimilarityKind kind = SimilarityKind::NearestK;
    /// NearestK: rows requested.
    int k = 1;
    /// Threshold: largest accepted Hamming distance.
    std::size_t maxDistance = 0;
    /// Threshold reply cap (bounded replies on the wire); also the ceiling
    /// NearestK's k is validated against.
    std::size_t maxResults = 64;

    /// Rows one query may return: k for NearestK, maxResults for Threshold.
    std::size_t limit() const {
        return kind == SimilarityKind::NearestK ? static_cast<std::size_t>(k) : maxResults;
    }
};

/// Throws SimError(InvalidSpec) on an invalid kind, k < 1, k > maxResults,
/// or maxResults < 1.
void validateSimilarityOptions(const SimilarityOptions& options);

struct SimilarityHit {
    std::int64_t row = -1;
    std::uint32_t distance = 0;
    friend bool operator==(const SimilarityHit& a, const SimilarityHit& b) {
        return a.row == b.row && a.distance == b.distance;
    }
};

using SimilarityHits = std::vector<SimilarityHit>;

/// Bounded best-first selector: feed it every (row, distance) candidate in
/// any order, take() the hits sorted (distance, row). Keeps at most
/// options.limit() candidates via a max-heap on the same total order, so
/// the result never depends on insertion order — the determinism primitive
/// under the engine's shard scan.
class TopSelector {
public:
    explicit TopSelector(const SimilarityOptions& options);

    /// Offer one occupied row. Threshold queries drop rows beyond
    /// maxDistance here; both kinds keep only the limit() best.
    void consider(std::int64_t row, std::size_t distance);

    /// Sorted hits; the selector is empty afterwards.
    SimilarityHits take();

private:
    std::size_t limit_;
    std::optional<std::size_t> maxDistance_;
    SimilarityHits heap_;  ///< max-heap by (distance, row)
};

/// The trusted reference: the same selection computed row-at-a-time with
/// TernaryWord::mismatchCount over an optional-word table — no planes, no
/// backend machinery. Tests and bench_sim cross-check against this.
SimilarityHits naiveSimilarity(const std::vector<std::optional<tcam::TernaryWord>>& rows,
                               const tcam::TernaryWord& key,
                               const SimilarityOptions& options);

}  // namespace fetcam::sim
