// sim::characterizeMlc — energy / sense-margin / discharge characterization
// of a multi-level-cell FeFET array, built on the same calibrated word
// simulations the exact-match bank model uses.
//
// Methodology: the binary (1 bit/cell) array is characterized by
// array::evaluateArray — two real word-level circuit simulations (match and
// worst-case mismatch) routed through the caller's WordSimFn provider, i.e.
// through serve::CharacterizationCache when one is attached. Everything
// MLC-specific then scales analytically from the device ladder
// (device::mlcLevels):
//
//   * the memory window 2*deltaVt splits into N-1 VT steps, so the
//     worst-case sense margin shrinks by 1/(N-1) relative to binary,
//   * the matchline discharge current per unit *level distance* shrinks by
//     the same factor (one-step overdrive instead of full-window), so the
//     per-unit-distance discharge time constant tauUnit grows by (N-1) and
//     the worst-case search delay stretches with it,
//   * a wordBits-bit key occupies ceil(wordBits / bitsPerCell) cells, so
//     line lengths — matchline wire, searchline wire, storage rail — shrink
//     by cells/bits while the sense amplifier stays per-row; that ratio is
//     the energy win multi-bit CAM papers report.
//
// Because every circuit number flows through the provider, a cache-backed
// characterization is bit-identical cold vs warm and across restarts, with
// zero solver calls on the warm path — the same contract the exact-match
// serving stack already holds.
#pragma once

#include <cstddef>
#include <vector>

#include "array/energy_model.hpp"
#include "device/mlc.hpp"

namespace fetcam::sim {

struct MlcOptions {
    /// Bits stored per FeFET cell, 1..device::kMaxMlcBitsPerCell.
    int bitsPerCell = 2;
    array::WorkloadProfile workload;
};

struct MlcCharacterization {
    int bitsPerCell = 1;
    int statesPerCell = 2;
    int cellsPerWord = 0;      ///< ceil(wordBits / bitsPerCell)
    double windowV = 0.0;      ///< FeFET memory window 2*deltaVt [V]
    double vtStepV = 0.0;      ///< VT separation between adjacent levels [V]
    double senseMarginV = 0.0; ///< worst-case ML sense margin at this ladder [V]
    /// Matchline discharge time per unit distance [s]: a row at distance d
    /// discharges at tauUnit / d (see dischargeTimes below).
    double tauUnitSeconds = 0.0;
    double searchDelay = 0.0;       ///< worst-case (1-step) detect latency [s]
    double energyPerSearchJ = 0.0;  ///< whole-array energy per search [J]
    double energyPerBitFj = 0.0;    ///< fJ / bit / search
    /// Binary baseline the scaling started from (for reports/ratios).
    double binarySenseMarginV = 0.0;
    double binaryEnergyPerBitFj = 0.0;
    bool functional = false;  ///< calibration sims decided correctly and the
                              ///< subdivided margin stayed positive
};

/// Characterize `config` served as an MLC similarity array. `config.cell`
/// must be an FeFET kind (FeFet2 / FeFet2Nand); throws
/// SimError(InvalidSpec) otherwise or on an out-of-range bitsPerCell. Runs
/// the two calibration word sims through `sim` (empty = real solver).
MlcCharacterization characterizeMlc(const device::TechCard& tech,
                                    const array::ArrayConfig& config,
                                    const MlcOptions& options,
                                    const array::WordSimFn& sim = {});

// --- distance-tolerant sensing (generalizes AssociativeMemory's analog
// --- discharge model from nearest-of-all to bounded-distance selection) ---

/// Sentinel distance for an empty row (mirrors tcam::kNoEntry semantics):
/// its matchline is held discharged and can never read as a hit.
inline constexpr std::size_t kEmptyRowDistance = static_cast<std::size_t>(-1);

/// Per-row matchline discharge times for a distance vector:
///   d == 0               -> +inf   (exact match: the ML never discharges)
///   d == kEmptyRowDistance -> 0    (empty row: held low)
///   otherwise            -> tauUnit / d
std::vector<double> dischargeTimes(const std::vector<std::size_t>& distances,
                                   double tauUnitSeconds);

/// Strobe instant that separates distances <= maxDistance from the rest: a
/// row is still high at the strobe iff its discharge time exceeds it, i.e.
/// iff d <= maxDistance. Placed at the geometric mean of the last-accepted
/// and first-rejected discharge times, so the timing margin on both sides
/// is the same ratio. Throws SimError(InvalidSpec) on a non-positive
/// tauUnit.
double strobeFor(double tauUnitSeconds, std::size_t maxDistance);

}  // namespace fetcam::sim
