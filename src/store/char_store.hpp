// CharStore: crash-safe persistent characterization store.
//
// A store is a directory holding one append-only record log (`char.fcs`)
// plus a writer lock file (`char.lock`). Lifecycle:
//
//   * construction creates the directory (read-write mode) and takes an
//     exclusive advisory lock, so two writing processes can never interleave
//     appends into one log;
//   * load() streams and validates the log. A torn tail (crash mid-append)
//     is salvaged — the valid prefix is kept and the tail truncated before
//     the writer reattaches. A log that fails validation outright (bad
//     magic/CRC, container or schema version drift) is *quarantined* to
//     `char.fcs.corrupt` in read-write mode and a fresh log started; in
//     read-only mode the typed SimError(CorruptData) propagates so the
//     caller can fall back to cold characterization;
//   * append() write-behind-appends one record; flush() makes everything
//     appended so far durable (fflush + fsync);
//   * compact() atomically replaces the log with a deduplicated snapshot
//     (write to `char.fcs.tmp`, fsync, rename over the log).
//
// obs metrics (when obs::enabled()): store.records.loaded / .salvaged /
// .appended counters and a store.load span with per-load fields.
//
// Thread safety: load() is construction-time single-shot; append/flush/
// compact serialize on an internal mutex so the serve cache can append from
// concurrent characterize() misses.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "store/record_log.hpp"

namespace fetcam::store {

struct StoreConfig {
    std::string dir;                  ///< store directory; empty = no store
    bool readOnly = false;            ///< load only: no lock, no appends
    std::uint32_t schemaVersion = 0;  ///< key/payload layout the caller packs
    /// Log/lock file names inside the directory. Defaults are the
    /// characterization log; other record families (the entry delta log)
    /// share one directory by using distinct names, each with its own
    /// writer lock.
    std::string logName = "char.fcs";
    std::string lockName = "char.lock";

    bool enabled() const { return !dir.empty(); }
};

struct LoadStats {
    std::int64_t recordsLoaded = 0;    ///< usable records handed to the caller
    std::int64_t recordsSalvaged = 0;  ///< loaded from a log with a torn tail
    std::int64_t bytesLoaded = 0;
    std::int64_t tailBytesDropped = 0;  ///< torn bytes truncated away
    bool truncatedTail = false;
    bool startedFresh = false;  ///< no usable prior log existed
    bool quarantined = false;   ///< prior log failed validation, set aside
    std::string quarantineReason;
    double loadSeconds = 0.0;
};

class CharStore {
public:
    static constexpr const char* kLogName = "char.fcs";
    static constexpr const char* kLockName = "char.lock";
    /// Entry delta-record log names (see delta_log.hpp): same directory, own
    /// writer lock, so one store dir can hold both record families.
    static constexpr const char* kTableLogName = "table.fcs";
    static constexpr const char* kTableLockName = "table.lock";
    static constexpr const char* kQuarantineSuffix = ".corrupt";
    static constexpr const char* kCompactSuffix = ".tmp";

    /// Opens the store directory. Read-write mode creates it when missing
    /// and takes the writer lock. Throws SimError(IoError) when the
    /// directory cannot be created or another writer holds the lock.
    explicit CharStore(StoreConfig config);
    ~CharStore();
    CharStore(const CharStore&) = delete;
    CharStore& operator=(const CharStore&) = delete;

    /// Single-shot: read every valid record and (read-write mode) attach the
    /// appender after the last valid frame. See class comment for the
    /// salvage/quarantine rules. Throws SimError(CorruptData) only in
    /// read-only mode; SimError(InvalidSpec) when called twice.
    std::vector<Record> load();

    /// Append one record (write-behind: buffered until flush()). Throws
    /// SimError(InvalidSpec) in read-only mode or before load().
    void append(std::string_view key, std::string_view payload);

    /// Make every appended record durable.
    void flush();

    /// Atomically replace the log with exactly `records` (the caller dedups;
    /// the store just snapshots). Throws SimError(InvalidSpec) in read-only
    /// mode or before load().
    void compact(const std::vector<Record>& records);

    const StoreConfig& config() const { return config_; }
    const LoadStats& loadStats() const { return loadStats_; }
    std::int64_t appendedRecords() const;
    std::int64_t logBytes() const;
    std::string logPath() const;
    bool readOnly() const { return config_.readOnly; }

private:
    void openWriterLocked(std::int64_t resumeOffset);

    StoreConfig config_;
    LoadStats loadStats_;
    bool loaded_ = false;
    int lockFd_ = -1;

    mutable std::mutex mutex_;  ///< guards writer_ + appended_
    LogWriter writer_;
    std::int64_t appended_ = 0;
};

}  // namespace fetcam::store
