// Entry delta records: the second record family a store directory can hold,
// alongside the characterization log.
//
// A serving engine's entry table mutates while it runs (route churn, rule
// pushes); replaying only the *seed* table after a restart would silently
// roll those mutations back. The delta log records every applied mutation as
// a CRC-framed record in `table.fcs` (the same record_log container as
// `char.fcs`, with its own writer lock and its own schema version), so a
// warm restart replays the mutated table bit-identically.
//
// Record layout (kTableSchemaVersion 1):
//   key:     u8 version (kTableSchemaVersion, low byte)
//            u8 op      (DeltaOp)
//            i64 row    (native-endian, like every store integer)
//   payload: Insert — one byte per trit (0/1/2), wordBits long
//            Erase  — empty
//
// The key carries the version byte for the same reason the characterization
// keys do: the container-level schema gate already rejects foreign logs, and
// the in-record byte makes a record self-describing if it is ever carved out
// of a salvaged tail. Compaction rewrites the log as one Insert per occupied
// row (erases and overwrites collapse away).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "store/record_log.hpp"

namespace fetcam::store {

/// Layout version of the delta-record schema: bump whenever the key or
/// payload packing below changes shape.
inline constexpr std::uint32_t kTableSchemaVersion = 1;

enum class DeltaOp : std::uint8_t {
    Insert = 1,  ///< payload holds the word's trit bytes
    Erase = 2,   ///< payload empty
};

struct DeltaRecord {
    DeltaOp op = DeltaOp::Insert;
    std::int64_t row = 0;
    std::string trits;  ///< one byte per trit (0/1/2); empty for Erase
};

/// Serialize into a record-log Record.
Record packDelta(const DeltaRecord& delta);

/// Inverse of packDelta. nullopt when the record is not a valid delta of
/// this schema version (wrong key size, unknown op, version drift, trit
/// bytes outside {0,1,2}, payload/op mismatch) — the caller treats that as
/// typed corruption, never as a silent skip.
std::optional<DeltaRecord> unpackDelta(const Record& record);

}  // namespace fetcam::store
