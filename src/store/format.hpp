// On-disk format for the persistent characterization store.
//
// A store log is a fixed header followed by append-only records:
//
//   file header (20 bytes)
//     magic          8 bytes   "FCSTORE\0"
//     formatVersion  u32       container layout (kFormatVersion)
//     schemaVersion  u32       key/payload packing version supplied by the
//                              layer above (serve::kCharSchemaVersion) —
//                              bumped whenever the packed key or result
//                              layout changes, so stale physics can never
//                              silently alias into served results
//     headerCrc      u32       CRC-32 of the 16 preceding bytes
//
//   record (16-byte header + body), repeated
//     recordMagic    u32       kRecordMagic
//     keyLen         u32
//     payloadLen     u32
//     crc            u32       CRC-32 of keyLen || payloadLen || key || payload
//     key            keyLen bytes
//     payload        payloadLen bytes
//
// Integers and the payload doubles are native-endian: the log is a local
// warm-restart cache, not an interchange format, and the schema version
// guards every layout assumption the bytes make.
//
// Crash-safety argument: appends only ever grow the file, and a record's CRC
// is computed over its full body before any byte is written, so a crash mid-
// append leaves exactly one torn frame at the tail. Readers salvage the
// valid prefix (kept records are bounded by the last complete, CRC-valid
// frame) and writers truncate the torn tail before appending again. Any
// mismatch *inside* the prefix — bad magic, bad CRC, version drift — is real
// corruption and surfaces as a typed error instead of wrong numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fetcam::store {

inline constexpr std::size_t kMagicSize = 8;
inline constexpr char kFileMagic[kMagicSize] = {'F', 'C', 'S', 'T', 'O', 'R', 'E', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kRecordMagic = 0x46435245u;  // "FCRE"

inline constexpr std::size_t kFileHeaderSize = kMagicSize + 3 * sizeof(std::uint32_t);
inline constexpr std::size_t kRecordHeaderSize = 4 * sizeof(std::uint32_t);

/// Per-field sanity ceiling: no packed key or result comes anywhere close,
/// so a length beyond this is corruption, not a big record.
inline constexpr std::uint32_t kMaxFieldBytes = 1u << 24;

/// CRC-32 (IEEE 802.3, poly 0xEDB88320). `seed` chains partial computations.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Serialized 20-byte file header for a log carrying `schemaVersion` data.
std::string encodeFileHeader(std::uint32_t schemaVersion);

/// Serialized record frame (header + key + payload), CRC filled in.
std::string encodeRecord(std::string_view key, std::string_view payload);

}  // namespace fetcam::store
