// Streaming reader and append-only writer for a single store log file.
//
// readLog() validates magic, versions, and every record CRC. A partial frame
// at end-of-file — the signature of a crash mid-append — is *salvage*: the
// valid prefix is returned and the torn bytes reported through ReadStats.
// Anything invalid inside the prefix (bad magic, bad CRC, version drift) is
// a typed recover::SimError(CorruptData): the caller decides whether to
// quarantine and re-characterize cold, but it never gets wrong bytes.
//
// LogWriter appends complete frames through a stdio stream; flush() pushes
// them to the OS and fsyncs so a flushed record survives a process crash.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.hpp"

namespace fetcam::store {

/// One persisted characterization: packed cache key + packed result.
struct Record {
    std::string key;
    std::string payload;

    bool operator==(const Record&) const = default;
};

struct ReadStats {
    std::int64_t records = 0;         ///< valid records returned
    std::int64_t bytes = 0;           ///< header + valid record bytes
    std::int64_t goodOffset = 0;      ///< offset just past the last valid record
    std::int64_t tailBytesDropped = 0;  ///< torn bytes beyond goodOffset
    bool truncatedTail = false;
};

/// fsync a directory so a freshly created / renamed file inside it survives
/// a crash between file creation and directory-entry durability. Throws
/// SimError(IoError) when the directory cannot be opened or synced — never
/// best-effort, so callers can surface durability loss as a typed failure.
/// No-op on platforms without directory fsync.
void syncDirectory(const std::string& dir);

/// Read and validate an entire log. Throws recover::SimError:
///   IoError     — the file cannot be opened or read
///   CorruptData — bad file magic, header CRC, container/schema version
///                 mismatch, bad record magic, or a record CRC mismatch
/// A file too short to hold even the header counts as a torn tail (crash
/// between create and header write), not corruption.
std::vector<Record> readLog(const std::string& path, std::uint32_t schemaVersion,
                            ReadStats& stats);

/// Append-only writer for one log file.
class LogWriter {
public:
    LogWriter() = default;
    ~LogWriter();
    LogWriter(const LogWriter&) = delete;
    LogWriter& operator=(const LogWriter&) = delete;

    /// Open `path` for appending. `resumeOffset < 0` creates/truncates the
    /// file and writes a fresh header; otherwise the file is truncated to
    /// `resumeOffset` (dropping any torn tail readLog reported) and appends
    /// continue from there. Throws SimError(IoError) on failure.
    void open(const std::string& path, std::uint32_t schemaVersion,
              std::int64_t resumeOffset = -1);

    void append(std::string_view key, std::string_view payload);

    /// Flush buffered frames and fsync to disk.
    void flush();

    void close();
    bool isOpen() const { return file_ != nullptr; }

    /// Total file bytes (resume point plus everything appended since).
    std::int64_t fileBytes() const { return fileBytes_; }

private:
    std::FILE* file_ = nullptr;
    std::string path_;
    std::int64_t fileBytes_ = 0;
};

}  // namespace fetcam::store
