#include "store/delta_log.hpp"

#include <cstring>

namespace fetcam::store {

namespace {

constexpr std::size_t kDeltaKeySize = 1 + 1 + sizeof(std::int64_t);

}  // namespace

Record packDelta(const DeltaRecord& delta) {
    Record r;
    r.key.reserve(kDeltaKeySize);
    r.key.push_back(static_cast<char>(kTableSchemaVersion & 0xFF));
    r.key.push_back(static_cast<char>(delta.op));
    r.key.append(reinterpret_cast<const char*>(&delta.row), sizeof delta.row);
    if (delta.op == DeltaOp::Insert) r.payload = delta.trits;
    return r;
}

std::optional<DeltaRecord> unpackDelta(const Record& record) {
    if (record.key.size() != kDeltaKeySize) return std::nullopt;
    if (static_cast<std::uint8_t>(record.key[0]) != (kTableSchemaVersion & 0xFF))
        return std::nullopt;
    DeltaRecord d;
    const auto op = static_cast<std::uint8_t>(record.key[1]);
    if (op != static_cast<std::uint8_t>(DeltaOp::Insert) &&
        op != static_cast<std::uint8_t>(DeltaOp::Erase))
        return std::nullopt;
    d.op = static_cast<DeltaOp>(op);
    std::memcpy(&d.row, record.key.data() + 2, sizeof d.row);
    if (d.row < 0) return std::nullopt;
    if (d.op == DeltaOp::Erase) {
        if (!record.payload.empty()) return std::nullopt;
        return d;
    }
    if (record.payload.empty()) return std::nullopt;
    for (const char c : record.payload)
        if (static_cast<std::uint8_t>(c) > 2) return std::nullopt;
    d.trits = record.payload;
    return d;
}

}  // namespace fetcam::store
