#include "store/char_store.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define FETCAM_STORE_HAVE_FLOCK 1
#endif

namespace fetcam::store {

namespace fs = std::filesystem;
using recover::SimError;
using recover::SimErrorReason;

CharStore::CharStore(StoreConfig config) : config_(std::move(config)) {
    if (!config_.enabled())
        throw SimError(SimErrorReason::InvalidSpec, "store::CharStore",
                       "store directory must not be empty");
    std::error_code ec;
    if (!config_.readOnly) {
        fs::create_directories(config_.dir, ec);
        if (ec)
            throw SimError(SimErrorReason::IoError, "store::CharStore",
                           "cannot create store directory " + config_.dir + ": " +
                               ec.message());
#ifdef FETCAM_STORE_HAVE_FLOCK
        const std::string lockPath = (fs::path(config_.dir) / config_.lockName).string();
        lockFd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (lockFd_ < 0)
            throw SimError(SimErrorReason::IoError, "store::CharStore",
                           "cannot open lock file " + lockPath + ": " +
                               std::string(std::strerror(errno)));
        if (::flock(lockFd_, LOCK_EX | LOCK_NB) != 0) {
            ::close(lockFd_);
            lockFd_ = -1;
            throw SimError(SimErrorReason::IoError, "store::CharStore",
                           "store " + config_.dir +
                               " is locked by another writer (use readOnly to share)");
        }
#endif
    } else if (!fs::is_directory(config_.dir, ec)) {
        // Read-only against a missing directory: legal, just serves nothing.
    }
}

CharStore::~CharStore() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        try {
            writer_.flush();
        } catch (...) {
            // Destructor: best effort; the log still ends on a frame boundary.
        }
        writer_.close();
    }
#ifdef FETCAM_STORE_HAVE_FLOCK
    if (lockFd_ >= 0) {
        ::flock(lockFd_, LOCK_UN);
        ::close(lockFd_);
    }
#endif
}

std::string CharStore::logPath() const {
    return (fs::path(config_.dir) / config_.logName).string();
}

std::vector<Record> CharStore::load() {
    if (loaded_)
        throw SimError(SimErrorReason::InvalidSpec, "store::CharStore",
                       "load() may only run once per store");
    loaded_ = true;

    const bool obsOn = obs::enabled();
    const double t0 = obsOn ? obs::monotonicSeconds() : 0.0;
    obs::SpanGuard span("store.load", {{"dir", config_.dir}});

    const std::string path = logPath();
    std::vector<Record> records;
    ReadStats rs;
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        loadStats_.startedFresh = true;
        if (!config_.readOnly) {
            std::lock_guard<std::mutex> lock(mutex_);
            openWriterLocked(-1);
        }
    } else {
        try {
            records = readLog(path, config_.schemaVersion, rs);
            loadStats_.recordsLoaded = rs.records;
            loadStats_.bytesLoaded = rs.bytes;
            loadStats_.truncatedTail = rs.truncatedTail;
            loadStats_.tailBytesDropped = rs.tailBytesDropped;
            if (rs.truncatedTail) loadStats_.recordsSalvaged = rs.records;
            if (!config_.readOnly) {
                std::lock_guard<std::mutex> lock(mutex_);
                // Reattach after the last valid frame; a goodOffset of 0
                // means even the header was torn, so start fresh.
                openWriterLocked(rs.goodOffset > 0 ? rs.goodOffset : 0);
            }
        } catch (const SimError& e) {
            if (e.reason() != SimErrorReason::CorruptData || config_.readOnly) throw;
            // Read-write mode: the log is unusable (corruption or version
            // drift). Quarantine it for post-mortem and start fresh — cold
            // characterization repopulates; stale physics never serves.
            records.clear();
            loadStats_ = {};
            loadStats_.quarantined = true;
            loadStats_.quarantineReason = e.what();
            loadStats_.startedFresh = true;
            fs::rename(path, path + kQuarantineSuffix, ec);
            if (ec)
                throw SimError(SimErrorReason::IoError, "store::CharStore",
                               "cannot quarantine corrupt log " + path + ": " +
                                   ec.message());
            std::lock_guard<std::mutex> lock(mutex_);
            openWriterLocked(-1);
        }
    }

    if (obsOn) {
        loadStats_.loadSeconds = obs::monotonicSeconds() - t0;
        static obs::Counter& loaded = obs::counter("store.records.loaded");
        static obs::Counter& salvaged = obs::counter("store.records.salvaged");
        loaded.add(loadStats_.recordsLoaded);
        salvaged.add(loadStats_.recordsSalvaged);
        if (loadStats_.quarantined) obs::counter("store.quarantined").add();
    }
    return records;
}

void CharStore::openWriterLocked(std::int64_t resumeOffset) {
    writer_.open(logPath(), config_.schemaVersion, resumeOffset);
    // A fresh log (or a header rewritten at offset 0) is a new directory
    // entry: fsync the directory too, or a crash between file creation and
    // dir-entry durability could orphan the first appends. Typed, not
    // best-effort — losing durability must not be silent.
    if (resumeOffset <= 0) syncDirectory(config_.dir);
}

void CharStore::append(std::string_view key, std::string_view payload) {
    if (config_.readOnly)
        throw SimError(SimErrorReason::InvalidSpec, "store::CharStore",
                       "append on a read-only store");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!writer_.isOpen())
        throw SimError(SimErrorReason::InvalidSpec, "store::CharStore",
                       "append before load()");
    writer_.append(key, payload);
    ++appended_;
    if (obs::enabled()) {
        static obs::Counter& appended = obs::counter("store.records.appended");
        appended.add();
    }
}

void CharStore::flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (writer_.isOpen()) writer_.flush();
}

void CharStore::compact(const std::vector<Record>& records) {
    if (config_.readOnly)
        throw SimError(SimErrorReason::InvalidSpec, "store::CharStore",
                       "compact on a read-only store");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!writer_.isOpen())
        throw SimError(SimErrorReason::InvalidSpec, "store::CharStore",
                       "compact before load()");
    obs::SpanGuard span("store.compact",
                        {{"records", static_cast<long long>(records.size())}});

    const std::string path = logPath();
    const std::string tmp = path + kCompactSuffix;
    {
        // Snapshot into a sibling file, make it durable, then rename over
        // the log: a crash at any point leaves either the old log or the
        // complete new one, never a half-written mix.
        LogWriter snapshot;
        snapshot.open(tmp, config_.schemaVersion, -1);
        for (const auto& r : records) snapshot.append(r.key, r.payload);
        snapshot.flush();
    }
    writer_.close();
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        // Put the appender back on the old log so the store stays usable.
        writer_.open(path, config_.schemaVersion,
                     static_cast<std::int64_t>(fs::file_size(path)));
        throw SimError(SimErrorReason::IoError, "store::CharStore",
                       "compaction rename failed: " + ec.message());
    }
    // The rename replaced the directory entry; make that durable before
    // acknowledging the compaction.
    syncDirectory(config_.dir);
    writer_.open(path, config_.schemaVersion,
                 static_cast<std::int64_t>(fs::file_size(path)));
}

std::int64_t CharStore::appendedRecords() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_;
}

std::int64_t CharStore::logBytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return writer_.isOpen() ? writer_.fileBytes() : 0;
}

}  // namespace fetcam::store
