#include "store/format.hpp"

#include <array>
#include <cstring>

namespace fetcam::store {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void put32(std::string& out, std::uint32_t v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string encodeFileHeader(std::uint32_t schemaVersion) {
    std::string out;
    out.reserve(kFileHeaderSize);
    out.append(kFileMagic, kMagicSize);
    put32(out, kFormatVersion);
    put32(out, schemaVersion);
    put32(out, crc32(out.data(), out.size()));
    return out;
}

std::string encodeRecord(std::string_view key, std::string_view payload) {
    std::string out;
    out.reserve(kRecordHeaderSize + key.size() + payload.size());
    put32(out, kRecordMagic);
    const auto keyLen = static_cast<std::uint32_t>(key.size());
    const auto payloadLen = static_cast<std::uint32_t>(payload.size());
    // CRC covers the lengths too, so a corrupted length can never frame a
    // "valid" record out of someone else's bytes.
    std::string crcInput;
    crcInput.reserve(2 * sizeof(std::uint32_t) + key.size() + payload.size());
    put32(crcInput, keyLen);
    put32(crcInput, payloadLen);
    crcInput.append(key);
    crcInput.append(payload);
    put32(out, keyLen);
    put32(out, payloadLen);
    put32(out, crc32(crcInput.data(), crcInput.size()));
    out.append(key);
    out.append(payload);
    return out;
}

}  // namespace fetcam::store
