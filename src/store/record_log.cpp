#include "store/record_log.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "recover/sim_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define FETCAM_STORE_HAVE_FSYNC 1
#endif

namespace fetcam::store {

namespace {

using recover::SimError;
using recover::SimErrorReason;

std::uint32_t get32(const std::string& data, std::size_t offset) {
    std::uint32_t v;
    std::memcpy(&v, data.data() + offset, sizeof v);
    return v;
}

[[noreturn]] void corrupt(const std::string& path, const std::string& message) {
    throw SimError(SimErrorReason::CorruptData, "store::readLog", path + ": " + message);
}

}  // namespace

void syncDirectory(const std::string& dir) {
#ifdef FETCAM_STORE_HAVE_FSYNC
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throw SimError(SimErrorReason::IoError, "store::syncDirectory",
                       "cannot open directory " + dir + ": " +
                           std::string(std::strerror(errno)));
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0)
        throw SimError(SimErrorReason::IoError, "store::syncDirectory",
                       "fsync failed on directory " + dir + ": " +
                           std::string(std::strerror(err)));
#else
    (void)dir;
#endif
}

std::vector<Record> readLog(const std::string& path, std::uint32_t schemaVersion,
                            ReadStats& stats) {
    stats = {};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SimError(SimErrorReason::IoError, "store::readLog", "cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (in.bad())
        throw SimError(SimErrorReason::IoError, "store::readLog", "read failed on " + path);

    // Shorter than a header: a crash between create and header write left a
    // torn stub. Salvage to an empty log.
    if (data.size() < kFileHeaderSize) {
        stats.truncatedTail = !data.empty();
        stats.tailBytesDropped = static_cast<std::int64_t>(data.size());
        return {};
    }

    if (std::memcmp(data.data(), kFileMagic, kMagicSize) != 0)
        corrupt(path, "bad file magic");
    const std::uint32_t headerCrc = get32(data, kMagicSize + 8);
    if (crc32(data.data(), kMagicSize + 8) != headerCrc)
        corrupt(path, "file header CRC mismatch");
    const std::uint32_t formatVersion = get32(data, kMagicSize);
    if (formatVersion != kFormatVersion)
        corrupt(path, "unsupported container format version " + std::to_string(formatVersion) +
                          " (expected " + std::to_string(kFormatVersion) + ")");
    const std::uint32_t fileSchema = get32(data, kMagicSize + 4);
    if (fileSchema != schemaVersion)
        corrupt(path, "characterization schema version mismatch (file " +
                          std::to_string(fileSchema) + ", expected " +
                          std::to_string(schemaVersion) + ")");

    std::vector<Record> records;
    std::size_t offset = kFileHeaderSize;
    stats.goodOffset = static_cast<std::int64_t>(offset);
    while (offset < data.size()) {
        const std::size_t remaining = data.size() - offset;
        if (remaining < kRecordHeaderSize) {
            stats.truncatedTail = true;  // torn mid-header
            break;
        }
        const std::uint32_t magic = get32(data, offset);
        if (magic != kRecordMagic)
            corrupt(path, "bad record magic at offset " + std::to_string(offset));
        const std::uint32_t keyLen = get32(data, offset + 4);
        const std::uint32_t payloadLen = get32(data, offset + 8);
        const std::uint32_t crc = get32(data, offset + 12);
        if (keyLen > kMaxFieldBytes || payloadLen > kMaxFieldBytes)
            corrupt(path, "implausible record length at offset " + std::to_string(offset));
        const std::size_t frame =
            kRecordHeaderSize + static_cast<std::size_t>(keyLen) + payloadLen;
        if (remaining < frame) {
            stats.truncatedTail = true;  // torn mid-body
            break;
        }
        // CRC spans lengths + key + payload; the two length words sit right
        // before the key bytes only in the CRC input, not in the file, so
        // recompute over a contiguous view of lengths-then-body.
        std::uint32_t check = crc32(data.data() + offset + 4, 8);
        check = crc32(data.data() + offset + kRecordHeaderSize, frame - kRecordHeaderSize,
                      check);
        if (check != crc)
            corrupt(path, "record CRC mismatch at offset " + std::to_string(offset));

        Record r;
        r.key.assign(data, offset + kRecordHeaderSize, keyLen);
        r.payload.assign(data, offset + kRecordHeaderSize + keyLen, payloadLen);
        records.push_back(std::move(r));
        offset += frame;
        stats.goodOffset = static_cast<std::int64_t>(offset);
    }
    stats.records = static_cast<std::int64_t>(records.size());
    stats.bytes = stats.goodOffset;
    stats.tailBytesDropped = static_cast<std::int64_t>(data.size()) - stats.goodOffset;
    return records;
}

LogWriter::~LogWriter() { close(); }

void LogWriter::open(const std::string& path, std::uint32_t schemaVersion,
                     std::int64_t resumeOffset) {
    close();
    if (resumeOffset >= 0) {
        // Drop any torn tail before appending: the file must end on the last
        // valid frame so the next reader never sees our frames mid-garbage.
        std::error_code ec;
        std::filesystem::resize_file(path, static_cast<std::uintmax_t>(resumeOffset), ec);
        if (ec)
            throw SimError(SimErrorReason::IoError, "store::LogWriter",
                           "cannot truncate " + path + " to resume offset: " + ec.message());
        file_ = std::fopen(path.c_str(), "ab");
        if (!file_)
            throw SimError(SimErrorReason::IoError, "store::LogWriter",
                           "cannot open " + path + " for append: " +
                               std::string(std::strerror(errno)));
        fileBytes_ = resumeOffset;
        if (resumeOffset == 0) {
            const std::string header = encodeFileHeader(schemaVersion);
            if (std::fwrite(header.data(), 1, header.size(), file_) != header.size())
                throw SimError(SimErrorReason::IoError, "store::LogWriter",
                               "header write failed on " + path);
            fileBytes_ += static_cast<std::int64_t>(header.size());
        }
    } else {
        file_ = std::fopen(path.c_str(), "wb");
        if (!file_)
            throw SimError(SimErrorReason::IoError, "store::LogWriter",
                           "cannot create " + path + ": " + std::string(std::strerror(errno)));
        const std::string header = encodeFileHeader(schemaVersion);
        if (std::fwrite(header.data(), 1, header.size(), file_) != header.size())
            throw SimError(SimErrorReason::IoError, "store::LogWriter",
                           "header write failed on " + path);
        fileBytes_ = static_cast<std::int64_t>(header.size());
    }
    path_ = path;
}

void LogWriter::append(std::string_view key, std::string_view payload) {
    if (!file_)
        throw SimError(SimErrorReason::InvalidSpec, "store::LogWriter",
                       "append on a closed writer");
    const std::string frame = encodeRecord(key, payload);
    if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size())
        throw SimError(SimErrorReason::IoError, "store::LogWriter",
                       "record append failed on " + path_);
    fileBytes_ += static_cast<std::int64_t>(frame.size());
}

void LogWriter::flush() {
    if (!file_) return;
    if (std::fflush(file_) != 0)
        throw SimError(SimErrorReason::IoError, "store::LogWriter",
                       "flush failed on " + path_);
#ifdef FETCAM_STORE_HAVE_FSYNC
    if (::fsync(::fileno(file_)) != 0)
        throw SimError(SimErrorReason::IoError, "store::LogWriter",
                       "fsync failed on " + path_);
#endif
}

void LogWriter::close() {
    if (!file_) return;
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
}

}  // namespace fetcam::store
