// fetcam::net::Client — blocking protocol client for the load generator and
// the network tests.
//
// One TCP connection speaking the net protocol: connect() reads the server's
// Hello (and validates the version), query() sends a QueryBatch and waits for
// the matching BatchReply. Every failure is typed — a ClientResult always
// says *why* (server Error frame, torn reply, timeout, injected fault), so
// callers can retry sheds and count faults without string-matching.
//
// Fault injection (the client *is* the network fault source in tests and the
// load generator): when a recover::FaultPlan is installed on this thread,
// every frame send consults plan->beginNetFrame() and may
//   * TornFrame      — send a prefix of the frame, then close,
//   * GarbageBytes   — flip bytes in the encoded frame before sending,
//   * Disconnect     — close without sending anything,
//   * StalledRead    — send only the frame header, keep the socket open and
//                      return (the server's read timeout must cut us off).
// Injected sends return faultInjected = true and never wait for a reply.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/protocol.hpp"

namespace fetcam::net {

/// Typed outcome of one query() / mutate() round trip.
struct ClientResult {
    bool ok = false;             ///< reply holds a validated BatchReply
    BatchReplyBody reply;        ///< valid when ok (query path)
    std::optional<MutateReplyBody> mutateReply;  ///< set when a MutateReply arrived
    std::optional<SimilarityReplyBody> simReply;  ///< set when a SimilarityReply arrived
    bool drainNotice = false;    ///< a Drain frame arrived (server shutting down)
    bool faultInjected = false;  ///< an installed FaultPlan consumed this send
    bool timedOut = false;       ///< no complete reply within the wait
    bool disconnected = false;   ///< peer closed (or we closed via a fault)
    ProtoError error = ProtoError::None;  ///< server Error frame / decode failure
    std::string message;
};

class Client {
public:
    Client() = default;
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connect and read the server Hello, negotiating the protocol version:
    /// a server at or below kProtocolVersion is accepted and its version
    /// recorded (feature calls gate on it — see mutate()/similarity()); a
    /// *newer* server is refused with SimError(CorruptData) since this
    /// client cannot know its layout. Throws SimError(IoError) when the
    /// connection cannot be established.
    void connect(const std::string& host, int port, double timeout = 5.0);

    bool connected() const { return fd_ >= 0; }
    const HelloBody& hello() const { return hello_; }
    /// Protocol version the connected server advertised in its Hello.
    std::uint32_t serverVersion() const { return hello_.version; }
    void close();

    /// Send one QueryBatch and wait for its BatchReply. Validates the reply
    /// against the request (id and count); a Drain frame arriving first is
    /// reported in drainNotice and the wait continues for the reply.
    ClientResult query(const QueryBatchBody& batch, double timeout = 10.0);

    /// Send one Mutate and wait for its MutateReply (in result.mutateReply).
    /// Validates id and per-op count like query(); same fault-injection
    /// behavior on the send side. Against a pre-v2 server the call fails
    /// locally with a typed UnsupportedVersion result — nothing is sent, so
    /// the old server never sees a frame it cannot parse.
    ClientResult mutate(const MutateBody& ops, double timeout = 10.0);

    /// Send one Similarity request (protocol v3) and wait for its
    /// SimilarityReply (in result.simReply). Validates id and per-key count
    /// like query(); typed UnsupportedVersion failure against a pre-v3
    /// server, nothing sent.
    ClientResult similarity(const SimilarityBody& request, double timeout = 10.0);

    /// Send raw bytes as-is (protocol-corruption tests). Returns false when
    /// the peer is gone.
    bool sendRaw(std::string_view bytes);

    /// Wait for the next frame (tests). ok=true with the decoded reply for
    /// BatchReply; other frame types surface through the flags/error fields.
    ClientResult readFrame(double timeout);

private:
    /// Frame send with fault-plan consultation; returns true when a normal
    /// complete send happened (a reply may be expected).
    bool sendFrame(MsgType type, std::string_view body, ClientResult& result);

    int fd_ = -1;
    HelloBody hello_;
    std::string readBuf_;
};

}  // namespace fetcam::net
