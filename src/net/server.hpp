// fetcam::net::Server — deadline-aware TCP front-end for serve::QueryEngine.
//
// A zero-dependency, single-threaded poll(2) event loop (parallelism lives
// inside the engine's worker team, where it already is) that:
//
//   * accepts connections and greets each with a Hello frame carrying the
//     engine word width and the protocol limits,
//   * reads CRC-framed QueryBatch requests and coalesces them — across
//     connections — into engine batches, flushed when options.maxBatch
//     queries are waiting or the oldest request has waited
//     options.coalesceWindow seconds, whichever is first,
//   * propagates per-request deadlines into QueryEngine::submitBatch, so
//     expired queries are shed before any entry is scanned and answered with
//     a typed DeadlineExceeded status,
//   * applies Mutate frames (insert / insertAt / erase) immediately on
//     receipt — the engine's snapshot scheme makes that safe against any
//     in-flight batch — answering each op with a typed MutateStatus;
//     draining refuses mutations with Rejected,
//   * executes Similarity frames (nearest-k / threshold, protocol v3)
//     immediately on receipt via QueryEngine::similarityBatch, answering a
//     SimilarityReply with per-key best-first hit lists; drain and the
//     pending-query overload bound shed them with admission = Shed,
//   * sheds whole requests with typed Shed replies the moment the pending
//     queue would exceed options.maxPendingQueries — overload never queues
//     unboundedly, and every shed is counted,
//   * kills exactly one connection on a protocol error (bad magic/CRC/type,
//     oversized frame, malformed body), answering a typed Error frame first;
//     a peer that stalls mid-frame longer than options.readTimeout is cut
//     the same way (slowloris defense),
//   * drains gracefully on requestStop() — async-signal-safe, so the tools
//     wire it straight into SIGTERM: stop accepting, answer everything
//     in flight (executing what still meets its deadline), flush write
//     buffers, then return from run() with deterministic final accounting.
//
// obs metrics (when obs::enabled()): net.connections.accepted/.dropped,
// net.frames.in/.out, net.queries, net.hits, net.shed,
// net.deadline_expired, net.proto_errors, net.batches counters and a
// net.request.seconds histogram (receipt -> reply queued).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "serve/query_engine.hpp"

namespace fetcam::net {

struct ServerOptions {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; the bound port is port() after start()
    int backlog = 64;
    int maxConnections = 256;
    std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
    /// Queries per coalesced engine batch (and per-request ceiling).
    std::uint32_t maxBatch = 4096;
    /// Longest a query waits for batchmates before the batch flushes [s].
    double coalesceWindow = 0.5e-3;
    /// Overload bound: pending (received, not yet executed) queries beyond
    /// this are shed immediately with typed replies.
    std::int64_t maxPendingQueries = 1 << 16;
    /// A peer stalled mid-frame longer than this is dropped [s].
    double readTimeout = 5.0;
    /// Deadline applied when a request carries none (0 = none) [s].
    double defaultDeadline = 0.0;
    /// Hard cap on the graceful-drain phase [s].
    double drainTimeout = 5.0;
    /// Worker count handed to the engine per batch (0 = process default).
    int jobs = 0;
    /// Protocol version advertised in the Hello. Lowering it makes the
    /// server *behave* like that version — feature frames beyond it
    /// (Mutate < v2, Similarity < v3) are refused with a typed
    /// UnsupportedVersion error — which is how the version-negotiation
    /// tests emulate an old server without old code.
    std::uint32_t advertiseVersion = kProtocolVersion;
};

/// Deterministic request/shed/error accounting (no wall-clock anywhere), so
/// CI can assert every query is accounted for: queries ==
/// hits + misses + shedQueries + expiredQueries.
struct ServerStats {
    std::int64_t connectionsAccepted = 0;
    std::int64_t connectionsDropped = 0;  ///< protocol errors + timeouts + over limit
    std::int64_t requests = 0;            ///< QueryBatch frames parsed
    std::int64_t queries = 0;             ///< queries received in those requests
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t shedQueries = 0;     ///< refused by overload protection / drain
    std::int64_t expiredQueries = 0;  ///< deadline passed before simulation
    std::int64_t batches = 0;         ///< engine submitBatch calls
    std::int64_t mutateRequests = 0;  ///< Mutate frames parsed
    std::int64_t mutateOps = 0;       ///< ops inside those frames
    std::int64_t mutateFailed = 0;    ///< ops answered with a non-Ok status
    std::int64_t simRequests = 0;     ///< Similarity frames parsed
    std::int64_t simQueries = 0;      ///< keys inside those frames
    std::int64_t simRows = 0;         ///< hit rows returned across all replies
    std::int64_t simShed = 0;         ///< similarity keys refused (drain/overload)
    std::int64_t framesIn = 0;
    std::int64_t framesOut = 0;
    std::int64_t protoErrors = 0;  ///< sum of errorCounts
    /// Per-ProtoError occurrence counts, indexed by the enum value.
    std::array<std::int64_t, kNumProtoErrors> errorCounts{};
    bool drained = false;       ///< run() exited through graceful drain
    bool drainForced = false;   ///< drainTimeout expired with work unflushed
};

class Server {
public:
    /// The engine must outlive the server. Entry mutations — over the wire
    /// via Mutate frames or directly on the engine — are safe while run() is
    /// live (the engine serves from atomically-published table snapshots).
    Server(serve::QueryEngine& engine, ServerOptions options);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind + listen (+ create the stop pipe). Throws SimError(IoError).
    void start();

    /// Port actually bound (resolves options.port == 0).
    int port() const { return boundPort_; }

    /// Event loop; returns after requestStop() completes the graceful drain.
    /// Throws SimError(IoError) only for unrecoverable listener/poll
    /// failures — per-connection trouble is handled and counted.
    void run();

    /// Begin graceful drain. Async-signal-safe (one write(2) to a pipe);
    /// callable from any thread or from a signal handler.
    void requestStop() noexcept;

    /// Install SIGTERM/SIGINT handlers that requestStop() this server.
    /// One server per process may hold the handlers at a time.
    static void installStopSignals(Server& server);

    bool draining() const { return draining_; }
    const ServerStats& stats() const { return stats_; }

    /// Deterministic JSON object (sorted, no wall-clock) for the tool report.
    std::string statsJson() const;

private:
    struct Conn {
        int fd = -1;
        std::string readBuf;
        std::string writeBuf;
        double lastActivity = 0.0;  ///< monotonic; read-side progress
        bool closeAfterFlush = false;
    };

    struct Request {
        int fd = -1;
        std::uint64_t requestId = 0;
        double arrival = 0.0;
        double deadline = 0.0;  ///< absolute monotonic; 0 = none
        std::vector<tcam::TernaryWord> keys;
    };

    void acceptConnections(double now);
    void readConn(int fd, double now);
    void writeConn(int fd);
    void handleFrame(int fd, const Frame& frame, double now);
    void handleMutate(int fd, const Frame& frame);
    void handleSimilarity(int fd, const Frame& frame);
    void sendFrame(int fd, MsgType type, std::string_view body);
    void sendShedReply(int fd, std::uint64_t requestId, std::size_t count);
    void protoFail(int fd, ProtoError code, const std::string& message);
    void dropConn(int fd, bool countDropped);
    void executeBatch(double now);
    void checkReadTimeouts(double now);
    int pollTimeoutMillis(double now) const;
    bool drainComplete() const;
    void noteError(ProtoError code);

    serve::QueryEngine& engine_;
    ServerOptions options_;
    int listenFd_ = -1;
    int boundPort_ = 0;
    int stopPipe_[2] = {-1, -1};
    bool draining_ = false;
    double drainStart_ = 0.0;
    std::map<int, Conn> conns_;
    std::deque<Request> pending_;
    std::int64_t pendingQueries_ = 0;
    ServerStats stats_;
};

}  // namespace fetcam::net
