#include "net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "recover/fault_injection.hpp"
#include "recover/sim_error.hpp"
#include "serve/query_engine.hpp"

namespace fetcam::net {

using recover::SimError;
using recover::SimErrorReason;

Client::~Client() { close(); }

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    readBuf_.clear();
}

void Client::connect(const std::string& host, int port, double timeout) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw SimError(SimErrorReason::IoError, "net::Client",
                       "cannot create socket: " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        throw SimError(SimErrorReason::InvalidSpec, "net::Client",
                       "invalid host " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string detail = std::strerror(errno);
        close();
        throw SimError(SimErrorReason::IoError, "net::Client",
                       "cannot connect to " + host + ":" + std::to_string(port) + ": " +
                           detail);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    ClientResult greeting = readFrame(timeout);
    if (greeting.error != ProtoError::None || greeting.timedOut || greeting.disconnected) {
        close();
        throw SimError(SimErrorReason::IoError, "net::Client",
                       "no valid Hello from server: " + greeting.message);
    }
    // Version negotiation: an older server is fine — its version is recorded
    // and feature calls (mutate needs v2, similarity v3) gate on it. A
    // *newer* server is refused outright: this client cannot know the newer
    // frame layouts, and guessing would defeat the typed-failure contract.
    if (hello_.version == 0 || hello_.version > kProtocolVersion) {
        close();
        throw SimError(SimErrorReason::CorruptData, "net::Client",
                       "server protocol version " + std::to_string(hello_.version) +
                           " is newer than this client (speaks " +
                           std::to_string(kProtocolVersion) + ")");
    }
}

bool Client::sendRaw(std::string_view bytes) {
    if (fd_ < 0) return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const auto n =
            ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        close();
        return false;
    }
    return true;
}

bool Client::sendFrame(MsgType type, std::string_view body, ClientResult& result) {
    if (fd_ < 0) {
        result.disconnected = true;
        result.message = "not connected";
        return false;
    }
    std::string frame = encodeFrame(type, body);

    recover::FrameFaults faults;
    if (auto* plan = recover::FaultPlan::active()) faults = plan->beginNetFrame();
    if (faults.any()) {
        result.faultInjected = true;
        if (obs::enabled()) {
            static obs::Counter& injected = obs::counter("net.client.faults_injected");
            injected.add();
        }
        if (faults.disconnect) {
            // Vanish instead of sending: the server sees a clean (or torn,
            // if earlier bytes are in flight) close.
            close();
            result.disconnected = true;
            return false;
        }
        if (faults.tornFrame) {
            // A strict prefix that always splits the body (or the header when
            // there is no body): the server must hold a forever-incomplete
            // frame until we close.
            const std::size_t cut = kFrameHeaderSize + body.size() / 2;
            sendRaw(std::string_view(frame).substr(0, std::min(cut, frame.size() - 1)));
            close();
            result.disconnected = true;
            return false;
        }
        if (faults.stalledRead) {
            // Slowloris: header only, socket stays open, no more bytes. The
            // server's read timeout is responsible for cutting us off.
            sendRaw(std::string_view(frame).substr(0, kFrameHeaderSize));
            return false;
        }
        // garbageBytes: damage the frame, send it whole; the server must
        // answer with a typed Error (BadMagic or BadCrc) and drop only us.
        frame[1] ^= 0x5A;                 // magic damage
        frame[frame.size() - 1] ^= 0xA5;  // body/CRC damage
        sendRaw(frame);
        return false;
    }

    if (!sendRaw(frame)) {
        result.disconnected = true;
        result.message = "connection lost during send";
        return false;
    }
    return true;
}

ClientResult Client::readFrame(double timeout) {
    ClientResult result;
    const double deadline = obs::monotonicSeconds() + timeout;
    while (true) {
        const DecodeResult r = decodeFrame(readBuf_, kDefaultMaxFrameBytes);
        if (r.status == DecodeResult::Status::Bad) {
            result.error = r.error;
            result.message = r.message;
            close();
            return result;
        }
        if (r.status == DecodeResult::Status::Ok) {
            readBuf_.erase(0, r.consumed);
            std::string err;
            switch (r.frame.type) {
                case MsgType::Hello: {
                    auto hello = decodeHello(r.frame.body, &err);
                    if (!hello) break;
                    hello_ = *hello;
                    result.ok = true;
                    return result;
                }
                case MsgType::BatchReply: {
                    auto reply = decodeBatchReply(r.frame.body, &err);
                    if (!reply) break;
                    result.ok = true;
                    result.reply = std::move(*reply);
                    return result;
                }
                case MsgType::MutateReply: {
                    auto reply = decodeMutateReply(r.frame.body, &err);
                    if (!reply) break;
                    result.ok = true;
                    result.mutateReply = std::move(*reply);
                    return result;
                }
                case MsgType::SimilarityReply: {
                    auto reply = decodeSimilarityReply(r.frame.body, &err);
                    if (!reply) break;
                    result.ok = true;
                    result.simReply = std::move(*reply);
                    return result;
                }
                case MsgType::Error: {
                    auto error = decodeError(r.frame.body, &err);
                    if (!error) break;
                    result.error = error->code;
                    result.message = std::move(error->message);
                    return result;
                }
                case MsgType::Drain:
                    result.drainNotice = true;
                    return result;
                default:
                    err = "unexpected frame type from server";
            }
            result.error = ProtoError::BadBody;
            result.message = err;
            close();
            return result;
        }

        // NeedMore: wait for bytes.
        if (fd_ < 0) {
            result.disconnected = true;
            result.message = "connection closed";
            return result;
        }
        const double wait = deadline - obs::monotonicSeconds();
        if (wait <= 0.0) {
            result.timedOut = true;
            result.message = "timed out waiting for a reply";
            return result;
        }
        pollfd p{fd_, POLLIN, 0};
        const int rc = ::poll(&p, 1, static_cast<int>(wait * 1e3) + 1);
        if (rc < 0 && errno != EINTR)
            throw SimError(SimErrorReason::IoError, "net::Client",
                           "poll failed: " + std::string(std::strerror(errno)));
        if (rc <= 0) continue;
        char buf[16384];
        const auto n = ::recv(fd_, buf, sizeof buf, 0);
        if (n > 0) {
            readBuf_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) continue;
        close();
        result.disconnected = true;
        result.message = "connection closed by server";
        return result;
    }
}

ClientResult Client::mutate(const MutateBody& ops, double timeout) {
    ClientResult result;
    if (hello_.version < kMinMutateVersion) {
        result.error = ProtoError::UnsupportedVersion;
        result.message = "server protocol version " + std::to_string(hello_.version) +
                         " predates Mutate (needs v" + std::to_string(kMinMutateVersion) +
                         ")";
        return result;
    }
    if (hello_.wordBits != 0)
        for (const auto& op : ops.ops)
            if (op.op != MutateOp::Erase && op.word.size() != hello_.wordBits) {
                result.error = ProtoError::WidthMismatch;
                result.message = "mutation word width does not match the server";
                return result;
            }
    if (!sendFrame(MsgType::Mutate, encodeMutate(ops), result)) return result;

    const double deadline = obs::monotonicSeconds() + timeout;
    while (true) {
        const double wait = deadline - obs::monotonicSeconds();
        if (wait <= 0.0) {
            result.timedOut = true;
            result.message = "timed out waiting for a mutate reply";
            return result;
        }
        ClientResult frame = readFrame(wait);
        if (frame.drainNotice) {
            result.drainNotice = true;
            continue;
        }
        if (frame.ok && !frame.mutateReply) continue;  // interleaved other reply
        if (frame.ok && frame.mutateReply->requestId != ops.requestId) continue;  // stale
        frame.drainNotice = frame.drainNotice || result.drainNotice;
        frame.faultInjected = result.faultInjected;
        if (frame.ok && frame.mutateReply->rows.size() != ops.ops.size()) {
            frame.ok = false;
            frame.error = ProtoError::BadBody;
            frame.message = "mutate reply op count does not match the request";
            close();
        }
        return frame;
    }
}

ClientResult Client::similarity(const SimilarityBody& request, double timeout) {
    ClientResult result;
    if (hello_.version < kMinSimilarityVersion) {
        result.error = ProtoError::UnsupportedVersion;
        result.message = "server protocol version " + std::to_string(hello_.version) +
                         " predates Similarity (needs v" +
                         std::to_string(kMinSimilarityVersion) + ")";
        return result;
    }
    if (!request.keys.empty() && hello_.wordBits != 0 &&
        request.keys.front().size() != hello_.wordBits) {
        result.error = ProtoError::WidthMismatch;
        result.message = "similarity key width does not match the server word width";
        return result;
    }
    if (!sendFrame(MsgType::Similarity, encodeSimilarity(request), result)) return result;

    const double deadline = obs::monotonicSeconds() + timeout;
    while (true) {
        const double wait = deadline - obs::monotonicSeconds();
        if (wait <= 0.0) {
            result.timedOut = true;
            result.message = "timed out waiting for a similarity reply";
            return result;
        }
        ClientResult frame = readFrame(wait);
        if (frame.drainNotice) {
            result.drainNotice = true;
            continue;
        }
        if (frame.ok && !frame.simReply) continue;  // interleaved other reply
        if (frame.ok && frame.simReply->requestId != request.requestId) continue;  // stale
        frame.drainNotice = frame.drainNotice || result.drainNotice;
        frame.faultInjected = result.faultInjected;
        if (frame.ok && frame.simReply->hits.size() != request.keys.size() &&
            frame.simReply->admission ==
                static_cast<std::uint8_t>(serve::BatchAdmission::Accepted)) {
            frame.ok = false;
            frame.error = ProtoError::BadBody;
            frame.message = "similarity reply key count does not match the request";
            close();
        }
        return frame;
    }
}

ClientResult Client::query(const QueryBatchBody& batch, double timeout) {
    ClientResult result;
    if (!batch.keys.empty() && hello_.wordBits != 0 &&
        batch.keys.front().size() != hello_.wordBits) {
        result.error = ProtoError::WidthMismatch;
        result.message = "key width does not match the server word width";
        return result;
    }
    if (!sendFrame(MsgType::QueryBatch, encodeQueryBatch(batch), result)) return result;

    const double deadline = obs::monotonicSeconds() + timeout;
    while (true) {
        const double wait = deadline - obs::monotonicSeconds();
        if (wait <= 0.0) {
            result.timedOut = true;
            result.message = "timed out waiting for a reply";
            return result;
        }
        ClientResult frame = readFrame(wait);
        if (frame.drainNotice) {
            // Shutdown notice; the reply for this request may still arrive.
            result.drainNotice = true;
            continue;
        }
        if (frame.ok && (frame.mutateReply || frame.simReply)) continue;  // interleaved
        if (frame.ok && frame.reply.requestId != batch.requestId) continue;  // stale
        frame.drainNotice = frame.drainNotice || result.drainNotice;
        frame.faultInjected = result.faultInjected;
        if (frame.ok && frame.reply.rows.size() != batch.keys.size() &&
            frame.reply.admission ==
                static_cast<std::uint8_t>(serve::BatchAdmission::Accepted)) {
            frame.ok = false;
            frame.error = ProtoError::BadBody;
            frame.message = "reply row count does not match the request";
            close();
        }
        return frame;
    }
}

}  // namespace fetcam::net
