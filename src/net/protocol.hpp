// fetcam::net wire protocol — length-prefixed, CRC-framed binary messages.
//
// Framing reuses the src/store conventions (magic + explicit lengths +
// CRC-32 over everything the lengths describe), because the failure model is
// the same: bytes arrive torn, duplicated, or corrupted, and the reader must
// either produce a fully validated message or a *typed* error — never a
// partially-parsed one.
//
//   frame header (16 bytes)
//     magic     u32   kFrameMagic ("FNET")
//     type      u8    MsgType
//     flags     u8    reserved, must be 0
//     reserved  u16   must be 0
//     length    u32   body bytes that follow (bounded by maxFrameBytes)
//     crc       u32   CRC-32 of type||flags||reserved||length||body
//
// Integers are native-endian, like the store log: this is a same-machine /
// same-arch serving protocol (the load generator and tests), not an
// interchange format, and the Hello version gate guards the layout.
//
// Message bodies:
//   Hello (server -> client, on connect)
//     version u32, wordBits u32, maxBatch u32, maxFrameBytes u32
//   QueryBatch (client -> server)
//     requestId u64, deadlineMicros u32 (0 = none; relative to server
//     receipt), count u32, then count keys of wordBits trit-bytes (0/1/2)
//   BatchReply (server -> client)
//     requestId u64, admission u8 (BatchAdmission), count u32, then
//     count * { row i64, status u8 (QueryStatus) }
//   Error (server -> client, connection closes after)
//     code u16, message bytes
//   Drain (server -> client)
//     empty body: the server stops reading new requests; in-flight replies
//     still arrive.
//   Mutate (client -> server)
//     requestId u64, count u32, then count ops of
//     { op u8 (MutateOp), row i64 (ignored for Insert), then wordBits
//       trit-bytes unless op == Erase }
//   MutateReply (server -> client)
//     requestId u64, count u32, then count * { row i64 (the assigned /
//     echoed row, -1 on failure), status u8 (MutateStatus) }
//   Similarity (client -> server, v3)
//     requestId u64, kind u8 (SimilarityKind: 1 nearest / 2 threshold),
//     param u32 (k or maxDistance), maxResults u32, count u32, then count
//     keys of wordBits trit-bytes
//   SimilarityReply (server -> client, v3)
//     requestId u64, admission u8 (BatchAdmission), count u32, then per key
//     { hits u32, then hits * { row i64, distance u32 } }
//
// Version negotiation: the Hello carries the server's version; a client
// accepts any server version <= its own and gates feature use on it (Mutate
// needs v2, Similarity needs v3 — using one against an older server is a
// typed UnsupportedVersion failure at the call, and the tools reject the
// combination at connect). A server *newer* than the client is refused at
// connect: the client cannot know the newer layout.
//
// decodeFrame is incremental: feed it the connection's receive buffer and it
// reports NeedMore (keep reading), a complete validated Frame, or a typed
// ProtoError that the server answers with an Error frame before killing that
// one connection — the defining robustness contract: one bad peer never
// touches its neighbours.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/similarity.hpp"
#include "tcam/ternary.hpp"

namespace fetcam::net {

inline constexpr std::uint32_t kFrameMagic = 0x464E4554u;  // "FNET"
/// Version 2 added Mutate / MutateReply (online entry updates); version 3
/// added Similarity / SimilarityReply (nearest-k / threshold queries).
inline constexpr std::uint32_t kProtocolVersion = 3;
/// Lowest feature version that understands Mutate frames.
inline constexpr std::uint32_t kMinMutateVersion = 2;
/// Lowest feature version that understands Similarity frames.
inline constexpr std::uint32_t kMinSimilarityVersion = 3;
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Default per-frame ceiling: oversized-frame (memory-exhaustion) defense.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
    Hello = 1,
    QueryBatch = 2,
    BatchReply = 3,
    Error = 4,
    Drain = 5,
    Mutate = 6,
    MutateReply = 7,
    Similarity = 8,
    SimilarityReply = 9,
};

/// Typed protocol failures. Each kills exactly one connection.
enum class ProtoError : std::uint16_t {
    None = 0,
    BadMagic = 1,       ///< garbage preamble
    BadCrc = 2,         ///< frame failed its CRC
    BadType = 3,        ///< unknown MsgType
    Oversized = 4,      ///< declared length exceeds maxFrameBytes
    BadBody = 5,        ///< body failed message-level validation
    WidthMismatch = 6,  ///< query key width != engine word width
    ReadTimeout = 7,    ///< peer stalled mid-frame (slowloris defense)
    Draining = 8,       ///< server refused new work while draining
    TooManyConnections = 9,
    Truncated = 10,     ///< peer disconnected mid-frame (torn frame at EOF)
    UnsupportedVersion = 11,  ///< feature (or whole server) beyond the
                              ///< negotiated protocol version
};

/// Number of distinct ProtoError codes (accounting-array sizing).
inline constexpr int kNumProtoErrors = 12;

const char* protoErrorName(ProtoError code) noexcept;

struct Frame {
    MsgType type = MsgType::Hello;
    std::string body;
};

struct DecodeResult {
    enum class Status {
        NeedMore,  ///< buffer holds a partial frame; read more bytes
        Ok,        ///< `frame` is valid; `consumed` bytes were eaten
        Bad,       ///< typed failure in `error` / `message`
    };
    Status status = Status::NeedMore;
    Frame frame;
    std::size_t consumed = 0;
    ProtoError error = ProtoError::None;
    std::string message;
};

/// Serialize one frame (header + body, CRC filled in).
std::string encodeFrame(MsgType type, std::string_view body);

/// Incremental decode of the first frame in `buffer`.
DecodeResult decodeFrame(std::string_view buffer, std::size_t maxFrameBytes);

// --- message bodies ---

struct HelloBody {
    std::uint32_t version = kProtocolVersion;
    std::uint32_t wordBits = 0;
    std::uint32_t maxBatch = 0;
    std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
};

struct QueryBatchBody {
    std::uint64_t requestId = 0;
    /// Per-request deadline in microseconds relative to server receipt;
    /// 0 = none (the server may still apply its configured default).
    std::uint32_t deadlineMicros = 0;
    std::vector<tcam::TernaryWord> keys;
};

/// Per-query outcome carried in a BatchReply.
enum class QueryStatus : std::uint8_t {
    Hit = 0,
    Miss = 1,
    Shed = 2,              ///< refused by overload protection; retryable
    DeadlineExceeded = 3,  ///< expired before simulation; retry with more budget
};

const char* queryStatusName(QueryStatus status) noexcept;

struct BatchReplyBody {
    std::uint64_t requestId = 0;
    std::uint8_t admission = 0;  ///< serve::BatchAdmission as a byte
    std::vector<std::int64_t> rows;
    std::vector<QueryStatus> status;
};

struct ErrorBody {
    ProtoError code = ProtoError::None;
    std::string message;
};

/// One entry mutation inside a Mutate frame.
enum class MutateOp : std::uint8_t {
    Insert = 1,    ///< first-free-row insert; the reply carries the row
    InsertAt = 2,  ///< write `row` explicitly (overwrite allowed)
    Erase = 3,     ///< clear `row` (no word bytes on the wire)
};

const char* mutateOpName(MutateOp op) noexcept;

/// Per-op outcome carried in a MutateReply.
enum class MutateStatus : std::uint8_t {
    Ok = 0,
    TableFull = 1,   ///< Insert found no free row
    InvalidRow = 2,  ///< row outside [0, capacity)
    Rejected = 3,    ///< server is draining; retry elsewhere
};

const char* mutateStatusName(MutateStatus status) noexcept;

struct MutateOpSpec {
    MutateOp op = MutateOp::Insert;
    std::int64_t row = 0;    ///< target row; ignored for Insert
    tcam::TernaryWord word;  ///< empty for Erase
};

struct MutateBody {
    std::uint64_t requestId = 0;
    std::vector<MutateOpSpec> ops;
};

struct MutateReplyBody {
    std::uint64_t requestId = 0;
    std::vector<std::int64_t> rows;  ///< assigned/echoed row, -1 on failure
    std::vector<MutateStatus> status;
};

/// One batched similarity request (protocol v3). `param` is k for
/// NearestK and maxDistance for Threshold; `maxResults` caps each key's
/// reply (validated server-side against maxBatch).
struct SimilarityBody {
    std::uint64_t requestId = 0;
    sim::SimilarityKind kind = sim::SimilarityKind::NearestK;
    std::uint32_t param = 1;
    std::uint32_t maxResults = 64;
    std::vector<tcam::TernaryWord> keys;

    /// The engine-side options this request maps to.
    sim::SimilarityOptions toOptions() const;
};

struct SimilarityReplyBody {
    std::uint64_t requestId = 0;
    std::uint8_t admission = 0;  ///< serve::BatchAdmission as a byte
    /// Per-key hit lists, best-first by (distance, row).
    std::vector<sim::SimilarityHits> hits;
};

std::string encodeHello(const HelloBody& hello);
std::string encodeQueryBatch(const QueryBatchBody& batch);
std::string encodeBatchReply(const BatchReplyBody& reply);
std::string encodeError(const ErrorBody& error);
std::string encodeMutate(const MutateBody& mutate);
std::string encodeMutateReply(const MutateReplyBody& reply);
std::string encodeSimilarity(const SimilarityBody& sim);
std::string encodeSimilarityReply(const SimilarityReplyBody& reply);

/// Body decoders: nullopt (with `err` filled) on any validation failure —
/// short body, trailing junk, trit bytes outside {0,1,2}, count overflow.
std::optional<HelloBody> decodeHello(std::string_view body, std::string* err);
std::optional<QueryBatchBody> decodeQueryBatch(std::string_view body, std::uint32_t wordBits,
                                               std::uint32_t maxBatch, std::string* err);
std::optional<BatchReplyBody> decodeBatchReply(std::string_view body, std::string* err);
std::optional<ErrorBody> decodeError(std::string_view body, std::string* err);
std::optional<MutateBody> decodeMutate(std::string_view body, std::uint32_t wordBits,
                                       std::uint32_t maxBatch, std::string* err);
std::optional<MutateReplyBody> decodeMutateReply(std::string_view body, std::string* err);
std::optional<SimilarityBody> decodeSimilarity(std::string_view body, std::uint32_t wordBits,
                                               std::uint32_t maxBatch, std::string* err);
std::optional<SimilarityReplyBody> decodeSimilarityReply(std::string_view body,
                                                         std::string* err);

}  // namespace fetcam::net
