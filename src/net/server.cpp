#include "net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/obs.hpp"
#include "recover/sim_error.hpp"

namespace fetcam::net {

using recover::SimError;
using recover::SimErrorReason;

namespace {

void setNonBlocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw SimError(SimErrorReason::IoError, "net::Server",
                       "cannot set O_NONBLOCK: " + std::string(std::strerror(errno)));
}

Server* gSignalTarget = nullptr;

void stopSignalHandler(int) {
    if (gSignalTarget) gSignalTarget->requestStop();
}

}  // namespace

Server::Server(serve::QueryEngine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
    if (options_.maxBatch < 1)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server", "maxBatch must be >= 1");
    if (options_.maxPendingQueries < 1)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server",
                       "maxPendingQueries must be >= 1");
    if (options_.maxFrameBytes < kFrameHeaderSize)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server", "maxFrameBytes too small");
    if (options_.coalesceWindow < 0.0 || options_.readTimeout <= 0.0 ||
        options_.drainTimeout <= 0.0)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server",
                       "coalesceWindow/readTimeout/drainTimeout out of range");
}

Server::~Server() {
    if (gSignalTarget == this) gSignalTarget = nullptr;
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    if (listenFd_ >= 0) ::close(listenFd_);
    if (stopPipe_[0] >= 0) ::close(stopPipe_[0]);
    if (stopPipe_[1] >= 0) ::close(stopPipe_[1]);
}

void Server::start() {
    if (listenFd_ >= 0)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server", "start() called twice");
    if (::pipe(stopPipe_) != 0)
        throw SimError(SimErrorReason::IoError, "net::Server",
                       "cannot create stop pipe: " + std::string(std::strerror(errno)));
    setNonBlocking(stopPipe_[0]);
    setNonBlocking(stopPipe_[1]);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw SimError(SimErrorReason::IoError, "net::Server",
                       "cannot create socket: " + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server",
                       "invalid listen host " + options_.host);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
        throw SimError(SimErrorReason::IoError, "net::Server",
                       "cannot bind " + options_.host + ":" + std::to_string(options_.port) +
                           ": " + std::string(std::strerror(errno)));
    if (::listen(listenFd_, options_.backlog) != 0)
        throw SimError(SimErrorReason::IoError, "net::Server",
                       "listen failed: " + std::string(std::strerror(errno)));
    setNonBlocking(listenFd_);

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
        throw SimError(SimErrorReason::IoError, "net::Server",
                       "getsockname failed: " + std::string(std::strerror(errno)));
    boundPort_ = ntohs(bound.sin_port);
}

void Server::requestStop() noexcept {
    if (stopPipe_[1] < 0) return;
    const char byte = 's';
    // Async-signal-safe: one write(2); EAGAIN just means a stop is already
    // queued, which is all we need.
    [[maybe_unused]] const auto n = ::write(stopPipe_[1], &byte, 1);
}

void Server::installStopSignals(Server& server) {
    gSignalTarget = &server;
    std::signal(SIGTERM, stopSignalHandler);
    std::signal(SIGINT, stopSignalHandler);
}

void Server::noteError(ProtoError code) {
    ++stats_.protoErrors;
    ++stats_.errorCounts[static_cast<std::size_t>(code)];
    if (obs::enabled()) {
        static obs::Counter& errors = obs::counter("net.proto_errors");
        errors.add();
    }
}

void Server::sendFrame(int fd, MsgType type, std::string_view body) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    it->second.writeBuf += encodeFrame(type, body);
    ++stats_.framesOut;
    if (obs::enabled()) {
        static obs::Counter& frames = obs::counter("net.frames.out");
        frames.add();
    }
    writeConn(fd);
}

void Server::sendShedReply(int fd, std::uint64_t requestId, std::size_t count) {
    BatchReplyBody reply;
    reply.requestId = requestId;
    reply.admission = static_cast<std::uint8_t>(serve::BatchAdmission::Shed);
    reply.rows.assign(count, -1);
    reply.status.assign(count, QueryStatus::Shed);
    stats_.shedQueries += static_cast<std::int64_t>(count);
    if (obs::enabled()) {
        static obs::Counter& shed = obs::counter("net.shed");
        shed.add(static_cast<long long>(count));
    }
    sendFrame(fd, MsgType::BatchReply, encodeBatchReply(reply));
}

void Server::protoFail(int fd, ProtoError code, const std::string& message) {
    noteError(code);
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    // Stop reading this peer: whatever else its buffer holds is untrusted.
    it->second.readBuf.clear();
    it->second.closeAfterFlush = true;
    ErrorBody body{code, message};
    sendFrame(fd, MsgType::Error, encodeError(body));
    // If the error could not be flushed immediately the poll loop keeps
    // trying until the write buffer empties, then closes.
    it = conns_.find(fd);
    if (it != conns_.end() && it->second.writeBuf.empty()) dropConn(fd, true);
}

void Server::dropConn(int fd, bool countDropped) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    ::close(fd);
    conns_.erase(it);
    if (countDropped) ++stats_.connectionsDropped;
    if (obs::enabled()) {
        static obs::Counter& dropped = obs::counter("net.connections.dropped");
        if (countDropped) dropped.add();
    }
    // Pending requests from this connection still execute; their replies
    // are simply unroutable by then (sendFrame no-ops on a gone fd).
}

void Server::acceptConnections(double now) {
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
            if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED) return;
            throw SimError(SimErrorReason::IoError, "net::Server",
                           "accept failed: " + std::string(std::strerror(errno)));
        }
        setNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        Conn conn;
        conn.fd = fd;
        conn.lastActivity = now;
        conns_.emplace(fd, std::move(conn));
        ++stats_.connectionsAccepted;
        if (obs::enabled()) {
            static obs::Counter& accepted = obs::counter("net.connections.accepted");
            accepted.add();
        }
        if (static_cast<int>(conns_.size()) > options_.maxConnections) {
            protoFail(fd, ProtoError::TooManyConnections, "connection limit reached");
            continue;
        }
        HelloBody hello;
        hello.version = options_.advertiseVersion;
        hello.wordBits = static_cast<std::uint32_t>(engine_.wordBits());
        hello.maxBatch = options_.maxBatch;
        hello.maxFrameBytes = options_.maxFrameBytes;
        sendFrame(fd, MsgType::Hello, encodeHello(hello));
    }
}

void Server::readConn(int fd, double now) {
    auto it = conns_.find(fd);
    if (it == conns_.end() || it->second.closeAfterFlush) return;
    char buf[16384];
    while (true) {
        const auto n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            it->second.readBuf.append(buf, static_cast<std::size_t>(n));
            it->second.lastActivity = now;
            if (it->second.readBuf.size() >
                options_.maxFrameBytes + kFrameHeaderSize + sizeof buf) {
                protoFail(fd, ProtoError::Oversized, "receive buffer overrun");
                return;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        // EOF or hard error. A non-empty parse buffer is a torn frame —
        // the mid-request-disconnect fault — which is typed and counted.
        if (!it->second.readBuf.empty()) noteError(ProtoError::Truncated);
        dropConn(fd, n < 0 || !it->second.readBuf.empty());
        return;
    }

    while (true) {
        it = conns_.find(fd);
        if (it == conns_.end() || it->second.closeAfterFlush) return;
        auto& readBuf = it->second.readBuf;
        const DecodeResult r = decodeFrame(readBuf, options_.maxFrameBytes);
        if (r.status == DecodeResult::Status::NeedMore) return;
        if (r.status == DecodeResult::Status::Bad) {
            protoFail(fd, r.error, r.message);
            return;
        }
        readBuf.erase(0, r.consumed);
        ++stats_.framesIn;
        if (obs::enabled()) {
            static obs::Counter& frames = obs::counter("net.frames.in");
            frames.add();
        }
        handleFrame(fd, r.frame, now);
    }
}

void Server::handleMutate(int fd, const Frame& frame) {
    std::string err;
    auto mutate = decodeMutate(frame.body, static_cast<std::uint32_t>(engine_.wordBits()),
                               options_.maxBatch, &err);
    if (!mutate) {
        protoFail(fd, ProtoError::BadBody, err);
        return;
    }
    ++stats_.mutateRequests;
    stats_.mutateOps += static_cast<std::int64_t>(mutate->ops.size());
    if (obs::enabled()) {
        static obs::Counter& mutations = obs::counter("net.mutations");
        mutations.add(static_cast<long long>(mutate->ops.size()));
    }

    MutateReplyBody reply;
    reply.requestId = mutate->requestId;
    reply.rows.reserve(mutate->ops.size());
    reply.status.reserve(mutate->ops.size());
    for (const auto& op : mutate->ops) {
        std::int64_t row = -1;
        MutateStatus status = MutateStatus::Ok;
        if (draining_) {
            // Refuse new table state during drain: a mutation applied after
            // the last reply flushed would be silently lost on restart.
            status = MutateStatus::Rejected;
        } else {
            switch (op.op) {
                case MutateOp::Insert:
                    try {
                        row = engine_.insert(op.word);
                    } catch (const std::length_error&) {
                        status = MutateStatus::TableFull;
                    }
                    break;
                case MutateOp::InsertAt:
                    if (op.row < 0 || op.row >= engine_.capacity()) {
                        status = MutateStatus::InvalidRow;
                    } else {
                        engine_.insertAt(op.row, op.word);
                        row = op.row;
                    }
                    break;
                case MutateOp::Erase:
                    if (op.row < 0 || op.row >= engine_.capacity()) {
                        status = MutateStatus::InvalidRow;
                    } else {
                        engine_.erase(op.row);
                        row = op.row;
                    }
                    break;
            }
        }
        if (status != MutateStatus::Ok) ++stats_.mutateFailed;
        reply.rows.push_back(row);
        reply.status.push_back(status);
    }
    sendFrame(fd, MsgType::MutateReply, encodeMutateReply(reply));
}

void Server::handleSimilarity(int fd, const Frame& frame) {
    std::string err;
    auto sim = decodeSimilarity(frame.body, static_cast<std::uint32_t>(engine_.wordBits()),
                                options_.maxBatch, &err);
    if (!sim) {
        protoFail(fd, ProtoError::BadBody, err);
        return;
    }
    ++stats_.simRequests;
    stats_.simQueries += static_cast<std::int64_t>(sim->keys.size());
    if (obs::enabled()) {
        static obs::Counter& queries = obs::counter("net.sim.queries");
        queries.add(static_cast<long long>(sim->keys.size()));
    }

    SimilarityReplyBody reply;
    reply.requestId = sim->requestId;
    // Drain and the pending-query overload bound shed similarity work the
    // same way query batches are shed: a typed, retryable reply.
    if (draining_ || pendingQueries_ >= options_.maxPendingQueries) {
        reply.admission = static_cast<std::uint8_t>(serve::BatchAdmission::Shed);
        reply.hits.resize(sim->keys.size());
        stats_.simShed += static_cast<std::int64_t>(sim->keys.size());
        sendFrame(fd, MsgType::SimilarityReply, encodeSimilarityReply(reply));
        return;
    }
    try {
        // Executed immediately (like Mutate): similarity scans run on the
        // engine's snapshot table, so coalescing buys nothing and ordering
        // against queued QueryBatch work is irrelevant to determinism.
        auto result = engine_.similarityBatch(sim->keys, sim->toOptions(), options_.jobs);
        reply.admission = static_cast<std::uint8_t>(serve::BatchAdmission::Accepted);
        reply.hits = std::move(result.hits);
        stats_.simRows += result.rowsReturned;
    } catch (const SimError& e) {
        // e.g. a non-FeFET geometry cannot price similarity searches; the
        // request is unservable here, which is a typed body-level failure.
        protoFail(fd, ProtoError::BadBody, e.what());
        return;
    }
    sendFrame(fd, MsgType::SimilarityReply, encodeSimilarityReply(reply));
}

void Server::handleFrame(int fd, const Frame& frame, double now) {
    if (frame.type == MsgType::Mutate) {
        if (options_.advertiseVersion < kMinMutateVersion) {
            protoFail(fd, ProtoError::UnsupportedVersion,
                      "Mutate frames need protocol v" + std::to_string(kMinMutateVersion));
            return;
        }
        handleMutate(fd, frame);
        return;
    }
    if (frame.type == MsgType::Similarity) {
        if (options_.advertiseVersion < kMinSimilarityVersion) {
            protoFail(fd, ProtoError::UnsupportedVersion,
                      "Similarity frames need protocol v" +
                          std::to_string(kMinSimilarityVersion));
            return;
        }
        handleSimilarity(fd, frame);
        return;
    }
    if (frame.type != MsgType::QueryBatch) {
        protoFail(fd, ProtoError::BadType,
                  std::string("unexpected ") + std::to_string(static_cast<int>(frame.type)) +
                      " frame from client");
        return;
    }
    std::string err;
    auto batch = decodeQueryBatch(frame.body, static_cast<std::uint32_t>(engine_.wordBits()),
                                  options_.maxBatch, &err);
    if (!batch) {
        protoFail(fd, ProtoError::BadBody, err);
        return;
    }
    ++stats_.requests;
    stats_.queries += static_cast<std::int64_t>(batch->keys.size());
    if (obs::enabled()) {
        static obs::Counter& queries = obs::counter("net.queries");
        queries.add(static_cast<long long>(batch->keys.size()));
    }

    // Drain refuses new work with typed sheds (the peer got a Drain frame).
    if (draining_) {
        sendShedReply(fd, batch->requestId, batch->keys.size());
        return;
    }
    // Overload protection: never queue past the bound; shed the whole
    // request with a typed, retryable reply instead.
    const auto n = static_cast<std::int64_t>(batch->keys.size());
    if (pendingQueries_ + n > options_.maxPendingQueries) {
        sendShedReply(fd, batch->requestId, batch->keys.size());
        return;
    }

    Request req;
    req.fd = fd;
    req.requestId = batch->requestId;
    req.arrival = now;
    if (batch->deadlineMicros > 0)
        req.deadline = now + static_cast<double>(batch->deadlineMicros) * 1e-6;
    else if (options_.defaultDeadline > 0.0)
        req.deadline = now + options_.defaultDeadline;
    req.keys = std::move(batch->keys);
    pendingQueries_ += n;
    pending_.push_back(std::move(req));
}

void Server::executeBatch(double /*now*/) {
    if (pending_.empty()) return;
    // Take whole requests off the front until the engine batch is full — a
    // request is never split, so each gets exactly one reply.
    std::vector<Request> taken;
    std::size_t total = 0;
    while (!pending_.empty()) {
        const std::size_t n = pending_.front().keys.size();
        if (!taken.empty() && total + n > options_.maxBatch) break;
        total += n;
        taken.push_back(std::move(pending_.front()));
        pending_.pop_front();
    }
    pendingQueries_ -= static_cast<std::int64_t>(total);

    std::vector<tcam::TernaryWord> keys;
    std::vector<double> deadlines;
    keys.reserve(total);
    deadlines.reserve(total);
    for (auto& req : taken)
        for (auto& key : req.keys) {
            keys.push_back(std::move(key));
            deadlines.push_back(req.deadline);
        }

    serve::SubmitOptions opts;
    opts.deadlines = &deadlines;
    opts.enqueuedAt = taken.front().arrival;
    const auto submitted = engine_.submitBatch(keys, opts, options_.jobs);
    ++stats_.batches;
    if (obs::enabled()) {
        static obs::Counter& batches = obs::counter("net.batches");
        batches.add();
    }

    if (!submitted.admitted()) {
        // Engine admission refused the whole batch (a second front-end is
        // hammering the same engine): typed sheds, client may retry.
        for (const auto& req : taken) sendShedReply(req.fd, req.requestId, req.keys.size());
        return;
    }

    const double done = obs::monotonicSeconds();
    obs::Histogram* requestSeconds = nullptr;
    if (obs::enabled()) {
        static obs::Histogram& hist = obs::histogram("net.request.seconds");
        requestSeconds = &hist;
    }
    std::size_t offset = 0;
    for (const auto& req : taken) {
        const std::size_t n = req.keys.size();
        BatchReplyBody reply;
        reply.requestId = req.requestId;
        reply.admission = static_cast<std::uint8_t>(serve::BatchAdmission::Accepted);
        reply.rows.assign(submitted.result.rows.begin() + static_cast<std::ptrdiff_t>(offset),
                          submitted.result.rows.begin() +
                              static_cast<std::ptrdiff_t>(offset + n));
        reply.status.reserve(n);
        for (const auto row : reply.rows) {
            if (row >= 0) {
                reply.status.push_back(QueryStatus::Hit);
                ++stats_.hits;
            } else if (row == serve::kRowDeadlineExpired) {
                reply.status.push_back(QueryStatus::DeadlineExceeded);
                ++stats_.expiredQueries;
            } else {
                reply.status.push_back(QueryStatus::Miss);
                ++stats_.misses;
            }
        }
        offset += n;
        if (requestSeconds) requestSeconds->observe(done - req.arrival);
        sendFrame(req.fd, MsgType::BatchReply, encodeBatchReply(reply));
    }
    if (obs::enabled()) {
        static obs::Counter& hits = obs::counter("net.hits");
        static obs::Counter& expired = obs::counter("net.deadline_expired");
        // Recount from the batch result once instead of per reply row.
        hits.add(static_cast<long long>(submitted.result.hits));
        expired.add(static_cast<long long>(submitted.result.expired));
    }
}

void Server::writeConn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    auto& writeBuf = it->second.writeBuf;
    while (!writeBuf.empty()) {
        const auto n = ::send(fd, writeBuf.data(), writeBuf.size(), MSG_NOSIGNAL);
        if (n > 0) {
            writeBuf.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        if (n < 0 && errno == EINTR) continue;
        dropConn(fd, true);  // peer gone mid-reply
        return;
    }
    if (it->second.closeAfterFlush) dropConn(fd, true);
}

void Server::checkReadTimeouts(double now) {
    std::vector<int> stalled;
    for (const auto& [fd, conn] : conns_)
        // Only a peer stalled *mid-frame* is suspect (slowloris); idle
        // connections between requests are normal and stay open.
        if (!conn.closeAfterFlush && !conn.readBuf.empty() &&
            now - conn.lastActivity > options_.readTimeout)
            stalled.push_back(fd);
    for (const int fd : stalled)
        protoFail(fd, ProtoError::ReadTimeout,
                  "stalled mid-frame past the read timeout");
}

int Server::pollTimeoutMillis(double now) const {
    double next = now + 0.1;  // idle heartbeat
    if (!pending_.empty())
        next = std::min(next, pending_.front().arrival + options_.coalesceWindow);
    for (const auto& [fd, conn] : conns_)
        if (!conn.readBuf.empty())
            next = std::min(next, conn.lastActivity + options_.readTimeout);
    if (draining_) next = std::min(next, drainStart_ + options_.drainTimeout);
    const double wait = std::max(0.0, next - now);
    return static_cast<int>(std::min(wait * 1e3, 1000.0)) + (wait > 0.0 ? 1 : 0);
}

bool Server::drainComplete() const {
    if (!pending_.empty()) return false;
    for (const auto& [fd, conn] : conns_)
        if (!conn.writeBuf.empty()) return false;
    return true;
}

void Server::run() {
    if (listenFd_ < 0)
        throw SimError(SimErrorReason::InvalidSpec, "net::Server", "run() before start()");
    std::vector<pollfd> fds;
    while (true) {
        fds.clear();
        fds.push_back({stopPipe_[0], POLLIN, 0});
        if (!draining_ && listenFd_ >= 0) fds.push_back({listenFd_, POLLIN, 0});
        for (const auto& [fd, conn] : conns_) {
            short events = 0;
            if (!conn.closeAfterFlush) events |= POLLIN;
            if (!conn.writeBuf.empty()) events |= POLLOUT;
            if (events) fds.push_back({fd, events, 0});
        }

        double now = obs::monotonicSeconds();
        const int rc = ::poll(fds.data(), fds.size(), pollTimeoutMillis(now));
        if (rc < 0) {
            if (errno == EINTR) continue;
            throw SimError(SimErrorReason::IoError, "net::Server",
                           "poll failed: " + std::string(std::strerror(errno)));
        }
        now = obs::monotonicSeconds();

        for (const auto& p : fds) {
            if (p.revents == 0) continue;
            if (p.fd == stopPipe_[0]) {
                char drainBytes[16];
                while (::read(stopPipe_[0], drainBytes, sizeof drainBytes) > 0) {
                }
                if (!draining_) {
                    draining_ = true;
                    drainStart_ = now;
                    if (listenFd_ >= 0) {
                        ::close(listenFd_);
                        listenFd_ = -1;
                    }
                    // Tell every peer; anything already queued still runs.
                    std::vector<int> open;
                    open.reserve(conns_.size());
                    for (const auto& [fd, conn] : conns_) open.push_back(fd);
                    for (const int fd : open) sendFrame(fd, MsgType::Drain, {});
                }
            } else if (p.fd == listenFd_) {
                if (p.revents & POLLIN) acceptConnections(now);
            } else {
                if (p.revents & (POLLIN | POLLHUP | POLLERR)) readConn(p.fd, now);
                if (p.revents & POLLOUT) writeConn(p.fd);
            }
        }

        checkReadTimeouts(now);

        // Flush coalesced batches: full batches immediately; a partial batch
        // once its oldest query has waited out the coalesce window. Draining
        // flushes everything — in-flight work finishes, it is never dropped.
        while (pendingQueries_ >= static_cast<std::int64_t>(options_.maxBatch))
            executeBatch(now);
        while (!pending_.empty() &&
               (draining_ || pending_.front().arrival + options_.coalesceWindow <= now))
            executeBatch(now);

        if (draining_) {
            if (drainComplete()) {
                stats_.drained = true;
                break;
            }
            if (now - drainStart_ > options_.drainTimeout) {
                stats_.drained = true;
                stats_.drainForced = true;
                break;
            }
        }
    }
    // Drain finished: close every connection; the final report is the
    // caller's to emit (store flush + deterministic JSON live in the tool).
    std::vector<int> open;
    open.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) open.push_back(fd);
    for (const int fd : open) dropConn(fd, false);
}

std::string Server::statsJson() const {
    std::ostringstream os;
    os << "{\"connectionsAccepted\": " << stats_.connectionsAccepted
       << ", \"connectionsDropped\": " << stats_.connectionsDropped
       << ", \"requests\": " << stats_.requests << ", \"queries\": " << stats_.queries
       << ", \"hits\": " << stats_.hits << ", \"misses\": " << stats_.misses
       << ", \"shedQueries\": " << stats_.shedQueries
       << ", \"expiredQueries\": " << stats_.expiredQueries
       << ", \"batches\": " << stats_.batches
       << ", \"mutateRequests\": " << stats_.mutateRequests
       << ", \"mutateOps\": " << stats_.mutateOps
       << ", \"mutateFailed\": " << stats_.mutateFailed
       << ", \"simRequests\": " << stats_.simRequests
       << ", \"simQueries\": " << stats_.simQueries
       << ", \"simRows\": " << stats_.simRows
       << ", \"simShed\": " << stats_.simShed
       << ", \"framesIn\": " << stats_.framesIn
       << ", \"framesOut\": " << stats_.framesOut
       << ", \"protoErrors\": " << stats_.protoErrors << ", \"errorCounts\": {";
    bool first = true;
    for (int code = 0; code < kNumProtoErrors; ++code) {
        if (stats_.errorCounts[static_cast<std::size_t>(code)] == 0) continue;
        if (!first) os << ", ";
        first = false;
        os << "\"" << protoErrorName(static_cast<ProtoError>(code))
           << "\": " << stats_.errorCounts[static_cast<std::size_t>(code)];
    }
    os << "}, \"drained\": " << (stats_.drained ? "true" : "false")
       << ", \"drainForced\": " << (stats_.drainForced ? "true" : "false") << "}";
    return os.str();
}

}  // namespace fetcam::net
