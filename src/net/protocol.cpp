#include "net/protocol.hpp"

#include <cstring>

#include "store/format.hpp"

namespace fetcam::net {

namespace {

void put8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put16(std::string& out, std::uint16_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put32(std::string& out, std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void put64(std::string& out, std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounds-checked little reader over a message body.
class Reader {
public:
    explicit Reader(std::string_view data) : data_(data) {}

    template <typename T>
    bool get(T& out) {
        if (data_.size() - pos_ < sizeof(T)) return false;
        std::memcpy(&out, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    bool getBytes(std::string& out, std::size_t n) {
        if (data_.size() - pos_ < n) return false;
        out.assign(data_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    std::string_view rest() const { return data_.substr(pos_); }
    bool done() const { return pos_ == data_.size(); }

private:
    std::string_view data_;
    std::size_t pos_ = 0;
};

bool fail(std::string* err, const char* what) {
    if (err) *err = what;
    return false;
}

}  // namespace

const char* protoErrorName(ProtoError code) noexcept {
    switch (code) {
        case ProtoError::None: return "none";
        case ProtoError::BadMagic: return "bad_magic";
        case ProtoError::BadCrc: return "bad_crc";
        case ProtoError::BadType: return "bad_type";
        case ProtoError::Oversized: return "oversized";
        case ProtoError::BadBody: return "bad_body";
        case ProtoError::WidthMismatch: return "width_mismatch";
        case ProtoError::ReadTimeout: return "read_timeout";
        case ProtoError::Draining: return "draining";
        case ProtoError::TooManyConnections: return "too_many_connections";
        case ProtoError::Truncated: return "truncated";
        case ProtoError::UnsupportedVersion: return "unsupported_version";
    }
    return "unknown";
}

const char* mutateOpName(MutateOp op) noexcept {
    switch (op) {
        case MutateOp::Insert: return "insert";
        case MutateOp::InsertAt: return "insert_at";
        case MutateOp::Erase: return "erase";
    }
    return "unknown";
}

const char* mutateStatusName(MutateStatus status) noexcept {
    switch (status) {
        case MutateStatus::Ok: return "ok";
        case MutateStatus::TableFull: return "table_full";
        case MutateStatus::InvalidRow: return "invalid_row";
        case MutateStatus::Rejected: return "rejected";
    }
    return "unknown";
}

const char* queryStatusName(QueryStatus status) noexcept {
    switch (status) {
        case QueryStatus::Hit: return "hit";
        case QueryStatus::Miss: return "miss";
        case QueryStatus::Shed: return "shed";
        case QueryStatus::DeadlineExceeded: return "deadline_exceeded";
    }
    return "unknown";
}

std::string encodeFrame(MsgType type, std::string_view body) {
    std::string out;
    out.reserve(kFrameHeaderSize + body.size());
    put32(out, kFrameMagic);
    put8(out, static_cast<std::uint8_t>(type));
    put8(out, 0);   // flags
    put16(out, 0);  // reserved
    put32(out, static_cast<std::uint32_t>(body.size()));
    // CRC over type..length, then the body — same chaining scheme the store
    // records use, and the same crc32.
    std::uint32_t crc = store::crc32(out.data() + 4, 8);
    crc = store::crc32(body.data(), body.size(), crc);
    put32(out, crc);
    out.append(body);
    return out;
}

DecodeResult decodeFrame(std::string_view buffer, std::size_t maxFrameBytes) {
    DecodeResult r;
    if (buffer.size() < kFrameHeaderSize) {
        r.status = DecodeResult::Status::NeedMore;
        return r;
    }
    std::uint32_t magic;
    std::memcpy(&magic, buffer.data(), 4);
    if (magic != kFrameMagic) {
        r.status = DecodeResult::Status::Bad;
        r.error = ProtoError::BadMagic;
        r.message = "bad frame magic (garbage preamble)";
        return r;
    }
    const auto type = static_cast<std::uint8_t>(buffer[4]);
    std::uint32_t length;
    std::memcpy(&length, buffer.data() + 8, 4);
    if (length > maxFrameBytes) {
        r.status = DecodeResult::Status::Bad;
        r.error = ProtoError::Oversized;
        r.message = "declared frame body of " + std::to_string(length) +
                    " bytes exceeds the " + std::to_string(maxFrameBytes) + "-byte limit";
        return r;
    }
    if (buffer.size() < kFrameHeaderSize + length) {
        r.status = DecodeResult::Status::NeedMore;
        return r;
    }
    std::uint32_t crc;
    std::memcpy(&crc, buffer.data() + 12, 4);
    std::uint32_t check = store::crc32(buffer.data() + 4, 8);
    check = store::crc32(buffer.data() + kFrameHeaderSize, length, check);
    if (check != crc) {
        r.status = DecodeResult::Status::Bad;
        r.error = ProtoError::BadCrc;
        r.message = "frame CRC mismatch";
        return r;
    }
    if (type < static_cast<std::uint8_t>(MsgType::Hello) ||
        type > static_cast<std::uint8_t>(MsgType::SimilarityReply)) {
        r.status = DecodeResult::Status::Bad;
        r.error = ProtoError::BadType;
        r.message = "unknown message type " + std::to_string(type);
        return r;
    }
    r.status = DecodeResult::Status::Ok;
    r.frame.type = static_cast<MsgType>(type);
    r.frame.body.assign(buffer.data() + kFrameHeaderSize, length);
    r.consumed = kFrameHeaderSize + length;
    return r;
}

std::string encodeHello(const HelloBody& hello) {
    std::string body;
    put32(body, hello.version);
    put32(body, hello.wordBits);
    put32(body, hello.maxBatch);
    put32(body, hello.maxFrameBytes);
    return body;
}

std::optional<HelloBody> decodeHello(std::string_view body, std::string* err) {
    Reader r(body);
    HelloBody h;
    if (!r.get(h.version) || !r.get(h.wordBits) || !r.get(h.maxBatch) ||
        !r.get(h.maxFrameBytes) || !r.done()) {
        fail(err, "malformed Hello body");
        return std::nullopt;
    }
    return h;
}

std::string encodeQueryBatch(const QueryBatchBody& batch) {
    std::string body;
    put64(body, batch.requestId);
    put32(body, batch.deadlineMicros);
    put32(body, static_cast<std::uint32_t>(batch.keys.size()));
    for (const auto& key : batch.keys)
        for (std::size_t i = 0; i < key.size(); ++i)
            put8(body, static_cast<std::uint8_t>(key[i]));
    return body;
}

std::optional<QueryBatchBody> decodeQueryBatch(std::string_view body, std::uint32_t wordBits,
                                               std::uint32_t maxBatch, std::string* err) {
    Reader r(body);
    QueryBatchBody b;
    std::uint32_t count;
    if (!r.get(b.requestId) || !r.get(b.deadlineMicros) || !r.get(count)) {
        fail(err, "malformed QueryBatch header");
        return std::nullopt;
    }
    if (count == 0 || count > maxBatch) {
        fail(err, "query count outside [1, maxBatch]");
        return std::nullopt;
    }
    if (r.rest().size() != static_cast<std::size_t>(count) * wordBits) {
        fail(err, "QueryBatch body length does not match count * wordBits");
        return std::nullopt;
    }
    b.keys.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        tcam::TernaryWord word(wordBits);
        for (std::uint32_t i = 0; i < wordBits; ++i) {
            std::uint8_t trit = 0;
            r.get(trit);
            if (trit > 2) {
                fail(err, "trit byte outside {0,1,2}");
                return std::nullopt;
            }
            word[i] = static_cast<tcam::Trit>(trit);
        }
        b.keys.push_back(std::move(word));
    }
    return b;
}

std::string encodeBatchReply(const BatchReplyBody& reply) {
    std::string body;
    put64(body, reply.requestId);
    put8(body, reply.admission);
    put32(body, static_cast<std::uint32_t>(reply.rows.size()));
    for (std::size_t i = 0; i < reply.rows.size(); ++i) {
        put64(body, static_cast<std::uint64_t>(reply.rows[i]));
        put8(body, static_cast<std::uint8_t>(reply.status[i]));
    }
    return body;
}

std::optional<BatchReplyBody> decodeBatchReply(std::string_view body, std::string* err) {
    Reader r(body);
    BatchReplyBody b;
    std::uint32_t count;
    if (!r.get(b.requestId) || !r.get(b.admission) || !r.get(count)) {
        fail(err, "malformed BatchReply header");
        return std::nullopt;
    }
    if (r.rest().size() != static_cast<std::size_t>(count) * 9) {
        fail(err, "BatchReply body length does not match count");
        return std::nullopt;
    }
    b.rows.reserve(count);
    b.status.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t row = 0;
        std::uint8_t status = 0;
        r.get(row);
        r.get(status);
        if (status > static_cast<std::uint8_t>(QueryStatus::DeadlineExceeded)) {
            fail(err, "unknown query status byte");
            return std::nullopt;
        }
        b.rows.push_back(static_cast<std::int64_t>(row));
        b.status.push_back(static_cast<QueryStatus>(status));
    }
    return b;
}

std::string encodeMutate(const MutateBody& mutate) {
    std::string body;
    put64(body, mutate.requestId);
    put32(body, static_cast<std::uint32_t>(mutate.ops.size()));
    for (const auto& op : mutate.ops) {
        put8(body, static_cast<std::uint8_t>(op.op));
        put64(body, static_cast<std::uint64_t>(op.row));
        if (op.op != MutateOp::Erase)
            for (std::size_t i = 0; i < op.word.size(); ++i)
                put8(body, static_cast<std::uint8_t>(op.word[i]));
    }
    return body;
}

std::optional<MutateBody> decodeMutate(std::string_view body, std::uint32_t wordBits,
                                       std::uint32_t maxBatch, std::string* err) {
    Reader r(body);
    MutateBody b;
    std::uint32_t count;
    if (!r.get(b.requestId) || !r.get(count)) {
        fail(err, "malformed Mutate header");
        return std::nullopt;
    }
    if (count == 0 || count > maxBatch) {
        fail(err, "mutation count outside [1, maxBatch]");
        return std::nullopt;
    }
    b.ops.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        MutateOpSpec spec;
        std::uint8_t op = 0;
        std::uint64_t row = 0;
        if (!r.get(op) || !r.get(row)) {
            fail(err, "truncated Mutate op");
            return std::nullopt;
        }
        if (op < static_cast<std::uint8_t>(MutateOp::Insert) ||
            op > static_cast<std::uint8_t>(MutateOp::Erase)) {
            fail(err, "unknown mutate op byte");
            return std::nullopt;
        }
        spec.op = static_cast<MutateOp>(op);
        spec.row = static_cast<std::int64_t>(row);
        if (spec.op != MutateOp::Erase) {
            tcam::TernaryWord word(wordBits);
            for (std::uint32_t i = 0; i < wordBits; ++i) {
                std::uint8_t trit = 0;
                if (!r.get(trit)) {
                    fail(err, "truncated Mutate word");
                    return std::nullopt;
                }
                if (trit > 2) {
                    fail(err, "trit byte outside {0,1,2}");
                    return std::nullopt;
                }
                word[i] = static_cast<tcam::Trit>(trit);
            }
            spec.word = std::move(word);
        }
        b.ops.push_back(std::move(spec));
    }
    if (!r.done()) {
        fail(err, "trailing bytes after Mutate ops");
        return std::nullopt;
    }
    return b;
}

std::string encodeMutateReply(const MutateReplyBody& reply) {
    std::string body;
    put64(body, reply.requestId);
    put32(body, static_cast<std::uint32_t>(reply.rows.size()));
    for (std::size_t i = 0; i < reply.rows.size(); ++i) {
        put64(body, static_cast<std::uint64_t>(reply.rows[i]));
        put8(body, static_cast<std::uint8_t>(reply.status[i]));
    }
    return body;
}

std::optional<MutateReplyBody> decodeMutateReply(std::string_view body, std::string* err) {
    Reader r(body);
    MutateReplyBody b;
    std::uint32_t count;
    if (!r.get(b.requestId) || !r.get(count)) {
        fail(err, "malformed MutateReply header");
        return std::nullopt;
    }
    if (r.rest().size() != static_cast<std::size_t>(count) * 9) {
        fail(err, "MutateReply body length does not match count");
        return std::nullopt;
    }
    b.rows.reserve(count);
    b.status.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t row = 0;
        std::uint8_t status = 0;
        r.get(row);
        r.get(status);
        if (status > static_cast<std::uint8_t>(MutateStatus::Rejected)) {
            fail(err, "unknown mutate status byte");
            return std::nullopt;
        }
        b.rows.push_back(static_cast<std::int64_t>(row));
        b.status.push_back(static_cast<MutateStatus>(status));
    }
    return b;
}

sim::SimilarityOptions SimilarityBody::toOptions() const {
    sim::SimilarityOptions options;
    options.kind = kind;
    options.maxResults = maxResults;
    if (kind == sim::SimilarityKind::NearestK)
        options.k = static_cast<int>(param);
    else
        options.maxDistance = param;
    return options;
}

std::string encodeSimilarity(const SimilarityBody& sim) {
    std::string body;
    put64(body, sim.requestId);
    put8(body, static_cast<std::uint8_t>(sim.kind));
    put32(body, sim.param);
    put32(body, sim.maxResults);
    put32(body, static_cast<std::uint32_t>(sim.keys.size()));
    for (const auto& key : sim.keys)
        for (std::size_t i = 0; i < key.size(); ++i)
            put8(body, static_cast<std::uint8_t>(key[i]));
    return body;
}

std::optional<SimilarityBody> decodeSimilarity(std::string_view body, std::uint32_t wordBits,
                                               std::uint32_t maxBatch, std::string* err) {
    Reader r(body);
    SimilarityBody b;
    std::uint8_t kind = 0;
    std::uint32_t count = 0;
    if (!r.get(b.requestId) || !r.get(kind) || !r.get(b.param) || !r.get(b.maxResults) ||
        !r.get(count)) {
        fail(err, "malformed Similarity header");
        return std::nullopt;
    }
    if (kind != static_cast<std::uint8_t>(sim::SimilarityKind::NearestK) &&
        kind != static_cast<std::uint8_t>(sim::SimilarityKind::Threshold)) {
        fail(err, "unknown similarity kind byte");
        return std::nullopt;
    }
    b.kind = static_cast<sim::SimilarityKind>(kind);
    if (b.maxResults == 0 || b.maxResults > maxBatch) {
        fail(err, "similarity maxResults outside [1, maxBatch]");
        return std::nullopt;
    }
    if (b.kind == sim::SimilarityKind::NearestK &&
        (b.param == 0 || b.param > b.maxResults)) {
        fail(err, "similarity k outside [1, maxResults]");
        return std::nullopt;
    }
    if (count == 0 || count > maxBatch) {
        fail(err, "similarity key count outside [1, maxBatch]");
        return std::nullopt;
    }
    if (r.rest().size() != static_cast<std::size_t>(count) * wordBits) {
        fail(err, "Similarity body length does not match count * wordBits");
        return std::nullopt;
    }
    b.keys.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        tcam::TernaryWord word(wordBits);
        for (std::uint32_t i = 0; i < wordBits; ++i) {
            std::uint8_t trit = 0;
            r.get(trit);
            if (trit > 2) {
                fail(err, "trit byte outside {0,1,2}");
                return std::nullopt;
            }
            word[i] = static_cast<tcam::Trit>(trit);
        }
        b.keys.push_back(std::move(word));
    }
    return b;
}

std::string encodeSimilarityReply(const SimilarityReplyBody& reply) {
    std::string body;
    put64(body, reply.requestId);
    put8(body, reply.admission);
    put32(body, static_cast<std::uint32_t>(reply.hits.size()));
    for (const auto& hits : reply.hits) {
        put32(body, static_cast<std::uint32_t>(hits.size()));
        for (const auto& hit : hits) {
            put64(body, static_cast<std::uint64_t>(hit.row));
            put32(body, hit.distance);
        }
    }
    return body;
}

std::optional<SimilarityReplyBody> decodeSimilarityReply(std::string_view body,
                                                         std::string* err) {
    Reader r(body);
    SimilarityReplyBody b;
    std::uint32_t count = 0;
    if (!r.get(b.requestId) || !r.get(b.admission) || !r.get(count)) {
        fail(err, "malformed SimilarityReply header");
        return std::nullopt;
    }
    // Per-key hit lists are variable length, so the remaining size is
    // validated incrementally and the body must end exactly at the last hit.
    b.hits.reserve(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        std::uint32_t hitCount = 0;
        if (!r.get(hitCount)) {
            fail(err, "truncated SimilarityReply hit count");
            return std::nullopt;
        }
        if (r.rest().size() < static_cast<std::size_t>(hitCount) * 12) {
            fail(err, "SimilarityReply hit list longer than the body");
            return std::nullopt;
        }
        sim::SimilarityHits hits;
        hits.reserve(hitCount);
        for (std::uint32_t h = 0; h < hitCount; ++h) {
            std::uint64_t row = 0;
            std::uint32_t distance = 0;
            r.get(row);
            r.get(distance);
            hits.push_back({static_cast<std::int64_t>(row), distance});
        }
        b.hits.push_back(std::move(hits));
    }
    if (!r.done()) {
        fail(err, "trailing bytes after SimilarityReply hits");
        return std::nullopt;
    }
    return b;
}

std::string encodeError(const ErrorBody& error) {
    std::string body;
    put16(body, static_cast<std::uint16_t>(error.code));
    body.append(error.message);
    return body;
}

std::optional<ErrorBody> decodeError(std::string_view body, std::string* err) {
    Reader r(body);
    ErrorBody e;
    std::uint16_t code;
    if (!r.get(code)) {
        fail(err, "malformed Error body");
        return std::nullopt;
    }
    e.code = static_cast<ProtoError>(code);
    e.message = std::string(r.rest());
    return e;
}

}  // namespace fetcam::net
